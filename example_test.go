package janus_test

import (
	"fmt"
	"log"

	"repro"
)

// ExampleRunner demonstrates the full train-then-run flow on the paper's
// Figure 1 program: tasks that accumulate pending work into a shared
// counter and restore it on success act as the identity, so sequence-based
// detection runs them in parallel without aborts.
func ExampleRunner() {
	st := janus.NewState()
	work := janus.InitCounter(st, "work", 0)

	task := func(weight int64, success bool) janus.Task {
		return func(ex janus.Executor) error {
			if err := work.Add(ex, weight); err != nil {
				return err
			}
			if success {
				return work.Sub(ex, weight)
			}
			return nil
		}
	}
	tasks := []janus.Task{
		task(2, true), task(3, true), task(5, false), task(7, true),
	}

	r := janus.New(janus.Config{Threads: 4})
	if err := r.Train(st, tasks[:2]); err != nil {
		log.Fatal(err)
	}
	final, stats, err := r.RunOutOfOrder(st, tasks)
	if err != nil {
		log.Fatal(err)
	}
	pending, _ := final.Get("work")
	fmt.Printf("pending work: %v\n", pending)
	fmt.Printf("commits: %d\n", stats.Run.Commits)
	// Output:
	// pending work: 5
	// commits: 4
}

// ExampleSequential runs the unsynchronized baseline.
func ExampleSequential() {
	st := janus.NewState()
	counter := janus.InitCounter(st, "n", 10)
	final, err := janus.Sequential(st, []janus.Task{
		func(ex janus.Executor) error { return counter.Add(ex, 5) },
		func(ex janus.Executor) error { return counter.Sub(ex, 3) },
	})
	if err != nil {
		log.Fatal(err)
	}
	v, _ := final.Get("n")
	fmt.Println(v)
	// Output: 12
}

// ExampleRunner_RunInOrder shows ordered commits: the final state matches
// the task order exactly, even for non-commutative operations.
func ExampleRunner_RunInOrder() {
	st := janus.NewState()
	stack := janus.InitStack(st, "events")
	var tasks []janus.Task
	for i := int64(1); i <= 4; i++ {
		v := i
		tasks = append(tasks, func(ex janus.Executor) error {
			return stack.Push(ex, v)
		})
	}
	r := janus.New(janus.Config{Threads: 4, Detection: janus.DetectWriteSet})
	final, _, err := r.RunInOrder(st, tasks)
	if err != nil {
		log.Fatal(err)
	}
	v, _ := final.Get("events")
	fmt.Println(v)
	// Output: [1 2 3 4]
}

// ExampleNewRelaxations declares §5.3 consistency relaxations: scratch
// fields whose write-after-write conflicts are tolerable.
func ExampleNewRelaxations() {
	st := janus.NewState()
	scratch := janus.InitStrVar(st, "ctx.scratch", "")
	var tasks []janus.Task
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("file%d", i)
		tasks = append(tasks, func(ex janus.Executor) error {
			if err := scratch.Store(ex, name); err != nil {
				return err
			}
			_, err := scratch.Load(ex) // reads its own write
			return err
		})
	}
	r := janus.New(janus.Config{
		Threads: 4,
		Relax:   janus.NewRelaxations(nil, []janus.Loc{"ctx.scratch"}),
	})
	_, stats, err := r.RunOutOfOrder(st, tasks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retries: %d\n", stats.Run.Retries)
	// Output: retries: 0
}
