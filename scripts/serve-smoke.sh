#!/bin/sh
# Integration smoke for the serving layer: build janus-serve and
# janus-bench, start the daemon, drive concurrent multi-tenant load
# through the janus-bench loadgen client (which verifies exactly-once
# journals and replays the sequential oracle to check state digests),
# then SIGTERM the daemon and require a clean drain. Any verification
# failure, drain failure, or leak exits nonzero.
set -eu

GO=${GO:-go}
ADDR=${ADDR:-127.0.0.1:18085}
TENANTS=${TENANTS:-3}
CLIENTS=${CLIENTS:-4}
BATCHES=${BATCHES:-8}
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

"$GO" build -o "$DIR/janus-serve" ./cmd/janus-serve
"$GO" build -o "$DIR/janus-bench" ./cmd/janus-bench

"$DIR/janus-serve" -addr "$ADDR" -flight-dir "$DIR" >"$DIR/serve.log" 2>&1 &
SERVE_PID=$!

# Wait for the listener (the daemon logs its bound address on startup).
i=0
until grep -q 'listening on' "$DIR/serve.log" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "serve-smoke: janus-serve never came up" >&2
        cat "$DIR/serve.log" >&2
        kill "$SERVE_PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done

# Drive load; janus-bench exits nonzero on any lost/duplicated batch or
# digest mismatch against the sequential oracle.
"$DIR/janus-bench" -serve "http://$ADDR" \
    -serve-tenants "$TENANTS" -serve-clients "$CLIENTS" -serve-batches "$BATCHES"

# Graceful drain: SIGTERM must exit 0 within the drain budget. A hung
# drain (leaked in-flight work) or flight-recorder dump path exits 1.
kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
    echo "serve-smoke: janus-serve did not drain cleanly" >&2
    cat "$DIR/serve.log" >&2
    exit 1
fi
if ! grep -q 'drained cleanly' "$DIR/serve.log"; then
    echo "serve-smoke: missing clean-drain confirmation" >&2
    cat "$DIR/serve.log" >&2
    exit 1
fi
echo "serve-smoke: OK (tenants=$TENANTS clients=$CLIENTS batches=$BATCHES)"
