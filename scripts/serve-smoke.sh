#!/bin/sh
# Integration smoke for the serving layer, in two phases.
#
# Phase 1 (in-memory): start janus-serve, drive concurrent multi-tenant
# load through the janus-bench loadgen client (which verifies
# exactly-once journals and replays the sequential oracle to check state
# digests), then SIGTERM the daemon and require a clean drain.
#
# Phase 2 (durable): start janus-serve with a data dir and an armed
# chaos crash (SIGKILL semantics: the process os.Exits mid-append, no
# drain, no journal close), drive load until it dies, restart on the
# same data dir, and run the restart-aware loadgen (-serve-resume): every
# pre-crash batch ID is resubmitted and must resolve exactly once — 409
# with its original verdict if it survived the crash, a fresh 200 if its
# record never reached the journal — before fresh load and the full
# journal/oracle verification run against the recovered state.
#
# Any verification failure, drain failure, or leak exits nonzero.
set -eu

GO=${GO:-go}
ADDR=${ADDR:-127.0.0.1:18085}
TENANTS=${TENANTS:-3}
CLIENTS=${CLIENTS:-4}
BATCHES=${BATCHES:-8}
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

"$GO" build -o "$DIR/janus-serve" ./cmd/janus-serve
"$GO" build -o "$DIR/janus-bench" ./cmd/janus-bench

# wait_up LOGFILE: block until the daemon logs its bound address.
wait_up() {
    i=0
    until grep -q 'listening on' "$1" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "serve-smoke: janus-serve never came up" >&2
            cat "$1" >&2
            return 1
        fi
        sleep 0.1
    done
}

# ---- Phase 1: in-memory load + clean SIGTERM drain -------------------

"$DIR/janus-serve" -addr "$ADDR" -flight-dir "$DIR" >"$DIR/serve.log" 2>&1 &
SERVE_PID=$!
wait_up "$DIR/serve.log" || { kill "$SERVE_PID" 2>/dev/null || true; exit 1; }

# Drive load; janus-bench exits nonzero on any lost/duplicated batch or
# digest mismatch against the sequential oracle.
"$DIR/janus-bench" -serve "http://$ADDR" \
    -serve-tenants "$TENANTS" -serve-clients "$CLIENTS" -serve-batches "$BATCHES"

# Graceful drain: SIGTERM must exit 0 within the drain budget. A hung
# drain (leaked in-flight work) or flight-recorder dump path exits 1.
kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
    echo "serve-smoke: janus-serve did not drain cleanly" >&2
    cat "$DIR/serve.log" >&2
    exit 1
fi
if ! grep -q 'drained cleanly' "$DIR/serve.log"; then
    echo "serve-smoke: missing clean-drain confirmation" >&2
    cat "$DIR/serve.log" >&2
    exit 1
fi
echo "serve-smoke: phase 1 OK (in-memory; tenants=$TENANTS clients=$CLIENTS batches=$BATCHES)"

# ---- Phase 2: durable journal, mid-load kill, restart, resume --------

DATA="$DIR/data"
TOTAL=$((TENANTS * CLIENTS * BATCHES))
# Die partway through the total append count so acked, in-flight, and
# never-submitted batches all exist at the moment of death.
"$DIR/janus-serve" -addr "$ADDR" -flight-dir "$DIR" \
    -data-dir "$DATA" -fsync always -snapshot-every 16 -segment-bytes 65536 \
    -chaos-crash "wal.append.after:$((TOTAL / 2))" >"$DIR/serve-crash.log" 2>&1 &
SERVE_PID=$!
wait_up "$DIR/serve-crash.log" || { kill "$SERVE_PID" 2>/dev/null || true; exit 1; }

# This client run is EXPECTED to fail: the daemon dies under it. Its job
# is to create acked batches whose durability the restart must honor.
"$DIR/janus-bench" -serve "http://$ADDR" \
    -serve-tenants "$TENANTS" -serve-clients "$CLIENTS" -serve-batches "$BATCHES" \
    >/dev/null 2>&1 || true

if wait "$SERVE_PID" 2>/dev/null; then
    echo "serve-smoke: daemon survived an armed chaos crash" >&2
    cat "$DIR/serve-crash.log" >&2
    exit 1
fi
if ! grep -q 'chaos crash at' "$DIR/serve-crash.log"; then
    echo "serve-smoke: daemon died without reaching the armed crash point" >&2
    cat "$DIR/serve-crash.log" >&2
    exit 1
fi

# Restart on the same data dir: boot recovery must replay the journals,
# then the resume run pins down the fate of every pre-crash batch ID and
# layers fresh load plus full verification on top.
"$DIR/janus-serve" -addr "$ADDR" -flight-dir "$DIR" \
    -data-dir "$DATA" -fsync always -snapshot-every 16 -segment-bytes 65536 \
    >"$DIR/serve-recover.log" 2>&1 &
SERVE_PID=$!
wait_up "$DIR/serve-recover.log" || { kill "$SERVE_PID" 2>/dev/null || true; exit 1; }
if ! grep -q 'recovered' "$DIR/serve-recover.log"; then
    echo "serve-smoke: restarted daemon reported no recovery" >&2
    cat "$DIR/serve-recover.log" >&2
    exit 1
fi

"$DIR/janus-bench" -serve "http://$ADDR" \
    -serve-tenants "$TENANTS" -serve-clients "$CLIENTS" -serve-batches "$BATCHES" \
    -serve-seq-base "$BATCHES" -serve-resume

kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
    echo "serve-smoke: recovered janus-serve did not drain cleanly" >&2
    cat "$DIR/serve-recover.log" >&2
    exit 1
fi
if ! grep -q 'drained cleanly' "$DIR/serve-recover.log"; then
    echo "serve-smoke: recovered daemon missing clean-drain confirmation" >&2
    cat "$DIR/serve-recover.log" >&2
    exit 1
fi
echo "serve-smoke: phase 2 OK (durable; killed at append $((TOTAL / 2)), recovered, resume verified)"
