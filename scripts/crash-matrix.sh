#!/bin/sh
# Crash matrix: for every wal crash point × fsync policy, arm the real
# janus-serve daemon to die (os.Exit(137) at the Nth visit of the point
# — SIGKILL semantics: no drain, no journal close), drive concurrent
# load until it does, restart on the same data dir, and run the
# restart-aware loadgen verification (-serve-resume): every pre-crash
# batch ID must resolve exactly once (409 original-verdict or fresh
# 200), the journal must hold no duplicates, and the recovered state
# digest must equal a sequential-oracle replay of the journal.
#
# fsync=always additionally promises ack ⇒ durable; weaker policies may
# lose acked-but-unsynced tails on a kill, which the resume protocol
# tolerates (those batches apply fresh) but the exactly-once and
# oracle-digest invariants must still hold. This is the nightly
# durability soak; per-push CI runs the cheaper in-process soak
# (TestCrashRecoverySoak) and the two-phase serve-smoke instead.
set -eu

GO=${GO:-go}
ADDR=${ADDR:-127.0.0.1:18086}
TENANTS=${TENANTS:-2}
CLIENTS=${CLIENTS:-3}
BATCHES=${BATCHES:-8}
POINTS=${POINTS:-"wal.append.before wal.append.after wal.snapshot.mid wal.snapshot.rename.before wal.snapshot.rename.after wal.truncate.before"}
POLICIES=${POLICIES:-"always group"}
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

"$GO" build -o "$DIR/janus-serve" ./cmd/janus-serve
"$GO" build -o "$DIR/janus-bench" ./cmd/janus-bench

wait_up() {
    i=0
    until grep -q 'listening on' "$1" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "crash-matrix: janus-serve never came up" >&2
            cat "$1" >&2
            return 1
        fi
        sleep 0.1
    done
}

TOTAL=$((TENANTS * CLIENTS * BATCHES))
CASES=0
for policy in $POLICIES; do
    for point in $POINTS; do
        CASES=$((CASES + 1))
        tag="$policy-$(echo "$point" | tr . -)"
        DATA="$DIR/data-$tag"
        LOG="$DIR/crash-$tag.log"

        # Append points fire per batch — die mid-load. Snapshot and
        # truncate points fire once per snapshot cycle — die on the
        # second cycle so at least one snapshot has landed.
        case "$point" in
        wal.append.*) visit=$((TOTAL / 2)) ;;
        *) visit=2 ;;
        esac

        "$DIR/janus-serve" -addr "$ADDR" -flight-dir "$DIR" \
            -data-dir "$DATA" -fsync "$policy" \
            -snapshot-every 6 -segment-bytes 4096 \
            -chaos-crash "$point:$visit" >"$LOG" 2>&1 &
        PID=$!
        wait_up "$LOG" || { kill "$PID" 2>/dev/null || true; exit 1; }

        # Expected to fail: the daemon dies under this run.
        "$DIR/janus-bench" -serve "http://$ADDR" \
            -serve-tenants "$TENANTS" -serve-clients "$CLIENTS" -serve-batches "$BATCHES" \
            >/dev/null 2>&1 || true

        # Snapshot-cycle crashes can fire from a background goroutine
        # after the load finishes; give the armed death time to land.
        i=0
        while kill -0 "$PID" 2>/dev/null; do
            i=$((i + 1))
            if [ "$i" -gt 100 ]; then
                echo "crash-matrix: $tag: daemon survived armed crash $point:$visit" >&2
                cat "$LOG" >&2
                kill "$PID" 2>/dev/null || true
                exit 1
            fi
            sleep 0.1
        done
        wait "$PID" 2>/dev/null || true
        if ! grep -q 'chaos crash at' "$LOG"; then
            echo "crash-matrix: $tag: daemon died without reaching $point" >&2
            cat "$LOG" >&2
            exit 1
        fi

        RLOG="$DIR/recover-$tag.log"
        "$DIR/janus-serve" -addr "$ADDR" -flight-dir "$DIR" \
            -data-dir "$DATA" -fsync "$policy" \
            -snapshot-every 6 -segment-bytes 4096 >"$RLOG" 2>&1 &
        PID=$!
        wait_up "$RLOG" || { kill "$PID" 2>/dev/null || true; exit 1; }

        "$DIR/janus-bench" -serve "http://$ADDR" \
            -serve-tenants "$TENANTS" -serve-clients "$CLIENTS" -serve-batches "$BATCHES" \
            -serve-seq-base "$BATCHES" -serve-resume >"$DIR/bench-$tag.out" 2>&1 || {
            echo "crash-matrix: $tag: post-restart verification FAILED" >&2
            cat "$DIR/bench-$tag.out" >&2
            cat "$RLOG" >&2
            exit 1
        }

        kill -TERM "$PID"
        if ! wait "$PID"; then
            echo "crash-matrix: $tag: recovered daemon did not drain cleanly" >&2
            cat "$RLOG" >&2
            exit 1
        fi
        echo "crash-matrix: OK $tag (died at $point:$visit, recovered, resume verified)"
    done
done
echo "crash-matrix: OK ($CASES cases: {$POLICIES} x {$POINTS})"
