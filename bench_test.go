package janus

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§7). Each Figure benchmark runs the corresponding
// experiment on the virtual-time machine simulator (see DESIGN.md for why
// speedups are simulated on this host) and reports the paper's metric —
// speedup, retries per transaction, or unique-query miss rate — via
// b.ReportMetric, so `go test -bench .` regenerates every series.
//
//	go test -bench 'Figure9'  -benchtime 1x   # speedup series
//	go test -bench 'Figure10' -benchtime 1x   # retry ratios
//	go test -bench 'Figure11' -benchtime 1x   # cache miss rates
//	go test -bench 'Table'    -benchtime 1x   # Tables 5 and 6
//
// cmd/janus-bench prints the same series as formatted tables.

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/vtime"
	"repro/internal/workloads"
)

// benchSize selects the simulated input scale. Production matches the
// paper (Table 6); the suite stays under a few minutes of CPU.
const benchSize = workloads.Production

// benchSeed matches the harness's measured production input.
const benchSeed = 2024

var benchThreads = []int{1, 2, 4, 8}

// engineCache shares trained engines across benchmark iterations; keyed
// by workload name and abstraction setting.
var engineCache sync.Map

func trainedEngine(b *testing.B, w *workloads.Workload, disableAbs bool) *core.Engine {
	b.Helper()
	key := fmt.Sprintf("%s/%v", w.Name, disableAbs)
	if e, ok := engineCache.Load(key); ok {
		return e.(*core.Engine)
	}
	engine := core.NewEngine(core.Options{DisableAbstraction: disableAbs, Relax: w.Relaxations})
	if err := engine.TrainMany(w.NewState(), w.TrainingPayloads()); err != nil {
		b.Fatal(err)
	}
	engineCache.Store(key, engine)
	return engine
}

func simRun(b *testing.B, w *workloads.Workload, det conflict.Detector, threads int) vtime.Stats {
	b.Helper()
	_, stats, err := vtime.Run(vtime.Config{
		Threads:  threads,
		Ordered:  w.Ordered,
		Detector: det,
	}, w.NewState(), w.Tasks(benchSize, benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	return stats
}

// BenchmarkFigure9 regenerates the Figure 9 speedup series: per
// benchmark, detector, and thread count, the speedup over the sequential
// baseline is reported as the "speedup" metric.
func BenchmarkFigure9(b *testing.B) {
	for _, w := range workloads.All() {
		for _, detName := range []string{"sequence", "write-set"} {
			for _, th := range benchThreads {
				b.Run(fmt.Sprintf("%s/%s/%dthr", w.Name, detName, th), func(b *testing.B) {
					engine := trainedEngine(b, w, false)
					var stats vtime.Stats
					for i := 0; i < b.N; i++ {
						det := conflict.Detector(conflict.NewWriteSet())
						if detName == "sequence" {
							det = engine.Detector()
						}
						stats = simRun(b, w, det, th)
					}
					b.ReportMetric(stats.Speedup, "speedup")
					b.ReportMetric(0, "ns/op")
				})
			}
		}
	}
}

// BenchmarkFigure10 regenerates the Figure 10 retry ratios, reported as
// the "retries/txn" metric.
func BenchmarkFigure10(b *testing.B) {
	for _, w := range workloads.All() {
		for _, detName := range []string{"sequence", "write-set"} {
			for _, th := range benchThreads {
				b.Run(fmt.Sprintf("%s/%s/%dthr", w.Name, detName, th), func(b *testing.B) {
					engine := trainedEngine(b, w, false)
					var stats vtime.Stats
					for i := 0; i < b.N; i++ {
						det := conflict.Detector(conflict.NewWriteSet())
						if detName == "sequence" {
							det = engine.Detector()
						}
						stats = simRun(b, w, det, th)
					}
					b.ReportMetric(stats.RetryRatio(), "retries/txn")
					b.ReportMetric(0, "ns/op")
				})
			}
		}
	}
}

// BenchmarkFigure11 regenerates the Figure 11 unique-query miss rates at
// 8 threads, with and without sequence abstraction, reported as the
// "missrate-%" metric.
func BenchmarkFigure11(b *testing.B) {
	for _, w := range workloads.All() {
		for _, mode := range []string{"abstraction", "no-abstraction"} {
			b.Run(fmt.Sprintf("%s/%s", w.Name, mode), func(b *testing.B) {
				disable := mode == "no-abstraction"
				var rate float64
				for i := 0; i < b.N; i++ {
					// A fresh engine per iteration: miss accounting is
					// cumulative per cache.
					engine := core.NewEngine(core.Options{DisableAbstraction: disable, Relax: w.Relaxations})
					if err := engine.TrainMany(w.NewState(), w.TrainingPayloads()); err != nil {
						b.Fatal(err)
					}
					tasks := w.Tasks(benchSize, benchSeed)
					for pass := 0; pass < 2; pass++ {
						if pass == 1 {
							engine.Cache().ResetStats()
						}
						if _, _, err := vtime.Run(vtime.Config{
							Threads:  8,
							Ordered:  w.Ordered,
							Detector: engine.Detector(),
						}, w.NewState(), tasks); err != nil {
							b.Fatal(err)
						}
					}
					rate = engine.Cache().Stats().UniqueMissRate()
				}
				b.ReportMetric(rate*100, "missrate-%")
				b.ReportMetric(0, "ns/op")
			})
		}
	}
}

// BenchmarkTable5 regenerates the benchmark-characteristics table (static
// metadata; the benchmark measures its rendering).
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table5(io.Discard)
	}
}

// BenchmarkTable6 regenerates the training/production input table.
func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table6(io.Discard)
	}
}

// BenchmarkTrainingPhase measures the offline training cost itself (the
// §5.1 pipeline: profile, mine, prove, verify, cache) per benchmark —
// the "expensive work moved offline" that production lookups amortize.
func BenchmarkTrainingPhase(b *testing.B) {
	for _, w := range workloads.All() {
		b.Run(w.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				engine := core.NewEngine(core.Options{Relax: w.Relaxations})
				if err := engine.Train(w.NewState(), w.Tasks(workloads.Training, 1000)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
