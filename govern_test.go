package janus

import (
	"bytes"
	"errors"
	"runtime"
	"testing"

	"repro/internal/chaos"
	"repro/internal/obs"
)

// trainedSpec trains a throwaway runner on identity tasks and returns the
// serialized spec artifact.
func trainedSpec(t *testing.T) []byte {
	t.Helper()
	st := exampleState()
	var tasks []Task
	for i := 1; i <= 4; i++ {
		tasks = append(tasks, identityTask(int64(i)))
	}
	r := New(Config{})
	if err := r.Train(st, tasks); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.SaveSpec(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadSpecStrictRejectsCorruptArtifact(t *testing.T) {
	spec := trainedSpec(t)
	corrupted := chaos.CorruptSpec(spec, 7, 2)
	r := New(Config{})
	err := r.LoadSpec(bytes.NewReader(corrupted))
	var se *SpecError
	if !errors.As(err, &se) {
		t.Fatalf("LoadSpec(corrupt) = %v, want *SpecError", err)
	}
	if r.SpecRejected() {
		t.Fatal("strict rejection must not mark the runner as leniently degraded")
	}
	// The pristine artifact still loads into the same runner.
	if err := r.LoadSpec(bytes.NewReader(spec)); err != nil {
		t.Fatalf("pristine spec rejected after a failed load: %v", err)
	}
}

// TestLoadSpecLenientDegradesAndRuns is the deployment-fault acceptance
// path: a bit-flipped artifact under SpecLenient does not fail the load —
// the rejection is recorded, a spec.rejected event lands on the trace, and
// the runner completes its runs correctly on write-set detection.
func TestLoadSpecLenientDegradesAndRuns(t *testing.T) {
	spec := trainedSpec(t)
	corrupted := chaos.CorruptSpec(spec, 11, 1)
	trace := NewTrace(256)
	r := New(Config{Threads: 4, Trace: trace})
	if err := r.LoadSpecPolicy(bytes.NewReader(corrupted), SpecLenient); err != nil {
		t.Fatalf("lenient load failed the call: %v", err)
	}
	if !r.SpecRejected() {
		t.Fatal("SpecRejected() = false after a lenient rejection")
	}
	rejected := 0
	for _, e := range trace.Events() {
		if e.Type == obs.EvSpecRejected {
			rejected++
		}
	}
	if rejected != 1 {
		t.Fatalf("spec.rejected events = %d, want 1", rejected)
	}
	var tasks []Task
	for i := 1; i <= 12; i++ {
		tasks = append(tasks, identityTask(int64(i)))
	}
	st := exampleState()
	final, _, err := r.Run(st, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := final.Get("work"); v.String() != "0" {
		t.Fatalf("degraded run: work = %v, want 0", v)
	}
}

func TestLoadSpecLenientPassesThroughNonSpecErrors(t *testing.T) {
	spec := trainedSpec(t)
	r := New(Config{})
	r.Freeze()
	err := r.LoadSpecPolicy(bytes.NewReader(spec), SpecLenient)
	if !errors.Is(err, ErrSpecFrozen) {
		t.Fatalf("lenient post-Freeze load = %v, want ErrSpecFrozen", err)
	}
	var se *SpecError
	if errors.As(err, &se) {
		t.Fatal("ErrSpecFrozen must not masquerade as a *SpecError")
	}
	if r.SpecRejected() {
		t.Fatal("a contract violation must not count as an artifact rejection")
	}
}

// TestGovernedRunPopulatesHealth: Config.Govern attaches the health
// governor and RunStats.Health carries its end-of-run snapshot; without
// Govern the field stays nil.
func TestGovernedRunPopulatesHealth(t *testing.T) {
	st := exampleState()
	var tasks []Task
	for i := 1; i <= 10; i++ {
		tasks = append(tasks, identityTask(int64(i)))
	}
	r := New(Config{Threads: 4, Govern: true})
	if err := r.Train(st, tasks[:3]); err != nil {
		t.Fatal(err)
	}
	final, stats, err := r.Run(st, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := final.Get("work"); v.String() != "0" {
		t.Fatalf("work = %v, want 0", v)
	}
	if stats.Health == nil {
		t.Fatal("RunStats.Health = nil on a governed run")
	}
	if stats.Health.State == "" {
		t.Fatal("Health.State is empty")
	}

	plain := New(Config{Threads: 4})
	if _, stats, err = plain.Run(exampleState(), tasks); err != nil {
		t.Fatal(err)
	}
	if stats.Health != nil {
		t.Fatal("RunStats.Health must be nil without Config.Govern")
	}
}

// TestGovernedUntrainedRunDemotes: an untrained governed runner under
// contention is a natural miss storm — every pair query misses — so the
// governor must demote, the transition must be visible both in
// RunStats.Health and as a governor.demote trace event, and the run must
// still be correct. Demotion needs concurrent overlap, so a few fresh
// attempts are allowed before declaring failure.
func TestGovernedUntrainedRunDemotes(t *testing.T) {
	// Yield mid-transaction so concurrent commits land inside each task's
	// window even on a loaded host — plain identity tasks finish too fast
	// to ever overlap.
	yieldingIdentity := func(n int64) Task {
		return func(ex Executor) error {
			c := Counter{L: "work"}
			if err := c.Add(ex, n); err != nil {
				return err
			}
			runtime.Gosched()
			return c.Sub(ex, n)
		}
	}
	var tasks []Task
	for i := 1; i <= 100; i++ {
		tasks = append(tasks, yieldingIdentity(int64(i)))
	}
	for attempt := 0; attempt < 10; attempt++ {
		trace := NewTrace(4096)
		r := New(Config{
			Threads: 8, Govern: true, Trace: trace, MaxRetries: 1000,
			Governor: GovernorConfig{Window: 2, DemoteAbortRate: 1.1, TripAbortRate: 1.1},
		})
		st := exampleState()
		final, stats, err := r.Run(st, tasks)
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := final.Get("work"); v.String() != "0" {
			t.Fatalf("work = %v, want 0", v)
		}
		if stats.Health.Demotions == 0 {
			continue // no concurrent overlap this attempt; try again
		}
		demoteEvents := 0
		for _, e := range stats.Timeline {
			if e.Type == obs.EvGovDemote {
				demoteEvents++
			}
		}
		if demoteEvents == 0 {
			t.Fatalf("governor demoted (%d) but no governor.demote event in the timeline",
				stats.Health.Demotions)
		}
		if stats.Health.State == "healthy" && stats.Health.Restores == 0 {
			t.Fatalf("inconsistent health snapshot: %+v", stats.Health)
		}
		return
	}
	t.Fatal("untrained governed runner never demoted across 10 contended runs")
}

// TestRunBoundKnobs: the public MaxHistory / MaxTxnOps knobs reach the
// runtime — bounded history shows in Stats.MaxHist, and a transaction past
// its op budget fails the run with *OplogBudgetError.
func TestRunBoundKnobs(t *testing.T) {
	var tasks []Task
	for i := 1; i <= 40; i++ {
		tasks = append(tasks, addTask(1))
	}
	r := New(Config{Threads: 4, Detection: DetectWriteSet, MaxHistory: 4})
	final, stats, err := r.Run(exampleState(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := final.Get("work"); v.String() != "40" {
		t.Fatalf("work = %v, want 40", v)
	}
	if stats.Run.MaxHist > 4 {
		t.Fatalf("MaxHist = %d exceeds the MaxHistory bound 4", stats.Run.MaxHist)
	}

	hungry := func(ex Executor) error {
		for i := 0; i < 6; i++ {
			if err := (Counter{L: "work"}).Add(ex, 1); err != nil {
				return err
			}
		}
		return nil
	}
	r = New(Config{Threads: 1, Detection: DetectWriteSet, MaxTxnOps: 3})
	_, _, err = r.Run(exampleState(), []Task{hungry})
	var be *OplogBudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *OplogBudgetError", err)
	}
	if be.Budget != 3 {
		t.Fatalf("budget = %d, want 3", be.Budget)
	}
}
