// Prepared projections: the commit-time detection artifact.
//
// Committed logs are immutable, but the sequence detector used to
// re-derive everything it needs from them — the per-location
// decomposition (Figure 8's DECOMPOSE), the symbolic shapes fed to the
// commutativity cache, and the access modes behind the write-set
// fallback — on every detection, for every detecting transaction, on
// every retry. Prepared hoists that work to a single computation per log
// (at commit time for history entries, once per attempt for the running
// transaction) and shares the result read-only among all concurrent
// detectors — the same "compute once in hindsight, reuse at speed"
// economics the paper applies to commutativity conditions, applied to the
// validation path itself.
package conflict

import (
	"sync"

	"repro/internal/cache"
	"repro/internal/oplog"
	"repro/internal/seqabs"
)

// Prepared is one transaction log with its detection-side projections
// computed once: the per-location subsequences in first-access order,
// each with its memoized symbolic shape, plus lazily memoized write-set
// access modes. A Prepared is immutable after Prepare returns (the lazy
// mode maps are guarded by sync.Once), so a single value is safely shared
// by any number of concurrent DetectPrepared calls.
type Prepared struct {
	log  oplog.Log
	locs []preparedLoc

	// dec and symArena are the artifact's backing buffers. They are owned
	// exclusively while preparing and recycled through preparedPool for
	// unpublished attempts; a published Prepared keeps them forever.
	dec      oplog.Decomposer
	symArena []oplog.Sym

	// modes memoizes the whole-log access modes the write-set detector
	// compares; computed on first use, then read-only.
	modesOnce sync.Once
	modes     map[oplog.PLoc]mode
}

// preparedLoc is one per-projection-location subsequence with its
// memoized projections. Accessed by pointer only (it embeds a sync.Once).
type preparedLoc struct {
	p        oplog.PLoc
	seq      oplog.Log
	syms     []oplog.Sym
	wildcard bool

	// modes memoizes the subsequence's access modes for the write-set
	// fallback paths (wildcard extents, cache misses, relaxed residuals).
	modesOnce sync.Once
	modes     map[oplog.PLoc]mode

	// key memoizes the subsequence's rendered commutativity-cache key, so
	// pair lookups join two prepared keys instead of re-running the
	// idempotent-block abstraction per query. Keys depend only on the
	// cache's abstraction mode (caches always use the default block
	// bound), so the memo is tagged with the mode it was rendered under.
	keyOnce sync.Once
	keyMode seqabs.Mode
	key     []byte
}

// seqKey returns the projection's rendered cache key, computing it on
// first use. ok is false when c abstracts under a different mode than the
// memoized rendering — the caller must then fall back to a per-call
// lookup (never the case in production, where one detector owns one
// cache for the life of the run).
func (pl *preparedLoc) seqKey(c *cache.Cache) (key []byte, ok bool) {
	pl.keyOnce.Do(func() {
		pl.keyMode = c.Mode()
		pl.key = c.AppendSeqKey(nil, pl.syms)
	})
	if pl.keyMode != c.Mode() {
		return nil, false
	}
	return pl.key, true
}

// Prepare computes a log's detection artifact. The per-location symbolic
// shapes are materialized eagerly into a single shared arena (they are
// needed on every cache lookup); the write-set mode maps are deferred to
// first use, because a trained cache answers most runs without ever
// falling back.
func Prepare(l oplog.Log) *Prepared {
	return prepareInto(new(Prepared), l)
}

// preparedPool recycles unpublished attempt artifacts (PreparePooled /
// Recycle), keeping the per-attempt preparation allocation-free in the
// steady state — the seqabs.AppendKey discipline applied to the whole
// artifact.
var preparedPool = sync.Pool{New: func() any { return new(Prepared) }}

// PreparePooled is Prepare drawing the artifact and its backing buffers
// from a pool. The caller owns the result exclusively until it either
// publishes it to the committed history (after which it is shared
// read-only forever and must never be recycled) or calls Recycle.
func PreparePooled(l oplog.Log) *Prepared {
	return prepareInto(preparedPool.Get().(*Prepared), l)
}

// Recycle returns an unpublished artifact's backing buffers to the pool.
// The caller must guarantee no other goroutine can still reach p — in the
// runtime, the artifact of an attempt that aborted without publishing.
func (p *Prepared) Recycle() {
	if p == nil {
		return
	}
	p.dec.Release()
	clear(p.symArena)
	p.symArena = p.symArena[:0]
	for i := range p.locs {
		p.locs[i] = preparedLoc{}
	}
	p.locs = p.locs[:0]
	p.log = nil
	p.modesOnce = sync.Once{}
	p.modes = nil
	preparedPool.Put(p)
}

// prepareInto builds the artifact in place. p is either freshly allocated
// or recycled (all lazy state zeroed by Recycle), never a live shared
// value.
func prepareInto(p *Prepared, l oplog.Log) *Prepared {
	p.log = l
	decomp := p.dec.Decompose(l)
	if len(decomp) == 0 {
		p.locs = p.locs[:0]
		return p
	}
	total := 0
	for i := range decomp {
		total += len(decomp[i].Seq)
	}
	if cap(p.symArena) < total {
		p.symArena = make([]oplog.Sym, total)
	} else {
		p.symArena = p.symArena[:total]
	}
	if cap(p.locs) < len(decomp) {
		p.locs = make([]preparedLoc, len(decomp))
	} else {
		p.locs = p.locs[:len(decomp)]
	}
	off := 0
	for i := range decomp {
		d := &decomp[i]
		syms := p.symArena[off : off+len(d.Seq) : off+len(d.Seq)]
		off += len(d.Seq)
		for j, e := range d.Seq {
			syms[j] = e.Op.Sym()
		}
		p.locs[i] = preparedLoc{p: d.P, seq: d.Seq, syms: syms, wildcard: d.P.IsWildcard()}
	}
	return p
}

// PrepareAll prepares each log (a convenience for the DetectV shims and
// tests; the runtime prepares incrementally, one entry per commit).
func PrepareAll(logs []oplog.Log) []*Prepared {
	if logs == nil {
		return nil
	}
	out := make([]*Prepared, len(logs))
	for i, l := range logs {
		out[i] = Prepare(l)
	}
	return out
}

// Log returns the underlying transaction log.
func (p *Prepared) Log() oplog.Log { return p.log }

// Ops returns the number of logged operations.
func (p *Prepared) Ops() int { return len(p.log) }

// NumLocs returns the number of projection locations the log touches.
func (p *Prepared) NumLocs() int { return len(p.locs) }

// accessModes returns the whole-log write-set modes, computing them on
// first use.
func (p *Prepared) accessModes() map[oplog.PLoc]mode {
	p.modesOnce.Do(func() { p.modes = accessModes(p.log) })
	return p.modes
}

// accessModes returns the subsequence's write-set modes, computing them
// on first use.
func (pl *preparedLoc) accessModes() map[oplog.PLoc]mode {
	pl.modesOnce.Do(func() { pl.modes = accessModes(pl.seq) })
	return pl.modes
}
