// Prepared projections: the commit-time detection artifact.
//
// Committed logs are immutable, but the sequence detector used to
// re-derive everything it needs from them — the per-location
// decomposition (Figure 8's DECOMPOSE), the symbolic shapes fed to the
// commutativity cache, and the access modes behind the write-set
// fallback — on every detection, for every detecting transaction, on
// every retry. Prepared hoists that work to a single computation per log
// (at commit time for history entries, once per attempt for the running
// transaction) and shares the result read-only among all concurrent
// detectors — the same "compute once in hindsight, reuse at speed"
// economics the paper applies to commutativity conditions, applied to the
// validation path itself.
package conflict

import (
	"sync"

	"repro/internal/cache"
	"repro/internal/oplog"
	"repro/internal/seqabs"
	"repro/internal/state"
)

// Prepared is one transaction log with its detection-side projections
// computed once: the per-location subsequences in first-access order,
// each with its memoized symbolic shape, plus lazily memoized write-set
// access modes. A Prepared is immutable after Prepare returns (the lazy
// mode maps are guarded by sync.Once), so a single value is safely shared
// by any number of concurrent DetectPrepared calls.
type Prepared struct {
	log oplog.Log

	// streaming keeps the per-location projections virtual: locations()
	// discovers the projection-location index only (one small entry per
	// distinct PLoc, no event or descriptor arenas), and a location's
	// subsequence is rendered on demand into per-detection scratch and
	// released after the verdict. Chosen automatically for large logs so
	// detection memory stays flat in ops/txn; see streamOpsThreshold.
	streaming bool

	// packed, when non-nil, is the compact compressed record of a demoted
	// committed-history entry (see packed.go); log is nil and every
	// projection decodes from the record.
	packed *packedRec

	// locs memoizes the per-location decomposition with its symbolic
	// shapes. Only the sequence detector consumes it — the write-set
	// detector compares whole-log access modes — so it is computed on
	// first use (locations), not at Prepare: a run under write-set
	// detection never pays for decomposition at all. In streaming or
	// compressed mode the entries are index stubs (location and wildcard
	// flag only; seq and syms nil) rendered on demand via renderLoc.
	locsOnce sync.Once
	locs     []preparedLoc

	// dec and symArena are the decomposition's backing buffers. They are
	// owned exclusively while materializing and recycled through
	// preparedPool for unpublished attempts; a published Prepared keeps
	// them forever.
	dec      oplog.Decomposer
	symArena []oplog.Sym

	// modes memoizes the whole-log access modes the write-set detector
	// compares; computed on first use, then read-only.
	modesOnce sync.Once
	modes     map[oplog.PLoc]mode

	// foot memoizes the log's location footprint (Footprint); the stm's
	// striped commit path reads it on every commit attempt. sigAll and
	// sigWrite are the footprint folded into 64-bit overlap signatures
	// (Signatures), computed alongside it.
	footOnce sync.Once
	foot     []FootprintLoc
	sigAll   uint64
	sigWrite uint64
}

// FootprintLoc is one distinct shared location a prepared log accesses,
// with the log's aggregate access mode for it and a precomputed FNV-1a
// hash. The footprint is the commit-concurrency interface: two logs whose
// footprints are disjoint commute trivially (no operation of one can
// observe or disturb the other), which is what lets the stm replay their
// commits concurrently under per-location stripe locks. Hashes are
// precomputed so stripe mapping and overlap signatures never re-hash
// location strings on the commit path.
type FootprintLoc struct {
	Loc   state.Loc
	Hash  uint64
	Write bool
}

// footprintScanBound is the distinct-location count under which
// Footprint deduplicates by linear scan; larger footprints build an
// index map (the same trade the oplog.Decomposer makes).
const footprintScanBound = 64

// Footprint returns the log's distinct accessed locations in first-access
// order, each with its aggregate write flag and location hash, computed
// on first use and shared read-only thereafter. Projection locations
// collapse to their underlying state location ("rel#k" and "rel#*" both
// contribute "rel"), so wildcard extents and per-key accesses of one
// relation land on the same footprint entry.
func (p *Prepared) Footprint() []FootprintLoc {
	p.footOnce.Do(func() {
		if p.packed != nil {
			p.foot = p.packed.footprint()
			p.sigAll, p.sigWrite = p.packed.sigAll, p.packed.sigWrite
			return
		}
		var idx map[state.Loc]int
		for _, e := range p.log {
			for _, a := range e.Acc {
				loc := a.P.Loc()
				j := -1
				if idx != nil {
					if k, ok := idx[loc]; ok {
						j = k
					}
				} else {
					for k := range p.foot {
						if p.foot[k].Loc == loc {
							j = k
							break
						}
					}
				}
				if j >= 0 {
					p.foot[j].Write = p.foot[j].Write || a.Write
					continue
				}
				p.foot = append(p.foot, FootprintLoc{Loc: loc, Hash: fnv64a(string(loc)), Write: a.Write})
				if idx == nil && len(p.foot) > footprintScanBound {
					idx = make(map[state.Loc]int, 2*len(p.foot))
					for k := range p.foot {
						idx[p.foot[k].Loc] = k
					}
				} else if idx != nil {
					idx[loc] = len(p.foot) - 1
				}
			}
		}
		for i := range p.foot {
			bit := uint64(1) << (p.foot[i].Hash % 64)
			p.sigAll |= bit
			if p.foot[i].Write {
				p.sigWrite |= bit
			}
		}
	})
	return p.foot
}

// Signatures returns the footprint folded into 64-bit overlap
// signatures: one bit per location hash, over all accessed locations and
// over written locations. Two logs can only share a location — and
// therefore can only conflict under any sound detector — if
// (A.sigWrite & B.sigAll) | (A.sigAll & B.sigWrite) is non-zero: equal
// locations set equal bits, so the test has no false negatives, and a
// collision merely costs a precise check.
func (p *Prepared) Signatures() (sigAll, sigWrite uint64) {
	if p.packed != nil {
		// Stored at compression time; the immutable record needs no memo.
		return p.packed.sigAll, p.packed.sigWrite
	}
	p.Footprint()
	return p.sigAll, p.sigWrite
}

// fnv64a is the 64-bit FNV-1a string hash.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// preparedLoc is one per-projection-location subsequence with its
// memoized projections. Accessed by pointer only (it embeds a sync.Once).
type preparedLoc struct {
	p        oplog.PLoc
	seq      oplog.Log
	syms     []oplog.Sym
	wildcard bool

	// packed/pIdx back-reference a compressed record's location slot; set
	// only on the index stubs of a compressed artifact (and carried into
	// their rendered scratch copies), where seq is nil and the access
	// modes decode from the record instead of the subsequence.
	packed *packedRec
	pIdx   int

	// modes memoizes the subsequence's access modes for the write-set
	// fallback paths (wildcard extents, cache misses, relaxed residuals).
	modesOnce sync.Once
	modes     map[oplog.PLoc]mode

	// key memoizes the subsequence's rendered commutativity-cache key, so
	// pair lookups join two prepared keys instead of re-running the
	// idempotent-block abstraction per query. Keys depend only on the
	// cache's abstraction mode (caches always use the default block
	// bound), so the memo is tagged with the mode it was rendered under.
	keyOnce sync.Once
	keyMode seqabs.Mode
	key     []byte
}

// seqKey returns the projection's rendered cache key, computing it on
// first use. ok is false when c abstracts under a different mode than the
// memoized rendering — the caller must then fall back to a per-call
// lookup (never the case in production, where one detector owns one
// cache for the life of the run).
func (pl *preparedLoc) seqKey(c *cache.Cache) (key []byte, ok bool) {
	pl.keyOnce.Do(func() {
		pl.keyMode = c.Mode()
		// Append into the existing buffer: nil for a shared artifact (the
		// memo is rendered once), the slot's reusable buffer for a
		// scratch-rendered location (re-rendered per pair, so the
		// capacity amortizes).
		pl.key = c.AppendSeqKey(pl.key[:0], pl.syms)
	})
	if pl.keyMode != c.Mode() {
		return nil, false
	}
	return pl.key, true
}

// Prepare computes a log's detection artifact. All projections are
// deferred to first use behind sync.Once memos: the decomposition and
// symbolic shapes materialize when a sequence detector first asks for
// them (locations), the write-set mode maps when a detection falls back
// to them, the footprint when the commit path plans its stripes — so
// each run pays only for the projections its configuration consumes.
func Prepare(l oplog.Log) *Prepared {
	return prepareInto(new(Prepared), l)
}

// preparedPool recycles unpublished attempt artifacts (PreparePooled /
// Recycle), keeping the per-attempt preparation allocation-free in the
// steady state — the seqabs.AppendKey discipline applied to the whole
// artifact.
var preparedPool = sync.Pool{New: func() any { return new(Prepared) }}

// PreparePooled is Prepare drawing the artifact and its backing buffers
// from a pool. The caller owns the result exclusively until it either
// publishes it to the committed history (after which it is shared
// read-only forever and must never be recycled) or calls Recycle.
func PreparePooled(l oplog.Log) *Prepared {
	return prepareInto(preparedPool.Get().(*Prepared), l)
}

// Recycle returns an unpublished artifact's backing buffers to the pool.
// The caller must guarantee no other goroutine can still reach p — in the
// runtime, the artifact of an attempt that aborted without publishing.
func (p *Prepared) Recycle() {
	if p == nil {
		return
	}
	p.dec.Release()
	clear(p.symArena)
	p.symArena = p.symArena[:0]
	for i := range p.locs {
		p.locs[i] = preparedLoc{}
	}
	p.locs = p.locs[:0]
	p.locsOnce = sync.Once{}
	p.log = nil
	p.streaming = false
	p.packed = nil
	p.modesOnce = sync.Once{}
	p.modes = nil
	p.footOnce = sync.Once{}
	clear(p.foot)
	p.foot = p.foot[:0]
	p.sigAll, p.sigWrite = 0, 0
	preparedPool.Put(p)
}

// streamOpsThreshold is the op count from which Prepare switches to
// streaming projections: below it the materialized arenas are small and
// their memoization wins (every projection computed exactly once per
// artifact); from it up, detection renders per-location subsequences on
// demand into pooled scratch so memory stays flat no matter how large
// the transaction grows. A var so tests and benchmarks can pin either
// mode at equal sizes.
var streamOpsThreshold = 256

// prepareInto binds the artifact to its log. p is either freshly
// allocated or recycled (all lazy state zeroed by Recycle), never a live
// shared value. Every projection is lazy; nothing else is computed here.
func prepareInto(p *Prepared, l oplog.Log) *Prepared {
	p.log = l
	p.streaming = len(l) >= streamOpsThreshold
	return p
}

// PrepareStreaming is Prepare with streaming projections forced
// regardless of log size (tests and memory benchmarks; production uses
// the automatic threshold).
func PrepareStreaming(l oplog.Log) *Prepared {
	p := Prepare(l)
	p.streaming = true
	return p
}

// Streaming reports whether the artifact keeps its projections virtual.
func (p *Prepared) Streaming() bool { return p.streaming }

// locations returns the per-location decomposition, materializing it on
// first use and sharing it read-only thereafter (safe for concurrent
// detectors via the sync.Once). The buffers behind it (dec, symArena)
// belong to the artifact and recycle with it.
func (p *Prepared) locations() []preparedLoc {
	p.locsOnce.Do(p.materializeLocs)
	return p.locs
}

func (p *Prepared) materializeLocs() {
	if p.packed != nil {
		// Index stubs over the compressed record: location and wildcard
		// flag for the overlap walk, back-references for on-demand decode.
		r := p.packed
		if cap(p.locs) < len(r.locs) {
			p.locs = make([]preparedLoc, len(r.locs))
		} else {
			p.locs = p.locs[:len(r.locs)]
		}
		for i := range r.locs {
			p.locs[i] = preparedLoc{p: r.locs[i].p, wildcard: r.locs[i].wildcard, packed: r, pIdx: i}
		}
		return
	}
	if p.streaming {
		// Discovery pass only: the index in first-access order, no arenas.
		infos := p.dec.Stream(p.log)
		if cap(p.locs) < len(infos) {
			p.locs = make([]preparedLoc, len(infos))
		} else {
			p.locs = p.locs[:len(infos)]
		}
		for i := range infos {
			p.locs[i] = preparedLoc{p: infos[i].P, wildcard: infos[i].P.IsWildcard()}
		}
		return
	}
	decomp := p.dec.Decompose(p.log)
	if len(decomp) == 0 {
		p.locs = p.locs[:0]
		return
	}
	total := 0
	for i := range decomp {
		total += len(decomp[i].Seq)
	}
	if cap(p.symArena) < total {
		p.symArena = make([]oplog.Sym, total)
	} else {
		p.symArena = p.symArena[:total]
	}
	if cap(p.locs) < len(decomp) {
		p.locs = make([]preparedLoc, len(decomp))
	} else {
		p.locs = p.locs[:len(decomp)]
	}
	off := 0
	for i := range decomp {
		d := &decomp[i]
		syms := p.symArena[off : off+len(d.Seq) : off+len(d.Seq)]
		off += len(d.Seq)
		for j, e := range d.Seq {
			syms[j] = e.Op.Sym()
		}
		p.locs[i] = preparedLoc{p: d.P, seq: d.Seq, syms: syms, wildcard: d.P.IsWildcard()}
	}
}

// PrepareAll prepares each log (a convenience for the DetectV shims and
// tests; the runtime prepares incrementally, one entry per commit).
func PrepareAll(logs []oplog.Log) []*Prepared {
	if logs == nil {
		return nil
	}
	out := make([]*Prepared, len(logs))
	for i, l := range logs {
		out[i] = Prepare(l)
	}
	return out
}

// Log returns the underlying transaction log (nil for a compressed
// artifact, which retains no events).
func (p *Prepared) Log() oplog.Log { return p.log }

// Ops returns the number of logged operations.
func (p *Prepared) Ops() int {
	if p.packed != nil {
		return p.packed.ops
	}
	return len(p.log)
}

// NumLocs returns the number of projection locations the log touches.
func (p *Prepared) NumLocs() int { return len(p.locations()) }

// accessModes returns the whole-log write-set modes, computing them on
// first use. A compressed artifact reconstructs them from the record's
// per-location entries.
func (p *Prepared) accessModes() map[oplog.PLoc]mode {
	p.modesOnce.Do(func() {
		if p.packed != nil {
			p.modes = p.packed.allModes()
			return
		}
		p.modes = accessModes(p.log)
	})
	return p.modes
}

// virtual reports whether the location is an index stub (streaming or
// compressed artifact) whose subsequence must be rendered before use.
func (pl *preparedLoc) virtual() bool { return pl.syms == nil }

// renderSlot is one reusable rendering target: a preparedLoc whose seq,
// syms, and cache-key buffers are owned by the slot and recycled across
// renders. Single-goroutine; the memo Onces are re-armed per render so
// the rendered location behaves exactly like a materialized one to
// pairVerdict.
type renderSlot struct {
	pl   preparedLoc
	seq  oplog.Log
	syms []oplog.Sym
}

// renderScratch holds the two rendering slots one detection call needs —
// the running transaction's side and the committed side — drawn from a
// pool per DetectPrepared call that meets a virtual location and
// released (dropping all event references) after the verdict.
type renderScratch struct {
	t, c renderSlot
}

var scratchPool = sync.Pool{New: func() any { return new(renderScratch) }}

func getScratch() *renderScratch { return scratchPool.Get().(*renderScratch) }

// release drops the slots' event and descriptor references (keeping
// buffer capacity) and returns the scratch to the pool.
func (sc *renderScratch) release() {
	for _, sl := range [...]*renderSlot{&sc.t, &sc.c} {
		clear(sl.seq)
		sl.seq = sl.seq[:0]
		clear(sl.syms)
		sl.syms = sl.syms[:0]
		key := sl.pl.key
		sl.pl = preparedLoc{}
		sl.pl.key = key[:0]
	}
	scratchPool.Put(sc)
}

// renderLoc materializes a virtual location into the slot and returns
// the rendered preparedLoc. For a streaming artifact the subsequence is
// streamed out of the log (oplog.SubseqIter); for a compressed one the
// symbolic shape is decoded from the record (no events exist — seq stays
// nil and the access modes decode on demand). A non-virtual location
// passes through untouched.
func (p *Prepared) renderLoc(src *preparedLoc, sl *renderSlot) *preparedLoc {
	if !src.virtual() {
		return src
	}
	key := sl.pl.key
	sl.pl = preparedLoc{p: src.p, wildcard: src.wildcard, packed: src.packed, pIdx: src.pIdx}
	sl.pl.key = key[:0]
	if src.packed != nil {
		sl.syms = src.packed.appendSyms(sl.syms[:0], src.pIdx)
		sl.pl.syms = sl.syms
		return &sl.pl
	}
	sl.seq, sl.syms = sl.seq[:0], sl.syms[:0]
	it := p.log.Subseq(src.p)
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		sl.seq = append(sl.seq, e)
		sl.syms = append(sl.syms, e.Op.Sym())
	}
	sl.pl.seq = sl.seq
	sl.pl.syms = sl.syms
	return &sl.pl
}

// accessModes returns the subsequence's write-set modes, computing them
// on first use — from the events for a materialized or rendered
// subsequence, decoded from the compressed record for a demoted one.
func (pl *preparedLoc) accessModes() map[oplog.PLoc]mode {
	pl.modesOnce.Do(func() {
		if pl.packed != nil {
			pl.modes = pl.packed.locModes(pl.pIdx)
			return
		}
		pl.modes = accessModes(pl.seq)
	})
	return pl.modes
}
