package conflict

import (
	"testing"

	"repro/internal/adt"
	"repro/internal/cache"
	"repro/internal/commute"
	"repro/internal/oplog"
	"repro/internal/seqabs"
	"repro/internal/state"
)

func baseState() *state.State {
	st := state.New()
	st.Set("work", state.Int(0))
	st.Set("max", state.Int(1))
	st.Set("ctx", state.Str(""))
	st.Set("bits", adt.NewRelValue())
	return st
}

// record executes ops on a clone of st and returns the log.
func record(t *testing.T, st *state.State, task int, ops ...oplog.Op) oplog.Log {
	t.Helper()
	work := st.Clone()
	var l oplog.Log
	for i, op := range ops {
		acc := op.Accesses(work)
		v, err := op.Apply(work)
		if err != nil {
			t.Fatalf("apply %v: %v", op, err)
		}
		l = append(l, &oplog.Event{Op: op, Task: task, Seq: i, Acc: acc, Observed: v})
	}
	return l
}

func TestWriteSetBasic(t *testing.T) {
	st := baseState()
	w := NewWriteSet()
	add := record(t, st, 1, adt.NumAddOp{L: "work", Delta: 1})
	add2 := record(t, st, 2, adt.NumAddOp{L: "work", Delta: -1})
	rd := record(t, st, 2, adt.NumLoadOp{L: "work"})
	other := record(t, st, 2, adt.NumLoadOp{L: "max"})

	if !w.Detect(st, add, []oplog.Log{add2}) {
		t.Errorf("write-write overlap must conflict under write-set")
	}
	if !w.Detect(st, rd, []oplog.Log{add}) {
		t.Errorf("read-write overlap must conflict")
	}
	if w.Detect(st, rd, []oplog.Log{record(t, st, 3, adt.NumLoadOp{L: "work"})}) {
		t.Errorf("read-read must not conflict")
	}
	if w.Detect(st, add, []oplog.Log{other}) {
		t.Errorf("disjoint locations must not conflict")
	}
	if w.Detect(st, add, nil) {
		t.Errorf("empty history must not conflict (validity)")
	}
	if s := w.Stats(); s.Detections != 5 || s.Conflicts != 2 {
		t.Errorf("stats = %+v", s)
	}
	if w.Name() != "write-set" {
		t.Errorf("Name = %q", w.Name())
	}
}

func TestSequenceHitAvoidsFalseConflict(t *testing.T) {
	st := baseState()
	c := cache.New(seqabs.Abstract)
	idSyms := func(n string) []oplog.Sym {
		return []oplog.Sym{
			{Kind: adt.KindNumAdd, Arg: n}, {Kind: adt.KindNumAdd, Arg: "-" + n},
		}
	}
	c.Put(idSyms("1"), idSyms("2"), commute.CondRegister)
	det := NewSequence(c, nil)
	id1 := record(t, st, 1, adt.NumAddOp{L: "work", Delta: 5}, adt.NumAddOp{L: "work", Delta: -5})
	id2 := record(t, st, 2, adt.NumAddOp{L: "work", Delta: 7}, adt.NumAddOp{L: "work", Delta: -7})
	if det.Detect(st, id1, []oplog.Log{id2}) {
		t.Fatalf("trained identity pair must not conflict")
	}
	if s := det.Stats(); s.PairQueries != 1 || s.Fallbacks != 0 {
		t.Errorf("stats = %+v", s)
	}
	if det.Name() != "sequence" {
		t.Errorf("Name = %q", det.Name())
	}
}

func TestSequenceMissFallsBackToWriteSet(t *testing.T) {
	st := baseState()
	det := NewSequence(cache.New(seqabs.Abstract), nil)
	id1 := record(t, st, 1, adt.NumAddOp{L: "work", Delta: 5}, adt.NumAddOp{L: "work", Delta: -5})
	id2 := record(t, st, 2, adt.NumAddOp{L: "work", Delta: 7}, adt.NumAddOp{L: "work", Delta: -7})
	if !det.Detect(st, id1, []oplog.Log{id2}) {
		t.Fatalf("empty cache must fall back to write-set and conflict")
	}
	if s := det.Stats(); s.Fallbacks != 1 {
		t.Errorf("stats = %+v", s)
	}
	if det.Cache.Stats().Misses != 1 {
		t.Errorf("cache stats = %+v", det.Cache.Stats())
	}
}

func TestSequenceNilCachePureFallback(t *testing.T) {
	st := baseState()
	det := &Sequence{}
	rd := record(t, st, 1, adt.NumLoadOp{L: "work"})
	wr := record(t, st, 2, adt.NumStoreOp{L: "work", V: 3})
	if !det.Detect(st, rd, []oplog.Log{wr}) {
		t.Fatalf("nil cache must behave like write-set")
	}
}

func TestSequenceOnlineMode(t *testing.T) {
	st := baseState()
	det := &Sequence{Cache: cache.New(seqabs.Abstract), Online: true}
	id1 := record(t, st, 1, adt.NumAddOp{L: "work", Delta: 5}, adt.NumAddOp{L: "work", Delta: -5})
	id2 := record(t, st, 2, adt.NumAddOp{L: "work", Delta: 7}, adt.NumAddOp{L: "work", Delta: -7})
	if det.Detect(st, id1, []oplog.Log{id2}) {
		t.Fatalf("online mode must run the concrete check and admit identity pairs")
	}
	// Genuinely conflicting pair is still caught online.
	wr5 := record(t, st, 1, adt.NumStoreOp{L: "work", V: 5})
	rd := record(t, st, 2, adt.NumLoadOp{L: "work"})
	if !det.Detect(st, rd, []oplog.Log{wr5}) {
		t.Fatalf("online mode must detect a read disturbed by a store")
	}
}

func TestRelaxationsRAWSpuriousReads(t *testing.T) {
	// The JGraphT-1 maxColor pattern (Figure 3): one transaction reads,
	// another writes. RAW relaxation suppresses the conflict.
	st := baseState()
	rx := NewRelaxations([]state.Loc{"max"}, nil)
	det := NewSequence(cache.New(seqabs.Abstract), rx)
	rd := record(t, st, 1, adt.NumLoadOp{L: "max"})
	wr := record(t, st, 2, adt.NumStoreOp{L: "max", V: 5})
	if det.Detect(st, rd, []oplog.Log{wr}) {
		t.Fatalf("RAW-relaxed read/write must not conflict")
	}
	// Write-write on the same location still conflicts (no WAW relax).
	wr2 := record(t, st, 1, adt.NumStoreOp{L: "max", V: 9})
	if !det.Detect(st, wr2, []oplog.Log{wr}) {
		t.Fatalf("stores of different values must still conflict")
	}
	if s := det.Stats(); s.RelaxedChecks == 0 {
		t.Errorf("relaxed path not exercised: %+v", s)
	}
}

func TestRelaxationsWAWSharedAsLocal(t *testing.T) {
	// The PMD pattern (Figure 4): both transactions overwrite then read
	// their own value. WAW relaxation drops the final COMMUTE check; the
	// SAMEREAD checks still pass because each read follows its own store.
	st := baseState()
	rx := NewRelaxations(nil, []state.Loc{"ctx"})
	det := NewSequence(cache.New(seqabs.Abstract), rx)
	a := record(t, st, 1, adt.StrStoreOp{L: "ctx", V: "a.go"}, adt.StrLoadOp{L: "ctx"})
	b := record(t, st, 2, adt.StrStoreOp{L: "ctx", V: "b.go"}, adt.StrLoadOp{L: "ctx"})
	if det.Detect(st, a, []oplog.Log{b}) {
		t.Fatalf("WAW-relaxed shared-as-local must not conflict")
	}
	// Without the relaxation it conflicts (different final stores).
	strict := NewSequence(cache.New(seqabs.Abstract), nil)
	if !strict.Detect(st, a, []oplog.Log{b}) {
		t.Fatalf("unrelaxed shared-as-local with different stores must conflict")
	}
	// A bare read of the entry value still conflicts: SAMEREAD is kept.
	spy := record(t, st, 3, adt.StrLoadOp{L: "ctx"})
	if !det.Detect(st, spy, []oplog.Log{b}) {
		t.Fatalf("WAW relaxation must not drop SAMEREAD")
	}
}

func TestRelaxationsBothOnStack(t *testing.T) {
	st := state.New()
	st.Set("stk", state.IntList{})
	rx := NewRelaxations([]state.Loc{"stk"}, []state.Loc{"stk"})
	det := NewSequence(cache.New(seqabs.Abstract), rx)
	push := record(t, st, 1, adt.ListPushOp{L: "stk", V: 1})
	push2 := record(t, st, 2, adt.ListPushOp{L: "stk", V: 2})
	if det.Detect(st, push, []oplog.Log{push2}) {
		t.Fatalf("fully relaxed stack ops must not conflict")
	}
}

func TestWildcardFallsBack(t *testing.T) {
	st := baseState()
	det := NewSequence(cache.New(seqabs.Abstract), nil)
	// Build events with a synthetic wildcard read (whole-relation scan)
	// against a concrete key write.
	scan := oplog.Log{{
		Op: adt.RelGetOp{L: "bits", Key: "1"}, Task: 1, Seq: 0,
		Acc: []oplog.Access{{P: oplog.MakePLoc("bits", "*"), Read: true}},
	}}
	put := record(t, st, 2, adt.RelPutOp{L: "bits", Key: "9", Val: "1"})
	if !det.Detect(st, scan, []oplog.Log{put}) {
		t.Fatalf("wildcard read vs key write must conflict conservatively")
	}
	if s := det.Stats(); s.Fallbacks != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestRelaxationAccessors(t *testing.T) {
	var nilRx *Relaxations
	if nilRx.TolerateRAW("x") || nilRx.TolerateWAW("x") || nilRx.Any("x") {
		t.Errorf("nil relaxations must tolerate nothing")
	}
	rx := NewRelaxations([]state.Loc{"a"}, []state.Loc{"b"})
	if !rx.TolerateRAW("a") || rx.TolerateRAW("b") {
		t.Errorf("RAW accessor wrong")
	}
	if !rx.TolerateWAW("b") || rx.TolerateWAW("a") {
		t.Errorf("WAW accessor wrong")
	}
	if !rx.Any("a") || !rx.Any("b") || rx.Any("c") {
		t.Errorf("Any wrong")
	}
}

func TestLearnOnlineConvergesWithoutTraining(t *testing.T) {
	st := baseState()
	det := NewSequence(cache.New(seqabs.Abstract), nil)
	det.LearnOnline = true
	id1 := record(t, st, 1, adt.NumAddOp{L: "work", Delta: 5}, adt.NumAddOp{L: "work", Delta: -5})
	id2 := record(t, st, 2, adt.NumAddOp{L: "work", Delta: 7}, adt.NumAddOp{L: "work", Delta: -7})
	// First query proves and caches the condition immediately: no conflict.
	if det.Detect(st, id1, []oplog.Log{id2}) {
		t.Fatalf("online learning must prove the identity pair on first sight")
	}
	if det.Cache.Len() == 0 {
		t.Fatalf("online learning must populate the cache")
	}
	// Second query is a plain hit.
	if det.Detect(st, id1, []oplog.Log{id2}) {
		t.Fatalf("second query must hit")
	}
	if s := det.Cache.Stats(); s.Hits == 0 {
		t.Fatalf("expected a cache hit after learning: %+v", s)
	}
}

func TestInferWAWAdmitsSharedAsLocal(t *testing.T) {
	st := baseState()
	det := NewSequence(cache.New(seqabs.Abstract), nil)
	det.InferWAW = true
	// Store-then-read pairs with different values: reads are stable
	// (each follows its own store); the final-value disagreement is
	// tolerated under commit-order serialization.
	a := record(t, st, 1, adt.StrStoreOp{L: "ctx", V: "a.go"}, adt.StrLoadOp{L: "ctx"})
	b := record(t, st, 2, adt.StrStoreOp{L: "ctx", V: "b.go"}, adt.StrLoadOp{L: "ctx"})
	if det.Detect(st, a, []oplog.Log{b}) {
		t.Fatalf("InferWAW must admit shared-as-local store/read pairs")
	}
	// A stale read is never admitted: SAMEREAD is kept.
	spy := record(t, st, 3, adt.StrLoadOp{L: "ctx"})
	if !det.Detect(st, spy, []oplog.Log{b}) {
		t.Fatalf("InferWAW must keep the read-stability requirement")
	}
	// Stack sequences: a balanced pair passes; a prestate-popping one
	// against a non-identity committed sequence does not.
	st2 := state.New()
	st2.Set("stk", state.IntList{5})
	bal := record(t, st2, 1, adt.ListPushOp{L: "stk", V: 1}, adt.ListPopOp{L: "stk"})
	grow := record(t, st2, 2, adt.ListPushOp{L: "stk", V: 9})
	if det.Detect(st2, bal, []oplog.Log{grow}) {
		t.Fatalf("balanced stack reads are stable under a growing committed txn")
	}
	popper := record(t, st2, 3, adt.ListPopOp{L: "stk"})
	if !det.Detect(st2, popper, []oplog.Log{grow}) {
		t.Fatalf("a prestate pop must conflict with a growing committed txn")
	}
}
