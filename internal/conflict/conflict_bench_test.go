package conflict

import (
	"strconv"
	"testing"

	"repro/internal/adt"
	"repro/internal/cache"
	"repro/internal/commute"
	"repro/internal/obs"
	"repro/internal/oplog"
	"repro/internal/seqabs"
	"repro/internal/state"
)

// benchLog builds a log without a testing.T (bench variant of record).
func benchLog(b *testing.B, st *state.State, task int, ops ...oplog.Op) oplog.Log {
	b.Helper()
	work := st.Clone()
	var l oplog.Log
	for i, op := range ops {
		acc := op.Accesses(work)
		v, err := op.Apply(work)
		if err != nil {
			b.Fatalf("apply %v: %v", op, err)
		}
		l = append(l, &oplog.Event{Op: op, Task: task, Seq: i, Acc: acc, Observed: v})
	}
	return l
}

// BenchmarkDetectHighContention measures the full sequence-detection path
// under concurrency: many workers validating transactions against a
// multi-entry committed history, with every per-location query answered by
// the shared trained cache. This is the §5.3 hot path the sharded cache
// exists for; run with -cpu 1,4,8.
func BenchmarkDetectHighContention(b *testing.B) {
	const nLocs = 16
	st := state.New()
	for i := 0; i < nLocs; i++ {
		st.Set(state.Loc("ctr"+strconv.Itoa(i)), state.Int(0))
	}
	c := cache.New(seqabs.Abstract)
	idSyms := func(n string) []oplog.Sym {
		return []oplog.Sym{
			{Kind: adt.KindNumAdd, Arg: n}, {Kind: adt.KindNumAdd, Arg: "-" + n},
		}
	}
	c.Put(idSyms("1"), idSyms("2"), commute.CondRegister)
	det := NewSequence(c, nil)

	// Each transaction touches a few counters with identity add pairs —
	// always admissible, so detection always runs the full pipeline.
	txn := func(task, base int) oplog.Log {
		var ops []oplog.Op
		for j := 0; j < 3; j++ {
			loc := state.Loc("ctr" + strconv.Itoa((base+j)%nLocs))
			d := int64(task + j + 1)
			ops = append(ops, adt.NumAddOp{L: loc, Delta: d}, adt.NumAddOp{L: loc, Delta: -d})
		}
		return benchLog(b, st, task, ops...)
	}
	committed := make([]oplog.Log, 4)
	for i := range committed {
		committed[i] = txn(100+i, i*3)
	}
	running := make([]oplog.Log, 8)
	for i := range running {
		running[i] = txn(i+1, i)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			v := det.DetectV(obs.Ctx{}, st, running[i%len(running)], committed)
			i++
			if v.Conflict {
				b.Fatal("identity transactions must not conflict")
			}
		}
	})
}
