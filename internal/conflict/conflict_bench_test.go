package conflict

import (
	"runtime"
	"strconv"
	"testing"

	"repro/internal/adt"
	"repro/internal/cache"
	"repro/internal/commute"
	"repro/internal/obs"
	"repro/internal/oplog"
	"repro/internal/seqabs"
	"repro/internal/state"
)

// benchLog builds a log without a testing.T (bench variant of record).
func benchLog(b *testing.B, st *state.State, task int, ops ...oplog.Op) oplog.Log {
	b.Helper()
	work := st.Clone()
	var l oplog.Log
	for i, op := range ops {
		acc := op.Accesses(work)
		v, err := op.Apply(work)
		if err != nil {
			b.Fatalf("apply %v: %v", op, err)
		}
		l = append(l, &oplog.Event{Op: op, Task: task, Seq: i, Acc: acc, Observed: v})
	}
	return l
}

// benchFixture is the shared detection workload: identity-add transactions
// over a pool of counters, validated against a multi-entry committed
// history with every per-location query answered by the trained cache.
type benchFixture struct {
	st        *state.State
	det       *Sequence
	running   []oplog.Log
	committed []oplog.Log
	// committedPrep models the commit-time artifact: each committed log
	// prepared exactly once, shared read-only by every detection below.
	committedPrep []*Prepared
}

// benchSetup builds the fixture. stride controls contention: stride 1
// packs all transactions onto overlapping counters (every pair of
// per-location projections overlaps), while a stride of nLocs/len(txns)
// spreads them so most pairs are disjoint.
func benchSetup(b *testing.B, nLocs, stride int) *benchFixture {
	b.Helper()
	st := state.New()
	for i := 0; i < nLocs; i++ {
		st.Set(state.Loc("ctr"+strconv.Itoa(i)), state.Int(0))
	}
	c := cache.New(seqabs.Abstract)
	idSyms := func(n string) []oplog.Sym {
		return []oplog.Sym{
			{Kind: adt.KindNumAdd, Arg: n}, {Kind: adt.KindNumAdd, Arg: "-" + n},
		}
	}
	c.Put(idSyms("1"), idSyms("2"), commute.CondRegister)
	det := NewSequence(c, nil)

	// Each transaction touches a few counters with identity add pairs —
	// always admissible, so detection always runs the full pipeline.
	txn := func(task, base int) oplog.Log {
		var ops []oplog.Op
		for j := 0; j < 3; j++ {
			loc := state.Loc("ctr" + strconv.Itoa((base+j)%nLocs))
			d := int64(task + j + 1)
			ops = append(ops, adt.NumAddOp{L: loc, Delta: d}, adt.NumAddOp{L: loc, Delta: -d})
		}
		return benchLog(b, st, task, ops...)
	}
	f := &benchFixture{st: st, det: det}
	f.committed = make([]oplog.Log, 4)
	for i := range f.committed {
		f.committed[i] = txn(100+i, i*stride)
	}
	f.running = make([]oplog.Log, 8)
	for i := range f.running {
		f.running[i] = txn(i+1, i*stride)
	}
	f.committedPrep = PrepareAll(f.committed)
	return f
}

// detectOnce is one runtime attempt on the prepared path: the running
// transaction's log is prepared once (as after runTaskBody, with pooled
// buffers) and validated against the shared commit-time projections; an
// attempt that does not publish recycles its artifact.
func (f *benchFixture) detectOnce(b *testing.B, i int) {
	prep := PreparePooled(f.running[i%len(f.running)])
	v := f.det.DetectPrepared(obs.Ctx{}, f.st, prep, f.committedPrep)
	prep.Recycle()
	if v.Conflict {
		b.Fatal("identity transactions must not conflict")
	}
}

// BenchmarkDetectSequential measures one-goroutine detection on the
// prepared path: per-attempt transaction preparation plus validation
// against already-prepared committed history.
func BenchmarkDetectSequential(b *testing.B) {
	f := benchSetup(b, 16, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.detectOnce(b, i)
	}
}

// BenchmarkDetectSequentialLegacy is the pre-projection baseline shape:
// DetectV re-derives every per-location decomposition, symbolic shape,
// and access-mode map on each call, for the committed side too.
func BenchmarkDetectSequentialLegacy(b *testing.B) {
	f := benchSetup(b, 16, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := f.det.DetectV(obs.Ctx{}, f.st, f.running[i%len(f.running)], f.committed)
		if v.Conflict {
			b.Fatal("identity transactions must not conflict")
		}
	}
}

// BenchmarkDetectParallel measures concurrent detection with transactions
// spread across the location pool (most projection pairs disjoint), the
// common low-conflict regime; run with -cpu 1,4,8.
func BenchmarkDetectParallel(b *testing.B) {
	f := benchSetup(b, 16, 4)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			f.detectOnce(b, i)
			i++
		}
	})
}

// BenchmarkDetectHighContention measures the full sequence-detection path
// under concurrency: many workers validating transactions against a
// multi-entry committed history whose projections all overlap, with every
// per-location query answered by the shared trained cache. This is the
// §5.3 hot path the commit-time prepared projections exist for; run with
// -cpu 1,4,8.
func BenchmarkDetectHighContention(b *testing.B) {
	f := benchSetup(b, 16, 1)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			f.detectOnce(b, i)
			i++
		}
	})
}

// BenchmarkDetectLargeTxn measures detection cost and artifact memory for
// a transaction two orders of magnitude larger than the usual workload:
// one identity-add pair on each of 2048 counters (4096 ops, 2048 distinct
// projection locations). The materialized sub-benchmark pins the
// pre-streaming path, which carves a full per-location event arena for
// the whole log on first query; streaming keeps only the location index
// and renders each overlapping projection on demand into pooled scratch
// during detection. live-B reports the heap retained by one prepared
// artifact after a detection pass (GC-fenced delta), the number that used
// to bound transaction size.
func BenchmarkDetectLargeTxn(b *testing.B) {
	const totalOps = 4096
	for _, tc := range []struct {
		name string
		prep func(oplog.Log) *Prepared
	}{
		{"materialized", Prepare},
		{"streaming", PrepareStreaming},
	} {
		b.Run(tc.name, func(b *testing.B) {
			// Pin the auto threshold so "materialized" stays materialized at
			// this size; the streaming side is forced explicitly.
			orig := streamOpsThreshold
			streamOpsThreshold = 1 << 30
			defer func() { streamOpsThreshold = orig }()
			f := benchSetup(b, totalOps/2, 1)
			var ops []oplog.Op
			for j := 0; j < totalOps/2; j++ {
				loc := state.Loc("ctr" + strconv.Itoa(j))
				d := int64(j%9 + 1)
				ops = append(ops, adt.NumAddOp{L: loc, Delta: d}, adt.NumAddOp{L: loc, Delta: -d})
			}
			l := benchLog(b, f.st, 1, ops...)

			runtime.GC()
			runtime.GC()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			held := tc.prep(l)
			if v := f.det.DetectPrepared(obs.Ctx{}, f.st, held, f.committedPrep); v.Conflict {
				b.Fatal("identity transactions must not conflict")
			}
			runtime.GC()
			runtime.GC()
			runtime.ReadMemStats(&m1)

			b.ReportAllocs()
			b.ResetTimer() // note: also clears ReportMetric values
			for i := 0; i < b.N; i++ {
				p := tc.prep(l)
				if v := f.det.DetectPrepared(obs.Ctx{}, f.st, p, f.committedPrep); v.Conflict {
					b.Fatal("identity transactions must not conflict")
				}
			}
			if m1.HeapAlloc > m0.HeapAlloc {
				b.ReportMetric(float64(m1.HeapAlloc-m0.HeapAlloc), "live-B")
			}
			runtime.KeepAlive(held)
		})
	}
}

// BenchmarkDetectHighContentionLegacy is the same workload on the DetectV
// compatibility shim, which prepares both sides on every call — the cost
// profile of the pre-projection detector.
func BenchmarkDetectHighContentionLegacy(b *testing.B) {
	f := benchSetup(b, 16, 1)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			v := f.det.DetectV(obs.Ctx{}, f.st, f.running[i%len(f.running)], f.committed)
			i++
			if v.Conflict {
				b.Fatal("identity transactions must not conflict")
			}
		}
	})
}
