// Package conflict implements the conflict-detection algorithms the JANUS
// protocol (Figure 7) is parameterized by: the standard write-set detector
// used as the baseline throughout the paper's evaluation, and the
// sequence-based detector of §5 — projection decomposition (Figure 8),
// cached commutativity conditions, consistency relaxations (§5.3), and the
// write-set fallback on cache misses.
//
// A detector must be sound (never admit a transaction that does not
// commute with its conflict history) and valid (never reject a transaction
// with an empty conflict history) for Theorem 4.1 to apply. The write-set
// detector is trivially sound; the sequence detector's positive answers
// come only from conditions proved during training.
package conflict

import (
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/commute"
	"repro/internal/oplog"
	"repro/internal/seqeff"
	"repro/internal/state"
)

// Detector decides whether a transaction conflicts with its conflict
// history — the logs of the transactions that committed while it ran, one
// per committed transaction, in commit order (§4.1). snapshot is the
// transaction's entry state (SharedSnapshot). Implementations must be
// safe for concurrent use.
//
// The history is kept per-transaction because both Lemma 5.2 and the
// training phase reason about pairs of single-transaction sequences; the
// lemma extends to multiple committed transactions compositionally, so a
// transaction that passes the checks against each committed transaction
// individually passes them against their concatenation.
type Detector interface {
	Detect(snapshot *state.State, txn oplog.Log, committed []oplog.Log) bool
	Name() string
}

// Stats counts detector activity.
type Stats struct {
	Detections    int64 // Detect calls
	Conflicts     int64 // Detect calls that reported a conflict
	PairQueries   int64 // per-location sequence queries (sequence detector)
	Fallbacks     int64 // queries answered by the write-set fallback
	RelaxedChecks int64 // queries answered by a relaxation-aware check
}

// --- Write-set detection ---

// WriteSet is the traditional detector: two transactions conflict iff they
// mutually access a location and at least one of the accesses is a write.
type WriteSet struct {
	stats Stats
}

// NewWriteSet returns the baseline detector.
func NewWriteSet() *WriteSet { return &WriteSet{} }

// Name implements Detector.
func (w *WriteSet) Name() string { return "write-set" }

// Stats returns a snapshot of the counters.
func (w *WriteSet) Stats() Stats {
	return Stats{
		Detections: atomic.LoadInt64(&w.stats.Detections),
		Conflicts:  atomic.LoadInt64(&w.stats.Conflicts),
	}
}

// Detect implements Detector.
func (w *WriteSet) Detect(_ *state.State, txn oplog.Log, committed []oplog.Log) bool {
	atomic.AddInt64(&w.stats.Detections, 1)
	mt := accessModes(txn)
	for _, c := range committed {
		if pairConflictsWriteSet(mt, accessModes(c), nil) {
			atomic.AddInt64(&w.stats.Conflicts, 1)
			return true
		}
	}
	return false
}

// mode aggregates how a log touches one projection location.
type mode struct {
	read, write bool
}

func accessModes(l oplog.Log) map[oplog.PLoc]mode {
	m := make(map[oplog.PLoc]mode)
	for _, e := range l {
		for _, a := range e.Acc {
			cur := m[a.P]
			cur.read = cur.read || a.Read
			cur.write = cur.write || a.Write
			m[a.P] = cur
		}
	}
	return m
}

// pairConflictsWriteSet applies the write-set rule over every overlapping
// projection-location pair, honoring relaxations when non-nil.
func pairConflictsWriteSet(mt, mc map[oplog.PLoc]mode, relax *Relaxations) bool {
	for p, tm := range mt {
		for q, cm := range mc {
			if !p.Overlaps(q) {
				continue
			}
			if writeSetConflict(p, tm, cm, relax) {
				return true
			}
		}
	}
	return false
}

func writeSetConflict(p oplog.PLoc, a, b mode, relax *Relaxations) bool {
	loc := p.Loc()
	waw := a.write && b.write
	rw := (a.read && b.write) || (a.write && b.read)
	if relax != nil {
		if waw && !relax.TolerateWAW(loc) {
			return true
		}
		if rw && !relax.TolerateRAW(loc) {
			return true
		}
		return false
	}
	return waw || rw
}

// --- Relaxation specifications (§5.3) ---

// Relaxations is the user-provided consistency-relaxation specification:
// per shared location (data structure), whether read-after-write and/or
// write-after-write conflicts are tolerable. Tolerating RAW drops the
// SAMEREAD checks for the location (cf. Figure 3's maxColor); tolerating
// WAW drops the final COMMUTE test (cf. Figure 4's shared-as-local
// fields). The zero value tolerates nothing.
type Relaxations struct {
	RAW map[state.Loc]bool
	WAW map[state.Loc]bool
}

// TolerateRAW reports whether RAW conflicts on loc are tolerable.
func (r *Relaxations) TolerateRAW(loc state.Loc) bool {
	return r != nil && r.RAW[loc]
}

// TolerateWAW reports whether WAW conflicts on loc are tolerable.
func (r *Relaxations) TolerateWAW(loc state.Loc) bool {
	return r != nil && r.WAW[loc]
}

// Any reports whether loc has any relaxation.
func (r *Relaxations) Any(loc state.Loc) bool {
	return r.TolerateRAW(loc) || r.TolerateWAW(loc)
}

// NewRelaxations builds a specification from location lists.
func NewRelaxations(raw, waw []state.Loc) *Relaxations {
	rx := &Relaxations{RAW: make(map[state.Loc]bool), WAW: make(map[state.Loc]bool)}
	for _, l := range raw {
		rx.RAW[l] = true
	}
	for _, l := range waw {
		rx.WAW[l] = true
	}
	return rx
}

// --- Sequence-based detection (Figure 8) ---

// Sequence is the hindsight detector: per-location sequence pairs are
// answered from the trained commutativity cache, relaxation-aware theory
// checks, the concrete online check (optional), or the write-set fallback.
type Sequence struct {
	// Cache holds the trained commutativity specification. A nil cache
	// makes every query a miss (pure fallback).
	Cache *cache.Cache
	// Relax is the consistency-relaxation specification; may be nil.
	Relax *Relaxations
	// Online enables the §5.3 alternative of running the sequence-based
	// check concretely at runtime on cache misses instead of falling back
	// to write-set detection ("unlikely to be acceptable in performance",
	// which the ablation benchmarks confirm).
	Online bool
	// LearnOnline implements the §5.3 remark that "memoization can be
	// used to support online training": on a cache miss, the detector
	// attempts to prove a condition for the pair's shape right away and
	// caches it, so an untrained system converges to trained behavior
	// after one miss per shape pair.
	LearnOnline bool
	// InferWAW enables the §5.3 "limited automatic inference": when
	// out-of-order parallelization is permitted, write-after-write
	// dependences between two transactions are ignored — a pair whose
	// reads are all order-insensitive is admitted even when the final
	// values differ, because serializing the transactions in commit
	// order is then a correct serial outcome. It is sound ONLY for
	// unordered commits; the runtime must not combine it with ordered
	// execution.
	InferWAW bool

	stats Stats
}

// NewSequence returns a sequence detector over the given trained cache.
func NewSequence(c *cache.Cache, relax *Relaxations) *Sequence {
	return &Sequence{Cache: c, Relax: relax}
}

// Name implements Detector.
func (s *Sequence) Name() string { return "sequence" }

// Stats returns a snapshot of the counters.
func (s *Sequence) Stats() Stats {
	return Stats{
		Detections:    atomic.LoadInt64(&s.stats.Detections),
		Conflicts:     atomic.LoadInt64(&s.stats.Conflicts),
		PairQueries:   atomic.LoadInt64(&s.stats.PairQueries),
		Fallbacks:     atomic.LoadInt64(&s.stats.Fallbacks),
		RelaxedChecks: atomic.LoadInt64(&s.stats.RelaxedChecks),
	}
}

// Detect implements Detector, realizing DETECTCONFLICTS of Figure 8: the
// transaction's log and each committed transaction's log are decomposed
// into per-location subsequences, and every overlapping pair is checked.
func (s *Sequence) Detect(snapshot *state.State, txn oplog.Log, committed []oplog.Log) bool {
	atomic.AddInt64(&s.stats.Detections, 1)
	mt := oplog.Decompose(txn)
	for _, c := range committed {
		mc := oplog.Decompose(c)
		for p, seqT := range mt {
			for q, seqC := range mc {
				if !p.Overlaps(q) {
					continue
				}
				atomic.AddInt64(&s.stats.PairQueries, 1)
				if s.pairConflicts(snapshot, p, q, seqT, seqC) {
					atomic.AddInt64(&s.stats.Conflicts, 1)
					return true
				}
			}
		}
	}
	return false
}

// pairConflicts answers one per-location query.
func (s *Sequence) pairConflicts(snapshot *state.State, p, q oplog.PLoc, seqT, seqC oplog.Log) bool {
	// Wildcard-extent pairs (whole-relation observations) are outside the
	// per-key sequence theories: conservative write-set rule.
	if p.IsWildcard() || q.IsWildcard() {
		atomic.AddInt64(&s.stats.Fallbacks, 1)
		return s.fallback(seqT, seqC)
	}
	loc := p.Loc()
	if s.Relax.Any(loc) {
		atomic.AddInt64(&s.stats.RelaxedChecks, 1)
		return s.relaxedConflicts(loc, seqT, seqC)
	}
	if s.InferWAW && !s.inferWAWConflicts(seqT, seqC) {
		return false
	}
	if s.Cache != nil {
		symsT, symsC := seqT.Syms(), seqC.Syms()
		conflict, hit := s.Cache.Lookup(symsT, symsC)
		if hit {
			return conflict
		}
		if s.LearnOnline {
			if kind := commute.Prove(symsT, symsC); kind != commute.CondNone {
				s.Cache.Put(symsT, symsC, kind)
				if conflict, ok := commute.Evaluate(kind, symsT, symsC); ok {
					return conflict
				}
			}
		}
	}
	// Miss: concrete online check or write-set fallback.
	if s.Online && snapshot != nil {
		conflict, err := commute.ConflictConcrete(snapshot, p, seqT, seqC)
		if err == nil {
			return conflict
		}
	}
	atomic.AddInt64(&s.stats.Fallbacks, 1)
	return s.fallback(seqT, seqC)
}

// inferWAWConflicts is the commit-order judgment behind InferWAW: the
// running transaction conflicts with a committed one only if some read of
// the running transaction observes a value the committed transaction's
// composite effect changes. The committed transaction serializes first
// (it already did), so its own reads and the pair's final-value
// disagreement are immaterial. Pairs outside the effect theories report a
// conflict here and flow on to the normal (stricter) pipeline.
func (s *Sequence) inferWAWConflicts(seqT, seqC oplog.Log) bool {
	symsT, symsC := seqT.Syms(), seqC.Syms()
	if aT, ok := seqeff.AnalyzeRegister(symsT); ok {
		if aC, ok := seqeff.AnalyzeRegister(symsC); ok {
			return !seqeff.SameRead(aT, aC.Eff)
		}
	}
	if aT, ok := seqeff.AnalyzeStack(symsT); ok {
		if aC, ok := seqeff.AnalyzeStack(symsC); ok {
			return !seqeff.StackReadsStable(aT, aC)
		}
	}
	return true
}

// relaxedConflicts evaluates the Figure 8 checks with the location's
// relaxations applied: tolerated RAW drops SAMEREAD, tolerated WAW drops
// COMMUTE. Sequences outside both theories fall back to the relaxed
// write-set rule.
func (s *Sequence) relaxedConflicts(loc state.Loc, seqT, seqC oplog.Log) bool {
	dropSame := s.Relax.TolerateRAW(loc)
	dropCommute := s.Relax.TolerateWAW(loc)
	symsT, symsC := seqT.Syms(), seqC.Syms()
	if a1, ok := seqeff.AnalyzeRegister(symsT); ok {
		if a2, ok := seqeff.AnalyzeRegister(symsC); ok {
			if !dropSame && (!seqeff.SameRead(a1, a2.Eff) || !seqeff.SameRead(a2, a1.Eff)) {
				return true
			}
			if !dropCommute && !seqeff.Commute(a1.Eff, a2.Eff) {
				return true
			}
			return false
		}
	}
	if a1, ok := seqeff.AnalyzeStack(symsT); ok {
		if a2, ok := seqeff.AnalyzeStack(symsC); ok {
			if dropSame && dropCommute {
				return false
			}
			return seqeff.StackPairConflicts(a1, a2)
		}
	}
	return pairConflictsWriteSet(accessModes(seqT), accessModes(seqC), s.Relax)
}

// fallback applies the plain write-set rule to the pair's logs.
func (s *Sequence) fallback(seqT, seqC oplog.Log) bool {
	return pairConflictsWriteSet(accessModes(seqT), accessModes(seqC), s.Relax)
}
