// Package conflict implements the conflict-detection algorithms the JANUS
// protocol (Figure 7) is parameterized by: the standard write-set detector
// used as the baseline throughout the paper's evaluation, and the
// sequence-based detector of §5 — projection decomposition (Figure 8),
// cached commutativity conditions, consistency relaxations (§5.3), and the
// write-set fallback on cache misses.
//
// A detector must be sound (never admit a transaction that does not
// commute with its conflict history) and valid (never reject a transaction
// with an empty conflict history) for Theorem 4.1 to apply. The write-set
// detector is trivially sound; the sequence detector's positive answers
// come only from conditions proved during training.
package conflict

import (
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/commute"
	"repro/internal/obs"
	"repro/internal/oplog"
	"repro/internal/seqeff"
	"repro/internal/state"
)

// Reason classifies why a detector rejected a transaction — which check
// of the detection pipeline failed. It drives the abort-reason breakdown
// of Stats and the EvTxAbort attribution in traces, so Figure 10-style
// tables can distinguish sequence-check failures from write-set
// fallbacks.
type Reason uint8

// Abort reasons.
const (
	// ReasonNone: no conflict.
	ReasonNone Reason = iota
	// ReasonWriteSet: the plain write-set rule fired — the baseline
	// detector, or the sequence detector's cache-miss fallback.
	ReasonWriteSet
	// ReasonSameRead: a SAMEREAD precondition of the Figure 8 judgment
	// failed.
	ReasonSameRead
	// ReasonCommute: the final COMMUTE test failed.
	ReasonCommute
	// ReasonRelaxation: the residual check of a relaxation-aware query
	// (§5.3) failed.
	ReasonRelaxation
	// ReasonWildcard: a whole-relation extent access forced the
	// conservative write-set rule.
	ReasonWildcard
	// ReasonTheory: a cached condition's theory did not cover the
	// concrete pair (answered conservatively).
	ReasonTheory
	// ReasonOnline: the concrete online sequence check found a conflict.
	ReasonOnline
	// ReasonInjected: a fault injector (internal/chaos) forced the abort;
	// no detector check actually failed.
	ReasonInjected

	// NumReasons bounds per-reason counter arrays.
	NumReasons
)

// String renders the reason as it appears in stats maps and traces.
func (r Reason) String() string {
	switch r {
	case ReasonWriteSet:
		return "write-set"
	case ReasonSameRead:
		return "same-read"
	case ReasonCommute:
		return "commute"
	case ReasonRelaxation:
		return "relaxation"
	case ReasonWildcard:
		return "wildcard"
	case ReasonTheory:
		return "theory"
	case ReasonOnline:
		return "online"
	case ReasonInjected:
		return "injected"
	default:
		return "none"
	}
}

// Verdict is one detection outcome with attribution: on a conflict, the
// failed check, the conflicting projection-location pair (P from the
// running transaction, Q from the committed one), and — when tracing is
// enabled — the symbolic shapes of the two per-location sequences.
type Verdict struct {
	Conflict       bool
	Reason         Reason
	P, Q           oplog.PLoc
	ShapeT, ShapeC string
}

// Detector decides whether a transaction conflicts with its conflict
// history — the logs of the transactions that committed while it ran, one
// per committed transaction, in commit order (§4.1). snapshot is the
// transaction's entry state (SharedSnapshot). Implementations must be
// safe for concurrent use.
//
// The history is kept per-transaction because both Lemma 5.2 and the
// training phase reason about pairs of single-transaction sequences; the
// lemma extends to multiple committed transactions compositionally, so a
// transaction that passes the checks against each committed transaction
// individually passes them against their concatenation.
type Detector interface {
	// Detect reports whether the transaction conflicts.
	Detect(snapshot *state.State, txn oplog.Log, committed []oplog.Log) bool
	// DetectV is Detect with observability: the returned Verdict carries
	// abort-reason attribution, and detection-internal events (cache
	// hits, misses, fallbacks) are emitted through ctx. A zero Ctx
	// disables tracing at no cost.
	DetectV(ctx obs.Ctx, snapshot *state.State, txn oplog.Log, committed []oplog.Log) Verdict
	// DetectPrepared is DetectV over commit-time prepared projections:
	// txn is the running transaction's artifact (prepared once per
	// attempt) and committed are the history entries' artifacts (each
	// prepared once, at commit time, and shared read-only by every
	// concurrent detector). This is the runtime's hot path; DetectV
	// remains as the compatibility shim for callers holding raw logs.
	DetectPrepared(ctx obs.Ctx, snapshot *state.State, txn *Prepared, committed []*Prepared) Verdict
	Name() string
}

// Stats counts detector activity.
type Stats struct {
	Detections    int64 // Detect calls
	Conflicts     int64 // Detect calls that reported a conflict
	PairQueries   int64 // per-location sequence queries (sequence detector)
	Fallbacks     int64 // queries answered by the write-set fallback
	RelaxedChecks int64 // queries answered by a relaxation-aware check
	// Reasons is the abort-reason breakdown: for each reason (by its
	// String name), how many Detect calls failed on that check.
	Reasons map[string]int64
}

// reasonCounts is a fixed atomic counter array indexed by Reason.
type reasonCounts [NumReasons]int64

func (rc *reasonCounts) add(r Reason) {
	atomic.AddInt64(&rc[r], 1)
}

// snapshot renders the non-zero counters as a reason → count map, or nil
// when no conflicts were recorded.
func (rc *reasonCounts) snapshot() map[string]int64 {
	var out map[string]int64
	for r := Reason(1); r < NumReasons; r++ {
		if n := atomic.LoadInt64(&rc[r]); n > 0 {
			if out == nil {
				out = make(map[string]int64)
			}
			out[r.String()] = n
		}
	}
	return out
}

// --- Write-set detection ---

// WriteSet is the traditional detector: two transactions conflict iff they
// mutually access a location and at least one of the accesses is a write.
type WriteSet struct {
	stats   Stats
	reasons reasonCounts
}

// NewWriteSet returns the baseline detector.
func NewWriteSet() *WriteSet { return &WriteSet{} }

// Name implements Detector.
func (w *WriteSet) Name() string { return "write-set" }

// Stats returns a snapshot of the counters.
func (w *WriteSet) Stats() Stats {
	return Stats{
		Detections: atomic.LoadInt64(&w.stats.Detections),
		Conflicts:  atomic.LoadInt64(&w.stats.Conflicts),
		Reasons:    w.reasons.snapshot(),
	}
}

// Detect implements Detector.
func (w *WriteSet) Detect(snapshot *state.State, txn oplog.Log, committed []oplog.Log) bool {
	return w.DetectV(obs.Ctx{}, snapshot, txn, committed).Conflict
}

// DetectV implements Detector. Raw logs have no prepared artifact to
// reuse, so the access-mode maps are built per call — from a pool, so the
// shim stays allocation-free at steady state.
func (w *WriteSet) DetectV(_ obs.Ctx, _ *state.State, txn oplog.Log, committed []oplog.Log) Verdict {
	atomic.AddInt64(&w.stats.Detections, 1)
	mt := pooledModes(txn)
	defer releaseModes(mt)
	for _, c := range committed {
		mc := pooledModes(c)
		p, q, hit := findWriteSetConflict(mt, mc, nil)
		releaseModes(mc)
		if hit {
			atomic.AddInt64(&w.stats.Conflicts, 1)
			w.reasons.add(ReasonWriteSet)
			return Verdict{Conflict: true, Reason: ReasonWriteSet, P: p, Q: q}
		}
	}
	return Verdict{}
}

// DetectPrepared implements Detector: both sides carry memoized access
// modes, so no maps are rebuilt per call. Committed entries whose
// footprint signatures are write-disjoint from the transaction's are
// skipped without touching either mode map — a write-set conflict needs
// a shared location with a write on one side, which disjoint signatures
// rule out (Prepared.Signatures has no false negatives) — so a run of
// footprint-disjoint transactions never materializes the maps at all.
func (w *WriteSet) DetectPrepared(_ obs.Ctx, _ *state.State, txn *Prepared, committed []*Prepared) Verdict {
	atomic.AddInt64(&w.stats.Detections, 1)
	ta, tw := txn.Signatures()
	var mt map[oplog.PLoc]mode
	for _, c := range committed {
		ca, cw := c.Signatures()
		if tw&ca == 0 && ta&cw == 0 {
			continue
		}
		if mt == nil {
			mt = txn.accessModes()
		}
		if p, q, hit := findWriteSetConflict(mt, c.accessModes(), nil); hit {
			atomic.AddInt64(&w.stats.Conflicts, 1)
			w.reasons.add(ReasonWriteSet)
			return Verdict{Conflict: true, Reason: ReasonWriteSet, P: p, Q: q}
		}
	}
	return Verdict{}
}

// mode aggregates how a log touches one projection location.
type mode struct {
	read, write bool
}

func accessModes(l oplog.Log) map[oplog.PLoc]mode {
	m := make(map[oplog.PLoc]mode)
	fillModes(m, l)
	return m
}

func fillModes(m map[oplog.PLoc]mode, l oplog.Log) {
	for _, e := range l {
		for _, a := range e.Acc {
			cur := m[a.P]
			cur.read = cur.read || a.Read
			cur.write = cur.write || a.Write
			m[a.P] = cur
		}
	}
}

// modePool recycles the scratch access-mode maps WriteSet.DetectV builds
// for raw logs (the prepared path reuses each artifact's memoized maps
// instead).
var modePool = sync.Pool{
	New: func() any { return make(map[oplog.PLoc]mode, 16) },
}

func pooledModes(l oplog.Log) map[oplog.PLoc]mode {
	m := modePool.Get().(map[oplog.PLoc]mode)
	fillModes(m, l)
	return m
}

func releaseModes(m map[oplog.PLoc]mode) {
	clear(m)
	modePool.Put(m)
}

// pairConflictsWriteSet applies the write-set rule over every overlapping
// projection-location pair, honoring relaxations when non-nil.
func pairConflictsWriteSet(mt, mc map[oplog.PLoc]mode, relax *Relaxations) bool {
	_, _, hit := findWriteSetConflict(mt, mc, relax)
	return hit
}

// findWriteSetConflict is pairConflictsWriteSet returning the first
// conflicting projection-location pair for abort attribution.
func findWriteSetConflict(mt, mc map[oplog.PLoc]mode, relax *Relaxations) (oplog.PLoc, oplog.PLoc, bool) {
	for p, tm := range mt {
		for q, cm := range mc {
			if !p.Overlaps(q) {
				continue
			}
			if writeSetConflict(p, tm, cm, relax) {
				return p, q, true
			}
		}
	}
	return "", "", false
}

func writeSetConflict(p oplog.PLoc, a, b mode, relax *Relaxations) bool {
	loc := p.Loc()
	waw := a.write && b.write
	rw := (a.read && b.write) || (a.write && b.read)
	if relax != nil {
		if waw && !relax.TolerateWAW(loc) {
			return true
		}
		if rw && !relax.TolerateRAW(loc) {
			return true
		}
		return false
	}
	return waw || rw
}

// --- Relaxation specifications (§5.3) ---

// Relaxations is the user-provided consistency-relaxation specification:
// per shared location (data structure), whether read-after-write and/or
// write-after-write conflicts are tolerable. Tolerating RAW drops the
// SAMEREAD checks for the location (cf. Figure 3's maxColor); tolerating
// WAW drops the final COMMUTE test (cf. Figure 4's shared-as-local
// fields). The zero value tolerates nothing.
type Relaxations struct {
	RAW map[state.Loc]bool
	WAW map[state.Loc]bool
}

// TolerateRAW reports whether RAW conflicts on loc are tolerable.
func (r *Relaxations) TolerateRAW(loc state.Loc) bool {
	return r != nil && r.RAW[loc]
}

// TolerateWAW reports whether WAW conflicts on loc are tolerable.
func (r *Relaxations) TolerateWAW(loc state.Loc) bool {
	return r != nil && r.WAW[loc]
}

// Any reports whether loc has any relaxation.
func (r *Relaxations) Any(loc state.Loc) bool {
	return r.TolerateRAW(loc) || r.TolerateWAW(loc)
}

// NewRelaxations builds a specification from location lists.
func NewRelaxations(raw, waw []state.Loc) *Relaxations {
	rx := &Relaxations{RAW: make(map[state.Loc]bool), WAW: make(map[state.Loc]bool)}
	for _, l := range raw {
		rx.RAW[l] = true
	}
	for _, l := range waw {
		rx.WAW[l] = true
	}
	return rx
}

// --- Sequence-based detection (Figure 8) ---

// Sequence is the hindsight detector: per-location sequence pairs are
// answered from the trained commutativity cache, relaxation-aware theory
// checks, the concrete online check (optional), or the write-set fallback.
type Sequence struct {
	// Cache holds the trained commutativity specification. A nil cache
	// makes every query a miss (pure fallback).
	Cache *cache.Cache
	// Relax is the consistency-relaxation specification; may be nil.
	Relax *Relaxations
	// Online enables the §5.3 alternative of running the sequence-based
	// check concretely at runtime on cache misses instead of falling back
	// to write-set detection ("unlikely to be acceptable in performance",
	// which the ablation benchmarks confirm).
	Online bool
	// LearnOnline implements the §5.3 remark that "memoization can be
	// used to support online training": on a cache miss, the detector
	// attempts to prove a condition for the pair's shape right away and
	// caches it, so an untrained system converges to trained behavior
	// after one miss per shape pair.
	LearnOnline bool
	// InferWAW enables the §5.3 "limited automatic inference": when
	// out-of-order parallelization is permitted, write-after-write
	// dependences between two transactions are ignored — a pair whose
	// reads are all order-insensitive is admitted even when the final
	// values differ, because serializing the transactions in commit
	// order is then a correct serial outcome. It is sound ONLY for
	// unordered commits; the runtime must not combine it with ordered
	// execution.
	InferWAW bool

	// ForceMiss, when non-nil, is consulted before each commutativity-
	// cache lookup with the querying transaction's (task, attempt); true
	// makes the lookup behave as a miss without touching the cache, so the
	// fallback paths the trained cache normally hides stay exercised. A
	// fault-injection hook (internal/chaos); nil in production.
	ForceMiss func(task, attempt int) bool

	stats   Stats
	reasons reasonCounts
}

// NewSequence returns a sequence detector over the given trained cache.
func NewSequence(c *cache.Cache, relax *Relaxations) *Sequence {
	return &Sequence{Cache: c, Relax: relax}
}

// Name implements Detector.
func (s *Sequence) Name() string { return "sequence" }

// Stats returns a snapshot of the counters.
func (s *Sequence) Stats() Stats {
	return Stats{
		Detections:    atomic.LoadInt64(&s.stats.Detections),
		Conflicts:     atomic.LoadInt64(&s.stats.Conflicts),
		PairQueries:   atomic.LoadInt64(&s.stats.PairQueries),
		Fallbacks:     atomic.LoadInt64(&s.stats.Fallbacks),
		RelaxedChecks: atomic.LoadInt64(&s.stats.RelaxedChecks),
		Reasons:       s.reasons.snapshot(),
	}
}

// Detect implements Detector.
func (s *Sequence) Detect(snapshot *state.State, txn oplog.Log, committed []oplog.Log) bool {
	return s.DetectV(obs.Ctx{}, snapshot, txn, committed).Conflict
}

// DetectV implements Detector by preparing the raw logs and delegating to
// DetectPrepared — the compatibility shim for callers without commit-time
// artifacts (tests, the simulator). The runtime prepares each log once
// and calls DetectPrepared directly.
func (s *Sequence) DetectV(ctx obs.Ctx, snapshot *state.State, txn oplog.Log, committed []oplog.Log) Verdict {
	return s.DetectPrepared(ctx, snapshot, Prepare(txn), PrepareAll(committed))
}

// DetectPrepared implements Detector, realizing DETECTCONFLICTS of
// Figure 8 over prepared projections: every overlapping per-location
// subsequence pair of the transaction and each committed transaction is
// checked, reading the decomposition and symbolic shapes memoized at
// preparation time instead of recomputing them per call. Cache hits,
// misses, and fallbacks are emitted through ctx; a conflict verdict
// carries the failed check, the location pair, and (when tracing is
// enabled) the symbolic shape pair.
func (s *Sequence) DetectPrepared(ctx obs.Ctx, snapshot *state.State, txn *Prepared, committed []*Prepared) Verdict {
	atomic.AddInt64(&s.stats.Detections, 1)
	tlocs := txn.locations()
	// Streaming and compressed artifacts carry index stubs; their
	// subsequences render on demand into pooled scratch (one slot per
	// side) held for the duration of this call and released after the
	// verdict, so detection memory stays flat in ops/txn.
	var sc *renderScratch
	defer func() {
		if sc != nil {
			sc.release()
		}
	}()
	render := func(p *Prepared, pl *preparedLoc, slot func(*renderScratch) *renderSlot) *preparedLoc {
		if !pl.virtual() {
			return pl
		}
		if sc == nil {
			sc = getScratch()
		}
		return p.renderLoc(pl, slot(sc))
	}
	var ta, tw uint64
	haveSigs := false
	for _, c := range committed {
		if c.Compressed() {
			// Screen before decoding: equal locations set equal signature
			// bits (no false negatives), so a clear screen skips the entry
			// without touching the record.
			if !haveSigs {
				ta, tw = txn.Signatures()
				haveSigs = true
			}
			ca, cw := c.Signatures()
			if tw&ca == 0 && ta&cw == 0 {
				continue
			}
		}
		clocs := c.locations()
		for i := range tlocs {
			lt := &tlocs[i]
			var ltR *preparedLoc
			for j := range clocs {
				lc := &clocs[j]
				if !lt.p.Overlaps(lc.p) {
					continue
				}
				atomic.AddInt64(&s.stats.PairQueries, 1)
				if ltR == nil {
					ltR = render(txn, lt, func(sc *renderScratch) *renderSlot { return &sc.t })
				}
				lcR := render(c, lc, func(sc *renderScratch) *renderSlot { return &sc.c })
				if v := s.pairVerdict(ctx, snapshot, ltR, lcR); v.Conflict {
					atomic.AddInt64(&s.stats.Conflicts, 1)
					s.reasons.add(v.Reason)
					if ctx.Enabled() {
						v.ShapeT, v.ShapeC = symsString(ltR.syms), symsString(lcR.syms)
					}
					return v
				}
			}
		}
	}
	return Verdict{}
}

// reasonForCheck maps a failed commutativity check to an abort reason.
func reasonForCheck(c commute.Check) Reason {
	switch c {
	case commute.CheckSameRead:
		return ReasonSameRead
	case commute.CheckCommute:
		return ReasonCommute
	case commute.CheckTheory:
		return ReasonTheory
	default:
		return ReasonWriteSet
	}
}

// pairVerdict answers one per-location query over prepared subsequences.
// The symbolic shapes are read from the artifacts' memoized projections;
// the access modes behind the fallback paths are memoized lazily on first
// use.
func (s *Sequence) pairVerdict(ctx obs.Ctx, snapshot *state.State, lt, lc *preparedLoc) Verdict {
	p, q := lt.p, lc.p
	conflict := func(r Reason) Verdict { return Verdict{Conflict: true, Reason: r, P: p, Q: q} }
	// Wildcard-extent pairs (whole-relation observations) are outside the
	// per-key sequence theories: conservative write-set rule.
	if lt.wildcard || lc.wildcard {
		atomic.AddInt64(&s.stats.Fallbacks, 1)
		if s.fallback(lt, lc) {
			return conflict(ReasonWildcard)
		}
		return Verdict{}
	}
	loc := p.Loc()
	if s.Relax.Any(loc) {
		atomic.AddInt64(&s.stats.RelaxedChecks, 1)
		if hit, reason := s.relaxedConflicts(loc, lt, lc); hit {
			return conflict(reason)
		}
		return Verdict{}
	}
	if s.InferWAW && !s.inferWAWConflicts(lt.syms, lc.syms) {
		return Verdict{}
	}
	if s.Cache != nil && (s.ForceMiss == nil || !s.ForceMiss(int(ctx.Task), int(ctx.Attempt))) {
		symsT, symsC := lt.syms, lc.syms
		var hitConflict bool
		var failed commute.Check
		var hit bool
		if kt, okT := lt.seqKey(s.Cache); okT {
			if kc, okC := lc.seqKey(s.Cache); okC {
				hitConflict, failed, hit = s.Cache.LookupDetailKeys(kt, kc, symsT, symsC)
			} else {
				hitConflict, failed, hit = s.Cache.LookupDetail(symsT, symsC)
			}
		} else {
			hitConflict, failed, hit = s.Cache.LookupDetail(symsT, symsC)
		}
		if hit {
			ctx.Cache(obs.EvCacheHit, string(p), "")
			if hitConflict {
				return conflict(reasonForCheck(failed))
			}
			return Verdict{}
		}
		ctx.Cache(obs.EvCacheMiss, string(p), "")
		if s.LearnOnline {
			if kind := commute.Prove(symsT, symsC); kind != commute.CondNone {
				s.Cache.Put(symsT, symsC, kind)
				if learned, failed, ok := commute.EvaluateDetail(kind, symsT, symsC); ok {
					if learned {
						return conflict(reasonForCheck(failed))
					}
					return Verdict{}
				}
			}
		}
	}
	// Miss: concrete online check or write-set fallback. The concrete
	// check replays events, which a compressed history entry no longer
	// carries (seq == nil): such pairs take the conservative write-set
	// fallback instead — sound (it can only over-reject), never unsound.
	if s.Online && snapshot != nil && lt.seq != nil && lc.seq != nil {
		hit, err := commute.ConflictConcrete(snapshot, p, lt.seq, lc.seq)
		if err == nil {
			if hit {
				return conflict(ReasonOnline)
			}
			return Verdict{}
		}
	}
	atomic.AddInt64(&s.stats.Fallbacks, 1)
	ctx.Cache(obs.EvCacheFallback, string(p), "")
	if s.fallback(lt, lc) {
		return conflict(ReasonWriteSet)
	}
	return Verdict{}
}

// symsString renders a symbolic sequence shape for trace attribution.
func symsString(syms []oplog.Sym) string {
	parts := make([]string, len(syms))
	for i, s := range syms {
		parts[i] = s.String()
	}
	return strings.Join(parts, " ")
}

// inferWAWConflicts is the commit-order judgment behind InferWAW: the
// running transaction conflicts with a committed one only if some read of
// the running transaction observes a value the committed transaction's
// composite effect changes. The committed transaction serializes first
// (it already did), so its own reads and the pair's final-value
// disagreement are immaterial. Pairs outside the effect theories report a
// conflict here and flow on to the normal (stricter) pipeline.
func (s *Sequence) inferWAWConflicts(symsT, symsC []oplog.Sym) bool {
	if aT, ok := seqeff.AnalyzeRegister(symsT); ok {
		if aC, ok := seqeff.AnalyzeRegister(symsC); ok {
			return !seqeff.SameRead(aT, aC.Eff)
		}
	}
	if aT, ok := seqeff.AnalyzeStack(symsT); ok {
		if aC, ok := seqeff.AnalyzeStack(symsC); ok {
			return !seqeff.StackReadsStable(aT, aC)
		}
	}
	return true
}

// relaxedConflicts evaluates the Figure 8 checks with the location's
// relaxations applied: tolerated RAW drops SAMEREAD, tolerated WAW drops
// COMMUTE. Sequences outside both theories fall back to the relaxed
// write-set rule. On a conflict the reason names the residual check that
// failed.
func (s *Sequence) relaxedConflicts(loc state.Loc, lt, lc *preparedLoc) (bool, Reason) {
	dropSame := s.Relax.TolerateRAW(loc)
	dropCommute := s.Relax.TolerateWAW(loc)
	symsT, symsC := lt.syms, lc.syms
	if a1, ok := seqeff.AnalyzeRegister(symsT); ok {
		if a2, ok := seqeff.AnalyzeRegister(symsC); ok {
			if !dropSame && (!seqeff.SameRead(a1, a2.Eff) || !seqeff.SameRead(a2, a1.Eff)) {
				return true, ReasonSameRead
			}
			if !dropCommute && !seqeff.Commute(a1.Eff, a2.Eff) {
				return true, ReasonCommute
			}
			return false, ReasonNone
		}
	}
	if a1, ok := seqeff.AnalyzeStack(symsT); ok {
		if a2, ok := seqeff.AnalyzeStack(symsC); ok {
			if dropSame && dropCommute {
				return false, ReasonNone
			}
			if seqeff.StackPairConflicts(a1, a2) {
				return true, ReasonCommute
			}
			return false, ReasonNone
		}
	}
	if pairConflictsWriteSet(lt.accessModes(), lc.accessModes(), s.Relax) {
		return true, ReasonRelaxation
	}
	return false, ReasonNone
}

// fallback applies the plain write-set rule to the pair's subsequences,
// reading the access modes memoized in the prepared artifacts.
func (s *Sequence) fallback(lt, lc *preparedLoc) bool {
	return pairConflictsWriteSet(lt.accessModes(), lc.accessModes(), s.Relax)
}
