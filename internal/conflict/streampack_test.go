package conflict

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/adt"
	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/oplog"
	"repro/internal/seqabs"
	"repro/internal/state"
)

// accOp is a test op with explicit accesses, for shapes the ADT ops do
// not produce (whole-relation wildcard extents).
type accOp struct {
	kind string
	acc  []oplog.Access
}

func (o accOp) Apply(*state.State) (state.Value, error)   { return nil, nil }
func (o accOp) Accesses(*state.State) []oplog.Access      { return o.acc }
func (o accOp) Sym() oplog.Sym                            { return oplog.Sym{Kind: o.kind} }
func (o accOp) IsRead() bool                              { return false }
func (o accOp) String() string                            { return o.kind }

// richRandLog is randLog extended with relational per-key ops, occasional
// wildcard extents, and an optional size multiplier that pushes the log
// past streamOpsThreshold — covering every pairVerdict path (trained hit,
// fallback, wildcard, relaxation residual) on both representation modes.
func richRandLog(t *testing.T, rng *rand.Rand, st *state.State, task, scale int) oplog.Log {
	t.Helper()
	locs := []state.Loc{"work", "max"}
	var ops []oplog.Op
	for n := (1 + rng.Intn(4)) * scale; n > 0; n-- {
		switch rng.Intn(6) {
		case 0:
			ops = append(ops, adt.NumLoadOp{L: locs[rng.Intn(2)]})
		case 1:
			ops = append(ops, adt.NumAddOp{L: locs[rng.Intn(2)], Delta: int64(rng.Intn(5))})
		case 2:
			d := int64(1 + rng.Intn(5))
			l := locs[rng.Intn(2)]
			ops = append(ops, adt.NumAddOp{L: l, Delta: d}, adt.NumAddOp{L: l, Delta: -d})
		case 3:
			ops = append(ops, adt.RelPutOp{L: "bits", Key: fmt.Sprintf("k%d", rng.Intn(3)), Val: "v"})
		case 4:
			ops = append(ops, adt.RelGetOp{L: "bits", Key: fmt.Sprintf("k%d", rng.Intn(3))})
		default:
			ops = append(ops, accOp{kind: "test.scan", acc: []oplog.Access{{P: "bits#*", Read: true}}})
		}
	}
	return record(t, st, task, ops...)
}

// equivDetectors is the detector matrix for representation-equivalence
// properties: every configuration whose verdict depends only on shapes,
// modes, and signatures (the Online concrete check needs events and is
// covered by its own soundness test below).
func equivDetectors() []Detector {
	return []Detector{
		NewWriteSet(),
		NewSequence(trainedIdentityCache(), nil),
		NewSequence(nil, nil),
		NewSequence(trainedIdentityCache(), NewRelaxations([]state.Loc{"work"}, []state.Loc{"work"})),
		func() Detector {
			d := NewSequence(cache.New(seqabs.Abstract), nil)
			d.LearnOnline = true
			return d
		}(),
		&Sequence{InferWAW: true},
	}
}

// TestStreamingPreparedMatchesMaterialized: detection over streaming
// projections (index stubs + on-demand rendering) must agree — verdict
// and reason — with detection over fully materialized artifacts, on both
// the running and the committed side, over randomized logs.
func TestStreamingPreparedMatchesMaterialized(t *testing.T) {
	st := baseState()
	dets := equivDetectors()
	rng := rand.New(rand.NewSource(47))
	// Pin Prepare to the materialized path regardless of log size; the
	// streaming side is forced explicitly via PrepareStreaming.
	orig := streamOpsThreshold
	streamOpsThreshold = 1 << 30
	defer func() { streamOpsThreshold = orig }()
	for trial := 0; trial < 300; trial++ {
		scale := 1
		if trial%5 == 0 {
			scale = 1 + orig/4 // logs past the normal auto threshold
		}
		txn := richRandLog(t, rng, st, 1, scale)
		committed := make([]oplog.Log, rng.Intn(4))
		for i := range committed {
			committed[i] = richRandLog(t, rng, st, 100+i, 1)
		}
		mTxn, mC := Prepare(txn), PrepareAll(committed)
		sTxn := PrepareStreaming(txn)
		sC := make([]*Prepared, len(committed))
		for i := range committed {
			sC[i] = PrepareStreaming(committed[i])
		}
		for _, det := range dets {
			want := det.DetectPrepared(obs.Ctx{}, st, mTxn, mC)
			for name, pair := range map[string][2]any{
				"stream-txn":  {sTxn, mC},
				"stream-both": {sTxn, sC},
				"stream-hist": {mTxn, sC},
			} {
				got := det.DetectPrepared(obs.Ctx{}, st, pair[0].(*Prepared), pair[1].([]*Prepared))
				if got.Conflict != want.Conflict || got.Reason != want.Reason {
					t.Fatalf("trial %d, %s, %s: got %v/%v, want %v/%v",
						trial, det.Name(), name, got.Conflict, got.Reason, want.Conflict, want.Reason)
				}
			}
		}
	}
}

// TestStreamingPooledRecycle: large (auto-streaming) pooled artifacts
// must detect correctly across recycle/reuse — the per-attempt lifecycle
// the runtime drives.
func TestStreamingPooledRecycle(t *testing.T) {
	st := baseState()
	det := NewSequence(trainedIdentityCache(), nil)
	rng := rand.New(rand.NewSource(53))
	committed := PrepareAll([]oplog.Log{
		richRandLog(t, rng, st, 100, 1),
		richRandLog(t, rng, st, 101, 1),
	})
	for round := 0; round < 50; round++ {
		txn := richRandLog(t, rng, st, 1, streamOpsThreshold)
		prep := PreparePooled(txn)
		if !prep.Streaming() {
			t.Fatalf("round %d: %d-op pooled artifact not streaming", round, len(txn))
		}
		want := det.DetectPrepared(obs.Ctx{}, st, Prepare(txn), committed)
		got := det.DetectPrepared(obs.Ctx{}, st, prep, committed)
		if got.Conflict != want.Conflict {
			t.Fatalf("round %d: pooled streaming verdict %v, want %v", round, got.Conflict, want.Conflict)
		}
		prep.Recycle()
	}
}

// TestCompressedDetectionMatchesUncompressed: demoting committed entries
// to compressed records must not change any verdict or reason, including
// in mixed windows (some entries demoted, some full) — the no-false-
// negative screen plus decode-and-detect equivalence the history
// demotion relies on.
func TestCompressedDetectionMatchesUncompressed(t *testing.T) {
	st := baseState()
	dets := equivDetectors()
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 300; trial++ {
		txn := richRandLog(t, rng, st, 1, 1)
		committed := make([]oplog.Log, rng.Intn(4))
		for i := range committed {
			committed[i] = richRandLog(t, rng, st, 100+i, 1)
		}
		full := PrepareAll(committed)
		packed := make([]*Prepared, len(full))
		mixed := make([]*Prepared, len(full))
		for i := range full {
			packed[i] = full[i].Compress()
			if !packed[i].Compressed() || packed[i].CompressedBytes() == 0 {
				t.Fatalf("trial %d: Compress did not produce a compressed record", trial)
			}
			mixed[i] = full[i]
			if i%2 == 0 {
				mixed[i] = packed[i]
			}
		}
		prep := Prepare(txn)
		for _, det := range dets {
			want := det.DetectPrepared(obs.Ctx{}, st, prep, full)
			for name, window := range map[string][]*Prepared{"packed": packed, "mixed": mixed} {
				got := det.DetectPrepared(obs.Ctx{}, st, prep, window)
				if got.Conflict != want.Conflict || got.Reason != want.Reason {
					t.Fatalf("trial %d, %s, %s window: got %v/%v, want %v/%v",
						trial, det.Name(), name, got.Conflict, got.Reason, want.Conflict, want.Reason)
				}
			}
		}
	}
}

// TestCompressedOnlineSoundness: against compressed entries the Online
// concrete check degrades to the write-set fallback, which may only
// over-reject — a conflict found on full entries must still be found on
// compressed ones (no false negatives), never the other way.
func TestCompressedOnlineSoundness(t *testing.T) {
	st := baseState()
	det := &Sequence{Online: true}
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 300; trial++ {
		txn := richRandLog(t, rng, st, 1, 1)
		committed := []oplog.Log{richRandLog(t, rng, st, 100, 1)}
		full := PrepareAll(committed)
		packed := []*Prepared{full[0].Compress()}
		prep := Prepare(txn)
		fullV := det.DetectPrepared(obs.Ctx{}, st, prep, full)
		packV := det.DetectPrepared(obs.Ctx{}, st, prep, packed)
		if fullV.Conflict && !packV.Conflict {
			t.Fatalf("trial %d: full window conflicts (%v) but compressed window admits — false negative",
				trial, fullV.Reason)
		}
	}
}

// TestCompressRoundTrip: structural equivalence of a compressed record
// with its source — op count, signatures, footprint, whole-log modes,
// location index, and each decoded subsequence shape.
func TestCompressRoundTrip(t *testing.T) {
	st := baseState()
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 100; trial++ {
		l := richRandLog(t, rng, st, 1, 1+rng.Intn(3))
		src := Prepare(l)
		// Odd trials compress a streaming artifact (the committed-entry form
		// of a large transaction); the record must still match the
		// materialized projections exactly.
		comSrc := src
		if trial%2 == 1 {
			comSrc = PrepareStreaming(l)
		}
		cp := comSrc.Compress()
		if cp == src || !cp.Compressed() {
			t.Fatal("Compress must produce a distinct compressed artifact")
		}
		if cp.Compress() != cp {
			t.Fatal("re-compressing must be the identity")
		}
		if cp.Ops() != len(l) {
			t.Fatalf("Ops = %d, want %d", cp.Ops(), len(l))
		}
		if cp.Log() != nil {
			t.Fatal("compressed artifact must retain no events")
		}
		sa, sw := src.Signatures()
		ca, cw := cp.Signatures()
		if sa != ca || sw != cw {
			t.Fatal("signatures differ after compression")
		}
		wantFoot := src.Footprint()
		gotFoot := cp.Footprint()
		if len(wantFoot) != len(gotFoot) {
			t.Fatalf("footprint size %d, want %d", len(gotFoot), len(wantFoot))
		}
		footIdx := make(map[state.Loc]FootprintLoc)
		for _, f := range wantFoot {
			footIdx[f.Loc] = f
		}
		for _, f := range gotFoot {
			if w, ok := footIdx[f.Loc]; !ok || w.Write != f.Write || w.Hash != f.Hash {
				t.Fatalf("footprint entry %v not in source footprint", f)
			}
		}
		wantModes := src.accessModes()
		gotModes := cp.accessModes()
		if len(wantModes) != len(gotModes) {
			t.Fatalf("whole-log modes size %d, want %d", len(gotModes), len(wantModes))
		}
		for p, m := range wantModes {
			if gotModes[p] != m {
				t.Fatalf("mode for %q = %v, want %v", p, gotModes[p], m)
			}
		}
		slocs, clocs := src.locations(), cp.locations()
		if len(slocs) != len(clocs) {
			t.Fatalf("location index size %d, want %d", len(clocs), len(slocs))
		}
		var sl renderSlot
		for i := range slocs {
			if clocs[i].p != slocs[i].p || clocs[i].wildcard != slocs[i].wildcard {
				t.Fatalf("location %d index mismatch", i)
			}
			r := cp.renderLoc(&clocs[i], &sl)
			if len(r.syms) != len(slocs[i].syms) {
				t.Fatalf("location %q decoded %d syms, want %d", slocs[i].p, len(r.syms), len(slocs[i].syms))
			}
			for j := range r.syms {
				if r.syms[j] != slocs[i].syms[j] {
					t.Fatalf("location %q sym %d = %v, want %v", slocs[i].p, j, r.syms[j], slocs[i].syms[j])
				}
			}
			wantLM := slocs[i].accessModes()
			gotLM := r.accessModes()
			if len(wantLM) != len(gotLM) {
				t.Fatalf("location %q mode map size %d, want %d", slocs[i].p, len(gotLM), len(wantLM))
			}
			for p, m := range wantLM {
				if gotLM[p] != m {
					t.Fatalf("location %q mode for %q = %v, want %v", slocs[i].p, p, gotLM[p], m)
				}
			}
		}
	}
}
