package conflict

import (
	"fmt"
	"testing"

	"repro/internal/oplog"
	"repro/internal/state"
)

// footAcc builds a synthetic access for footprint tests (Footprint reads
// only the logged access list, never the ops).
func footAcc(loc state.Loc, key string, read, write bool) oplog.Access {
	return oplog.Access{P: oplog.MakePLoc(loc, key), Read: read, Write: write}
}

func footLog(accs ...[]oplog.Access) oplog.Log {
	l := make(oplog.Log, len(accs))
	for i, a := range accs {
		l[i] = &oplog.Event{Task: 1, Seq: i, Acc: a}
	}
	return l
}

func TestFootprintDedupAndWriteAggregation(t *testing.T) {
	p := Prepare(footLog(
		[]oplog.Access{footAcc("work", "", true, false)},
		[]oplog.Access{footAcc("max", "", true, false)},
		[]oplog.Access{footAcc("work", "", false, true)}, // raises work to written
	))
	foot := p.Footprint()
	if len(foot) != 2 {
		t.Fatalf("footprint has %d entries, want 2 (deduplicated): %v", len(foot), foot)
	}
	if foot[0].Loc != "work" || foot[1].Loc != "max" {
		t.Fatalf("footprint order = %v, want first-access order [work max]", foot)
	}
	if !foot[0].Write {
		t.Fatal("work read then written must aggregate to Write=true")
	}
	if foot[1].Write {
		t.Fatal("max was only read; Write must be false")
	}
	for _, f := range foot {
		if f.Hash != fnv64a(string(f.Loc)) {
			t.Fatalf("%s carries hash %#x, want fnv64a = %#x", f.Loc, f.Hash, fnv64a(string(f.Loc)))
		}
	}
}

func TestFootprintCollapsesProjectionsToLocation(t *testing.T) {
	// Per-key accesses and the wildcard extent of one relation are the
	// same footprint entry: stripe locking works at state-location
	// granularity.
	p := Prepare(footLog(
		[]oplog.Access{footAcc("bits", "7", true, true)},
		[]oplog.Access{footAcc("bits", "*", true, false)},
		[]oplog.Access{footAcc("bits", "9", true, false)},
	))
	foot := p.Footprint()
	if len(foot) != 1 {
		t.Fatalf("footprint has %d entries, want 1 (all projections of bits): %v", len(foot), foot)
	}
	if foot[0].Loc != "bits" || !foot[0].Write {
		t.Fatalf("footprint = %+v, want bits with Write=true", foot[0])
	}
}

func TestFootprintLargeLogUsesIndex(t *testing.T) {
	// Exceed footprintScanBound so dedup switches to the index map, and
	// revisit every location once more to prove the map still
	// deduplicates and aggregates.
	var accs [][]oplog.Access
	n := footprintScanBound + 8
	for round := 0; round < 2; round++ {
		for i := 0; i < n; i++ {
			loc := state.Loc(fmt.Sprintf("loc%03d", i))
			accs = append(accs, []oplog.Access{footAcc(loc, "", true, round == 1)})
		}
	}
	foot := Prepare(footLog(accs...)).Footprint()
	if len(foot) != n {
		t.Fatalf("footprint has %d entries, want %d", len(foot), n)
	}
	for i, f := range foot {
		want := state.Loc(fmt.Sprintf("loc%03d", i))
		if f.Loc != want {
			t.Fatalf("foot[%d] = %s, want %s (first-access order)", i, f.Loc, want)
		}
		if !f.Write {
			t.Fatalf("%s written in second round but Write=false", f.Loc)
		}
	}
}

// TestFootprintRecycleReset pins the pooled-artifact reset: a recycled
// Prepared must not replay its previous log's memoized footprint (the
// bug made pooled commits plan stripes and signatures for a different
// transaction's locations — silent lost updates).
func TestFootprintRecycleReset(t *testing.T) {
	p := PreparePooled(footLog([]oplog.Access{footAcc("old", "", true, true)}))
	if foot := p.Footprint(); len(foot) != 1 || foot[0].Loc != "old" {
		t.Fatalf("first footprint = %v, want [old]", foot)
	}
	p.Recycle()
	// Draw from the pool a few times: on a single goroutine the recycled
	// artifact comes back immediately, so a missed reset would memoize
	// the old log's footprint into the new transaction.
	reused := false
	for i := 0; i < 8; i++ {
		q := PreparePooled(footLog([]oplog.Access{footAcc("new", "", true, false)}))
		reused = reused || q == p
		foot := q.Footprint()
		if len(foot) != 1 || foot[0].Loc != "new" {
			t.Fatalf("pooled footprint = %v, want [new]", foot)
		}
		if foot[0].Write {
			t.Fatal("pooled footprint kept a previous log's write flag")
		}
		a, w := q.Signatures()
		wantBit := uint64(1) << (fnv64a("new") % 64)
		if a != wantBit || w != 0 {
			t.Fatalf("pooled signatures = (%#x, %#x), want (%#x, 0)", a, w, wantBit)
		}
		q.Recycle()
	}
	if !reused {
		t.Log("pool never returned the recycled artifact; reset not exercised this run")
	}
}

// TestSignaturesNoFalseNegatives is the property the commit-path screen
// and the write-set fast path rely on: two logs sharing a location with
// a write on either side always produce intersecting signatures.
func TestSignaturesNoFalseNegatives(t *testing.T) {
	locs := []state.Loc{"a", "b", "c", "work", "max", "bits"}
	for _, shared := range locs {
		writer := Prepare(footLog([]oplog.Access{footAcc(shared, "", false, true)}))
		reader := Prepare(footLog(
			[]oplog.Access{footAcc(shared, "", true, false)},
			[]oplog.Access{footAcc("other", "", true, false)},
		))
		wa, ww := writer.Signatures()
		ra, rw := reader.Signatures()
		if ww&ra == 0 && wa&rw == 0 {
			t.Fatalf("shared written location %s produced disjoint signatures (%#x/%#x vs %#x/%#x)",
				shared, wa, ww, ra, rw)
		}
	}
	// Read-only logs never set write bits, so two of them always screen
	// out regardless of overlap.
	r1 := Prepare(footLog([]oplog.Access{footAcc("work", "", true, false)}))
	r2 := Prepare(footLog([]oplog.Access{footAcc("work", "", true, false)}))
	a1, w1 := r1.Signatures()
	a2, w2 := r2.Signatures()
	if w1 != 0 || w2 != 0 {
		t.Fatalf("read-only logs carry write signatures %#x/%#x", w1, w2)
	}
	if w1&a2 != 0 || a1&w2 != 0 {
		t.Fatal("read-read overlap must screen out")
	}
}
