package conflict

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/adt"
	"repro/internal/cache"
	"repro/internal/commute"
	"repro/internal/obs"
	"repro/internal/oplog"
	"repro/internal/seqabs"
	"repro/internal/state"
)

// randLog builds a random transaction log over the shared counters:
// loads, bare adds, and identity add pairs (the shape the trained cache
// below can answer). Conflicting and non-conflicting overlaps both occur.
func randLog(t *testing.T, rng *rand.Rand, st *state.State, task int) oplog.Log {
	t.Helper()
	locs := []state.Loc{"work", "max"}
	var ops []oplog.Op
	for n := 1 + rng.Intn(3); n > 0; n-- {
		loc := locs[rng.Intn(len(locs))]
		switch rng.Intn(3) {
		case 0:
			ops = append(ops, adt.NumLoadOp{L: loc})
		case 1:
			ops = append(ops, adt.NumAddOp{L: loc, Delta: int64(rng.Intn(5))})
		default:
			d := int64(1 + rng.Intn(5))
			ops = append(ops, adt.NumAddOp{L: loc, Delta: d}, adt.NumAddOp{L: loc, Delta: -d})
		}
	}
	return record(t, st, task, ops...)
}

// trainedIdentityCache returns a frozen cache answering identity add
// pairs, as the training pipeline would produce for the workload above.
func trainedIdentityCache() *cache.Cache {
	c := cache.New(seqabs.Abstract)
	idSyms := func(n string) []oplog.Sym {
		return []oplog.Sym{
			{Kind: adt.KindNumAdd, Arg: n}, {Kind: adt.KindNumAdd, Arg: "-" + n},
		}
	}
	c.Put(idSyms("1"), idSyms("2"), commute.CondRegister)
	c.Freeze()
	return c
}

// TestDetectorCompositionality is the property DetectPrepared's
// incremental watermark relies on: a verdict against a committed window
// is the disjunction of the verdicts against each entry alone, so
// per-entry results are final and never need re-checking. Checked for
// both detectors over randomized logs.
func TestDetectorCompositionality(t *testing.T) {
	st := baseState()
	detectors := []Detector{
		NewWriteSet(),
		NewSequence(trainedIdentityCache(), nil),
		NewSequence(nil, nil), // pure fallback
	}
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		txn := randLog(t, rng, st, 1)
		committed := make([]oplog.Log, rng.Intn(4))
		for i := range committed {
			committed[i] = randLog(t, rng, st, 100+i)
		}
		for _, det := range detectors {
			whole := det.DetectV(obs.Ctx{}, st, txn, committed).Conflict
			any := false
			for _, c := range committed {
				if det.DetectV(obs.Ctx{}, st, txn, []oplog.Log{c}).Conflict {
					any = true
				}
			}
			if whole != any {
				t.Fatalf("trial %d, %s: whole-window verdict %v != per-entry disjunction %v",
					trial, det.Name(), whole, any)
			}
		}
	}
}

// TestDetectPreparedMatchesDetectV: the prepared path and the
// compatibility shim must agree on every randomized input, for both
// detectors.
func TestDetectPreparedMatchesDetectV(t *testing.T) {
	st := baseState()
	detectors := []Detector{
		NewWriteSet(),
		NewSequence(trainedIdentityCache(), nil),
		NewSequence(nil, nil),
	}
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 200; trial++ {
		txn := randLog(t, rng, st, 1)
		committed := make([]oplog.Log, rng.Intn(4))
		for i := range committed {
			committed[i] = randLog(t, rng, st, 100+i)
		}
		prep := Prepare(txn)
		prepC := PrepareAll(committed)
		for _, det := range detectors {
			v1 := det.DetectV(obs.Ctx{}, st, txn, committed)
			v2 := det.DetectPrepared(obs.Ctx{}, st, prep, prepC)
			if v1.Conflict != v2.Conflict {
				t.Fatalf("trial %d, %s: DetectV=%v DetectPrepared=%v",
					trial, det.Name(), v1.Conflict, v2.Conflict)
			}
		}
	}
}

// TestPreparedSharedConcurrently shares one set of prepared projections
// across many detecting goroutines — the commit-time sharing the runtime
// does — and checks (under -race) that concurrent detection, including
// the lazily memoized cache keys and access-mode maps, never mutates the
// shared artifact or changes a verdict. One detector runs the trained
// hot path (exercising seqKey memoization), the other has every lookup
// forced to miss (exercising the write-set fallback's lazy mode maps).
func TestPreparedSharedConcurrently(t *testing.T) {
	st := baseState()
	rng := rand.New(rand.NewSource(47))
	committed := make([]oplog.Log, 4)
	for i := range committed {
		committed[i] = randLog(t, rng, st, 100+i)
	}
	prepC := PrepareAll(committed)
	txns := make([]oplog.Log, 8)
	preps := make([]*Prepared, len(txns))
	for i := range txns {
		txns[i] = randLog(t, rng, st, 1+i)
		preps[i] = Prepare(txns[i])
	}

	hot := NewSequence(trainedIdentityCache(), nil)
	missing := NewSequence(trainedIdentityCache(), nil)
	missing.ForceMiss = func(int, int) bool { return true }

	// Reference verdicts, computed single-threaded.
	want := make([][2]bool, len(txns))
	for i := range preps {
		want[i] = [2]bool{
			hot.DetectPrepared(obs.Ctx{}, st, preps[i], prepC).Conflict,
			missing.DetectPrepared(obs.Ctx{}, st, preps[i], prepC).Conflict,
		}
	}

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				i := (g + iter) % len(preps)
				if got := hot.DetectPrepared(obs.Ctx{}, st, preps[i], prepC).Conflict; got != want[i][0] {
					errs <- "hot-path verdict changed under concurrency"
					return
				}
				if got := missing.DetectPrepared(obs.Ctx{}, st, preps[i], prepC).Conflict; got != want[i][1] {
					errs <- "fallback verdict changed under concurrency"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestPreparePooledRecycle: a recycled artifact's buffers must be fully
// rebuilt on reuse — pool reuse yields the same projections and verdicts
// as a fresh Prepare.
func TestPreparePooledRecycle(t *testing.T) {
	st := baseState()
	rng := rand.New(rand.NewSource(53))
	det := NewSequence(trainedIdentityCache(), nil)
	committed := []oplog.Log{randLog(t, rng, st, 100), randLog(t, rng, st, 101)}
	prepC := PrepareAll(committed)
	for trial := 0; trial < 100; trial++ {
		txn := randLog(t, rng, st, 1)
		pooled := PreparePooled(txn)
		fresh := Prepare(txn)
		if pooled.NumLocs() != fresh.NumLocs() || pooled.Ops() != fresh.Ops() {
			t.Fatalf("trial %d: pooled artifact shape %d/%d != fresh %d/%d",
				trial, pooled.NumLocs(), pooled.Ops(), fresh.NumLocs(), fresh.Ops())
		}
		for i := range fresh.locs {
			pl, fl := &pooled.locs[i], &fresh.locs[i]
			if pl.p != fl.p || len(pl.seq) != len(fl.seq) || len(pl.syms) != len(fl.syms) {
				t.Fatalf("trial %d: projection %d differs after pool reuse", trial, i)
			}
		}
		got := det.DetectPrepared(obs.Ctx{}, st, pooled, prepC).Conflict
		wanted := det.DetectPrepared(obs.Ctx{}, st, fresh, prepC).Conflict
		if got != wanted {
			t.Fatalf("trial %d: pooled verdict %v != fresh %v", trial, got, wanted)
		}
		pooled.Recycle()
	}
}
