// Compressed committed-history records.
//
// A committed transaction's Prepared artifact holds its full event log
// plus materialized per-location arenas — O(ops) memory per history
// entry, which is why the history window used to be memory-bound. After
// an entry leaves the recent window the stm demotes it: Compress renders
// the artifact into a compact record that keeps exactly what detection
// needs and nothing the replay/commit path ever reads again — the
// footprint signatures for screening, the projection-location index, and
// each location's symbolic subsequence and access modes, delta-varint
// encoded against an interned descriptor table (the internal/rec framing
// idiom, minus the chunk/CRC envelope a purely in-memory record does not
// need; rec's encoder is unexported and rec imports stm, so the handful
// of varint calls live here).
//
// Detectors screen compressed entries by signature — equal locations set
// equal signature bits, so a clear screen is never a false negative — and
// only on overlap decode the one overlapping subsequence into pooled
// per-detection scratch (decode-and-detect, after *Data Race Detection on
// Compressed Traces*). The only check that needs concrete events rather
// than shapes is the optional Online concrete replay; against a
// compressed entry it degrades to the (sound, conservative) write-set
// fallback, documented in DESIGN.md §14.

package conflict

import (
	"encoding/binary"

	"repro/internal/oplog"
	"repro/internal/state"
)

// packedRec is the compressed form of a committed Prepared. Immutable
// after construction, so it is shared read-only by concurrent detectors
// without synchronization.
type packedRec struct {
	ops              int
	sigAll, sigWrite uint64
	// syms interns the distinct symbolic descriptors of the log; per-loc
	// subsequences reference it by index.
	syms []oplog.Sym
	// locs is the projection-location index in first-access order.
	locs []packedLoc
	// buf holds every location's encoded subsequence (delta-zigzag varint
	// descriptor references) and access-mode entries, back to back.
	buf []byte
}

// packedLoc is one projection location's window into the record.
type packedLoc struct {
	p        oplog.PLoc
	wildcard bool
	n        int // subsequence length
	seqOff   int // buf window of the descriptor-reference sequence
	seqEnd   int
	modeOff  int // buf window of the access-mode entries
	modeEnd  int
}

// modeBits packs a mode into one byte.
func modeBits(m mode) byte {
	var b byte
	if m.read {
		b |= 1
	}
	if m.write {
		b |= 2
	}
	return b
}

// packRecord compresses an artifact. Each location is read through
// renderLoc — a materialized location passes through its memoized
// projections, a streaming artifact's virtual stub is rendered out of
// the log into one reusable slot — so large auto-streaming committed
// entries compress correctly without ever materializing their arenas.
// The record shares the descriptor strings with the source ops but drops
// every event, arena, and log reference.
func packRecord(p *Prepared) *packedRec {
	locs := p.locations()
	sigAll, sigWrite := p.Signatures()
	r := &packedRec{ops: len(p.log), sigAll: sigAll, sigWrite: sigWrite}
	r.locs = make([]packedLoc, len(locs))
	// Index PLoc → location slot once: every access-mode key of a
	// subsequence is itself a decomposed location of the log (an event
	// accessing it appears in its own subsequence), so mode entries encode
	// as (slot, bits) pairs.
	slot := make(map[oplog.PLoc]int, len(locs))
	for i := range locs {
		slot[locs[i].p] = i
	}
	intern := make(map[oplog.Sym]int, 16)
	var sl renderSlot
	for i := range locs {
		pl := p.renderLoc(&locs[i], &sl)
		pr := &r.locs[i]
		pr.p, pr.wildcard, pr.n = pl.p, pl.wildcard, len(pl.syms)
		pr.seqOff = len(r.buf)
		prev := 0
		for _, s := range pl.syms {
			id, ok := intern[s]
			if !ok {
				id = len(r.syms)
				r.syms = append(r.syms, s)
				intern[s] = id
			}
			r.buf = binary.AppendVarint(r.buf, int64(id-prev))
			prev = id
		}
		pr.seqEnd = len(r.buf)
		pr.modeOff = len(r.buf)
		modes := pl.accessModes()
		r.buf = binary.AppendUvarint(r.buf, uint64(len(modes)))
		for q, m := range modes {
			r.buf = binary.AppendUvarint(r.buf, uint64(slot[q]))
			r.buf = append(r.buf, modeBits(m))
		}
		pr.modeEnd = len(r.buf)
	}
	return r
}

// appendSyms decodes location i's symbolic subsequence into dst.
func (r *packedRec) appendSyms(dst []oplog.Sym, i int) []oplog.Sym {
	b := r.buf[r.locs[i].seqOff:r.locs[i].seqEnd]
	prev := int64(0)
	for len(b) > 0 {
		d, n := binary.Varint(b)
		b = b[n:]
		prev += d
		dst = append(dst, r.syms[prev])
	}
	return dst
}

// locModes decodes location i's access-mode map.
func (r *packedRec) locModes(i int) map[oplog.PLoc]mode {
	b := r.buf[r.locs[i].modeOff:r.locs[i].modeEnd]
	cnt, n := binary.Uvarint(b)
	b = b[n:]
	m := make(map[oplog.PLoc]mode, cnt)
	for k := uint64(0); k < cnt; k++ {
		idx, n := binary.Uvarint(b)
		b = b[n:]
		bits := b[0]
		b = b[1:]
		m[r.locs[idx].p] = mode{read: bits&1 != 0, write: bits&2 != 0}
	}
	return m
}

// allModes reconstructs the whole-log access modes: a location's own
// entry in its own subsequence's mode map aggregates every access to it
// in the whole log (each such event sits in that subsequence), so the
// union of own-entries is exactly the whole-log map.
func (r *packedRec) allModes() map[oplog.PLoc]mode {
	m := make(map[oplog.PLoc]mode, len(r.locs))
	for i := range r.locs {
		lm := r.locModes(i)
		m[r.locs[i].p] = lm[r.locs[i].p]
	}
	return m
}

// footprint reconstructs the distinct-location footprint from the index
// (the commit path never asks a demoted entry for it, but the accessor
// contract holds either way).
func (r *packedRec) footprint() []FootprintLoc {
	own := r.allModes()
	var foot []FootprintLoc
	idx := make(map[state.Loc]int, len(r.locs))
	for i := range r.locs {
		loc := r.locs[i].p.Loc()
		w := own[r.locs[i].p].write
		if j, ok := idx[loc]; ok {
			foot[j].Write = foot[j].Write || w
			continue
		}
		idx[loc] = len(foot)
		foot = append(foot, FootprintLoc{Loc: loc, Hash: fnv64a(string(loc)), Write: w})
	}
	return foot
}

// bytes estimates the record's retained size: the encoded buffer plus the
// index and interned-descriptor tables (slice headers, strings, and
// per-entry bookkeeping). Feeds the stm's hist_bytes gauge.
func (r *packedRec) bytes() int {
	n := len(r.buf) + 64 // struct + slice headers
	n += len(r.locs) * 72
	for i := range r.locs {
		n += len(r.locs[i].p)
	}
	for _, s := range r.syms {
		n += 32 + len(s.Kind) + len(s.Arg)
	}
	return n
}

// Compress returns the artifact's compact committed-history form,
// dropping the event log and materialized arenas. The result answers
// every detection query (screened by signature, decoded on overlap) but
// carries no concrete events: the optional Online concrete check degrades
// to the write-set fallback against it, and Log returns nil. Compressing
// an already-compressed artifact returns it unchanged. The source must be
// a published (shared read-only, never recycled) artifact.
func (p *Prepared) Compress() *Prepared {
	if p.packed != nil {
		return p
	}
	return &Prepared{packed: packRecord(p)}
}

// Compressed reports whether the artifact is a demoted compact record
// (false for nil, like Recycle's nil tolerance).
func (p *Prepared) Compressed() bool { return p != nil && p.packed != nil }

// CompressedBytes returns the retained size of a compressed artifact's
// record, or 0 for a full (or nil) artifact.
func (p *Prepared) CompressedBytes() int {
	if p == nil || p.packed == nil {
		return 0
	}
	return p.packed.bytes()
}
