// Package seqeff analyzes the composite effect of per-location operation
// sequences, generalizing the numeric affine theory (internal/affine) to
// all the operation kinds of the reproduction: numeric add/store/load,
// string and boolean stores/loads, per-key relational put/remove/get/has
// (a relational key behaves as a register whose "absent" value is a
// distinguished constant), and stack push/pop/size.
//
// The theory answers the three questions the hindsight engine asks:
//
//   - composite effect of a sequence (COMMUTE, Figure 8);
//   - stability of each internal read under a concurrent effect
//     (SAMEREAD, Lemma 5.2);
//   - idempotence of a subsequence (the Kleene-cross abstraction of §5.2,
//     Lemma 5.1).
package seqeff

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/adt"
	"repro/internal/oplog"
)

// EffKind classifies a register effect.
type EffKind int

// Register effect kinds. Ident is the identity function; Add shifts a
// numeric value; Store pins the value regardless of input.
const (
	Ident EffKind = iota
	Add
	Store
)

// Effect is the composite effect of a register sequence: identity, a
// numeric shift by N, or a store of V.
type Effect struct {
	Kind EffKind
	N    int64  // Add: the shift
	V    string // Store: the stored value, rendered
}

// String renders the effect.
func (e Effect) String() string {
	switch e.Kind {
	case Ident:
		return "id"
	case Add:
		return fmt.Sprintf("x+%d", e.N)
	default:
		return fmt.Sprintf("≔%s", e.V)
	}
}

// IsIdent reports the identity effect.
func (e Effect) IsIdent() bool { return e.Kind == Ident }

// Then returns the composition g∘e (first e, then g). ok is false when
// the composition leaves the theory (an Add applied after a non-numeric
// Store).
func (e Effect) Then(g Effect) (Effect, bool) {
	switch g.Kind {
	case Ident:
		return e, true
	case Add:
		switch e.Kind {
		case Ident:
			return normAdd(g.N), true
		case Add:
			return normAdd(e.N + g.N), true
		default: // Store then Add: fold into the stored value if numeric
			n, err := strconv.ParseInt(e.V, 10, 64)
			if err != nil {
				return Effect{}, false
			}
			return Effect{Kind: Store, V: strconv.FormatInt(n+g.N, 10)}, true
		}
	default: // Store wipes anything before it
		return g, true
	}
}

func normAdd(n int64) Effect {
	if n == 0 {
		return Effect{Kind: Ident}
	}
	return Effect{Kind: Add, N: n}
}

// Commute reports whether two effects commute as functions on every input.
func Commute(a, b Effect) bool {
	switch {
	case a.IsIdent() || b.IsIdent():
		return true
	case a.Kind == Add && b.Kind == Add:
		return true
	case a.Kind == Store && b.Kind == Store:
		return a.V == b.V
	default:
		// Add vs Store: the non-identity add shifts the store's result
		// in one order only.
		return false
	}
}

// Analysis decomposes a register sequence.
type Analysis struct {
	Eff   Effect
	Reads []Effect // prefix effect immediately before each observing op
}

// SameRead reports whether every read in a is unaffected by executing a
// concurrent sequence with composite effect g first.
func SameRead(a Analysis, g Effect) bool {
	if g.IsIdent() {
		return true
	}
	for _, prefix := range a.Reads {
		if prefix.Kind != Store {
			return false
		}
	}
	return true
}

// PairConflicts runs the per-location CONFLICT judgment (Figure 8) on two
// register analyses: conflict unless both SAMEREAD checks and COMMUTE
// pass.
func PairConflicts(a, b Analysis) bool {
	if !SameRead(a, b.Eff) || !SameRead(b, a.Eff) {
		return true
	}
	return !Commute(a.Eff, b.Eff)
}

// Idempotent reports whether a register sequence is idempotent in the
// sense of Lemma 5.1: running it twice from any state is indistinguishable
// from running it once, for both the final state and every internal read.
// That holds when the composite effect is the identity (the second run
// starts where the first did), or when it is a store and every read
// follows the sequence's first store (the second run starts at the stored
// value, which its reads then observe identically).
func Idempotent(a Analysis) bool {
	switch a.Eff.Kind {
	case Ident:
		return true
	case Store:
		for _, prefix := range a.Reads {
			if prefix.Kind != Store {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// AnalyzeRegister folds a per-location symbolic sequence into its register
// analysis. ok is false when the sequence contains stack operations or
// malformed arguments — callers then try the stack theory or give up.
func AnalyzeRegister(syms []oplog.Sym) (Analysis, bool) {
	var a Analysis
	a.Eff = Effect{Kind: Ident}
	for _, s := range syms {
		var step Effect
		read := false
		switch s.Kind {
		case adt.KindNumAdd:
			n, err := strconv.ParseInt(s.Arg, 10, 64)
			if err != nil {
				return Analysis{}, false
			}
			step = normAdd(n)
		case adt.KindNumStore, adt.KindStrStore, adt.KindBoolStore, adt.KindRelPut:
			step = Effect{Kind: Store, V: s.Arg}
		case adt.KindRelRemove, adt.KindRelClear:
			// Per-key semantics: removal stores the distinguished
			// "absent" value.
			step = Effect{Kind: Store, V: adt.AbsentVal}
		case adt.KindNumLoad, adt.KindStrLoad, adt.KindBoolLoad, adt.KindRelGet, adt.KindRelHas:
			read = true
		default:
			return Analysis{}, false
		}
		if read {
			a.Reads = append(a.Reads, a.Eff)
			continue
		}
		eff, ok := a.Eff.Then(step)
		if !ok {
			return Analysis{}, false
		}
		a.Eff = eff
	}
	return a, true
}

// --- Stack theory ---

// StackAnalysis summarizes a sequence of stack operations relative to the
// entry stack.
type StackAnalysis struct {
	// NetPops counts pops that consumed entry-state elements.
	NetPops int
	// Pushes holds the net pushed values remaining above the entry level.
	Pushes []string
	// PrestateRead reports whether any pop observed an entry-state value.
	PrestateRead bool
	// SizeReads holds the net height delta at each size observation.
	SizeReads []int
}

// Balanced reports net identity: the sequence restores the entry stack
// exactly and never consumed entry-state elements.
func (s StackAnalysis) Balanced() bool {
	return s.NetPops == 0 && len(s.Pushes) == 0 && !s.PrestateRead
}

// AnalyzeStack folds a sequence of stack operations. ok is false for
// non-stack kinds.
func AnalyzeStack(syms []oplog.Sym) (StackAnalysis, bool) {
	var sa StackAnalysis
	var virt []string // values pushed by the sequence, above entry level
	depth := 0        // net height delta
	for _, s := range syms {
		switch s.Kind {
		case adt.KindListPush:
			virt = append(virt, s.Arg)
			depth++
		case adt.KindListPop:
			if len(virt) > 0 {
				virt = virt[:len(virt)-1]
			} else {
				sa.NetPops++
				sa.PrestateRead = true
			}
			depth--
		case adt.KindListSize:
			sa.SizeReads = append(sa.SizeReads, depth)
		default:
			return StackAnalysis{}, false
		}
	}
	sa.Pushes = append([]string(nil), virt...)
	return sa, true
}

// StackReadsStable reports whether every observation in a (pops of own
// pushes, size reads) is unaffected by running the other sequence first:
// pops are stable when they never consume entry-state elements, and size
// reads are stable when the other sequence's net height change is zero.
func StackReadsStable(a, other StackAnalysis) bool {
	if a.PrestateRead {
		// Pops reached the entry stack: the values observed depend on
		// what the other sequence left there.
		otherIdentity := other.NetPops == 0 && len(other.Pushes) == 0
		if !otherIdentity {
			return false
		}
	}
	if len(a.SizeReads) > 0 {
		if len(other.Pushes)-other.NetPops != 0 {
			return false
		}
	}
	return true
}

// StackPairConflicts reports the CONFLICT judgment for two stack
// sequences. Two balanced (identity) sequences commute and read
// consistently in either order; anything else is conservatively a
// conflict. Size observations are stable because the identity concurrent
// sequence leaves the height unchanged.
func StackPairConflicts(a, b StackAnalysis) bool {
	return !(a.Balanced() && b.Balanced())
}

// IdempotentStack reports Lemma 5.1 idempotence for a stack sequence:
// balanced sequences restore the entry state, so a second run repeats the
// first exactly.
func IdempotentStack(a StackAnalysis) bool { return a.Balanced() }

// --- Theory dispatch ---

// Theory identifies which effect theory covers a sequence.
type Theory int

// Theories.
const (
	TheoryNone Theory = iota
	TheoryRegister
	TheoryStack
)

// String renders the theory.
func (t Theory) String() string {
	switch t {
	case TheoryRegister:
		return "register"
	case TheoryStack:
		return "stack"
	default:
		return "none"
	}
}

// Classify determines the covering theory of a symbolic sequence.
func Classify(syms []oplog.Sym) Theory {
	if _, ok := AnalyzeRegister(syms); ok {
		return TheoryRegister
	}
	if _, ok := AnalyzeStack(syms); ok {
		return TheoryStack
	}
	return TheoryNone
}

// BlockIdempotent reports whether a concrete symbolic block is idempotent
// under its covering theory — the predicate driving the Kleene-cross
// abstraction of §5.2.
func BlockIdempotent(syms []oplog.Sym) bool {
	if len(syms) == 0 {
		return false
	}
	if a, ok := AnalyzeRegister(syms); ok {
		return Idempotent(a)
	}
	if sa, ok := AnalyzeStack(syms); ok {
		return IdempotentStack(sa)
	}
	return false
}

// ShapeKey renders the kind sequence of a block, the shape identity used
// by abstraction and cache keys.
func ShapeKey(syms []oplog.Sym) string {
	kinds := make([]string, len(syms))
	for i, s := range syms {
		kinds[i] = s.Kind
	}
	return strings.Join(kinds, " ")
}
