package seqeff

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/adt"
	"repro/internal/affine"
	"repro/internal/oplog"
)

func sym(kind, arg string) oplog.Sym { return oplog.Sym{Kind: kind, Arg: arg} }

func TestEffectThen(t *testing.T) {
	id := Effect{Kind: Ident}
	add2 := Effect{Kind: Add, N: 2}
	addm2 := Effect{Kind: Add, N: -2}
	store5 := Effect{Kind: Store, V: "5"}
	storeA := Effect{Kind: Store, V: "a"}

	cases := []struct {
		name string
		e, g Effect
		want Effect
		ok   bool
	}{
		{"id∘id", id, id, id, true},
		{"add∘add cancels", add2, addm2, id, true},
		{"add∘add accumulates", add2, add2, Effect{Kind: Add, N: 4}, true},
		{"store wipes add", add2, store5, store5, true},
		{"numeric store then add folds", store5, add2, Effect{Kind: Store, V: "7"}, true},
		{"non-numeric store then add fails", storeA, add2, Effect{}, false},
		{"then identity", store5, id, store5, true},
	}
	for _, c := range cases {
		got, ok := c.e.Then(c.g)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("%s: Then = %v,%v; want %v,%v", c.name, got, ok, c.want, c.ok)
		}
	}
}

func TestCommute(t *testing.T) {
	id := Effect{Kind: Ident}
	add := Effect{Kind: Add, N: 3}
	s1 := Effect{Kind: Store, V: "x"}
	s2 := Effect{Kind: Store, V: "x"}
	s3 := Effect{Kind: Store, V: "y"}
	cases := []struct {
		a, b Effect
		want bool
	}{
		{id, add, true}, {add, id, true}, {id, s1, true},
		{add, add, true},
		{s1, s2, true},  // equal-writes
		{s1, s3, false}, // different writes
		{add, s1, false}, {s1, add, false},
	}
	for _, c := range cases {
		if got := Commute(c.a, c.b); got != c.want {
			t.Errorf("Commute(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAnalyzeRegister(t *testing.T) {
	// The Figure 1 identity pattern: work += w; work -= w.
	a, ok := AnalyzeRegister([]oplog.Sym{
		sym(adt.KindNumAdd, "3"), sym(adt.KindNumAdd, "-3"),
	})
	if !ok || !a.Eff.IsIdent() {
		t.Fatalf("identity pair: %v %v", a, ok)
	}
	if !Idempotent(a) {
		t.Errorf("identity must be idempotent")
	}

	// Shared-as-local: store then load.
	b, ok := AnalyzeRegister([]oplog.Sym{
		sym(adt.KindStrStore, "f.go"), sym(adt.KindStrLoad, ""),
	})
	if !ok || b.Eff.Kind != Store || b.Eff.V != "f.go" {
		t.Fatalf("store-load: %v %v", b, ok)
	}
	if len(b.Reads) != 1 || b.Reads[0].Kind != Store {
		t.Fatalf("read prefix must be the store: %v", b.Reads)
	}
	if !Idempotent(b) {
		t.Errorf("store-then-load must be idempotent")
	}

	// Load before store is not idempotent.
	c, _ := AnalyzeRegister([]oplog.Sym{
		sym(adt.KindNumLoad, ""), sym(adt.KindNumStore, "5"),
	})
	if Idempotent(c) {
		t.Errorf("load-then-store must not be idempotent")
	}

	// Pure add is not idempotent.
	d, _ := AnalyzeRegister([]oplog.Sym{sym(adt.KindNumAdd, "2")})
	if Idempotent(d) {
		t.Errorf("add(2) must not be idempotent")
	}

	// Relational per-key: put/remove/get map onto store/load.
	e, ok := AnalyzeRegister([]oplog.Sym{
		sym(adt.KindRelPut, "white"), sym(adt.KindRelGet, ""), sym(adt.KindRelRemove, ""),
	})
	if !ok || e.Eff.Kind != Store || e.Eff.V != adt.AbsentVal {
		t.Fatalf("rel seq effect = %v", e.Eff)
	}

	// Stack ops leave the register theory.
	if _, ok := AnalyzeRegister([]oplog.Sym{sym(adt.KindListPush, "1")}); ok {
		t.Errorf("stack op must not be register-analyzable")
	}
	if _, ok := AnalyzeRegister([]oplog.Sym{sym(adt.KindNumAdd, "junk")}); ok {
		t.Errorf("malformed arg must fail")
	}
}

func TestPairConflictsPatterns(t *testing.T) {
	analyze := func(syms ...oplog.Sym) Analysis {
		a, ok := AnalyzeRegister(syms)
		if !ok {
			t.Fatalf("not register: %v", syms)
		}
		return a
	}
	identity := analyze(sym(adt.KindNumAdd, "2"), sym(adt.KindNumAdd, "-2"))
	reduction := analyze(sym(adt.KindNumAdd, "5"))
	equalW1 := analyze(sym(adt.KindRelPut, "white"))
	equalW2 := analyze(sym(adt.KindRelPut, "white"))
	diffW := analyze(sym(adt.KindRelPut, "black"))
	spy := analyze(sym(adt.KindNumLoad, ""))
	local := analyze(sym(adt.KindStrStore, "a"), sym(adt.KindStrLoad, ""))

	cases := []struct {
		name     string
		a, b     Analysis
		conflict bool
	}{
		{"identity vs identity", identity, identity, false},
		{"identity vs reduction", identity, reduction, false},
		{"reduction vs reduction", reduction, reduction, false},
		{"equal writes", equalW1, equalW2, false},
		{"different writes", equalW1, diffW, true},
		{"spy vs identity", spy, identity, false},
		{"spy vs reduction", spy, reduction, true},
		{"local vs local", local, local, false},
		{"local vs different store", local, analyze(sym(adt.KindStrStore, "b")), true},
	}
	for _, c := range cases {
		if got := PairConflicts(c.a, c.b); got != c.conflict {
			t.Errorf("%s: PairConflicts = %v, want %v", c.name, got, c.conflict)
		}
		if got := PairConflicts(c.b, c.a); got != c.conflict {
			t.Errorf("%s (swapped): PairConflicts = %v, want %v", c.name, got, c.conflict)
		}
	}
}

func TestAnalyzeStack(t *testing.T) {
	balanced, ok := AnalyzeStack([]oplog.Sym{
		sym(adt.KindListPush, "2"), sym(adt.KindListPush, "7"),
		sym(adt.KindListPop, ""), sym(adt.KindListPop, ""),
	})
	if !ok || !balanced.Balanced() {
		t.Fatalf("balanced push/pop: %+v %v", balanced, ok)
	}
	if !IdempotentStack(balanced) {
		t.Errorf("balanced sequence must be idempotent")
	}

	popFirst, _ := AnalyzeStack([]oplog.Sym{sym(adt.KindListPop, ""), sym(adt.KindListPush, "1")})
	if popFirst.Balanced() || !popFirst.PrestateRead || popFirst.NetPops != 1 {
		t.Fatalf("pop-first: %+v", popFirst)
	}
	if IdempotentStack(popFirst) {
		t.Errorf("prestate-popping sequence must not be idempotent")
	}

	sized, _ := AnalyzeStack([]oplog.Sym{
		sym(adt.KindListPush, "1"), sym(adt.KindListSize, ""), sym(adt.KindListPop, ""),
	})
	if len(sized.SizeReads) != 1 || sized.SizeReads[0] != 1 {
		t.Fatalf("size read deltas = %v", sized.SizeReads)
	}
	if !sized.Balanced() {
		t.Errorf("push-size-pop is balanced")
	}

	if _, ok := AnalyzeStack([]oplog.Sym{sym(adt.KindNumAdd, "1")}); ok {
		t.Errorf("register op must not be stack-analyzable")
	}
}

func TestStackPairConflicts(t *testing.T) {
	bal, _ := AnalyzeStack([]oplog.Sym{sym(adt.KindListPush, "1"), sym(adt.KindListPop, "")})
	unbal, _ := AnalyzeStack([]oplog.Sym{sym(adt.KindListPush, "1")})
	if StackPairConflicts(bal, bal) {
		t.Errorf("two balanced sequences must not conflict")
	}
	if !StackPairConflicts(bal, unbal) || !StackPairConflicts(unbal, unbal) {
		t.Errorf("unbalanced sequences must conflict")
	}
}

func TestClassify(t *testing.T) {
	if got := Classify([]oplog.Sym{sym(adt.KindNumAdd, "1")}); got != TheoryRegister {
		t.Errorf("Classify add = %v", got)
	}
	if got := Classify([]oplog.Sym{sym(adt.KindListPush, "1")}); got != TheoryStack {
		t.Errorf("Classify push = %v", got)
	}
	if got := Classify([]oplog.Sym{sym(adt.KindListPush, "1"), sym(adt.KindNumAdd, "1")}); got != TheoryNone {
		t.Errorf("Classify mixed = %v", got)
	}
	for th, want := range map[Theory]string{TheoryRegister: "register", TheoryStack: "stack", TheoryNone: "none"} {
		if th.String() != want {
			t.Errorf("String(%d) = %q", th, th.String())
		}
	}
}

func TestBlockIdempotent(t *testing.T) {
	cases := []struct {
		syms []oplog.Sym
		want bool
	}{
		{nil, false},
		{[]oplog.Sym{sym(adt.KindNumAdd, "2"), sym(adt.KindNumAdd, "-2")}, true},
		{[]oplog.Sym{sym(adt.KindNumAdd, "2")}, false},
		{[]oplog.Sym{sym(adt.KindRelPut, "white")}, true}, // pure store
		{[]oplog.Sym{sym(adt.KindListPush, "3"), sym(adt.KindListPop, "")}, true},
		{[]oplog.Sym{sym(adt.KindListPop, ""), sym(adt.KindListPush, "3")}, false},
		{[]oplog.Sym{sym(adt.KindNumLoad, "")}, true}, // pure read block
	}
	for i, c := range cases {
		if got := BlockIdempotent(c.syms); got != c.want {
			t.Errorf("case %d (%v): BlockIdempotent = %v, want %v", i, c.syms, got, c.want)
		}
	}
}

// TestIdempotenceSemantics validates the Lemma 5.1 predicate against
// direct double-execution on random register sequences over a small value
// domain.
func TestIdempotenceSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	genSeq := func() []oplog.Sym {
		n := 1 + rng.Intn(4)
		out := make([]oplog.Sym, n)
		for i := range out {
			switch rng.Intn(3) {
			case 0:
				out[i] = sym(adt.KindNumAdd, strconv.Itoa(rng.Intn(5)-2))
			case 1:
				out[i] = sym(adt.KindNumStore, strconv.Itoa(rng.Intn(4)))
			default:
				out[i] = sym(adt.KindNumLoad, "")
			}
		}
		return out
	}
	run := func(seq []oplog.Sym, x int64) (int64, []int64) {
		var obs []int64
		for _, s := range seq {
			switch s.Kind {
			case adt.KindNumAdd:
				n, _ := strconv.ParseInt(s.Arg, 10, 64)
				x += n
			case adt.KindNumStore:
				n, _ := strconv.ParseInt(s.Arg, 10, 64)
				x = n
			case adt.KindNumLoad:
				obs = append(obs, x)
			}
		}
		return x, obs
	}
	for iter := 0; iter < 2000; iter++ {
		seq := genSeq()
		a, ok := AnalyzeRegister(seq)
		if !ok {
			t.Fatalf("register analysis failed: %v", seq)
		}
		got := Idempotent(a)
		// Semantics: for all entry x, state after once == after twice and
		// the second run's observations equal the first run's.
		want := true
		for x := int64(-5); x <= 5 && want; x++ {
			s1, o1 := run(seq, x)
			s2, o2 := run(seq, s1)
			if s1 != s2 || len(o1) != len(o2) {
				want = false
				break
			}
			for i := range o1 {
				if o1[i] != o2[i] {
					want = false
					break
				}
			}
		}
		if got != want {
			t.Fatalf("iter %d: Idempotent=%v, semantics=%v, seq=%v", iter, got, want, seq)
		}
	}
}

func TestShapeKey(t *testing.T) {
	got := ShapeKey([]oplog.Sym{sym(adt.KindNumAdd, "1"), sym(adt.KindNumLoad, "")})
	if got != "num.add num.load" {
		t.Errorf("ShapeKey = %q", got)
	}
	if ShapeKey(nil) != "" {
		t.Errorf("empty ShapeKey = %q", ShapeKey(nil))
	}
}

func TestEffectString(t *testing.T) {
	if (Effect{Kind: Ident}).String() != "id" ||
		(Effect{Kind: Add, N: 2}).String() != "x+2" ||
		(Effect{Kind: Store, V: "a"}).String() != "≔a" {
		t.Errorf("effect strings wrong")
	}
}

// TestAgreesWithAffineTheory cross-validates the generalized register
// theory against the specialized affine theory (internal/affine) on
// random numeric sequences: both must produce identical conflict
// verdicts.
func TestAgreesWithAffineTheory(t *testing.T) {
	rng := rand.New(rand.NewSource(2718))
	gen := func() []oplog.Sym {
		n := 1 + rng.Intn(5)
		out := make([]oplog.Sym, n)
		for i := range out {
			switch rng.Intn(3) {
			case 0:
				out[i] = sym(adt.KindNumAdd, strconv.Itoa(rng.Intn(9)-4))
			case 1:
				out[i] = sym(adt.KindNumStore, strconv.Itoa(rng.Intn(5)))
			default:
				out[i] = sym(adt.KindNumLoad, "")
			}
		}
		return out
	}
	for iter := 0; iter < 1000; iter++ {
		s1, s2 := gen(), gen()
		r1, ok1 := AnalyzeRegister(s1)
		r2, ok2 := AnalyzeRegister(s2)
		a1, okA1 := affine.AnalyzeSyms(s1)
		a2, okA2 := affine.AnalyzeSyms(s2)
		if !ok1 || !ok2 || !okA1 || !okA2 {
			t.Fatalf("iter %d: analyses failed: %v %v %v %v", iter, ok1, ok2, okA1, okA2)
		}
		reg := PairConflicts(r1, r2)
		aff := affine.PairConflicts(a1, a2)
		if reg != aff {
			t.Fatalf("iter %d: register says conflict=%v, affine says %v\ns1=%v\ns2=%v",
				iter, reg, aff, s1, s2)
		}
	}
}
