package relspec

import (
	"testing"

	"repro/internal/adt"
	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/oplog"
	"repro/internal/relation"
	"repro/internal/state"
	"repro/internal/stm"
)

// routeSpec is a custom multi-column ADT: a routing table keyed by
// (src, dst) with cost and via columns.
func routeSpec() Spec {
	return Spec{
		Columns: []string{"src", "dst", "cost", "via"},
		Domain:  []string{"src", "dst"},
	}
}

func route(src, dst, cost, via string) relation.Tuple {
	return relation.Tuple{"src": src, "dst": dst, "cost": cost, "via": via}
}

func key(src, dst string) relation.Tuple {
	return relation.Tuple{"src": src, "dst": dst}
}

// directExec applies ops straight to a state.
type directExec struct {
	st  *state.State
	log oplog.Log
}

func (d *directExec) Exec(op oplog.Op) (state.Value, error) {
	acc := op.Accesses(d.st)
	v, err := op.Apply(d.st)
	if err != nil {
		return nil, err
	}
	d.log = append(d.log, &oplog.Event{Op: op, Seq: len(d.log), Acc: acc, Observed: v})
	return v, nil
}

func newObj(t *testing.T) (Object, *directExec) {
	t.Helper()
	st := state.New()
	obj, err := New(st, "routes", routeSpec())
	if err != nil {
		t.Fatal(err)
	}
	return obj, &directExec{st: st}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"valid", routeSpec(), true},
		{"no columns", Spec{}, false},
		{"duplicate column", Spec{Columns: []string{"a", "a"}}, false},
		{"empty column", Spec{Columns: []string{""}}, false},
		{"domain not in schema", Spec{Columns: []string{"a"}, Domain: []string{"b"}}, false},
		{"domain covers everything", Spec{Columns: []string{"a"}, Domain: []string{"a"}}, false},
		{"no FD", Spec{Columns: []string{"a", "b"}}, true},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestPutGetDeleteHasClear(t *testing.T) {
	obj, ex := newObj(t)
	if err := obj.Put(ex, route("a", "b", "3", "r1")); err != nil {
		t.Fatal(err)
	}
	got, ok, err := obj.Get(ex, key("a", "b"))
	if err != nil || !ok {
		t.Fatalf("Get = %v %v %v", got, ok, err)
	}
	if got["cost"] != "3" || got["via"] != "r1" {
		t.Fatalf("Get = %v", got)
	}
	// Re-put evicts the matching tuple (Table 2 insert).
	if err := obj.Put(ex, route("a", "b", "9", "r2")); err != nil {
		t.Fatal(err)
	}
	got, _, _ = obj.Get(ex, key("a", "b"))
	if got["cost"] != "9" {
		t.Fatalf("after re-put: %v", got)
	}
	if has, _ := obj.Has(ex, key("a", "b")); !has {
		t.Errorf("Has must be true")
	}
	if has, _ := obj.Has(ex, key("a", "z")); has {
		t.Errorf("absent key must report false")
	}
	if err := obj.Delete(ex, key("a", "b")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := obj.Get(ex, key("a", "b")); ok {
		t.Errorf("deleted key must be absent")
	}
	_ = obj.Put(ex, route("a", "b", "1", "r1"))
	_ = obj.Put(ex, route("b", "c", "2", "r1"))
	if err := obj.Clear(ex); err != nil {
		t.Fatal(err)
	}
	if has, _ := obj.Has(ex, key("b", "c")); has {
		t.Errorf("Clear must remove everything")
	}
}

func TestSchemaValidationErrors(t *testing.T) {
	obj, ex := newObj(t)
	if err := obj.Put(ex, relation.Tuple{"src": "a"}); err == nil {
		t.Errorf("partial tuple must be rejected")
	}
	if err := obj.Put(ex, relation.Tuple{"src": "a", "dst": "b", "cost": "1", "bogus": "x"}); err == nil {
		t.Errorf("wrong column must be rejected")
	}
	if _, _, err := obj.Get(ex, relation.Tuple{"src": "a"}); err == nil {
		t.Errorf("partial key must be rejected")
	}
	if err := obj.Delete(ex, relation.Tuple{"zzz": "1", "dst": "b"}); err == nil {
		t.Errorf("wrong key column must be rejected")
	}
}

func TestFootprintsArePerCompositeKey(t *testing.T) {
	obj, ex := newObj(t)
	if err := obj.Put(ex, route("a", "b", "3", "r1")); err != nil {
		t.Fatal(err)
	}
	acc := ex.log[0].Acc
	if len(acc) != 1 || !acc[0].Write {
		t.Fatalf("put accesses = %+v", acc)
	}
	if want := oplog.PLoc("routes#dst=b,src=a"); acc[0].P != want {
		t.Fatalf("PLoc = %q, want %q", acc[0].P, want)
	}
	// Deleting an absent key observes absence (a read, §6.2).
	if err := obj.Delete(ex, key("q", "r")); err != nil {
		t.Fatal(err)
	}
	acc = ex.log[len(ex.log)-1].Acc
	if len(acc) != 1 || !acc[0].Read || acc[0].Write {
		t.Fatalf("delete-absent accesses = %+v", acc)
	}
}

func TestSymsReuseBuiltinKinds(t *testing.T) {
	obj, ex := newObj(t)
	_ = obj.Put(ex, route("a", "b", "3", "r1"))
	_, _, _ = obj.Get(ex, key("a", "b"))
	_ = obj.Delete(ex, key("a", "b"))
	_ = obj.Clear(ex)
	wantKinds := []string{adt.KindRelPut, adt.KindRelGet, adt.KindRelRemove, adt.KindRelClear}
	syms := ex.log.Syms()
	if len(syms) != len(wantKinds) {
		t.Fatalf("log = %v", syms)
	}
	for i, k := range wantKinds {
		if syms[i].Kind != k {
			t.Errorf("op %d kind = %q, want %q", i, syms[i].Kind, k)
		}
	}
	if syms[0].Arg != "cost=3,via=r1" {
		t.Errorf("put arg = %q", syms[0].Arg)
	}
}

// TestEndToEndEqualWritesOnCustomADT runs the full pipeline — training,
// cached conditions, the parallel runtime — over the custom schema: tasks
// writing equal route entries commute; different costs conflict and
// serialize.
func TestEndToEndEqualWritesOnCustomADT(t *testing.T) {
	newState := func() *state.State {
		st := state.New()
		if _, err := New(st, "routes", routeSpec()); err != nil {
			t.Fatal(err)
		}
		return st
	}
	mkTask := func(cost string) adt.Task {
		return func(ex adt.Executor) error {
			obj := Object{L: "routes", S: routeSpec()}
			if err := obj.Put(ex, route("a", "b", cost, "r1")); err != nil {
				return err
			}
			_, _, err := obj.Get(ex, key("a", "b"))
			return err
		}
	}
	var tasks []adt.Task
	for i := 0; i < 8; i++ {
		tasks = append(tasks, mkTask("3"))
	}
	engine := core.NewEngine(core.Options{})
	if err := engine.Train(newState(), tasks[:2]); err != nil {
		t.Fatal(err)
	}
	final, stats, err := stm.Run(stm.Config{Threads: 4, Detector: engine.Detector()}, newState(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retries != 0 {
		t.Fatalf("equal-writes custom ADT must not retry, got %d", stats.Retries)
	}
	v, _ := final.Get("routes")
	if v.(state.Rel).R.Len() != 1 {
		t.Fatalf("routes = %v", v)
	}
	// Different costs must be detected as a genuine conflict (and still
	// serialize correctly under the write-set baseline semantics).
	mixed := []adt.Task{mkTask("3"), mkTask("9")}
	seq, err := stm.RunSequential(newState(), mixed)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := stm.Run(stm.Config{Threads: 2, Ordered: true, Detector: conflict.NewWriteSet()}, newState(), mixed)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(seq) {
		t.Fatalf("ordered mixed run diverged")
	}
}

func TestParseTupleRoundTrip(t *testing.T) {
	obj, ex := newObj(t)
	_ = obj.Put(ex, route("x", "y", "7", "gw"))
	got, ok, err := obj.Get(ex, key("x", "y"))
	if err != nil || !ok {
		t.Fatal(err)
	}
	for c, v := range map[string]string{"src": "x", "dst": "y", "cost": "7", "via": "gw"} {
		if got[c] != v {
			t.Errorf("%s = %q, want %q", c, got[c], v)
		}
	}
	if tp := parseTuple(""); len(tp) != 0 {
		t.Errorf("empty parse = %v", tp)
	}
}

func TestNewRejectsInvalidSpec(t *testing.T) {
	st := state.New()
	if _, err := New(st, "x", Spec{}); err == nil {
		t.Fatalf("invalid spec must be rejected")
	}
}
