// Package relspec implements the user-specification input of JANUS §6.1:
// a mapping from a custom data structure to its relational representation.
// The semantic state of the structure is a relation over user-declared
// columns with at most one functional dependency whose domain and range
// partition the columns, and the structure's operations are expressed via
// the primitive relational operations of Table 2.
//
// The built-in handles of internal/adt (BitSet, KVMap, IntArray, Canvas)
// are fixed single-key/single-value instances of this scheme; relspec
// generalizes it to arbitrary schemas — e.g. a routing table keyed by
// (src, dst) with a cost column — while producing operations with the
// same symbolic kinds, so the hindsight engine's theories, abstraction,
// and cache apply unchanged.
package relspec

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/adt"
	"repro/internal/oplog"
	"repro/internal/relation"
	"repro/internal/state"
)

// Spec declares a custom ADT's relational representation.
type Spec struct {
	// Columns are all the relation's columns.
	Columns []string
	// Domain lists the functional dependency's domain columns (the
	// "location" part, §6.1); the remaining columns form its range.
	// Empty means no FD: tuples match only when fully equal.
	Domain []string
}

// Validate checks the §6.1 well-formedness requirements.
func (s Spec) Validate() error {
	if len(s.Columns) == 0 {
		return fmt.Errorf("relspec: a spec needs at least one column")
	}
	seen := map[string]bool{}
	for _, c := range s.Columns {
		if c == "" {
			return fmt.Errorf("relspec: empty column name")
		}
		if seen[c] {
			return fmt.Errorf("relspec: duplicate column %q", c)
		}
		seen[c] = true
	}
	for _, d := range s.Domain {
		if !seen[d] {
			return fmt.Errorf("relspec: domain column %q not in schema", d)
		}
	}
	if len(s.Domain) == len(s.Columns) {
		return fmt.Errorf("relspec: the FD range must be non-empty (drop the FD instead)")
	}
	return nil
}

// fd builds the relation.FD, or nil when the spec declares none.
func (s Spec) fd() *relation.FD {
	if len(s.Domain) == 0 {
		return nil
	}
	dom := map[string]bool{}
	for _, d := range s.Domain {
		dom[d] = true
	}
	var rng []string
	for _, c := range s.Columns {
		if !dom[c] {
			rng = append(rng, c)
		}
	}
	return &relation.FD{Domain: append([]string(nil), s.Domain...), Range: rng}
}

// NewValue builds an empty relational state value for the spec.
func (s Spec) NewValue() (state.Value, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return state.Rel{R: relation.New(s.Columns, s.fd())}, nil
}

// domainCols returns the matching columns, sorted.
func (s Spec) domainCols() []string {
	cols := s.Domain
	if len(cols) == 0 {
		cols = s.Columns
	}
	sorted := append([]string(nil), cols...)
	sort.Strings(sorted)
	return sorted
}

// keyOf renders a tuple's domain valuation as the projection key.
func (s Spec) keyOf(t relation.Tuple) string { return t.Key(s.domainCols()) }

// rangeArg renders a tuple's range valuation — the generalizable argument
// of a put (the value "stored" at the key).
func (s Spec) rangeArg(t relation.Tuple) string {
	dom := map[string]bool{}
	for _, d := range s.Domain {
		dom[d] = true
	}
	var parts []string
	for _, c := range t.Cols() {
		if !dom[c] {
			parts = append(parts, c+"="+t[c])
		}
	}
	return strings.Join(parts, ",")
}

// Object is a handle to a shared custom ADT instance.
type Object struct {
	L state.Loc
	S Spec
}

// New binds loc in st to an empty instance of the spec and returns its
// handle.
func New(st *state.State, loc state.Loc, spec Spec) (Object, error) {
	v, err := spec.NewValue()
	if err != nil {
		return Object{}, err
	}
	st.Set(loc, v)
	return Object{L: loc, S: spec}, nil
}

func (o Object) rel(st *state.State) (*relation.Relation, error) {
	v, ok := st.Get(o.L)
	if !ok {
		return nil, fmt.Errorf("relspec: unbound location %q", o.L)
	}
	rv, ok := v.(state.Rel)
	if !ok {
		return nil, fmt.Errorf("relspec: location %q holds %T, want Rel", o.L, v)
	}
	return rv.R, nil
}

// checkTuple validates a full tuple against the schema.
func (o Object) checkTuple(t relation.Tuple) error {
	if len(t) != len(o.S.Columns) {
		return fmt.Errorf("relspec: tuple %v does not match schema %v", t, o.S.Columns)
	}
	for _, c := range o.S.Columns {
		if _, ok := t[c]; !ok {
			return fmt.Errorf("relspec: tuple %v missing column %q", t, c)
		}
	}
	return nil
}

// checkKey validates a domain valuation.
func (o Object) checkKey(key relation.Tuple) error {
	cols := o.S.Domain
	if len(cols) == 0 {
		cols = o.S.Columns
	}
	if len(key) != len(cols) {
		return fmt.Errorf("relspec: key %v does not match domain %v", key, cols)
	}
	for _, c := range cols {
		if _, ok := key[c]; !ok {
			return fmt.Errorf("relspec: key %v missing domain column %q", key, c)
		}
	}
	return nil
}

// Put inserts the tuple (Table 2 insert: evicts the matching tuple).
func (o Object) Put(ex adt.Executor, t relation.Tuple) error {
	if err := o.checkTuple(t); err != nil {
		return err
	}
	_, err := ex.Exec(putOp{obj: o, t: t.Clone()})
	return err
}

// Delete removes the tuple(s) matching the key.
func (o Object) Delete(ex adt.Executor, key relation.Tuple) error {
	if err := o.checkKey(key); err != nil {
		return err
	}
	_, err := ex.Exec(deleteOp{obj: o, key: key.Clone()})
	return err
}

// Get reads the tuple bound at key.
func (o Object) Get(ex adt.Executor, key relation.Tuple) (relation.Tuple, bool, error) {
	if err := o.checkKey(key); err != nil {
		return nil, false, err
	}
	v, err := ex.Exec(getOp{obj: o, key: key.Clone()})
	if err != nil {
		return nil, false, err
	}
	s := string(v.(state.Str))
	if s == adt.AbsentVal {
		return nil, false, nil
	}
	return parseTuple(s), true, nil
}

// Has reports whether any tuple matches the key.
func (o Object) Has(ex adt.Executor, key relation.Tuple) (bool, error) {
	if err := o.checkKey(key); err != nil {
		return false, err
	}
	v, err := ex.Exec(hasOp{obj: o, key: key.Clone()})
	if err != nil {
		return false, err
	}
	return bool(v.(state.Bool)), nil
}

// Clear removes every tuple.
func (o Object) Clear(ex adt.Executor) error {
	_, err := ex.Exec(clearOp{obj: o})
	return err
}

// parseTuple reverses Tuple.Key rendering ("c1=v1,c2=v2").
func parseTuple(s string) relation.Tuple {
	t := relation.Tuple{}
	if s == "" {
		return t
	}
	for _, part := range strings.Split(s, ",") {
		if i := strings.IndexByte(part, '='); i >= 0 {
			t[part[:i]] = part[i+1:]
		}
	}
	return t
}

// --- Operations ---
//
// The ops reuse the adt.KindRel* symbolic kinds, so the effect theories,
// Kleene-cross abstraction, and cached conditions treat custom ADTs
// exactly like the built-ins.

func (o Object) ploc(key string) oplog.PLoc { return oplog.MakePLoc(o.L, key) }

type putOp struct {
	obj Object
	t   relation.Tuple
}

func (p putOp) Apply(st *state.State) (state.Value, error) {
	r, err := p.obj.rel(st)
	if err != nil {
		return nil, err
	}
	r.Insert(p.t)
	return nil, nil
}

func (p putOp) Accesses(*state.State) []oplog.Access {
	return []oplog.Access{{P: p.obj.ploc(p.obj.S.keyOf(p.t)), Write: true}}
}

func (p putOp) Sym() oplog.Sym {
	return oplog.Sym{Kind: adt.KindRelPut, Arg: p.obj.S.rangeArg(p.t)}
}

func (p putOp) IsRead() bool { return false }

func (p putOp) String() string { return fmt.Sprintf("%s.put%s", p.obj.L, p.t) }

type deleteOp struct {
	obj Object
	key relation.Tuple
}

func (d deleteOp) matching(st *state.State) ([]relation.Tuple, *relation.Relation, error) {
	r, err := d.obj.rel(st)
	if err != nil {
		return nil, nil, err
	}
	probe := d.key.Clone()
	for _, c := range d.obj.S.Columns {
		if _, ok := probe[c]; !ok {
			probe[c] = ""
		}
	}
	return r.Matching(probe), r, nil
}

func (d deleteOp) Apply(st *state.State) (state.Value, error) {
	m, r, err := d.matching(st)
	if err != nil {
		return nil, err
	}
	for _, t := range m {
		r.Remove(t)
	}
	return nil, nil
}

func (d deleteOp) Accesses(st *state.State) []oplog.Access {
	p := d.obj.ploc(d.key.Key(d.obj.S.domainCols()))
	if m, _, err := d.matching(st); err == nil && len(m) == 0 {
		return []oplog.Access{{P: p, Read: true}} // observes absence (§6.2)
	}
	return []oplog.Access{{P: p, Write: true}}
}

func (d deleteOp) Sym() oplog.Sym { return oplog.Sym{Kind: adt.KindRelRemove} }

func (d deleteOp) IsRead() bool { return false }

func (d deleteOp) String() string { return fmt.Sprintf("%s.delete%s", d.obj.L, d.key) }

type getOp struct {
	obj Object
	key relation.Tuple
}

func (g getOp) Apply(st *state.State) (state.Value, error) {
	r, err := g.obj.rel(st)
	if err != nil {
		return nil, err
	}
	probe := g.key.Clone()
	for _, c := range g.obj.S.Columns {
		if _, ok := probe[c]; !ok {
			probe[c] = ""
		}
	}
	m := r.Matching(probe)
	if len(m) == 0 {
		return state.Str(adt.AbsentVal), nil
	}
	return state.Str(m[0].Key(m[0].Cols())), nil
}

func (g getOp) Accesses(*state.State) []oplog.Access {
	return []oplog.Access{{P: g.obj.ploc(g.key.Key(g.obj.S.domainCols())), Read: true}}
}

func (g getOp) Sym() oplog.Sym { return oplog.Sym{Kind: adt.KindRelGet} }

func (g getOp) IsRead() bool { return true }

func (g getOp) String() string { return fmt.Sprintf("%s.get%s", g.obj.L, g.key) }

type hasOp struct {
	obj Object
	key relation.Tuple
}

func (h hasOp) Apply(st *state.State) (state.Value, error) {
	r, err := h.obj.rel(st)
	if err != nil {
		return nil, err
	}
	probe := h.key.Clone()
	for _, c := range h.obj.S.Columns {
		if _, ok := probe[c]; !ok {
			probe[c] = ""
		}
	}
	return state.Bool(len(r.Matching(probe)) > 0), nil
}

func (h hasOp) Accesses(*state.State) []oplog.Access {
	return []oplog.Access{{P: h.obj.ploc(h.key.Key(h.obj.S.domainCols())), Read: true}}
}

func (h hasOp) Sym() oplog.Sym { return oplog.Sym{Kind: adt.KindRelHas} }

func (h hasOp) IsRead() bool { return true }

func (h hasOp) String() string { return fmt.Sprintf("%s.has%s", h.obj.L, h.key) }

type clearOp struct{ obj Object }

func (c clearOp) Apply(st *state.State) (state.Value, error) {
	r, err := c.obj.rel(st)
	if err != nil {
		return nil, err
	}
	for _, t := range r.Tuples() {
		r.Remove(t)
	}
	return nil, nil
}

func (c clearOp) Accesses(st *state.State) []oplog.Access {
	r, err := c.obj.rel(st)
	if err != nil {
		return nil
	}
	var out []oplog.Access
	for _, t := range r.Tuples() {
		out = append(out, oplog.Access{P: c.obj.ploc(c.obj.S.keyOf(t)), Write: true})
	}
	return out
}

func (c clearOp) Sym() oplog.Sym { return oplog.Sym{Kind: adt.KindRelClear} }

func (c clearOp) IsRead() bool { return false }

func (c clearOp) String() string { return fmt.Sprintf("%s.clear()", c.obj.L) }
