// Package affine analyzes the composite effect of single-location numeric
// operation sequences as affine functions, giving JANUS a decidable theory
// for the commutativity judgments of §5.
//
// A sequence over one integer location composed of adds and stores denotes
// the function f(x) = A·x + B with A ∈ {0, 1}: adds keep A = 1 and
// accumulate into B; a store resets A = 0 and pins B. Loads denote the
// value of the running prefix. On this representation both checks of the
// CONFLICT algorithm (Figure 8) are closed-form:
//
//	COMMUTE:  f∘g = g∘f  ⇔  A1·B2 + B1 = A2·B1 + B2
//	SAMEREAD: every load of s1 is order-insensitive to s2
//	          ⇔ each load's prefix has A = 0, or s2 is the identity
//
// The theory directly captures the paper's patterns: reduction (add-only
// pairs always commute), identity (net-zero sequences commute with
// everything), equal-writes (store/store pairs commute iff the stored
// values agree), and shared-as-local (loads preceded by own stores are
// order-insensitive).
package affine

import (
	"fmt"
	"strconv"

	"repro/internal/adt"
	"repro/internal/oplog"
)

// TokenKind classifies one numeric-sequence operation.
type TokenKind int

// Token kinds.
const (
	Add TokenKind = iota
	Store
	Load
)

// Token is one operation of a numeric sequence.
type Token struct {
	Kind TokenKind
	Arg  int64 // addend for Add, stored value for Store; unused for Load
}

// String renders the token.
func (t Token) String() string {
	switch t.Kind {
	case Add:
		return fmt.Sprintf("add(%d)", t.Arg)
	case Store:
		return fmt.Sprintf("store(%d)", t.Arg)
	default:
		return "load"
	}
}

// Effect is the affine function x ↦ A·x + B with A encoded as a boolean
// (true: coefficient 1, the input still flows through).
type Effect struct {
	A bool
	B int64
}

// Identity is the effect of the empty sequence.
var Identity = Effect{A: true, B: 0}

// IsIdentity reports whether the effect is x ↦ x.
func (e Effect) IsIdentity() bool { return e.A && e.B == 0 }

// Apply evaluates the effect at x.
func (e Effect) Apply(x int64) int64 {
	if e.A {
		return x + e.B
	}
	return e.B
}

// Then returns the composition g∘e: first e, then g.
func (e Effect) Then(g Effect) Effect {
	if g.A {
		return Effect{A: e.A, B: e.B + g.B}
	}
	return g
}

// String renders the effect.
func (e Effect) String() string {
	if e.A {
		return fmt.Sprintf("x+%d", e.B)
	}
	return fmt.Sprintf("const %d", e.B)
}

// Analysis is the full decomposition of a sequence: its composite effect
// and the prefix effect observed by each load.
type Analysis struct {
	Effect Effect
	Reads  []Effect // prefix effect immediately before each load
}

// Analyze folds the token sequence into its analysis.
func Analyze(tokens []Token) Analysis {
	eff := Identity
	var reads []Effect
	for _, t := range tokens {
		switch t.Kind {
		case Add:
			eff = eff.Then(Effect{A: true, B: t.Arg})
		case Store:
			eff = Effect{A: false, B: t.Arg}
		case Load:
			reads = append(reads, eff)
		}
	}
	return Analysis{Effect: eff, Reads: reads}
}

// Commute reports whether the two composite effects commute as functions:
// f∘g = g∘f on every input.
func Commute(f, g Effect) bool {
	// f(g(x)) = fg.B (+x if both A); compare the two compositions.
	fg := g.Then(f)
	gf := f.Then(g)
	return fg.A == gf.A && fg.B == gf.B
}

// SameRead reports whether every load in a is unaffected by executing the
// other sequence (with composite effect g) before a's sequence.
func SameRead(a Analysis, g Effect) bool {
	if g.IsIdentity() {
		return true
	}
	for _, prefix := range a.Reads {
		if prefix.A {
			// The load still sees the entry value; g changes it.
			return false
		}
	}
	return true
}

// PairConflicts runs the full per-location CONFLICT judgment of Figure 8
// on two analyzed sequences: a conflict exists unless both SAMEREAD checks
// and the COMMUTE check pass.
func PairConflicts(a, b Analysis) bool {
	if !SameRead(a, b.Effect) || !SameRead(b, a.Effect) {
		return true
	}
	return !Commute(a.Effect, b.Effect)
}

// Tokenize converts a per-location symbolic sequence into affine tokens.
// It returns ok = false when the sequence contains an operation outside
// the numeric theory (the caller then falls back to another theory or to
// write-set detection).
func Tokenize(syms []oplog.Sym) ([]Token, bool) {
	out := make([]Token, 0, len(syms))
	for _, s := range syms {
		switch s.Kind {
		case adt.KindNumAdd:
			n, err := strconv.ParseInt(s.Arg, 10, 64)
			if err != nil {
				return nil, false
			}
			out = append(out, Token{Kind: Add, Arg: n})
		case adt.KindNumStore:
			n, err := strconv.ParseInt(s.Arg, 10, 64)
			if err != nil {
				return nil, false
			}
			out = append(out, Token{Kind: Store, Arg: n})
		case adt.KindNumLoad:
			out = append(out, Token{Kind: Load})
		default:
			return nil, false
		}
	}
	return out, true
}

// AnalyzeSyms is Tokenize followed by Analyze.
func AnalyzeSyms(syms []oplog.Sym) (Analysis, bool) {
	toks, ok := Tokenize(syms)
	if !ok {
		return Analysis{}, false
	}
	return Analyze(toks), true
}
