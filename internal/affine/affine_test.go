package affine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/adt"
	"repro/internal/oplog"
)

func TestEffectThenApply(t *testing.T) {
	add3 := Effect{A: true, B: 3}
	store7 := Effect{A: false, B: 7}
	cases := []struct {
		name string
		e    Effect
		x    int64
		want int64
	}{
		{"identity", Identity, 5, 5},
		{"add", add3, 5, 8},
		{"store", store7, 5, 7},
		{"add then store", add3.Then(store7), 5, 7},
		{"store then add", store7.Then(add3), 5, 10},
		{"add then add", add3.Then(add3), 5, 11},
	}
	for _, c := range cases {
		if got := c.e.Apply(c.x); got != c.want {
			t.Errorf("%s: Apply(%d) = %d, want %d", c.name, c.x, got, c.want)
		}
	}
	if !Identity.IsIdentity() || add3.IsIdentity() || store7.IsIdentity() {
		t.Errorf("IsIdentity misclassifies")
	}
}

func TestAnalyze(t *testing.T) {
	// load; add 2; load; store 9; load; add 1
	a := Analyze([]Token{{Kind: Load}, {Kind: Add, Arg: 2}, {Kind: Load}, {Kind: Store, Arg: 9}, {Kind: Load}, {Kind: Add, Arg: 1}})
	if a.Effect.A || a.Effect.B != 10 {
		t.Fatalf("effect = %v, want const 10", a.Effect)
	}
	if len(a.Reads) != 3 {
		t.Fatalf("reads = %d, want 3", len(a.Reads))
	}
	if !a.Reads[0].IsIdentity() {
		t.Errorf("first read prefix = %v, want identity", a.Reads[0])
	}
	if a.Reads[1].A != true || a.Reads[1].B != 2 {
		t.Errorf("second read prefix = %v, want x+2", a.Reads[1])
	}
	if a.Reads[2].A || a.Reads[2].B != 9 {
		t.Errorf("third read prefix = %v, want const 9", a.Reads[2])
	}
}

// TestCommuteAgainstSemantics checks the closed-form commutativity test
// against direct evaluation over sampled inputs.
func TestCommuteAgainstSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	effects := func() Effect {
		return Effect{A: rng.Intn(2) == 0, B: int64(rng.Intn(7) - 3)}
	}
	for i := 0; i < 2000; i++ {
		f, g := effects(), effects()
		want := true
		for x := int64(-10); x <= 10; x++ {
			if f.Apply(g.Apply(x)) != g.Apply(f.Apply(x)) {
				want = false
				break
			}
		}
		if got := Commute(f, g); got != want {
			t.Fatalf("Commute(%v, %v) = %v, semantics say %v", f, g, got, want)
		}
	}
}

func TestCommutePatterns(t *testing.T) {
	addOnly := Analyze([]Token{{Kind: Add, Arg: 5}, {Kind: Add, Arg: -2}})
	identity := Analyze([]Token{{Kind: Add, Arg: 4}, {Kind: Add, Arg: -4}})
	store3 := Analyze([]Token{{Kind: Store, Arg: 3}})
	store3b := Analyze([]Token{{Kind: Store, Arg: 3}})
	store4 := Analyze([]Token{{Kind: Store, Arg: 4}})

	if !Commute(addOnly.Effect, addOnly.Effect) {
		t.Errorf("reduction: add-only pairs must commute")
	}
	if !Commute(identity.Effect, store3.Effect) {
		t.Errorf("identity must commute with store")
	}
	if Commute(addOnly.Effect, store3.Effect) {
		t.Errorf("net-nonzero add must not commute with store")
	}
	if !Commute(store3.Effect, store3b.Effect) {
		t.Errorf("equal-writes: same stores must commute")
	}
	if Commute(store3.Effect, store4.Effect) {
		t.Errorf("different stores must not commute")
	}
}

func TestSameRead(t *testing.T) {
	// A load at the start (prefix identity) is disturbed by any non-identity g.
	spy := Analyze([]Token{{Kind: Load}, {Kind: Add, Arg: 1}})
	if SameRead(spy, Effect{A: true, B: 2}) {
		t.Errorf("entry-value load must be disturbed by add")
	}
	if !SameRead(spy, Identity) {
		t.Errorf("identity concurrent effect never disturbs reads")
	}
	// Shared-as-local: load after own store has A=0 prefix.
	local := Analyze([]Token{{Kind: Store, Arg: 5}, {Kind: Load}})
	if !SameRead(local, Effect{A: false, B: 99}) {
		t.Errorf("load after own store must be order-insensitive")
	}
}

// TestPairConflictsAgainstConcrete validates the full CONFLICT judgment
// against brute-force two-order execution: evaluate both interleavings
// a·b and b·a on sampled entry values, compare final value and per-load
// observations.
func TestPairConflictsAgainstConcrete(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	genSeq := func() []Token {
		n := 1 + rng.Intn(4)
		out := make([]Token, n)
		for i := range out {
			switch rng.Intn(3) {
			case 0:
				out[i] = Token{Kind: Add, Arg: int64(rng.Intn(5) - 2)}
			case 1:
				out[i] = Token{Kind: Store, Arg: int64(rng.Intn(4))}
			default:
				out[i] = Token{Kind: Load}
			}
		}
		return out
	}
	run := func(seq []Token, x int64) (int64, []int64) {
		var obs []int64
		for _, tk := range seq {
			switch tk.Kind {
			case Add:
				x += tk.Arg
			case Store:
				x = tk.Arg
			case Load:
				obs = append(obs, x)
			}
		}
		return x, obs
	}
	for iter := 0; iter < 3000; iter++ {
		s1, s2 := genSeq(), genSeq()
		a1, a2 := Analyze(s1), Analyze(s2)
		got := PairConflicts(a1, a2)
		// Semantics: no conflict iff for all entry x, (i) final value of
		// s1·s2 equals s2·s1 and (ii) each sequence's loads observe the
		// same values whether or not the other ran first.
		conflictSem := false
		for x := int64(-6); x <= 6 && !conflictSem; x++ {
			m1, _ := run(s1, x)
			f12, obs2after := run(s2, m1)
			m2, _ := run(s2, x)
			f21, obs1after := run(s1, m2)
			if f12 != f21 {
				conflictSem = true
				break
			}
			_, obs1alone := run(s1, x)
			_, obs2alone := run(s2, x)
			if !equalInts(obs1alone, obs1after) || !equalInts(obs2alone, obs2after) {
				conflictSem = true
			}
		}
		// The analysis must never claim "no conflict" when semantics show
		// one (soundness). It may be conservative the other way only via
		// SameRead's identity shortcut — but the closed forms are exact,
		// so demand equality.
		if got != conflictSem {
			t.Fatalf("iter %d: PairConflicts=%v, semantics=%v\ns1=%v\ns2=%v", iter, got, conflictSem, s1, s2)
		}
	}
}

func equalInts(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTokenize(t *testing.T) {
	syms := []oplog.Sym{
		{Kind: adt.KindNumAdd, Arg: "3"},
		{Kind: adt.KindNumStore, Arg: "-1"},
		{Kind: adt.KindNumLoad},
	}
	toks, ok := Tokenize(syms)
	if !ok || len(toks) != 3 {
		t.Fatalf("Tokenize failed: %v %v", toks, ok)
	}
	if toks[0] != (Token{Kind: Add, Arg: 3}) || toks[1] != (Token{Kind: Store, Arg: -1}) || toks[2] != (Token{Kind: Load}) {
		t.Errorf("tokens = %v", toks)
	}
	if _, ok := Tokenize([]oplog.Sym{{Kind: adt.KindListPush, Arg: "1"}}); ok {
		t.Errorf("non-numeric kind must be rejected")
	}
	if _, ok := Tokenize([]oplog.Sym{{Kind: adt.KindNumAdd, Arg: "zzz"}}); ok {
		t.Errorf("unparsable arg must be rejected")
	}
	if a, ok := AnalyzeSyms(syms); !ok || a.Effect.A || a.Effect.B != -1 {
		t.Errorf("AnalyzeSyms = %v %v", a, ok)
	}
	if _, ok := AnalyzeSyms([]oplog.Sym{{Kind: "weird"}}); ok {
		t.Errorf("AnalyzeSyms must reject unknown kinds")
	}
}

func TestThenAssociative(t *testing.T) {
	err := quick.Check(func(a1, a2, a3 bool, b1, b2, b3 int8) bool {
		e1 := Effect{A: a1, B: int64(b1)}
		e2 := Effect{A: a2, B: int64(b2)}
		e3 := Effect{A: a3, B: int64(b3)}
		l := e1.Then(e2).Then(e3)
		r := e1.Then(e2.Then(e3))
		return l == r
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

func TestTokenString(t *testing.T) {
	if (Token{Kind: Add, Arg: 2}).String() != "add(2)" ||
		(Token{Kind: Store, Arg: 3}).String() != "store(3)" ||
		(Token{Kind: Load}).String() != "load" {
		t.Errorf("token strings wrong")
	}
	if (Effect{A: true, B: 2}).String() != "x+2" || (Effect{A: false, B: 3}).String() != "const 3" {
		t.Errorf("effect strings wrong")
	}
}
