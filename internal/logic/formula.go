// Package logic implements the propositional formula language of JANUS
// Table 1, used to represent the content of relations (Table 4) and to pose
// equivalence queries to the SAT solver (§6.2).
//
// The grammar of the paper is
//
//	f := true | false | c = v | ¬f | f ∧ f | f ∨ f
//
// Atoms are column-equals-value propositions. The package provides
// construction with on-the-fly simplification, evaluation under an
// assignment, structural utilities, and Tseitin conversion to CNF for the
// solver in internal/sat.
package logic

import (
	"fmt"
	"sort"
	"strings"
)

// Formula is a propositional formula over column=value atoms.
// Formulas are immutable; all constructors may simplify.
type Formula interface {
	// Eval evaluates the formula under the given truth assignment for
	// atoms. Atoms absent from the assignment default to false.
	Eval(asn map[Atom]bool) bool
	// Vars adds every atom occurring in the formula to set.
	Vars(set map[Atom]struct{})
	// precedence guides parenthesization in String.
	precedence() int
	fmt.Stringer
}

// Atom is the proposition "column Col has value Val" (c = v in Table 1).
// Two atoms are the same proposition iff they are equal as values.
type Atom struct {
	Col string
	Val string
}

// Eval implements Formula.
func (a Atom) Eval(asn map[Atom]bool) bool { return asn[a] }

// Vars implements Formula.
func (a Atom) Vars(set map[Atom]struct{}) { set[a] = struct{}{} }

func (a Atom) precedence() int { return 4 }

// String implements Formula.
func (a Atom) String() string { return a.Col + "=" + a.Val }

type constant bool

// True and False are the constant formulas of Table 1.
var (
	True  Formula = constant(true)
	False Formula = constant(false)
)

func (c constant) Eval(map[Atom]bool) bool { return bool(c) }
func (c constant) Vars(map[Atom]struct{})  {}
func (c constant) precedence() int         { return 4 }
func (c constant) String() string {
	if c {
		return "true"
	}
	return "false"
}

// NotF is the negation ¬F.
type NotF struct{ F Formula }

// Eval implements Formula.
func (n NotF) Eval(asn map[Atom]bool) bool { return !n.F.Eval(asn) }

// Vars implements Formula.
func (n NotF) Vars(set map[Atom]struct{}) { n.F.Vars(set) }

func (n NotF) precedence() int { return 3 }

// String implements Formula.
func (n NotF) String() string { return "¬" + paren(n.F, 3) }

// AndF is the n-ary conjunction of Fs (the binary ∧ of Table 1 flattened).
type AndF struct{ Fs []Formula }

// Eval implements Formula.
func (a AndF) Eval(asn map[Atom]bool) bool {
	for _, f := range a.Fs {
		if !f.Eval(asn) {
			return false
		}
	}
	return true
}

// Vars implements Formula.
func (a AndF) Vars(set map[Atom]struct{}) {
	for _, f := range a.Fs {
		f.Vars(set)
	}
}

func (a AndF) precedence() int { return 2 }

// String implements Formula.
func (a AndF) String() string { return joinOperands(a.Fs, " ∧ ", 2) }

// OrF is the n-ary disjunction of Fs.
type OrF struct{ Fs []Formula }

// Eval implements Formula.
func (o OrF) Eval(asn map[Atom]bool) bool {
	for _, f := range o.Fs {
		if f.Eval(asn) {
			return true
		}
	}
	return false
}

// Vars implements Formula.
func (o OrF) Vars(set map[Atom]struct{}) {
	for _, f := range o.Fs {
		f.Vars(set)
	}
}

func (o OrF) precedence() int { return 1 }

// String implements Formula.
func (o OrF) String() string { return joinOperands(o.Fs, " ∨ ", 1) }

func paren(f Formula, ctx int) string {
	s := f.String()
	if f.precedence() < ctx {
		return "(" + s + ")"
	}
	return s
}

func joinOperands(fs []Formula, sep string, prec int) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = paren(f, prec+1)
	}
	return strings.Join(parts, sep)
}

// Not returns ¬f, simplifying constants and double negation.
func Not(f Formula) Formula {
	switch g := f.(type) {
	case constant:
		return constant(!g)
	case NotF:
		return g.F
	}
	return NotF{F: f}
}

// And returns the conjunction of fs with constant folding and flattening.
func And(fs ...Formula) Formula {
	var out []Formula
	for _, f := range fs {
		switch g := f.(type) {
		case constant:
			if !bool(g) {
				return False
			}
		case AndF:
			out = append(out, g.Fs...)
		default:
			out = append(out, f)
		}
	}
	switch len(out) {
	case 0:
		return True
	case 1:
		return out[0]
	}
	return AndF{Fs: out}
}

// Or returns the disjunction of fs with constant folding and flattening.
func Or(fs ...Formula) Formula {
	var out []Formula
	for _, f := range fs {
		switch g := f.(type) {
		case constant:
			if bool(g) {
				return True
			}
		case OrF:
			out = append(out, g.Fs...)
		default:
			out = append(out, f)
		}
	}
	switch len(out) {
	case 0:
		return False
	case 1:
		return out[0]
	}
	return OrF{Fs: out}
}

// Iff returns f ↔ g expressed in the base grammar:
// (f ∧ g) ∨ (¬f ∧ ¬g).
func Iff(f, g Formula) Formula {
	return Or(And(f, g), And(Not(f), Not(g)))
}

// Xor returns f ⊕ g = ¬(f ↔ g).
func Xor(f, g Formula) Formula { return Not(Iff(f, g)) }

// Implies returns f → g = ¬f ∨ g.
func Implies(f, g Formula) Formula { return Or(Not(f), g) }

// Atoms returns the atoms of f in a deterministic (sorted) order.
func Atoms(f Formula) []Atom {
	set := make(map[Atom]struct{})
	f.Vars(set)
	out := make([]Atom, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		return out[i].Val < out[j].Val
	})
	return out
}

// Substitute replaces every occurrence of atom a in f by the formula g.
func Substitute(f Formula, a Atom, g Formula) Formula {
	switch h := f.(type) {
	case constant:
		return h
	case Atom:
		if h == a {
			return g
		}
		return h
	case NotF:
		return Not(Substitute(h.F, a, g))
	case AndF:
		fs := make([]Formula, len(h.Fs))
		for i, sub := range h.Fs {
			fs[i] = Substitute(sub, a, g)
		}
		return And(fs...)
	case OrF:
		fs := make([]Formula, len(h.Fs))
		for i, sub := range h.Fs {
			fs[i] = Substitute(sub, a, g)
		}
		return Or(fs...)
	}
	panic(fmt.Sprintf("logic: unknown formula type %T", f))
}

// TautologyBrute decides validity of f by enumerating all assignments.
// It is exponential in the number of atoms and intended for tests and for
// formulas known to be tiny; the production path uses internal/sat.
func TautologyBrute(f Formula) bool {
	atoms := Atoms(f)
	if len(atoms) > 20 {
		panic("logic: TautologyBrute called with too many atoms")
	}
	asn := make(map[Atom]bool, len(atoms))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(atoms) {
			return f.Eval(asn)
		}
		asn[atoms[i]] = false
		if !rec(i + 1) {
			return false
		}
		asn[atoms[i]] = true
		return rec(i + 1)
	}
	return rec(0)
}

// EquivalentBrute decides f ↔ g by enumeration (tests only).
func EquivalentBrute(f, g Formula) bool { return TautologyBrute(Iff(f, g)) }
