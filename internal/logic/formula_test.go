package logic

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

var (
	p = Atom{Col: "p", Val: "1"}
	q = Atom{Col: "q", Val: "1"}
	r = Atom{Col: "r", Val: "1"}
)

func TestConstructorsSimplify(t *testing.T) {
	cases := []struct {
		got, want Formula
	}{
		{And(), True},
		{Or(), False},
		{And(True, p), p},
		{And(False, p), False},
		{Or(True, p), True},
		{Or(False, p), p},
		{Not(True), False},
		{Not(False), True},
		{Not(Not(p)), p},
		{And(p), p},
		{Or(q), q},
	}
	for i, c := range cases {
		if !reflect.DeepEqual(c.got, c.want) {
			t.Errorf("case %d: got %v, want %v", i, c.got, c.want)
		}
	}
}

func TestAndOrFlatten(t *testing.T) {
	f := And(And(p, q), r)
	af, ok := f.(AndF)
	if !ok || len(af.Fs) != 3 {
		t.Fatalf("nested And not flattened: %v", f)
	}
	g := Or(Or(p, q), r)
	of, ok := g.(OrF)
	if !ok || len(of.Fs) != 3 {
		t.Fatalf("nested Or not flattened: %v", g)
	}
}

func TestEval(t *testing.T) {
	asn := map[Atom]bool{p: true, q: false}
	cases := []struct {
		f    Formula
		want bool
	}{
		{True, true},
		{False, false},
		{p, true},
		{q, false},
		{r, false}, // absent atoms default to false
		{Not(q), true},
		{And(p, Not(q)), true},
		{Or(q, r), false},
		{Implies(q, r), true},
		{Implies(p, q), false},
		{Iff(p, Not(q)), true},
		{Xor(p, q), true},
	}
	for i, c := range cases {
		if got := c.f.Eval(asn); got != c.want {
			t.Errorf("case %d (%v): got %v, want %v", i, c.f, got, c.want)
		}
	}
}

func TestAtomsSortedAndDeduped(t *testing.T) {
	f := And(q, p, Not(p), Or(p, q))
	got := Atoms(f)
	want := []Atom{p, q}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Atoms = %v, want %v", got, want)
	}
}

func TestSubstitute(t *testing.T) {
	f := And(p, Or(q, Not(p)))
	g := Substitute(f, p, True)
	// And(True, Or(q, Not(True))) = Or(q, False) = q
	if !reflect.DeepEqual(g, q) {
		t.Errorf("Substitute = %v, want %v", g, q)
	}
	h := Substitute(f, Atom{Col: "absent", Val: "0"}, False)
	if !EquivalentBrute(h, f) {
		t.Errorf("substituting an absent atom changed the formula")
	}
}

func TestString(t *testing.T) {
	f := Or(And(p, Not(q)), r)
	want := "p=1 ∧ ¬q=1 ∨ r=1"
	if f.String() != want {
		t.Errorf("String = %q, want %q", f.String(), want)
	}
	g := And(Or(p, q), r)
	want = "(p=1 ∨ q=1) ∧ r=1"
	if g.String() != want {
		t.Errorf("String = %q, want %q", g.String(), want)
	}
}

func TestTautologyBrute(t *testing.T) {
	if !TautologyBrute(Or(p, Not(p))) {
		t.Errorf("p ∨ ¬p must be valid")
	}
	if TautologyBrute(p) {
		t.Errorf("p is not valid")
	}
	if !TautologyBrute(Iff(Not(And(p, q)), Or(Not(p), Not(q)))) {
		t.Errorf("De Morgan must be valid")
	}
}

// genFormula builds a random formula of bounded depth over three atoms.
func genFormula(r *rand.Rand, depth int) Formula {
	if depth == 0 || r.Intn(4) == 0 {
		switch r.Intn(4) {
		case 0:
			return p
		case 1:
			return q
		case 2:
			return Atom{Col: "r", Val: "1"}
		default:
			if r.Intn(2) == 0 {
				return True
			}
			return False
		}
	}
	switch r.Intn(3) {
	case 0:
		return Not(genFormula(r, depth-1))
	case 1:
		return And(genFormula(r, depth-1), genFormula(r, depth-1))
	default:
		return Or(genFormula(r, depth-1), genFormula(r, depth-1))
	}
}

// TestTseitinEquisatisfiable checks by brute force that ToCNF preserves
// satisfiability on random formulas.
func TestTseitinEquisatisfiable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		f := genFormula(rng, 4)
		want := !TautologyBrute(Not(f)) // f satisfiable?
		got := cnfSatBrute(ToCNF(f))
		if got != want {
			t.Fatalf("iter %d: formula %v: CNF sat = %v, formula sat = %v", i, f, got, want)
		}
	}
}

// cnfSatBrute decides CNF satisfiability by enumeration (tests only).
func cnfSatBrute(c CNF) bool {
	if c.NumVars > 22 {
		panic("too many vars for brute force")
	}
	for m := 0; m < 1<<uint(c.NumVars); m++ {
		ok := true
		for _, cl := range c.Clauses {
			sat := false
			for _, l := range cl {
				v := l
				if v < 0 {
					v = -v
				}
				val := m&(1<<uint(v-1)) != 0
				if (l > 0) == val {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestEvalRandomAgainstTruthTable cross-checks Eval against a reference
// recursive evaluator on random formulas and assignments.
func TestEvalRandomAgainstTruthTable(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	rng := rand.New(rand.NewSource(99))
	err := quick.Check(func(b1, b2, b3 bool) bool {
		f := genFormula(rng, 5)
		asn := map[Atom]bool{p: b1, q: b2, {Col: "r", Val: "1"}: b3}
		return f.Eval(asn) == refEval(f, asn)
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func refEval(f Formula, asn map[Atom]bool) bool {
	switch g := f.(type) {
	case constant:
		return bool(g)
	case Atom:
		return asn[g]
	case NotF:
		return !refEval(g.F, asn)
	case AndF:
		for _, s := range g.Fs {
			if !refEval(s, asn) {
				return false
			}
		}
		return true
	case OrF:
		for _, s := range g.Fs {
			if refEval(s, asn) {
				return true
			}
		}
		return false
	}
	panic("unknown")
}

func TestColumnExclusivity(t *testing.T) {
	a1 := Atom{Col: "c", Val: "1"}
	a2 := Atom{Col: "c", Val: "2"}
	f := And(a1, a2)
	cnf := ToCNF(f)
	if !cnfSatBrute(cnf) {
		t.Fatalf("c=1 ∧ c=2 should be propositionally satisfiable before exclusivity")
	}
	ColumnExclusivity(&cnf, [][]Atom{{a1, a2}})
	if cnfSatBrute(cnf) {
		t.Fatalf("exclusivity must make c=1 ∧ c=2 unsatisfiable")
	}
}
