package logic

import (
	"math/rand"
	"testing"
)

func TestSimplifyRules(t *testing.T) {
	cases := []struct {
		name string
		in   Formula
		want Formula
	}{
		{"idempotent and", And(p, p), p},
		{"idempotent or", Or(q, q), q},
		{"complement and", And(p, Not(p)), False},
		{"complement or", Or(p, Not(p)), True},
		{"absorption and", And(p, Or(p, q)), p},
		{"absorption or", Or(p, And(p, q)), p},
		{"column contradiction", And(Atom{Col: "c", Val: "1"}, Atom{Col: "c", Val: "2"}), False},
		{"atoms unchanged", p, p},
		{"constants unchanged", True, True},
		{"double negation", Not(Not(p)), p},
	}
	for _, c := range cases {
		got := Simplify(c.in)
		if got.String() != c.want.String() {
			t.Errorf("%s: Simplify(%v) = %v, want %v", c.name, c.in, got, c.want)
		}
	}
}

func TestSimplifyNested(t *testing.T) {
	// ((p ∧ p) ∨ (p ∧ q)) ∧ (p ∨ ¬p)  →  p (absorption + tautology).
	f := And(Or(And(p, p), And(p, q)), Or(p, Not(p)))
	got := Simplify(f)
	if got.String() != p.String() {
		t.Errorf("Simplify = %v, want %v", got, p)
	}
}

// TestSimplifyPreservesEquivalence is the core safety property: Simplify
// never changes the formula's meaning, on random formulas, checked by
// brute-force truth tables. Column-contradiction rewrites assume the
// relational one-value-per-column reading, so the generator uses distinct
// columns per atom to keep the propositional check exact, and a separate
// case covers the relational rewrite.
func TestSimplifyPreservesEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	atoms := []Formula{
		Atom{Col: "a", Val: "1"}, Atom{Col: "b", Val: "1"}, Atom{Col: "c", Val: "1"},
	}
	var gen func(depth int) Formula
	gen = func(depth int) Formula {
		if depth == 0 || rng.Intn(4) == 0 {
			switch rng.Intn(5) {
			case 0:
				return True
			case 1:
				return False
			default:
				return atoms[rng.Intn(len(atoms))]
			}
		}
		switch rng.Intn(3) {
		case 0:
			return Not(gen(depth - 1))
		case 1:
			return And(gen(depth-1), gen(depth-1))
		default:
			return Or(gen(depth-1), gen(depth-1))
		}
	}
	for iter := 0; iter < 500; iter++ {
		f := gen(5)
		g := Simplify(f)
		if !EquivalentBrute(f, g) {
			t.Fatalf("iter %d: Simplify changed meaning:\nin:  %v\nout: %v", iter, f, g)
		}
	}
}

// TestSimplifyShrinksContentChains builds a Table 4-style chain and checks
// the simplified form is no larger (and typically much smaller).
func TestSimplifyShrinksContentChains(t *testing.T) {
	f := Formula(False)
	for i := 0; i < 6; i++ {
		val := Atom{Col: "v", Val: "1"}
		key := Atom{Col: "k", Val: "3"}
		// insert-then-remove churn on one key.
		f = Or(And(f, Not(key)), And(key, val))
		f = And(f, Not(And(key, val)))
	}
	g := Simplify(f)
	if len(g.String()) > len(f.String()) {
		t.Fatalf("simplified form grew: %d vs %d", len(g.String()), len(f.String()))
	}
	if !EquivalentBrute(f, g) {
		t.Fatalf("chain simplification changed meaning")
	}
}

func TestSimplifyDeterministic(t *testing.T) {
	f := Or(And(q, p), And(p, q), Not(Not(p)))
	if Simplify(f).String() != Simplify(f).String() {
		t.Fatalf("non-deterministic")
	}
}

func TestSize(t *testing.T) {
	if Size(p) != 1 || Size(True) != 1 {
		t.Errorf("leaf sizes wrong")
	}
	if got := Size(And(p, Or(q, Not(p)))); got != 6 {
		t.Errorf("Size = %d, want 6", got)
	}
}
