package logic

// CNF is a formula in conjunctive normal form, ready for internal/sat.
// Variables are positive integers starting at 1; a literal is +v or -v.
// AtomVar maps each source atom to its variable; auxiliary Tseitin
// variables have no atom.
type CNF struct {
	NumVars int
	Clauses [][]int
	AtomVar map[Atom]int
}

// tseitin carries state for the transformation.
type tseitin struct {
	next    int
	clauses [][]int
	atomVar map[Atom]int
}

func (t *tseitin) fresh() int {
	t.next++
	return t.next
}

func (t *tseitin) varFor(a Atom) int {
	if v, ok := t.atomVar[a]; ok {
		return v
	}
	v := t.fresh()
	t.atomVar[a] = v
	return v
}

// lit returns a literal whose truth equals the truth of f, emitting
// defining clauses for composite subformulas.
func (t *tseitin) lit(f Formula) int {
	switch g := f.(type) {
	case constant:
		// Encode constants with a fresh variable pinned by a unit clause.
		v := t.fresh()
		if bool(g) {
			t.clauses = append(t.clauses, []int{v})
		} else {
			t.clauses = append(t.clauses, []int{-v})
		}
		return v
	case Atom:
		return t.varFor(g)
	case NotF:
		return -t.lit(g.F)
	case AndF:
		v := t.fresh()
		lits := make([]int, len(g.Fs))
		for i, sub := range g.Fs {
			lits[i] = t.lit(sub)
		}
		// v ↔ ∧ lits:  (¬v ∨ l_i) for each i;  (v ∨ ¬l_1 ∨ … ∨ ¬l_n).
		long := make([]int, 0, len(lits)+1)
		long = append(long, v)
		for _, l := range lits {
			t.clauses = append(t.clauses, []int{-v, l})
			long = append(long, -l)
		}
		t.clauses = append(t.clauses, long)
		return v
	case OrF:
		v := t.fresh()
		lits := make([]int, len(g.Fs))
		for i, sub := range g.Fs {
			lits[i] = t.lit(sub)
		}
		// v ↔ ∨ lits:  (v ∨ ¬l_i) for each i;  (¬v ∨ l_1 ∨ … ∨ l_n).
		long := make([]int, 0, len(lits)+1)
		long = append(long, -v)
		for _, l := range lits {
			t.clauses = append(t.clauses, []int{v, -l})
			long = append(long, l)
		}
		t.clauses = append(t.clauses, long)
		return v
	}
	panic("logic: unknown formula type in tseitin")
}

// ToCNF converts f into an equisatisfiable CNF via the Tseitin
// transformation: the result is satisfiable iff f is.
func ToCNF(f Formula) CNF {
	t := &tseitin{atomVar: make(map[Atom]int)}
	root := t.lit(f)
	t.clauses = append(t.clauses, []int{root})
	return CNF{NumVars: t.next, Clauses: t.clauses, AtomVar: t.atomVar}
}

// ColumnExclusivity returns clauses asserting that the atoms in each group
// are pairwise mutually exclusive. JANUS uses this when a relation column is
// known to hold one value per tuple key (a functional dependency), so
// "c=1" and "c=2" cannot hold together; without these constraints the SAT
// encoding of Table 4 content formulas would admit spurious models.
func ColumnExclusivity(cnf *CNF, groups [][]Atom) {
	for _, group := range groups {
		for i := 0; i < len(group); i++ {
			vi, ok := cnf.AtomVar[group[i]]
			if !ok {
				continue
			}
			for j := i + 1; j < len(group); j++ {
				vj, ok := cnf.AtomVar[group[j]]
				if !ok {
					continue
				}
				cnf.Clauses = append(cnf.Clauses, []int{-vi, -vj})
			}
		}
	}
}
