package logic

// Simplification of Table 1 formulas. The Table 4 update rules build
// content formulas by chaining conjunctions and disjunctions, so the
// formulas grow deeply nested with many redundant subterms; simplifying
// them before the Tseitin transformation shrinks the CNF the solver sees.
// All rewrites preserve logical equivalence (property-tested against the
// brute-force evaluator).

import "sort"

// Size counts the formula's AST nodes (atoms, constants, connectives) —
// used to bound the cost of simplification and CNF generation heuristics.
func Size(f Formula) int {
	switch g := f.(type) {
	case constant, Atom:
		return 1
	case NotF:
		return 1 + Size(g.F)
	case AndF:
		n := 1
		for _, sub := range g.Fs {
			n += Size(sub)
		}
		return n
	case OrF:
		n := 1
		for _, sub := range g.Fs {
			n += Size(sub)
		}
		return n
	}
	return 1
}

// Simplify applies equivalence-preserving rewrites bottom-up:
// constant folding (already performed by the constructors), idempotence
// (f ∧ f → f), complement elimination (f ∧ ¬f → false, f ∨ ¬f → true),
// absorption (f ∧ (f ∨ g) → f, f ∨ (f ∧ g) → f), and per-column atom
// contradiction (c=v ∧ c=w → false for v ≠ w, under the relational
// reading that a column holds one value).
func Simplify(f Formula) Formula {
	switch g := f.(type) {
	case constant, Atom:
		return g
	case NotF:
		return Not(Simplify(g.F))
	case AndF:
		return simplifyNary(g.Fs, true)
	case OrF:
		return simplifyNary(g.Fs, false)
	}
	return f
}

// simplifyNary handles an n-ary conjunction (isAnd) or disjunction.
func simplifyNary(fs []Formula, isAnd bool) Formula {
	// Simplify children first; the constructors flatten and fold.
	kids := make([]Formula, 0, len(fs))
	for _, sub := range fs {
		kids = append(kids, Simplify(sub))
	}
	var combined Formula
	if isAnd {
		combined = And(kids...)
	} else {
		combined = Or(kids...)
	}
	// The constructor may have collapsed to a constant or single term.
	var terms []Formula
	switch c := combined.(type) {
	case AndF:
		if !isAnd {
			return combined
		}
		terms = c.Fs
	case OrF:
		if isAnd {
			return combined
		}
		terms = c.Fs
	default:
		return combined
	}

	// Dedup by canonical rendering (idempotence).
	seen := make(map[string]Formula, len(terms))
	keys := make([]string, 0, len(terms))
	for _, t := range terms {
		k := t.String()
		if _, dup := seen[k]; !dup {
			seen[k] = t
			keys = append(keys, k)
		}
	}
	// Complement elimination.
	for _, k := range keys {
		t := seen[k]
		nk := Not(t).String()
		if _, hasNeg := seen[nk]; hasNeg {
			if isAnd {
				return False
			}
			return True
		}
	}
	if isAnd {
		// Per-column contradiction among positive atoms.
		colVal := map[string]string{}
		for _, k := range keys {
			if a, ok := seen[k].(Atom); ok {
				if prev, dup := colVal[a.Col]; dup && prev != a.Val {
					return False
				}
				colVal[a.Col] = a.Val
			}
		}
	}
	// Absorption: drop any term that contains another term as an
	// operand of the dual connective (f ∧ (f ∨ g) → f).
	kept := make([]Formula, 0, len(keys))
	for _, k := range keys {
		t := seen[k]
		if absorbed(t, seen, isAnd) {
			continue
		}
		kept = append(kept, t)
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].String() < kept[j].String() })
	if isAnd {
		return And(kept...)
	}
	return Or(kept...)
}

// absorbed reports whether term t is implied redundant by a sibling: in a
// conjunction, a disjunctive term containing a sibling is absorbed; dually
// for disjunctions.
func absorbed(t Formula, siblings map[string]Formula, isAnd bool) bool {
	var inner []Formula
	if isAnd {
		o, ok := t.(OrF)
		if !ok {
			return false
		}
		inner = o.Fs
	} else {
		a, ok := t.(AndF)
		if !ok {
			return false
		}
		inner = a.Fs
	}
	for _, sub := range inner {
		k := sub.String()
		if sib, ok := siblings[k]; ok && sib.String() != t.String() {
			return true
		}
	}
	return false
}
