// Package commute implements the commutativity judgments at the heart of
// JANUS: the concrete SAMEREAD and COMMUTE checks of the projection-based
// CONFLICT algorithm (Figure 8, justified by Lemma 5.2), and the symbolic
// condition language that training caches and production evaluates.
//
// A cached entry certifies, for a pair of abstract sequence shapes, which
// decision procedure soundly answers commutativity queries for concrete
// instances of those shapes:
//
//   - CondAlways: the shapes commute for every instance (e.g. two add-only
//     reduction sequences) — no per-query work at all.
//   - CondRegister: evaluate the register effect theory (internal/seqeff)
//     on the concrete pair; exact for add/store/load sequences, covering
//     the identity, reduction, equal-writes, and shared-as-local patterns.
//   - CondStackIdentity: both stack sequences must be balanced (net
//     identity), the JFileSync monitor pattern.
//
// Conditions are derived and verified during training (internal/train);
// production never trusts a condition that training did not prove.
package commute

import (
	"fmt"
	"sort"

	"repro/internal/adt"
	"repro/internal/oplog"
	"repro/internal/seqeff"
	"repro/internal/state"
)

// ConditionKind identifies the decision procedure cached for a shape pair.
type ConditionKind int

// Condition kinds.
const (
	CondNone ConditionKind = iota
	CondAlways
	CondRegister
	CondStackIdentity
)

// String renders the kind.
func (k ConditionKind) String() string {
	switch k {
	case CondAlways:
		return "always"
	case CondRegister:
		return "register"
	case CondStackIdentity:
		return "stack-identity"
	default:
		return "none"
	}
}

// Strength ranks condition kinds by the strength of the commutativity
// claim they certify: CondAlways (commutes for every instance) is the
// strongest, then CondRegister (per-instance register-theory evaluation),
// then CondStackIdentity (per-instance balance check); CondNone certifies
// nothing. The order is total, which makes conflict resolution between
// training runs deterministic.
func (k ConditionKind) Strength() int {
	switch k {
	case CondAlways:
		return 3
	case CondRegister:
		return 2
	case CondStackIdentity:
		return 1
	default:
		return 0
	}
}

// Resolve deterministically combines two conditions proved for the same
// shape key: the weaker (lower-Strength) non-None condition wins, since a
// stronger claim proved for one instance pair need not hold for every
// instance of the shape — e.g. Always proved on store(5)/store(5) must
// yield to Register proved on store(5)/store(6). Resolve is commutative
// and associative, so merged cache contents are independent of the order
// training runs are observed or merged.
func Resolve(a, b ConditionKind) ConditionKind {
	if a == CondNone {
		return b
	}
	if b == CondNone {
		return a
	}
	if b.Strength() < a.Strength() {
		return b
	}
	return a
}

// Prove derives the strongest condition kind that soundly decides
// commutativity for concrete instances of the two sequences' shapes.
// It returns CondNone when no theory covers the pair (the caller then
// leaves the query uncached, and production falls back to write-set
// detection).
func Prove(s1, s2 []oplog.Sym) ConditionKind {
	t1, t2 := seqeff.Classify(s1), seqeff.Classify(s2)
	switch {
	case t1 == seqeff.TheoryRegister && t2 == seqeff.TheoryRegister:
		if addOnly(s1) && addOnly(s2) {
			return CondAlways
		}
		if loadOnly(s1) && loadOnly(s2) {
			return CondAlways
		}
		return CondRegister
	case t1 == seqeff.TheoryStack && t2 == seqeff.TheoryStack:
		return CondStackIdentity
	default:
		return CondNone
	}
}

func addOnly(s []oplog.Sym) bool {
	for _, x := range s {
		if x.Kind != adt.KindNumAdd {
			return false
		}
	}
	return len(s) > 0
}

func loadOnly(s []oplog.Sym) bool {
	for _, x := range s {
		switch x.Kind {
		case adt.KindNumLoad, adt.KindStrLoad, adt.KindBoolLoad, adt.KindRelGet, adt.KindRelHas, adt.KindListSize:
		default:
			return false
		}
	}
	return len(s) > 0
}

// Check identifies which leg of the per-location CONFLICT judgment
// (Figure 8) failed, for abort-reason attribution in the observability
// layer.
type Check int

// Checks.
const (
	// CheckNone: no check failed (the pair commutes).
	CheckNone Check = iota
	// CheckSameRead: a SAMEREAD precondition failed — some read of one
	// sequence would observe a different value after the other's effect.
	CheckSameRead
	// CheckCommute: the final COMMUTE test failed — the composite
	// effects do not commute.
	CheckCommute
	// CheckTheory: the sequences fell outside the cached condition's
	// theory (malformed query; callers answer conservatively).
	CheckTheory
)

// String renders the check name.
func (c Check) String() string {
	switch c {
	case CheckSameRead:
		return "same-read"
	case CheckCommute:
		return "commute"
	case CheckTheory:
		return "theory"
	default:
		return "none"
	}
}

// Evaluate runs the cached condition on a concrete sequence pair,
// reporting whether the pair conflicts. ok is false when the sequences do
// not actually fit the condition's theory (a malformed query; callers must
// then fall back conservatively).
func Evaluate(kind ConditionKind, s1, s2 []oplog.Sym) (conflict, ok bool) {
	conflict, _, ok = EvaluateDetail(kind, s1, s2)
	return conflict, ok
}

// EvaluateDetail is Evaluate with attribution: when the pair conflicts,
// failed names the first check of the Figure 8 judgment that rejected it.
func EvaluateDetail(kind ConditionKind, s1, s2 []oplog.Sym) (conflict bool, failed Check, ok bool) {
	switch kind {
	case CondAlways:
		return false, CheckNone, true
	case CondRegister:
		a1, ok1 := seqeff.AnalyzeRegister(s1)
		a2, ok2 := seqeff.AnalyzeRegister(s2)
		if !ok1 || !ok2 {
			return true, CheckTheory, false
		}
		if !seqeff.SameRead(a1, a2.Eff) || !seqeff.SameRead(a2, a1.Eff) {
			return true, CheckSameRead, true
		}
		if !seqeff.Commute(a1.Eff, a2.Eff) {
			return true, CheckCommute, true
		}
		return false, CheckNone, true
	case CondStackIdentity:
		a1, ok1 := seqeff.AnalyzeStack(s1)
		a2, ok2 := seqeff.AnalyzeStack(s2)
		if !ok1 || !ok2 {
			return true, CheckTheory, false
		}
		// Balance is the stack identity condition: an unbalanced
		// sequence's composite effect fails COMMUTE.
		if seqeff.StackPairConflicts(a1, a2) {
			return true, CheckCommute, true
		}
		return false, CheckNone, true
	default:
		return true, CheckTheory, false
	}
}

// --- Concrete Figure 8 checks ---

// PLocValue reads the value the projection location denotes in st: the
// scalar value for a plain location, or the key's bound range valuation
// (with adt.AbsentVal for unbound) for a relational key. This is the
// "s(l)" of the SAMEREAD and COMMUTE definitions instantiated at
// projection granularity. The range valuation is rendered canonically
// ("c=v" per range column), so the judgment works for any §6.1 schema,
// not only the built-in single-key/single-value ADTs.
func PLocValue(st *state.State, p oplog.PLoc) (state.Value, error) {
	loc := p.Loc()
	v, bound := st.Get(loc)
	if !bound {
		return nil, fmt.Errorf("commute: unbound location %q", loc)
	}
	key := p.Key()
	if key == "" {
		return v, nil
	}
	rel, isRel := v.(state.Rel)
	if !isRel {
		return nil, fmt.Errorf("commute: %q is not relational but PLoc %q has a key", loc, p)
	}
	rangeCols := rel.R.Cols()
	if fd := rel.R.FDef(); fd != nil {
		rangeCols = append([]string(nil), fd.Range...)
		sort.Strings(rangeCols)
	}
	for _, t := range rel.R.Tuples() {
		if rel.R.LocKey(t) == key {
			return state.Str(t.Key(rangeCols)), nil
		}
	}
	return state.Str(adt.AbsentVal), nil
}

// applyAll replays a per-location event subsequence onto st.
func applyAll(st *state.State, seq oplog.Log) error {
	for _, e := range seq {
		if _, err := e.Op.Apply(st); err != nil {
			return err
		}
	}
	return nil
}

// SameRead is the concrete SAMEREAD check of Figure 8 for one read prefix
// of seq1: the value of l after the prefix is the same whether or not the
// other sequence ran first, starting from entry state s.
func SameRead(s *state.State, l oplog.PLoc, prefix, other oplog.Log) (bool, error) {
	s1 := s.Clone()
	if err := applyAll(s1, prefix); err != nil {
		return false, err
	}
	v1, err := PLocValue(s1, l)
	if err != nil {
		return false, err
	}
	s2 := s.Clone()
	if err := applyAll(s2, other); err != nil {
		return false, err
	}
	if err := applyAll(s2, prefix); err != nil {
		return false, err
	}
	v2, err := PLocValue(s2, l)
	if err != nil {
		return false, err
	}
	return v1.EqualValue(v2), nil
}

// readPrefixes returns, per GETREADSUBSEQUENCES, the prefixes of seq
// ending at each observing (IsRead) operation.
func readPrefixes(seq oplog.Log) []oplog.Log {
	var out []oplog.Log
	for i, e := range seq {
		if e.Op.IsRead() {
			out = append(out, seq[:i+1])
		}
	}
	return out
}

// Commutes is the concrete COMMUTE check of Figure 8: l's value is the
// same under both execution orders starting from entry state s.
func Commutes(s *state.State, l oplog.PLoc, seq1, seq2 oplog.Log) (bool, error) {
	ab := s.Clone()
	if err := applyAll(ab, seq1); err != nil {
		return false, err
	}
	if err := applyAll(ab, seq2); err != nil {
		return false, err
	}
	vab, err := PLocValue(ab, l)
	if err != nil {
		return false, err
	}
	ba := s.Clone()
	if err := applyAll(ba, seq2); err != nil {
		return false, err
	}
	if err := applyAll(ba, seq1); err != nil {
		return false, err
	}
	vba, err := PLocValue(ba, l)
	if err != nil {
		return false, err
	}
	return vab.EqualValue(vba), nil
}

// ConflictConcrete is the idealized CONFLICT of Figure 8 executed
// concretely from entry state s: a conflict exists unless every read
// prefix of each sequence passes SAMEREAD and the pair passes COMMUTE.
// Training uses it to validate learned conditions on observed instances;
// the "online" detection mode (an ablation the paper mentions in §5.3)
// uses it directly.
func ConflictConcrete(s *state.State, l oplog.PLoc, seq1, seq2 oplog.Log) (bool, error) {
	for _, prefix := range readPrefixes(seq1) {
		same, err := SameRead(s, l, prefix, seq2)
		if err != nil {
			return true, err
		}
		if !same {
			return true, nil
		}
	}
	for _, prefix := range readPrefixes(seq2) {
		same, err := SameRead(s, l, prefix, seq1)
		if err != nil {
			return true, err
		}
		if !same {
			return true, nil
		}
	}
	commutes, err := Commutes(s, l, seq1, seq2)
	if err != nil {
		return true, err
	}
	return !commutes, nil
}
