package commute

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/adt"
	"repro/internal/oplog"
	"repro/internal/seqeff"
	"repro/internal/state"
)

func sym(kind, arg string) oplog.Sym { return oplog.Sym{Kind: kind, Arg: arg} }

func TestProve(t *testing.T) {
	adds := []oplog.Sym{sym(adt.KindNumAdd, "1"), sym(adt.KindNumAdd, "-1")}
	loads := []oplog.Sym{sym(adt.KindNumLoad, "")}
	stores := []oplog.Sym{sym(adt.KindNumStore, "5")}
	stacks := []oplog.Sym{sym(adt.KindListPush, "1"), sym(adt.KindListPop, "")}
	mixed := []oplog.Sym{sym(adt.KindListPush, "1"), sym(adt.KindNumAdd, "1")}

	cases := []struct {
		name   string
		s1, s2 []oplog.Sym
		want   ConditionKind
	}{
		{"add-only pair", adds, adds, CondAlways},
		{"load-only pair", loads, loads, CondAlways},
		{"add vs store", adds, stores, CondRegister},
		{"store vs store", stores, stores, CondRegister},
		{"stack pair", stacks, stacks, CondStackIdentity},
		{"stack vs register", stacks, adds, CondNone},
		{"mixed theory", mixed, mixed, CondNone},
	}
	for _, c := range cases {
		if got := Prove(c.s1, c.s2); got != c.want {
			t.Errorf("%s: Prove = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestEvaluate(t *testing.T) {
	idp := []oplog.Sym{sym(adt.KindNumAdd, "4"), sym(adt.KindNumAdd, "-4")}
	store5 := []oplog.Sym{sym(adt.KindNumStore, "5")}
	store6 := []oplog.Sym{sym(adt.KindNumStore, "6")}
	bal := []oplog.Sym{sym(adt.KindListPush, "2"), sym(adt.KindListPop, "")}
	unbal := []oplog.Sym{sym(adt.KindListPush, "2")}

	if c, ok := Evaluate(CondAlways, store5, store6); !ok || c {
		t.Errorf("CondAlways must answer no-conflict")
	}
	if c, ok := Evaluate(CondRegister, idp, store5); !ok || c {
		t.Errorf("identity vs store must not conflict")
	}
	if c, ok := Evaluate(CondRegister, store5, store6); !ok || !c {
		t.Errorf("different stores must conflict")
	}
	if c, ok := Evaluate(CondRegister, store5, store5); !ok || c {
		t.Errorf("equal stores must not conflict")
	}
	if c, ok := Evaluate(CondStackIdentity, bal, bal); !ok || c {
		t.Errorf("balanced stacks must not conflict")
	}
	if c, ok := Evaluate(CondStackIdentity, bal, unbal); !ok || !c {
		t.Errorf("unbalanced stack must conflict")
	}
	if _, ok := Evaluate(CondRegister, bal, bal); ok {
		t.Errorf("stack seq under register condition must report !ok")
	}
	if _, ok := Evaluate(CondStackIdentity, store5, store5); ok {
		t.Errorf("register seq under stack condition must report !ok")
	}
	if c, ok := Evaluate(CondNone, store5, store5); ok || !c {
		t.Errorf("CondNone must be conservative")
	}
}

func TestConditionKindString(t *testing.T) {
	want := map[ConditionKind]string{
		CondNone: "none", CondAlways: "always",
		CondRegister: "register", CondStackIdentity: "stack-identity",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("String(%d) = %q, want %q", k, k.String(), s)
		}
	}
}

// record executes ops against st and returns the events.
func record(t *testing.T, st *state.State, task int, ops ...oplog.Op) oplog.Log {
	t.Helper()
	var l oplog.Log
	for i, op := range ops {
		acc := op.Accesses(st)
		v, err := op.Apply(st)
		if err != nil {
			t.Fatalf("apply %v: %v", op, err)
		}
		l = append(l, &oplog.Event{Op: op, Task: task, Seq: i, Acc: acc, Observed: v})
	}
	return l
}

func TestPLocValue(t *testing.T) {
	st := state.New()
	st.Set("work", state.Int(7))
	st.Set("bits", adt.NewRelValue())
	if v, err := PLocValue(st, "work"); err != nil || !v.EqualValue(state.Int(7)) {
		t.Errorf("scalar PLocValue = %v, %v", v, err)
	}
	if v, err := PLocValue(st, "bits#k=3"); err != nil || !v.EqualValue(state.Str(adt.AbsentVal)) {
		t.Errorf("absent key PLocValue = %v, %v", v, err)
	}
	mut := st.Clone()
	if _, err := (adt.RelPutOp{L: "bits", Key: "3", Val: "1"}).Apply(mut); err != nil {
		t.Fatal(err)
	}
	if v, err := PLocValue(mut, "bits#k=3"); err != nil || !v.EqualValue(state.Str("v=1")) {
		t.Errorf("bound key PLocValue = %v, %v", v, err)
	}
	if _, err := PLocValue(st, "missing"); err == nil {
		t.Errorf("unbound loc must error")
	}
	if _, err := PLocValue(st, "work#k=1"); err == nil {
		t.Errorf("keyed PLoc on scalar must error")
	}
}

func TestConflictConcreteIdentityPattern(t *testing.T) {
	base := state.New()
	base.Set("work", state.Int(0))
	s1 := record(t, base.Clone(), 1, adt.NumAddOp{L: "work", Delta: 2}, adt.NumAddOp{L: "work", Delta: -2})
	s2 := record(t, base.Clone(), 2, adt.NumAddOp{L: "work", Delta: 9}, adt.NumAddOp{L: "work", Delta: -9})
	conflict, err := ConflictConcrete(base, "work", s1, s2)
	if err != nil || conflict {
		t.Fatalf("identity pairs must not conflict: %v %v", conflict, err)
	}
}

func TestConflictConcreteSpuriousRead(t *testing.T) {
	base := state.New()
	base.Set("max", state.Int(1))
	// Reader observes entry value; writer stores a new one: SAMEREAD fails.
	rd := record(t, base.Clone(), 1, adt.NumLoadOp{L: "max"})
	wr := record(t, base.Clone(), 2, adt.NumStoreOp{L: "max", V: 5})
	conflict, err := ConflictConcrete(base, "max", rd, wr)
	if err != nil || !conflict {
		t.Fatalf("read vs store must conflict: %v %v", conflict, err)
	}
	// Reader vs reader is fine.
	rd2 := record(t, base.Clone(), 2, adt.NumLoadOp{L: "max"})
	conflict, err = ConflictConcrete(base, "max", rd, rd2)
	if err != nil || conflict {
		t.Fatalf("two readers must not conflict: %v %v", conflict, err)
	}
}

func TestConflictConcreteEqualWrites(t *testing.T) {
	base := state.New()
	base.Set("canvas", adt.NewRelValue())
	w1 := record(t, base.Clone(), 1, adt.RelPutOp{L: "canvas", Key: "1:1", Val: "white"})
	w2 := record(t, base.Clone(), 2, adt.RelPutOp{L: "canvas", Key: "1:1", Val: "white"})
	w3 := record(t, base.Clone(), 3, adt.RelPutOp{L: "canvas", Key: "1:1", Val: "black"})
	p := oplog.PLoc("canvas#k=1:1")
	if conflict, err := ConflictConcrete(base, p, w1, w2); err != nil || conflict {
		t.Fatalf("equal writes must not conflict: %v %v", conflict, err)
	}
	if conflict, err := ConflictConcrete(base, p, w1, w3); err != nil || !conflict {
		t.Fatalf("different writes must conflict: %v %v", conflict, err)
	}
}

func TestConflictConcreteSharedAsLocal(t *testing.T) {
	base := state.New()
	base.Set("f", state.Str("init"))
	// Each task stores then loads its own value: reads are stable and the
	// final value differs by order — a genuine conflict on the final
	// value unless the stores are equal. With equal stores, no conflict.
	a := record(t, base.Clone(), 1, adt.StrStoreOp{L: "f", V: "x"}, adt.StrLoadOp{L: "f"})
	b := record(t, base.Clone(), 2, adt.StrStoreOp{L: "f", V: "x"}, adt.StrLoadOp{L: "f"})
	if conflict, err := ConflictConcrete(base, "f", a, b); err != nil || conflict {
		t.Fatalf("equal store-load pairs must not conflict: %v %v", conflict, err)
	}
	c := record(t, base.Clone(), 3, adt.StrStoreOp{L: "f", V: "y"}, adt.StrLoadOp{L: "f"})
	if conflict, err := ConflictConcrete(base, "f", a, c); err != nil || !conflict {
		t.Fatalf("different final stores must conflict (COMMUTE): %v %v", conflict, err)
	}
}

// TestTheoryAgreesWithConcrete cross-validates the register theory's
// PairConflicts against the concrete Figure 8 execution on random numeric
// sequences and entry states.
func TestTheoryAgreesWithConcrete(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 400; iter++ {
		base := state.New()
		base.Set("x", state.Int(int64(rng.Intn(7)-3)))
		gen := func(task int) oplog.Log {
			n := 1 + rng.Intn(3)
			ops := make([]oplog.Op, n)
			for i := range ops {
				switch rng.Intn(3) {
				case 0:
					ops[i] = adt.NumAddOp{L: "x", Delta: int64(rng.Intn(5) - 2)}
				case 1:
					ops[i] = adt.NumStoreOp{L: "x", V: int64(rng.Intn(3))}
				default:
					ops[i] = adt.NumLoadOp{L: "x"}
				}
			}
			return record(t, base.Clone(), task, ops...)
		}
		s1, s2 := gen(1), gen(2)
		a1, _ := seqeff.AnalyzeRegister(s1.Syms())
		a2, _ := seqeff.AnalyzeRegister(s2.Syms())
		theory := seqeff.PairConflicts(a1, a2)
		concrete, err := ConflictConcrete(base, "x", s1, s2)
		if err != nil {
			t.Fatal(err)
		}
		// The theory quantifies over all entry states; the concrete check
		// is for one entry state. Soundness: theory "no conflict" implies
		// concrete "no conflict".
		if !theory && concrete {
			t.Fatalf("iter %d: theory says commute but concrete conflicts\ns1=%v\ns2=%v entry=%s",
				iter, s1.Syms(), s2.Syms(), base)
		}
		_ = strconv.Itoa(iter)
	}
}

// TestResolveDeterministic pins the total strength order on condition
// kinds and the order-independence of Resolve, which Cache.Put, Merge,
// and Load rely on for deterministic merged contents.
func TestResolveDeterministic(t *testing.T) {
	kinds := []ConditionKind{CondNone, CondStackIdentity, CondRegister, CondAlways}
	for i, a := range kinds {
		for j, b := range kinds {
			got := Resolve(a, b)
			if sym := Resolve(b, a); sym != got {
				t.Errorf("Resolve(%v,%v)=%v but Resolve(%v,%v)=%v", a, b, got, b, a, sym)
			}
			var want ConditionKind
			switch {
			case a == CondNone:
				want = b
			case b == CondNone:
				want = a
			case i <= j:
				want = a // kinds listed weakest-first
			default:
				want = b
			}
			if got != want {
				t.Errorf("Resolve(%v,%v) = %v, want %v", a, b, got, want)
			}
		}
	}
	// Associativity over a triple with all kinds present.
	l := Resolve(Resolve(CondAlways, CondRegister), CondStackIdentity)
	r := Resolve(CondAlways, Resolve(CondRegister, CondStackIdentity))
	if l != r || l != CondStackIdentity {
		t.Errorf("associativity: %v vs %v", l, r)
	}
	// Strength is a strict total order on provable kinds.
	if !(CondNone.Strength() < CondStackIdentity.Strength() &&
		CondStackIdentity.Strength() < CondRegister.Strength() &&
		CondRegister.Strength() < CondAlways.Strength()) {
		t.Errorf("strength order broken")
	}
}
