package commute

import (
	"math/rand"
	"testing"

	"repro/internal/adt"
	"repro/internal/oplog"
	"repro/internal/state"
)

// genRegisterLog builds a random single-location op sequence with its
// events (footprints computed against a scratch state).
func genRegisterLog(rng *rand.Rand, loc state.Loc, task int) oplog.Log {
	n := 1 + rng.Intn(4)
	ops := make([]oplog.Op, n)
	for i := range ops {
		switch rng.Intn(3) {
		case 0:
			ops[i] = adt.NumAddOp{L: loc, Delta: int64(rng.Intn(7) - 3)}
		case 1:
			ops[i] = adt.NumStoreOp{L: loc, V: int64(rng.Intn(4))}
		default:
			ops[i] = adt.NumLoadOp{L: loc}
		}
	}
	st := state.New()
	st.Set(loc, state.Int(0))
	var l oplog.Log
	for i, op := range ops {
		acc := op.Accesses(st)
		v, _ := op.Apply(st)
		l = append(l, &oplog.Event{Op: op, Task: task, Seq: i, Acc: acc, Observed: v})
	}
	return l
}

func genStackLog(rng *rand.Rand, loc state.Loc, task int) oplog.Log {
	n := 1 + rng.Intn(5)
	st := state.New()
	st.Set(loc, state.IntList{10, 20, 30, 40, 50}) // deep enough to pop
	var l oplog.Log
	depth := 5
	for i := 0; i < n; i++ {
		var op oplog.Op
		switch rng.Intn(3) {
		case 0:
			op = adt.ListPushOp{L: loc, V: int64(rng.Intn(9))}
			depth++
		case 1:
			if depth == 0 {
				op = adt.ListPushOp{L: loc, V: 1}
				depth++
			} else {
				op = adt.ListPopOp{L: loc}
				depth--
			}
		default:
			op = adt.ListSizeOp{L: loc}
		}
		acc := op.Accesses(st)
		v, err := op.Apply(st)
		if err != nil {
			break
		}
		l = append(l, &oplog.Event{Op: op, Task: task, Seq: i, Acc: acc, Observed: v})
	}
	return l
}

// TestProvedConditionsSoundOnRegisterDomain is the training soundness
// property: whenever Prove+Evaluate declare a random register pair
// non-conflicting, the concrete Figure 8 judgment must agree on every
// sampled entry state.
func TestProvedConditionsSoundOnRegisterDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	admitted := 0
	for iter := 0; iter < 2000; iter++ {
		s1 := genRegisterLog(rng, "x", 1)
		s2 := genRegisterLog(rng, "x", 2)
		kind := Prove(s1.Syms(), s2.Syms())
		if kind == CondNone {
			continue
		}
		conflict, ok := Evaluate(kind, s1.Syms(), s2.Syms())
		if !ok {
			t.Fatalf("proved condition failed to evaluate: %v", kind)
		}
		if conflict {
			continue // conservative answers are always sound
		}
		admitted++
		for _, entry := range []int64{-3, 0, 2, 17} {
			st := state.New()
			st.Set("x", state.Int(entry))
			concrete, err := ConflictConcrete(st, "x", s1, s2)
			if err != nil {
				t.Fatal(err)
			}
			if concrete {
				t.Fatalf("UNSOUND: condition %v admitted a conflicting pair at entry %d:\ns1=%v\ns2=%v",
					kind, entry, s1.Syms(), s2.Syms())
			}
		}
	}
	if admitted < 50 {
		t.Fatalf("only %d pairs admitted; generator too restrictive", admitted)
	}
}

// TestProvedConditionsSoundOnStackDomain is the same property for the
// stack theory.
func TestProvedConditionsSoundOnStackDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	admitted := 0
	for iter := 0; iter < 2000; iter++ {
		s1 := genStackLog(rng, "s", 1)
		s2 := genStackLog(rng, "s", 2)
		kind := Prove(s1.Syms(), s2.Syms())
		if kind == CondNone {
			continue
		}
		conflict, ok := Evaluate(kind, s1.Syms(), s2.Syms())
		if !ok || conflict {
			continue
		}
		admitted++
		for _, entry := range []state.IntList{{}, {7}, {1, 2, 3, 4, 5, 6}} {
			st := state.New()
			st.Set("s", append(state.IntList(nil), entry...))
			concrete, err := ConflictConcrete(st, "s", s1, s2)
			if err != nil {
				// Pops beyond the entry depth cannot run on this entry
				// state; a balanced-pair admission never pops the entry
				// stack, so an error here is itself a soundness bug.
				t.Fatalf("admitted stack pair failed concretely on %v: %v\ns1=%v\ns2=%v",
					entry, err, s1.Syms(), s2.Syms())
			}
			if concrete {
				t.Fatalf("UNSOUND stack admission at entry %v:\ns1=%v\ns2=%v",
					entry, s1.Syms(), s2.Syms())
			}
		}
	}
	if admitted < 20 {
		t.Fatalf("only %d stack pairs admitted; generator too restrictive", admitted)
	}
}

// TestRelationalConditionsSoundPerKey checks per-key relational pairs:
// admitted put/get/remove pairs must pass the concrete judgment on bound
// and unbound entry keys.
func TestRelationalConditionsSoundPerKey(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	vals := []string{"a", "b"}
	gen := func(task int) oplog.Log {
		n := 1 + rng.Intn(3)
		st := state.New()
		st.Set("r", adt.NewRelValue())
		var l oplog.Log
		for i := 0; i < n; i++ {
			var op oplog.Op
			switch rng.Intn(4) {
			case 0:
				op = adt.RelPutOp{L: "r", Key: "k", Val: vals[rng.Intn(2)]}
			case 1:
				op = adt.RelRemoveOp{L: "r", Key: "k"}
			case 2:
				op = adt.RelGetOp{L: "r", Key: "k"}
			default:
				op = adt.RelHasOp{L: "r", Key: "k"}
			}
			acc := op.Accesses(st)
			v, _ := op.Apply(st)
			l = append(l, &oplog.Event{Op: op, Task: task, Seq: i, Acc: acc, Observed: v})
		}
		return l
	}
	admitted := 0
	ploc := oplog.PLoc("r#k=k")
	for iter := 0; iter < 1500; iter++ {
		s1, s2 := gen(1), gen(2)
		kind := Prove(s1.Syms(), s2.Syms())
		if kind == CondNone {
			continue
		}
		conflict, ok := Evaluate(kind, s1.Syms(), s2.Syms())
		if !ok || conflict {
			continue
		}
		admitted++
		for _, bound := range []bool{false, true} {
			st := state.New()
			rel := adt.NewRelValue()
			st.Set("r", rel)
			if bound {
				if _, err := (adt.RelPutOp{L: "r", Key: "k", Val: "z"}).Apply(st); err != nil {
					t.Fatal(err)
				}
			}
			concrete, err := ConflictConcrete(st, ploc, s1, s2)
			if err != nil {
				t.Fatal(err)
			}
			if concrete {
				t.Fatalf("UNSOUND relational admission (bound=%v):\ns1=%v\ns2=%v",
					bound, s1.Syms(), s2.Syms())
			}
		}
	}
	if admitted < 30 {
		t.Fatalf("only %d relational pairs admitted", admitted)
	}
}
