package seqabs

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/adt"
	"repro/internal/oplog"
	"repro/internal/seqeff"
)

func genRegisterOp(rng *rand.Rand) oplog.Sym {
	switch rng.Intn(4) {
	case 0:
		return oplog.Sym{Kind: adt.KindNumAdd, Arg: strconv.Itoa(rng.Intn(7) - 3)}
	case 1:
		return oplog.Sym{Kind: adt.KindNumStore, Arg: strconv.Itoa(rng.Intn(4))}
	default:
		return oplog.Sym{Kind: adt.KindNumLoad}
	}
}

// TestLemma51DuplicationInvariance is the abstraction-level counterpart of
// Lemma 5.1: duplicating one block of a run the abstracter collapsed under
// the Kleene-cross must not change the abstract pattern — this is exactly
// what makes the cache key match instances of any repetition count. The
// test duplicates the leading block of every Plus element on random
// sequences and checks key equality, and additionally re-verifies the
// collapsed block's idempotence under the effect theory (the soundness
// premise of Lemma 5.1).
func TestLemma51DuplicationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := &Abstracter{Mode: Abstract}
	checked := 0
	for iter := 0; iter < 4000 && checked < 400; iter++ {
		n := 1 + rng.Intn(8)
		seq := make([]oplog.Sym, n)
		for i := range seq {
			seq[i] = genRegisterOp(rng)
		}
		pattern, spans := a.AbstractWithSpans(seq)
		key := pattern.String()
		for ei, elem := range pattern {
			if !elem.Plus {
				continue
			}
			checked++
			sp := spans[ei]
			block := seq[sp.Start : sp.Start+sp.Block]
			if !seqeff.BlockIdempotent(block) {
				t.Fatalf("collapsed block %v is not idempotent (Lemma 5.1 premise violated)", block)
			}
			dup := make([]oplog.Sym, 0, n+sp.Block)
			dup = append(dup, seq[:sp.Start+sp.Block]...)
			dup = append(dup, block...)
			dup = append(dup, seq[sp.Start+sp.Block:]...)
			if got := a.Key(dup); got != key {
				t.Fatalf("duplicating collapsed block changed the key:\nseq: %v → %q\ndup: %v → %q",
					seq, key, dup, got)
			}
		}
	}
	if checked < 100 {
		t.Fatalf("only %d collapsed blocks checked; generator too restrictive", checked)
	}
}

// TestSpansCoverSequence checks the AbstractWithSpans contract: spans are
// contiguous, cover the whole sequence, and Plus spans are whole multiples
// of their block length.
func TestSpansCoverSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := &Abstracter{Mode: Abstract}
	for iter := 0; iter < 500; iter++ {
		n := rng.Intn(10)
		seq := make([]oplog.Sym, n)
		for i := range seq {
			seq[i] = genRegisterOp(rng)
		}
		pattern, spans := a.AbstractWithSpans(seq)
		if len(pattern) != len(spans) {
			t.Fatalf("pattern/spans length mismatch: %d vs %d", len(pattern), len(spans))
		}
		pos := 0
		for i, sp := range spans {
			if sp.Start != pos {
				t.Fatalf("span %d starts at %d, want %d (seq %v)", i, sp.Start, pos, seq)
			}
			if sp.End <= sp.Start {
				t.Fatalf("span %d empty", i)
			}
			if pattern[i].Plus {
				width := sp.End - sp.Start
				if sp.Block <= 0 || width%sp.Block != 0 {
					t.Fatalf("plus span %d: width %d not a multiple of block %d", i, width, sp.Block)
				}
				if len(pattern[i].Kinds) != sp.Block {
					t.Fatalf("plus span %d: block %d but %d kinds", i, sp.Block, len(pattern[i].Kinds))
				}
			} else if sp.End-sp.Start != 1 || sp.Block != 0 {
				t.Fatalf("literal span %d: %+v", i, sp)
			}
			pos = sp.End
		}
		if pos != n {
			t.Fatalf("spans cover %d of %d ops", pos, n)
		}
	}
}

// TestConcreteSpans checks the Concrete-mode span contract.
func TestConcreteSpans(t *testing.T) {
	a := &Abstracter{Mode: Concrete}
	seq := []oplog.Sym{{Kind: adt.KindNumAdd, Arg: "1"}, {Kind: adt.KindNumLoad}}
	pattern, spans := a.AbstractWithSpans(seq)
	if len(pattern) != 2 || len(spans) != 2 {
		t.Fatalf("concrete mode must be one elem per op")
	}
	if spans[1].Start != 1 || spans[1].End != 2 {
		t.Fatalf("spans = %+v", spans)
	}
}

// TestAbstractionNeverChangesConflictVerdict checks the soundness
// contract between abstraction and the condition language: two concrete
// sequences with the same abstract key and the same register analysis
// must receive identical conflict verdicts against any third sequence.
func TestAbstractionNeverChangesConflictVerdict(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	a := &Abstracter{Mode: Abstract}
	gen := func() []oplog.Sym {
		n := 1 + rng.Intn(5)
		out := make([]oplog.Sym, n)
		for i := range out {
			out[i] = genRegisterOp(rng)
		}
		return out
	}
	for iter := 0; iter < 500; iter++ {
		s1, s2, s3 := gen(), gen(), gen()
		if a.Key(s1) != a.Key(s2) {
			continue
		}
		an1, ok1 := seqeff.AnalyzeRegister(s1)
		an2, ok2 := seqeff.AnalyzeRegister(s2)
		an3, ok3 := seqeff.AnalyzeRegister(s3)
		if !ok1 || !ok2 || !ok3 {
			continue
		}
		if an1.Eff != an2.Eff || len(an1.Reads) != len(an2.Reads) {
			continue // same shape but different instance semantics: fine
		}
		same := true
		for i := range an1.Reads {
			if an1.Reads[i] != an2.Reads[i] {
				same = false
				break
			}
		}
		if !same {
			continue
		}
		v1 := seqeff.PairConflicts(an1, an3)
		v2 := seqeff.PairConflicts(an2, an3)
		if v1 != v2 {
			t.Fatalf("semantically equal instances of one pattern got different verdicts:\ns1=%v s2=%v s3=%v", s1, s2, s3)
		}
	}
}
