package seqabs

import (
	"strconv"
	"testing"

	"repro/internal/adt"
	"repro/internal/oplog"
)

// benchSeq builds a realistic mined sequence: balanced push/pop runs of
// varying payloads (the JFileSync monitor shape).
func benchSeq(pairs int) []oplog.Sym {
	out := make([]oplog.Sym, 0, 2*pairs+4)
	out = append(out,
		oplog.Sym{Kind: adt.KindListPush, Arg: "2"},
		oplog.Sym{Kind: adt.KindListPush, Arg: "9"},
	)
	for i := 0; i < pairs; i++ {
		out = append(out,
			oplog.Sym{Kind: adt.KindListPush, Arg: strconv.Itoa(i)},
			oplog.Sym{Kind: adt.KindListPop},
		)
	}
	out = append(out, oplog.Sym{Kind: adt.KindListPop}, oplog.Sym{Kind: adt.KindListPop})
	return out
}

func BenchmarkAbstract(b *testing.B) {
	for _, pairs := range []int{4, 16, 64} {
		seq := benchSeq(pairs)
		b.Run(strconv.Itoa(len(seq))+"ops", func(b *testing.B) {
			a := &Abstracter{Mode: Abstract}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = a.Key(seq)
			}
		})
	}
}

func BenchmarkPairKey(b *testing.B) {
	a := &Abstracter{Mode: Abstract}
	s1, s2 := benchSeq(8), benchSeq(12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.PairKey(s1, s2)
	}
}

// BenchmarkConcreteKey is the no-abstraction baseline of Figure 11 — key
// rendering without collapse.
func BenchmarkConcreteKey(b *testing.B) {
	a := &Abstracter{Mode: Concrete}
	seq := benchSeq(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.Key(seq)
	}
}
