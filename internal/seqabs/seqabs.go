// Package seqabs implements the sequence abstraction of JANUS §5.2:
// generalizing concrete per-location operation sequences into regular
// forms by detecting idempotent subsequences and applying the Kleene-cross
// operator. By Lemma 5.1, the CONFLICT algorithm cannot distinguish a
// sequence from one that repeats an idempotent subsequence, so
// { work+=x; work-=x } abstracts to ({ work+=x; work-=x })+ and matches
// instances of any repetition count.
//
// Abstraction here is a canonicalization: both the training-time sequence
// and the production-time query sequence are abstracted by the same
// deterministic algorithm, so "matching" reduces to equality of rendered
// patterns — an O(1) cache lookup, keeping runtime overhead on a par with
// write-set detection (§5.3).
//
// Argument values never appear in patterns; the commutativity conditions
// stored in the cache re-derive from the concrete arguments at query time
// (see internal/commute), which is what makes per-iteration rebinding of
// the symbolic values (x above) sound.
package seqabs

import (
	"strings"

	"repro/internal/oplog"
	"repro/internal/seqeff"
)

// Elem is one element of an abstract pattern: a block of operation kinds,
// optionally under the Kleene-cross (one or more repetitions).
type Elem struct {
	Kinds []string
	Plus  bool
}

// String renders the element.
func (e Elem) String() string {
	body := strings.Join(e.Kinds, " ")
	if e.Plus {
		return "(" + body + ")+"
	}
	return body
}

// Pattern is the regular abstraction of a sequence.
type Pattern []Elem

// String renders the pattern canonically; equal strings mean equal
// patterns, so this rendering is the cache key.
func (p Pattern) String() string {
	parts := make([]string, len(p))
	for i, e := range p {
		parts[i] = e.String()
	}
	return strings.Join(parts, " · ")
}

// Mode selects whether abstraction is applied — the experimental knob of
// Figure 11 (miss rates with and without sequence abstraction).
type Mode int

// Modes.
const (
	// Concrete renders the kind sequence verbatim (no generalization).
	Concrete Mode = iota
	// Abstract applies the Kleene-cross canonicalization.
	Abstract
)

// String renders the mode.
func (m Mode) String() string {
	if m == Abstract {
		return "abstract"
	}
	return "concrete"
}

// Abstracter abstracts sequences under a fixed mode and idempotence
// predicate. The zero value uses Abstract mode with the seqeff theory.
type Abstracter struct {
	Mode Mode
	// Idem decides idempotence of a concrete block; nil means
	// seqeff.BlockIdempotent.
	Idem func([]oplog.Sym) bool
	// MaxBlock bounds the block length considered for collapsing;
	// 0 means DefaultMaxBlock.
	MaxBlock int
}

// DefaultMaxBlock bounds collapse-candidate block lengths. Dependent
// per-location sequences in real traces are short; the bound keeps
// abstraction linear-ish.
const DefaultMaxBlock = 8

func (a *Abstracter) idem(block []oplog.Sym) bool {
	if a.Idem != nil {
		return a.Idem(block)
	}
	return seqeff.BlockIdempotent(block)
}

// Span records which concrete positions a pattern element covers.
type Span struct {
	Start, End int // half-open [Start, End)
	Block      int // block length for Plus elements (0 otherwise)
}

// Abstract canonicalizes a concrete symbolic sequence into its pattern.
func (a *Abstracter) Abstract(syms []oplog.Sym) Pattern {
	p, _ := a.AbstractWithSpans(syms)
	return p
}

// AbstractWithSpans additionally reports, per pattern element, the
// concrete index range it covers — used by trace tooling and by the
// Lemma 5.1 invariance tests (duplicating one block of a collapsed run
// must leave the pattern unchanged).
func (a *Abstracter) AbstractWithSpans(syms []oplog.Sym) (Pattern, []Span) {
	if a.Mode == Concrete {
		out := make(Pattern, len(syms))
		spans := make([]Span, len(syms))
		for i, s := range syms {
			out[i] = Elem{Kinds: []string{s.Kind}}
			spans[i] = Span{Start: i, End: i + 1}
		}
		return out, spans
	}
	maxBlock := a.MaxBlock
	if maxBlock == 0 {
		maxBlock = DefaultMaxBlock
	}
	var out Pattern
	var spans []Span
	i := 0
	for i < len(syms) {
		k, m := a.findCollapse(syms[i:], maxBlock)
		if k == 0 {
			out = append(out, Elem{Kinds: []string{syms[i].Kind}})
			spans = append(spans, Span{Start: i, End: i + 1})
			i++
			continue
		}
		out = append(out, Elem{Kinds: kinds(syms[i : i+k]), Plus: true})
		spans = append(spans, Span{Start: i, End: i + k*m, Block: k})
		i += k * m
	}
	return out, spans
}

// findCollapse searches at the head of rest for the smallest block length
// k whose block is idempotent, returning k and the number m of consecutive
// shape-equal idempotent repetitions (m ≥ 1). k = 0 means no idempotent
// block starts here.
func (a *Abstracter) findCollapse(rest []oplog.Sym, maxBlock int) (k, m int) {
	limit := maxBlock
	if limit > len(rest) {
		limit = len(rest)
	}
	for k = 1; k <= limit; k++ {
		block := rest[:k]
		if !a.idem(block) {
			continue
		}
		shape := seqeff.ShapeKey(block)
		m = 1
		for {
			start := m * k
			if start+k > len(rest) {
				break
			}
			next := rest[start : start+k]
			if seqeff.ShapeKey(next) != shape || !a.idem(next) {
				break
			}
			m++
		}
		return k, m
	}
	return 0, 0
}

func kinds(syms []oplog.Sym) []string {
	out := make([]string, len(syms))
	for i, s := range syms {
		out[i] = s.Kind
	}
	return out
}

// Key abstracts a sequence and renders its cache key in one step.
func (a *Abstracter) Key(syms []oplog.Sym) string {
	return string(a.AppendKey(nil, syms))
}

// elemSep separates pattern elements in rendered keys (Pattern.String
// uses the same separator).
const elemSep = " · "

// pairSep separates the two sequence keys of a pair key.
const pairSep = " ⇄ "

// AppendKey renders the sequence's cache key directly into dst and
// returns the extended slice. It produces exactly Abstract(syms).String()
// but skips the intermediate Pattern, keeping the production lookup path
// allocation-free (the buffer aside) — the per-query cost §5.3 requires
// to stay "on a par with write-set detection".
func (a *Abstracter) AppendKey(dst []byte, syms []oplog.Sym) []byte {
	if a.Mode == Concrete {
		for i, s := range syms {
			if i > 0 {
				dst = append(dst, elemSep...)
			}
			dst = append(dst, s.Kind...)
		}
		return dst
	}
	maxBlock := a.MaxBlock
	if maxBlock == 0 {
		maxBlock = DefaultMaxBlock
	}
	i := 0
	for i < len(syms) {
		if i > 0 {
			dst = append(dst, elemSep...)
		}
		k, m := a.findCollapse(syms[i:], maxBlock)
		if k == 0 {
			dst = append(dst, syms[i].Kind...)
			i++
			continue
		}
		dst = append(dst, '(')
		for j := 0; j < k; j++ {
			if j > 0 {
				dst = append(dst, ' ')
			}
			dst = append(dst, syms[i+j].Kind...)
		}
		dst = append(dst, ")+"...)
		i += k * m
	}
	return dst
}

// PairKey renders the canonical unordered cache key for a pair of
// sequences: commutativity is symmetric, so the two patterns are sorted
// before joining.
func (a *Abstracter) PairKey(s1, s2 []oplog.Sym) string {
	return string(a.AppendPairKey(nil, s1, s2))
}

// AppendPairKey renders the canonical pair key into dst without any
// intermediate allocation: both keys are rendered in place, and when they
// sort out of order the two segments are swapped by rotation.
func (a *Abstracter) AppendPairKey(dst []byte, s1, s2 []oplog.Sym) []byte {
	start := len(dst)
	dst = a.AppendKey(dst, s1)
	mid := len(dst)
	dst = append(dst, pairSep...)
	sepEnd := len(dst)
	dst = a.AppendKey(dst, s2)
	pair := dst[start:]
	k1, k2 := pair[:mid-start], dst[sepEnd:]
	if string(k2) < string(k1) {
		// Rotate [k1 sep k2] into [k2 sep k1]: reverse each segment,
		// then the whole (the separator's bytes are restored by the
		// double reversal).
		reverseBytes(k1)
		reverseBytes(pair[len(k1) : len(k1)+len(pairSep)])
		reverseBytes(k2)
		reverseBytes(pair)
	}
	return dst
}

// AppendJoinedKeys renders the canonical pair key from two already
// rendered sequence keys (AppendKey output): the keys are sorted and
// joined exactly as AppendPairKey would, without re-abstracting either
// sequence.
func AppendJoinedKeys(dst, k1, k2 []byte) []byte {
	if string(k2) < string(k1) {
		k1, k2 = k2, k1
	}
	dst = append(dst, k1...)
	dst = append(dst, pairSep...)
	return append(dst, k2...)
}

func reverseBytes(b []byte) {
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
}
