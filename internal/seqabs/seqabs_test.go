package seqabs

import (
	"strconv"
	"testing"

	"repro/internal/adt"
	"repro/internal/oplog"
)

func sym(kind, arg string) oplog.Sym { return oplog.Sym{Kind: kind, Arg: arg} }

func addPair(a int) []oplog.Sym {
	return []oplog.Sym{
		sym(adt.KindNumAdd, strconv.Itoa(a)),
		sym(adt.KindNumAdd, strconv.Itoa(-a)),
	}
}

func TestConcreteModeKeepsLength(t *testing.T) {
	a := &Abstracter{Mode: Concrete}
	k1 := a.Key(addPair(2))
	k2 := a.Key(append(addPair(2), addPair(3)...))
	if k1 == k2 {
		t.Fatalf("concrete mode must distinguish lengths: %q vs %q", k1, k2)
	}
	if k1 != "num.add · num.add" {
		t.Errorf("concrete key = %q", k1)
	}
}

// TestPaperExample reproduces the §3 example: { work+=x; work-=x }
// abstracts to ({ work+=x; work-=x })+, and the four-op instance
// { +2; -2; +1; -1 } matches the two-op instance { +3; -3 }.
func TestPaperExample(t *testing.T) {
	a := &Abstracter{Mode: Abstract}
	short := a.Key(addPair(3))
	long := a.Key(append(addPair(2), addPair(1)...))
	if short != long {
		t.Fatalf("abstraction must unify repetition counts: %q vs %q", short, long)
	}
	if short != "(num.add num.add)+" {
		t.Errorf("pattern = %q", short)
	}
}

func TestNonIdempotentNotCollapsed(t *testing.T) {
	a := &Abstracter{Mode: Abstract}
	// add(2); add(3) has net effect +5: not idempotent at any block size.
	key := a.Key([]oplog.Sym{sym(adt.KindNumAdd, "2"), sym(adt.KindNumAdd, "3")})
	if key != "num.add · num.add" {
		t.Errorf("non-idempotent pair must stay literal, got %q", key)
	}
}

func TestSingleOpStoreCollapses(t *testing.T) {
	a := &Abstracter{Mode: Abstract}
	// A pure store is idempotent, so put; put; put collapses to (put)+.
	one := a.Key([]oplog.Sym{sym(adt.KindRelPut, "white")})
	three := a.Key([]oplog.Sym{
		sym(adt.KindRelPut, "white"), sym(adt.KindRelPut, "gray"), sym(adt.KindRelPut, "white"),
	})
	if one != three || one != "(rel.put)+" {
		t.Errorf("put runs must unify: %q vs %q", one, three)
	}
}

func TestStackBalancedCollapses(t *testing.T) {
	a := &Abstracter{Mode: Abstract}
	push := sym(adt.KindListPush, "5")
	pop := sym(adt.KindListPop, "")
	once := a.Key([]oplog.Sym{push, pop})
	twice := a.Key([]oplog.Sym{push, pop, sym(adt.KindListPush, "9"), pop})
	if once != twice || once != "(list.push list.pop)+" {
		t.Errorf("balanced stack runs must unify: %q vs %q", once, twice)
	}
	// Nested balance collapses as one larger idempotent block.
	nested := a.Key([]oplog.Sym{push, push, pop, pop})
	if nested != "(list.push list.push list.pop list.pop)+" {
		t.Errorf("nested pattern = %q", nested)
	}
}

func TestMixedSequence(t *testing.T) {
	a := &Abstracter{Mode: Abstract}
	// load (idempotent alone) then add (not) then identity pair.
	key := a.Key([]oplog.Sym{
		sym(adt.KindNumLoad, ""),
		sym(adt.KindNumAdd, "7"),
		sym(adt.KindNumAdd, "2"), sym(adt.KindNumAdd, "-2"),
	})
	// The leading load collapses to (load)+; add(7) stays; trailing pair:
	// note add(7) followed by add(2),add(-2) — the scanner reaches add(7)
	// and checks blocks starting there: [add] no, [add add] (7,2) no,
	// [add add add] net 7 no; so add(7) literal, then (add add)+.
	want := "(num.load)+ · num.add · (num.add num.add)+"
	if key != want {
		t.Errorf("key = %q, want %q", key, want)
	}
}

func TestMaxBlockBound(t *testing.T) {
	a := &Abstracter{Mode: Abstract, MaxBlock: 2}
	// Identity block of length 3 exceeds the bound: stays literal.
	seq := []oplog.Sym{
		sym(adt.KindNumAdd, "1"), sym(adt.KindNumAdd, "1"), sym(adt.KindNumAdd, "-2"),
	}
	if key := a.Key(seq); key != "num.add · num.add · num.add" {
		t.Errorf("bounded key = %q", key)
	}
	wide := &Abstracter{Mode: Abstract, MaxBlock: 3}
	if key := wide.Key(seq); key != "(num.add num.add num.add)+" {
		t.Errorf("unbounded key = %q", key)
	}
}

func TestCustomIdemPredicate(t *testing.T) {
	never := &Abstracter{Mode: Abstract, Idem: func([]oplog.Sym) bool { return false }}
	if key := never.Key(addPair(1)); key != "num.add · num.add" {
		t.Errorf("custom predicate ignored: %q", key)
	}
}

func TestPairKeySymmetric(t *testing.T) {
	a := &Abstracter{Mode: Abstract}
	s1 := addPair(2)
	s2 := []oplog.Sym{sym(adt.KindNumAdd, "9")}
	if a.PairKey(s1, s2) != a.PairKey(s2, s1) {
		t.Errorf("PairKey must be order-insensitive")
	}
	if a.PairKey(s1, s2) == a.PairKey(s1, s1) {
		t.Errorf("different pairs must have different keys")
	}
}

func TestModeString(t *testing.T) {
	if Concrete.String() != "concrete" || Abstract.String() != "abstract" {
		t.Errorf("mode strings wrong")
	}
}

func TestElemAndPatternString(t *testing.T) {
	p := Pattern{
		{Kinds: []string{"a"}},
		{Kinds: []string{"b", "c"}, Plus: true},
	}
	if p.String() != "a · (b c)+" {
		t.Errorf("Pattern String = %q", p.String())
	}
}

func TestEmptySequence(t *testing.T) {
	a := &Abstracter{Mode: Abstract}
	if key := a.Key(nil); key != "" {
		t.Errorf("empty key = %q", key)
	}
	c := &Abstracter{Mode: Concrete}
	if key := c.Key(nil); key != "" {
		t.Errorf("empty concrete key = %q", key)
	}
}
