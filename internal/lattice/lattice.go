// Package lattice implements the subvalue lattice of JANUS §5.1.
//
// Values assigned to objects are assumed separable into subvalues ordered by
// a partial order ⊑ with join ⊔, meet ⊓, and a subtraction operator defined
// by v − v′ = min{w | w ⊔ v′ = v}. Operation footprints (read, written, and
// frame subvalues) are elements of this lattice, and a dependency between two
// operations exists iff their footprints overlap on a common location
// (Equation 1 in the paper).
//
// Two instantiations cover the system:
//
//   - Unit: the two-point lattice {⊥, ⊤} used for scalar locations, where an
//     access either touches the whole value or nothing.
//   - KeySet: the powerset lattice over tuple/field keys used for relational
//     (ADT) locations, where an access touches a set of tuple keys.
package lattice

import (
	"fmt"
	"sort"
	"strings"
)

// Sub is an element of a subvalue lattice. Implementations must be
// immutable: every operation returns a fresh element.
type Sub interface {
	// IsBottom reports whether the element is the least element ⊥
	// (the empty subvalue: no part of the location is touched).
	IsBottom() bool
	// Leq reports v ⊑ o. It is the partial order of the lattice.
	Leq(o Sub) bool
	// Join returns v ⊔ o, the least upper bound.
	Join(o Sub) Sub
	// Meet returns v ⊓ o, the greatest lower bound.
	Meet(o Sub) Sub
	// Subtract returns v − o = min{w | w ⊔ o ⊒ v}.
	Subtract(o Sub) Sub
	// Overlaps reports v ⊓ o ≠ ⊥, the dependency test of Equation 1.
	Overlaps(o Sub) bool
	// String renders the element for traces and tests.
	String() string
}

// Unit is the two-point lattice for scalar locations: Bottom (untouched)
// and Top (the whole value).
type Unit struct {
	top bool
}

// UnitBottom is the ⊥ of the Unit lattice.
func UnitBottom() Unit { return Unit{top: false} }

// UnitTop is the ⊤ of the Unit lattice: the entire scalar value.
func UnitTop() Unit { return Unit{top: true} }

// IsBottom implements Sub.
func (u Unit) IsBottom() bool { return !u.top }

// IsTop reports whether u is the whole value.
func (u Unit) IsTop() bool { return u.top }

// Leq implements Sub. It panics if o is not a Unit.
func (u Unit) Leq(o Sub) bool {
	return !u.top || o.(Unit).top
}

// Join implements Sub.
func (u Unit) Join(o Sub) Sub {
	return Unit{top: u.top || o.(Unit).top}
}

// Meet implements Sub.
func (u Unit) Meet(o Sub) Sub {
	return Unit{top: u.top && o.(Unit).top}
}

// Subtract implements Sub. In the two-point lattice v − v = ⊥ and v − ⊥ = v.
func (u Unit) Subtract(o Sub) Sub {
	if o.(Unit).top {
		return Unit{top: false}
	}
	return u
}

// Overlaps implements Sub.
func (u Unit) Overlaps(o Sub) bool {
	return u.top && o.(Unit).top
}

// String implements Sub.
func (u Unit) String() string {
	if u.top {
		return "⊤"
	}
	return "⊥"
}

// KeySet is the powerset lattice over string keys, used for relational
// locations where a footprint is the set of tuple keys (or column names)
// an operation touches. The zero value is ⊥ (the empty set).
type KeySet struct {
	keys map[string]struct{}
}

// NewKeySet returns the KeySet containing exactly the given keys.
func NewKeySet(keys ...string) KeySet {
	m := make(map[string]struct{}, len(keys))
	for _, k := range keys {
		m[k] = struct{}{}
	}
	return KeySet{keys: m}
}

// EmptyKeySet returns the ⊥ of the KeySet lattice.
func EmptyKeySet() KeySet { return KeySet{} }

// Has reports whether k is in the set.
func (s KeySet) Has(k string) bool {
	_, ok := s.keys[k]
	return ok
}

// Len returns the number of keys in the set.
func (s KeySet) Len() int { return len(s.keys) }

// Keys returns the keys in sorted order.
func (s KeySet) Keys() []string {
	out := make([]string, 0, len(s.keys))
	for k := range s.keys {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// IsBottom implements Sub.
func (s KeySet) IsBottom() bool { return len(s.keys) == 0 }

// Leq implements Sub: subset inclusion.
func (s KeySet) Leq(o Sub) bool {
	os := o.(KeySet)
	for k := range s.keys {
		if !os.Has(k) {
			return false
		}
	}
	return true
}

// Join implements Sub: set union.
func (s KeySet) Join(o Sub) Sub {
	os := o.(KeySet)
	m := make(map[string]struct{}, len(s.keys)+len(os.keys))
	for k := range s.keys {
		m[k] = struct{}{}
	}
	for k := range os.keys {
		m[k] = struct{}{}
	}
	return KeySet{keys: m}
}

// Meet implements Sub: set intersection.
func (s KeySet) Meet(o Sub) Sub {
	os := o.(KeySet)
	m := make(map[string]struct{})
	for k := range s.keys {
		if os.Has(k) {
			m[k] = struct{}{}
		}
	}
	return KeySet{keys: m}
}

// Subtract implements Sub: set difference.
func (s KeySet) Subtract(o Sub) Sub {
	os := o.(KeySet)
	m := make(map[string]struct{})
	for k := range s.keys {
		if !os.Has(k) {
			m[k] = struct{}{}
		}
	}
	return KeySet{keys: m}
}

// Overlaps implements Sub.
func (s KeySet) Overlaps(o Sub) bool {
	os := o.(KeySet)
	// Iterate the smaller set.
	a, b := s, os
	if len(b.keys) < len(a.keys) {
		a, b = b, a
	}
	for k := range a.keys {
		if b.Has(k) {
			return true
		}
	}
	return false
}

// String implements Sub.
func (s KeySet) String() string {
	return fmt.Sprintf("{%s}", strings.Join(s.Keys(), ","))
}

// Footprint bundles the read and written subvalues of an operation's
// restriction to one location (op_s^r and op_s^w in §5.1).
type Footprint struct {
	Read  Sub
	Write Sub
}

// Depends reports whether two footprints on the same location induce a
// dependency per Equation 1: (w1 ⊔ r1) ⊓ (w2 ⊔ r2) ≠ ⊥ with at least one
// write involved. Pure read/read overlap is an input dependency, which
// Equation 1 subsumes; callers that need flow/anti/output dependencies only
// should use DependsRW.
func Depends(a, b Footprint) bool {
	au := a.Write.Join(a.Read)
	bu := b.Write.Join(b.Read)
	return au.Overlaps(bu)
}

// DependsRW reports a dependency where at least one side writes the
// overlapping subvalue (flow, anti, or output dependency).
func DependsRW(a, b Footprint) bool {
	if a.Write.Overlaps(b.Write) {
		return true
	}
	if a.Write.Overlaps(b.Read) {
		return true
	}
	return b.Write.Overlaps(a.Read)
}
