package lattice

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestUnitBasics(t *testing.T) {
	b, tp := UnitBottom(), UnitTop()
	if !b.IsBottom() || tp.IsBottom() {
		t.Fatalf("bottom/top misclassified")
	}
	if !b.Leq(tp) || tp.Leq(b) {
		t.Errorf("order wrong: ⊥⊑⊤ must hold, ⊤⊑⊥ must not")
	}
	if !b.Leq(b) || !tp.Leq(tp) {
		t.Errorf("Leq not reflexive")
	}
	if got := tp.Join(b); !got.(Unit).IsTop() {
		t.Errorf("⊤⊔⊥ = %v, want ⊤", got)
	}
	if got := tp.Meet(b); !got.IsBottom() {
		t.Errorf("⊤⊓⊥ = %v, want ⊥", got)
	}
	if got := tp.Subtract(tp); !got.IsBottom() {
		t.Errorf("⊤−⊤ = %v, want ⊥", got)
	}
	if got := tp.Subtract(b); !got.(Unit).IsTop() {
		t.Errorf("⊤−⊥ = %v, want ⊤", got)
	}
	if b.Overlaps(tp) || !tp.Overlaps(tp) {
		t.Errorf("overlap wrong")
	}
}

func TestUnitString(t *testing.T) {
	if UnitTop().String() != "⊤" || UnitBottom().String() != "⊥" {
		t.Errorf("unexpected strings %q %q", UnitTop(), UnitBottom())
	}
}

func TestKeySetBasics(t *testing.T) {
	a := NewKeySet("x", "y")
	b := NewKeySet("y", "z")
	if got := a.Join(b).(KeySet).Keys(); !reflect.DeepEqual(got, []string{"x", "y", "z"}) {
		t.Errorf("join = %v", got)
	}
	if got := a.Meet(b).(KeySet).Keys(); !reflect.DeepEqual(got, []string{"y"}) {
		t.Errorf("meet = %v", got)
	}
	if got := a.Subtract(b).(KeySet).Keys(); !reflect.DeepEqual(got, []string{"x"}) {
		t.Errorf("subtract = %v", got)
	}
	if !a.Overlaps(b) {
		t.Errorf("a and b share y, should overlap")
	}
	if a.Overlaps(NewKeySet("q")) {
		t.Errorf("disjoint sets should not overlap")
	}
	if !EmptyKeySet().IsBottom() || a.IsBottom() {
		t.Errorf("bottom misclassified")
	}
	if !EmptyKeySet().Leq(a) || a.Leq(NewKeySet("x")) {
		t.Errorf("order wrong")
	}
	if a.String() != "{x,y}" {
		t.Errorf("String = %q", a.String())
	}
}

func TestKeySetHasLen(t *testing.T) {
	s := NewKeySet("a", "b", "b")
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2 (duplicates collapse)", s.Len())
	}
	if !s.Has("a") || s.Has("c") {
		t.Errorf("Has wrong")
	}
}

// genKeySet builds a small random KeySet for property tests.
func genKeySet(r *rand.Rand) KeySet {
	universe := []string{"a", "b", "c", "d", "e"}
	var ks []string
	for _, k := range universe {
		if r.Intn(2) == 0 {
			ks = append(ks, k)
		}
	}
	return NewKeySet(ks...)
}

func TestKeySetLatticeLaws(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vs []reflect.Value, r *rand.Rand) {
			for i := range vs {
				vs[i] = reflect.ValueOf(genKeySet(r))
			}
		},
	}
	eq := func(a, b Sub) bool {
		return a.Leq(b) && b.Leq(a)
	}
	// Commutativity, associativity, absorption, and the subtraction law
	// (v − v′) ⊔ v′ ⊒ v.
	if err := quick.Check(func(a, b, c KeySet) bool {
		if !eq(a.Join(b), b.Join(a)) || !eq(a.Meet(b), b.Meet(a)) {
			return false
		}
		if !eq(a.Join(b).Join(c), a.Join(b.Join(c))) {
			return false
		}
		if !eq(a.Meet(b).Meet(c), a.Meet(b.Meet(c))) {
			return false
		}
		if !eq(a.Join(a.Meet(b)), a) || !eq(a.Meet(a.Join(b)), a) {
			return false
		}
		return a.Leq(a.Subtract(b).Join(b))
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestKeySetSubtractMinimality(t *testing.T) {
	// v − v′ must be the least w with w ⊔ v′ ⊒ v: removing any key from it
	// breaks coverage.
	a := NewKeySet("x", "y", "z")
	b := NewKeySet("y")
	d := a.Subtract(b).(KeySet)
	for _, k := range d.Keys() {
		smaller := d.Subtract(NewKeySet(k))
		if a.Leq(smaller.Join(b)) {
			t.Errorf("dropping %q from subtraction still covers a; not minimal", k)
		}
	}
}

func TestDepends(t *testing.T) {
	w := Footprint{Read: UnitBottom(), Write: UnitTop()}
	r := Footprint{Read: UnitTop(), Write: UnitBottom()}
	n := Footprint{Read: UnitBottom(), Write: UnitBottom()}
	cases := []struct {
		name    string
		a, b    Footprint
		dep, rw bool
	}{
		{"write-write", w, w, true, true},
		{"write-read", w, r, true, true},
		{"read-write", r, w, true, true},
		{"read-read", r, r, true, false}, // input dependency: Depends yes, DependsRW no
		{"none", n, w, false, false},
		{"none2", r, n, false, false},
	}
	for _, c := range cases {
		if got := Depends(c.a, c.b); got != c.dep {
			t.Errorf("%s: Depends = %v, want %v", c.name, got, c.dep)
		}
		if got := DependsRW(c.a, c.b); got != c.rw {
			t.Errorf("%s: DependsRW = %v, want %v", c.name, got, c.rw)
		}
	}
}

func TestDependsKeySets(t *testing.T) {
	a := Footprint{Read: NewKeySet("k1"), Write: NewKeySet("k2")}
	b := Footprint{Read: NewKeySet("k3"), Write: NewKeySet("k1")}
	if !DependsRW(a, b) {
		t.Errorf("b writes k1 which a reads; must depend")
	}
	c := Footprint{Read: NewKeySet("k9"), Write: NewKeySet("k8")}
	if DependsRW(a, c) {
		t.Errorf("disjoint footprints must not depend")
	}
}
