// Package fsio holds the repo's one atomic-publish idiom: write into a
// temp file in the target's directory, fsync the data, chmod it to the
// world-readable mode a plainly created file would get (CreateTemp makes
// 0600, which breaks cross-user deployments), close, rename into place,
// and fsync the parent directory so the rename itself is durable. A
// crash or full disk at any point leaves either the old artifact or the
// new one at the published path — never a torn file.
//
// janus-train's spec artifacts, the flight-recorder dumps, and the
// serving layer's durable snapshots all publish through this package;
// before it existed each carried its own (subtly different) copy of the
// idiom.
package fsio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Atomic is an in-progress atomic write: a temp file that becomes the
// published artifact at Publish and vanishes on Abort. The zero value is
// not usable; build one with NewAtomic.
type Atomic struct {
	f    *os.File
	path string
	done bool
}

// NewAtomic opens a temp file in path's directory. Exactly one of
// Publish or Abort must follow; Abort after Publish is a no-op, so
// `defer a.Abort()` is the safe idiom.
func NewAtomic(path string) (*Atomic, error) {
	f, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, fmt.Errorf("fsio: creating temp for %s: %w", path, err)
	}
	return &Atomic{f: f, path: path}, nil
}

// Write appends to the temp file; Atomic implements io.Writer.
func (a *Atomic) Write(p []byte) (int, error) { return a.f.Write(p) }

// File exposes the underlying temp file for callers that need more than
// io.Writer (e.g. io.ReaderFrom fast paths). The caller must not close
// or rename it.
func (a *Atomic) File() *os.File { return a.f }

// Publish makes the write durable and visible: chmod 0644, fsync, close,
// rename onto the target path, and fsync the parent directory. On error
// the temp file is removed and the target path is untouched.
func (a *Atomic) Publish() error {
	if a.done {
		return fmt.Errorf("fsio: publish of %s after completion", a.path)
	}
	a.done = true
	fail := func(err error) error {
		a.f.Close()
		os.Remove(a.f.Name())
		return err
	}
	// The published artifact must be world-readable like a plainly
	// created file; CreateTemp made it 0600.
	if err := a.f.Chmod(0o644); err != nil {
		return fail(fmt.Errorf("fsio: chmod %s: %w", a.path, err))
	}
	if err := a.f.Sync(); err != nil {
		return fail(fmt.Errorf("fsio: fsync %s: %w", a.path, err))
	}
	if err := a.f.Close(); err != nil {
		return fail(fmt.Errorf("fsio: close %s: %w", a.path, err))
	}
	if err := os.Rename(a.f.Name(), a.path); err != nil {
		os.Remove(a.f.Name())
		return fmt.Errorf("fsio: publishing %s: %w", a.path, err)
	}
	SyncDir(filepath.Dir(a.path))
	return nil
}

// Abort discards the temp file. Safe after Publish (no-op) and safe to
// defer unconditionally.
func (a *Atomic) Abort() {
	if a.done {
		return
	}
	a.done = true
	a.f.Close()
	os.Remove(a.f.Name())
}

// SyncDir fsyncs a directory so a just-renamed entry survives a machine
// crash. Best-effort: some filesystems refuse directory fsync, and the
// rename is already atomic for process-level crashes.
func SyncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// WriteAtomicFunc publishes whatever fn writes, atomically.
func WriteAtomicFunc(path string, fn func(io.Writer) error) error {
	a, err := NewAtomic(path)
	if err != nil {
		return err
	}
	defer a.Abort()
	if err := fn(a); err != nil {
		return err
	}
	return a.Publish()
}

// WriteAtomic publishes data at path atomically.
func WriteAtomic(path string, data []byte) error {
	return WriteAtomicFunc(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}
