package fsio

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// noTempLeft asserts the directory holds exactly the named files — no
// stray temp files after publish or abort.
func noTempLeft(t *testing.T, dir string, want ...string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, 0, len(ents))
	for _, e := range ents {
		got = append(got, e.Name())
	}
	if len(got) != len(want) {
		t.Fatalf("dir holds %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dir holds %v, want %v", got, want)
		}
	}
}

func TestWriteAtomicPublishes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.bin")
	if err := WriteAtomic(path, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "hello" {
		t.Fatalf("read back %q, %v", data, err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o644 {
		t.Fatalf("mode = %v, want 0644 (CreateTemp's 0600 must not leak)", fi.Mode().Perm())
	}
	noTempLeft(t, dir, "artifact.bin")
}

func TestWriteAtomicReplacesExisting(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.bin")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteAtomic(path, []byte("new")); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "new" {
		t.Fatalf("read back %q", data)
	}
	noTempLeft(t, dir, "artifact.bin")
}

// TestWriteFuncErrorLeavesOldArtifact: a failing writer must abort the
// temp file and leave any previously published artifact untouched.
func TestWriteFuncErrorLeavesOldArtifact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.bin")
	if err := WriteAtomic(path, []byte("keep me")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteAtomicFunc(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "keep me" {
		t.Fatalf("old artifact clobbered: %q", data)
	}
	noTempLeft(t, dir, "artifact.bin")
}

func TestAbortRemovesTemp(t *testing.T) {
	dir := t.TempDir()
	a, err := NewAtomic(filepath.Join(dir, "never.bin"))
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprint(a, "scratch")
	a.Abort()
	a.Abort() // idempotent
	noTempLeft(t, dir)
}

func TestAbortAfterPublishKeepsArtifact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.bin")
	a, err := NewAtomic(path)
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(a, "published")
	if err := a.Publish(); err != nil {
		t.Fatal(err)
	}
	a.Abort() // deferred-abort idiom: must not touch the published file
	data, _ := os.ReadFile(path)
	if string(data) != "published" {
		t.Fatalf("abort after publish removed the artifact: %q", data)
	}
}

// TestTempLivesInTargetDir: the temp file must be created next to the
// target (rename across filesystems is not atomic), named after it.
func TestTempLivesInTargetDir(t *testing.T) {
	dir := t.TempDir()
	a, err := NewAtomic(filepath.Join(dir, "spec.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Abort()
	if filepath.Dir(a.f.Name()) != dir {
		t.Fatalf("temp %s not in target dir %s", a.f.Name(), dir)
	}
	if !strings.Contains(filepath.Base(a.f.Name()), "spec.json") {
		t.Fatalf("temp name %s does not reference target", a.f.Name())
	}
}

func TestNewAtomicMissingDir(t *testing.T) {
	if _, err := NewAtomic(filepath.Join(t.TempDir(), "no", "such", "dir", "f")); err == nil {
		t.Fatal("want error for missing directory")
	}
}
