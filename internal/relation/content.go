package relation

import "repro/internal/logic"

// This file implements the Table 4 update rules on content formulas: each
// primitive relational operation is mirrored as a transformation of the
// propositional formula describing the relation's content. Chaining these
// rules over a sequence of operations yields a symbolic description of the
// sequence's composite effect, which internal/symrel compares for
// equivalence with SAT.

// ContentInsert returns the content formula after "insert r t":
// (fr ∧ ¬∧_{c∈Cdom} c=t_c) ∨ ∧_{c∈C} c=t_c.
func (r *Relation) ContentInsert(fr logic.Formula, t Tuple) logic.Formula {
	return logic.Or(
		logic.And(fr, logic.Not(r.DomainFormula(t))),
		TupleFormula(t),
	)
}

// ContentRemove returns the content formula after "remove r t":
// fr ∧ ¬∧_{c∈C} c=t_c.
func ContentRemove(fr logic.Formula, t Tuple) logic.Formula {
	return logic.And(fr, logic.Not(TupleFormula(t)))
}

// ContentRemoveMatching returns the content formula after removing every
// tuple matching t (the matching-removal JANUS ADT operations use):
// fr ∧ ¬∧_{c∈Cdom} c=t_c.
func (r *Relation) ContentRemoveMatching(fr logic.Formula, t Tuple) logic.Formula {
	return logic.And(fr, logic.Not(r.DomainFormula(t)))
}

// ContentSelect returns the content formula of w := select r φ: fr ∧ φ.
func ContentSelect(fr, sel logic.Formula) logic.Formula {
	return logic.And(fr, sel)
}

// ContentSubtract returns the formula for r′ = r \ w: fr ∧ ¬fw.
func ContentSubtract(fr, fw logic.Formula) logic.Formula {
	return logic.And(fr, logic.Not(fw))
}

// ContentUnion returns the formula for r′ = r ∪ w: fr ∨ fw.
func ContentUnion(fr, fw logic.Formula) logic.Formula {
	return logic.Or(fr, fw)
}

// ContentIntersect returns the formula for r′ = r ∩ w: fr ∧ fw.
func ContentIntersect(fr, fw logic.Formula) logic.Formula {
	return logic.And(fr, fw)
}
