package relation

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/logic"
)

// flat builds an FD-free relation over one column from values.
func flat(vals ...string) *Relation {
	r := New([]string{"x"}, nil)
	for _, v := range vals {
		r.Insert(Tuple{"x": v})
	}
	return r
}

func TestSetOpsBasics(t *testing.T) {
	a := flat("1", "2", "3")
	b := flat("2", "3", "4")

	u, err := a.Union(b)
	if err != nil || u.Len() != 4 {
		t.Fatalf("union = %v, %v", u, err)
	}
	i, err := a.Intersect(b)
	if err != nil || i.Len() != 2 || !i.Has(Tuple{"x": "2"}) || !i.Has(Tuple{"x": "3"}) {
		t.Fatalf("intersect = %v, %v", i, err)
	}
	s, err := a.Subtract(b)
	if err != nil || s.Len() != 1 || !s.Has(Tuple{"x": "1"}) {
		t.Fatalf("subtract = %v, %v", s, err)
	}
	le, err := i.Leq(a)
	if err != nil || !le {
		t.Fatalf("intersection must be ⊑ a")
	}
	le, _ = a.Leq(i)
	if le {
		t.Fatalf("a must not be ⊑ its strict subset")
	}
}

func TestSetOpsSchemaMismatch(t *testing.T) {
	a := flat("1")
	b := New([]string{"y"}, nil)
	if _, err := a.Union(b); err == nil {
		t.Errorf("union across schemas must fail")
	}
	if _, err := a.Intersect(b); err == nil {
		t.Errorf("intersect across schemas must fail")
	}
	if _, err := a.Subtract(b); err == nil {
		t.Errorf("subtract across schemas must fail")
	}
	if _, err := a.Leq(b); err == nil {
		t.Errorf("Leq across schemas must fail")
	}
}

func TestUnionRespectsFD(t *testing.T) {
	a := bitset()
	a.Insert(tup("1", "0"))
	b := bitset()
	b.Insert(tup("1", "1")) // same key, different value
	u, err := a.Union(b)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 1 || !u.Has(tup("1", "1")) {
		t.Fatalf("FD union must keep the right operand's binding: %v", u)
	}
}

// TestSetOpsAgreeWithContentFormulas cross-validates the concrete set
// operations against the Table 4 formula rules on random FD-free
// relations: for every tuple of the universe, membership in the concrete
// result equals the formula's verdict.
func TestSetOpsAgreeWithContentFormulas(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	universe := []string{"0", "1", "2", "3"}
	randomRel := func() *Relation {
		r := New([]string{"x"}, nil)
		for _, v := range universe {
			if rng.Intn(2) == 0 {
				r.Insert(Tuple{"x": v})
			}
		}
		return r
	}
	member := func(f logic.Formula, v string) bool {
		return f.Eval(map[logic.Atom]bool{{Col: "x", Val: v}: true})
	}
	for iter := 0; iter < 200; iter++ {
		a, b := randomRel(), randomRel()
		fa, fb := a.ContentFormula(), b.ContentFormula()
		type opCase struct {
			name    string
			crel    *Relation
			formula logic.Formula
		}
		u, _ := a.Union(b)
		i, _ := a.Intersect(b)
		s, _ := a.Subtract(b)
		cases := []opCase{
			{"union", u, ContentUnion(fa, fb)},
			{"intersect", i, ContentIntersect(fa, fb)},
			{"subtract", s, ContentSubtract(fa, fb)},
		}
		for _, c := range cases {
			for _, v := range universe {
				want := c.crel.Has(Tuple{"x": v})
				got := member(c.formula, v)
				if got != want {
					t.Fatalf("iter %d %s: membership of %s: formula=%v concrete=%v\na=%v b=%v",
						iter, c.name, v, got, want, a, b)
				}
			}
		}
	}
}

// TestSetOpsLatticeLaws checks absorption and the subtraction law on
// random relations.
func TestSetOpsLatticeLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	randomRel := func() *Relation {
		r := New([]string{"x"}, nil)
		n := rng.Intn(6)
		for j := 0; j < n; j++ {
			r.Insert(Tuple{"x": strconv.Itoa(rng.Intn(8))})
		}
		return r
	}
	for iter := 0; iter < 200; iter++ {
		a, b := randomRel(), randomRel()
		u, _ := a.Union(b)
		i, _ := a.Intersect(b)
		// Absorption: a ∩ (a ∪ b) = a and a ∪ (a ∩ b) = a.
		abs1, _ := a.Intersect(u)
		if !abs1.Equal(a) {
			t.Fatalf("iter %d: a ∩ (a∪b) ≠ a", iter)
		}
		abs2, _ := a.Union(i)
		if !abs2.Equal(a) {
			t.Fatalf("iter %d: a ∪ (a∩b) ≠ a", iter)
		}
		// Subtraction: (a \ b) ∪ b ⊒ a.
		d, _ := a.Subtract(b)
		cover, _ := d.Union(b)
		le, _ := a.Leq(cover)
		if !le {
			t.Fatalf("iter %d: (a\\b) ∪ b does not cover a", iter)
		}
	}
}
