// Package relation implements the relational state representation of JANUS
// §6.1: tuples, relations with at most one functional dependency, the
// primitive operations of Table 2 (insert, remove, select), their footprints
// (Table 3), and the propositional content representation of Table 4 used
// for SAT-backed equivalence testing.
//
// A relation specializes, via its functional dependency, into a function
// mapping "locations" (valuations of the FD's domain columns) to associated
// values (valuations of the range columns) — exactly how JANUS encodes ADT
// states such as a BitSet (index → bit) or a Map (key → value).
package relation

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/lattice"
	"repro/internal/logic"
)

// Tuple maps a set of columns to untyped values (rendered as strings).
// Tuples are treated as immutable once inserted into a relation.
type Tuple map[string]string

// Clone returns a copy of t.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	for k, v := range t {
		c[k] = v
	}
	return c
}

// Cols returns the tuple's columns in sorted order.
func (t Tuple) Cols() []string {
	out := make([]string, 0, len(t))
	for c := range t {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Equal reports column-wise equality.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for c, v := range t {
		ov, ok := o[c]
		if !ok || ov != v {
			return false
		}
	}
	return true
}

// Key renders the tuple's restriction to the given columns as a canonical
// string, used as the subvalue-lattice key for footprints.
func (t Tuple) Key(cols []string) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = c + "=" + t[c]
	}
	return strings.Join(parts, ",")
}

// String renders the full tuple canonically.
func (t Tuple) String() string { return "(" + t.Key(t.Cols()) + ")" }

// FD is a functional dependency C1 → C2. Per §6.1, each relation has at
// most one FD, and its domain and range partition the relation's columns.
type FD struct {
	Domain []string
	Range  []string
}

// Relation is a set of tuples over identical columns, optionally governed
// by one functional dependency.
type Relation struct {
	cols   []string // sorted
	fd     *FD
	tuples map[string]Tuple // keyed by full-tuple canonical key
}

// New creates an empty relation over the given columns. fd may be nil.
// It panics if the FD's domain and range do not partition the columns,
// which would violate the §6.1 well-formedness requirement.
func New(cols []string, fd *FD) *Relation {
	sorted := append([]string(nil), cols...)
	sort.Strings(sorted)
	if fd != nil {
		all := append(append([]string(nil), fd.Domain...), fd.Range...)
		sort.Strings(all)
		if len(all) != len(sorted) {
			panic("relation: FD domain+range must partition columns")
		}
		for i := range all {
			if all[i] != sorted[i] {
				panic("relation: FD domain+range must partition columns")
			}
		}
	}
	return &Relation{cols: sorted, fd: fd, tuples: make(map[string]Tuple)}
}

// Cols returns the relation's columns (sorted). Callers must not mutate.
func (r *Relation) Cols() []string { return r.cols }

// FDef returns the relation's functional dependency, or nil.
func (r *Relation) FDef() *FD { return r.fd }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Clone returns a deep copy.
func (r *Relation) Clone() *Relation {
	c := &Relation{cols: r.cols, fd: r.fd, tuples: make(map[string]Tuple, len(r.tuples))}
	for k, t := range r.tuples {
		c.tuples[k] = t.Clone()
	}
	return c
}

// Equal reports set equality of tuples (columns and FD must match too).
func (r *Relation) Equal(o *Relation) bool {
	if len(r.tuples) != len(o.tuples) {
		return false
	}
	for k := range r.tuples {
		if _, ok := o.tuples[k]; !ok {
			return false
		}
	}
	return true
}

// Tuples returns the tuples in canonical (sorted-key) order.
func (r *Relation) Tuples() []Tuple {
	keys := make([]string, 0, len(r.tuples))
	for k := range r.tuples {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Tuple, len(keys))
	for i, k := range keys {
		out[i] = r.tuples[k]
	}
	return out
}

// Has reports whether the relation contains a tuple equal to t.
func (r *Relation) Has(t Tuple) bool {
	_, ok := r.tuples[t.Key(r.cols)]
	return ok
}

// matchCols returns the columns on which the matching relation ~r compares
// tuples: the FD's domain if one is defined, else all common columns.
func (r *Relation) matchCols() []string {
	if r.fd != nil {
		sorted := append([]string(nil), r.fd.Domain...)
		sort.Strings(sorted)
		return sorted
	}
	return r.cols
}

// Matching returns the tuples t' in r with t ~r t' (§6.1).
func (r *Relation) Matching(t Tuple) []Tuple {
	mc := r.matchCols()
	key := t.Key(mc)
	var out []Tuple
	for _, u := range r.Tuples() {
		if u.Key(mc) == key {
			out = append(out, u)
		}
	}
	return out
}

// LocKey returns the subvalue key of tuple t: its valuation on the matching
// columns. Footprints and per-location sequences are indexed by this key.
func (r *Relation) LocKey(t Tuple) string { return t.Key(r.matchCols()) }

// Insert applies "insert r t" of Table 2: first every tuple matching t is
// removed, then t is added. It returns the removed tuples (for logging and
// for inverse replay).
func (r *Relation) Insert(t Tuple) []Tuple {
	removed := r.Matching(t)
	for _, u := range removed {
		delete(r.tuples, u.Key(r.cols))
	}
	r.tuples[t.Key(r.cols)] = t.Clone()
	return removed
}

// Remove applies "remove r t" of Table 2: ensures t is not in the relation.
// It reports whether t was present.
func (r *Relation) Remove(t Tuple) bool {
	k := t.Key(r.cols)
	_, ok := r.tuples[k]
	delete(r.tuples, k)
	return ok
}

// Select applies "w := select r f" of Table 2: the sub-relation of tuples
// satisfying f.
func (r *Relation) Select(f logic.Formula) *Relation {
	w := New(r.cols, r.fd)
	for k, t := range r.tuples {
		if f.Eval(tupleAssignment(t)) {
			w.tuples[k] = t
		}
	}
	return w
}

// tupleAssignment renders the tuple as a truth assignment over
// column=value atoms, for evaluating Table 1 formulas against it.
func tupleAssignment(t Tuple) map[logic.Atom]bool {
	asn := make(map[logic.Atom]bool, len(t))
	for c, v := range t {
		asn[logic.Atom{Col: c, Val: v}] = true
	}
	return asn
}

// InsertFootprint returns the Table 3 footprint of "insert r t" in the
// current state: it writes the subvalue keyed by t's location and reads
// nothing (the insert overwrites unconditionally).
func (r *Relation) InsertFootprint(t Tuple) lattice.Footprint {
	return lattice.Footprint{
		Read:  lattice.EmptyKeySet(),
		Write: lattice.NewKeySet(r.LocKey(t)),
	}
}

// RemoveFootprint returns the Table 3 footprint of "remove r t". Following
// §6.2, t belongs in the read set when r does not contain t (the operation
// observes absence); it is written when present.
func (r *Relation) RemoveFootprint(t Tuple) lattice.Footprint {
	key := r.LocKey(t)
	if r.Has(t) {
		return lattice.Footprint{Read: lattice.EmptyKeySet(), Write: lattice.NewKeySet(key)}
	}
	return lattice.Footprint{Read: lattice.NewKeySet(key), Write: lattice.EmptyKeySet()}
}

// SelectFootprint returns the Table 3 footprint of "select r f": a read of
// every location whose tuple the selection inspects. When f pins all the
// matching columns to constants the read narrows to those keys; otherwise
// the whole relation is read (each tuple's membership influences the
// result).
func (r *Relation) SelectFootprint(f logic.Formula) lattice.Footprint {
	if keys, ok := pinnedKeys(f, r.matchCols()); ok {
		return lattice.Footprint{Read: lattice.NewKeySet(keys...), Write: lattice.EmptyKeySet()}
	}
	keys := make([]string, 0, len(r.tuples))
	seen := make(map[string]struct{})
	for _, t := range r.tuples {
		k := r.LocKey(t)
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			keys = append(keys, k)
		}
	}
	// Absence of any other key is also observed; represent with a
	// distinguished whole-relation key joined with the present keys.
	keys = append(keys, WholeRelationKey)
	return lattice.Footprint{Read: lattice.NewKeySet(keys...), Write: lattice.EmptyKeySet()}
}

// WholeRelationKey is the distinguished footprint key standing for the
// relation's full extent (membership of every location, including absent
// ones). Unpinned selects read it; it overlaps every write via the
// ExtentKey convention applied by callers building footprints.
const WholeRelationKey = "*"

// pinnedKeys reports whether formula f is a disjunction of full matching-
// column pinnings, returning the corresponding keys. For example, with
// matching columns {idx}, the formula idx=3 ∨ idx=5 pins keys
// {"idx=3","idx=5"}.
func pinnedKeys(f logic.Formula, matchCols []string) ([]string, bool) {
	disjuncts := orList(f)
	var keys []string
	for _, d := range disjuncts {
		t, ok := conjunctionToTuple(d)
		if !ok {
			return nil, false
		}
		for _, c := range matchCols {
			if _, has := t[c]; !has {
				return nil, false
			}
		}
		keys = append(keys, t.Key(matchCols))
	}
	return keys, true
}

func orList(f logic.Formula) []logic.Formula {
	if o, ok := f.(logic.OrF); ok {
		return o.Fs
	}
	return []logic.Formula{f}
}

// conjunctionToTuple interprets a conjunction of atoms as a partial tuple.
func conjunctionToTuple(f logic.Formula) (Tuple, bool) {
	var atoms []logic.Atom
	switch g := f.(type) {
	case logic.Atom:
		atoms = []logic.Atom{g}
	case logic.AndF:
		for _, sub := range g.Fs {
			a, ok := sub.(logic.Atom)
			if !ok {
				return nil, false
			}
			atoms = append(atoms, a)
		}
	default:
		return nil, false
	}
	t := make(Tuple, len(atoms))
	for _, a := range atoms {
		if prev, dup := t[a.Col]; dup && prev != a.Val {
			return nil, false
		}
		t[a.Col] = a.Val
	}
	return t, true
}

// ContentFormula returns the Table 4 propositional representation of the
// relation's content: the disjunction over tuples of the conjunction of
// their column=value atoms. The empty relation is false.
func (r *Relation) ContentFormula() logic.Formula {
	var disjuncts []logic.Formula
	for _, t := range r.Tuples() {
		var conj []logic.Formula
		for _, c := range t.Cols() {
			conj = append(conj, logic.Atom{Col: c, Val: t[c]})
		}
		disjuncts = append(disjuncts, logic.And(conj...))
	}
	return logic.Or(disjuncts...)
}

// TupleFormula returns ∧_c c=t_c for tuple t (used in the Table 4 update
// rules).
func TupleFormula(t Tuple) logic.Formula {
	var conj []logic.Formula
	for _, c := range t.Cols() {
		conj = append(conj, logic.Atom{Col: c, Val: t[c]})
	}
	return logic.And(conj...)
}

// DomainFormula returns ∧_{c∈dom} c=t_c, the match condition used by the
// Table 4 insert rule.
func (r *Relation) DomainFormula(t Tuple) logic.Formula {
	var conj []logic.Formula
	for _, c := range r.matchCols() {
		conj = append(conj, logic.Atom{Col: c, Val: t[c]})
	}
	return logic.And(conj...)
}

// String renders the relation canonically for traces and golden tests.
func (r *Relation) String() string {
	ts := r.Tuples()
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return fmt.Sprintf("{%s}", strings.Join(parts, " "))
}
