package relation

import "fmt"

// Concrete set operations of §6.1: the partial order on relations is
// subset inclusion, join is set union, meet is set intersection, and
// subtraction is set subtraction. These mirror the formula-level rules of
// content.go (ContentUnion/ContentIntersect/ContentSubtract) on concrete
// relation states; the cross-agreement is property-tested.

// compatible checks that two relations share schema and FD.
func (r *Relation) compatible(o *Relation) error {
	if len(r.cols) != len(o.cols) {
		return fmt.Errorf("relation: schema mismatch: %v vs %v", r.cols, o.cols)
	}
	for i := range r.cols {
		if r.cols[i] != o.cols[i] {
			return fmt.Errorf("relation: schema mismatch: %v vs %v", r.cols, o.cols)
		}
	}
	return nil
}

// Leq reports r ⊑ o: every tuple of r is in o (subset inclusion).
func (r *Relation) Leq(o *Relation) (bool, error) {
	if err := r.compatible(o); err != nil {
		return false, err
	}
	for k := range r.tuples {
		if _, ok := o.tuples[k]; !ok {
			return false, nil
		}
	}
	return true, nil
}

// Union returns r ∪ o as a new relation (the lattice join). The result
// keeps r's functional dependency; when the union would violate it (two
// tuples matching on the FD domain with different ranges), the right
// operand's tuple wins, consistent with applying o's tuples as Table 2
// inserts.
func (r *Relation) Union(o *Relation) (*Relation, error) {
	if err := r.compatible(o); err != nil {
		return nil, err
	}
	out := r.Clone()
	for _, t := range o.Tuples() {
		out.Insert(t)
	}
	return out, nil
}

// Intersect returns r ∩ o as a new relation (the lattice meet).
func (r *Relation) Intersect(o *Relation) (*Relation, error) {
	if err := r.compatible(o); err != nil {
		return nil, err
	}
	out := New(r.cols, r.fd)
	for k, t := range r.tuples {
		if _, ok := o.tuples[k]; ok {
			out.tuples[k] = t.Clone()
		}
	}
	return out, nil
}

// Subtract returns r \ o as a new relation (the lattice subtraction).
func (r *Relation) Subtract(o *Relation) (*Relation, error) {
	if err := r.compatible(o); err != nil {
		return nil, err
	}
	out := New(r.cols, r.fd)
	for k, t := range r.tuples {
		if _, ok := o.tuples[k]; !ok {
			out.tuples[k] = t.Clone()
		}
	}
	return out, nil
}
