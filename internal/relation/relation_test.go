package relation

import (
	"math/rand"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/lattice"
	"repro/internal/logic"
)

func bitset() *Relation {
	// The paper's running example: BitSet as a 2-ary relation mapping
	// integral indices to boolean values, FD idx → val.
	return New([]string{"idx", "val"}, &FD{Domain: []string{"idx"}, Range: []string{"val"}})
}

func tup(idx, val string) Tuple { return Tuple{"idx": idx, "val": val} }

func TestNewValidatesFD(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("FD not partitioning columns must panic")
		}
	}()
	New([]string{"a", "b"}, &FD{Domain: []string{"a"}, Range: []string{"c"}})
}

func TestInsertReplacesMatching(t *testing.T) {
	r := bitset()
	r.Insert(tup("3", "0"))
	removed := r.Insert(tup("3", "1"))
	if len(removed) != 1 || removed[0]["val"] != "0" {
		t.Fatalf("insert must evict the matching tuple, removed=%v", removed)
	}
	if r.Len() != 1 || !r.Has(tup("3", "1")) || r.Has(tup("3", "0")) {
		t.Fatalf("state after replace: %v", r)
	}
}

func TestInsertNoFDMatchesAllColumns(t *testing.T) {
	r := New([]string{"a", "b"}, nil)
	r.Insert(Tuple{"a": "1", "b": "2"})
	removed := r.Insert(Tuple{"a": "1", "b": "3"})
	if len(removed) != 0 {
		t.Fatalf("without FD, tuples differing in any column do not match; removed=%v", removed)
	}
	if r.Len() != 2 {
		t.Fatalf("Len=%d, want 2", r.Len())
	}
}

func TestRemove(t *testing.T) {
	r := bitset()
	r.Insert(tup("1", "1"))
	if !r.Remove(tup("1", "1")) {
		t.Errorf("remove of present tuple must report true")
	}
	if r.Remove(tup("1", "1")) {
		t.Errorf("remove of absent tuple must report false")
	}
	if r.Len() != 0 {
		t.Errorf("Len=%d, want 0", r.Len())
	}
}

func TestSelect(t *testing.T) {
	r := bitset()
	r.Insert(tup("1", "1"))
	r.Insert(tup("2", "0"))
	r.Insert(tup("3", "1"))
	w := r.Select(logic.Atom{Col: "val", Val: "1"})
	if w.Len() != 2 || !w.Has(tup("1", "1")) || !w.Has(tup("3", "1")) {
		t.Fatalf("select val=1 = %v", w)
	}
	empty := r.Select(logic.False)
	if empty.Len() != 0 {
		t.Fatalf("select false must be empty")
	}
	all := r.Select(logic.True)
	if !all.Equal(r) {
		t.Fatalf("select true must be identity")
	}
}

func TestMatchingAndLocKey(t *testing.T) {
	r := bitset()
	r.Insert(tup("7", "1"))
	m := r.Matching(tup("7", "0"))
	if len(m) != 1 || m[0]["val"] != "1" {
		t.Fatalf("Matching = %v", m)
	}
	if got := r.LocKey(tup("7", "0")); got != "idx=7" {
		t.Fatalf("LocKey = %q", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := bitset()
	r.Insert(tup("1", "1"))
	c := r.Clone()
	c.Insert(tup("2", "1"))
	if r.Len() != 1 {
		t.Fatalf("mutating clone affected original")
	}
	if !r.Equal(r.Clone()) {
		t.Fatalf("clone must equal original")
	}
}

func TestFootprints(t *testing.T) {
	r := bitset()
	r.Insert(tup("1", "1"))

	ins := r.InsertFootprint(tup("2", "1"))
	if !ins.Write.(lattice.KeySet).Has("idx=2") || !ins.Read.IsBottom() {
		t.Errorf("insert footprint = %+v", ins)
	}

	remPresent := r.RemoveFootprint(tup("1", "1"))
	if !remPresent.Write.(lattice.KeySet).Has("idx=1") || !remPresent.Read.IsBottom() {
		t.Errorf("remove-present footprint = %+v", remPresent)
	}
	remAbsent := r.RemoveFootprint(tup("9", "1"))
	if !remAbsent.Read.(lattice.KeySet).Has("idx=9") || !remAbsent.Write.IsBottom() {
		t.Errorf("remove-absent footprint must read absence: %+v", remAbsent)
	}

	pinned := r.SelectFootprint(logic.Atom{Col: "idx", Val: "1"})
	if got := pinned.Read.(lattice.KeySet).Keys(); !reflect.DeepEqual(got, []string{"idx=1"}) {
		t.Errorf("pinned select footprint = %v", got)
	}
	un := r.SelectFootprint(logic.Atom{Col: "val", Val: "1"})
	if !un.Read.(lattice.KeySet).Has(WholeRelationKey) {
		t.Errorf("unpinned select must read the whole-relation key: %v", un.Read)
	}
}

func TestPinnedKeysDisjunction(t *testing.T) {
	r := bitset()
	f := logic.Or(
		logic.And(logic.Atom{Col: "idx", Val: "1"}, logic.Atom{Col: "val", Val: "1"}),
		logic.Atom{Col: "idx", Val: "5"},
	)
	fp := r.SelectFootprint(f)
	got := fp.Read.(lattice.KeySet).Keys()
	if !reflect.DeepEqual(got, []string{"idx=1", "idx=5"}) {
		t.Errorf("keys = %v", got)
	}
}

func TestContentFormulaMatchesConcrete(t *testing.T) {
	// Random op sequences: the Table 4 symbolic content must agree with
	// the concrete relation on every tuple of a small universe.
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 200; iter++ {
		r := bitset()
		f := r.ContentFormula()
		for step := 0; step < 10; step++ {
			idx := strconv.Itoa(rng.Intn(3))
			val := strconv.Itoa(rng.Intn(2))
			u := tup(idx, val)
			if rng.Intn(2) == 0 {
				f = r.ContentInsert(f, u)
				r.Insert(u)
			} else {
				f = ContentRemove(f, u)
				r.Remove(u)
			}
		}
		// Check agreement on the full universe.
		for i := 0; i < 3; i++ {
			for v := 0; v < 2; v++ {
				u := tup(strconv.Itoa(i), strconv.Itoa(v))
				asn := map[logic.Atom]bool{
					{Col: "idx", Val: u["idx"]}: true,
					{Col: "val", Val: u["val"]}: true,
				}
				if got, want := f.Eval(asn), r.Has(u); got != want {
					t.Fatalf("iter %d: formula says %v, relation says %v for %v\nf=%v\nr=%v",
						iter, got, want, u, f, r)
				}
			}
		}
	}
}

func TestContentSetOps(t *testing.T) {
	a := logic.Atom{Col: "x", Val: "1"}
	b := logic.Atom{Col: "x", Val: "2"}
	if !logic.EquivalentBrute(ContentUnion(a, b), logic.Or(a, b)) {
		t.Errorf("union")
	}
	if !logic.EquivalentBrute(ContentIntersect(a, b), logic.And(a, b)) {
		t.Errorf("intersect")
	}
	if !logic.EquivalentBrute(ContentSubtract(a, b), logic.And(a, logic.Not(b))) {
		t.Errorf("subtract")
	}
	if !logic.EquivalentBrute(ContentSelect(a, b), logic.And(a, b)) {
		t.Errorf("select")
	}
}

func TestTupleBasics(t *testing.T) {
	u := tup("1", "0")
	if !u.Equal(u.Clone()) {
		t.Errorf("clone must be equal")
	}
	if u.Equal(tup("1", "1")) || u.Equal(Tuple{"idx": "1"}) {
		t.Errorf("inequality cases failed")
	}
	if got := u.String(); got != "(idx=1,val=0)" {
		t.Errorf("String = %q", got)
	}
	if got := u.Cols(); !reflect.DeepEqual(got, []string{"idx", "val"}) {
		t.Errorf("Cols = %v", got)
	}
}

func TestRelationString(t *testing.T) {
	r := bitset()
	r.Insert(tup("2", "1"))
	r.Insert(tup("1", "0"))
	if got := r.String(); got != "{(idx=1,val=0) (idx=2,val=1)}" {
		t.Errorf("String = %q", got)
	}
}
