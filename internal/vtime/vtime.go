// Package vtime executes the JANUS protocol on a simulated T-thread
// machine under deterministic virtual time — the testbed substitute for
// the paper's 4-core/8-thread Nehalem (see DESIGN.md).
//
// The simulator is a discrete-event reenactment of Figure 7, not a
// statistical model: every transaction attempt really executes its task
// against a privatized snapshot, producing a real operation log; conflict
// detection really runs the configured detector (write-set or trained
// sequence-based) against the real committed history; aborted attempts
// really re-execute. Only *time* is synthetic: each action is charged
// calibrated cost units, commits serialize on the write lock, and the
// run's makespan is the latest commit completion. Speedup is the
// sequential baseline's cost divided by the makespan.
//
// Because aborts, wasted re-execution, detection work, and commit
// serialization all emerge from the actual protocol and detector code,
// the Figure 9/10 phenomena (write-set slowdown, sequence-based speedup,
// retry-rate gap, the overhead-bound JGraphT-2 plateau) are reproduced
// mechanically rather than assumed.
package vtime

import (
	"container/heap"
	"fmt"

	"repro/internal/adt"
	"repro/internal/conflict"
	"repro/internal/obs"
	"repro/internal/oplog"
	"repro/internal/persist"
	"repro/internal/state"
)

// Cost calibrates virtual-time charges, in abstract units (≈ nanoseconds
// of the paper-era testbed; only ratios matter).
type Cost struct {
	// Op is the cost of one logged shared-state operation during
	// transactional execution (instrumentation, footprint recording,
	// private-state application).
	Op float64
	// SeqOp is the cost of the same operation in the unsynchronized
	// sequential baseline (a plain memory/ADT operation).
	SeqOp float64
	// LocalUnit is the cost of one adt.LocalWork unit in either mode.
	LocalUnit float64
	// Begin is CREATETRANSACTION's fixed cost.
	Begin float64
	// PrivatizePerLoc is charged per shared location faulted into the
	// transaction's private state (copy-on-access privatization).
	PrivatizePerLoc float64
	// DetectPerOp is charged per operation examined by conflict
	// detection (the transaction's log plus its conflict history).
	DetectPerOp float64
	// CommitBase and the replay costs are charged inside the write lock,
	// serializing committers: replay re-executes writes at full cost and
	// skips reads cheaply.
	CommitBase       float64
	ReplayWritePerOp float64
	ReplayReadPerOp  float64
}

// DefaultCost is calibrated so that a logged transactional operation costs
// ~10x a plain one (instrumentation + privatization bookkeeping), matching
// the single-thread overhead regime the paper reports (1-thread speedups
// below 1).
func DefaultCost() Cost {
	return Cost{
		Op:               300,
		SeqOp:            30,
		LocalUnit:        1,
		Begin:            500,
		PrivatizePerLoc:  100,
		DetectPerOp:      20,
		CommitBase:       300,
		ReplayWritePerOp: 300,
		ReplayReadPerOp:  30,
	}
}

// Machine models the simulated host's compute capacity: Cores physical
// cores, each multiplexing two hardware threads, with an SMT sibling
// contributing SMTBonus of a core's throughput — the paper's testbed is
// a 4-core Nehalem with 2-way SMT (§7.1). T software threads yield an
// effective concurrency of round(min(T, Cores) + SMTBonus·max(0,
// min(T, 2·Cores) − Cores)) simultaneously executing transactions; the
// simulated scheduler never runs more attempts in parallel than that.
type Machine struct {
	Cores    int
	SMTBonus float64
}

// DefaultMachine is the paper's 4-core, 8-hardware-thread testbed.
func DefaultMachine() Machine { return Machine{Cores: 4, SMTBonus: 0.25} }

// effective returns the number of concurrently executing transactions T
// software threads achieve on this machine.
func (m Machine) effective(threads int) int {
	if m.Cores <= 0 || threads <= m.Cores {
		return threads
	}
	hw := threads
	if hw > 2*m.Cores {
		hw = 2 * m.Cores
	}
	eff := int(float64(m.Cores) + m.SMTBonus*float64(hw-m.Cores) + 0.5)
	if eff < 1 {
		eff = 1
	}
	return eff
}

// Config parameterizes a simulated run.
type Config struct {
	// Threads is the simulated hardware thread count.
	Threads int
	// Ordered makes commits follow task order.
	Ordered bool
	// Detector is the conflict-detection algorithm (nil = write-set).
	Detector conflict.Detector
	// Cost is the calibration; the zero value means DefaultCost.
	Cost *Cost
	// Machine models compute capacity; the zero value means
	// DefaultMachine.
	Machine *Machine
	// RecordTimeline captures per-task scheduling records in
	// Stats.Timeline (first start, commit completion, attempts).
	RecordTimeline bool
	// MaxRetries guards against livelock (0 = unlimited).
	MaxRetries int
}

// Stats reports a simulated run.
type Stats struct {
	Tasks     int
	Commits   int64
	Retries   int64
	Conflicts int64
	// AbortReasons breaks Conflicts down by the detector check that
	// failed (reason name → count); nil when no conflicts occurred.
	AbortReasons map[string]int64
	// Makespan is the virtual completion time of the parallel run.
	Makespan float64
	// SeqCost is the virtual cost of the sequential baseline.
	SeqCost float64
	// Speedup = SeqCost / Makespan.
	Speedup float64
	// Timeline holds per-task scheduling records in commit order when
	// Config.RecordTimeline is set.
	Timeline []TaskTiming
}

// TaskTiming is one task's simulated schedule.
type TaskTiming struct {
	Task     int
	Start    float64 // first attempt's begin time
	Commit   float64 // commit completion time
	Attempts int     // executions (1 + retries)
}

// RetryRatio returns retries per transaction (Figure 10).
func (s Stats) RetryRatio() float64 {
	if s.Tasks == 0 {
		return 0
	}
	return float64(s.Retries) / float64(s.Tasks)
}

// txExec is the simulated transaction executor: it applies ops to a
// faulting private state, logs them, and accounts costs.
type txExec struct {
	tid     int
	priv    *state.State
	snap    *state.State
	log     oplog.Log
	local   int64
	touched map[state.Loc]struct{}
}

// Exec implements adt.Executor.
func (t *txExec) Exec(op oplog.Op) (state.Value, error) {
	acc := op.Accesses(t.priv)
	v, err := op.Apply(t.priv)
	if err != nil {
		return nil, err
	}
	for _, a := range acc {
		t.touched[a.P.Loc()] = struct{}{}
	}
	t.log = append(t.log, &oplog.Event{
		Op: op, Task: t.tid, Seq: len(t.log), Acc: acc, Observed: v,
	})
	return v, nil
}

// AddLocalWork implements adt.CostSink.
func (t *txExec) AddLocalWork(units int64) { t.local += units }

// event is one pending try-commit in the simulation.
type event struct {
	time     float64
	seq      int
	tid      int
	tx       *txExec
	beginVer int64
	retries  int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

type histEntry struct {
	ver int64
	log oplog.Log
}

type runner struct {
	cfg      Config
	cost     Cost
	workers  int
	detector conflict.Detector
	tasks    []adt.Task

	version *persist.Map[state.Value]
	clock   int64
	history []histEntry

	events     eventHeap
	seq        int
	parked     map[int]*event // ordered mode: tid → waiting event
	nextTask   int
	commitFree float64
	makespan   float64
	stats      Stats
	starts     map[int]float64 // first attempt begin per task
	attempts   map[int]int
}

// Run simulates the parallel execution of tasks from the initial state.
// It returns the final committed state and the run statistics, including
// the sequential-baseline cost and the resulting speedup.
func Run(cfg Config, initial *state.State, tasks []adt.Task) (*state.State, Stats, error) {
	if cfg.Threads <= 0 {
		return nil, Stats{}, fmt.Errorf("vtime: Threads must be positive")
	}
	cost := DefaultCost()
	if cfg.Cost != nil {
		cost = *cfg.Cost
	}
	det := cfg.Detector
	if det == nil {
		det = conflict.NewWriteSet()
	}
	machine := DefaultMachine()
	if cfg.Machine != nil {
		machine = *cfg.Machine
	}
	r := &runner{
		cfg:      cfg,
		cost:     cost,
		workers:  machine.effective(cfg.Threads),
		detector: det,
		tasks:    tasks,
		clock:    1,
		parked:   make(map[int]*event),
		starts:   make(map[int]float64),
		attempts: make(map[int]int),
	}
	r.stats.Tasks = len(tasks)

	seqCost, err := r.sequentialCost(initial)
	if err != nil {
		return nil, Stats{}, err
	}
	r.stats.SeqCost = seqCost

	m := persist.NewMap[state.Value]()
	for _, loc := range initial.Locs() {
		v, _ := initial.Get(loc)
		m = m.Set(string(loc), v.CloneValue())
	}
	r.version = m

	// Seed the workers (bounded by the machine's effective concurrency).
	for w := 0; w < r.workers && r.nextTask < len(tasks); w++ {
		if err := r.startAttempt(r.nextTask+1, 0, 0); err != nil {
			return nil, Stats{}, err
		}
		r.nextTask++
	}

	for len(r.events) > 0 {
		e := heap.Pop(&r.events).(*event)
		if err := r.process(e); err != nil {
			return nil, Stats{}, err
		}
	}
	if int64(r.stats.Tasks) != r.stats.Commits {
		return nil, Stats{}, fmt.Errorf("vtime: %d tasks but %d commits (ordered deadlock?)", r.stats.Tasks, r.stats.Commits)
	}
	if r.makespan > 0 {
		r.stats.Speedup = r.stats.SeqCost / r.makespan
	}
	r.stats.Makespan = r.makespan

	final := state.New()
	r.version.Range(func(k string, v state.Value) bool {
		final.Set(state.Loc(k), v.CloneValue())
		return true
	})
	return final, r.stats, nil
}

// sequentialCost executes the tasks unsynchronized against a scratch
// state, charging baseline costs.
func (r *runner) sequentialCost(initial *state.State) (float64, error) {
	st := initial.Clone()
	total := 0.0
	for i, task := range r.tasks {
		ex := &txExec{tid: i + 1, priv: st, touched: make(map[state.Loc]struct{})}
		if err := task(ex); err != nil {
			return 0, fmt.Errorf("vtime: sequential task %d: %w", i+1, err)
		}
		total += float64(len(ex.log))*r.cost.SeqOp + float64(ex.local)*r.cost.LocalUnit
	}
	return total, nil
}

// startAttempt executes one transaction attempt beginning at virtual time
// `at` and schedules its try-commit event.
func (r *runner) startAttempt(tid int, at float64, retries int) error {
	if retries == 0 {
		r.starts[tid] = at
	}
	r.attempts[tid]++
	ver := r.version
	fault := func(l state.Loc) (state.Value, bool) { return ver.Get(string(l)) }
	tx := &txExec{
		tid:     tid,
		priv:    state.NewFaulting(fault),
		snap:    state.NewFaulting(fault),
		touched: make(map[state.Loc]struct{}),
	}
	if err := r.tasks[tid-1](tx); err != nil {
		return fmt.Errorf("vtime: task %d: %w", tid, err)
	}
	dur := r.cost.Begin +
		float64(len(tx.touched))*r.cost.PrivatizePerLoc +
		float64(len(tx.log))*r.cost.Op +
		float64(tx.local)*r.cost.LocalUnit
	r.seq++
	heap.Push(&r.events, &event{
		time: at + dur, seq: r.seq, tid: tid, tx: tx,
		beginVer: r.clock, retries: retries,
	})
	return nil
}

// window returns the logs committed after beginVer, one per transaction
// in commit order.
func (r *runner) window(beginVer int64) []oplog.Log {
	var out []oplog.Log
	for _, h := range r.history {
		if h.ver > beginVer {
			out = append(out, h.log)
		}
	}
	return out
}

func (r *runner) process(e *event) error {
	if r.cfg.Ordered && r.clock != int64(e.tid) {
		// Execution finished but predecessors have not committed; the
		// worker parks until the clock reaches this task (Figure 7's
		// ordered wait).
		r.parked[e.tid] = e
		return nil
	}
	committed := r.window(e.beginVer)
	windowOps := 0
	for _, c := range committed {
		windowOps += len(c)
	}
	detectCost := r.cost.DetectPerOp * float64(len(e.tx.log)+windowOps)
	t := e.time + detectCost
	if v := r.detector.DetectV(obs.Ctx{}, e.tx.snap, e.tx.log, committed); v.Conflict {
		r.stats.Conflicts++
		r.stats.Retries++
		if r.stats.AbortReasons == nil {
			r.stats.AbortReasons = make(map[string]int64)
		}
		r.stats.AbortReasons[v.Reason.String()]++
		if r.cfg.MaxRetries > 0 && e.retries+1 >= r.cfg.MaxRetries {
			return fmt.Errorf("vtime: task %d exceeded %d retries", e.tid, r.cfg.MaxRetries)
		}
		return r.startAttempt(e.tid, t, e.retries+1)
	}
	// Commit: serialized on the write lock.
	start := t
	if r.commitFree > start {
		start = r.commitFree
	}
	var replay float64
	for _, ev := range e.tx.log {
		wrote := false
		for _, a := range ev.Acc {
			if a.Write {
				wrote = true
				break
			}
		}
		if wrote {
			replay += r.cost.ReplayWritePerOp
		} else {
			replay += r.cost.ReplayReadPerOp
		}
	}
	done := start + r.cost.CommitBase + replay
	r.commitFree = done
	if err := r.publish(e.tx.log); err != nil {
		return err
	}
	r.clock++
	r.history = append(r.history, histEntry{ver: r.clock, log: e.tx.log})
	if done > r.makespan {
		r.makespan = done
	}
	r.stats.Commits++
	if r.cfg.RecordTimeline {
		r.stats.Timeline = append(r.stats.Timeline, TaskTiming{
			Task:     e.tid,
			Start:    r.starts[e.tid],
			Commit:   done,
			Attempts: r.attempts[e.tid],
		})
	}
	// The committing worker picks up the next pending task.
	if r.nextTask < len(r.tasks) {
		r.nextTask++
		if err := r.startAttempt(r.nextTask, done, 0); err != nil {
			return err
		}
	}
	// Wake the ordered successor, if it is already parked.
	if r.cfg.Ordered {
		if next, ok := r.parked[int(r.clock)]; ok {
			delete(r.parked, int(r.clock))
			if next.time < done {
				next.time = done
			}
			r.seq++
			next.seq = r.seq
			heap.Push(&r.events, next)
		}
	}
	return nil
}

// publish replays the committed log onto a faulting overlay of the
// current version and publishes the written locations.
func (r *runner) publish(log oplog.Log) error {
	ver := r.version
	tmp := state.NewFaulting(func(l state.Loc) (state.Value, bool) {
		return ver.Get(string(l))
	})
	if err := log.Replay(tmp); err != nil {
		return err
	}
	written := make(map[state.Loc]struct{})
	for _, e := range log {
		for _, a := range e.Acc {
			if a.Write {
				written[a.P.Loc()] = struct{}{}
			}
		}
	}
	for loc := range written {
		if v, ok := tmp.Get(loc); ok {
			ver = ver.Set(string(loc), v.CloneValue())
		}
	}
	r.version = ver
	return nil
}
