package vtime

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/adt"
	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/oplog"
	"repro/internal/state"
	"repro/internal/stm"
	"repro/internal/workloads"
)

func initialState() *state.State {
	st := state.New()
	st.Set("work", state.Int(0))
	st.Set("log", state.IntList{})
	return st
}

func addTask(n int64) adt.Task {
	return func(ex adt.Executor) error {
		if err := (adt.Counter{L: "work"}).Add(ex, n); err != nil {
			return err
		}
		adt.LocalWork(ex, 10000)
		return nil
	}
}

func identityTask(n int64) adt.Task {
	return func(ex adt.Executor) error {
		c := adt.Counter{L: "work"}
		if err := c.Add(ex, n); err != nil {
			return err
		}
		adt.LocalWork(ex, 10000)
		return c.Sub(ex, n)
	}
}

func appendTask(id int64) adt.Task {
	return func(ex adt.Executor) error {
		return adt.Stack{L: "log"}.Push(ex, id)
	}
}

func run(t *testing.T, cfg Config, tasks []adt.Task) (*state.State, Stats) {
	t.Helper()
	final, stats, err := Run(cfg, initialState(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	return final, stats
}

func TestDeterministic(t *testing.T) {
	tasks := []adt.Task{identityTask(1), identityTask(2), identityTask(3), addTask(4)}
	_, a := run(t, Config{Threads: 4, RecordTimeline: true}, tasks)
	_, b := run(t, Config{Threads: 4, RecordTimeline: true}, tasks)
	if a.Makespan != b.Makespan || a.Retries != b.Retries || a.Commits != b.Commits || a.Speedup != b.Speedup {
		t.Fatalf("simulated runs differ:\n%+v\n%+v", a, b)
	}
	if len(a.Timeline) != len(b.Timeline) {
		t.Fatalf("timelines differ in length")
	}
	for i := range a.Timeline {
		if a.Timeline[i] != b.Timeline[i] {
			t.Fatalf("timeline entry %d differs: %+v vs %+v", i, a.Timeline[i], b.Timeline[i])
		}
	}
}

func TestFinalStateMatchesSequential(t *testing.T) {
	tasks := []adt.Task{addTask(1), addTask(2), addTask(3), addTask(4), addTask(5)}
	want, err := stm.RunSequential(initialState(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	for _, th := range []int{1, 2, 4, 8} {
		final, stats, err := Run(Config{Threads: th}, initialState(), tasks)
		if err != nil {
			t.Fatal(err)
		}
		if !final.Equal(want) {
			t.Fatalf("threads=%d: %s != sequential %s", th, final, want)
		}
		if stats.Commits != 5 {
			t.Fatalf("commits = %d", stats.Commits)
		}
	}
}

func TestOrderedCommitsFollowTaskOrder(t *testing.T) {
	tasks := []adt.Task{appendTask(1), appendTask(2), appendTask(3), appendTask(4)}
	final, _ := run(t, Config{Threads: 4, Ordered: true}, tasks)
	v, _ := final.Get("log")
	lst := v.(state.IntList)
	for i, x := range lst {
		if x != int64(i+1) {
			t.Fatalf("ordered log = %v", lst)
		}
	}
}

func TestSingleThreadNoRetries(t *testing.T) {
	_, stats := run(t, Config{Threads: 1}, []adt.Task{addTask(1), addTask(2)})
	if stats.Retries != 0 {
		t.Fatalf("retries = %d at 1 thread", stats.Retries)
	}
	if stats.Speedup >= 1 {
		t.Fatalf("1-thread transactional run cannot beat the sequential baseline (speedup=%v)", stats.Speedup)
	}
}

func TestWriteSetRetriesUnderConcurrency(t *testing.T) {
	var tasks []adt.Task
	for i := 1; i <= 16; i++ {
		tasks = append(tasks, addTask(int64(i)))
	}
	_, stats := run(t, Config{Threads: 4}, tasks)
	if stats.Retries == 0 {
		t.Fatalf("overlapping write-set txns must retry")
	}
	if stats.Commits != 16 {
		t.Fatalf("commits = %d", stats.Commits)
	}
	if got := stats.RetryRatio(); got <= 0 {
		t.Fatalf("RetryRatio = %v", got)
	}
}

func TestSequenceDetectorBeatsWriteSetOnIdentity(t *testing.T) {
	var tasks []adt.Task
	for i := 1; i <= 16; i++ {
		tasks = append(tasks, identityTask(int64(i)))
	}
	engine := core.NewEngine(core.Options{})
	if err := engine.Train(initialState(), tasks[:4]); err != nil {
		t.Fatal(err)
	}
	_, seqStats, err := Run(Config{Threads: 8, Detector: engine.Detector()}, initialState(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	_, wsStats, err := Run(Config{Threads: 8, Detector: conflict.NewWriteSet()}, initialState(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if seqStats.Retries != 0 {
		t.Fatalf("sequence detection must admit identity tasks: %d retries", seqStats.Retries)
	}
	if wsStats.Retries == 0 {
		t.Fatalf("write-set must abort identity tasks under concurrency")
	}
	if seqStats.Speedup <= wsStats.Speedup {
		t.Fatalf("sequence speedup %v must beat write-set %v", seqStats.Speedup, wsStats.Speedup)
	}
	if seqStats.Speedup <= 1 {
		t.Fatalf("identity workload at 8 threads must beat sequential, got %v", seqStats.Speedup)
	}
}

func TestSpeedupScalesWithThreads(t *testing.T) {
	var tasks []adt.Task
	for i := 1; i <= 32; i++ {
		tasks = append(tasks, identityTask(int64(i)))
	}
	engine := core.NewEngine(core.Options{})
	if err := engine.Train(initialState(), tasks[:4]); err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, th := range []int{1, 2, 4} {
		_, stats, err := Run(Config{Threads: th, Detector: engine.Detector()}, initialState(), tasks)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Speedup <= prev {
			t.Fatalf("speedup not increasing: %v after %v at %d threads", stats.Speedup, prev, th)
		}
		prev = stats.Speedup
	}
}

func TestMachineEffective(t *testing.T) {
	m := DefaultMachine()
	cases := []struct{ threads, want int }{
		{1, 1}, {2, 2}, {4, 4}, {5, 4}, {6, 5}, {8, 5}, {16, 5},
	}
	for _, c := range cases {
		if got := m.effective(c.threads); got != c.want {
			t.Errorf("effective(%d) = %d, want %d", c.threads, got, c.want)
		}
	}
	unlimited := Machine{}
	if got := unlimited.effective(8); got != 8 {
		t.Errorf("zero machine must not cap: %d", got)
	}
}

func TestSMTCapacityCapsSpeedup(t *testing.T) {
	var tasks []adt.Task
	for i := 1; i <= 64; i++ {
		tasks = append(tasks, identityTask(int64(i)))
	}
	engine := core.NewEngine(core.Options{})
	if err := engine.Train(initialState(), tasks[:4]); err != nil {
		t.Fatal(err)
	}
	_, eight, err := Run(Config{Threads: 8, Detector: engine.Detector()}, initialState(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if eight.Speedup > 5.01 {
		t.Fatalf("8 threads on the 4-core SMT machine cannot exceed 5x, got %v", eight.Speedup)
	}
	uncapped := Machine{Cores: 64}
	_, wide, err := Run(Config{Threads: 8, Detector: engine.Detector(), Machine: &uncapped}, initialState(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if wide.Speedup <= eight.Speedup {
		t.Fatalf("uncapped machine must beat the SMT-capped one: %v vs %v", wide.Speedup, eight.Speedup)
	}
}

func TestTaskErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	bad := func(adt.Executor) error { return boom }
	_, _, err := Run(Config{Threads: 2}, initialState(), []adt.Task{addTask(1), bad})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestMaxRetriesGuard(t *testing.T) {
	always := alwaysConflict{}
	_, _, err := Run(Config{Threads: 2, Detector: always, MaxRetries: 3},
		initialState(), []adt.Task{addTask(1), addTask(2)})
	if err == nil || !strings.Contains(err.Error(), "retries") {
		t.Fatalf("err = %v", err)
	}
}

type alwaysConflict struct{}

func (alwaysConflict) Detect(*state.State, oplog.Log, []oplog.Log) bool { return true }
func (alwaysConflict) DetectV(obs.Ctx, *state.State, oplog.Log, []oplog.Log) conflict.Verdict {
	return conflict.Verdict{Conflict: true, Reason: conflict.ReasonWriteSet}
}
func (alwaysConflict) DetectPrepared(obs.Ctx, *state.State, *conflict.Prepared, []*conflict.Prepared) conflict.Verdict {
	return conflict.Verdict{Conflict: true, Reason: conflict.ReasonWriteSet}
}
func (alwaysConflict) Name() string { return "always" }

func TestInvalidThreads(t *testing.T) {
	if _, _, err := Run(Config{}, initialState(), nil); err == nil {
		t.Fatalf("zero threads must error")
	}
}

func TestCostOverride(t *testing.T) {
	tasks := []adt.Task{addTask(1)}
	cheap := DefaultCost()
	cheap.Op = 1
	cheap.CommitBase = 1
	cheap.ReplayWritePerOp = 1
	cheap.Begin = 1
	cheap.PrivatizePerLoc = 1
	_, cheapStats, err := Run(Config{Threads: 1, Cost: &cheap}, initialState(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	_, defStats, err := Run(Config{Threads: 1}, initialState(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if cheapStats.Makespan >= defStats.Makespan {
		t.Fatalf("cheaper costs must shrink the makespan: %v vs %v", cheapStats.Makespan, defStats.Makespan)
	}
}

// TestAgreesWithWallClockRuntime cross-validates the simulator's final
// states and commit counts against the goroutine runtime on the real
// workloads (ordered where order matters).
func TestAgreesWithWallClockRuntime(t *testing.T) {
	for _, name := range []string{"jfilesync", "pmd", "jgrapht2"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		tasks := w.Tasks(workloads.Small, 5)
		engine := core.NewEngine(core.Options{Relax: w.Relaxations})
		if err := engine.TrainMany(w.NewState(), w.TrainingPayloads()[:2]); err != nil {
			t.Fatal(err)
		}
		simFinal, simStats, err := Run(Config{Threads: 4, Ordered: true, Detector: engine.Detector()}, w.NewState(), tasks)
		if err != nil {
			t.Fatal(err)
		}
		wallFinal, wallStats, err := stm.Run(stm.Config{Threads: 4, Ordered: true, Detector: engine.Detector()}, w.NewState(), tasks)
		if err != nil {
			t.Fatal(err)
		}
		if simStats.Commits != wallStats.Commits {
			t.Fatalf("%s: commits %d vs %d", name, simStats.Commits, wallStats.Commits)
		}
		if !simFinal.Equal(wallFinal) {
			t.Fatalf("%s: simulated final state differs from wall-clock runtime", name)
		}
	}
}

func TestRetryRatioZeroTasks(t *testing.T) {
	if (Stats{}).RetryRatio() != 0 {
		t.Errorf("zero tasks ratio must be 0")
	}
}

func TestTimelineRecords(t *testing.T) {
	tasks := []adt.Task{addTask(1), addTask(2), addTask(3), addTask(4)}
	_, stats, err := Run(Config{Threads: 2, RecordTimeline: true}, initialState(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Timeline) != len(tasks) {
		t.Fatalf("timeline = %d entries, want %d", len(stats.Timeline), len(tasks))
	}
	prev := -1.0
	seenTask := map[int]bool{}
	totalAttempts := int64(0)
	for _, tt := range stats.Timeline {
		if tt.Commit < prev {
			t.Fatalf("timeline not in commit order: %+v", stats.Timeline)
		}
		prev = tt.Commit
		if tt.Start >= tt.Commit {
			t.Fatalf("task %d starts after its commit: %+v", tt.Task, tt)
		}
		if tt.Attempts < 1 {
			t.Fatalf("task %d has %d attempts", tt.Task, tt.Attempts)
		}
		if seenTask[tt.Task] {
			t.Fatalf("task %d committed twice", tt.Task)
		}
		seenTask[tt.Task] = true
		totalAttempts += int64(tt.Attempts)
	}
	if totalAttempts != stats.Commits+stats.Retries {
		t.Fatalf("attempts %d != commits %d + retries %d", totalAttempts, stats.Commits, stats.Retries)
	}
	// Off by default.
	_, noTL, err := Run(Config{Threads: 2}, initialState(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(noTL.Timeline) != 0 {
		t.Fatalf("timeline recorded without the flag")
	}
}
