// Package cache implements the commutativity-specification cache JANUS
// builds during offline training and queries during parallel execution
// (§5.1, §5.3). Entries map a pair of abstract sequence patterns (the
// §5.2 regular forms, or concrete shapes when abstraction is disabled) to
// the condition kind proved sound for that pair.
//
// The cache is N-way sharded by pair-key hash so that concurrent
// production lookups from many detection workers do not serialize on a
// single mutex. Training-time writes take a per-shard write lock;
// production-time reads take only the shard's read lock — or no lock at
// all once Freeze marks training complete and the entry maps immutable.
//
// The cache also keeps the hit/miss accounting behind Figure 11: unique
// queries are tracked by key, classified by their first outcome, so
// repeated hits or misses on the same query count once, matching the
// paper's measurement methodology. Totals are per-shard padded atomics;
// the unique-key tracking takes a per-shard stats read lock on the hot
// path and escalates to the write lock only the first time a key is seen.
package cache

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/commute"
	"repro/internal/oplog"
	"repro/internal/seqabs"
)

// DefaultShards is the shard count used by New. Sixteen ways is enough to
// make shard collisions rare at the paper's 8-thread scale while keeping
// the per-cache footprint trivial.
const DefaultShards = 16

// shard is one lock domain of the cache. Entries and query accounting
// have independent locks so that frozen (lock-free) entry reads never
// contend with stats bookkeeping. The trailing pad keeps the hot atomic
// counters of neighboring shards on different cache lines.
type shard struct {
	mu      sync.RWMutex
	entries map[string]commute.ConditionKind

	statsMu sync.RWMutex
	// firstHit classifies every key ever queried by its first outcome
	// (true = hit). Figure 11's unique-query stats derive from it.
	firstHit map[string]bool

	hits   atomic.Int64
	misses atomic.Int64

	_ [40]byte // pad shard to a 64-byte multiple against false sharing
}

// Cache is a concurrency-safe commutativity specification.
type Cache struct {
	abs    *seqabs.Abstracter
	shards []shard
	mask   uint32
	// frozen flips the cache into read-only production mode: entry maps
	// become immutable, so lookups skip the shard locks entirely.
	frozen atomic.Bool
}

// New returns an empty cache with DefaultShards shards whose keys are
// built under the given abstraction mode.
func New(mode seqabs.Mode) *Cache { return NewSharded(mode, 0) }

// NewSharded returns an empty cache with the given shard count, rounded up
// to a power of two; shards <= 0 selects DefaultShards.
func NewSharded(mode seqabs.Mode, shards int) *Cache {
	if shards <= 0 {
		shards = DefaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	c := &Cache{
		abs:    &seqabs.Abstracter{Mode: mode},
		shards: make([]shard, n),
		mask:   uint32(n - 1),
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]commute.ConditionKind)
		c.shards[i].firstHit = make(map[string]bool)
	}
	return c
}

// Mode returns the cache's abstraction mode.
func (c *Cache) Mode() seqabs.Mode { return c.abs.Mode }

// NumShards returns the shard count.
func (c *Cache) NumShards() int { return len(c.shards) }

// Key renders the cache key for a sequence pair.
func (c *Cache) Key(s1, s2 []oplog.Sym) string { return c.abs.PairKey(s1, s2) }

// shardFor hashes a key to its shard: FNV-1a with a murmur-style
// avalanche finalizer. Rendered keys are highly periodic (repeated
// " · kind" blocks), and raw FNV's low bits cycle on periodic input —
// without the final mix, whole workloads collapse into one shard.
func (c *Cache) shardFor(key string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[mix32(h)&c.mask]
}

// shardForBytes is shardFor over an unconverted key buffer.
func (c *Cache) shardForBytes(key []byte) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[mix32(h)&c.mask]
}

// mix32 avalanches every input bit across the output (murmur3 fmix32).
func mix32(h uint32) uint32 {
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}

// keyBufPool recycles the scratch buffers LookupDetail renders pair keys
// into, keeping the production lookup path allocation-free.
var keyBufPool = sync.Pool{New: func() any { return new([]byte) }}

// Freeze switches the cache into read-only production mode: subsequent
// lookups read the entry maps without locking, and Put/Merge become
// no-ops (Load fails). Freeze after training, before handing the cache to
// production workers; callers using LearnOnline must not freeze, since
// online learning writes entries at detection time. Acquiring every shard
// lock before publishing the flag guarantees any in-flight write completes
// before the first lock-free read.
func (c *Cache) Freeze() {
	for i := range c.shards {
		c.shards[i].mu.Lock()
	}
	c.frozen.Store(true)
	for i := range c.shards {
		c.shards[i].mu.Unlock()
	}
}

// Frozen reports whether the cache is in read-only production mode.
func (c *Cache) Frozen() bool { return c.frozen.Load() }

// Put records a proved condition for the pair's shape. CondNone entries
// are ignored (an unprovable pair stays a miss). Puts on a frozen cache
// are dropped.
func (c *Cache) Put(s1, s2 []oplog.Sym, kind commute.ConditionKind) {
	c.putKey(c.Key(s1, s2), kind)
}

// putKey is the write path shared by Put, Merge, and Load: conflicting
// kinds for one key resolve by commute.Resolve, so cache contents are
// independent of insertion order.
func (c *Cache) putKey(key string, kind commute.ConditionKind) {
	if kind == commute.CondNone {
		return
	}
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if c.frozen.Load() {
		return
	}
	sh.entries[key] = commute.Resolve(sh.entries[key], kind)
}

// Lookup answers a production commutativity query: whether the concrete
// pair conflicts. hit reports whether the cache had a proved condition for
// the pair's shape; on a miss the caller must fall back to write-set
// detection. Hit/miss statistics are recorded per unique key.
func (c *Cache) Lookup(s1, s2 []oplog.Sym) (conflict, hit bool) {
	conflict, _, hit = c.LookupDetail(s1, s2)
	return conflict, hit
}

// LookupDetail is Lookup with abort-reason attribution: on a conflicting
// hit, failed names the check of the cached condition that rejected the
// pair (same-read, commute, or theory when the instance left the
// condition's theory and the answer is conservative).
func (c *Cache) LookupDetail(s1, s2 []oplog.Sym) (conflict bool, failed commute.Check, hit bool) {
	// The key is rendered into a pooled buffer and looked up via the
	// compiler's no-copy map[string] access on string(buf), so a hit on a
	// known key allocates nothing.
	bp := keyBufPool.Get().(*[]byte)
	buf := c.abs.AppendPairKey((*bp)[:0], s1, s2)
	conflict, failed, hit = c.lookupBuf(buf, s1, s2)
	*bp = buf
	keyBufPool.Put(bp)
	return conflict, failed, hit
}

// AppendSeqKey renders one sequence's cache key into dst under the
// cache's abstraction. Prepared projections memoize this per-location
// rendering so LookupDetailKeys can skip re-abstracting either side.
func (c *Cache) AppendSeqKey(dst []byte, syms []oplog.Sym) []byte {
	return c.abs.AppendKey(dst, syms)
}

// LookupDetailKeys is LookupDetail for callers holding the two sequences'
// pre-rendered keys (from AppendSeqKey): the pair key is assembled by
// canonically joining them, skipping the per-call idempotent-block search
// that dominates key rendering. The symbolic sequences are still required
// to evaluate a cached condition on the concrete instance.
func (c *Cache) LookupDetailKeys(k1, k2 []byte, s1, s2 []oplog.Sym) (conflict bool, failed commute.Check, hit bool) {
	bp := keyBufPool.Get().(*[]byte)
	buf := seqabs.AppendJoinedKeys((*bp)[:0], k1, k2)
	conflict, failed, hit = c.lookupBuf(buf, s1, s2)
	*bp = buf
	keyBufPool.Put(bp)
	return conflict, failed, hit
}

// lookupBuf is the lookup body shared by LookupDetail and
// LookupDetailKeys; buf holds the rendered canonical pair key.
func (c *Cache) lookupBuf(buf []byte, s1, s2 []oplog.Sym) (conflict bool, failed commute.Check, hit bool) {
	sh := c.shardForBytes(buf)
	var kind commute.ConditionKind
	var ok bool
	if c.frozen.Load() {
		kind, ok = sh.entries[string(buf)]
	} else {
		sh.mu.RLock()
		kind, ok = sh.entries[string(buf)]
		sh.mu.RUnlock()
	}
	sh.note(buf, ok)
	if !ok {
		return true, commute.CheckNone, false
	}
	conflict, failed, evalOK := commute.EvaluateDetail(kind, s1, s2)
	if !evalOK {
		// Shape matched but the instance left the theory (should not
		// happen with consistent abstraction); be conservative.
		return true, commute.CheckTheory, true
	}
	return conflict, failed, true
}

// note records one query outcome: totals on the shard's atomic counters,
// plus the key's first outcome for the unique-query stats. Re-queried keys
// (the steady state) only take the stats read lock and allocate nothing;
// the key string is materialized once, when a key is first seen.
func (s *shard) note(key []byte, hit bool) {
	if hit {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	s.statsMu.RLock()
	_, seen := s.firstHit[string(key)]
	s.statsMu.RUnlock()
	if seen {
		return
	}
	s.statsMu.Lock()
	if _, seen := s.firstHit[string(key)]; !seen {
		s.firstHit[string(key)] = hit
	}
	s.statsMu.Unlock()
}

// Len returns the number of cached shape pairs.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		if c.frozen.Load() {
			n += len(sh.entries)
			continue
		}
		sh.mu.RLock()
		n += len(sh.entries)
		sh.mu.RUnlock()
	}
	return n
}

// snapshotEntries copies the live entry maps (for Merge/Save/Dump).
func (c *Cache) snapshotEntries() map[string]commute.ConditionKind {
	out := make(map[string]commute.ConditionKind)
	for i := range c.shards {
		sh := &c.shards[i]
		if c.frozen.Load() {
			for k, v := range sh.entries {
				out[k] = v
			}
			continue
		}
		sh.mu.RLock()
		for k, v := range sh.entries {
			out[k] = v
		}
		sh.mu.RUnlock()
	}
	return out
}

// Merge folds another cache's entries into c (multiple training runs).
// Conflicting kinds resolve by commute.Resolve, so the merged contents are
// independent of merge order. Merging into a frozen cache is a no-op.
func (c *Cache) Merge(o *Cache) {
	for k, v := range o.snapshotEntries() {
		c.putKey(k, v)
	}
}

// ResetStats clears hit/miss accounting (e.g. between the cold run and the
// measured production runs). It works on frozen caches: accounting is
// separate from the immutable entry maps.
func (c *Cache) ResetStats() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.statsMu.Lock()
		sh.firstHit = make(map[string]bool)
		sh.hits.Store(0)
		sh.misses.Store(0)
		sh.statsMu.Unlock()
	}
}

// Stats summarizes query accounting.
type Stats struct {
	Lookups       int // total Lookup calls
	Hits          int // total hits
	Misses        int // total misses
	UniqueQueries int // distinct query keys seen
	UniqueHits    int // distinct keys whose first query hit
	UniqueMisses  int // distinct keys whose first query missed
	Entries       int
	Shards        int
}

// UniqueMissRate returns the Figure 11 metric: the fraction of unique
// queries with no matching cache entry. Keys are classified by their first
// outcome (a key that misses once and later hits — possible under online
// learning — counts as a unique miss, since its first query forced a
// fallback), so UniqueHits + UniqueMisses == UniqueQueries always holds.
func (s Stats) UniqueMissRate() float64 {
	if s.UniqueQueries == 0 {
		return 0
	}
	return float64(s.UniqueMisses) / float64(s.UniqueQueries)
}

// Stats returns a snapshot of the accounting. Concurrent lookups may land
// between shard visits, so the snapshot is only exact when quiescent.
func (c *Cache) Stats() Stats {
	st := Stats{Entries: c.Len(), Shards: len(c.shards)}
	for i := range c.shards {
		sh := &c.shards[i]
		st.Hits += int(sh.hits.Load())
		st.Misses += int(sh.misses.Load())
		sh.statsMu.RLock()
		for _, hit := range sh.firstHit {
			if hit {
				st.UniqueHits++
			} else {
				st.UniqueMisses++
			}
		}
		st.UniqueQueries += len(sh.firstHit)
		sh.statsMu.RUnlock()
	}
	st.Lookups = st.Hits + st.Misses
	return st
}

// ShardLens returns the entry count per shard (distribution diagnostics).
func (c *Cache) ShardLens() []int {
	out := make([]int, len(c.shards))
	for i := range c.shards {
		sh := &c.shards[i]
		if c.frozen.Load() {
			out[i] = len(sh.entries)
			continue
		}
		sh.mu.RLock()
		out[i] = len(sh.entries)
		sh.mu.RUnlock()
	}
	return out
}

// Dump renders the cache contents deterministically for inspection and
// golden tests.
func (c *Cache) Dump() string {
	entries := c.snapshotEntries()
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s → %s\n", k, entries[k])
	}
	return b.String()
}
