// Package cache implements the commutativity-specification cache JANUS
// builds during offline training and queries during parallel execution
// (§5.1, §5.3). Entries map a pair of abstract sequence patterns (the
// §5.2 regular forms, or concrete shapes when abstraction is disabled) to
// the condition kind proved sound for that pair.
//
// The cache also keeps the hit/miss accounting behind Figure 11: unique
// queries are tracked by key, so repeated hits or misses on the same query
// count once, matching the paper's measurement methodology.
package cache

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/commute"
	"repro/internal/oplog"
	"repro/internal/seqabs"
)

// Cache is a concurrency-safe commutativity specification.
type Cache struct {
	abs *seqabs.Abstracter

	mu      sync.RWMutex
	entries map[string]commute.ConditionKind
	hits    map[string]int
	misses  map[string]int
}

// New returns an empty cache whose keys are built under the given
// abstraction mode.
func New(mode seqabs.Mode) *Cache {
	return &Cache{
		abs:     &seqabs.Abstracter{Mode: mode},
		entries: make(map[string]commute.ConditionKind),
		hits:    make(map[string]int),
		misses:  make(map[string]int),
	}
}

// Mode returns the cache's abstraction mode.
func (c *Cache) Mode() seqabs.Mode { return c.abs.Mode }

// Key renders the cache key for a sequence pair.
func (c *Cache) Key(s1, s2 []oplog.Sym) string { return c.abs.PairKey(s1, s2) }

// Put records a proved condition for the pair's shape. CondNone entries
// are ignored (an unprovable pair stays a miss).
func (c *Cache) Put(s1, s2 []oplog.Sym, kind commute.ConditionKind) {
	if kind == commute.CondNone {
		return
	}
	key := c.Key(s1, s2)
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.entries[key]; ok && prev != kind {
		// Two training observations proved different conditions for one
		// shape key; keep the weaker-but-general register/stack form over
		// Always, since Always may only hold for the other instance.
		if kind == commute.CondAlways {
			return
		}
	}
	c.entries[key] = kind
}

// Lookup answers a production commutativity query: whether the concrete
// pair conflicts. hit reports whether the cache had a proved condition for
// the pair's shape; on a miss the caller must fall back to write-set
// detection. Hit/miss statistics are recorded per unique key.
func (c *Cache) Lookup(s1, s2 []oplog.Sym) (conflict, hit bool) {
	conflict, _, hit = c.LookupDetail(s1, s2)
	return conflict, hit
}

// LookupDetail is Lookup with abort-reason attribution: on a conflicting
// hit, failed names the check of the cached condition that rejected the
// pair (same-read, commute, or theory when the instance left the
// condition's theory and the answer is conservative).
func (c *Cache) LookupDetail(s1, s2 []oplog.Sym) (conflict bool, failed commute.Check, hit bool) {
	key := c.Key(s1, s2)
	c.mu.Lock()
	kind, ok := c.entries[key]
	if ok {
		c.hits[key]++
	} else {
		c.misses[key]++
	}
	c.mu.Unlock()
	if !ok {
		return true, commute.CheckNone, false
	}
	conflict, failed, evalOK := commute.EvaluateDetail(kind, s1, s2)
	if !evalOK {
		// Shape matched but the instance left the theory (should not
		// happen with consistent abstraction); be conservative.
		return true, commute.CheckTheory, true
	}
	return conflict, failed, true
}

// Len returns the number of cached shape pairs.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Merge folds another cache's entries into c (multiple training runs).
// Conflicting kinds resolve as in Put.
func (c *Cache) Merge(o *Cache) {
	o.mu.RLock()
	entries := make(map[string]commute.ConditionKind, len(o.entries))
	for k, v := range o.entries {
		entries[k] = v
	}
	o.mu.RUnlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, v := range entries {
		if prev, ok := c.entries[k]; ok && prev != v && v == commute.CondAlways {
			continue
		}
		c.entries[k] = v
	}
}

// ResetStats clears hit/miss accounting (e.g. between the cold run and the
// measured production runs).
func (c *Cache) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits = make(map[string]int)
	c.misses = make(map[string]int)
}

// Stats summarizes query accounting.
type Stats struct {
	Lookups       int // total Lookup calls
	Hits          int // total hits
	Misses        int // total misses
	UniqueQueries int // distinct query keys seen
	UniqueHits    int // distinct keys that hit
	UniqueMisses  int // distinct keys that missed (and never hit)
	Entries       int
}

// UniqueMissRate returns the Figure 11 metric: the fraction of unique
// queries with no matching cache entry.
func (s Stats) UniqueMissRate() float64 {
	if s.UniqueQueries == 0 {
		return 0
	}
	return float64(s.UniqueMisses) / float64(s.UniqueQueries)
}

// Stats returns a snapshot of the accounting.
func (c *Cache) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	st := Stats{Entries: len(c.entries)}
	keys := make(map[string]struct{})
	for k, n := range c.hits {
		st.Hits += n
		keys[k] = struct{}{}
		st.UniqueHits++
	}
	for k, n := range c.misses {
		st.Misses += n
		if _, alsoHit := c.hits[k]; !alsoHit {
			st.UniqueMisses++
		}
		keys[k] = struct{}{}
	}
	st.UniqueQueries = len(keys)
	st.Lookups = st.Hits + st.Misses
	return st
}

// Dump renders the cache contents deterministically for inspection and
// golden tests.
func (c *Cache) Dump() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	keys := make([]string, 0, len(c.entries))
	for k := range c.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s → %s\n", k, c.entries[k])
	}
	return b.String()
}
