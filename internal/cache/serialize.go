package cache

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/commute"
	"repro/internal/seqabs"
)

// The commutativity specification built by offline training is a
// deployment artifact: train once on representative inputs, ship the spec,
// load it in production (Figure 6's flow). This file gives it a stable,
// corruption-detecting serialization: a versioned envelope (magic, format
// version, abstraction mode, shard count) around a CRC32-checksummed
// payload, so a truncated, bit-flipped, or foreign file is rejected with a
// typed *SpecError instead of silently training the production cache on
// garbage commutativity verdicts.

// specMagic identifies a JANUS spec artifact; a file without it is either
// a legacy v1 spec (loaded for compatibility, without integrity checking)
// or not a spec at all.
const specMagic = "JANUS-SPEC"

// specFormat is the current schema version. v1 was a bare
// {format, mode, entries} object with no magic and no checksum.
const specFormat = 2

// specEnvelope is the on-disk format: metadata in the clear, the entry
// table as an opaque checksummed payload.
type specEnvelope struct {
	// Magic is specMagic; its presence distinguishes an envelope from the
	// legacy v1 format and from arbitrary JSON.
	Magic string `json:"magic"`
	// Format identifies the schema; bump on incompatible change.
	Format int `json:"format"`
	// Mode is the abstraction mode the keys were built under; a spec is
	// only meaningful to a cache using the same mode.
	Mode string `json:"mode"`
	// Shards records the shard count of the saving cache. Informational:
	// entries rehash on load, so a different shard count is not an error.
	Shards int `json:"shards"`
	// CRC32 is the IEEE checksum of the payload in compact JSON form.
	CRC32 uint32 `json:"crc32"`
	// Payload is the checksummed entry table.
	Payload json.RawMessage `json:"payload"`
}

// specPayload is the checksummed inner document.
type specPayload struct {
	// Entries maps pair keys to condition kind names.
	Entries map[string]string `json:"entries"`
}

// specFileV1 is the legacy unversioned-envelope format, still accepted on
// load so artifacts trained before the envelope existed keep working.
type specFileV1 struct {
	Format  int               `json:"format"`
	Mode    string            `json:"mode"`
	Entries map[string]string `json:"entries"`
}

// ErrFrozen is returned by Load on a frozen cache: the spec-loading phase
// ends at Freeze, and the caller — not the artifact — violated that
// contract. It is deliberately not a *SpecError, so lenient loaders that
// degrade on artifact faults still surface it.
var ErrFrozen = errors.New("cache: cannot load a spec into a frozen cache")

// SpecReason classifies why a spec artifact was rejected.
type SpecReason int

// Spec rejection reasons.
const (
	// SpecBadPayload: the file is not parseable as a spec at all, or the
	// checksummed payload does not decode.
	SpecBadPayload SpecReason = iota
	// SpecBadMagic: the file parses as JSON but carries a wrong magic.
	SpecBadMagic
	// SpecBadFormat: the format version is unknown.
	SpecBadFormat
	// SpecBadChecksum: the payload does not match its CRC32 — the
	// artifact was corrupted (bit flip, truncation, partial write).
	SpecBadChecksum
	// SpecModeMismatch: the spec was trained under a different
	// abstraction mode than the loading cache uses.
	SpecModeMismatch
	// SpecBadEntry: an entry names an unknown condition kind.
	SpecBadEntry
)

// String renders the reason.
func (r SpecReason) String() string {
	switch r {
	case SpecBadMagic:
		return "bad-magic"
	case SpecBadFormat:
		return "bad-format"
	case SpecBadChecksum:
		return "bad-checksum"
	case SpecModeMismatch:
		return "mode-mismatch"
	case SpecBadEntry:
		return "bad-entry"
	default:
		return "bad-payload"
	}
}

// SpecError reports a rejected spec artifact. Every artifact-fault path
// out of Load returns one (errors.As-matchable), so callers can
// distinguish "this file is bad" — recoverable by degrading to write-set
// detection — from I/O errors and contract violations like ErrFrozen.
type SpecError struct {
	// Reason classifies the rejection.
	Reason SpecReason
	// Detail is a human-readable specifics string.
	Detail string
	// Err is the underlying cause, when one exists.
	Err error
}

// Error implements error.
func (e *SpecError) Error() string {
	msg := "cache: spec rejected (" + e.Reason.String() + ")"
	if e.Detail != "" {
		msg += ": " + e.Detail
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap returns the underlying cause.
func (e *SpecError) Unwrap() error { return e.Err }

func kindName(k commute.ConditionKind) string { return k.String() }

func kindFromName(s string) (commute.ConditionKind, error) {
	for _, k := range []commute.ConditionKind{
		commute.CondAlways, commute.CondRegister, commute.CondStackIdentity,
	} {
		if k.String() == s {
			return k, nil
		}
	}
	return commute.CondNone, &SpecError{Reason: SpecBadEntry, Detail: fmt.Sprintf("unknown condition kind %q", s)}
}

// Save writes the cache's entries as a versioned envelope with a CRC32
// checksum over the compact payload.
func (c *Cache) Save(w io.Writer) error {
	entries := c.snapshotEntries()
	p := specPayload{Entries: make(map[string]string, len(entries))}
	for k, v := range entries {
		p.Entries[k] = kindName(v)
	}
	// json.Marshal emits the compact form with sorted map keys — the
	// canonical bytes the checksum covers. Load re-compacts whatever
	// indentation the envelope encoder (or a pretty-printing editor)
	// applied before verifying.
	payload, err := json.Marshal(p)
	if err != nil {
		return fmt.Errorf("cache: encoding spec payload: %w", err)
	}
	env := specEnvelope{
		Magic:   specMagic,
		Format:  specFormat,
		Mode:    c.abs.Mode.String(),
		Shards:  c.NumShards(),
		CRC32:   crc32.ChecksumIEEE(payload),
		Payload: payload,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(env)
}

// Load merges a saved specification into the cache, verifying the
// envelope (magic, format version, abstraction mode) and the payload
// checksum first. Artifact faults — corruption, version or mode mismatch,
// unknown entries — are reported as *SpecError and leave the cache
// unchanged; loading into a frozen cache returns ErrFrozen. Legacy v1
// specs (no envelope) load for compatibility, without integrity checking.
// Conflicting kinds resolve by commute.Resolve, so loading multiple specs
// is order-independent.
func (c *Cache) Load(r io.Reader) error {
	if c.frozen.Load() {
		return ErrFrozen
	}
	raw, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("cache: reading spec: %w", err)
	}
	var env specEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return &SpecError{Reason: SpecBadPayload, Detail: "decoding spec", Err: err}
	}
	var entries map[string]string
	switch {
	case env.Magic == specMagic:
		if env.Format != specFormat {
			return &SpecError{Reason: SpecBadFormat, Detail: fmt.Sprintf("unsupported spec format %d (want %d)", env.Format, specFormat)}
		}
		if env.Mode != c.abs.Mode.String() {
			return &SpecError{Reason: SpecModeMismatch, Detail: fmt.Sprintf("spec built with %s abstraction, cache uses %s", env.Mode, c.abs.Mode)}
		}
		// Verify the checksum over the canonical compact form: the
		// envelope was written indented, so the raw payload bytes carry
		// that indentation and must be re-compacted first.
		var compact bytes.Buffer
		if err := json.Compact(&compact, env.Payload); err != nil {
			return &SpecError{Reason: SpecBadPayload, Detail: "compacting payload", Err: err}
		}
		if sum := crc32.ChecksumIEEE(compact.Bytes()); sum != env.CRC32 {
			return &SpecError{Reason: SpecBadChecksum, Detail: fmt.Sprintf("payload crc32 %08x, envelope says %08x", sum, env.CRC32)}
		}
		var p specPayload
		if err := json.Unmarshal(env.Payload, &p); err != nil {
			return &SpecError{Reason: SpecBadPayload, Detail: "decoding payload", Err: err}
		}
		entries = p.Entries
	case env.Magic != "":
		return &SpecError{Reason: SpecBadMagic, Detail: fmt.Sprintf("magic %q, want %q", env.Magic, specMagic)}
	default:
		// No magic: either a legacy v1 spec or not a spec at all.
		var f specFileV1
		if err := json.Unmarshal(raw, &f); err != nil {
			return &SpecError{Reason: SpecBadPayload, Detail: "decoding spec", Err: err}
		}
		if f.Format != 1 {
			return &SpecError{Reason: SpecBadFormat, Detail: fmt.Sprintf("unsupported spec format %d", f.Format)}
		}
		if f.Mode != c.abs.Mode.String() {
			return &SpecError{Reason: SpecModeMismatch, Detail: fmt.Sprintf("spec built with %s abstraction, cache uses %s", f.Mode, c.abs.Mode)}
		}
		entries = f.Entries
	}
	parsed := make(map[string]commute.ConditionKind, len(entries))
	for k, name := range entries {
		kind, err := kindFromName(name)
		if err != nil {
			return err
		}
		parsed[k] = kind
	}
	for k, v := range parsed {
		c.putKey(k, v)
	}
	return nil
}

// ModeFromString parses an abstraction mode name (for tools loading specs
// whose mode must drive cache construction).
func ModeFromString(s string) (seqabs.Mode, error) {
	switch s {
	case seqabs.Abstract.String():
		return seqabs.Abstract, nil
	case seqabs.Concrete.String():
		return seqabs.Concrete, nil
	}
	return 0, fmt.Errorf("cache: unknown abstraction mode %q", s)
}
