package cache

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/commute"
	"repro/internal/seqabs"
)

// The commutativity specification built by offline training is a
// deployment artifact: train once on representative inputs, ship the spec,
// load it in production (Figure 6's flow). This file gives it a stable
// JSON serialization.

// specFile is the on-disk format.
type specFile struct {
	// Format identifies the schema; bump on incompatible change.
	Format int `json:"format"`
	// Mode is the abstraction mode the keys were built under; a spec is
	// only meaningful to a cache using the same mode.
	Mode string `json:"mode"`
	// Entries maps pair keys to condition kind names.
	Entries map[string]string `json:"entries"`
}

// specFormat is the current schema version.
const specFormat = 1

func kindName(k commute.ConditionKind) string { return k.String() }

func kindFromName(s string) (commute.ConditionKind, error) {
	for _, k := range []commute.ConditionKind{
		commute.CondAlways, commute.CondRegister, commute.CondStackIdentity,
	} {
		if k.String() == s {
			return k, nil
		}
	}
	return commute.CondNone, fmt.Errorf("cache: unknown condition kind %q", s)
}

// Save writes the cache's entries as JSON.
func (c *Cache) Save(w io.Writer) error {
	entries := c.snapshotEntries()
	f := specFile{
		Format:  specFormat,
		Mode:    c.abs.Mode.String(),
		Entries: make(map[string]string, len(entries)),
	}
	for k, v := range entries {
		f.Entries[k] = kindName(v)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Load merges a saved specification into the cache. It fails if the cache
// is frozen, the spec was built under a different abstraction mode, or it
// contains unknown condition kinds; on failure the cache is left
// unchanged. Conflicting kinds resolve by commute.Resolve, so loading
// multiple specs is order-independent.
func (c *Cache) Load(r io.Reader) error {
	var f specFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return fmt.Errorf("cache: decoding spec: %w", err)
	}
	if f.Format != specFormat {
		return fmt.Errorf("cache: unsupported spec format %d", f.Format)
	}
	if f.Mode != c.abs.Mode.String() {
		return fmt.Errorf("cache: spec built with %s abstraction, cache uses %s", f.Mode, c.abs.Mode)
	}
	parsed := make(map[string]commute.ConditionKind, len(f.Entries))
	for k, name := range f.Entries {
		kind, err := kindFromName(name)
		if err != nil {
			return err
		}
		parsed[k] = kind
	}
	if c.frozen.Load() {
		return fmt.Errorf("cache: cannot load a spec into a frozen cache")
	}
	for k, v := range parsed {
		c.putKey(k, v)
	}
	return nil
}

// ModeFromString parses an abstraction mode name (for tools loading specs
// whose mode must drive cache construction).
func ModeFromString(s string) (seqabs.Mode, error) {
	switch s {
	case seqabs.Abstract.String():
		return seqabs.Abstract, nil
	case seqabs.Concrete.String():
		return seqabs.Concrete, nil
	}
	return 0, fmt.Errorf("cache: unknown abstraction mode %q", s)
}
