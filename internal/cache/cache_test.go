package cache

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/adt"
	"repro/internal/commute"
	"repro/internal/oplog"
	"repro/internal/seqabs"
)

func sym(kind, arg string) oplog.Sym { return oplog.Sym{Kind: kind, Arg: arg} }

func idPair(a string) []oplog.Sym {
	return []oplog.Sym{sym(adt.KindNumAdd, a), sym(adt.KindNumAdd, "-"+a)}
}

func TestPutLookupHit(t *testing.T) {
	c := New(seqabs.Abstract)
	c.Put(idPair("2"), idPair("3"), commute.CondRegister)
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	conflict, hit := c.Lookup(idPair("7"), idPair("9"))
	if !hit || conflict {
		t.Fatalf("Lookup = conflict=%v hit=%v", conflict, hit)
	}
	// Longer instance still hits under abstraction.
	long := append(idPair("1"), idPair("4")...)
	conflict, hit = c.Lookup(long, idPair("9"))
	if !hit || conflict {
		t.Fatalf("long Lookup = conflict=%v hit=%v", conflict, hit)
	}
}

func TestMissIsConservative(t *testing.T) {
	c := New(seqabs.Abstract)
	conflict, hit := c.Lookup(idPair("1"), idPair("2"))
	if hit || !conflict {
		t.Fatalf("empty cache must miss conservatively: conflict=%v hit=%v", conflict, hit)
	}
}

func TestCondNoneIgnored(t *testing.T) {
	c := New(seqabs.Abstract)
	c.Put(idPair("1"), idPair("2"), commute.CondNone)
	if c.Len() != 0 {
		t.Fatalf("CondNone must not be stored")
	}
}

func TestStats(t *testing.T) {
	c := New(seqabs.Abstract)
	c.Put(idPair("2"), idPair("3"), commute.CondAlways)
	c.Lookup(idPair("1"), idPair("2")) // hit
	c.Lookup(idPair("5"), idPair("6")) // hit, same key
	store := []oplog.Sym{sym(adt.KindNumStore, "5")}
	c.Lookup(store, store)       // miss
	c.Lookup(store, store)       // miss, same key
	c.Lookup(store, idPair("1")) // miss, new key
	st := c.Stats()
	if st.Lookups != 5 || st.Hits != 2 || st.Misses != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.UniqueQueries != 3 || st.UniqueHits != 1 || st.UniqueMisses != 2 {
		t.Fatalf("unique stats = %+v", st)
	}
	if got := st.UniqueMissRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("UniqueMissRate = %v, want 2/3", got)
	}
	c.ResetStats()
	if st := c.Stats(); st.Lookups != 0 || st.UniqueQueries != 0 {
		t.Fatalf("after reset: %+v", st)
	}
	if (Stats{}).UniqueMissRate() != 0 {
		t.Errorf("empty stats miss rate must be 0")
	}
}

func TestPutConflictResolution(t *testing.T) {
	c := New(seqabs.Abstract)
	// Register first, then Always for the same shape: register wins.
	store := []oplog.Sym{sym(adt.KindNumStore, "5")}
	c.Put(store, store, commute.CondRegister)
	c.Put(store, store, commute.CondAlways)
	// store(5) vs store(6) must still evaluate (and conflict) under the
	// kept register condition.
	store6 := []oplog.Sym{sym(adt.KindNumStore, "6")}
	conflict, hit := c.Lookup(store, store6)
	if !hit || !conflict {
		t.Fatalf("register condition must be kept: conflict=%v hit=%v", conflict, hit)
	}
}

func TestMerge(t *testing.T) {
	a := New(seqabs.Abstract)
	b := New(seqabs.Abstract)
	a.Put(idPair("1"), idPair("2"), commute.CondAlways)
	store := []oplog.Sym{sym(adt.KindNumStore, "5")}
	b.Put(store, store, commute.CondRegister)
	a.Merge(b)
	if a.Len() != 2 {
		t.Fatalf("merged Len = %d, want 2", a.Len())
	}
	// Merge does not let Always overwrite an existing register entry.
	b2 := New(seqabs.Abstract)
	b2.Put(store, store, commute.CondAlways)
	a.Merge(b2)
	store6 := []oplog.Sym{sym(adt.KindNumStore, "6")}
	if conflict, hit := a.Lookup(store, store6); !hit || !conflict {
		t.Fatalf("merge must keep register entry: conflict=%v hit=%v", conflict, hit)
	}
}

func TestModeAffectsKeys(t *testing.T) {
	abs := New(seqabs.Abstract)
	conc := New(seqabs.Concrete)
	if abs.Mode() != seqabs.Abstract || conc.Mode() != seqabs.Concrete {
		t.Fatalf("modes wrong")
	}
	short := idPair("2")
	long := append(idPair("2"), idPair("3")...)
	if abs.Key(short, short) != abs.Key(long, long) {
		t.Errorf("abstract keys must unify lengths")
	}
	if conc.Key(short, short) == conc.Key(long, long) {
		t.Errorf("concrete keys must distinguish lengths")
	}
}

func TestDump(t *testing.T) {
	c := New(seqabs.Abstract)
	c.Put(idPair("1"), idPair("2"), commute.CondAlways)
	d := c.Dump()
	if !strings.Contains(d, "always") || !strings.Contains(d, "(num.add num.add)+") {
		t.Errorf("Dump = %q", d)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(seqabs.Abstract)
	c.Put(idPair("1"), idPair("1"), commute.CondAlways)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				c.Lookup(idPair("3"), idPair("4"))
				c.Stats()
			}
		}()
	}
	wg.Wait()
	if st := c.Stats(); st.Lookups != 1600 {
		t.Fatalf("Lookups = %d, want 1600", st.Lookups)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	src := New(seqabs.Abstract)
	store := []oplog.Sym{sym(adt.KindNumStore, "5")}
	src.Put(idPair("1"), idPair("2"), commute.CondAlways)
	src.Put(store, store, commute.CondRegister)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := New(seqabs.Abstract)
	if err := dst.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != src.Len() {
		t.Fatalf("loaded %d entries, want %d", dst.Len(), src.Len())
	}
	if dst.Dump() != src.Dump() {
		t.Fatalf("round trip changed contents:\n%s\nvs\n%s", dst.Dump(), src.Dump())
	}
	// Loaded conditions behave: identity hit, different stores conflict.
	if conflict, hit := dst.Lookup(idPair("9"), idPair("4")); !hit || conflict {
		t.Fatalf("loaded identity pair: conflict=%v hit=%v", conflict, hit)
	}
	store6 := []oplog.Sym{sym(adt.KindNumStore, "6")}
	if conflict, hit := dst.Lookup(store, store6); !hit || !conflict {
		t.Fatalf("loaded store pair: conflict=%v hit=%v", conflict, hit)
	}
}

func TestLoadRejectsModeMismatch(t *testing.T) {
	src := New(seqabs.Concrete)
	src.Put(idPair("1"), idPair("2"), commute.CondAlways)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := New(seqabs.Abstract)
	if err := dst.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatalf("mode mismatch must be rejected")
	}
	if dst.Len() != 0 {
		t.Fatalf("failed load must leave cache unchanged")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dst := New(seqabs.Abstract)
	for _, bad := range []string{
		"not json",
		`{"format":99,"mode":"abstract","entries":{}}`,
		`{"format":1,"mode":"abstract","entries":{"k":"bogus-kind"}}`,
	} {
		if err := dst.Load(strings.NewReader(bad)); err == nil {
			t.Errorf("input %q must be rejected", bad)
		}
	}
	if dst.Len() != 0 {
		t.Fatalf("failed loads must leave cache unchanged")
	}
}

func TestModeFromString(t *testing.T) {
	if m, err := ModeFromString("abstract"); err != nil || m != seqabs.Abstract {
		t.Errorf("abstract: %v %v", m, err)
	}
	if m, err := ModeFromString("concrete"); err != nil || m != seqabs.Concrete {
		t.Errorf("concrete: %v %v", m, err)
	}
	if _, err := ModeFromString("weird"); err == nil {
		t.Errorf("unknown mode must error")
	}
}
