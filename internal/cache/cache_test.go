package cache

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/adt"
	"repro/internal/commute"
	"repro/internal/oplog"
	"repro/internal/seqabs"
)

func sym(kind, arg string) oplog.Sym { return oplog.Sym{Kind: kind, Arg: arg} }

func idPair(a string) []oplog.Sym {
	return []oplog.Sym{sym(adt.KindNumAdd, a), sym(adt.KindNumAdd, "-"+a)}
}

func TestPutLookupHit(t *testing.T) {
	c := New(seqabs.Abstract)
	c.Put(idPair("2"), idPair("3"), commute.CondRegister)
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	conflict, hit := c.Lookup(idPair("7"), idPair("9"))
	if !hit || conflict {
		t.Fatalf("Lookup = conflict=%v hit=%v", conflict, hit)
	}
	// Longer instance still hits under abstraction.
	long := append(idPair("1"), idPair("4")...)
	conflict, hit = c.Lookup(long, idPair("9"))
	if !hit || conflict {
		t.Fatalf("long Lookup = conflict=%v hit=%v", conflict, hit)
	}
}

func TestMissIsConservative(t *testing.T) {
	c := New(seqabs.Abstract)
	conflict, hit := c.Lookup(idPair("1"), idPair("2"))
	if hit || !conflict {
		t.Fatalf("empty cache must miss conservatively: conflict=%v hit=%v", conflict, hit)
	}
}

func TestCondNoneIgnored(t *testing.T) {
	c := New(seqabs.Abstract)
	c.Put(idPair("1"), idPair("2"), commute.CondNone)
	if c.Len() != 0 {
		t.Fatalf("CondNone must not be stored")
	}
}

func TestStats(t *testing.T) {
	c := New(seqabs.Abstract)
	c.Put(idPair("2"), idPair("3"), commute.CondAlways)
	c.Lookup(idPair("1"), idPair("2")) // hit
	c.Lookup(idPair("5"), idPair("6")) // hit, same key
	store := []oplog.Sym{sym(adt.KindNumStore, "5")}
	c.Lookup(store, store)       // miss
	c.Lookup(store, store)       // miss, same key
	c.Lookup(store, idPair("1")) // miss, new key
	st := c.Stats()
	if st.Lookups != 5 || st.Hits != 2 || st.Misses != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.UniqueQueries != 3 || st.UniqueHits != 1 || st.UniqueMisses != 2 {
		t.Fatalf("unique stats = %+v", st)
	}
	if got := st.UniqueMissRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("UniqueMissRate = %v, want 2/3", got)
	}
	c.ResetStats()
	if st := c.Stats(); st.Lookups != 0 || st.UniqueQueries != 0 {
		t.Fatalf("after reset: %+v", st)
	}
	if (Stats{}).UniqueMissRate() != 0 {
		t.Errorf("empty stats miss rate must be 0")
	}
}

func TestPutConflictResolution(t *testing.T) {
	c := New(seqabs.Abstract)
	// Register first, then Always for the same shape: register wins.
	store := []oplog.Sym{sym(adt.KindNumStore, "5")}
	c.Put(store, store, commute.CondRegister)
	c.Put(store, store, commute.CondAlways)
	// store(5) vs store(6) must still evaluate (and conflict) under the
	// kept register condition.
	store6 := []oplog.Sym{sym(adt.KindNumStore, "6")}
	conflict, hit := c.Lookup(store, store6)
	if !hit || !conflict {
		t.Fatalf("register condition must be kept: conflict=%v hit=%v", conflict, hit)
	}
}

func TestMerge(t *testing.T) {
	a := New(seqabs.Abstract)
	b := New(seqabs.Abstract)
	a.Put(idPair("1"), idPair("2"), commute.CondAlways)
	store := []oplog.Sym{sym(adt.KindNumStore, "5")}
	b.Put(store, store, commute.CondRegister)
	a.Merge(b)
	if a.Len() != 2 {
		t.Fatalf("merged Len = %d, want 2", a.Len())
	}
	// Merge does not let Always overwrite an existing register entry.
	b2 := New(seqabs.Abstract)
	b2.Put(store, store, commute.CondAlways)
	a.Merge(b2)
	store6 := []oplog.Sym{sym(adt.KindNumStore, "6")}
	if conflict, hit := a.Lookup(store, store6); !hit || !conflict {
		t.Fatalf("merge must keep register entry: conflict=%v hit=%v", conflict, hit)
	}
}

func TestModeAffectsKeys(t *testing.T) {
	abs := New(seqabs.Abstract)
	conc := New(seqabs.Concrete)
	if abs.Mode() != seqabs.Abstract || conc.Mode() != seqabs.Concrete {
		t.Fatalf("modes wrong")
	}
	short := idPair("2")
	long := append(idPair("2"), idPair("3")...)
	if abs.Key(short, short) != abs.Key(long, long) {
		t.Errorf("abstract keys must unify lengths")
	}
	if conc.Key(short, short) == conc.Key(long, long) {
		t.Errorf("concrete keys must distinguish lengths")
	}
}

func TestDump(t *testing.T) {
	c := New(seqabs.Abstract)
	c.Put(idPair("1"), idPair("2"), commute.CondAlways)
	d := c.Dump()
	if !strings.Contains(d, "always") || !strings.Contains(d, "(num.add num.add)+") {
		t.Errorf("Dump = %q", d)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(seqabs.Abstract)
	c.Put(idPair("1"), idPair("1"), commute.CondAlways)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				c.Lookup(idPair("3"), idPair("4"))
				c.Stats()
			}
		}()
	}
	wg.Wait()
	if st := c.Stats(); st.Lookups != 1600 {
		t.Fatalf("Lookups = %d, want 1600", st.Lookups)
	}
}

// distinctSeq builds length-distinct symbolic sequences: concrete keys
// render kind sequences, so varying the length yields distinct keys.
func distinctSeq(n int) []oplog.Sym {
	out := make([]oplog.Sym, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, sym(adt.KindNumAdd, "1"))
	}
	return out
}

func TestShardDistribution(t *testing.T) {
	c := NewSharded(seqabs.Concrete, 8)
	if c.NumShards() != 8 {
		t.Fatalf("NumShards = %d, want 8", c.NumShards())
	}
	const keys = 256
	for i := 1; i <= keys; i++ {
		c.Put(distinctSeq(i), distinctSeq(i+keys), commute.CondAlways)
	}
	if c.Len() != keys {
		t.Fatalf("Len = %d, want %d", c.Len(), keys)
	}
	lens := c.ShardLens()
	if len(lens) != 8 {
		t.Fatalf("ShardLens = %v", lens)
	}
	total := 0
	for i, n := range lens {
		total += n
		// A uniform hash puts ~32 keys per shard; any shard holding more
		// than half the keys means the hash is effectively unsharded.
		if n > keys/2 {
			t.Errorf("shard %d holds %d of %d keys — distribution collapsed", i, n, keys)
		}
	}
	if total != keys {
		t.Fatalf("shard lens sum to %d, want %d", total, keys)
	}
}

func TestNewShardedRoundsUp(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultShards}, {-3, DefaultShards}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {16, 16}, {17, 32},
	} {
		if got := NewSharded(seqabs.Abstract, tc.in).NumShards(); got != tc.want {
			t.Errorf("NewSharded(%d).NumShards = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestConcurrentPutLookupMerge exercises parallel writers, readers, and
// mergers under -race: the training-time contract (per-shard write locks)
// must hold while production-style lookups run.
func TestConcurrentPutLookupMerge(t *testing.T) {
	c := NewSharded(seqabs.Concrete, 4)
	other := New(seqabs.Concrete)
	for i := 1; i <= 32; i++ {
		other.Put(distinctSeq(i), distinctSeq(i+100), commute.CondRegister)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= 50; i++ {
				c.Put(distinctSeq(i%16+1), distinctSeq(i%16+200), commute.CondAlways)
				c.Lookup(distinctSeq(i%32+1), distinctSeq(i%32+100))
				if w == 0 && i%10 == 0 {
					c.Merge(other)
				}
				c.Stats()
			}
		}(w)
	}
	wg.Wait()
	if c.Len() == 0 {
		t.Fatal("no entries after concurrent writes")
	}
	st := c.Stats()
	if st.Lookups != 200 {
		t.Fatalf("Lookups = %d, want 200", st.Lookups)
	}
	if st.UniqueHits+st.UniqueMisses != st.UniqueQueries {
		t.Fatalf("unique stats inconsistent: %+v", st)
	}
}

// TestMergeOrderDeterminism asserts the satellite bugfix: merging the same
// training runs in any order yields identical cache contents, including
// when runs proved different non-Always kinds for one key.
func TestMergeOrderDeterminism(t *testing.T) {
	store := []oplog.Sym{sym(adt.KindNumStore, "5")}
	build := func() (*Cache, *Cache, *Cache) {
		a, b, d := New(seqabs.Abstract), New(seqabs.Abstract), New(seqabs.Abstract)
		a.Put(idPair("1"), idPair("2"), commute.CondAlways)
		a.Put(store, store, commute.CondRegister)
		b.Put(store, store, commute.CondStackIdentity) // conflicting non-Always kind
		b.Put(idPair("3"), idPair("4"), commute.CondRegister)
		d.Put(store, store, commute.CondAlways)
		return a, b, d
	}
	var dumps []string
	for _, order := range [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}} {
		a, b, d := build()
		caches := []*Cache{a, b, d}
		dst := New(seqabs.Abstract)
		for _, i := range order {
			dst.Merge(caches[i])
		}
		dumps = append(dumps, dst.Dump())
	}
	for i := 1; i < len(dumps); i++ {
		if dumps[i] != dumps[0] {
			t.Fatalf("merge order changed contents:\norder 0:\n%s\norder %d:\n%s", dumps[0], i, dumps[i])
		}
	}
	// The weakest kind must have won for the contested key.
	if !strings.Contains(dumps[0], "stack-identity") {
		t.Errorf("contested key did not resolve to the weakest kind:\n%s", dumps[0])
	}
}

// TestStatsFirstOutcome asserts the satellite bugfix: a key that misses
// and later hits (online learning) is classified by its first outcome, so
// UniqueHits + UniqueMisses == UniqueQueries always holds.
func TestStatsFirstOutcome(t *testing.T) {
	c := New(seqabs.Abstract)
	store := []oplog.Sym{sym(adt.KindNumStore, "5")}
	c.Lookup(store, store) // miss
	c.Put(store, store, commute.CondRegister)
	c.Lookup(store, store) // now hits, but the key's first query missed
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("totals = %+v", st)
	}
	if st.UniqueQueries != 1 || st.UniqueHits != 0 || st.UniqueMisses != 1 {
		t.Fatalf("unique stats must classify by first outcome: %+v", st)
	}
	if st.UniqueHits+st.UniqueMisses != st.UniqueQueries {
		t.Fatalf("invariant violated: %+v", st)
	}
	if got := st.UniqueMissRate(); got != 1 {
		t.Fatalf("UniqueMissRate = %v, want 1", got)
	}
}

func TestFreeze(t *testing.T) {
	c := New(seqabs.Abstract)
	store := []oplog.Sym{sym(adt.KindNumStore, "5")}
	c.Put(store, store, commute.CondRegister)
	if c.Frozen() {
		t.Fatal("new cache must not be frozen")
	}
	c.Freeze()
	if !c.Frozen() {
		t.Fatal("Freeze did not stick")
	}
	// Writes are dropped; reads and stats keep working.
	c.Put(idPair("1"), idPair("2"), commute.CondAlways)
	if c.Len() != 1 {
		t.Fatalf("Put on frozen cache must be a no-op; Len = %d", c.Len())
	}
	o := New(seqabs.Abstract)
	o.Put(idPair("1"), idPair("2"), commute.CondAlways)
	c.Merge(o)
	if c.Len() != 1 {
		t.Fatalf("Merge into frozen cache must be a no-op; Len = %d", c.Len())
	}
	var buf bytes.Buffer
	if err := o.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := c.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("Load into frozen cache must fail")
	}
	if conflict, hit := c.Lookup(store, store); !hit || conflict {
		t.Fatalf("frozen lookup: conflict=%v hit=%v", conflict, hit)
	}
	c.ResetStats()
	if st := c.Stats(); st.Lookups != 0 {
		t.Fatalf("ResetStats on frozen cache: %+v", st)
	}
	// Lock-free frozen reads must be race-clean under concurrency.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Lookup(store, store)
				c.Stats()
			}
		}()
	}
	wg.Wait()
	if st := c.Stats(); st.Hits != 400 {
		t.Fatalf("frozen concurrent Hits = %d, want 400", st.Hits)
	}
}

// TestFreezeDuringWrites races Freeze against concurrent trainers and
// readers: the all-shard lock handoff in Freeze must make every completed
// pre-freeze write visible to post-freeze lock-free readers (-race is the
// actual assertion here).
func TestFreezeDuringWrites(t *testing.T) {
	c := NewSharded(seqabs.Concrete, 4)
	// Seed one entry so the landed-writes assertion below can't lose the
	// race to Freeze on a single-core scheduler.
	c.Put(distinctSeq(1), distinctSeq(101), commute.CondAlways)
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= 100; i++ {
				c.Put(distinctSeq(i), distinctSeq(i+100), commute.CondAlways)
				c.Lookup(distinctSeq(i), distinctSeq(i+100))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Freeze()
	}()
	wg.Wait()
	if !c.Frozen() {
		t.Fatal("cache must end frozen")
	}
	n := c.Len()
	if n == 0 {
		t.Fatal("no writes landed before the freeze")
	}
	if again := c.Len(); again != n {
		t.Fatalf("frozen contents changed: %d vs %d", n, again)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	src := New(seqabs.Abstract)
	store := []oplog.Sym{sym(adt.KindNumStore, "5")}
	src.Put(idPair("1"), idPair("2"), commute.CondAlways)
	src.Put(store, store, commute.CondRegister)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := New(seqabs.Abstract)
	if err := dst.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != src.Len() {
		t.Fatalf("loaded %d entries, want %d", dst.Len(), src.Len())
	}
	if dst.Dump() != src.Dump() {
		t.Fatalf("round trip changed contents:\n%s\nvs\n%s", dst.Dump(), src.Dump())
	}
	// Loaded conditions behave: identity hit, different stores conflict.
	if conflict, hit := dst.Lookup(idPair("9"), idPair("4")); !hit || conflict {
		t.Fatalf("loaded identity pair: conflict=%v hit=%v", conflict, hit)
	}
	store6 := []oplog.Sym{sym(adt.KindNumStore, "6")}
	if conflict, hit := dst.Lookup(store, store6); !hit || !conflict {
		t.Fatalf("loaded store pair: conflict=%v hit=%v", conflict, hit)
	}
}

func TestLoadRejectsModeMismatch(t *testing.T) {
	src := New(seqabs.Concrete)
	src.Put(idPair("1"), idPair("2"), commute.CondAlways)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := New(seqabs.Abstract)
	if err := dst.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatalf("mode mismatch must be rejected")
	}
	if dst.Len() != 0 {
		t.Fatalf("failed load must leave cache unchanged")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dst := New(seqabs.Abstract)
	for _, bad := range []string{
		"not json",
		`{"format":99,"mode":"abstract","entries":{}}`,
		`{"format":1,"mode":"abstract","entries":{"k":"bogus-kind"}}`,
	} {
		if err := dst.Load(strings.NewReader(bad)); err == nil {
			t.Errorf("input %q must be rejected", bad)
		}
	}
	if dst.Len() != 0 {
		t.Fatalf("failed loads must leave cache unchanged")
	}
}

// saveSample saves a small cache and returns the artifact bytes.
func saveSample(t *testing.T) []byte {
	t.Helper()
	src := New(seqabs.Abstract)
	src.Put(idPair("1"), idPair("2"), commute.CondAlways)
	store := []oplog.Sym{sym(adt.KindNumStore, "5")}
	src.Put(store, store, commute.CondRegister)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSpecEnvelopeFields(t *testing.T) {
	raw := saveSample(t)
	var env map[string]any
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	if env["magic"] != "JANUS-SPEC" {
		t.Errorf("magic = %v", env["magic"])
	}
	if env["format"] != float64(2) {
		t.Errorf("format = %v", env["format"])
	}
	if env["mode"] != "abstract" {
		t.Errorf("mode = %v", env["mode"])
	}
	if s, ok := env["shards"].(float64); !ok || s < 1 {
		t.Errorf("shards = %v", env["shards"])
	}
	if _, ok := env["crc32"].(float64); !ok {
		t.Errorf("crc32 missing: %v", env["crc32"])
	}
}

// TestLoadRejectsBitFlip is the acceptance criterion: flipping any single
// payload bit must be caught by the checksum (or, if the flip breaks JSON
// syntax, by the parser) and reported as *SpecError, leaving the cache
// unchanged.
func TestLoadRejectsBitFlip(t *testing.T) {
	raw := saveSample(t)
	// Flip a bit inside the payload's entry data: find a key character
	// past the `"payload"` field start so the envelope metadata stays
	// intact and the corruption lands in checksummed bytes.
	at := bytes.Index(raw, []byte(`"entries"`))
	if at < 0 {
		t.Fatalf("no entries in artifact:\n%s", raw)
	}
	for _, flip := range []int{at + 12, at + 13, at + 14} {
		mut := append([]byte(nil), raw...)
		mut[flip] ^= 0x10
		dst := New(seqabs.Abstract)
		err := dst.Load(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("bit flip at %d not detected", flip)
		}
		var se *SpecError
		if !errors.As(err, &se) {
			t.Fatalf("bit flip at %d: error %v is not *SpecError", flip, err)
		}
		if dst.Len() != 0 {
			t.Fatalf("rejected load changed the cache (%d entries)", dst.Len())
		}
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	raw := saveSample(t)
	dst := New(seqabs.Abstract)
	err := dst.Load(bytes.NewReader(raw[:len(raw)/2]))
	var se *SpecError
	if !errors.As(err, &se) {
		t.Fatalf("truncated artifact: error %v is not *SpecError", err)
	}
}

func TestLoadSpecErrorReasons(t *testing.T) {
	cases := []struct {
		in   string
		want SpecReason
	}{
		{`{"magic":"OTHER-SPEC","format":2,"mode":"abstract","crc32":0,"payload":{}}`, SpecBadMagic},
		{`{"magic":"JANUS-SPEC","format":9,"mode":"abstract","crc32":0,"payload":{}}`, SpecBadFormat},
		{`{"magic":"JANUS-SPEC","format":2,"mode":"concrete","crc32":0,"payload":{}}`, SpecModeMismatch},
		{`{"magic":"JANUS-SPEC","format":2,"mode":"abstract","crc32":1,"payload":{"entries":{}}}`, SpecBadChecksum},
		{`not json`, SpecBadPayload},
		{`{"format":1,"mode":"abstract","entries":{"k":"bogus-kind"}}`, SpecBadEntry},
	}
	for _, tc := range cases {
		dst := New(seqabs.Abstract)
		err := dst.Load(strings.NewReader(tc.in))
		var se *SpecError
		if !errors.As(err, &se) {
			t.Errorf("input %q: error %v is not *SpecError", tc.in, err)
			continue
		}
		if se.Reason != tc.want {
			t.Errorf("input %q: reason %v, want %v", tc.in, se.Reason, tc.want)
		}
	}
}

// TestLoadLegacyV1 keeps pre-envelope artifacts loadable: no integrity
// check is possible, but well-formed v1 specs must not be orphaned.
func TestLoadLegacyV1(t *testing.T) {
	dst := New(seqabs.Abstract)
	v1 := `{"format":1,"mode":"abstract","entries":{"num.add|num.add":"always"}}`
	if err := dst.Load(strings.NewReader(v1)); err != nil {
		t.Fatalf("legacy v1 spec rejected: %v", err)
	}
	if dst.Len() != 1 {
		t.Fatalf("legacy load: %d entries, want 1", dst.Len())
	}
}

func TestLoadFrozenIsErrFrozenNotSpecError(t *testing.T) {
	raw := saveSample(t)
	dst := New(seqabs.Abstract)
	dst.Freeze()
	err := dst.Load(bytes.NewReader(raw))
	if !errors.Is(err, ErrFrozen) {
		t.Fatalf("frozen load: %v, want ErrFrozen", err)
	}
	var se *SpecError
	if errors.As(err, &se) {
		t.Fatalf("ErrFrozen must not be a *SpecError (contract violation, not artifact fault)")
	}
}

func TestModeFromString(t *testing.T) {
	if m, err := ModeFromString("abstract"); err != nil || m != seqabs.Abstract {
		t.Errorf("abstract: %v %v", m, err)
	}
	if m, err := ModeFromString("concrete"); err != nil || m != seqabs.Concrete {
		t.Errorf("concrete: %v %v", m, err)
	}
	if _, err := ModeFromString("weird"); err == nil {
		t.Errorf("unknown mode must error")
	}
}
