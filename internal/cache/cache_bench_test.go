package cache

import (
	"strconv"
	"testing"

	"repro/internal/adt"
	"repro/internal/commute"
	"repro/internal/oplog"
	"repro/internal/seqabs"
)

// BenchmarkLookupHit measures the production-path cost of a cached
// commutativity query — the cost §5.3 argues stays "on a par with
// write-set detection".
func BenchmarkLookupHit(b *testing.B) {
	c := New(seqabs.Abstract)
	id := func(n string) []oplog.Sym {
		return []oplog.Sym{
			{Kind: adt.KindNumAdd, Arg: n}, {Kind: adt.KindNumAdd, Arg: "-" + n},
		}
	}
	c.Put(id("1"), id("2"), commute.CondRegister)
	q1, q2 := id("7"), id("9")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if conflict, hit := c.Lookup(q1, q2); !hit || conflict {
			b.Fatal("unexpected result")
		}
	}
}

func BenchmarkLookupMiss(b *testing.B) {
	c := New(seqabs.Abstract)
	q1 := []oplog.Sym{{Kind: adt.KindNumStore, Arg: "1"}, {Kind: adt.KindNumLoad}}
	q2 := []oplog.Sym{{Kind: adt.KindNumAdd, Arg: "5"}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, hit := c.Lookup(q1, q2); hit {
			b.Fatal("unexpected hit")
		}
	}
}

func BenchmarkLookupStackIdentity(b *testing.B) {
	c := New(seqabs.Abstract)
	bal := func(n int) []oplog.Sym {
		var out []oplog.Sym
		for i := 0; i < n; i++ {
			out = append(out,
				oplog.Sym{Kind: adt.KindListPush, Arg: strconv.Itoa(i)},
				oplog.Sym{Kind: adt.KindListPop})
		}
		return out
	}
	c.Put(bal(2), bal(3), commute.CondStackIdentity)
	q1, q2 := bal(5), bal(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if conflict, hit := c.Lookup(q1, q2); !hit || conflict {
			b.Fatal("unexpected result")
		}
	}
}
