package cache

import (
	"strconv"
	"testing"

	"repro/internal/adt"
	"repro/internal/commute"
	"repro/internal/oplog"
	"repro/internal/seqabs"
)

// BenchmarkLookupHit measures the production-path cost of a cached
// commutativity query — the cost §5.3 argues stays "on a par with
// write-set detection".
func BenchmarkLookupHit(b *testing.B) {
	c := New(seqabs.Abstract)
	id := func(n string) []oplog.Sym {
		return []oplog.Sym{
			{Kind: adt.KindNumAdd, Arg: n}, {Kind: adt.KindNumAdd, Arg: "-" + n},
		}
	}
	c.Put(id("1"), id("2"), commute.CondRegister)
	q1, q2 := id("7"), id("9")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if conflict, hit := c.Lookup(q1, q2); !hit || conflict {
			b.Fatal("unexpected result")
		}
	}
}

func BenchmarkLookupMiss(b *testing.B) {
	c := New(seqabs.Abstract)
	q1 := []oplog.Sym{{Kind: adt.KindNumStore, Arg: "1"}, {Kind: adt.KindNumLoad}}
	q2 := []oplog.Sym{{Kind: adt.KindNumAdd, Arg: "5"}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, hit := c.Lookup(q1, q2); hit {
			b.Fatal("unexpected hit")
		}
	}
}

// lookupParallel hammers the cache with hit queries over a spread of keys
// from every worker — the access pattern of the detection loop at high
// thread counts. Concrete keys render the kind sequence, so varying the
// sequence lengths keeps the 64 key pairs distinct and spreads the load
// over the key space (and the shards).
func lookupParallel(b *testing.B, freeze bool) {
	c := New(seqabs.Concrete)
	seq := func(n int) []oplog.Sym {
		out := make([]oplog.Sym, 0, 2*n)
		for i := 0; i < n; i++ {
			out = append(out,
				oplog.Sym{Kind: adt.KindNumAdd, Arg: strconv.Itoa(i + 1)},
				oplog.Sym{Kind: adt.KindNumAdd, Arg: strconv.Itoa(-i - 1)})
		}
		return out
	}
	queries := make([][2][]oplog.Sym, 64)
	for i := range queries {
		s1, s2 := seq(i%8+1), seq(i/8+1)
		c.Put(s1, s2, commute.CondRegister)
		queries[i] = [2][]oplog.Sym{s1, s2}
	}
	if freeze {
		c.Freeze()
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			q := queries[i&(len(queries)-1)]
			i++
			if _, hit := c.Lookup(q[0], q[1]); !hit {
				b.Fatal("unexpected miss")
			}
		}
	})
}

// BenchmarkLookupParallel measures contended lookups in production mode
// (frozen cache, lock-free entry reads). Run with -cpu 1,4,8 to see how
// lookup throughput scales.
func BenchmarkLookupParallel(b *testing.B) { lookupParallel(b, true) }

// BenchmarkLookupParallelTraining is the same load against an unfrozen
// cache, where lookups take the shard read lock.
func BenchmarkLookupParallelTraining(b *testing.B) { lookupParallel(b, false) }

func BenchmarkLookupStackIdentity(b *testing.B) {
	c := New(seqabs.Abstract)
	bal := func(n int) []oplog.Sym {
		var out []oplog.Sym
		for i := 0; i < n; i++ {
			out = append(out,
				oplog.Sym{Kind: adt.KindListPush, Arg: strconv.Itoa(i)},
				oplog.Sym{Kind: adt.KindListPop})
		}
		return out
	}
	c.Put(bal(2), bal(3), commute.CondStackIdentity)
	q1, q2 := bal(5), bal(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if conflict, hit := c.Lookup(q1, q2); !hit || conflict {
			b.Fatal("unexpected result")
		}
	}
}
