package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/chaos"
	"repro/internal/conflict"
	"repro/internal/health"
	"repro/internal/obs"
	"repro/internal/rec"
	"repro/internal/stm"
	"repro/internal/workloads"
)

// RunReport is one profiled production run in machine-readable form:
// the full protocol accounting (stm.Stats with the abort-reason
// breakdown), conflict-detector accounting, commutativity-cache
// accounting, and wall-clock timing. This is the JSON shape BENCH_*.json
// trajectory entries use, so perf PRs leave a comparable regression
// trail.
type RunReport struct {
	Workload     string         `json:"workload"`
	Detector     string         `json:"detector"`
	Threads      int            `json:"threads"`
	Size         string         `json:"size"`
	Tasks        int            `json:"tasks"`
	CacheShards  int            `json:"cache_shards"`
	CacheFrozen  bool           `json:"cache_frozen"`
	SequentialNs int64          `json:"sequential_ns"`
	ElapsedNs    int64          `json:"elapsed_ns"`
	Speedup      float64        `json:"speedup"`
	Run          stm.Stats      `json:"run"`
	Conflict     conflict.Stats `json:"conflict"`
	Cache        cache.Stats    `json:"cache"`
	// SerializeAfter / BackoffBaseNs echo the contention-management knobs
	// the run used (omitted when disabled).
	SerializeAfter int   `json:"serialize_after,omitempty"`
	BackoffBaseNs  int64 `json:"backoff_base_ns,omitempty"`
	// CommitStripes echoes the commit-path lock table override the run
	// used (omitted when the stm default applied).
	CommitStripes int `json:"commit_stripes,omitempty"`
	// HistoryCompress / CompressAfter echo the committed-history
	// compression knobs (omitted when compression was off); the matching
	// accounting is run.demotions and run.hist_bytes.
	HistoryCompress bool `json:"history_compress,omitempty"`
	CompressAfter   int  `json:"compress_after,omitempty"`
	// OpsPerTxn / TxnSkew echo the heavy-workload shape knobs (omitted
	// for the paper workloads, which ignore them).
	OpsPerTxn int     `json:"ops_per_txn,omitempty"`
	TxnSkew   float64 `json:"txn_skew,omitempty"`
	// ChaosSeed and Chaos report fault injection: the seed the injector
	// ran with and the faults it actually delivered. Omitted when the run
	// was not chaos-enabled.
	ChaosSeed int64        `json:"chaos_seed,omitempty"`
	Chaos     *chaos.Stats `json:"chaos,omitempty"`
	// GovernorState / Demotions summarize a governed run for trajectory
	// diffing; Health carries the governor's full end-of-run snapshot.
	// All omitted unless Opts.Govern was set.
	GovernorState string        `json:"governor_state,omitempty"`
	Demotions     int64         `json:"demotions,omitempty"`
	Health        *health.Stats `json:"health,omitempty"`
	// Error is the run's failure, when it failed: the report then carries
	// whatever partial accounting was gathered, and consumers must treat
	// the run as unsuccessful (janus-bench exits nonzero).
	Error string `json:"error,omitempty"`
	// Trace summarizes the attached tracer (event counts, latency
	// histograms) when one was supplied.
	Trace map[string]any `json:"trace,omitempty"`
	// RecordPath / Record report op-trace capture (Opts.RecordPath):
	// where the artifact went and the recorder's counters. FlightDump is
	// true when the artifact was dumped by the flight recorder on a
	// governor demotion/trip rather than written at run end.
	RecordPath string     `json:"record_path,omitempty"`
	Record     *rec.Stats `json:"record,omitempty"`
	FlightDump bool       `json:"flight_dump,omitempty"`
	// Replay carries janus-replay's verification verdict when the report
	// describes a replayed trace instead of a live workload run.
	Replay *ReplayInfo `json:"replay,omitempty"`
}

// ReplayInfo is the replay-verification block of a janus-replay report.
type ReplayInfo struct {
	// Trace is the replayed artifact's path.
	Trace string `json:"trace"`
	// Commits is the number of transactions the trace retained.
	Commits int64 `json:"commits"`
	// DigestKind says what the recorded digest covers ("final",
	// "derived", or "none").
	DigestKind string `json:"digest_kind"`
	// RecordedDigest / SequentialDigest / ParallelDigest are hex
	// final-state fingerprints: from the trace footer, from commit-order
	// sequential replay, and from the parallel stm re-execution
	// (empty when that stage was skipped).
	RecordedDigest   string `json:"recorded_digest,omitempty"`
	SequentialDigest string `json:"sequential_digest"`
	ParallelDigest   string `json:"parallel_digest,omitempty"`
	// Match reports that every computed digest agreed with the recorded
	// one (vacuously true for stages that didn't run).
	Match bool `json:"match"`
}

// ProfileRun trains the hindsight engine for w (unless the write-set
// baseline is selected), executes one wall-clock production run with the
// given tracer attached, and returns the full accounting. tracer may be
// nil for untraced JSON reports. On failure the returned report carries
// the error and any partial stats alongside the non-nil error, so callers
// can emit a machine-readable failure record instead of dropping the run.
func ProfileRun(w *workloads.Workload, det Detection, threads int, o Opts, tracer *obs.Trace) (RunReport, error) {
	o = o.defaults()
	tasks := w.Tasks(o.Size, prodSeed)
	rep := RunReport{
		Workload:       w.Name,
		Detector:       det.String(),
		Threads:        threads,
		Size:           o.Size.String(),
		Tasks:          len(tasks),
		SerializeAfter: o.SerializeAfter,
		BackoffBaseNs:  int64(o.BackoffBase),
		CommitStripes:  o.CommitStripes,
		ChaosSeed:      o.ChaosSeed,
	}
	if o.HistoryCompress {
		rep.HistoryCompress = true
		rep.CompressAfter = o.CompressAfter
	}
	if w.Name == workloads.HeavyName {
		rep.OpsPerTxn = o.OpsPerTxn
		rep.TxnSkew = o.TxnSkew
	}
	fail := func(err error) (RunReport, error) {
		rep.Error = err.Error()
		return rep, err
	}

	engine, err := o.trainEngine(w, false)
	if err != nil {
		return fail(fmt.Errorf("bench: training %s: %w", w.Name, err))
	}
	engine.Cache().ResetStats()

	seqStart := time.Now()
	if _, err := stm.RunSequential(w.NewState(), tasks); err != nil {
		return fail(fmt.Errorf("bench: sequential %s: %w", w.Name, err))
	}
	rep.SequentialNs = int64(time.Since(seqStart))

	d := o.detectorFor(engine, det)
	var inj *chaos.Injector
	var hooks *stm.Hooks
	if o.ChaosSeed != 0 {
		cc := chaos.Config{
			Seed:      o.ChaosSeed,
			AbortProb: 0.25, AbortMaxPerTask: 3,
			DelayProb: 0.2, MaxDelay: 200 * time.Microsecond,
			MissProb: 0.25,
		}
		if o.Govern {
			// Give the governor something to govern: a contiguous burst of
			// forced misses early in the run, so the demotion → probe →
			// restore cycle shows up in the report.
			cc.StormStart, cc.StormLen = 1, 500
		}
		inj = chaos.New(cc)
		hooks = inj.Hooks()
		if seq, ok := d.(*conflict.Sequence); ok {
			seq.ForceMiss = inj.ForceMiss
		}
	}
	var tr obs.Tracer
	if tracer != nil {
		tr = tracer
	}
	var recorder *rec.Recorder
	var sink stm.CommitSink
	var flightWG sync.WaitGroup
	var flightDumping atomic.Bool
	flightDumped := false
	if o.RecordPath != "" {
		recorder = rec.New(rec.Meta{
			Workload:  w.Name,
			Detector:  det.String(),
			Ordered:   w.Ordered,
			Privatize: stm.PrivatizePersistent,
			Threads:   threads,
			Tasks:     len(tasks),
			Seed:      prodSeed,
		}, w.NewState(), rec.Options{
			Compress:     o.RecordGzip,
			FlightChunks: o.FlightChunks,
		})
		sink = recorder
		// Tee protocol events into the trace alongside the op logs.
		tr = recorder.Tracer(tr)
	}
	var gov *health.Governor
	var stmGov stm.Governor
	if o.Govern {
		hc := health.Config{Window: o.GovernWindow, Tracer: tr}
		if recorder != nil && o.FlightChunks > 0 {
			// The flight-recorder incident hook: a demotion or trip dumps
			// whatever the chunk ring holds. Restores don't — the artifact
			// of interest is the state at the incident. The hook runs under
			// the governor's transition lock and must return promptly, so
			// the disk dump happens on a single-flight goroutine; a repeat
			// incident while a dump is in progress is skipped (the recorder
			// snapshot is taken at write time either way).
			hc.OnTransition = func(from, to health.State, detail string) {
				if to <= from || !flightDumping.CompareAndSwap(false, true) {
					return
				}
				flightWG.Add(1)
				go func() {
					defer flightWG.Done()
					defer flightDumping.Store(false)
					if err := recorder.WriteFile(o.RecordPath); err == nil {
						flightDumped = true
					}
				}()
			}
		}
		gov = health.NewGovernor(d, nil, hc)
		health.Publish("janus.health", gov)
		d = gov
		stmGov = gov
	}
	start := time.Now()
	final, stats, err := stm.Run(stm.Config{
		Threads:         threads,
		Ordered:         w.Ordered,
		Detector:        d,
		Privatize:       stm.PrivatizePersistent,
		Tracer:          tr,
		Backoff:         stm.Backoff{Base: o.BackoffBase},
		SerializeAfter:  o.SerializeAfter,
		Hooks:           hooks,
		Governor:        stmGov,
		Record:          sink,
		CommitStripes:   o.CommitStripes,
		HistoryCompress: o.HistoryCompress,
		CompressAfter:   o.CompressAfter,
	}, w.NewState(), tasks)
	rep.ElapsedNs = int64(time.Since(start))
	rep.Run = stats
	inner := d
	if gov != nil {
		hs := gov.Stats()
		rep.GovernorState = hs.State
		rep.Demotions = hs.Demotions
		rep.Health = &hs
		inner = gov.Primary()
	}
	switch dd := inner.(type) {
	case *conflict.WriteSet:
		rep.Conflict = dd.Stats()
	case *conflict.Sequence:
		rep.Conflict = dd.Stats()
	}
	rep.Cache = engine.Cache().Stats()
	rep.CacheShards = engine.Cache().NumShards()
	rep.CacheFrozen = engine.Cache().Frozen()
	if inj != nil {
		cs := inj.Stats()
		rep.Chaos = &cs
	}
	if tracer != nil {
		rep.Trace = tracer.Vars()
	}
	if recorder != nil {
		// An async incident dump may still be in flight; wait so the
		// stream-dump fallback below sees the definitive flightDumped.
		flightWG.Wait()
		// Seal the capture with the run's final state (nil on failure:
		// the dump then reports no final digest rather than a wrong one).
		recorder.Close(final)
		rep.RecordPath = o.RecordPath
		rep.FlightDump = flightDumped
		if !flightDumped {
			// Stream mode (or an incident-free flight run, where an
			// end-of-run snapshot beats no artifact at all). An incident
			// dump is preserved as-is — overwriting it with the post-
			// recovery ring would destroy the evidence it captured.
			if werr := recorder.WriteFile(o.RecordPath); werr != nil {
				return fail(fmt.Errorf("bench: recording %s: %w", w.Name, werr))
			}
		}
		rs := recorder.Stats()
		rep.Record = &rs
	}
	if err != nil {
		return fail(fmt.Errorf("bench: %s/%s/%d: %w", w.Name, det, threads, err))
	}
	if rep.ElapsedNs > 0 {
		rep.Speedup = float64(rep.SequentialNs) / float64(rep.ElapsedNs)
	}
	return rep, nil
}

// WriteJSON renders reports as indented JSON (an array, one element per
// profiled run).
func WriteJSON(out io.Writer, reports []RunReport) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(reports)
}
