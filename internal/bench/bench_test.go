package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/vtime"
	"repro/internal/workloads"
)

func smallOpts() Opts {
	return Opts{
		Mode:      Simulated,
		Size:      workloads.Small,
		Threads:   []int{1, 4},
		Workloads: []string{"jfilesync", "weka"},
	}
}

func TestFigure9SmokeAndShape(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure9(&buf, smallOpts()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 9", "jfilesync", "weka", "average", "sequence", "write-set"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// 2 workloads × 2 detectors + 2 average rows + 2 header-ish lines.
	if lines := strings.Count(out, "\n"); lines < 8 {
		t.Errorf("too few lines:\n%s", out)
	}
}

func TestFigure10Smoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure10(&buf, smallOpts()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "retries per transaction") {
		t.Errorf("output: %s", buf.String())
	}
}

func TestFigure11Smoke(t *testing.T) {
	var buf bytes.Buffer
	opts := smallOpts()
	opts.Workloads = []string{"jfilesync"}
	if err := Figure11(&buf, opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "abstraction") || !strings.Contains(out, "no-abstraction") {
		t.Errorf("output: %s", out)
	}
}

func TestMeasureSequenceBeatsWriteSet(t *testing.T) {
	w, err := workloads.ByName("jfilesync")
	if err != nil {
		t.Fatal(err)
	}
	o := Opts{Mode: Simulated, Size: workloads.Small}
	seq, err := Measure(w, Seq, 4, o)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := Measure(w, WS, 4, o)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Speedup <= ws.Speedup {
		t.Fatalf("sequence %v must beat write-set %v", seq.Speedup, ws.Speedup)
	}
	if ws.Speedup >= 1 {
		t.Fatalf("write-set at 4 threads must stay below 1x, got %v", ws.Speedup)
	}
	if seq.RetryRatio > ws.RetryRatio {
		t.Fatalf("sequence retries %v must not exceed write-set %v", seq.RetryRatio, ws.RetryRatio)
	}
}

func TestMissRatesAbstractionNoWorse(t *testing.T) {
	w, err := workloads.ByName("jfilesync")
	if err != nil {
		t.Fatal(err)
	}
	withAbs, withoutAbs, err := MissRates(w, 4, Opts{Mode: Simulated, Size: workloads.Production})
	if err != nil {
		t.Fatal(err)
	}
	if withAbs > withoutAbs {
		t.Fatalf("abstraction must not increase misses: %v vs %v", withAbs, withoutAbs)
	}
	if withoutAbs == 0 {
		t.Fatalf("production inputs must miss without abstraction (deeper recursion than training)")
	}
}

func TestTables(t *testing.T) {
	var buf bytes.Buffer
	Table5(&buf)
	out := buf.String()
	for _, w := range workloads.All() {
		if !strings.Contains(out, w.Name) || !strings.Contains(out, w.Version) {
			t.Errorf("Table 5 missing %s", w.Name)
		}
	}
	buf.Reset()
	Table6(&buf)
	out = buf.String()
	if !strings.Contains(out, "training data") || !strings.Contains(out, "production data") {
		t.Errorf("Table 6 header missing: %s", out)
	}
	for _, w := range workloads.All() {
		if !strings.Contains(out, w.TrainingInput) {
			t.Errorf("Table 6 missing input for %s", w.Name)
		}
	}
}

func TestTrainingSummary(t *testing.T) {
	var buf bytes.Buffer
	if err := TrainingSummary(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cache entries=") {
		t.Errorf("summary: %s", buf.String())
	}
}

func TestUnknownWorkloadErrors(t *testing.T) {
	o := Opts{Workloads: []string{"nope"}}
	var buf bytes.Buffer
	if err := Figure9(&buf, o); err == nil {
		t.Fatalf("unknown workload must error")
	}
}

func TestWallClockModeSmoke(t *testing.T) {
	w, err := workloads.ByName("pmd")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Measure(w, Seq, 2, Opts{Mode: WallClock, Size: workloads.Small, ProdRuns: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup <= 0 {
		t.Fatalf("wall-clock speedup must be positive, got %v", res.Speedup)
	}
}

func TestModeAndDetectionStrings(t *testing.T) {
	if Simulated.String() != "simulated" || WallClock.String() != "wall-clock" {
		t.Errorf("mode strings wrong")
	}
	if Seq.String() != "sequence" || WS.String() != "write-set" {
		t.Errorf("detection strings wrong")
	}
}

func TestTimelineSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Timeline(&buf, "jfilesync", 4, Opts{Size: workloads.Small}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Timeline: jfilesync", "makespan=", "attempts"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	if err := Timeline(&buf, "nope", 4, Opts{}); err == nil {
		t.Errorf("unknown workload must error")
	}
}

func TestMachineOverride(t *testing.T) {
	w, err := workloads.ByName("jfilesync")
	if err != nil {
		t.Fatal(err)
	}
	base := Opts{Mode: Simulated, Size: workloads.Small}
	wide := base
	wide.Machine = &vtime.Machine{Cores: 16, SMTBonus: 0.25}
	capped, err := Measure(w, Seq, 8, base)
	if err != nil {
		t.Fatal(err)
	}
	uncapped, err := Measure(w, Seq, 8, wide)
	if err != nil {
		t.Fatal(err)
	}
	if uncapped.Speedup <= capped.Speedup {
		t.Fatalf("16-core machine must beat the 4-core testbed: %v vs %v",
			uncapped.Speedup, capped.Speedup)
	}
}
