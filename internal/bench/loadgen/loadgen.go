// Package loadgen is the janus-serve load-generator client: concurrent clients per tenant submit
// deterministic batches over HTTP, honor the typed shed replies
// (Retry-After backoff, duplicate-as-applied, deadline retry), and then
// verify the service's exactly-once contract — every accepted batch
// appears in the tenant journal exactly once and the committed state
// digest equals a sequential-oracle replay of the journal. This is the
// client half of the CI serving smoke test; the shell half SIGTERMs the
// daemon and asserts a clean drain.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/rec"
	"repro/internal/serve"
)

// Opts parameterize a load-generation run against janus-serve.
type Opts struct {
	// URL is the base address of a running janus-serve, e.g.
	// "http://127.0.0.1:8085".
	URL string
	// Tenants, Clients, and Batches shape the run: Tenants independent
	// namespaces, Clients concurrent clients per tenant, Batches batches
	// per client. Zero means 2/4/8.
	Tenants int
	Clients int
	Batches int
	// Attempts bounds the per-batch retry loop (sheds and lost replies
	// are retried; a batch that exhausts the budget counts as given up,
	// which is allowed — it must then NOT appear in the journal).
	// Zero means 60.
	Attempts int
	// Timeout is the per-request HTTP timeout; zero means 30s.
	Timeout time.Duration
	// SeqBase offsets every client's batch sequence numbers. A run
	// against a restarted durable daemon sets SeqBase to the previous
	// run's Batches so its fresh IDs cannot collide with pre-crash ones.
	SeqBase int
	// Resume, with SeqBase > 0, first resubmits every pre-crash batch ID
	// (seq in [0, SeqBase)) and requires the service to resolve each
	// exactly once: 409 carrying the original verdict (journal position
	// and digest) when the batch survived the crash, or a fresh 200 when
	// its record never reached the journal. This is the client half of
	// the crash-restart smoke — it proves acked work is never silently
	// lost or re-applied across a kill.
	Resume bool
}

func (o Opts) withDefaults() Opts {
	if o.Tenants <= 0 {
		o.Tenants = 2
	}
	if o.Clients <= 0 {
		o.Clients = 4
	}
	if o.Batches <= 0 {
		o.Batches = 8
	}
	if o.Attempts <= 0 {
		o.Attempts = 60
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	return o
}

// TenantResult is one tenant's verification outcome.
type TenantResult struct {
	Tenant   string `json:"tenant"`
	Applied  int64  `json:"applied"`
	Accepted int    `json:"accepted"`
	Digest   string `json:"digest"`
	Oracle   string `json:"oracle_digest"`
	OK       bool   `json:"ok"`
}

// Report summarizes a load-generation run.
type Report struct {
	Submitted int64          `json:"submitted"`
	Accepted  int64          `json:"accepted"`
	Sheds     int64          `json:"sheds"`
	Deadlines int64          `json:"deadline_misses"`
	GaveUp    int64          `json:"gave_up"`
	// Resubmitted and Recovered describe the Resume phase: pre-crash IDs
	// replayed, and how many came back 409 with their original verdict
	// (the rest applied fresh — their pre-crash submission never
	// journaled).
	Resubmitted int64          `json:"resubmitted,omitempty"`
	Recovered   int64          `json:"recovered,omitempty"`
	Tenants     []TenantResult `json:"tenants"`
	OK          bool           `json:"ok"`
}

// batchFor builds the deterministic batch for (tenant, client, seq):
// a mixed-ADT workload over the default schema whose sequential replay is
// the verification oracle. Content is a pure function of the indices, so
// the oracle needs no channel back from the submitting goroutines.
func batchFor(tenant string, cl, seq int) *serve.Batch {
	id := fmt.Sprintf("%s-c%d-b%d", tenant, cl, seq)
	b := &serve.Batch{ID: id}
	for task := 0; task < 4; task++ {
		var ops []serve.OpSpec
		switch task % 4 {
		case 0:
			ops = []serve.OpSpec{
				{Op: "add", Loc: "c0", Delta: int64(cl*100 + seq)},
				{Op: "push", Loc: "stk", Delta: int64(seq)},
			}
		case 1:
			ops = []serve.OpSpec{
				{Op: "put", Loc: "kv", Key: fmt.Sprintf("k-%d-%d", cl, seq), Val: id},
				{Op: "add", Loc: "c1", Delta: 1},
			}
		case 2:
			ops = []serve.OpSpec{
				{Op: "load", Loc: "c0"},
				{Op: "sub", Loc: "c2", Delta: int64(seq)},
			}
		default:
			ops = []serve.OpSpec{
				{Op: "get", Loc: "kv", Key: fmt.Sprintf("k-%d-%d", cl, seq)},
				{Op: "add", Loc: "c3", Delta: 2},
			}
		}
		b.Tasks = append(b.Tasks, serve.TaskSpec{Ops: ops})
	}
	return b
}

// Run drives a running janus-serve and verifies the exactly-once and
// digest invariants. It returns a report plus an error when the run could
// not complete (transport-level failure); invariant violations are
// reported via report.OK=false with details on out.
func Run(out io.Writer, opts Opts) (Report, error) {
	opts = opts.withDefaults()
	client := &http.Client{Timeout: opts.Timeout}
	var rep Report

	tenants := make([]string, opts.Tenants)
	for i := range tenants {
		tenants[i] = fmt.Sprintf("t%d", i)
	}
	// accepted[tenant] is the set of batch IDs a client saw accepted
	// (200, or 409 on a retry after a lost reply).
	accepted := make(map[string]map[string]bool, len(tenants))
	for _, tn := range tenants {
		accepted[tn] = make(map[string]bool)
	}

	// Resume phase: before generating fresh load, replay every pre-crash
	// batch ID and pin down its fate. Each must land exactly once.
	if opts.Resume && opts.SeqBase > 0 {
		for _, tn := range tenants {
			for cl := 0; cl < opts.Clients; cl++ {
				for seq := 0; seq < opts.SeqBase; seq++ {
					b := batchFor(tn, cl, seq)
					status, er, err := resubmit(client, opts, tn, b)
					if err != nil {
						return rep, err
					}
					rep.Resubmitted++
					switch status {
					case http.StatusOK:
						// Never journaled pre-crash; applied fresh now.
					case http.StatusConflict:
						if er.Applied <= 0 || er.Digest == "" {
							return rep, fmt.Errorf("loadgen: resume %s: 409 without original verdict (applied=%d digest=%q)",
								b.ID, er.Applied, er.Digest)
						}
						rep.Recovered++
					}
					accepted[tn][b.ID] = true
				}
			}
		}
		fmt.Fprintf(out, "loadgen: resume resolved %d pre-crash batches (%d survived the crash, %d applied fresh)\n",
			rep.Resubmitted, rep.Recovered, rep.Resubmitted-rep.Recovered)
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for _, tn := range tenants {
		for cl := 0; cl < opts.Clients; cl++ {
			wg.Add(1)
			go func(tenant string, cl int) {
				defer wg.Done()
				for seq := opts.SeqBase; seq < opts.SeqBase+opts.Batches; seq++ {
					b := batchFor(tenant, cl, seq)
					mu.Lock()
					rep.Submitted++
					mu.Unlock()
					ok, err := submitWithRetry(client, opts, tenant, b, &rep, &mu)
					if err != nil {
						fail(err)
						return
					}
					mu.Lock()
					if ok {
						rep.Accepted++
						accepted[tenant][b.ID] = true
					} else {
						rep.GaveUp++
					}
					mu.Unlock()
				}
			}(tn, cl)
		}
	}
	wg.Wait()
	if firstErr != nil {
		return rep, firstErr
	}

	// Verification: journal uniqueness, accepted ⊆ journal, and the
	// sequential-oracle digest per tenant.
	rep.OK = true
	for _, tn := range tenants {
		tr, err := verifyTenant(client, opts.URL, tn, accepted[tn])
		if err != nil {
			return rep, err
		}
		rep.Tenants = append(rep.Tenants, tr)
		if !tr.OK {
			rep.OK = false
			fmt.Fprintf(out, "loadgen: tenant %s FAILED: applied=%d digest=%s oracle=%s\n",
				tn, tr.Applied, tr.Digest, tr.Oracle)
		}
	}
	return rep, nil
}

// submitWithRetry pushes one batch until accepted or the attempt budget
// runs out, honoring the typed shed protocol.
func submitWithRetry(client *http.Client, opts Opts, tenant string, b *serve.Batch, rep *Report, mu *sync.Mutex) (bool, error) {
	for attempt := 0; attempt < opts.Attempts; attempt++ {
		body, err := json.Marshal(b)
		if err != nil {
			return false, err
		}
		resp, err := client.Post(opts.URL+"/submit?tenant="+tenant, "application/json", bytes.NewReader(body))
		if err != nil {
			// Transport hiccup: the outcome is unknown; the retry resolves
			// it (a duplicate reply means it was applied).
			time.Sleep(5 * time.Millisecond)
			continue
		}
		var er serve.ErrorReply
		if resp.StatusCode != http.StatusOK {
			_ = json.NewDecoder(resp.Body).Decode(&er)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK, http.StatusConflict:
			return true, nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			if er.Code == "" {
				return false, fmt.Errorf("loadgen: untyped %d shed for %s", resp.StatusCode, b.ID)
			}
			mu.Lock()
			rep.Sheds++
			mu.Unlock()
			wait := time.Duration(er.RetryAfterMS) * time.Millisecond
			if wait <= 0 || wait > 100*time.Millisecond {
				wait = 100 * time.Millisecond
			}
			time.Sleep(wait)
		case http.StatusGatewayTimeout:
			mu.Lock()
			rep.Deadlines++
			mu.Unlock()
			b.DeadlineMS = 0 // drop any tight deadline and retry sanely
		case serve.StatusCanceled:
			time.Sleep(5 * time.Millisecond)
		default:
			return false, fmt.Errorf("loadgen: unexpected status %d (%s: %s) for %s",
				resp.StatusCode, er.Code, er.Error, b.ID)
		}
	}
	return false, nil
}

// resubmit pushes one pre-crash batch until it resolves to a definitive
// 200 or 409, retrying sheds and transport hiccups. Anything else —
// including exhausting the budget — is an error: a restarted service
// must be able to answer for every previously-submitted ID.
func resubmit(client *http.Client, opts Opts, tenant string, b *serve.Batch) (int, serve.ErrorReply, error) {
	var er serve.ErrorReply
	for attempt := 0; attempt < opts.Attempts; attempt++ {
		body, err := json.Marshal(b)
		if err != nil {
			return 0, er, err
		}
		resp, err := client.Post(opts.URL+"/submit?tenant="+tenant, "application/json", bytes.NewReader(body))
		if err != nil {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		er = serve.ErrorReply{}
		if resp.StatusCode != http.StatusOK {
			_ = json.NewDecoder(resp.Body).Decode(&er)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK, http.StatusConflict:
			return resp.StatusCode, er, nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable,
			http.StatusGatewayTimeout, serve.StatusCanceled:
			wait := time.Duration(er.RetryAfterMS) * time.Millisecond
			if wait <= 0 || wait > 100*time.Millisecond {
				wait = 100 * time.Millisecond
			}
			time.Sleep(wait)
		default:
			return resp.StatusCode, er, fmt.Errorf("loadgen: resume %s: unexpected status %d (%s: %s)",
				b.ID, resp.StatusCode, er.Code, er.Error)
		}
	}
	return 0, er, fmt.Errorf("loadgen: resume %s: no definitive reply in %d attempts", b.ID, opts.Attempts)
}

// verifyTenant checks one tenant's journal and state digest against the
// deterministic batch oracle.
func verifyTenant(client *http.Client, base, tenant string, accepted map[string]bool) (TenantResult, error) {
	tr := TenantResult{Tenant: tenant}
	var j serve.JournalReply
	if err := getInto(client, base+"/journalz?tenant="+tenant, &j); err != nil {
		return tr, err
	}
	var st serve.StateReply
	if err := getInto(client, base+"/statez?tenant="+tenant, &st); err != nil {
		return tr, err
	}
	tr.Applied = st.Applied
	tr.Accepted = len(accepted)
	tr.Digest = st.Digest

	seen := make(map[string]bool, len(j.IDs))
	for _, id := range j.IDs {
		if seen[id] {
			return tr, fmt.Errorf("loadgen: tenant %s applied %s twice", tenant, id)
		}
		seen[id] = true
	}
	for id := range accepted {
		if !seen[id] {
			return tr, fmt.Errorf("loadgen: tenant %s lost accepted batch %s", tenant, id)
		}
	}
	if int64(len(j.IDs)) != j.Applied || j.Applied != st.Applied {
		return tr, fmt.Errorf("loadgen: tenant %s journal %d vs applied %d vs statez %d",
			tenant, len(j.IDs), j.Applied, st.Applied)
	}

	// Replay the journal order through the sequential oracle. Batch IDs
	// encode (client, seq), so content is reconstructible.
	sch := serve.DefaultSchema()
	oracle := serve.InitialState(sch)
	for _, id := range j.IDs {
		var cl, seq int
		if _, err := fmt.Sscanf(id, tenant+"-c%d-b%d", &cl, &seq); err != nil {
			return tr, fmt.Errorf("loadgen: tenant %s journal has foreign batch %s", tenant, id)
		}
		var err error
		oracle, err = serve.ApplySequential(oracle, sch, batchFor(tenant, cl, seq))
		if err != nil {
			return tr, fmt.Errorf("loadgen: oracle replay of %s: %v", id, err)
		}
	}
	tr.Oracle = rec.FormatDigest(rec.Digest(oracle))
	tr.OK = tr.Digest == tr.Oracle
	return tr, nil
}

func getInto(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// WriteJSON emits the report as indented JSON.
func WriteJSON(out io.Writer, rep Report) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
