// Package bench regenerates the JANUS evaluation (§7): the speedup curves
// of Figure 9, the retries-per-transaction ratios of Figure 10, the cache
// miss rates (with and without sequence abstraction) of Figure 11, and the
// Table 5 / Table 6 summaries. The harness follows the paper's
// methodology: five sequential training runs per benchmark, several
// production runs with the first (cold) run excluded, results averaged.
//
// Speedups come from the virtual-time machine simulator (internal/vtime)
// by default — the build host has a single CPU core, so wall-clock
// parallel speedup is physically meaningless there; see DESIGN.md. The
// wall-clock runtime (internal/stm) can be selected for multi-core hosts.
package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/adt"
	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/stm"
	"repro/internal/vtime"
	"repro/internal/workloads"
)

// Mode selects the measurement substrate.
type Mode int

// Measurement modes.
const (
	// Simulated runs the protocol on the virtual-time machine.
	Simulated Mode = iota
	// WallClock runs the real goroutine runtime and measures time.
	WallClock
)

// String renders the mode.
func (m Mode) String() string {
	if m == WallClock {
		return "wall-clock"
	}
	return "simulated"
}

// Detection names the detector compared in the figures.
type Detection int

// Detectors.
const (
	Seq Detection = iota
	WS
)

// String renders the detector name as the figures label it.
func (d Detection) String() string {
	if d == WS {
		return "write-set"
	}
	return "sequence"
}

// Opts configure a harness run.
type Opts struct {
	// Mode selects simulated or wall-clock measurement.
	Mode Mode
	// Size selects the input scale (Table 6 production by default).
	Size workloads.Size
	// ProdRuns is the number of measured production runs per
	// configuration, after one excluded cold run (the paper uses 10).
	// Simulated runs are deterministic, so 1 suffices there.
	ProdRuns int
	// Threads are the worker counts swept in Figures 9 and 10.
	Threads []int
	// Workloads filters the suite by name; empty means all.
	Workloads []string
	// Machine overrides the simulated host (nil = the paper's 4-core
	// 2-way-SMT Nehalem). The §7.2 discussion notes their hardware could
	// not run 8 threads fully in parallel; sweeping Cores projects the
	// evaluation onto modern machines.
	Machine *vtime.Machine
	// CacheShards overrides the commutativity cache's shard count
	// (0 = cache.DefaultShards).
	CacheShards int
	// SerializeAfter escalates starving transactions to irrevocable
	// serial mode after this many consecutive aborts in profiled runs
	// (0 = never).
	SerializeAfter int
	// BackoffBase enables bounded exponential retry backoff in profiled
	// runs (0 = retry immediately).
	BackoffBase time.Duration
	// ChaosSeed, when nonzero, runs profiled runs under deterministic
	// fault injection (internal/chaos) with this seed: forced aborts,
	// stretched commit windows, and forced commutativity-cache misses.
	ChaosSeed int64
	// Govern wraps profiled runs' detectors in the health governor
	// (internal/health): sliding-window miss/abort rates demote to
	// write-set detection and can trip the run to serial execution; the
	// report then records the governor's end-of-run snapshot. Combined
	// with ChaosSeed, the injector adds a contiguous miss storm so the
	// demotion path is actually exercised.
	Govern bool
	// GovernWindow overrides the governor's evaluation window size
	// (0 = the internal/health default).
	GovernWindow int
	// RecordPath, when set, captures each profiled run as a replayable
	// binary trace (internal/rec) and writes it there. With FlightChunks
	// = 0 the trace streams the whole run and is written at the end; with
	// FlightChunks > 0 the recorder keeps only that many recent chunks in
	// memory and dumps them to RecordPath the moment the health governor
	// demotes or trips (flight-recorder mode; requires Govern).
	RecordPath string
	// FlightChunks bounds the recorder's in-memory chunk ring (0 =
	// unbounded stream capture).
	FlightChunks int
	// RecordGzip compresses trace chunks.
	RecordGzip bool
	// CommitStripes overrides the runtime's commit-path lock table size
	// in profiled runs (0 = stm.DefaultCommitStripes; 1 = the paper's
	// single global commit lock, for baseline comparisons).
	CommitStripes int
	// HistoryCompress demotes committed-history entries past the
	// CompressAfter window to compact compressed records in profiled
	// runs: O(locations) bytes per old entry instead of O(ops), so large
	// history windows of heavy transactions stay flat in memory. The
	// report's run.demotions / run.hist_bytes record the effect.
	HistoryCompress bool
	// CompressAfter is the number of most-recent committed entries kept
	// in full form under HistoryCompress (0 = stm.DefaultCompressAfter).
	CompressAfter int
	// OpsPerTxn sets the synthetic heavy workload's operations per
	// transaction (0 = workloads.DefaultHeavyOps). Only the "heavy"
	// workload reads it.
	OpsPerTxn int
	// TxnSkew biases the heavy workload's location choice toward a hot
	// subset (0 = uniform); see workloads.Heavy.
	TxnSkew float64
}

// Resolve returns the named workload. The synthetic "heavy" workload is
// parameterized by the Opts knobs, so it is constructed here rather than
// fetched from the fixed paper suite.
func (o Opts) Resolve(name string) (*workloads.Workload, error) {
	if name == workloads.HeavyName {
		return workloads.Heavy(o.OpsPerTxn, o.TxnSkew), nil
	}
	return workloads.ByName(name)
}

func (o Opts) defaults() Opts {
	if o.ProdRuns == 0 {
		if o.Mode == WallClock {
			o.ProdRuns = 3
		} else {
			o.ProdRuns = 1
		}
	}
	if len(o.Threads) == 0 {
		o.Threads = []int{1, 2, 4, 8}
	}
	return o
}

func machineLabel(o Opts) string {
	if o.Machine == nil {
		return ""
	}
	return fmt.Sprintf(", machine=%d-core", o.Machine.Cores)
}

func (o Opts) suite() ([]*workloads.Workload, error) {
	if len(o.Workloads) == 0 {
		return workloads.All(), nil
	}
	var out []*workloads.Workload
	for _, name := range o.Workloads {
		w, err := o.Resolve(name)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

// prodSeed selects the measured production input (even ⇒ the large
// Table 6 variant).
const prodSeed = 2024

// Result is one (workload, detector, threads) measurement.
type Result struct {
	Workload   string
	Detector   string
	Threads    int
	Speedup    float64
	Tasks      int
	Retries    float64
	RetryRatio float64
}

// trainEngine builds and trains the hindsight engine for w under the
// given abstraction setting (five training runs, §7.1), then freezes the
// cache: the harness only measures production runs, which read the spec
// but never extend it.
func (o Opts) trainEngine(w *workloads.Workload, disableAbs bool) (*core.Engine, error) {
	engine := core.NewEngine(core.Options{
		DisableAbstraction: disableAbs,
		Relax:              w.Relaxations,
		CacheShards:        o.CacheShards,
	})
	if err := engine.TrainMany(w.NewState(), w.TrainingPayloads()); err != nil {
		return nil, err
	}
	engine.Freeze()
	return engine, nil
}

func (o Opts) detectorFor(engine *core.Engine, det Detection) conflict.Detector {
	if det == WS {
		return conflict.NewWriteSet()
	}
	return engine.Detector()
}

// Measure produces one Result.
func Measure(w *workloads.Workload, det Detection, threads int, o Opts) (Result, error) {
	o = o.defaults()
	engine, err := o.trainEngine(w, false)
	if err != nil {
		return Result{}, err
	}
	return measureWith(engine, w, det, threads, o)
}

func measureWith(engine *core.Engine, w *workloads.Workload, det Detection, threads int, o Opts) (Result, error) {
	tasks := w.Tasks(o.Size, prodSeed)
	res := Result{Workload: w.Name, Detector: det.String(), Threads: threads, Tasks: len(tasks)}
	if o.Mode == Simulated {
		// Deterministic: one cold run for cache-stat hygiene, then one
		// measured run (repeats would be identical).
		_, stats, err := vtime.Run(vtime.Config{
			Threads:  threads,
			Ordered:  w.Ordered,
			Detector: o.detectorFor(engine, det),
			Machine:  o.Machine,
		}, w.NewState(), tasks)
		if err != nil {
			return Result{}, err
		}
		res.Speedup = stats.Speedup
		res.Retries = float64(stats.Retries)
		res.RetryRatio = stats.RetryRatio()
		return res, nil
	}
	// Wall-clock mode.
	seqTime, err := wallSequential(w, tasks, o.ProdRuns)
	if err != nil {
		return Result{}, err
	}
	var elapsed time.Duration
	var retries int64
	runs := o.ProdRuns + 1 // first run cold, excluded
	for i := 0; i < runs; i++ {
		start := time.Now()
		_, stats, err := stm.Run(stm.Config{
			Threads:   threads,
			Ordered:   w.Ordered,
			Detector:  o.detectorFor(engine, det),
			Privatize: stm.PrivatizePersistent,
		}, w.NewState(), tasks)
		if err != nil {
			return Result{}, err
		}
		if i == 0 {
			continue
		}
		elapsed += time.Since(start)
		retries += stats.Retries
	}
	elapsed /= time.Duration(o.ProdRuns)
	res.Speedup = float64(seqTime) / float64(elapsed)
	res.Retries = float64(retries) / float64(o.ProdRuns)
	res.RetryRatio = res.Retries / float64(len(tasks))
	return res, nil
}

func wallSequential(w *workloads.Workload, tasks []adt.Task, runs int) (time.Duration, error) {
	var total time.Duration
	for i := 0; i < runs; i++ {
		start := time.Now()
		if _, err := stm.RunSequential(w.NewState(), tasks); err != nil {
			return 0, err
		}
		total += time.Since(start)
	}
	return total / time.Duration(runs), nil
}

// figureRows runs the (workload × detector × threads) sweep once and
// returns all results, reusing one trained engine per workload.
func figureRows(o Opts) ([]Result, error) {
	suite, err := o.suite()
	if err != nil {
		return nil, err
	}
	var rows []Result
	for _, w := range suite {
		engine, err := o.trainEngine(w, false)
		if err != nil {
			return nil, fmt.Errorf("bench: training %s: %w", w.Name, err)
		}
		for _, det := range []Detection{Seq, WS} {
			for _, th := range o.Threads {
				res, err := measureWith(engine, w, det, th, o)
				if err != nil {
					return nil, fmt.Errorf("bench: %s/%s/%d: %w", w.Name, det, th, err)
				}
				rows = append(rows, res)
			}
		}
	}
	return rows, nil
}

// Figure9 regenerates the speedup series: per benchmark and detector,
// speedup over the sequential baseline for each thread count.
func Figure9(out io.Writer, o Opts) error {
	o = o.defaults()
	rows, err := figureRows(o)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Figure 9: speedup vs sequential (input=%s, mode=%s%s)\n", o.Size, o.Mode, machineLabel(o))
	renderSeries(out, o, rows, func(r Result) float64 { return r.Speedup }, "%7.2f")
	return nil
}

// Figure10 regenerates the retries-to-transactions ratios.
func Figure10(out io.Writer, o Opts) error {
	o = o.defaults()
	rows, err := figureRows(o)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Figure 10: retries per transaction (input=%s, mode=%s)\n", o.Size, o.Mode)
	renderSeries(out, o, rows, func(r Result) float64 { return r.RetryRatio }, "%7.3f")
	return nil
}

// renderSeries prints one figure's rows plus per-detector averages.
func renderSeries(out io.Writer, o Opts, rows []Result, metric func(Result) float64, cell string) {
	fmt.Fprintf(out, "%-11s %-10s", "benchmark", "detector")
	for _, th := range o.Threads {
		fmt.Fprintf(out, " %7s", fmt.Sprintf("%dthr", th))
	}
	fmt.Fprintln(out)
	value := make(map[string]float64, len(rows))
	var names []string
	seen := map[string]bool{}
	for _, r := range rows {
		value[fmt.Sprintf("%s/%s/%d", r.Workload, r.Detector, r.Threads)] = metric(r)
		if !seen[r.Workload] {
			seen[r.Workload] = true
			names = append(names, r.Workload)
		}
	}
	for _, name := range names {
		for _, det := range []Detection{Seq, WS} {
			fmt.Fprintf(out, "%-11s %-10s", name, det)
			for _, th := range o.Threads {
				fmt.Fprintf(out, " "+cell, value[fmt.Sprintf("%s/%s/%d", name, det, th)])
			}
			fmt.Fprintln(out)
		}
	}
	for _, det := range []Detection{Seq, WS} {
		fmt.Fprintf(out, "%-11s %-10s", "average", det)
		for _, th := range o.Threads {
			sum := 0.0
			for _, name := range names {
				sum += value[fmt.Sprintf("%s/%s/%d", name, det, th)]
			}
			fmt.Fprintf(out, " "+cell, sum/float64(len(names)))
		}
		fmt.Fprintln(out)
	}
}

// MissRates measures the Figure 11 metrics for one workload: the unique
// conflict-query miss rate at the given thread count, with and without
// sequence abstraction.
func MissRates(w *workloads.Workload, threads int, o Opts) (withAbs, withoutAbs float64, err error) {
	o = o.defaults()
	tasks := w.Tasks(o.Size, prodSeed)
	for _, disable := range []bool{false, true} {
		engine, err := o.trainEngine(w, disable)
		if err != nil {
			return 0, 0, err
		}
		// Cold run, then reset accounting and measure (§7.1: averages
		// exclude the first run; unique-query rates are deterministic).
		for pass := 0; pass < 2; pass++ {
			if pass == 1 {
				engine.Cache().ResetStats()
			}
			if o.Mode == Simulated {
				if _, _, err := vtime.Run(vtime.Config{
					Threads:  threads,
					Ordered:  w.Ordered,
					Detector: engine.Detector(),
				}, w.NewState(), tasks); err != nil {
					return 0, 0, err
				}
			} else {
				if _, _, err := stm.Run(stm.Config{
					Threads:   threads,
					Ordered:   w.Ordered,
					Detector:  engine.Detector(),
					Privatize: stm.PrivatizePersistent,
				}, w.NewState(), tasks); err != nil {
					return 0, 0, err
				}
			}
		}
		rate := engine.Cache().Stats().UniqueMissRate()
		if disable {
			withoutAbs = rate
		} else {
			withAbs = rate
		}
	}
	return withAbs, withoutAbs, nil
}

// Figure11 regenerates the miss-rate comparison at the highest swept
// thread count (the paper reports 8 threads).
func Figure11(out io.Writer, o Opts) error {
	o = o.defaults()
	suite, err := o.suite()
	if err != nil {
		return err
	}
	threads := o.Threads[len(o.Threads)-1]
	fmt.Fprintf(out, "Figure 11: unique conflict-query miss rate (%d threads, input=%s, mode=%s)\n",
		threads, o.Size, o.Mode)
	fmt.Fprintf(out, "%-11s %12s %15s\n", "benchmark", "abstraction", "no-abstraction")
	var sumWith, sumWithout float64
	for _, w := range suite {
		withAbs, withoutAbs, err := MissRates(w, threads, o)
		if err != nil {
			return fmt.Errorf("bench: %s: %w", w.Name, err)
		}
		fmt.Fprintf(out, "%-11s %11.0f%% %14.0f%%\n", w.Name, withAbs*100, withoutAbs*100)
		sumWith += withAbs
		sumWithout += withoutAbs
	}
	n := float64(len(suite))
	fmt.Fprintf(out, "%-11s %11.0f%% %14.0f%%\n", "average", sumWith/n*100, sumWithout/n*100)
	return nil
}

// Table5 prints the benchmark characteristics.
func Table5(out io.Writer) {
	fmt.Fprintln(out, "Table 5: benchmark characteristics")
	fmt.Fprintf(out, "%-11s %-8s %-58s %s\n", "name", "version", "description", "prevalent patterns")
	for _, w := range workloads.All() {
		fmt.Fprintf(out, "%-11s %-8s %-58s %s\n", w.Name, w.Version, w.Desc, join(w.Patterns))
	}
}

// Table6 prints the training and production inputs.
func Table6(out io.Writer) {
	fmt.Fprintln(out, "Table 6: inputs for training and production runs")
	fmt.Fprintf(out, "%-11s %-55s %s\n", "benchmark", "training data", "production data")
	for _, w := range workloads.All() {
		fmt.Fprintf(out, "%-11s %-55s %s\n", w.Name, w.TrainingInput, w.ProductionInput)
	}
}

func join(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ", "
		}
		out += s
	}
	return out
}

// TrainingSummary prints the per-benchmark training reports (cache sizes,
// proved conditions, SAT verification counts) — useful context for the
// Figure 11 discussion.
func TrainingSummary(out io.Writer) error {
	fmt.Fprintln(out, "Training summary (5 payloads per benchmark, abstraction on)")
	for _, w := range workloads.All() {
		engine, err := Opts{}.trainEngine(w, false)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s: cache entries=%d\n", w.Name, engine.Cache().Len())
		for i, rep := range engine.Reports() {
			fmt.Fprintf(out, "  run %d: %s\n", i+1, rep)
		}
	}
	return nil
}

// Timeline runs one workload on the simulated machine with schedule
// recording and prints the per-task timeline (first start, commit time,
// attempts) in commit order — a Gantt-style view of how the detector's
// precision translates into scheduling.
func Timeline(out io.Writer, name string, threads int, o Opts) error {
	o = o.defaults()
	w, err := workloads.ByName(name)
	if err != nil {
		return err
	}
	engine, err := o.trainEngine(w, false)
	if err != nil {
		return err
	}
	tasks := w.Tasks(o.Size, prodSeed)
	_, stats, err := vtime.Run(vtime.Config{
		Threads:        threads,
		Ordered:        w.Ordered,
		Detector:       engine.Detector(),
		RecordTimeline: true,
	}, w.NewState(), tasks)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Timeline: %s, %d threads, %d tasks (input=%s)\n",
		w.Name, threads, stats.Tasks, o.Size)
	fmt.Fprintf(out, "makespan=%.0f units, speedup=%.2fx, retries=%d\n\n",
		stats.Makespan, stats.Speedup, stats.Retries)
	fmt.Fprintf(out, "%6s %12s %12s %9s\n", "task", "start", "commit", "attempts")
	const maxRows = 24
	rows := stats.Timeline
	truncated := 0
	if len(rows) > maxRows {
		truncated = len(rows) - maxRows
		rows = rows[:maxRows]
	}
	for _, tt := range rows {
		fmt.Fprintf(out, "%6d %12.0f %12.0f %9d\n", tt.Task, tt.Start, tt.Commit, tt.Attempts)
	}
	if truncated > 0 {
		fmt.Fprintf(out, "… %d more commits\n", truncated)
	}
	return nil
}
