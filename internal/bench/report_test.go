package bench

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/state"
	"repro/internal/stm"
	"repro/internal/workloads"
)

// failingWorkload is a synthetic benchmark whose training runs succeed but
// whose production task set (prodSeed) panics partway through, exercising
// the failure path of ProfileRun.
func failingWorkload() *workloads.Workload {
	return &workloads.Workload{
		Name: "synthetic-failure",
		Desc: "panics on the production input only",
		NewState: func() *state.State {
			st := state.New()
			st.Set("work", state.Int(0))
			return st
		},
		Tasks: func(size workloads.Size, seed int64) []adt.Task {
			add := func(n int64) adt.Task {
				return func(ex adt.Executor) error {
					return adt.Counter{L: "work"}.Add(ex, n)
				}
			}
			tasks := []adt.Task{add(1), add(2), add(3)}
			if seed == prodSeed {
				tasks = append(tasks, func(adt.Executor) error {
					panic("synthetic production fault")
				})
			}
			return tasks
		},
	}
}

func TestProfileRunFailureReport(t *testing.T) {
	w := failingWorkload()
	rep, err := ProfileRun(w, Seq, 2, Opts{Size: workloads.Small}, nil)
	if err == nil {
		t.Fatal("ProfileRun on a panicking workload returned nil error")
	}
	var pe *stm.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v does not unwrap to *stm.PanicError", err)
	}
	if rep.Error == "" || !strings.Contains(rep.Error, "panicked") {
		t.Fatalf("report Error = %q, want the panic surfaced", rep.Error)
	}
	if !strings.Contains(err.Error(), rep.Error) && rep.Error != err.Error() {
		t.Fatalf("report Error %q inconsistent with err %v", rep.Error, err)
	}
	if rep.Workload != "synthetic-failure" || rep.Tasks != 4 {
		t.Fatalf("partial report lost identity: %+v", rep)
	}
	// The failure record must survive the JSON round trip consumers see.
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []RunReport{rep}); err != nil {
		t.Fatal(err)
	}
	var back []RunReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Error != rep.Error {
		t.Fatalf("error field lost in JSON round trip: %+v", back)
	}
}

func TestProfileRunChaosReport(t *testing.T) {
	w, err := workloads.ByName("jfilesync")
	if err != nil {
		t.Fatal(err)
	}
	opts := Opts{
		Size:           workloads.Small,
		ChaosSeed:      42,
		SerializeAfter: 8,
		BackoffBase:    20 * time.Microsecond,
	}
	rep, err := ProfileRun(w, Seq, 2, opts, nil)
	if err != nil {
		t.Fatalf("chaos-enabled run failed: %v", err)
	}
	if rep.Error != "" {
		t.Fatalf("successful run carries Error %q", rep.Error)
	}
	if rep.ChaosSeed != 42 || rep.Chaos == nil {
		t.Fatalf("chaos accounting missing: seed=%d stats=%v", rep.ChaosSeed, rep.Chaos)
	}
	if rep.SerializeAfter != 8 || rep.BackoffBaseNs != int64(20*time.Microsecond) {
		t.Fatalf("contention knobs not echoed: %+v", rep)
	}
	if rep.Run.Commits != int64(rep.Tasks) {
		t.Fatalf("commits %d != tasks %d under chaos", rep.Run.Commits, rep.Tasks)
	}
}
