package bench

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/rec"
	"repro/internal/state"
	"repro/internal/stm"
	"repro/internal/workloads"
)

// failingWorkload is a synthetic benchmark whose training runs succeed but
// whose production task set (prodSeed) panics partway through, exercising
// the failure path of ProfileRun.
func failingWorkload() *workloads.Workload {
	return &workloads.Workload{
		Name: "synthetic-failure",
		Desc: "panics on the production input only",
		NewState: func() *state.State {
			st := state.New()
			st.Set("work", state.Int(0))
			return st
		},
		Tasks: func(size workloads.Size, seed int64) []adt.Task {
			add := func(n int64) adt.Task {
				return func(ex adt.Executor) error {
					return adt.Counter{L: "work"}.Add(ex, n)
				}
			}
			tasks := []adt.Task{add(1), add(2), add(3)}
			if seed == prodSeed {
				tasks = append(tasks, func(adt.Executor) error {
					panic("synthetic production fault")
				})
			}
			return tasks
		},
	}
}

func TestProfileRunFailureReport(t *testing.T) {
	w := failingWorkload()
	rep, err := ProfileRun(w, Seq, 2, Opts{Size: workloads.Small}, nil)
	if err == nil {
		t.Fatal("ProfileRun on a panicking workload returned nil error")
	}
	var pe *stm.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v does not unwrap to *stm.PanicError", err)
	}
	if rep.Error == "" || !strings.Contains(rep.Error, "panicked") {
		t.Fatalf("report Error = %q, want the panic surfaced", rep.Error)
	}
	if !strings.Contains(err.Error(), rep.Error) && rep.Error != err.Error() {
		t.Fatalf("report Error %q inconsistent with err %v", rep.Error, err)
	}
	if rep.Workload != "synthetic-failure" || rep.Tasks != 4 {
		t.Fatalf("partial report lost identity: %+v", rep)
	}
	// The failure record must survive the JSON round trip consumers see.
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []RunReport{rep}); err != nil {
		t.Fatal(err)
	}
	var back []RunReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Error != rep.Error {
		t.Fatalf("error field lost in JSON round trip: %+v", back)
	}
}

func TestProfileRunChaosReport(t *testing.T) {
	w, err := workloads.ByName("jfilesync")
	if err != nil {
		t.Fatal(err)
	}
	opts := Opts{
		Size:           workloads.Small,
		ChaosSeed:      42,
		SerializeAfter: 8,
		BackoffBase:    20 * time.Microsecond,
	}
	rep, err := ProfileRun(w, Seq, 2, opts, nil)
	if err != nil {
		t.Fatalf("chaos-enabled run failed: %v", err)
	}
	if rep.Error != "" {
		t.Fatalf("successful run carries Error %q", rep.Error)
	}
	if rep.ChaosSeed != 42 || rep.Chaos == nil {
		t.Fatalf("chaos accounting missing: seed=%d stats=%v", rep.ChaosSeed, rep.Chaos)
	}
	if rep.SerializeAfter != 8 || rep.BackoffBaseNs != int64(20*time.Microsecond) {
		t.Fatalf("contention knobs not echoed: %+v", rep)
	}
	if rep.Run.Commits != int64(rep.Tasks) {
		t.Fatalf("commits %d != tasks %d under chaos", rep.Run.Commits, rep.Tasks)
	}
}

// TestStatsSchemaRoundTrip pins the RunReport JSON schema for trajectory
// consumers: every stm.Stats field must carry a json tag (a new untagged
// field would silently serialize under its Go name and break diffing),
// and the contention/validation counters must appear under their
// documented keys.
func TestStatsSchemaRoundTrip(t *testing.T) {
	rt := reflect.TypeOf(stm.Stats{})
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if f.Tag.Get("json") == "" {
			t.Errorf("stm.Stats.%s has no json tag", f.Name)
		}
	}
	rep := RunReport{
		Workload: "schema", Detector: "seq", Threads: 2,
		Run: stm.Stats{
			Tasks: 1, Commits: 2, Retries: 3, Conflicts: 4,
			BackoffWaits: 5, Escalations: 6, CommitStalls: 7,
			ValidationsSkipped: 8, Demotions: 9, HistBytes: 10,
		},
	}
	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]string{
		"backoff_waits":       `"backoff_waits":5`,
		"escalations":         `"escalations":6`,
		"commit_stalls":       `"commit_stalls":7`,
		"validations_skipped": `"validations_skipped":8`,
		"demotions":           `"demotions":9`,
		"hist_bytes":          `"hist_bytes":10`,
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("report JSON missing %s: %s", key, out)
		}
	}
	var back RunReport
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Run, rep.Run) {
		t.Errorf("stats did not round-trip: %+v != %+v", back.Run, rep.Run)
	}
}

// TestProfileRunHeavyCompressed drives the heavy-transaction workload
// with history compression through ProfileRun: the run must demote, the
// knobs must echo in the report, and the accounting must survive the
// JSON round trip trajectory consumers diff.
func TestProfileRunHeavyCompressed(t *testing.T) {
	opts := Opts{
		Size:            workloads.Small,
		HistoryCompress: true, CompressAfter: 2,
		OpsPerTxn: 96, TxnSkew: 1,
	}
	w, err := opts.Resolve(workloads.HeavyName)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ProfileRun(w, Seq, 2, opts, nil)
	if err != nil {
		t.Fatalf("heavy compressed run failed: %v", err)
	}
	if rep.Run.Commits != int64(rep.Tasks) {
		t.Fatalf("commits %d != tasks %d", rep.Run.Commits, rep.Tasks)
	}
	if rep.Run.Demotions == 0 || rep.Run.HistBytes <= 0 {
		t.Fatalf("no demotion accounting: demotions=%d hist_bytes=%d",
			rep.Run.Demotions, rep.Run.HistBytes)
	}
	if !rep.HistoryCompress || rep.CompressAfter != 2 || rep.OpsPerTxn != 96 || rep.TxnSkew != 1 {
		t.Fatalf("knobs not echoed: %+v", rep)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []RunReport{rep}); err != nil {
		t.Fatal(err)
	}
	var back []RunReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Run.Demotions != rep.Run.Demotions ||
		back[0].Run.HistBytes != rep.Run.HistBytes || !back[0].HistoryCompress {
		t.Fatalf("compression accounting lost in round trip: %+v", back)
	}
}

// TestProfileRunRecordRoundTrip is the end-to-end acceptance check for
// stream capture: a recorded ProfileRun produces a trace file that decodes,
// carries a final digest, and replays sequentially to that digest.
func TestProfileRunRecordRoundTrip(t *testing.T) {
	w, err := workloads.ByName("jfilesync")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.trace")
	opts := Opts{Size: workloads.Small, RecordPath: path}
	rep, err := ProfileRun(w, Seq, 2, opts, nil)
	if err != nil {
		t.Fatalf("recorded run failed: %v", err)
	}
	if rep.RecordPath != path || rep.Record == nil {
		t.Fatalf("record accounting missing: path=%q record=%v", rep.RecordPath, rep.Record)
	}
	if rep.Record.Commits != rep.Run.Commits {
		t.Errorf("recorder saw %d commits, run committed %d", rep.Record.Commits, rep.Run.Commits)
	}
	if rep.FlightDump {
		t.Error("stream capture flagged as flight dump")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	trace, err := rec.ReadTrace(f)
	if err != nil {
		t.Fatalf("ReadTrace on ProfileRun artifact: %v", err)
	}
	if trace.Meta.Workload != w.Name || trace.Meta.Tasks != rep.Tasks {
		t.Errorf("trace meta %+v drifted from report", trace.Meta)
	}
	if trace.DigestKind != rec.DigestFinal {
		t.Fatalf("digest kind = %s, want final", trace.DigestKind)
	}
	st, err := trace.ReplaySequential(true)
	if err != nil {
		t.Fatalf("ReplaySequential: %v", err)
	}
	if got := rec.Digest(st); got != trace.Digest {
		t.Errorf("replay digest %016x != recorded %016x", got, trace.Digest)
	}
	if len(trace.Events) == 0 {
		t.Error("no protocol events teed into the trace")
	}
}

// TestProfileRunFlightDump drives the incident path: a governed chaos run
// with a flight ring must dump the trace on the governor's demotion, and
// the report must say so.
func TestProfileRunFlightDump(t *testing.T) {
	w, err := workloads.ByName("jfilesync")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "incident.trace")
	opts := Opts{
		Size:         workloads.Small,
		ChaosSeed:    42,
		Govern:       true,
		GovernWindow: 4,
		RecordPath:   path, FlightChunks: 4,
	}
	rep, err := ProfileRun(w, Seq, 2, opts, nil)
	if err != nil {
		t.Fatalf("governed chaos run failed: %v", err)
	}
	if rep.Health == nil || rep.Health.Demotions == 0 {
		t.Skipf("governor never demoted (health=%+v); flight dump not exercised", rep.Health)
	}
	if !rep.FlightDump {
		t.Fatal("governor demoted but report carries no flight dump")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("flight dump artifact missing: %v", err)
	}
	defer f.Close()
	trace, err := rec.ReadTrace(f)
	if err != nil {
		t.Fatalf("flight dump does not decode: %v", err)
	}
	// The dump happened mid-run (at the demotion), so it cannot carry a
	// final digest — it is either derived (lossless ring) or absent
	// (evictions).
	if trace.DigestKind == rec.DigestFinal {
		t.Error("mid-run flight dump claims a final digest")
	}
}
