// Package symrel performs the symbolic equivalence judgments of JANUS §6.2:
// given two propositional representations f and φ of a relation's content
// (produced by the Table 4 update rules), it asks the SAT solver for a
// satisfying assignment of ¬(f ↔ φ). If none exists the representations are
// confirmed equivalent.
//
// Assignments range over candidate tuples, so for each column at most one
// column=value atom may hold; these exclusivity constraints are added as
// clauses before solving (without them the encoding admits spurious
// distinguishing "tuples" that assign two values to one column).
package symrel

import (
	"errors"

	"repro/internal/logic"
	"repro/internal/sat"
)

// DefaultBudget bounds the SAT search per equivalence query. Queries that
// exceed it report ErrUnknown; JANUS treats that as a failed proof (a cache
// miss), never as a positive answer, so the budget cannot cause
// unsoundness.
const DefaultBudget = 200000

// ErrUnknown is returned when the solver cannot decide the query within
// its budget.
var ErrUnknown = errors.New("symrel: equivalence undecided within budget")

// Checker runs equivalence queries. The zero value uses DefaultBudget.
type Checker struct {
	// Budget bounds solver decisions per query; 0 means DefaultBudget.
	Budget int64
	// Stats counts queries by outcome.
	Stats Stats
}

// Stats tallies the checker's query outcomes.
type Stats struct {
	Queries    int
	Equivalent int
	Distinct   int
	Unknown    int
}

// Equivalent decides whether f and g describe the same relation content.
// The error is non-nil only for ErrUnknown.
func (c *Checker) Equivalent(f, g logic.Formula) (bool, error) {
	c.Stats.Queries++
	// Simplify the content formulas first: the Table 4 chains carry
	// heavy redundancy, and the rewrites (including per-column
	// contradiction) agree with the exclusivity constraints added below.
	// Simplification is itself super-linear, so very large formulas go
	// straight to the solver.
	const simplifyBudget = 1500
	if logic.Size(f) <= simplifyBudget {
		f = logic.Simplify(f)
	}
	if logic.Size(g) <= simplifyBudget {
		g = logic.Simplify(g)
	}
	query := logic.Not(logic.Iff(f, g))
	// Fast paths: structural equality and constant results.
	if query == logic.False {
		c.Stats.Equivalent++
		return true, nil
	}
	if query == logic.True {
		c.Stats.Distinct++
		return false, nil
	}
	cnf := logic.ToCNF(query)
	logic.ColumnExclusivity(&cnf, columnGroups(query))
	budget := c.Budget
	if budget == 0 {
		budget = DefaultBudget
	}
	res, err := sat.Solve(cnf.NumVars, cnf.Clauses, sat.Options{MaxDecisions: budget})
	switch {
	case err != nil || res.Status == sat.Unknown:
		c.Stats.Unknown++
		return false, ErrUnknown
	case res.Status == sat.Unsat:
		c.Stats.Equivalent++
		return true, nil
	default:
		c.Stats.Distinct++
		return false, nil
	}
}

// columnGroups partitions the formula's atoms by column, yielding the
// mutual-exclusivity groups.
func columnGroups(f logic.Formula) [][]logic.Atom {
	atoms := logic.Atoms(f)
	byCol := make(map[string][]logic.Atom)
	var order []string
	for _, a := range atoms {
		if _, ok := byCol[a.Col]; !ok {
			order = append(order, a.Col)
		}
		byCol[a.Col] = append(byCol[a.Col], a)
	}
	groups := make([][]logic.Atom, 0, len(order))
	for _, col := range order {
		if g := byCol[col]; len(g) > 1 {
			groups = append(groups, g)
		}
	}
	return groups
}
