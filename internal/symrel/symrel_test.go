package symrel

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/logic"
	"repro/internal/relation"
)

func bitset() *relation.Relation {
	return relation.New([]string{"idx", "val"},
		&relation.FD{Domain: []string{"idx"}, Range: []string{"val"}})
}

func tup(i, v string) relation.Tuple { return relation.Tuple{"idx": i, "val": v} }

func TestTrivialEquivalences(t *testing.T) {
	var c Checker
	a := logic.Atom{Col: "x", Val: "1"}
	cases := []struct {
		f, g logic.Formula
		want bool
	}{
		{logic.True, logic.True, true},
		{logic.True, logic.False, false},
		{a, a, true},
		{a, logic.Not(logic.Not(a)), true},
		{logic.And(a, logic.True), a, true},
		{a, logic.Or(a, a), true},
		{a, logic.Not(a), false},
	}
	for i, cse := range cases {
		got, err := c.Equivalent(cse.f, cse.g)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != cse.want {
			t.Errorf("case %d: Equivalent(%v, %v) = %v, want %v", i, cse.f, cse.g, got, cse.want)
		}
	}
	if c.Stats.Queries != len(cases) {
		t.Errorf("Queries = %d, want %d", c.Stats.Queries, len(cases))
	}
}

func TestColumnExclusivityApplied(t *testing.T) {
	var c Checker
	// Without exclusivity, idx=1 ∧ idx=2 is satisfiable, so
	// (idx=1 ∧ idx=2) ≢ false. With it, both are unsatisfiable — equal.
	f := logic.And(logic.Atom{Col: "idx", Val: "1"}, logic.Atom{Col: "idx", Val: "2"})
	eq, err := c.Equivalent(f, logic.False)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("idx=1 ∧ idx=2 must be equivalent to false under column exclusivity")
	}
}

// TestInsertOrderIndependence mirrors the paper's core use: two different
// operation orders on a BitSet yield content formulas that differ
// syntactically but must be confirmed equivalent.
func TestInsertOrderIndependence(t *testing.T) {
	var c Checker
	r1, r2 := bitset(), bitset()
	f1, f2 := r1.ContentFormula(), r2.ContentFormula()

	// Order A: set(1), set(2). Order B: set(2), set(1).
	f1 = r1.ContentInsert(f1, tup("1", "1"))
	r1.Insert(tup("1", "1"))
	f1 = r1.ContentInsert(f1, tup("2", "1"))
	r1.Insert(tup("2", "1"))

	f2 = r2.ContentInsert(f2, tup("2", "1"))
	r2.Insert(tup("2", "1"))
	f2 = r2.ContentInsert(f2, tup("1", "1"))
	r2.Insert(tup("1", "1"))

	eq, err := c.Equivalent(f1, f2)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("set(1);set(2) and set(2);set(1) must be equivalent\nf1=%v\nf2=%v", f1, f2)
	}
}

func TestConflictingWritesDistinct(t *testing.T) {
	var c Checker
	r1, r2 := bitset(), bitset()
	f1 := r1.ContentInsert(r1.ContentFormula(), tup("1", "0"))
	f2 := r2.ContentInsert(r2.ContentFormula(), tup("1", "1"))
	eq, err := c.Equivalent(f1, f2)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatalf("set(1,0) and set(1,1) must be distinct")
	}
}

// TestRandomSequencesAgainstConcrete cross-validates the SAT judgment
// against concrete relation equality over a bounded universe: if the SAT
// checker says equivalent, the concrete relations must be equal, and vice
// versa (the universe of the random ops covers all mentioned atoms).
func TestRandomSequencesAgainstConcrete(t *testing.T) {
	var c Checker
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 120; iter++ {
		rA, rB := bitset(), bitset()
		fA, fB := rA.ContentFormula(), rB.ContentFormula()
		for step := 0; step < 6; step++ {
			i, v := strconv.Itoa(rng.Intn(3)), strconv.Itoa(rng.Intn(2))
			u := tup(i, v)
			if rng.Intn(2) == 0 {
				fA = rA.ContentInsert(fA, u)
				rA.Insert(u)
			} else {
				fA = relation.ContentRemove(fA, u)
				rA.Remove(u)
			}
			i, v = strconv.Itoa(rng.Intn(3)), strconv.Itoa(rng.Intn(2))
			u = tup(i, v)
			if rng.Intn(2) == 0 {
				fB = rB.ContentInsert(fB, u)
				rB.Insert(u)
			} else {
				fB = relation.ContentRemove(fB, u)
				rB.Remove(u)
			}
		}
		eq, err := c.Equivalent(fA, fB)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if want := rA.Equal(rB); eq != want {
			t.Fatalf("iter %d: SAT says equivalent=%v, concrete equality=%v\nfA=%v\nfB=%v\nrA=%v\nrB=%v",
				iter, eq, want, fA, fB, rA, rB)
		}
	}
	if c.Stats.Equivalent+c.Stats.Distinct != c.Stats.Queries {
		t.Errorf("stats inconsistent: %+v", c.Stats)
	}
}

func TestBudgetYieldsUnknown(t *testing.T) {
	c := Checker{Budget: 1}
	// Build a formula pair needing some search: XOR chain.
	var f logic.Formula = logic.Atom{Col: "c0", Val: "1"}
	var g logic.Formula = logic.Atom{Col: "c0", Val: "1"}
	for i := 1; i < 14; i++ {
		a := logic.Atom{Col: "c" + strconv.Itoa(i), Val: "1"}
		f = logic.Xor(f, a)
		b := logic.Atom{Col: "c" + strconv.Itoa(14-i), Val: "1"}
		g = logic.Xor(g, b)
	}
	_, err := c.Equivalent(f, g)
	if err != ErrUnknown {
		t.Skipf("budget not reached on this instance (err=%v); solver too fast — acceptable", err)
	}
	if c.Stats.Unknown != 1 {
		t.Errorf("Unknown stat = %d, want 1", c.Stats.Unknown)
	}
}
