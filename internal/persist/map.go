// Package persist provides fully persistent data structures (Driscoll et
// al. [10] in the paper): every update returns a new version, and every
// version remains readable and updatable. JANUS §4.1 proposes such
// structures to reduce the cost of state privatization — CREATETRANSACTION
// can snapshot the shared state in O(1) instead of deep-copying it, and
// multiple transactions can concurrently derive modified versions.
//
// The package implements a hash-array-mapped trie map with string keys and
// a 32-way branching persistent vector, both with path copying.
package persist

import (
	"fmt"
	"math/bits"
)

const (
	branchBits = 5
	branchSize = 1 << branchBits // 32
	branchMask = branchSize - 1
)

// Map is a fully persistent string-keyed map. The zero value (and Nil
// pointer) is the empty map. All operations are O(log32 n) and never
// mutate the receiver.
type Map[V any] struct {
	root  node[V]
	count int
}

// NewMap returns the empty map.
func NewMap[V any]() *Map[V] { return &Map[V]{} }

// Len returns the number of entries.
func (m *Map[V]) Len() int {
	if m == nil {
		return 0
	}
	return m.count
}

// Get returns the value for key and whether it is present.
func (m *Map[V]) Get(key string) (V, bool) {
	var zero V
	if m == nil || m.root == nil {
		return zero, false
	}
	return m.root.get(hashString(key), 0, key)
}

// Set returns a new version of the map with key bound to v.
func (m *Map[V]) Set(key string, v V) *Map[V] {
	h := hashString(key)
	if m == nil {
		m = &Map[V]{}
	}
	if m.root == nil {
		return &Map[V]{root: leaf[V]{hash: h, key: key, val: v}, count: 1}
	}
	root, added := m.root.set(h, 0, key, v)
	n := m.count
	if added {
		n++
	}
	return &Map[V]{root: root, count: n}
}

// Delete returns a new version without key. Deleting an absent key returns
// the receiver unchanged.
func (m *Map[V]) Delete(key string) *Map[V] {
	if m == nil || m.root == nil {
		return m
	}
	root, removed := m.root.delete(hashString(key), 0, key)
	if !removed {
		return m
	}
	return &Map[V]{root: root, count: m.count - 1}
}

// Range calls fn for every entry until fn returns false. Iteration order
// is unspecified but deterministic for a given version.
func (m *Map[V]) Range(fn func(key string, v V) bool) {
	if m == nil || m.root == nil {
		return
	}
	m.root.each(fn)
}

// node is either a leaf, a collision bucket, or a bitmap-indexed branch.
type node[V any] interface {
	get(h uint64, shift uint, key string) (V, bool)
	set(h uint64, shift uint, key string, v V) (node[V], bool)
	delete(h uint64, shift uint, key string) (node[V], bool)
	each(fn func(string, V) bool) bool
}

type leaf[V any] struct {
	hash uint64
	key  string
	val  V
}

func (l leaf[V]) get(h uint64, _ uint, key string) (V, bool) {
	var zero V
	if l.hash == h && l.key == key {
		return l.val, true
	}
	return zero, false
}

func (l leaf[V]) set(h uint64, shift uint, key string, v V) (node[V], bool) {
	if l.hash == h && l.key == key {
		return leaf[V]{hash: h, key: key, val: v}, false
	}
	if l.hash == h {
		return collision[V]{hash: h, entries: []leaf[V]{l, {hash: h, key: key, val: v}}}, true
	}
	// Split into a branch distinguishing the two hashes at this depth.
	b := branch[V]{}
	n1, _ := b.set(l.hash, shift, l.key, l.val)
	n2, _ := n1.set(h, shift, key, v)
	return n2, true
}

func (l leaf[V]) delete(h uint64, _ uint, key string) (node[V], bool) {
	if l.hash == h && l.key == key {
		return nil, true
	}
	return l, false
}

func (l leaf[V]) each(fn func(string, V) bool) bool { return fn(l.key, l.val) }

// collision buckets hold entries whose full hashes collide.
type collision[V any] struct {
	hash    uint64
	entries []leaf[V]
}

func (c collision[V]) get(h uint64, _ uint, key string) (V, bool) {
	var zero V
	if h != c.hash {
		return zero, false
	}
	for _, e := range c.entries {
		if e.key == key {
			return e.val, true
		}
	}
	return zero, false
}

func (c collision[V]) set(h uint64, shift uint, key string, v V) (node[V], bool) {
	if h != c.hash {
		// Push the bucket down into a branch.
		b := node[V](branch[V]{})
		for _, e := range c.entries {
			b, _ = b.set(e.hash, shift, e.key, e.val)
		}
		return b.set(h, shift, key, v)
	}
	out := make([]leaf[V], len(c.entries), len(c.entries)+1)
	copy(out, c.entries)
	for i, e := range out {
		if e.key == key {
			out[i] = leaf[V]{hash: h, key: key, val: v}
			return collision[V]{hash: h, entries: out}, false
		}
	}
	out = append(out, leaf[V]{hash: h, key: key, val: v})
	return collision[V]{hash: h, entries: out}, true
}

func (c collision[V]) delete(h uint64, _ uint, key string) (node[V], bool) {
	if h != c.hash {
		return c, false
	}
	for i, e := range c.entries {
		if e.key == key {
			if len(c.entries) == 2 {
				return c.entries[1-i], true
			}
			out := make([]leaf[V], 0, len(c.entries)-1)
			out = append(out, c.entries[:i]...)
			out = append(out, c.entries[i+1:]...)
			return collision[V]{hash: h, entries: out}, true
		}
	}
	return c, false
}

func (c collision[V]) each(fn func(string, V) bool) bool {
	for _, e := range c.entries {
		if !fn(e.key, e.val) {
			return false
		}
	}
	return true
}

// branch is a bitmap-compressed 32-way node.
type branch[V any] struct {
	bitmap   uint32
	children []node[V]
}

func (b branch[V]) index(bit uint32) int {
	return bits.OnesCount32(b.bitmap & (bit - 1))
}

func (b branch[V]) get(h uint64, shift uint, key string) (V, bool) {
	var zero V
	bit := uint32(1) << ((h >> shift) & branchMask)
	if b.bitmap&bit == 0 {
		return zero, false
	}
	return b.children[b.index(bit)].get(h, shift+branchBits, key)
}

func (b branch[V]) set(h uint64, shift uint, key string, v V) (node[V], bool) {
	bit := uint32(1) << ((h >> shift) & branchMask)
	idx := b.index(bit)
	if b.bitmap&bit == 0 {
		children := make([]node[V], len(b.children)+1)
		copy(children, b.children[:idx])
		children[idx] = leaf[V]{hash: h, key: key, val: v}
		copy(children[idx+1:], b.children[idx:])
		return branch[V]{bitmap: b.bitmap | bit, children: children}, true
	}
	child, added := b.children[idx].set(h, shift+branchBits, key, v)
	children := make([]node[V], len(b.children))
	copy(children, b.children)
	children[idx] = child
	return branch[V]{bitmap: b.bitmap, children: children}, added
}

func (b branch[V]) delete(h uint64, shift uint, key string) (node[V], bool) {
	bit := uint32(1) << ((h >> shift) & branchMask)
	if b.bitmap&bit == 0 {
		return b, false
	}
	idx := b.index(bit)
	child, removed := b.children[idx].delete(h, shift+branchBits, key)
	if !removed {
		return b, false
	}
	if child == nil {
		if len(b.children) == 1 {
			return nil, true
		}
		children := make([]node[V], len(b.children)-1)
		copy(children, b.children[:idx])
		copy(children[idx:], b.children[idx+1:])
		return branch[V]{bitmap: b.bitmap &^ bit, children: children}, true
	}
	children := make([]node[V], len(b.children))
	copy(children, b.children)
	children[idx] = child
	return branch[V]{bitmap: b.bitmap, children: children}, true
}

func (b branch[V]) each(fn func(string, V) bool) bool {
	for _, c := range b.children {
		if !c.each(fn) {
			return false
		}
	}
	return true
}

// hashString is FNV-1a, inlined to avoid allocation.
func hashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// String renders the map size for debugging.
func (m *Map[V]) String() string { return fmt.Sprintf("persist.Map(len=%d)", m.Len()) }
