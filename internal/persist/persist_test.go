package persist

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestMapBasics(t *testing.T) {
	m := NewMap[int]()
	if m.Len() != 0 {
		t.Fatalf("empty map Len = %d", m.Len())
	}
	if _, ok := m.Get("x"); ok {
		t.Fatalf("empty map must not contain x")
	}
	m1 := m.Set("x", 1)
	m2 := m1.Set("y", 2)
	m3 := m2.Set("x", 10)
	if v, _ := m1.Get("x"); v != 1 {
		t.Errorf("m1[x] = %d, want 1 (persistence violated)", v)
	}
	if v, _ := m3.Get("x"); v != 10 {
		t.Errorf("m3[x] = %d, want 10", v)
	}
	if v, _ := m3.Get("y"); v != 2 {
		t.Errorf("m3[y] = %d, want 2", v)
	}
	if m1.Len() != 1 || m2.Len() != 2 || m3.Len() != 2 {
		t.Errorf("lengths: %d %d %d", m1.Len(), m2.Len(), m3.Len())
	}
}

func TestMapDelete(t *testing.T) {
	m := NewMap[string]().Set("a", "1").Set("b", "2")
	d := m.Delete("a")
	if _, ok := d.Get("a"); ok {
		t.Errorf("a must be gone")
	}
	if v, ok := d.Get("b"); !ok || v != "2" {
		t.Errorf("b must survive")
	}
	if _, ok := m.Get("a"); !ok {
		t.Errorf("original version must keep a")
	}
	same := d.Delete("zzz")
	if same != d {
		t.Errorf("deleting an absent key must return the same version")
	}
}

func TestMapManyKeysAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMap[int]()
	model := map[string]int{}
	versions := []*Map[int]{m}
	snapshots := []map[string]int{copyModel(model)}
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("k%d", rng.Intn(500))
		switch rng.Intn(3) {
		case 0, 1:
			v := rng.Intn(1000)
			m = m.Set(k, v)
			model[k] = v
		case 2:
			m = m.Delete(k)
			delete(model, k)
		}
		if i%250 == 0 {
			versions = append(versions, m)
			snapshots = append(snapshots, copyModel(model))
		}
	}
	versions = append(versions, m)
	snapshots = append(snapshots, copyModel(model))
	for vi, ver := range versions {
		snap := snapshots[vi]
		if ver.Len() != len(snap) {
			t.Fatalf("version %d: Len=%d, model=%d", vi, ver.Len(), len(snap))
		}
		for k, want := range snap {
			if got, ok := ver.Get(k); !ok || got != want {
				t.Fatalf("version %d: %s = %d,%v; want %d", vi, k, got, ok, want)
			}
		}
		count := 0
		ver.Range(func(k string, v int) bool {
			if snap[k] != v {
				t.Fatalf("version %d: Range yields %s=%d, model %d", vi, k, v, snap[k])
			}
			count++
			return true
		})
		if count != len(snap) {
			t.Fatalf("version %d: Range visited %d, want %d", vi, count, len(snap))
		}
	}
}

func copyModel(m map[string]int) map[string]int {
	c := make(map[string]int, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func TestMapRangeEarlyStop(t *testing.T) {
	m := NewMap[int]().Set("a", 1).Set("b", 2).Set("c", 3)
	n := 0
	m.Range(func(string, int) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("Range visited %d after early stop, want 2", n)
	}
}

func TestMapNilReceiver(t *testing.T) {
	var m *Map[int]
	if m.Len() != 0 {
		t.Errorf("nil map Len != 0")
	}
	if _, ok := m.Get("x"); ok {
		t.Errorf("nil map must be empty")
	}
	m2 := m.Set("x", 1)
	if v, _ := m2.Get("x"); v != 1 {
		t.Errorf("Set on nil map failed")
	}
	if m.Delete("x") != m {
		t.Errorf("Delete on nil map must return receiver")
	}
	m.Range(func(string, int) bool { t.Error("nil map Range must not call fn"); return true })
}

func TestVectorAppendAtAcrossLevels(t *testing.T) {
	// Cross several leaf blocks and at least one level split (>32*32).
	const n = 1100
	v := NewVector[int]()
	var versions []*Vector[int]
	for i := 0; i < n; i++ {
		v = v.Append(i)
		if i == 31 || i == 32 || i == 1023 || i == 1024 {
			versions = append(versions, v)
		}
	}
	if v.Len() != n {
		t.Fatalf("Len = %d, want %d", v.Len(), n)
	}
	for i := 0; i < n; i++ {
		if got := v.At(i); got != i {
			t.Fatalf("At(%d) = %d", i, got)
		}
	}
	wantLens := []int{32, 33, 1024, 1025}
	for vi, ver := range versions {
		if ver.Len() != wantLens[vi] {
			t.Fatalf("version %d Len = %d, want %d", vi, ver.Len(), wantLens[vi])
		}
		for i := 0; i < ver.Len(); i++ {
			if ver.At(i) != i {
				t.Fatalf("version %d At(%d) = %d", vi, i, ver.At(i))
			}
		}
	}
}

func TestVectorSetPersistence(t *testing.T) {
	v := NewVector[string]()
	for i := 0; i < 100; i++ {
		v = v.Append(fmt.Sprintf("e%d", i))
	}
	w := v.Set(5, "changed").Set(99, "tailchange")
	if v.At(5) != "e5" || v.At(99) != "e99" {
		t.Fatalf("original version mutated")
	}
	if w.At(5) != "changed" || w.At(99) != "tailchange" {
		t.Fatalf("new version missing updates: %q %q", w.At(5), w.At(99))
	}
	if w.At(50) != "e50" {
		t.Fatalf("untouched element changed")
	}
}

func TestVectorSlice(t *testing.T) {
	v := NewVector[int]().Append(1).Append(2).Append(3)
	s := v.Slice()
	if len(s) != 3 || s[0] != 1 || s[2] != 3 {
		t.Fatalf("Slice = %v", s)
	}
}

func TestVectorPanics(t *testing.T) {
	v := NewVector[int]().Append(1)
	for _, fn := range []func(){
		func() { v.At(-1) },
		func() { v.At(1) },
		func() { v.Set(2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestVectorRandomAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	v := NewVector[int]()
	var model []int
	for i := 0; i < 5000; i++ {
		if v.Len() > 0 && rng.Intn(4) == 0 {
			idx := rng.Intn(v.Len())
			x := rng.Int()
			v = v.Set(idx, x)
			model[idx] = x
		} else {
			x := rng.Int()
			v = v.Append(x)
			model = append(model, x)
		}
	}
	if v.Len() != len(model) {
		t.Fatalf("Len = %d, want %d", v.Len(), len(model))
	}
	for i, want := range model {
		if got := v.At(i); got != want {
			t.Fatalf("At(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestStrings(t *testing.T) {
	if NewMap[int]().Set("a", 1).String() != "persist.Map(len=1)" {
		t.Errorf("map String wrong")
	}
	if NewVector[int]().Append(1).String() != "persist.Vector(len=1)" {
		t.Errorf("vector String wrong")
	}
}
