package persist

import "fmt"

// Vector is a fully persistent vector with 32-way branching and path
// copying (the classic bit-partitioned trie). The zero value is empty.
// All operations return new versions; no version is ever mutated.
type Vector[T any] struct {
	count int
	shift uint
	root  []any // nodes are []any (internal) or []T (leaf blocks)
	tail  []T   // rightmost partially filled block, shared but append-only copied
}

// NewVector returns the empty vector.
func NewVector[T any]() *Vector[T] { return &Vector[T]{shift: branchBits} }

// Len returns the number of elements.
func (v *Vector[T]) Len() int {
	if v == nil {
		return 0
	}
	return v.count
}

func (v *Vector[T]) tailOffset() int {
	if v.count < branchSize {
		return 0
	}
	return ((v.count - 1) >> branchBits) << branchBits
}

// At returns the element at index i; it panics if out of range.
func (v *Vector[T]) At(i int) T {
	if v == nil || i < 0 || i >= v.count {
		panic(fmt.Sprintf("persist: vector index %d out of range [0,%d)", i, v.Len()))
	}
	if i >= v.tailOffset() {
		return v.tail[i-v.tailOffset()]
	}
	node := v.root
	for level := v.shift; level > 0; level -= branchBits {
		node = node[(i>>level)&branchMask].([]any)
	}
	return node[i&branchMask].(T)
}

// Append returns a new vector with x added at the end.
func (v *Vector[T]) Append(x T) *Vector[T] {
	if v == nil {
		v = NewVector[T]()
	}
	// Room in tail?
	if v.count-v.tailOffset() < branchSize {
		tail := make([]T, len(v.tail)+1)
		copy(tail, v.tail)
		tail[len(v.tail)] = x
		return &Vector[T]{count: v.count + 1, shift: v.shift, root: v.root, tail: tail}
	}
	// Push tail into the trie.
	tailNode := make([]any, len(v.tail))
	for i, e := range v.tail {
		tailNode[i] = e
	}
	newShift := v.shift
	var newRoot []any
	if (v.count >> branchBits) > (1 << v.shift) {
		// Root overflow: add a level.
		newRoot = []any{v.root, newPath(v.shift, tailNode)}
		newShift += branchBits
	} else {
		newRoot = pushTail(v.shift, v.root, v.count, tailNode)
	}
	return &Vector[T]{count: v.count + 1, shift: newShift, root: newRoot, tail: []T{x}}
}

func newPath(level uint, node []any) []any {
	if level == 0 {
		return node
	}
	return []any{newPath(level-branchBits, node)}
}

func pushTail(level uint, parent []any, count int, tailNode []any) []any {
	idx := ((count - 1) >> level) & branchMask
	out := make([]any, max(len(parent), idx+1))
	copy(out, parent)
	if level == branchBits {
		out[idx] = tailNode
	} else {
		var child []any
		if idx < len(parent) && parent[idx] != nil {
			child = parent[idx].([]any)
		}
		out[idx] = pushTail(level-branchBits, child, count, tailNode)
	}
	return out
}

// Set returns a new vector with index i replaced by x; it panics if out of
// range.
func (v *Vector[T]) Set(i int, x T) *Vector[T] {
	if v == nil || i < 0 || i >= v.count {
		panic(fmt.Sprintf("persist: vector index %d out of range [0,%d)", i, v.Len()))
	}
	if i >= v.tailOffset() {
		tail := make([]T, len(v.tail))
		copy(tail, v.tail)
		tail[i-v.tailOffset()] = x
		return &Vector[T]{count: v.count, shift: v.shift, root: v.root, tail: tail}
	}
	return &Vector[T]{count: v.count, shift: v.shift, root: setInTrie(v.shift, v.root, i, x), tail: v.tail}
}

func setInTrie[T any](level uint, node []any, i int, x T) []any {
	out := make([]any, len(node))
	copy(out, node)
	if level == 0 {
		out[i&branchMask] = x
		return out
	}
	idx := (i >> level) & branchMask
	out[idx] = setInTrie(level-branchBits, node[idx].([]any), i, x)
	return out
}

// Slice returns the elements as a Go slice (a copy).
func (v *Vector[T]) Slice() []T {
	out := make([]T, v.Len())
	for i := range out {
		out[i] = v.At(i)
	}
	return out
}

// String renders the vector size for debugging.
func (v *Vector[T]) String() string { return fmt.Sprintf("persist.Vector(len=%d)", v.Len()) }
