package persist

import (
	"fmt"
	"testing"
)

func BenchmarkMapSet(b *testing.B) {
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("loc-%d", i)
	}
	m := NewMap[int]()
	for i, k := range keys {
		m = m.Set(k, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Set(keys[i%len(keys)], i)
	}
}

func BenchmarkMapGet(b *testing.B) {
	keys := make([]string, 1024)
	m := NewMap[int]()
	for i := range keys {
		keys[i] = fmt.Sprintf("loc-%d", i)
		m = m.Set(keys[i], i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := m.Get(keys[i%len(keys)]); !ok {
			b.Fatal("missing key")
		}
	}
}

// BenchmarkMapSnapshotVsDeepCopy contrasts the O(1) persistent snapshot
// against deep-copying a built-in map of the same size — the §4.1
// privatization trade-off.
func BenchmarkMapSnapshotVsDeepCopy(b *testing.B) {
	const n = 4096
	pm := NewMap[int]()
	gm := make(map[string]int, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("loc-%d", i)
		pm = pm.Set(k, i)
		gm[k] = i
	}
	b.Run("persistent-snapshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			snap := pm // O(1): the version handle is the snapshot
			_ = snap.Set("loc-0", i)
		}
	})
	b.Run("map-deep-copy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cp := make(map[string]int, len(gm))
			for k, v := range gm {
				cp[k] = v
			}
			cp["loc-0"] = i
		}
	})
}

func BenchmarkVectorAppend(b *testing.B) {
	b.ReportAllocs()
	v := NewVector[int]()
	for i := 0; i < b.N; i++ {
		v = v.Append(i)
	}
	if v.Len() != b.N {
		b.Fatal("length mismatch")
	}
}

func BenchmarkVectorAt(b *testing.B) {
	v := NewVector[int]()
	for i := 0; i < 4096; i++ {
		v = v.Append(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v.At(i%4096) != i%4096 {
			b.Fatal("wrong value")
		}
	}
}
