// Package advisor analyzes a sequential training trace and classifies
// each shared location by the semantic patterns of the paper's §2
// (identity, reduction, shared-as-local, equal-writes, spurious-reads),
// then derives a consistency-relaxation suggestion (§5.3) for each.
//
// The paper's workflow used the authors' Hawkeye tool to identify the
// shared data structures and wrote the relaxation specifications by hand
// (§7.1), and notes that JANUS "performs limited automatic inference of
// relaxation specifications". This package extends that inference into a
// reusable advisor: WAW tolerances whose soundness follows from the trace
// (every observed read is preceded by the task's own write, so
// commit-order serialization preserves all reads) are offered as safe;
// RAW tolerances (spurious reads) change observable behavior in general,
// so they are reported as candidates requiring user confirmation — the
// paper makes the same distinction between verified inference and assumed
// user annotations (§8).
package advisor

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/adt"
	"repro/internal/conflict"
	"repro/internal/deps"
	"repro/internal/oplog"
	"repro/internal/seqeff"
	"repro/internal/state"
)

// Pattern classifies a shared location's cross-task behavior.
type Pattern int

// Patterns of §2.
const (
	PatternUnknown Pattern = iota
	PatternReadOnly
	PatternReduction
	PatternIdentity
	PatternSharedAsLocal
	PatternEqualWrites
	PatternSpuriousReads
)

// String renders the pattern name as Table 5 spells it.
func (p Pattern) String() string {
	switch p {
	case PatternReadOnly:
		return "read-only"
	case PatternReduction:
		return "reduction"
	case PatternIdentity:
		return "identity"
	case PatternSharedAsLocal:
		return "shared-as-local"
	case PatternEqualWrites:
		return "equal-writes"
	case PatternSpuriousReads:
		return "spurious-reads"
	default:
		return "unclassified"
	}
}

// Finding is the advisor's verdict for one shared location.
type Finding struct {
	Loc     state.Loc
	PLocs   int // projection locations aggregated into this finding
	Tasks   int // distinct tasks touching the location
	Pattern Pattern
	// SuggestWAW reports that tolerating write-after-write conflicts on
	// this location is safe under commit-order serialization: every
	// observed read is order-insensitive.
	SuggestWAW bool
	// SuggestRAW reports a safe read-after-write tolerance: the location
	// is a scratch pad every task resets (leading clear) before touching,
	// so all reads observe task-local state in any commit order.
	SuggestRAW bool
	// CandidateRAW reports the spurious-reads shape (reads of possibly
	// stale values feeding conditional writes); tolerating RAW changes
	// observable behavior in general and needs user confirmation.
	CandidateRAW bool
	// Rationale is a one-line human-readable justification.
	Rationale string
}

// Report is the advisor's output for a whole trace.
type Report struct {
	Findings []Finding
}

// Analyze classifies every shared location of the trace.
func Analyze(trace oplog.Log) *Report {
	mined := deps.Mine(trace)
	shared := deps.SharedPLocs(mined)

	// Track each task's first operation per base location: a leading
	// rel.clear marks the whole-ADT scratch-pad reset that per-key
	// projection cannot see (clearing an absent key has no footprint).
	type taskLoc struct {
		task int
		loc  state.Loc
	}
	firstOp := make(map[taskLoc]string)
	for _, e := range trace {
		locs := map[state.Loc]struct{}{}
		for _, a := range e.Acc {
			locs[a.P.Loc()] = struct{}{}
		}
		if len(locs) == 0 {
			// Ops whose footprint is empty in this state (e.g. clearing
			// an empty relation) still reset the structure; attribute
			// them via the op's own location when it names one.
			if cl, ok := e.Op.(adt.RelClearOp); ok {
				locs[cl.L] = struct{}{}
			}
		}
		for loc := range locs {
			k := taskLoc{task: e.Task, loc: loc}
			if _, seen := firstOp[k]; !seen {
				firstOp[k] = e.Op.Sym().Kind
			}
		}
	}
	leadingClear := func(loc state.Loc, tasks map[int]struct{}) bool {
		if len(tasks) == 0 {
			return false
		}
		for task := range tasks {
			if firstOp[taskLoc{task: task, loc: loc}] != adt.KindRelClear {
				return false
			}
		}
		return true
	}

	// Aggregate projection locations by base location: a relational ADT
	// is one data structure in the §5.3 specification.
	type agg struct {
		plocs   int
		tasks   map[int]struct{}
		seqs    [][]oplog.Sym
		anyWild bool
	}
	byLoc := make(map[state.Loc]*agg)
	for _, p := range shared {
		a := byLoc[p.Loc()]
		if a == nil {
			a = &agg{tasks: make(map[int]struct{})}
			byLoc[p.Loc()] = a
		}
		a.plocs++
		if p.IsWildcard() {
			a.anyWild = true
		}
		for _, seq := range mined[p] {
			a.tasks[seq.Task] = struct{}{}
			a.seqs = append(a.seqs, seq.Syms())
		}
	}

	rep := &Report{}
	for loc, a := range byLoc {
		f := Finding{Loc: loc, PLocs: a.plocs, Tasks: len(a.tasks)}
		if leadingClear(loc, a.tasks) {
			f.Pattern = PatternSharedAsLocal
			f.SuggestWAW = true
			f.SuggestRAW = true
			f.Rationale = "every task resets the structure (leading clear) before touching it; RAW and WAW tolerances are safe"
		} else {
			classify(&f, a.seqs, a.anyWild)
		}
		rep.Findings = append(rep.Findings, f)
	}
	sort.Slice(rep.Findings, func(i, j int) bool {
		return rep.Findings[i].Loc < rep.Findings[j].Loc
	})
	return rep
}

// classify inspects the per-task sequences observed for one location.
func classify(f *Finding, seqs [][]oplog.Sym, wild bool) {
	if wild {
		f.Pattern = PatternUnknown
		f.Rationale = "whole-extent accesses observed; no per-key classification possible"
		return
	}
	var (
		allReadOnly   = true
		allAddOnly    = true
		allIdentity   = true
		allLocalReads = true // every read preceded by the task's own write
		anyRead       = false
		anyWrite      = false
		storeVals     = map[string]struct{}{}
		allStoreLike  = true
		condStore     = false // read of entry value followed by a store
	)
	for _, syms := range seqs {
		reg, regOK := seqeff.AnalyzeRegister(syms)
		stk, stkOK := seqeff.AnalyzeStack(syms)
		readOnly, addOnly := true, true
		sawWrite := false
		for _, s := range syms {
			switch s.Kind {
			case adt.KindNumLoad, adt.KindStrLoad, adt.KindBoolLoad, adt.KindRelGet, adt.KindRelHas, adt.KindListSize:
				anyRead = true
				if !sawWrite {
					allLocalReads = false
					if regOK {
						condStore = condStore || regSeqStoresAfterRead(syms)
					}
				}
				readOnly = readOnly && true
				addOnly = false
			case adt.KindNumAdd:
				readOnly = false
				sawWrite = true
			default:
				readOnly = false
				addOnly = false
				sawWrite = true
			}
		}
		if sawWrite {
			anyWrite = true
		}
		allReadOnly = allReadOnly && readOnly
		allAddOnly = allAddOnly && addOnly && sawWrite
		switch {
		case regOK:
			if !reg.Eff.IsIdent() {
				allIdentity = false
			}
			if reg.Eff.Kind == seqeff.Store {
				storeVals[reg.Eff.V] = struct{}{}
			} else {
				allStoreLike = false
			}
		case stkOK:
			if !stk.Balanced() {
				allIdentity = false
			}
			allStoreLike = false
		default:
			allIdentity = false
			allStoreLike = false
		}
	}

	switch {
	case allReadOnly:
		f.Pattern = PatternReadOnly
		f.Rationale = "only reads observed; never conflicts"
	case allAddOnly:
		f.Pattern = PatternReduction
		f.Rationale = "associative-commutative accumulation; trained conditions always commute"
	case allIdentity && anyWrite:
		f.Pattern = PatternIdentity
		f.Rationale = "every task restores the location's entry value"
	case allStoreLike && len(storeVals) == 1 && anyWrite:
		f.Pattern = PatternEqualWrites
		f.Rationale = "all tasks leave the same value; trained conditions prove commutativity"
	case allLocalReads && anyWrite:
		f.Pattern = PatternSharedAsLocal
		f.SuggestWAW = true
		f.Rationale = "every read follows the task's own write; WAW tolerance is safe under commit-order serialization"
	case anyRead && anyWrite && condStore:
		f.Pattern = PatternSpuriousReads
		f.CandidateRAW = true
		f.Rationale = "entry-value reads feed conditional writes; RAW tolerance changes observable behavior — confirm before enabling"
	default:
		f.Pattern = PatternUnknown
		f.Rationale = "no §2 pattern matched; rely on trained conditions and the write-set fallback"
	}
}

// regSeqStoresAfterRead reports the Figure 3 maxColor shape: a read of the
// entry value followed later by a store.
func regSeqStoresAfterRead(syms []oplog.Sym) bool {
	seenEntryRead := false
	for _, s := range syms {
		switch s.Kind {
		case adt.KindNumLoad, adt.KindStrLoad, adt.KindBoolLoad, adt.KindRelGet, adt.KindRelHas:
			seenEntryRead = true
		case adt.KindNumStore, adt.KindStrStore, adt.KindBoolStore, adt.KindRelPut, adt.KindRelRemove:
			if seenEntryRead {
				return true
			}
		}
	}
	return false
}

// SafeRelaxations builds the relaxation specification the advisor can
// justify from the trace alone: WAW tolerances for shared-as-local
// locations. RAW candidates are excluded — enable them explicitly after
// review (WithCandidates).
func (r *Report) SafeRelaxations() *conflict.Relaxations {
	var raw, waw []state.Loc
	for _, f := range r.Findings {
		if f.SuggestWAW {
			waw = append(waw, f.Loc)
		}
		if f.SuggestRAW {
			raw = append(raw, f.Loc)
		}
	}
	return conflict.NewRelaxations(raw, waw)
}

// WithCandidates builds the specification including the RAW candidates —
// the configuration a user confirms after reviewing the report.
func (r *Report) WithCandidates() *conflict.Relaxations {
	var raw, waw []state.Loc
	for _, f := range r.Findings {
		if f.SuggestWAW {
			waw = append(waw, f.Loc)
		}
		if f.CandidateRAW || f.SuggestRAW {
			raw = append(raw, f.Loc)
		}
	}
	return conflict.NewRelaxations(raw, waw)
}

// Render prints the report.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "%-28s %-6s %-6s %-16s %s\n", "location", "plocs", "tasks", "pattern", "suggestion")
	for _, f := range r.Findings {
		var suggestions []string
		if f.SuggestWAW {
			suggestions = append(suggestions, "tolerate WAW (safe)")
		}
		if f.SuggestRAW {
			suggestions = append(suggestions, "tolerate RAW (safe)")
		}
		if f.CandidateRAW {
			suggestions = append(suggestions, "tolerate RAW (confirm)")
		}
		if len(suggestions) == 0 {
			suggestions = append(suggestions, "-")
		}
		fmt.Fprintf(w, "%-28s %-6d %-6d %-16s %s\n", f.Loc, f.PLocs, f.Tasks, f.Pattern, strings.Join(suggestions, ", "))
		fmt.Fprintf(w, "%-28s   ↳ %s\n", "", f.Rationale)
	}
}
