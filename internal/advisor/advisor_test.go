package advisor

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/state"
	"repro/internal/train"
	"repro/internal/workloads"
)

// traceOf profiles a workload's training tasks.
func traceOf(t *testing.T, name string) *Report {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p := train.NewProfiler(w.NewState())
	if err := p.Run(w.Tasks(workloads.Training, 1000)); err != nil {
		t.Fatal(err)
	}
	return Analyze(p.Trace())
}

func findingFor(t *testing.T, r *Report, loc state.Loc) Finding {
	t.Helper()
	for _, f := range r.Findings {
		if f.Loc == loc {
			return f
		}
	}
	t.Fatalf("no finding for %q; findings: %+v", loc, r.Findings)
	return Finding{}
}

// TestAdvisorRediscoversHandWrittenSpecs checks the headline property: the
// advisor's classification of the benchmark locations matches Table 5 and
// the hand-written relaxation specifications of internal/workloads.
func TestAdvisorRediscoversHandWrittenSpecs(t *testing.T) {
	// JFileSync: identity stacks, shared-as-local scratch URIs, read-only
	// cancellation flag.
	jfs := traceOf(t, "jfilesync")
	if f := findingFor(t, jfs, "monitor.itemsStarted"); f.Pattern != PatternIdentity {
		t.Errorf("itemsStarted = %v, want identity", f.Pattern)
	}
	if f := findingFor(t, jfs, "monitor.itemsWeight"); f.Pattern != PatternIdentity {
		t.Errorf("itemsWeight = %v, want identity", f.Pattern)
	}
	src := findingFor(t, jfs, "monitor.rootUriSrc")
	if src.Pattern != PatternSharedAsLocal || !src.SuggestWAW {
		t.Errorf("rootUriSrc = %v (waw=%v), want shared-as-local + WAW", src.Pattern, src.SuggestWAW)
	}
	if f := findingFor(t, jfs, "progress.canceled"); f.Pattern != PatternReadOnly {
		t.Errorf("canceled = %v, want read-only", f.Pattern)
	}
	// The safe suggestion matches the hand-written spec: WAW on both
	// scratch URI fields, nothing else.
	safe := jfs.SafeRelaxations()
	hand, err := workloads.ByName("jfilesync")
	if err != nil {
		t.Fatal(err)
	}
	for loc := range hand.Relaxations.WAW {
		if !safe.TolerateWAW(loc) {
			t.Errorf("advisor missed hand-written WAW on %s", loc)
		}
	}

	// PMD: shared-as-local context fields, reduction counters.
	pmd := traceOf(t, "pmd")
	if f := findingFor(t, pmd, "ctx.sourceCodeFilename"); !f.SuggestWAW {
		t.Errorf("sourceCodeFilename: want WAW suggestion, got %+v", f)
	}
	if f := findingFor(t, pmd, "metrics.analyzed"); f.Pattern != PatternReduction {
		t.Errorf("analyzed = %v, want reduction", f.Pattern)
	}

	// Weka: equal writes on the shared color register... the register is
	// written with several values per task, so it classifies as
	// shared-as-local (reads follow own writes) — also safe to relax.
	weka := traceOf(t, "weka")
	reg := findingFor(t, weka, "graphics.color")
	if !reg.SuggestWAW && reg.Pattern != PatternEqualWrites {
		t.Errorf("graphics.color = %+v; want shared-as-local/equal-writes", reg)
	}
}

// TestAdvisorFindsSpuriousReads checks the Figure 3 maxColor shape.
func TestAdvisorFindsSpuriousReads(t *testing.T) {
	jg := traceOf(t, "jgrapht1")
	max := findingFor(t, jg, "maxColor")
	if max.Pattern != PatternSpuriousReads || !max.CandidateRAW {
		t.Errorf("maxColor = %+v; want spurious-reads + RAW candidate", max)
	}
	// Candidates are excluded from the safe spec, included with review.
	if jg.SafeRelaxations().TolerateRAW("maxColor") {
		t.Errorf("RAW candidate must not be in the safe spec")
	}
	if !jg.WithCandidates().TolerateRAW("maxColor") {
		t.Errorf("RAW candidate must be in the confirmed spec")
	}
	// usedColors: the scratch pad is cleared by every task before any
	// other access — both tolerances are safe.
	used := findingFor(t, jg, "usedColors")
	if used.Pattern != PatternSharedAsLocal || !used.SuggestWAW || !used.SuggestRAW {
		t.Errorf("usedColors = %+v; want shared-as-local + safe RAW/WAW", used)
	}
	if !jg.SafeRelaxations().TolerateRAW("usedColors") || !jg.SafeRelaxations().TolerateWAW("usedColors") {
		t.Errorf("usedColors tolerances must be in the safe spec")
	}
}

func TestRenderMentionsEveryFinding(t *testing.T) {
	r := traceOf(t, "jfilesync")
	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	for _, f := range r.Findings {
		if !strings.Contains(out, string(f.Loc)) {
			t.Errorf("render missing %s", f.Loc)
		}
	}
	if !strings.Contains(out, "tolerate WAW (safe)") {
		t.Errorf("render missing WAW suggestion:\n%s", out)
	}
}

func TestPatternStrings(t *testing.T) {
	want := map[Pattern]string{
		PatternUnknown: "unclassified", PatternReadOnly: "read-only",
		PatternReduction: "reduction", PatternIdentity: "identity",
		PatternSharedAsLocal: "shared-as-local", PatternEqualWrites: "equal-writes",
		PatternSpuriousReads: "spurious-reads",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("String(%d) = %q, want %q", p, p.String(), s)
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	r := Analyze(nil)
	if len(r.Findings) != 0 {
		t.Errorf("empty trace must have no findings")
	}
	if waw := r.SafeRelaxations(); waw == nil {
		t.Errorf("empty report must still build a spec")
	}
}
