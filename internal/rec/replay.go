package rec

import (
	"fmt"

	"repro/internal/adt"
	"repro/internal/conflict"
	"repro/internal/state"
	"repro/internal/stm"
)

// Replay turns a decoded trace back into executable work. Each recorded
// transaction becomes a task that re-issues its op log verbatim; because
// the recorded schedule was serializable, applying the logs in commit
// order over the initial state reconstructs the recorded final state
// exactly — that is what ReplaySequential does and what the footer
// digest is checked against. Replay (parallel) re-runs the same tasks
// through the stm with the recorded commit order pinned, exercising the
// full protocol on a production-shaped schedule while keeping the
// outcome deterministic.

// ErrLossy rejects replay of traces that skipped unencodable
// transactions.
func (t *Trace) checkReplayable() error {
	if t.Lossy {
		return &TraceError{Reason: TraceLossy, Detail: t.LossyDetail}
	}
	if t.Truncated {
		return traceErr(TraceTruncated, "flight dump evicted %d chunks; retained %d of %d commits", t.EvictedChunks, len(t.Txns), t.Commits)
	}
	return nil
}

// Tasks converts the trace's transactions (in commit order) into adt
// tasks that re-issue the recorded op logs. verifyOps additionally
// checks each op's result against the recorded observed value; that
// check is sound for sequential replay and for parallel replay under
// write-set detection without relaxations (where every interleaving the
// stm admits is conflict-equivalent to the recorded one), but reads may
// legitimately differ under relaxed or commutativity-based detection.
func (t *Trace) Tasks(verifyOps bool) []adt.Task {
	out := make([]adt.Task, len(t.Txns))
	for i, txn := range t.Txns {
		txn := txn
		out[i] = func(ex adt.Executor) error {
			for j, op := range txn.Ops {
				got, err := ex.Exec(op)
				if err != nil {
					return fmt.Errorf("rec: replaying task %d op %d (%s): %w", txn.Task, j, op.Sym().Kind, err)
				}
				if verifyOps && !valueEqual(got, txn.Observed[j]) {
					return fmt.Errorf("rec: task %d op %d (%s): observed %v, recorded %v",
						txn.Task, j, op.Sym().Kind, got, txn.Observed[j])
				}
			}
			return nil
		}
	}
	return out
}

// valueEqual compares an executed op's result with the recorded one.
func valueEqual(a, b state.Value) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.EqualValue(b)
}

// applyInCommitOrder replays committed op logs over st in commit order.
// txns must already be sorted by CommitTime (decodeTrace guarantees it;
// the recorder's derived-digest path sorts before calling).
func applyInCommitOrder(st *state.State, txns []TxnRecord) error {
	for _, txn := range txns {
		for j, op := range txn.Ops {
			if _, err := op.Apply(st); err != nil {
				return fmt.Errorf("rec: applying task %d op %d (%s): %w", txn.Task, j, op.Sym().Kind, err)
			}
		}
	}
	return nil
}

// ReplaySequential applies the recorded logs in commit order over the
// initial state — the deterministic oracle replay. With verifyOps it
// also checks every op result against the recorded observation.
func (t *Trace) ReplaySequential(verifyOps bool) (*state.State, error) {
	if err := t.checkReplayable(); err != nil {
		return nil, err
	}
	st := t.Initial.Clone()
	if !verifyOps {
		if err := applyInCommitOrder(st, t.Txns); err != nil {
			return nil, err
		}
		return st, nil
	}
	for _, txn := range t.Txns {
		for j, op := range txn.Ops {
			got, err := op.Apply(st)
			if err != nil {
				return nil, fmt.Errorf("rec: applying task %d op %d (%s): %w", txn.Task, j, op.Sym().Kind, err)
			}
			if !valueEqual(got, txn.Observed[j]) {
				return nil, fmt.Errorf("rec: task %d op %d (%s): observed %v, recorded %v",
					txn.Task, j, op.Sym().Kind, got, txn.Observed[j])
			}
		}
	}
	return st, nil
}

// Replay re-executes the trace through the stm with write-set detection
// and the recorded privatization mode. The tasks are arranged in the
// RECORDED commit order and run under ordered commit, which is what makes
// parallel replay deterministic: execution still interleaves freely
// across workers, but every transaction commits at exactly the position
// it committed in production — hindsight turned into a schedule. (Replays
// of unordered captures would otherwise be free to commit non-commuting
// transactions in a fresh order and legitimately land on a different
// serializable state.) threads overrides the recorded worker count
// when > 0.
func (t *Trace) Replay(threads int) (*state.State, stm.Stats, error) {
	if err := t.checkReplayable(); err != nil {
		return nil, stm.Stats{}, err
	}
	if threads <= 0 {
		threads = t.Meta.Threads
	}
	cfg := stm.Config{
		Threads:   threads,
		Ordered:   true,
		Detector:  conflict.NewWriteSet(),
		Privatize: t.Meta.Privatize,
	}
	return stm.Run(cfg, t.Initial, t.Tasks(false))
}
