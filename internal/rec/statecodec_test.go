package rec

import (
	"errors"
	"testing"

	"repro/internal/relation"
	"repro/internal/state"
)

func codecState() *state.State {
	st := state.New()
	st.Set("n", state.Int(-42))
	st.Set("s", state.Str("hello"))
	st.Set("b", state.Bool(true))
	st.Set("l", state.IntList{3, 1, 4, 1, 5})
	r := relation.New([]string{"k", "v"}, &relation.FD{Domain: []string{"k"}, Range: []string{"v"}})
	r.Insert(relation.Tuple{"k": "a", "v": "1"})
	r.Insert(relation.Tuple{"k": "b", "v": "2"})
	st.Set("rel", state.Rel{R: r})
	return st
}

func TestStateCodecRoundTrip(t *testing.T) {
	st := codecState()
	buf, err := EncodeState(st)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeState(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(st) {
		t.Fatalf("round trip mismatch:\n got %s\nwant %s", got, st)
	}
	if Digest(got) != Digest(st) {
		t.Fatal("digest changed across round trip")
	}

	empty, err := EncodeState(state.New())
	if err != nil {
		t.Fatal(err)
	}
	if got, err := DecodeState(empty); err != nil || got.Len() != 0 {
		t.Fatalf("empty state round trip: %v, len %d", err, got.Len())
	}
}

// TestStateCodecRejectsCorruption: every truncation and a sampling of
// bit flips must yield a typed *TraceError, never a panic.
func TestStateCodecRejectsCorruption(t *testing.T) {
	buf, err := EncodeState(codecState())
	if err != nil {
		t.Fatal(err)
	}
	check := func(mutated []byte) {
		t.Helper()
		st, err := DecodeState(mutated)
		if err == nil {
			// Some flips decode to a different valid state; the only hard
			// requirement here is no panic and no nil-with-nil-error.
			if st == nil {
				t.Fatal("nil state with nil error")
			}
			return
		}
		var te *TraceError
		if !errors.As(err, &te) {
			t.Fatalf("untyped decode error: %v", err)
		}
	}
	for cut := 0; cut < len(buf); cut++ {
		check(buf[:cut])
	}
	for i := 0; i < len(buf); i++ {
		mutated := append([]byte(nil), buf...)
		mutated[i] ^= 0xff
		check(mutated)
	}
	// Trailing garbage is malformed, not silently ignored.
	if _, err := DecodeState(append(append([]byte(nil), buf...), 0x7)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
