package rec

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzReadTrace drives the decoder with arbitrary bytes: it must never
// panic, and every rejection must be a typed *TraceError — the CLI
// depends on that contract to report a reason for every bad artifact.
func FuzzReadTrace(f *testing.F) {
	base := validTrace(f)
	f.Add(base)
	f.Add([]byte{})
	f.Add([]byte(traceMagic))
	f.Add(append([]byte(traceMagic), traceFormat, 0))
	// A few targeted mutants seed interesting paths: flipped header
	// byte, truncations at frame boundaries, doubled tail.
	for _, cut := range []int{1, len(base) / 2, len(base) - 1} {
		f.Add(base[:cut])
	}
	mut := append([]byte(nil), base...)
	mut[12] ^= 0x40
	f.Add(mut)
	f.Add(append(append([]byte(nil), base...), base...))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			var terr *TraceError
			if !errors.As(err, &terr) {
				t.Fatalf("untyped decode error %T: %v", err, err)
			}
			return
		}
		// Accepted traces must be internally consistent enough to walk.
		for _, txn := range tr.Txns {
			if len(txn.Observed) != len(txn.Ops) {
				t.Fatalf("accepted trace with %d ops but %d observed values",
					len(txn.Ops), len(txn.Observed))
			}
		}
		// And re-encoding decisions downstream (replay) must not panic
		// either; errors are fine.
		_, _ = tr.ReplaySequential(false)
	})
}

// FuzzValueRoundTrip pushes arbitrary strings/ints through the op+value
// codec via a synthetic chunk: encode a txn record holding them, decode,
// and require exact round-trip.
func FuzzValueRoundTrip(f *testing.F) {
	f.Add("loc", "payload", int64(42))
	f.Add("", "", int64(0))
	f.Add("a\x00b", "\xff\xfe", int64(-1))
	f.Add("日本語", "naïve", int64(1<<62))

	f.Fuzz(func(t *testing.T, loc, s string, n int64) {
		e := &enc{tab: map[string]uint64{}}
		e.str(loc)
		e.i(n)
		e.str(s)
		e.str(loc) // backref path
		d := &dec{buf: e.buf}
		if got := d.str(); got != loc {
			t.Fatalf("str round-trip: %q != %q", got, loc)
		}
		if got := d.i(); got != n {
			t.Fatalf("int round-trip: %d != %d", got, n)
		}
		if got := d.str(); got != s {
			t.Fatalf("str round-trip: %q != %q", got, s)
		}
		if got := d.str(); got != loc {
			t.Fatalf("backref round-trip: %q != %q", got, loc)
		}
		if d.err != nil {
			t.Fatalf("decoder error on own encoding: %v", d.err)
		}
		if d.pos != len(d.buf) {
			t.Fatalf("decoder consumed %d of %d bytes", d.pos, len(d.buf))
		}
	})
}
