package rec

import (
	"io"
	"testing"

	"repro/internal/stm"
)

// BenchmarkRecord measures the cost of trace capture around a full stm
// run: "off" is the baseline (Config.Record nil — the production default),
// the others attach a live recorder. The off/on delta is the recording
// overhead committed to BENCH_replay.json; "off" also asserts the
// disabled path allocation count so a regression shows up as allocs, not
// just noise-prone ns.
func BenchmarkRecord(b *testing.B) {
	const nTasks = 64
	run := func(b *testing.B, r *Recorder) {
		initial := testState()
		tasks := testTasks(nTasks)
		var sink stm.CommitSink
		if r != nil {
			sink = r
		}
		_, _, err := stm.Run(stm.Config{
			Threads: 4, Privatize: stm.PrivatizePersistent, Record: sink,
		}, initial, tasks)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			run(b, nil)
		}
	})
	b.Run("on", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			run(b, New(testMeta(nTasks), testState(), Options{}))
		}
	})
	b.Run("on-gzip-dump", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := New(testMeta(nTasks), testState(), Options{Compress: true})
			run(b, r)
			if _, err := r.WriteTo(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("flight-ring", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			run(b, New(testMeta(nTasks), testState(), Options{ChunkBytes: 4 << 10, FlightChunks: 4}))
		}
	})
}
