// Package rec captures JANUS runs as replayable binary traces — the
// record half of ROADMAP item 5. The runtime already observes every
// operation a task performs (that hindsight is the paper's premise, §3);
// the recorder persists that observation: each committed transaction's op
// log (method, location, arguments, observed results, and its seqabs
// shape key) plus the protocol event stream, framed into CRC32-checked
// chunks (see encode.go for the format).
//
// Two capture modes share one implementation:
//
//   - Stream capture keeps every sealed chunk in memory and writes the
//     complete artifact at Close. Used by `janus-bench -record`.
//   - Flight-recorder capture (Options.FlightChunks > 0) bounds the
//     in-memory chunk ring, evicting the oldest sealed chunks. A dump —
//     triggered by a health-governor demotion/trip or a signal — snapshots
//     whatever the ring holds into a complete, self-validating artifact.
//     Evictions mark the dump truncated; its footer then carries no
//     replay-verifiable digest.
//
// When no recorder is configured the stm hot path pays a single nil
// check (stm.Config.Record == nil), asserted zero-alloc by
// TestDisabledRecordingAddsNoAllocs.
package rec

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/fsio"
	"repro/internal/obs"
	"repro/internal/oplog"
	"repro/internal/seqabs"
	"repro/internal/state"
	"repro/internal/stm"
)

// Meta identifies the recorded run so replay can reconstruct its
// configuration.
type Meta struct {
	Workload  string
	Detector  string
	Ordered   bool
	Privatize stm.Privatize
	Threads   int
	Tasks     int
	Seed      int64
}

// Options tunes the recorder.
type Options struct {
	// ChunkBytes seals a chunk once its body reaches this size.
	// 0 means DefaultChunkBytes.
	ChunkBytes int
	// Compress gzips chunk bodies.
	Compress bool
	// FlightChunks, when > 0, bounds the sealed-chunk ring (flight
	// recorder mode); 0 keeps everything (stream capture).
	FlightChunks int
	// NoShapes skips the seqabs shape key per transaction (cheaper).
	NoShapes bool
}

// DefaultChunkBytes is the chunk-seal threshold when unset.
const DefaultChunkBytes = 64 << 10

// Stats summarizes a recorder's activity.
type Stats struct {
	Commits       int64 `json:"commits"`
	Events        int64 `json:"events"`
	Chunks        int   `json:"chunks"`
	EvictedChunks int   `json:"evicted_chunks"`
	Bytes         int64 `json:"bytes"`
	Dumps         int   `json:"dumps"`
	Lossy         bool  `json:"lossy"`
}

// Recorder captures commits and events into chunked frames. It
// implements stm.CommitSink; Tracer wraps an obs tracer to tee events.
// All methods are safe for concurrent use.
type Recorder struct {
	meta    Meta
	opts    Options
	initial *state.State
	epoch   time.Time

	mu          sync.Mutex
	cur         *enc     // open chunk body
	curRecords  int      // records in cur
	sealed      [][]byte // completed chunk frames, oldest first
	sealedBytes int64
	evicted     int
	commits     int64
	events      int64
	dumps       int
	closed      bool
	finalDigest uint64
	lossy       bool
	lossyDetail string
	abs         seqabs.Abstracter
	syms        []oplog.Sym // scratch for shape keys
}

// New builds a recorder for a run starting from initial (snapshotted —
// callers may mutate their state afterwards).
func New(meta Meta, initial *state.State, opts Options) *Recorder {
	if opts.ChunkBytes <= 0 {
		opts.ChunkBytes = DefaultChunkBytes
	}
	return &Recorder{
		meta:    meta,
		opts:    opts,
		initial: initial.Clone(),
		epoch:   time.Now(),
		cur:     newEnc(false),
	}
}

// ObserveCommitted records one committed transaction: its op log in
// execution order, each op's observed value, and the commit's global
// clock value. It implements stm.CommitSink.
func (r *Recorder) ObserveCommitted(task int, commitTime int64, log oplog.Log) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	// Vet before writing: a mid-record failure would strand string-table
	// entries, so an unencodable log is skipped whole and the trace
	// marked lossy instead.
	if err := encodableLog(log); err != nil {
		if !r.lossy {
			r.lossy = true
			r.lossyDetail = err.Error()
		}
		return
	}
	shape := ""
	if !r.opts.NoShapes {
		r.syms = r.syms[:0]
		for _, ev := range log {
			r.syms = append(r.syms, ev.Op.Sym())
		}
		shape = r.abs.Key(r.syms)
	}
	e := r.cur
	e.byte(recTxn)
	e.u(uint64(task))
	e.u(uint64(commitTime))
	e.str(shape)
	e.u(uint64(len(log)))
	for _, ev := range log {
		e.op(ev.Op)
		if ev.Observed != nil {
			e.byte(1)
			e.value(ev.Observed)
		} else {
			e.byte(0)
		}
	}
	r.commits++
	r.curRecords++
	r.maybeSealLocked()
}

// recordEvent captures one protocol event.
func (r *Recorder) recordEvent(ev obs.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	e := r.cur
	e.byte(recEvent)
	e.byte(byte(ev.Type))
	e.i(ev.When)
	e.i(ev.Dur)
	e.i(int64(ev.Worker))
	e.i(int64(ev.Task))
	e.i(int64(ev.Attempt))
	e.str(ev.Reason)
	e.str(ev.Loc)
	e.str(ev.Detail)
	r.events++
	r.curRecords++
	r.maybeSealLocked()
}

// maybeSealLocked seals the open chunk once it crosses the size
// threshold, evicting the oldest sealed frame in flight mode.
func (r *Recorder) maybeSealLocked() {
	if len(r.cur.buf) < r.opts.ChunkBytes {
		return
	}
	frame := chunkFrame(r.cur.buf, r.opts.Compress)
	r.sealed = append(r.sealed, frame)
	r.sealedBytes += int64(len(frame))
	r.cur = newEnc(false)
	r.curRecords = 0
	if r.opts.FlightChunks > 0 {
		for len(r.sealed) > r.opts.FlightChunks {
			r.sealedBytes -= int64(len(r.sealed[0]))
			// Clear the head before reslicing: the backing array would
			// otherwise keep the evicted frame reachable, letting flight
			// mode transiently hold ~double its configured memory bound.
			r.sealed[0] = nil
			r.sealed = r.sealed[1:]
			r.evicted++
		}
	}
}

// teeTracer forwards events to an inner tracer (when any) and records
// them.
type teeTracer struct {
	r     *Recorder
	inner obs.Tracer
}

// Emit records and forwards.
func (t *teeTracer) Emit(ev obs.Event) {
	t.r.recordEvent(ev)
	if t.inner != nil {
		t.inner.Emit(ev)
	}
}

// Now delegates to the inner tracer's clock so span timestamps stay on
// one epoch; without one it falls back to the recorder's own epoch.
func (t *teeTracer) Now() int64 {
	if t.inner != nil {
		return t.inner.Now()
	}
	return int64(time.Since(t.r.epoch))
}

// Tracer wraps inner so every emitted event is also captured in the
// trace. inner may be nil (record-only).
func (r *Recorder) Tracer(inner obs.Tracer) obs.Tracer {
	return &teeTracer{r: r, inner: inner}
}

// Close seals the capture with the run's final state; subsequent commits
// and events are dropped, and dumps carry the definitive final-state
// digest. final may be nil when the run failed before producing one.
func (r *Recorder) Close(final *state.State) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	if final != nil {
		r.finalDigest = Digest(final)
	}
}

// Stats reports capture counters.
func (r *Recorder) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		Commits:       r.commits,
		Events:        r.events,
		Chunks:        len(r.sealed),
		EvictedChunks: r.evicted,
		Bytes:         r.sealedBytes + int64(len(r.cur.buf)),
		Dumps:         r.dumps,
		Lossy:         r.lossy,
	}
}

// WriteTo dumps a complete artifact: header, every retained chunk, the
// still-open chunk, and a footer. Each call is a full self-contained
// snapshot, so the flight recorder can dump on every incident without
// coordinating with a later final write. Implements io.WriterTo.
func (r *Recorder) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()

	var flags byte
	if r.opts.Compress {
		flags |= flagGzip
	}
	out, err := buildPrelude(r.meta, r.initial, flags)
	if err != nil {
		return 0, err
	}
	for _, frame := range r.sealed {
		out = append(out, frame...)
	}
	if len(r.cur.buf) > 0 {
		out = append(out, chunkFrame(r.cur.buf, r.opts.Compress)...)
	}

	truncated := r.evicted > 0
	kind, digest := DigestNone, uint64(0)
	switch {
	case r.closed && r.finalDigest != 0:
		kind, digest = DigestFinal, r.finalDigest
	case !truncated && !r.lossy:
		// Mid-run dump with a complete lossless history: derive the
		// digest by replaying our own retained frames. Commit-order
		// replay of committed logs reconstructs the published state
		// exactly (serializability).
		if d, derr := r.deriveDigestLocked(); derr == nil {
			kind, digest = DigestDerived, d
		}
	}
	out = append(out, footerFrame(r.commits, r.events, truncated, r.lossy, kind, digest, r.evicted, r.lossyDetail)...)

	n, err := w.Write(out)
	if err == nil {
		r.dumps++ // only successful dumps count as produced artifacts
	}
	return int64(n), err
}

// deriveDigestLocked replays the retained transactions over the initial
// state. Caller holds r.mu; only valid with no evictions and no loss.
func (r *Recorder) deriveDigestLocked() (uint64, error) {
	var txns []TxnRecord
	collect := func(frame []byte) error {
		off := 1 // skip the 'C' marker
		chunk, err := decodeChunkFrame(frame, &off, r.opts.Compress)
		if err != nil {
			return err
		}
		txns = append(txns, chunk.txns...)
		return nil
	}
	for _, frame := range r.sealed {
		if err := collect(frame); err != nil {
			return 0, err
		}
	}
	if len(r.cur.buf) > 0 {
		if err := collect(chunkFrame(r.cur.buf, r.opts.Compress)); err != nil {
			return 0, err
		}
	}
	// Commits arrive at the sink in publish order per worker but may
	// interleave across workers; sort into the serialization order.
	sort.SliceStable(txns, func(i, j int) bool { return txns[i].CommitTime < txns[j].CommitTime })
	st := r.initial.Clone()
	if err := applyInCommitOrder(st, txns); err != nil {
		return 0, err
	}
	return Digest(st), nil
}

// WriteFile dumps the current capture to path atomically (fsio's
// temp+fsync+rename idiom, so a crash mid-dump can't leave a torn
// artifact and the published dump is world-readable).
func (r *Recorder) WriteFile(path string) error {
	err := fsio.WriteAtomicFunc(path, func(w io.Writer) error {
		_, werr := r.WriteTo(w)
		return werr
	})
	if err != nil {
		return fmt.Errorf("rec: writing trace file: %w", err)
	}
	return nil
}

// Digest fingerprints a state via FNV-64a over its canonical rendering
// (sorted locations, deterministic value formatting).
func Digest(st *state.State) uint64 {
	h := fnv.New64a()
	io.WriteString(h, st.String()) //nolint:errcheck // hash writes cannot fail
	return h.Sum64()
}

// FormatDigest renders a digest the way the CLIs print it.
func FormatDigest(d uint64) string { return fmt.Sprintf("%016x", d) }
