package rec

import "repro/internal/state"

// EncodeState renders a full shared-state snapshot in the trace format's
// inline value encoding (sorted locations, no string table) — the same
// bytes the trace header carries for its initial-state snapshot, exposed
// so other durable artifacts (the serving layer's tenant snapshots in
// internal/wal) can reuse one audited codec instead of inventing a
// second state serialization. Returns a typed error for values with no
// trace encoding.
func EncodeState(st *state.State) ([]byte, error) {
	e := newEnc(true)
	locs := st.Locs()
	e.u(uint64(len(locs)))
	for _, l := range locs {
		v, _ := st.Get(l)
		if err := encodableValue(v); err != nil {
			return nil, err
		}
		e.str(string(l))
		e.value(v)
	}
	return e.buf, nil
}

// DecodeState parses an EncodeState payload. Malformed input yields a
// typed *TraceError (never a panic), matching the trace decoder's
// contract.
func DecodeState(buf []byte) (st *state.State, err error) {
	defer func() {
		if p := recover(); p != nil {
			st, err = nil, traceErr(TraceBadRecord, "panic decoding state: %v", p)
		}
	}()
	d := &dec{buf: buf, inline: true}
	n := d.u()
	if n > uint64(len(d.buf)-d.pos) {
		d.fail(TraceBadRecord, "location count %d exceeds payload", n)
		return nil, d.err
	}
	st = state.New()
	for i := uint64(0); i < n && d.err == nil; i++ {
		loc := state.Loc(d.str())
		v := d.value()
		if d.err == nil {
			st.Set(loc, v)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.pos != len(d.buf) {
		return nil, traceErr(TraceBadRecord, "%d trailing bytes after state snapshot", len(d.buf)-d.pos)
	}
	return st, nil
}
