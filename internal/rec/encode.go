package rec

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/adt"
	"repro/internal/oplog"
	"repro/internal/state"
	"repro/internal/stm"
)

// On-disk layout (all integers varint-encoded unless noted):
//
//	file   := magic format flags header chunk* footer
//	magic  := "JANUSTRC" (8 raw bytes)
//	header := uvarint(len) payload crc32(payload, 4 bytes LE)
//	chunk  := 'C' uvarint(len(body)) uvarint(rawLen) body crc32(body)
//	footer := 'F' uvarint(len) payload crc32(payload)
//
// The header payload carries the run metadata and a full snapshot of the
// initial shared state; chunk bodies carry the transaction and event
// records (gzip-compressed when the file flag says so; rawLen is the
// uncompressed body length); the footer carries the commit count and the
// final-state digest. Every frame is independently CRC32-checksummed —
// the PR 4 spec-envelope discipline applied to a binary stream — so a
// truncated or bit-flipped artifact is rejected with a typed *TraceError
// instead of silently replaying garbage.
//
// Strings inside a chunk go through a per-chunk string table (0 marks an
// inline definition that is appended to the table; n>0 is a back-reference
// to entry n-1). The table is per chunk, not per file, so the flight
// recorder can evict whole chunks from its ring without breaking the
// back-references of the chunks it keeps.

// traceMagic identifies a JANUS op-trace artifact.
const traceMagic = "JANUSTRC"

// traceFormat is the current schema version; bump on incompatible change.
const traceFormat = 1

// File-level flags.
const flagGzip byte = 1 << 0

// Frame markers.
const (
	frameChunk  byte = 'C'
	frameFooter byte = 'F'
)

// Record kinds inside a chunk body.
const (
	recTxn   byte = 1
	recEvent byte = 2
)

// Value tags (observed values and initial-state snapshot entries).
const (
	valNone byte = iota
	valInt
	valStr
	valBool
	valList
	valRel
)

// Opcodes, one per concrete adt op type. These are part of the on-disk
// format; append only.
const (
	opNumAdd byte = iota + 1
	opNumStore
	opNumLoad
	opStrStore
	opStrLoad
	opBoolStore
	opBoolLoad
	opListPush
	opListPop
	opListSize
	opRelPut
	opRelRemove
	opRelGet
	opRelHas
	opRelClear
)

// enc is an append-only encoder with an optional per-chunk string table.
type enc struct {
	buf []byte
	tab map[string]uint64
	// inline disables the string table (header/footer payloads, which
	// must decode without chunk context).
	inline bool
}

func newEnc(inline bool) *enc {
	e := &enc{inline: inline}
	if !inline {
		e.tab = make(map[string]uint64)
	}
	return e
}

func (e *enc) u(v uint64)  { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *enc) i(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }
func (e *enc) byte(v byte) { e.buf = append(e.buf, v) }

func (e *enc) bool(v bool) {
	if v {
		e.byte(1)
	} else {
		e.byte(0)
	}
}

// str writes a string: a back-reference into the chunk's string table
// when the string was seen before, an inline definition otherwise.
func (e *enc) str(s string) {
	if !e.inline {
		if idx, ok := e.tab[s]; ok {
			e.u(idx + 1)
			return
		}
	}
	e.u(0)
	e.u(uint64(len(s)))
	e.buf = append(e.buf, s...)
	if !e.inline {
		e.tab[s] = uint64(len(e.tab))
	}
}

// value encodes a state.Value. Unknown implementations are a caller bug
// guarded by encodableLog/encodableValue before any bytes are written.
func (e *enc) value(v state.Value) {
	switch x := v.(type) {
	case nil:
		e.byte(valNone)
	case state.Int:
		e.byte(valInt)
		e.i(int64(x))
	case state.Str:
		e.byte(valStr)
		e.str(string(x))
	case state.Bool:
		e.byte(valBool)
		e.bool(bool(x))
	case state.IntList:
		e.byte(valList)
		e.u(uint64(len(x)))
		for _, n := range x {
			e.i(n)
		}
	case state.Rel:
		e.byte(valRel)
		e.rel(x)
	default:
		panic(fmt.Sprintf("rec: unencodable value %T escaped encodableValue", v))
	}
}

// rel encodes a relational value: columns, functional dependency, and the
// tuple set in deterministic (sorted) order.
func (e *enc) rel(v state.Rel) {
	cols := v.R.Cols()
	e.u(uint64(len(cols)))
	for _, c := range cols {
		e.str(c)
	}
	fd := v.R.FDef()
	if fd == nil {
		e.bool(false)
	} else {
		e.bool(true)
		e.u(uint64(len(fd.Domain)))
		for _, c := range fd.Domain {
			e.str(c)
		}
		e.u(uint64(len(fd.Range)))
		for _, c := range fd.Range {
			e.str(c)
		}
	}
	tuples := v.R.Tuples()
	sort.Slice(tuples, func(i, j int) bool {
		return tupleKey(tuples[i], cols) < tupleKey(tuples[j], cols)
	})
	e.u(uint64(len(tuples)))
	for _, t := range tuples {
		e.u(uint64(len(t)))
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			e.str(k)
			e.str(t[k])
		}
	}
}

func tupleKey(t map[string]string, cols []string) string {
	key := ""
	for _, c := range cols {
		key += t[c] + "\x00"
	}
	return key
}

// op encodes one concrete operation. The caller must have vetted the log
// with encodableLog first; an unknown op type here is a programming error.
func (e *enc) op(op oplog.Op) {
	switch o := op.(type) {
	case adt.NumAddOp:
		e.byte(opNumAdd)
		e.str(string(o.L))
		e.i(o.Delta)
	case adt.NumStoreOp:
		e.byte(opNumStore)
		e.str(string(o.L))
		e.i(o.V)
	case adt.NumLoadOp:
		e.byte(opNumLoad)
		e.str(string(o.L))
	case adt.StrStoreOp:
		e.byte(opStrStore)
		e.str(string(o.L))
		e.str(o.V)
	case adt.StrLoadOp:
		e.byte(opStrLoad)
		e.str(string(o.L))
	case adt.BoolStoreOp:
		e.byte(opBoolStore)
		e.str(string(o.L))
		e.bool(o.V)
	case adt.BoolLoadOp:
		e.byte(opBoolLoad)
		e.str(string(o.L))
	case adt.ListPushOp:
		e.byte(opListPush)
		e.str(string(o.L))
		e.i(o.V)
	case adt.ListPopOp:
		e.byte(opListPop)
		e.str(string(o.L))
	case adt.ListSizeOp:
		e.byte(opListSize)
		e.str(string(o.L))
	case adt.RelPutOp:
		e.byte(opRelPut)
		e.str(string(o.L))
		e.str(o.Key)
		e.str(o.Val)
	case adt.RelRemoveOp:
		e.byte(opRelRemove)
		e.str(string(o.L))
		e.str(o.Key)
	case adt.RelGetOp:
		e.byte(opRelGet)
		e.str(string(o.L))
		e.str(o.Key)
	case adt.RelHasOp:
		e.byte(opRelHas)
		e.str(string(o.L))
		e.str(o.Key)
	case adt.RelClearOp:
		e.byte(opRelClear)
		e.str(string(o.L))
	default:
		panic(fmt.Sprintf("rec: unencodable op %T escaped encodableLog", op))
	}
}

// encodableValue reports whether a value has an on-disk encoding.
func encodableValue(v state.Value) error {
	switch v.(type) {
	case nil, state.Int, state.Str, state.Bool, state.IntList, state.Rel:
		return nil
	default:
		return fmt.Errorf("rec: value type %T has no trace encoding", v)
	}
}

// encodableLog vets a transaction log before any bytes are written, so a
// log containing an unknown op type (e.g. an unexported custom-ADT op)
// marks the trace lossy without corrupting the chunk mid-record.
func encodableLog(log oplog.Log) error {
	for _, ev := range log {
		switch ev.Op.(type) {
		case adt.NumAddOp, adt.NumStoreOp, adt.NumLoadOp,
			adt.StrStoreOp, adt.StrLoadOp,
			adt.BoolStoreOp, adt.BoolLoadOp,
			adt.ListPushOp, adt.ListPopOp, adt.ListSizeOp,
			adt.RelPutOp, adt.RelRemoveOp, adt.RelGetOp, adt.RelHasOp, adt.RelClearOp:
		default:
			return fmt.Errorf("rec: op %q (%T) has no trace encoding", ev.Op.Sym().Kind, ev.Op)
		}
		if err := encodableValue(ev.Observed); err != nil {
			return err
		}
	}
	return nil
}

// privatizeByte maps the stm privatization mode to its wire value.
func privatizeByte(p stm.Privatize) byte {
	if p == stm.PrivatizePersistent {
		return 1
	}
	return 0
}

// appendFrame appends a length-prefixed, CRC32-trailed payload.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
}

// buildPrelude renders magic, format, flags, and the CRC'd header frame.
func buildPrelude(meta Meta, initial *state.State, flags byte) ([]byte, error) {
	e := newEnc(true)
	e.str(meta.Workload)
	e.str(meta.Detector)
	e.bool(meta.Ordered)
	e.byte(privatizeByte(meta.Privatize))
	e.u(uint64(meta.Threads))
	e.u(uint64(meta.Tasks))
	e.i(meta.Seed)
	locs := initial.Locs()
	e.u(uint64(len(locs)))
	for _, l := range locs {
		v, _ := initial.Get(l)
		if err := encodableValue(v); err != nil {
			return nil, err
		}
		e.str(string(l))
		e.value(v)
	}
	out := append([]byte(traceMagic), byte(traceFormat), flags)
	return appendFrame(out, e.buf), nil
}

// chunkFrame seals a chunk body into its on-disk frame, compressing when
// asked. rawLen always records the uncompressed body length.
func chunkFrame(body []byte, compress bool) []byte {
	raw := len(body)
	if compress {
		var zbuf bytes.Buffer
		zw := gzip.NewWriter(&zbuf)
		zw.Write(body) //nolint:errcheck // bytes.Buffer writes cannot fail
		if err := zw.Close(); err != nil {
			panic("rec: gzip to memory failed: " + err.Error())
		}
		body = zbuf.Bytes()
	}
	out := []byte{frameChunk}
	out = binary.AppendUvarint(out, uint64(len(body)))
	out = binary.AppendUvarint(out, uint64(raw))
	out = append(out, body...)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(body))
}

// footerFrame renders the trailing frame: counts, completeness flags, and
// the final-state digest.
func footerFrame(commits, events int64, truncated, lossy bool, kind DigestKind, digest uint64, evicted int, lossyDetail string) []byte {
	e := newEnc(true)
	e.u(uint64(commits))
	e.u(uint64(events))
	var fl byte
	if truncated {
		fl |= 1 << 0
	}
	if lossy {
		fl |= 1 << 1
	}
	e.byte(fl)
	e.byte(byte(kind))
	e.buf = binary.LittleEndian.AppendUint64(e.buf, digest)
	e.u(uint64(evicted))
	e.str(lossyDetail)
	return appendFrame([]byte{frameFooter}, e.buf)
}
