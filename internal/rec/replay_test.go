package rec

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/chaos"
	"repro/internal/state"
	"repro/internal/stm"
)

// TestReplayDeterminismMatrix is the end-to-end determinism property:
// record a chaos-perturbed parallel run, then require that
//
//	sequential-oracle digest  ==  recorded digest
//	parallel-replay digest    ==  recorded digest
//	RunSequential(tasks)      ==  recorded final state
//
// across {ordered, unordered} × {copy, persistent} × chaos seeds. The
// chaos injector perturbs scheduling and forces aborts during RECORDING,
// so each cell captures a genuinely different interleaving; replay must
// still land on the same state every time.
func TestReplayDeterminismMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run in full mode only")
	}
	seeds := []int64{1, 42, 20240808}
	for _, ordered := range []bool{false, true} {
		for _, priv := range []stm.Privatize{stm.PrivatizeCopy, stm.PrivatizePersistent} {
			for _, seed := range seeds {
				ordered, priv, seed := ordered, priv, seed
				name := fmt.Sprintf("ordered=%v/priv=%d/seed=%d", ordered, priv, seed)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					initial := testState()
					tasks := testTasks(30)
					meta := Meta{
						Workload: "matrix", Detector: "write-set",
						Ordered: ordered, Privatize: priv,
						Threads: 4, Tasks: len(tasks), Seed: seed,
					}
					inj := chaos.New(chaos.Config{
						Seed:      seed,
						AbortProb: 0.3, AbortMaxPerTask: 2,
						DelayProb: 0.2, MaxDelay: 50 * time.Microsecond,
					})
					r := New(meta, initial, Options{ChunkBytes: 1024})
					final, _, err := stm.Run(stm.Config{
						Threads: 4, Ordered: ordered, Privatize: priv,
						Hooks: inj.Hooks(), Record: r,
					}, initial, tasks)
					if err != nil {
						t.Fatalf("recording run: %v", err)
					}
					r.Close(final)

					var buf bytes.Buffer
					if _, err := r.WriteTo(&buf); err != nil {
						t.Fatal(err)
					}
					tr, err := ReadTrace(&buf)
					if err != nil {
						t.Fatal(err)
					}
					// The oracle: run the ORIGINAL task closures one-at-a-time
					// in the recorded commit order (task ids are 1-based,
					// matching the stm's). Serializability of the recorded run
					// is exactly "final states agree with that serial order".
					serial := make([]adt.Task, len(tr.Txns))
					for i, txn := range tr.Txns {
						serial[i] = tasks[txn.Task-1]
					}
					oracle, err := stm.RunSequential(testState(), serial)
					if err != nil {
						t.Fatal(err)
					}
					if !oracle.Equal(final) {
						t.Fatalf("recorded run not serializable:\n par %s\n seq %s", final, oracle)
					}
					want := Digest(final)
					if tr.DigestKind != DigestFinal || tr.Digest != want {
						t.Fatalf("trace digest %016x (%s), want final %016x", tr.Digest, tr.DigestKind, want)
					}
					// Sequential replay, with per-op observed-value checks.
					seqState, err := tr.ReplaySequential(true)
					if err != nil {
						t.Fatalf("ReplaySequential: %v", err)
					}
					if got := Digest(seqState); got != want {
						t.Errorf("sequential replay digest %016x != recorded %016x", got, want)
					}
					// Parallel replay through the live stm under the recorded
					// mode — a fresh nondeterministic schedule, same outcome.
					parState, stats, err := tr.Replay(0)
					if err != nil {
						t.Fatalf("Replay: %v", err)
					}
					if got := Digest(parState); got != want {
						t.Errorf("parallel replay digest %016x != recorded %016x", got, want)
					}
					if stats.Commits != int64(len(tr.Txns)) {
						t.Errorf("parallel replay committed %d of %d txns", stats.Commits, len(tr.Txns))
					}
				})
			}
		}
	}
}

// TestReplayTasksVerifyOpsCatchesDrift ensures verify-ops replay actually
// fails when the trace's observed values no longer match re-execution —
// the defense against silently replaying over the wrong initial state.
func TestReplayTasksVerifyOpsCatchesDrift(t *testing.T) {
	initial := testState()
	tasks := []adt.Task{func(ex adt.Executor) error {
		c := adt.Counter{L: "counter"}
		if err := c.Add(ex, 1); err != nil {
			return err
		}
		_, err := c.Load(ex)
		return err
	}}
	r := New(testMeta(1), initial, Options{})
	final := recordRun(t, r, initial, tasks, false)
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: against the recorded initial state, verification passes.
	if _, err := tr.ReplaySequential(true); err != nil {
		t.Fatalf("faithful replay rejected: %v", err)
	}
	// Corrupt the replayed-over initial state; the counter load now
	// observes a different value and verify-ops must say so.
	tr.Initial.Set("counter", state.Int(999))
	if _, err := tr.ReplaySequential(true); err == nil {
		t.Fatal("verify-ops replay accepted a drifted initial state")
	}
	// Without verification the drift is silent (by design: -verify-ops
	// is the strict mode).
	if _, err := tr.ReplaySequential(false); err != nil {
		t.Fatalf("non-verifying replay should still apply: %v", err)
	}
	_ = final
}

// TestReplayThreadOverride checks Replay honors an explicit worker count
// and falls back to the recorded one.
func TestReplayThreadOverride(t *testing.T) {
	initial := testState()
	tasks := testTasks(12)
	r := New(testMeta(len(tasks)), initial, Options{})
	final := recordRun(t, r, initial, tasks, false)
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{0, 1, 2, 8} {
		st, _, err := tr.Replay(threads)
		if err != nil {
			t.Fatalf("Replay(%d): %v", threads, err)
		}
		if !st.Equal(final) {
			t.Errorf("Replay(%d) drifted from recorded final state", threads)
		}
	}
}

// TestReplayOrderedTrace records an ordered run and replays it: ordered
// commit means commit times follow task order, which the decoder's
// commit-time sort must preserve end to end.
func TestReplayOrderedTrace(t *testing.T) {
	initial := testState()
	tasks := testTasks(20)
	meta := testMeta(len(tasks))
	meta.Ordered = true
	r := New(meta, initial, Options{})
	final := recordRun(t, r, initial, tasks, true)
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Meta.Ordered {
		t.Fatal("ordered flag lost in round trip")
	}
	// Ordered mode commits in task order: the 1-based task ids must be
	// 1..n in commit-time order.
	for i, txn := range tr.Txns {
		if txn.Task != i+1 {
			t.Fatalf("ordered trace: commit %d came from task %d", i, txn.Task)
		}
	}
	st, _, err := tr.Replay(0)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Equal(final) {
		t.Error("ordered replay drifted from recorded final state")
	}
}
