package rec

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"repro/internal/adt"
	"repro/internal/obs"
	"repro/internal/oplog"
	"repro/internal/relation"
	"repro/internal/state"
	"repro/internal/stm"
)

// TraceReason classifies why a trace artifact was rejected, mirroring the
// cache package's SpecReason discipline so callers can branch on the
// failure class rather than parse message strings.
type TraceReason int

// Rejection reasons.
const (
	// TraceBadMagic: the file does not start with the JANUSTRC magic.
	TraceBadMagic TraceReason = iota
	// TraceBadFormat: the format version is newer than this build knows.
	TraceBadFormat
	// TraceBadChecksum: a frame's CRC32 does not match its payload.
	TraceBadChecksum
	// TraceTruncated: the stream ended mid-frame or without a footer.
	TraceTruncated
	// TraceBadRecord: a frame payload is structurally malformed.
	TraceBadRecord
	// TraceLossy: the trace omits transactions that could not be encoded
	// and therefore cannot be replayed faithfully.
	TraceLossy
)

// String renders the reason.
func (r TraceReason) String() string {
	switch r {
	case TraceBadMagic:
		return "bad magic"
	case TraceBadFormat:
		return "unsupported format"
	case TraceBadChecksum:
		return "checksum mismatch"
	case TraceTruncated:
		return "truncated trace"
	case TraceBadRecord:
		return "malformed record"
	case TraceLossy:
		return "lossy trace"
	default:
		return fmt.Sprintf("reason(%d)", int(r))
	}
}

// TraceError is the typed rejection error for trace artifacts.
type TraceError struct {
	Reason TraceReason
	Detail string
	Err    error
}

// Error renders the failure.
func (e *TraceError) Error() string {
	msg := "rec: " + e.Reason.String()
	if e.Detail != "" {
		msg += ": " + e.Detail
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap exposes the underlying cause.
func (e *TraceError) Unwrap() error { return e.Err }

func traceErr(reason TraceReason, format string, args ...any) *TraceError {
	return &TraceError{Reason: reason, Detail: fmt.Sprintf(format, args...)}
}

// DigestKind says what the footer digest covers.
type DigestKind byte

// Digest kinds.
const (
	// DigestNone: no digest (truncated or lossy capture).
	DigestNone DigestKind = iota
	// DigestFinal: digest of the actual final state at recorder close.
	DigestFinal
	// DigestDerived: digest computed at dump time by replaying the
	// retained transactions over the initial state (flight-recorder dumps
	// taken mid-run with a complete, lossless history).
	DigestDerived
)

// String renders the kind.
func (k DigestKind) String() string {
	switch k {
	case DigestFinal:
		return "final"
	case DigestDerived:
		return "derived"
	default:
		return "none"
	}
}

// TxnRecord is one committed transaction as captured in the trace.
type TxnRecord struct {
	// Task is the stm's 1-based task identifier, matching the Task field
	// of captured obs events (subtract one to index the original task
	// slice).
	Task int
	// CommitTime is the global-clock value the commit published.
	CommitTime int64
	// Shape is the seqabs abstraction key of the op sequence ("" when
	// shape capture was disabled).
	Shape string
	// Ops is the committed op log in execution order.
	Ops []oplog.Op
	// Observed holds the per-op observed values (nil entry = none).
	Observed []state.Value
}

// Trace is a fully decoded, validated artifact.
type Trace struct {
	Meta    Meta
	Initial *state.State
	// Txns is sorted by CommitTime: the serialization order.
	Txns []TxnRecord
	// Events are the protocol events captured alongside the op logs.
	Events []obs.Event
	// Commits is the footer's commit count — the number of commits the
	// recorder saw, which exceeds len(Txns) when chunks were evicted.
	Commits int64
	// Digest and DigestKind come from the footer.
	Digest     uint64
	DigestKind DigestKind
	// Truncated marks a flight-recorder dump that evicted chunks.
	Truncated bool
	// Lossy marks a capture that skipped unencodable transactions.
	Lossy       bool
	LossyDetail string
	// EvictedChunks counts ring evictions before the dump.
	EvictedChunks int
}

// dec is an error-latching reader over a fully buffered payload.
type dec struct {
	buf []byte
	pos int
	tab []string
	// inline disables the string table (header/footer payloads).
	inline bool
	err    error
}

func (d *dec) fail(reason TraceReason, format string, args ...any) {
	if d.err == nil {
		d.err = traceErr(reason, format, args...)
	}
}

func (d *dec) u() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		d.fail(TraceBadRecord, "bad uvarint at offset %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *dec) i() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.pos:])
	if n <= 0 {
		d.fail(TraceBadRecord, "bad varint at offset %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *dec) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.buf) {
		d.fail(TraceBadRecord, "unexpected end of payload")
		return 0
	}
	b := d.buf[d.pos]
	d.pos++
	return b
}

func (d *dec) bool() bool { return d.byte() != 0 }

func (d *dec) str() string {
	ref := d.u()
	if d.err != nil {
		return ""
	}
	if ref > 0 {
		if d.inline {
			d.fail(TraceBadRecord, "string back-reference in inline payload")
			return ""
		}
		idx := int(ref - 1)
		if idx >= len(d.tab) {
			d.fail(TraceBadRecord, "string back-reference %d beyond table size %d", idx, len(d.tab))
			return ""
		}
		return d.tab[idx]
	}
	n := d.u()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)-d.pos) {
		d.fail(TraceBadRecord, "string length %d exceeds payload", n)
		return ""
	}
	s := string(d.buf[d.pos : d.pos+int(n)])
	d.pos += int(n)
	if !d.inline {
		d.tab = append(d.tab, s)
	}
	return s
}

func (d *dec) value() state.Value {
	switch tag := d.byte(); tag {
	case valNone:
		return nil
	case valInt:
		return state.Int(d.i())
	case valStr:
		return state.Str(d.str())
	case valBool:
		return state.Bool(d.bool())
	case valList:
		n := d.u()
		if n > uint64(len(d.buf)-d.pos) {
			d.fail(TraceBadRecord, "list length %d exceeds payload", n)
			return nil
		}
		out := make(state.IntList, n)
		for i := range out {
			out[i] = d.i()
		}
		return out
	case valRel:
		return d.rel()
	default:
		d.fail(TraceBadRecord, "unknown value tag %d", tag)
		return nil
	}
}

func (d *dec) strs(what string) []string {
	n := d.u()
	if n > uint64(len(d.buf)-d.pos) {
		d.fail(TraceBadRecord, "%s count %d exceeds payload", what, n)
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.str()
	}
	return out
}

func (d *dec) rel() state.Value {
	cols := d.strs("column")
	var fd *relation.FD
	if d.bool() {
		fd = &relation.FD{Domain: d.strs("fd domain"), Range: d.strs("fd range")}
	}
	if d.err != nil {
		return nil
	}
	// relation.New panics on invariant violations (it guards programmer
	// error); a CRC-valid but corrupted trace must surface a typed error
	// instead, so vet the decoded schema first.
	if !d.validRelSchema(cols, fd) {
		return nil
	}
	r := relation.New(cols, fd)
	ntup := d.u()
	if ntup > uint64(len(d.buf)-d.pos) {
		d.fail(TraceBadRecord, "tuple count %d exceeds payload", ntup)
		return nil
	}
	for i := uint64(0); i < ntup && d.err == nil; i++ {
		ncol := d.u()
		if ncol > uint64(len(d.buf)-d.pos) {
			d.fail(TraceBadRecord, "tuple width %d exceeds payload", ncol)
			return nil
		}
		t := make(relation.Tuple, ncol)
		for j := uint64(0); j < ncol; j++ {
			k := d.str()
			t[k] = d.str()
		}
		if d.err == nil {
			r.Insert(t)
		}
	}
	return state.Rel{R: r}
}

// validRelSchema checks the invariants relation.New enforces by panic:
// distinct column names and, when an FD is present, that its domain and
// range exactly partition the columns. Violations latch TraceBadRecord.
func (d *dec) validRelSchema(cols []string, fd *relation.FD) bool {
	sorted := append([]string(nil), cols...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			d.fail(TraceBadRecord, "relation has duplicate column %q", sorted[i])
			return false
		}
	}
	if fd == nil {
		return true
	}
	all := append(append([]string(nil), fd.Domain...), fd.Range...)
	sort.Strings(all)
	if len(all) != len(sorted) {
		d.fail(TraceBadRecord, "relation FD covers %d columns, relation has %d", len(all), len(sorted))
		return false
	}
	for i := range all {
		if all[i] != sorted[i] {
			d.fail(TraceBadRecord, "relation FD domain+range does not partition columns")
			return false
		}
	}
	return true
}

func (d *dec) op() oplog.Op {
	code := d.byte()
	if d.err != nil {
		return nil
	}
	loc := state.Loc(d.str())
	switch code {
	case opNumAdd:
		return adt.NumAddOp{L: loc, Delta: d.i()}
	case opNumStore:
		return adt.NumStoreOp{L: loc, V: d.i()}
	case opNumLoad:
		return adt.NumLoadOp{L: loc}
	case opStrStore:
		return adt.StrStoreOp{L: loc, V: d.str()}
	case opStrLoad:
		return adt.StrLoadOp{L: loc}
	case opBoolStore:
		return adt.BoolStoreOp{L: loc, V: d.bool()}
	case opBoolLoad:
		return adt.BoolLoadOp{L: loc}
	case opListPush:
		return adt.ListPushOp{L: loc, V: d.i()}
	case opListPop:
		return adt.ListPopOp{L: loc}
	case opListSize:
		return adt.ListSizeOp{L: loc}
	case opRelPut:
		return adt.RelPutOp{L: loc, Key: d.str(), Val: d.str()}
	case opRelRemove:
		return adt.RelRemoveOp{L: loc, Key: d.str()}
	case opRelGet:
		return adt.RelGetOp{L: loc, Key: d.str()}
	case opRelHas:
		return adt.RelHasOp{L: loc, Key: d.str()}
	case opRelClear:
		return adt.RelClearOp{L: loc}
	default:
		d.fail(TraceBadRecord, "unknown opcode %d", code)
		return nil
	}
}

// readFramePayload consumes a uvarint length, payload, and CRC trailer
// from raw at *off, verifying the checksum.
func readFramePayload(raw []byte, off *int, what string) ([]byte, error) {
	n, w := binary.Uvarint(raw[*off:])
	if w <= 0 {
		return nil, traceErr(TraceTruncated, "%s length missing", what)
	}
	*off += w
	if n > uint64(len(raw)-*off) || uint64(len(raw)-*off)-n < 4 {
		return nil, traceErr(TraceTruncated, "%s payload of %d bytes exceeds file", what, n)
	}
	payload := raw[*off : *off+int(n)]
	*off += int(n)
	want := binary.LittleEndian.Uint32(raw[*off : *off+4])
	*off += 4
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, traceErr(TraceBadChecksum, "%s crc32 %08x, want %08x", what, got, want)
	}
	return payload, nil
}

// chunkPayload holds a decoded chunk's records.
type chunkPayload struct {
	txns   []TxnRecord
	events []obs.Event
}

// decodeChunkFrame reads one chunk frame at *off (past the 'C' marker) and
// decodes its records. Shared by ReadTrace and the recorder's
// derived-digest path.
func decodeChunkFrame(raw []byte, off *int, compressed bool) (chunkPayload, error) {
	var out chunkPayload
	clen, w := binary.Uvarint(raw[*off:])
	if w <= 0 {
		return out, traceErr(TraceTruncated, "chunk length missing")
	}
	*off += w
	rawLen, w := binary.Uvarint(raw[*off:])
	if w <= 0 {
		return out, traceErr(TraceTruncated, "chunk raw length missing")
	}
	*off += w
	if clen > uint64(len(raw)-*off) || uint64(len(raw)-*off)-clen < 4 {
		return out, traceErr(TraceTruncated, "chunk body of %d bytes exceeds file", clen)
	}
	body := raw[*off : *off+int(clen)]
	*off += int(clen)
	want := binary.LittleEndian.Uint32(raw[*off : *off+4])
	*off += 4
	if got := crc32.ChecksumIEEE(body); got != want {
		return out, traceErr(TraceBadChecksum, "chunk crc32 %08x, want %08x", got, want)
	}
	if compressed {
		zr, err := gzip.NewReader(bytes.NewReader(body))
		if err != nil {
			return out, &TraceError{Reason: TraceBadRecord, Detail: "chunk gzip header", Err: err}
		}
		// The raw length bounds decompression so a corrupted length can't
		// balloon memory.
		inflated, err := io.ReadAll(io.LimitReader(zr, int64(rawLen)+1))
		if err != nil {
			return out, &TraceError{Reason: TraceBadRecord, Detail: "chunk gzip body", Err: err}
		}
		if uint64(len(inflated)) != rawLen {
			return out, traceErr(TraceBadRecord, "chunk inflated to %d bytes, header says %d", len(inflated), rawLen)
		}
		body = inflated
	} else if uint64(len(body)) != rawLen {
		return out, traceErr(TraceBadRecord, "chunk body %d bytes, header says %d", len(body), rawLen)
	}

	d := &dec{buf: body}
	for d.pos < len(d.buf) && d.err == nil {
		switch kind := d.byte(); kind {
		case recTxn:
			t := TxnRecord{
				Task:       int(d.u()),
				CommitTime: int64(d.u()),
				Shape:      d.str(),
			}
			nops := d.u()
			if nops > uint64(len(d.buf)-d.pos) {
				d.fail(TraceBadRecord, "op count %d exceeds payload", nops)
				break
			}
			t.Ops = make([]oplog.Op, 0, nops)
			t.Observed = make([]state.Value, 0, nops)
			for i := uint64(0); i < nops && d.err == nil; i++ {
				t.Ops = append(t.Ops, d.op())
				if d.bool() {
					t.Observed = append(t.Observed, d.value())
				} else {
					t.Observed = append(t.Observed, nil)
				}
			}
			if d.err == nil {
				out.txns = append(out.txns, t)
			}
		case recEvent:
			ev := obs.Event{
				Type:    obs.EventType(d.byte()),
				When:    d.i(),
				Dur:     d.i(),
				Worker:  int32(d.i()),
				Task:    int32(d.i()),
				Attempt: int32(d.i()),
				Reason:  d.str(),
				Loc:     d.str(),
				Detail:  d.str(),
			}
			if d.err == nil {
				out.events = append(out.events, ev)
			}
		default:
			d.fail(TraceBadRecord, "unknown record kind %d at offset %d", kind, d.pos-1)
		}
	}
	return out, d.err
}

// ReadTrace decodes and validates a trace artifact. Failures carry a
// *TraceError classifying the rejection.
func ReadTrace(r io.Reader) (*Trace, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, &TraceError{Reason: TraceTruncated, Detail: "reading trace", Err: err}
	}
	return decodeTrace(raw)
}

func decodeTrace(raw []byte) (t *Trace, err error) {
	// Backstop for the never-panic contract: malformed-but-CRC-valid input
	// paths are vetted explicitly (see validRelSchema), but any invariant
	// panic that slips through must still surface as a typed rejection.
	defer func() {
		if p := recover(); p != nil {
			t, err = nil, traceErr(TraceBadRecord, "panic decoding trace: %v", p)
		}
	}()
	if len(raw) < len(traceMagic)+2 {
		return nil, traceErr(TraceBadMagic, "file of %d bytes is too short", len(raw))
	}
	if string(raw[:len(traceMagic)]) != traceMagic {
		return nil, traceErr(TraceBadMagic, "not a JANUS trace")
	}
	off := len(traceMagic)
	if format := raw[off]; format != traceFormat {
		return nil, traceErr(TraceBadFormat, "format %d, this build reads %d", format, traceFormat)
	}
	off++
	flags := raw[off]
	off++
	compressed := flags&flagGzip != 0

	header, err := readFramePayload(raw, &off, "header")
	if err != nil {
		return nil, err
	}
	t = &Trace{}
	hd := &dec{buf: header, inline: true}
	t.Meta.Workload = hd.str()
	t.Meta.Detector = hd.str()
	t.Meta.Ordered = hd.bool()
	if hd.byte() == 1 {
		t.Meta.Privatize = stm.PrivatizePersistent
	}
	t.Meta.Threads = int(hd.u())
	t.Meta.Tasks = int(hd.u())
	t.Meta.Seed = hd.i()
	nlocs := hd.u()
	if nlocs > uint64(len(hd.buf)-hd.pos) {
		hd.fail(TraceBadRecord, "location count %d exceeds payload", nlocs)
	}
	t.Initial = state.New()
	for i := uint64(0); i < nlocs && hd.err == nil; i++ {
		loc := state.Loc(hd.str())
		v := hd.value()
		if hd.err == nil {
			t.Initial.Set(loc, v)
		}
	}
	if hd.err != nil {
		return nil, hd.err
	}

	sawFooter := false
	for off < len(raw) {
		marker := raw[off]
		off++
		switch marker {
		case frameChunk:
			chunk, err := decodeChunkFrame(raw, &off, compressed)
			if err != nil {
				return nil, err
			}
			t.Txns = append(t.Txns, chunk.txns...)
			t.Events = append(t.Events, chunk.events...)
		case frameFooter:
			payload, err := readFramePayload(raw, &off, "footer")
			if err != nil {
				return nil, err
			}
			fd := &dec{buf: payload, inline: true}
			t.Commits = int64(fd.u())
			fd.u() // event count; len(t.Events) is authoritative for retained data
			fl := fd.byte()
			t.Truncated = fl&(1<<0) != 0
			t.Lossy = fl&(1<<1) != 0
			t.DigestKind = DigestKind(fd.byte())
			if fd.err == nil && len(fd.buf)-fd.pos < 8 {
				fd.fail(TraceBadRecord, "footer digest missing")
			}
			if fd.err == nil {
				t.Digest = binary.LittleEndian.Uint64(fd.buf[fd.pos:])
				fd.pos += 8
			}
			t.EvictedChunks = int(fd.u())
			t.LossyDetail = fd.str()
			if fd.err != nil {
				return nil, fd.err
			}
			if off != len(raw) {
				return nil, traceErr(TraceBadRecord, "%d trailing bytes after footer", len(raw)-off)
			}
			sawFooter = true
		default:
			return nil, traceErr(TraceBadRecord, "unknown frame marker %#x at offset %d", marker, off-1)
		}
		if sawFooter {
			break
		}
	}
	if !sawFooter {
		return nil, traceErr(TraceTruncated, "no footer frame")
	}
	sort.SliceStable(t.Txns, func(i, j int) bool { return t.Txns[i].CommitTime < t.Txns[j].CommitTime })
	return t, nil
}
