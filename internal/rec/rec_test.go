package rec

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/adt"
	"repro/internal/oplog"
	"repro/internal/relation"
	"repro/internal/state"
	"repro/internal/stm"
)

// testState builds an initial state covering every value type.
func testState() *state.State {
	st := state.New()
	st.Set("counter", state.Int(7))
	st.Set("name", state.Str("seed"))
	st.Set("flag", state.Bool(true))
	st.Set("stack", state.IntList{1, 2, 3})
	st.Set("bits", adt.NewRelValue())
	return st
}

// testTasks builds n tasks exercising every op family; deterministic per
// index so sequential and stm runs agree on the workload.
func testTasks(n int) []adt.Task {
	out := make([]adt.Task, n)
	for i := 0; i < n; i++ {
		i := i
		out[i] = func(ex adt.Executor) error {
			c := adt.Counter{L: "counter"}
			if err := c.Add(ex, int64(i+1)); err != nil {
				return err
			}
			if _, err := c.Load(ex); err != nil {
				return err
			}
			if i%2 == 0 {
				if err := (adt.StrVar{L: "name"}).Store(ex, "task"); err != nil {
					return err
				}
			}
			if i%3 == 0 {
				if err := (adt.Stack{L: "stack"}).Push(ex, int64(i)); err != nil {
					return err
				}
			}
			if err := (adt.BitSet{L: "bits"}).Set(ex, i%8); err != nil {
				return err
			}
			if _, err := (adt.BitSet{L: "bits"}).Get(ex, (i+1)%8); err != nil {
				return err
			}
			return (adt.BoolVar{L: "flag"}).Store(ex, i%2 == 0)
		}
	}
	return out
}

func testMeta(tasks int) Meta {
	return Meta{
		Workload: "rec-test", Detector: "write-set",
		Ordered: false, Privatize: stm.PrivatizePersistent,
		Threads: 4, Tasks: tasks, Seed: 99,
	}
}

// recordRun executes tasks through the stm with a recorder attached and
// closes it over the final state.
func recordRun(t testing.TB, r *Recorder, initial *state.State, tasks []adt.Task, ordered bool) *state.State {
	t.Helper()
	final, _, err := stm.Run(stm.Config{
		Threads: 4, Ordered: ordered, Privatize: stm.PrivatizePersistent,
		Record: r, Tracer: r.Tracer(nil),
	}, initial, tasks)
	if err != nil {
		t.Fatalf("stm.Run: %v", err)
	}
	r.Close(final)
	return final
}

func TestRoundTripStream(t *testing.T) {
	for _, compress := range []bool{false, true} {
		name := "plain"
		if compress {
			name = "gzip"
		}
		t.Run(name, func(t *testing.T) {
			initial := testState()
			tasks := testTasks(40)
			// Small chunks force multiple sealed frames per trace.
			r := New(testMeta(len(tasks)), initial, Options{ChunkBytes: 256, Compress: compress})
			final := recordRun(t, r, initial, tasks, false)

			var buf bytes.Buffer
			if _, err := r.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			tr, err := ReadTrace(&buf)
			if err != nil {
				t.Fatalf("ReadTrace: %v", err)
			}
			if tr.Meta != testMeta(len(tasks)) {
				t.Errorf("meta round-trip: got %+v", tr.Meta)
			}
			if !tr.Initial.Equal(testState()) {
				t.Errorf("initial state round-trip drifted:\n got %s\nwant %s", tr.Initial, testState())
			}
			if len(tr.Txns) != len(tasks) {
				t.Fatalf("retained %d txns, want %d", len(tr.Txns), len(tasks))
			}
			if tr.Truncated || tr.Lossy {
				t.Fatalf("stream capture flagged truncated=%v lossy=%v", tr.Truncated, tr.Lossy)
			}
			if tr.DigestKind != DigestFinal {
				t.Fatalf("digest kind = %s, want final", tr.DigestKind)
			}
			if tr.Digest != Digest(final) {
				t.Errorf("recorded digest %016x != final state digest %016x", tr.Digest, Digest(final))
			}
			// Commit times are unique and sorted after decode.
			seen := map[int64]bool{}
			for i, txn := range tr.Txns {
				if seen[txn.CommitTime] {
					t.Fatalf("duplicate commit time %d", txn.CommitTime)
				}
				seen[txn.CommitTime] = true
				if i > 0 && txn.CommitTime < tr.Txns[i-1].CommitTime {
					t.Fatalf("txns not sorted by commit time at %d", i)
				}
				if txn.Shape == "" {
					t.Errorf("txn %d lost its shape key", i)
				}
				if len(txn.Ops) == 0 || len(txn.Observed) != len(txn.Ops) {
					t.Fatalf("txn %d: %d ops, %d observed", i, len(txn.Ops), len(txn.Observed))
				}
			}
			// The event stream teed through Tracer survives too.
			if len(tr.Events) == 0 {
				t.Error("no protocol events captured")
			}
			// Sequential oracle replay reproduces the recorded final state,
			// checking every observed value on the way.
			st, err := tr.ReplaySequential(true)
			if err != nil {
				t.Fatalf("ReplaySequential: %v", err)
			}
			if !st.Equal(final) {
				t.Errorf("sequential replay drifted:\n got %s\nwant %s", st, final)
			}
		})
	}
}

func TestFlightRingEvictionMarksTruncated(t *testing.T) {
	initial := testState()
	tasks := testTasks(60)
	r := New(testMeta(len(tasks)), initial, Options{ChunkBytes: 256, FlightChunks: 2})
	recordRun(t, r, initial, tasks, false)

	st := r.Stats()
	if st.EvictedChunks == 0 {
		t.Fatalf("ring of 2 × 256B chunks must evict on %d tasks; stats %+v", len(tasks), st)
	}
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if !tr.Truncated {
		t.Error("evicting dump must be marked truncated")
	}
	if tr.EvictedChunks != st.EvictedChunks {
		t.Errorf("footer evictions %d != stats %d", tr.EvictedChunks, st.EvictedChunks)
	}
	if int64(len(tr.Txns)) >= tr.Commits {
		t.Errorf("truncated trace retained %d of %d commits — nothing was lost?", len(tr.Txns), tr.Commits)
	}
	// A truncated trace cannot be replayed — typed rejection.
	if _, err := tr.ReplaySequential(false); err == nil {
		t.Fatal("replaying a truncated trace must fail")
	} else {
		var terr *TraceError
		if !errors.As(err, &terr) || terr.Reason != TraceTruncated {
			t.Errorf("want *TraceError{TraceTruncated}, got %v", err)
		}
	}
}

func TestFlightMidRunDumpDerivesDigest(t *testing.T) {
	initial := testState()
	tasks := testTasks(25)
	// Flight mode with a ring big enough that nothing evicts: a mid-run
	// dump (recorder not closed) must carry a derived digest that
	// sequential replay reproduces.
	r := New(testMeta(len(tasks)), initial, Options{ChunkBytes: 512, FlightChunks: 64})
	final, _, err := stm.Run(stm.Config{
		Threads: 4, Privatize: stm.PrivatizePersistent, Record: r,
	}, initial, tasks)
	if err != nil {
		t.Fatal(err)
	}
	// Dump BEFORE Close — the incident path.
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if tr.DigestKind != DigestDerived {
		t.Fatalf("mid-run lossless dump digest kind = %s, want derived", tr.DigestKind)
	}
	st, err := tr.ReplaySequential(false)
	if err != nil {
		t.Fatal(err)
	}
	if got := Digest(st); got != tr.Digest {
		t.Errorf("replay digest %016x != derived digest %016x", got, tr.Digest)
	}
	// All commits landed before the dump, so the derived digest equals
	// the true final state's.
	if got := Digest(final); got != tr.Digest {
		t.Errorf("final digest %016x != derived digest %016x", got, tr.Digest)
	}
}

// customOp is an op type the trace format does not know.
type customOp struct{ adt.NumAddOp }

func TestUnencodableOpMarksLossy(t *testing.T) {
	initial := testState()
	r := New(testMeta(1), initial, Options{})
	log := oplog.Log{
		&oplog.Event{Op: customOp{adt.NumAddOp{L: "counter", Delta: 1}}},
	}
	r.ObserveCommitted(0, 1, log)
	r.ObserveCommitted(1, 2, oplog.Log{&oplog.Event{Op: adt.NumAddOp{L: "counter", Delta: 2}}})
	if st := r.Stats(); !st.Lossy || st.Commits != 1 {
		t.Fatalf("stats after unencodable log: %+v, want lossy with 1 commit", st)
	}
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Lossy || tr.LossyDetail == "" {
		t.Fatalf("decoded trace lossy=%v detail=%q", tr.Lossy, tr.LossyDetail)
	}
	if tr.DigestKind != DigestNone {
		t.Errorf("lossy dump digest kind = %s, want none", tr.DigestKind)
	}
	if _, err := tr.ReplaySequential(false); err == nil {
		t.Fatal("replaying a lossy trace must fail")
	} else {
		var terr *TraceError
		if !errors.As(err, &terr) || terr.Reason != TraceLossy {
			t.Errorf("want *TraceError{TraceLossy}, got %v", err)
		}
	}
}

// validTrace builds a small complete artifact for corruption tests.
func validTrace(t testing.TB) []byte {
	t.Helper()
	initial := testState()
	tasks := testTasks(8)
	r := New(testMeta(len(tasks)), initial, Options{})
	recordRun(t, r, initial, tasks, false)
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// craftRelTrace hand-builds a CRC-valid trace whose header snapshot holds
// one relation value with the given schema, bypassing the encoder's
// invariants — the shape of a crafted or corrupted-but-checksummed
// artifact.
func craftRelTrace(cols []string, fd *relation.FD) []byte {
	e := newEnc(true)
	e.str("crafted")   // workload
	e.str("write-set") // detector
	e.bool(false)      // ordered
	e.byte(0)          // privatize
	e.u(1)             // threads
	e.u(0)             // tasks
	e.i(0)             // seed
	e.u(1)             // one location
	e.str("r")
	e.byte(valRel)
	e.u(uint64(len(cols)))
	for _, c := range cols {
		e.str(c)
	}
	if fd == nil {
		e.bool(false)
	} else {
		e.bool(true)
		e.u(uint64(len(fd.Domain)))
		for _, c := range fd.Domain {
			e.str(c)
		}
		e.u(uint64(len(fd.Range)))
		for _, c := range fd.Range {
			e.str(c)
		}
	}
	e.u(0) // no tuples
	out := append([]byte(traceMagic), byte(traceFormat), 0)
	out = appendFrame(out, e.buf)
	return append(out, footerFrame(0, 0, false, false, DigestNone, 0, 0, "")...)
}

// TestCraftedRelationRejection pins the never-panic contract against
// CRC-valid traces whose relation schema violates relation.New's
// invariants: decoding must return TraceBadRecord, not panic.
func TestCraftedRelationRejection(t *testing.T) {
	cases := []struct {
		name string
		cols []string
		fd   *relation.FD
		ok   bool
	}{
		{"valid", []string{"k", "v"}, &relation.FD{Domain: []string{"k"}, Range: []string{"v"}}, true},
		{"valid-no-fd", []string{"k", "v"}, nil, true},
		{"fd-not-partition", []string{"a", "b"}, &relation.FD{Domain: []string{"a"}, Range: []string{"a"}}, false},
		{"fd-extra-column", []string{"a"}, &relation.FD{Domain: []string{"a"}, Range: []string{"b"}}, false},
		{"fd-missing-column", []string{"a", "b"}, &relation.FD{Domain: []string{"a"}, Range: nil}, false},
		{"duplicate-columns", []string{"a", "a"}, &relation.FD{Domain: []string{"a"}, Range: []string{"a"}}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tr, err := ReadTrace(bytes.NewReader(craftRelTrace(c.cols, c.fd)))
			if c.ok {
				if err != nil {
					t.Fatalf("valid crafted trace rejected: %v", err)
				}
				if _, found := tr.Initial.Get("r"); !found {
					t.Fatal("decoded trace lost the relation location")
				}
				return
			}
			if err == nil {
				t.Fatal("invalid relation schema accepted")
			}
			var terr *TraceError
			if !errors.As(err, &terr) {
				t.Fatalf("want *TraceError, got %T: %v", err, err)
			}
			if terr.Reason != TraceBadRecord {
				t.Errorf("reason = %s, want %s (err: %v)", terr.Reason, TraceBadRecord, err)
			}
		})
	}
}

// failWriter rejects every write, simulating a full disk.
type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

// TestFailedDumpNotCounted pins Stats.Dumps to artifacts actually
// produced: a failed WriteTo must not bump the counter.
func TestFailedDumpNotCounted(t *testing.T) {
	initial := testState()
	r := New(testMeta(4), initial, Options{})
	recordRun(t, r, initial, testTasks(4), false)
	if _, err := r.WriteTo(failWriter{}); err == nil {
		t.Fatal("write to failing writer succeeded")
	}
	if got := r.Stats().Dumps; got != 0 {
		t.Fatalf("Dumps = %d after failed dump, want 0", got)
	}
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().Dumps; got != 1 {
		t.Fatalf("Dumps = %d after one successful dump, want 1", got)
	}
}

func TestCorruptTraceRejection(t *testing.T) {
	base := validTrace(t)
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		reason TraceReason
	}{
		{"empty", func(b []byte) []byte { return nil }, TraceBadMagic},
		{"bad-magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, TraceBadMagic},
		{"future-format", func(b []byte) []byte { b[8] = traceFormat + 1; return b }, TraceBadFormat},
		{"flipped-header-byte", func(b []byte) []byte { b[16] ^= 0x01; return b }, TraceBadChecksum},
		{"flipped-tail-byte", func(b []byte) []byte { b[len(b)-6] ^= 0x01; return b }, TraceBadChecksum},
		{"truncated-mid-file", func(b []byte) []byte { return b[:len(b)*2/3] }, TraceTruncated},
		{"footer-stripped", func(b []byte) []byte { return b[:len(b)-8] }, TraceTruncated},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			mutated := c.mutate(append([]byte(nil), base...))
			_, err := ReadTrace(bytes.NewReader(mutated))
			if err == nil {
				t.Fatal("corrupt trace accepted")
			}
			var terr *TraceError
			if !errors.As(err, &terr) {
				t.Fatalf("want *TraceError, got %T: %v", err, err)
			}
			if terr.Reason != c.reason {
				t.Errorf("reason = %s, want %s (err: %v)", terr.Reason, c.reason, err)
			}
		})
	}
}

func TestWriteFileAtomicDump(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.bin")
	initial := testState()
	tasks := testTasks(10)
	r := New(testMeta(len(tasks)), initial, Options{})
	recordRun(t, r, initial, tasks, false)
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := ReadTrace(f)
	if err != nil {
		t.Fatalf("ReadTrace on WriteFile artifact: %v", err)
	}
	if len(tr.Txns) != len(tasks) {
		t.Errorf("file dump retained %d txns, want %d", len(tr.Txns), len(tasks))
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("dump left %d directory entries, want 1", len(entries))
	}
}

func TestRecorderClosedDropsLateCommits(t *testing.T) {
	initial := testState()
	r := New(testMeta(0), initial, Options{})
	r.Close(initial)
	r.ObserveCommitted(0, 1, oplog.Log{&oplog.Event{Op: adt.NumAddOp{L: "counter", Delta: 1}}})
	if st := r.Stats(); st.Commits != 0 {
		t.Errorf("closed recorder accepted a commit: %+v", st)
	}
}
