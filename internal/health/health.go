// Package health closes the feedback loop the paper's §5.3 projection
// leaves open: sequence-based detection is only profitable while the
// trained commutativity cache keeps answering. Under a miss storm (inputs
// the training runs never covered, a rejected spec artifact, injected
// faults) every query burns a fallback write-set check ON TOP of the
// sequence machinery, and under pathological contention the run churns
// through abort/retry cycles regardless of which detector it asks. The
// Governor watches run-scope rates over sliding windows and degrades the
// runtime gracefully instead of letting it silently thrash — the same
// adaptive-mode idea feedback-directed STM contention managers use
// (cf. Herlihy et al.'s polite/karma managers), applied to detector
// selection.
//
// The state machine has three states with hysteresis:
//
//	healthy  — every detection goes through the primary (sequence)
//	           detector. Window rates above the demotion thresholds
//	           (cache miss+fallback ratio, aborts per detection) demote.
//	degraded — detections are answered by the cheap write-set fallback;
//	           the sequence machinery is bypassed entirely. Periodic
//	           promotion probes route a single detection through the
//	           primary to sample whether the cache is answering again;
//	           enough consecutive clean probes restore healthy. Windows
//	           whose abort rate stays above the trip threshold trip.
//	tripped  — the runtime executes transactions serially (irrevocable,
//	           no validation) via stm's escalation path; after a budget
//	           of serial commits the governor drops back to degraded and
//	           probing resumes.
//
// Demotion thresholds are deliberately higher than restoration ones
// (demote at ≥ DemoteMissRate, restore only when probes observe
// ≤ RestoreMissRate < DemoteMissRate), so the governor cannot oscillate
// on a rate hovering at one boundary.
//
// Both detectors the governor multiplexes are sound, and the serial path
// is trivially serializable, so every transition preserves the Theorem
// 4.1 guarantees: the governor trades throughput for robustness, never
// correctness — the chaos soak tests assert exactly that.
package health

import (
	"expvar"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/conflict"
	"repro/internal/obs"
	"repro/internal/oplog"
	"repro/internal/state"
)

// State is the governor's operating mode.
type State int32

// Governor states, in degradation order.
const (
	// Healthy routes every detection through the primary detector.
	Healthy State = iota
	// Degraded routes detections through the write-set fallback, with
	// periodic promotion probes of the primary.
	Degraded
	// Tripped forces serial (irrevocable) execution; no validation runs
	// at all until the serial-commit budget drains.
	Tripped
)

// String renders the state as it appears in stats and reports.
func (s State) String() string {
	switch s {
	case Degraded:
		return "degraded"
	case Tripped:
		return "tripped"
	default:
		return "healthy"
	}
}

// Config tunes the governor. The zero value selects the defaults noted
// per field; every threshold is a rate in [0, 1].
type Config struct {
	// Window is the number of detections per evaluation window
	// (default 32). Rates are computed when a window fills.
	Window int
	// DemoteMissRate demotes healthy→degraded when a window's cache
	// fallback ratio (fallbacks / pair queries) reaches it (default 0.5).
	DemoteMissRate float64
	// DemoteAbortRate demotes healthy→degraded when a window's abort
	// ratio (conflicts / detections) reaches it (default 0.75).
	DemoteAbortRate float64
	// TripAbortRate counts a degraded window as bad when its abort ratio
	// reaches it (default 0.9); TripWindows consecutive bad windows trip
	// degraded→tripped (default 2).
	TripAbortRate float64
	TripWindows   int
	// ProbeEvery is the number of degraded-mode detections between
	// promotion probes (default 16).
	ProbeEvery int
	// RestoreMissRate is the probe fallback-ratio ceiling for a probe to
	// count as clean (default 0.25; must stay below DemoteMissRate for
	// hysteresis). RestoreProbes consecutive clean probes restore
	// degraded→healthy (default 2).
	RestoreMissRate float64
	RestoreProbes   int
	// RecoverCommits is the serial-commit budget of the tripped state:
	// after this many commits the governor drops back to degraded and
	// probing resumes (default 32).
	RecoverCommits int
	// Tracer receives governor.demote / governor.probe /
	// governor.restore events when non-nil.
	Tracer obs.Tracer
	// OnTransition runs on every state change with the old state, the
	// new state, and the same detail string the governor event carries —
	// the incident hook the flight recorder (internal/rec) uses to dump a
	// trace on demotion or trip. It is called with the governor's
	// transition lock held: implementations must return promptly and must
	// not call back into the governor.
	OnTransition func(from, to State, detail string)
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.DemoteMissRate <= 0 {
		c.DemoteMissRate = 0.5
	}
	if c.DemoteAbortRate <= 0 {
		c.DemoteAbortRate = 0.75
	}
	if c.TripAbortRate <= 0 {
		c.TripAbortRate = 0.9
	}
	if c.TripWindows <= 0 {
		c.TripWindows = 2
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 16
	}
	if c.RestoreMissRate <= 0 {
		c.RestoreMissRate = 0.25
	}
	if c.RestoreMissRate >= c.DemoteMissRate {
		// Enforce the documented hysteresis invariant: a probe must be
		// judged by a stricter ceiling than the rate that demoted, or the
		// governor oscillates between healthy and degraded.
		c.RestoreMissRate = c.DemoteMissRate / 2
	}
	if c.RestoreProbes <= 0 {
		c.RestoreProbes = 2
	}
	if c.RecoverCommits <= 0 {
		c.RecoverCommits = 32
	}
	return c
}

// Stats is a snapshot of the governor's counters and last-window rates.
type Stats struct {
	// State is the current operating mode.
	State string `json:"state"`
	// Demotions counts healthy→degraded transitions, Trips
	// degraded→tripped, Probes promotion probes attempted, Restores
	// promotions (tripped→degraded and degraded→healthy both count).
	Demotions int64 `json:"demotions"`
	Trips     int64 `json:"trips"`
	Probes    int64 `json:"probes"`
	Restores  int64 `json:"restores"`
	// Windows counts completed evaluation windows; LastAbortRate and
	// LastMissRate are the most recent completed window's rates (miss
	// rate is NaN-free: -1 when the window made no pair queries).
	Windows       int64   `json:"windows"`
	LastAbortRate float64 `json:"last_abort_rate"`
	LastMissRate  float64 `json:"last_miss_rate"`
	// Detections counts every detection the governor answered;
	// FallbackDetections the subset answered by the write-set fallback.
	Detections         int64 `json:"detections"`
	FallbackDetections int64 `json:"fallback_detections"`
	// Protocol-side signals observed via the stm hook points.
	CommitWaits  int64 `json:"commit_waits"`
	CommitWaitNs int64 `json:"commit_wait_ns"`
	BackoffWaits int64 `json:"backoff_waits"`
	BackoffNs    int64 `json:"backoff_ns"`
	Escalations  int64 `json:"escalations"`
}

// Governor multiplexes a primary (sequence) detector and a write-set
// fallback behind the conflict.Detector interface, driving the
// healthy/degraded/tripped state machine from sliding-window rates. It
// also implements the stm runtime's Governor hook (SerialOnly plus the
// Observe* signal sinks), so one value closes the whole loop. All methods
// are safe for concurrent use.
type Governor struct {
	cfg      Config
	primary  conflict.Detector
	fallback conflict.Detector
	// seq is the primary when it is a sequence detector — the source of
	// the cache fallback-ratio signal; nil otherwise (miss-rate signals
	// then stay silent and only abort rates drive transitions).
	seq *conflict.Sequence

	state atomic.Int32

	detections   atomic.Int64
	fallbackDets atomic.Int64

	// Window accumulation. winDet triggers rollover when it reaches
	// cfg.Window; winAborts is swapped out at the boundary. Counts
	// straddling a rollover may land in either window — the rates steer
	// a controller, they are not ledgers.
	winDet    atomic.Int64
	winAborts atomic.Int64

	// mu serializes state transitions and window rollovers.
	mu           sync.Mutex
	winFallbacks int64 // primary fallback count at window start
	winQueries   int64 // primary pair-query count at window start
	badWindows   int   // consecutive degraded windows ≥ TripAbortRate
	cleanProbes  int   // consecutive clean promotion probes

	// probeGate admits one promotion probe at a time, so the primary's
	// stats delta across the probe is attributable to it (in degraded
	// mode nothing else touches the primary).
	probeGate  atomic.Int32
	sinceProbe atomic.Int64

	serialCommits atomic.Int64 // commits observed while tripped

	demotions atomic.Int64
	trips     atomic.Int64
	probes    atomic.Int64
	restores  atomic.Int64
	windows   atomic.Int64
	lastAbort atomic.Uint64 // float64 bits
	lastMiss  atomic.Uint64 // float64 bits

	commitWaits  atomic.Int64
	commitWaitNs atomic.Int64
	backoffWaits atomic.Int64
	backoffNs    atomic.Int64
	escalations  atomic.Int64
}

// NewGovernor builds a governor over the given primary detector and
// write-set fallback. fallback may be nil, in which case a fresh
// conflict.WriteSet is used.
func NewGovernor(primary conflict.Detector, fallback conflict.Detector, cfg Config) *Governor {
	if fallback == nil {
		fallback = conflict.NewWriteSet()
	}
	g := &Governor{cfg: cfg.withDefaults(), primary: primary, fallback: fallback}
	g.seq, _ = primary.(*conflict.Sequence)
	g.lastMiss.Store(math.Float64bits(-1))
	return g
}

// State returns the current operating mode.
func (g *Governor) State() State { return State(g.state.Load()) }

// Primary returns the wrapped primary detector (stats reporting).
func (g *Governor) Primary() conflict.Detector { return g.primary }

// Fallback returns the wrapped fallback detector.
func (g *Governor) Fallback() conflict.Detector { return g.fallback }

// Name implements conflict.Detector.
func (g *Governor) Name() string { return "governed-" + g.primary.Name() }

// Detect implements conflict.Detector.
func (g *Governor) Detect(snapshot *state.State, txn oplog.Log, committed []oplog.Log) bool {
	return g.DetectV(obs.Ctx{}, snapshot, txn, committed).Conflict
}

// DetectV implements conflict.Detector: healthy detections go to the
// primary, degraded ones to the fallback (except promotion probes), and
// the verdict feeds the window accounting that drives transitions.
// Tripped transactions run serially and never validate, so a detection
// arriving while tripped (a straggler that raced the trip) is answered
// by the fallback.
func (g *Governor) DetectV(ctx obs.Ctx, snapshot *state.State, txn oplog.Log, committed []oplog.Log) conflict.Verdict {
	return g.govern(func(d conflict.Detector) conflict.Verdict {
		return d.DetectV(ctx, snapshot, txn, committed)
	})
}

// DetectPrepared implements conflict.Detector over commit-time prepared
// projections; the routing and window accounting are identical to
// DetectV's.
func (g *Governor) DetectPrepared(ctx obs.Ctx, snapshot *state.State, txn *conflict.Prepared, committed []*conflict.Prepared) conflict.Verdict {
	return g.govern(func(d conflict.Detector) conflict.Verdict {
		return d.DetectPrepared(ctx, snapshot, txn, committed)
	})
}

// govern runs one detection through the state machine: route is invoked
// with whichever detector the current state selects, and the verdict
// feeds the window accounting that drives transitions.
func (g *Governor) govern(route func(conflict.Detector) conflict.Verdict) conflict.Verdict {
	g.detections.Add(1)
	var v conflict.Verdict
	switch g.State() {
	case Healthy:
		v = route(g.primary)
	case Degraded:
		if g.sinceProbe.Add(1)%int64(g.cfg.ProbeEvery) == 0 {
			v = g.probe(route)
		} else {
			g.fallbackDets.Add(1)
			v = route(g.fallback)
		}
	default: // Tripped
		g.fallbackDets.Add(1)
		v = route(g.fallback)
	}
	if v.Conflict {
		g.winAborts.Add(1)
	}
	if g.winDet.Add(1)%int64(g.cfg.Window) == 0 {
		g.rollWindow()
	}
	return v
}

// probe routes one degraded detection through the primary and classifies
// the outcome by the primary's fallback-ratio delta across the call. The
// gate guarantees at most one probe is in flight, so the delta is
// attributable; detections that lose the gate race fall back normally.
func (g *Governor) probe(route func(conflict.Detector) conflict.Verdict) conflict.Verdict {
	if !g.probeGate.CompareAndSwap(0, 1) {
		g.fallbackDets.Add(1)
		return route(g.fallback)
	}
	defer g.probeGate.Store(0)
	var before conflict.Stats
	if g.seq != nil {
		before = g.seq.Stats()
	}
	v := route(g.primary)
	g.probes.Add(1)
	verdict, informative := true, false
	if g.seq != nil {
		after := g.seq.Stats()
		dq := after.PairQueries - before.PairQueries
		df := after.Fallbacks - before.Fallbacks
		if dq > 0 {
			informative = true
			verdict = float64(df)/float64(dq) <= g.cfg.RestoreMissRate
		}
	}
	// A probe whose detection made no pair queries (empty history,
	// disjoint footprints) learned nothing about the cache; it neither
	// extends nor resets the clean streak.
	if informative {
		g.mu.Lock()
		if g.State() == Degraded {
			if verdict {
				g.cleanProbes++
				if g.cleanProbes >= g.cfg.RestoreProbes {
					g.transitionLocked(Healthy, fmt.Sprintf("degraded→healthy after %d clean probes", g.cleanProbes))
				}
			} else {
				g.cleanProbes = 0
			}
		}
		g.mu.Unlock()
	}
	g.event(obs.EvGovProbe, probeDetail(informative, verdict))
	return v
}

func probeDetail(informative, clean bool) string {
	switch {
	case !informative:
		return "uninformative"
	case clean:
		return "clean"
	default:
		return "dirty"
	}
}

// rollWindow closes one evaluation window: compute its rates, record
// them, and apply the demotion/trip rules for the current state.
func (g *Governor) rollWindow() {
	g.mu.Lock()
	defer g.mu.Unlock()
	aborts := g.winAborts.Swap(0)
	abortRate := float64(aborts) / float64(g.cfg.Window)
	missRate := -1.0
	if g.seq != nil {
		s := g.seq.Stats()
		dq := s.PairQueries - g.winQueries
		df := s.Fallbacks - g.winFallbacks
		g.winQueries, g.winFallbacks = s.PairQueries, s.Fallbacks
		if dq > 0 {
			missRate = float64(df) / float64(dq)
		}
	}
	g.windows.Add(1)
	g.lastAbort.Store(math.Float64bits(abortRate))
	g.lastMiss.Store(math.Float64bits(missRate))
	switch g.State() {
	case Healthy:
		if missRate >= g.cfg.DemoteMissRate || abortRate >= g.cfg.DemoteAbortRate {
			g.transitionLocked(Degraded, fmt.Sprintf("healthy→degraded miss=%.2f abort=%.2f", missRate, abortRate))
		}
	case Degraded:
		if abortRate >= g.cfg.TripAbortRate {
			g.badWindows++
			if g.badWindows >= g.cfg.TripWindows {
				g.transitionLocked(Tripped, fmt.Sprintf("degraded→tripped abort=%.2f over %d windows", abortRate, g.badWindows))
			}
		} else {
			g.badWindows = 0
		}
	}
}

// transitionLocked performs a state change (g.mu held), resetting the
// per-state bookkeeping and emitting the matching governor event.
func (g *Governor) transitionLocked(to State, detail string) {
	from := g.State()
	if from == to {
		return
	}
	g.state.Store(int32(to))
	g.badWindows, g.cleanProbes = 0, 0
	g.serialCommits.Store(0)
	var ev obs.EventType
	switch {
	case to > from:
		ev = obs.EvGovDemote
		if to == Tripped {
			g.trips.Add(1)
		} else {
			g.demotions.Add(1)
		}
	default:
		ev = obs.EvGovRestore
		g.restores.Add(1)
	}
	g.event(ev, detail)
	if g.cfg.OnTransition != nil {
		g.cfg.OnTransition(from, to, detail)
	}
}

// event emits a governor event on lane -1 (untracked — transitions are
// run-scoped, not attributable to one worker).
func (g *Governor) event(t obs.EventType, detail string) {
	if g.cfg.Tracer == nil {
		return
	}
	g.cfg.Tracer.Emit(obs.Event{Type: t, When: g.cfg.Tracer.Now(), Worker: -1, Detail: detail})
}

// --- stm.Governor hook ---

// SerialOnly reports whether the run is tripped: the stm runtime then
// escalates every transaction to irrevocable serial execution.
func (g *Governor) SerialOnly() bool { return g.State() == Tripped }

// ObserveCommit records one committed transaction. Under the striped
// commit path footprint-disjoint transactions publish concurrently, so
// calls arrive from many workers at once with no external ordering; the
// atomic counter and the state re-check under g.mu keep the budget exact
// regardless. While tripped, it drains the serial-commit budget; once
// RecoverCommits commits land the governor drops back to degraded and
// probing resumes.
func (g *Governor) ObserveCommit() {
	if g.State() != Tripped {
		return
	}
	if g.serialCommits.Add(1) < int64(g.cfg.RecoverCommits) {
		return
	}
	g.mu.Lock()
	if g.State() == Tripped {
		g.transitionLocked(Degraded, fmt.Sprintf("tripped→degraded after %d serial commits", g.cfg.RecoverCommits))
	}
	g.mu.Unlock()
}

// ObserveCommitWait records time spent waiting for a commit turn or for
// history backpressure to clear.
func (g *Governor) ObserveCommitWait(d time.Duration) {
	g.commitWaits.Add(1)
	g.commitWaitNs.Add(int64(d))
}

// ObserveBackoff records one contention-management backoff sleep.
func (g *Governor) ObserveBackoff(d time.Duration) {
	g.backoffWaits.Add(1)
	g.backoffNs.Add(int64(d))
}

// ObserveEscalation records one serial escalation (SerializeAfter or
// SerialOnly).
func (g *Governor) ObserveEscalation() { g.escalations.Add(1) }

// Stats snapshots the governor.
func (g *Governor) Stats() Stats {
	return Stats{
		State:              g.State().String(),
		Demotions:          g.demotions.Load(),
		Trips:              g.trips.Load(),
		Probes:             g.probes.Load(),
		Restores:           g.restores.Load(),
		Windows:            g.windows.Load(),
		LastAbortRate:      math.Float64frombits(g.lastAbort.Load()),
		LastMissRate:       math.Float64frombits(g.lastMiss.Load()),
		Detections:         g.detections.Load(),
		FallbackDetections: g.fallbackDets.Load(),
		CommitWaits:        g.commitWaits.Load(),
		CommitWaitNs:       g.commitWaitNs.Load(),
		BackoffWaits:       g.backoffWaits.Load(),
		BackoffNs:          g.backoffNs.Load(),
		Escalations:        g.escalations.Load(),
	}
}

// Vars renders the snapshot as an expvar-friendly map.
func (g *Governor) Vars() map[string]any {
	s := g.Stats()
	return map[string]any{
		"state":               s.State,
		"demotions":           s.Demotions,
		"trips":               s.Trips,
		"probes":              s.Probes,
		"restores":            s.Restores,
		"windows":             s.Windows,
		"last_abort_rate":     s.LastAbortRate,
		"last_miss_rate":      s.LastMissRate,
		"detections":          s.Detections,
		"fallback_detections": s.FallbackDetections,
		"commit_waits":        s.CommitWaits,
		"commit_wait_ns":      s.CommitWaitNs,
		"backoff_waits":       s.BackoffWaits,
		"backoff_ns":          s.BackoffNs,
		"escalations":         s.Escalations,
	}
}

// published guards expvar registration the same way obs.Publish does:
// expvar panics on duplicate names, but successive runs legitimately
// re-publish; the snapshot source is swapped instead.
var published struct {
	sync.Mutex
	governors map[string]*Governor
}

// Publish exports the governor's health snapshot under the expvar name
// (default "janus.health"). Re-publishing under the same name atomically
// swaps the underlying governor. A name already registered with expvar by
// someone else is left alone — the governor is still recorded so a later
// swap works, but no second expvar.Publish runs; a long-lived process
// publishing many per-tenant governors must never be able to crash on
// expvar's duplicate-name panic.
func Publish(name string, g *Governor) {
	if name == "" {
		name = "janus.health"
	}
	published.Lock()
	defer published.Unlock()
	if published.governors == nil {
		published.governors = make(map[string]*Governor)
	}
	if _, ok := published.governors[name]; !ok {
		if expvar.Get(name) == nil {
			n := name
			expvar.Publish(n, expvar.Func(func() any {
				published.Lock()
				gov := published.governors[n]
				published.Unlock()
				if gov == nil {
					return nil
				}
				return gov.Vars()
			}))
		}
	}
	published.governors[name] = g
}
