package health

import (
	"expvar"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/cache"
	"repro/internal/commute"
	"repro/internal/conflict"
	"repro/internal/obs"
	"repro/internal/oplog"
	"repro/internal/seqabs"
	"repro/internal/state"
)

func baseState() *state.State {
	st := state.New()
	st.Set("work", state.Int(0))
	st.Set("max", state.Int(1))
	return st
}

// record executes ops on a clone of st and returns the log (mirrors the
// conflict package's test helper).
func record(t *testing.T, st *state.State, task int, ops ...oplog.Op) oplog.Log {
	t.Helper()
	work := st.Clone()
	var l oplog.Log
	for i, op := range ops {
		acc := op.Accesses(work)
		v, err := op.Apply(work)
		if err != nil {
			t.Fatalf("apply %v: %v", op, err)
		}
		l = append(l, &oplog.Event{Op: op, Task: task, Seq: i, Acc: acc, Observed: v})
	}
	return l
}

// idSyms is the abstract shape of an add/undo identity pair; a cache entry
// for (idSyms, idSyms) makes that detection a hit.
func idSyms(n string) []oplog.Sym {
	return []oplog.Sym{
		{Kind: adt.KindNumAdd, Arg: n}, {Kind: adt.KindNumAdd, Arg: "-" + n},
	}
}

// trainedCache answers the identity pair with "commutes as registers".
func trainedCache() *cache.Cache {
	c := cache.New(seqabs.Abstract)
	c.Put(idSyms("1"), idSyms("2"), commute.CondRegister)
	return c
}

// idPair returns (txn, committed) logs whose detection makes exactly one
// pair query on "work".
func idPair(t *testing.T, st *state.State) (oplog.Log, []oplog.Log) {
	t.Helper()
	id1 := record(t, st, 1, adt.NumAddOp{L: "work", Delta: 5}, adt.NumAddOp{L: "work", Delta: -5})
	id2 := record(t, st, 2, adt.NumAddOp{L: "work", Delta: 7}, adt.NumAddOp{L: "work", Delta: -7})
	return id1, []oplog.Log{id2}
}

// disjointPair returns logs over non-overlapping locations: detecting them
// makes zero pair queries, so a probe on them is uninformative.
func disjointPair(t *testing.T, st *state.State) (oplog.Log, []oplog.Log) {
	t.Helper()
	a := record(t, st, 1, adt.NumAddOp{L: "work", Delta: 1})
	b := record(t, st, 2, adt.NumAddOp{L: "max", Delta: 1})
	return a, []oplog.Log{b}
}

// recTracer records governor events.
type recTracer struct {
	mu     sync.Mutex
	events []obs.Event
	clock  atomic.Int64
}

func (r *recTracer) Emit(e obs.Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

func (r *recTracer) Now() int64 { return r.clock.Add(1) }

func (r *recTracer) count(t obs.EventType) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if e.Type == t {
			n++
		}
	}
	return n
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Healthy: "healthy", Degraded: "degraded", Tripped: "tripped"} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Window != 32 || c.DemoteMissRate != 0.5 || c.DemoteAbortRate != 0.75 ||
		c.TripAbortRate != 0.9 || c.TripWindows != 2 || c.ProbeEvery != 16 ||
		c.RestoreMissRate != 0.25 || c.RestoreProbes != 2 || c.RecoverCommits != 32 {
		t.Errorf("defaults = %+v", c)
	}
	if c.RestoreMissRate >= c.DemoteMissRate {
		t.Error("hysteresis violated: RestoreMissRate must stay below DemoteMissRate")
	}
}

// TestConfigHysteresisClamp: a config whose restore ceiling is at or above
// the demote threshold would oscillate; withDefaults must re-establish the
// documented RestoreMissRate < DemoteMissRate invariant.
func TestConfigHysteresisClamp(t *testing.T) {
	cases := []Config{
		{DemoteMissRate: 0.4, RestoreMissRate: 0.4}, // equal
		{DemoteMissRate: 0.3, RestoreMissRate: 0.9}, // inverted
		{DemoteMissRate: 0.2},                       // default restore (0.25) above demote
	}
	for _, in := range cases {
		c := in.withDefaults()
		if c.RestoreMissRate >= c.DemoteMissRate {
			t.Errorf("withDefaults(%+v): RestoreMissRate %v >= DemoteMissRate %v",
				in, c.RestoreMissRate, c.DemoteMissRate)
		}
	}
}

func TestNewGovernorNilFallback(t *testing.T) {
	g := NewGovernor(conflict.NewSequence(trainedCache(), nil), nil, Config{})
	if g.Fallback() == nil {
		t.Fatal("nil fallback was not replaced with a write-set detector")
	}
	if g.Name() != "governed-sequence" {
		t.Errorf("Name = %q", g.Name())
	}
	if g.State() != Healthy {
		t.Errorf("initial state = %v, want healthy", g.State())
	}
}

// TestDemoteOnMissRate: a window of pure cache misses (empty cache, every
// query burns a fallback) must demote healthy→degraded on the miss-rate
// threshold alone.
func TestDemoteOnMissRate(t *testing.T) {
	st := baseState()
	tr := &recTracer{}
	g := NewGovernor(conflict.NewSequence(cache.New(seqabs.Abstract), nil), nil, Config{
		Window: 4, DemoteAbortRate: 1.1, TripAbortRate: 1.1, Tracer: tr,
	})
	txn, committed := idPair(t, st)
	for i := 0; i < 4; i++ {
		g.DetectV(obs.Ctx{}, st, txn, committed)
	}
	if g.State() != Degraded {
		t.Fatalf("state = %v after a 100%% miss window, want degraded", g.State())
	}
	s := g.Stats()
	if s.Demotions != 1 || s.Windows != 1 {
		t.Errorf("stats = %+v, want 1 demotion over 1 window", s)
	}
	if s.LastMissRate != 1.0 {
		t.Errorf("LastMissRate = %v, want 1.0", s.LastMissRate)
	}
	if tr.count(obs.EvGovDemote) != 1 {
		t.Errorf("governor.demote events = %d, want 1", tr.count(obs.EvGovDemote))
	}
}

// TestDemoteOnAbortRate: with a non-sequence primary (no miss-rate signal
// at all) a window of conflicts must still demote on the abort ratio.
func TestDemoteOnAbortRate(t *testing.T) {
	st := baseState()
	g := NewGovernor(conflict.NewWriteSet(), nil, Config{Window: 4, TripAbortRate: 1.1})
	add1 := record(t, st, 1, adt.NumAddOp{L: "work", Delta: 1})
	add2 := record(t, st, 2, adt.NumAddOp{L: "work", Delta: 1})
	for i := 0; i < 4; i++ {
		if v := g.DetectV(obs.Ctx{}, st, add1, []oplog.Log{add2}); !v.Conflict {
			t.Fatal("write-write overlap must conflict")
		}
	}
	if g.State() != Degraded {
		t.Fatalf("state = %v after a 100%% abort window, want degraded", g.State())
	}
	if s := g.Stats(); s.LastAbortRate != 1.0 || s.LastMissRate != -1 {
		t.Errorf("stats = %+v, want abort rate 1.0 and silent (-1) miss rate", s)
	}
}

// TestTripAndRecover walks the full degradation ladder: abort churn
// demotes, TripWindows consecutive bad degraded windows trip, SerialOnly
// turns on, and draining the RecoverCommits budget drops back to degraded.
func TestTripAndRecover(t *testing.T) {
	st := baseState()
	tr := &recTracer{}
	g := NewGovernor(conflict.NewWriteSet(), nil, Config{
		Window: 4, TripWindows: 2, ProbeEvery: 1000, RecoverCommits: 3, Tracer: tr,
	})
	add1 := record(t, st, 1, adt.NumAddOp{L: "work", Delta: 1})
	add2 := record(t, st, 2, adt.NumAddOp{L: "work", Delta: 1})
	conflicting := func(n int) {
		for i := 0; i < n; i++ {
			g.DetectV(obs.Ctx{}, st, add1, []oplog.Log{add2})
		}
	}
	conflicting(4) // window 1: demote
	if g.State() != Degraded {
		t.Fatalf("state = %v after window 1, want degraded", g.State())
	}
	conflicting(4) // window 2: bad window 1 of 2
	if g.State() != Degraded {
		t.Fatalf("state = %v after one bad window, want still degraded (TripWindows=2)", g.State())
	}
	conflicting(4) // window 3: bad window 2 of 2 → trip
	if g.State() != Tripped {
		t.Fatalf("state = %v after two bad windows, want tripped", g.State())
	}
	if !g.SerialOnly() {
		t.Fatal("SerialOnly() = false while tripped")
	}
	for i := 0; i < 3; i++ {
		g.ObserveCommit()
	}
	if g.State() != Degraded {
		t.Fatalf("state = %v after draining the serial budget, want degraded", g.State())
	}
	if g.SerialOnly() {
		t.Fatal("SerialOnly() = true after recovery")
	}
	s := g.Stats()
	if s.Demotions != 1 || s.Trips != 1 || s.Restores != 1 {
		t.Errorf("stats = %+v, want 1 demotion, 1 trip, 1 restore", s)
	}
	if tr.count(obs.EvGovDemote) != 2 { // healthy→degraded and degraded→tripped
		t.Errorf("governor.demote events = %d, want 2", tr.count(obs.EvGovDemote))
	}
	if tr.count(obs.EvGovRestore) != 1 {
		t.Errorf("governor.restore events = %d, want 1", tr.count(obs.EvGovRestore))
	}
}

// TestProbeRestores: once demoted by a (switchable) miss storm, promotion
// probes that observe the cache answering again must restore healthy after
// RestoreProbes consecutive clean probes.
func TestProbeRestores(t *testing.T) {
	st := baseState()
	tr := &recTracer{}
	var storm atomic.Bool
	storm.Store(true)
	primary := conflict.NewSequence(trainedCache(), nil)
	primary.ForceMiss = func(task, attempt int) bool { return storm.Load() }
	g := NewGovernor(primary, nil, Config{
		Window: 2, DemoteAbortRate: 1.1, TripAbortRate: 1.1,
		ProbeEvery: 2, RestoreProbes: 2, Tracer: tr,
	})
	txn, committed := idPair(t, st)
	g.DetectV(obs.Ctx{}, st, txn, committed)
	g.DetectV(obs.Ctx{}, st, txn, committed)
	if g.State() != Degraded {
		t.Fatalf("state = %v after the storm window, want degraded", g.State())
	}
	storm.Store(false) // cache answers again; probes should notice
	for i := 0; i < 8 && g.State() != Healthy; i++ {
		g.DetectV(obs.Ctx{}, st, txn, committed)
	}
	if g.State() != Healthy {
		t.Fatalf("state = %v after clean probes, want healthy", g.State())
	}
	s := g.Stats()
	if s.Probes < 2 {
		t.Errorf("Probes = %d, want ≥ 2", s.Probes)
	}
	if s.Restores != 1 {
		t.Errorf("Restores = %d, want 1", s.Restores)
	}
	if s.FallbackDetections == 0 {
		t.Error("no detections were answered by the fallback while degraded")
	}
	if tr.count(obs.EvGovProbe) != int(s.Probes) {
		t.Errorf("governor.probe events = %d, want %d", tr.count(obs.EvGovProbe), s.Probes)
	}
	if tr.count(obs.EvGovRestore) != 1 {
		t.Errorf("governor.restore events = %d, want 1", tr.count(obs.EvGovRestore))
	}
}

// TestProbeUninformativeKeepsStreak: a probe whose detection makes no pair
// queries learns nothing about the cache and must neither extend nor reset
// the clean-probe streak: clean, uninformative, clean still restores with
// RestoreProbes=2.
func TestProbeUninformativeKeepsStreak(t *testing.T) {
	st := baseState()
	var storm atomic.Bool
	storm.Store(true)
	primary := conflict.NewSequence(trainedCache(), nil)
	primary.ForceMiss = func(task, attempt int) bool { return storm.Load() }
	g := NewGovernor(primary, nil, Config{
		Window: 2, DemoteAbortRate: 1.1, TripAbortRate: 1.1,
		ProbeEvery: 1, RestoreProbes: 2,
	})
	txn, committed := idPair(t, st)
	noTxn, noCommitted := disjointPair(t, st)
	g.DetectV(obs.Ctx{}, st, txn, committed)
	g.DetectV(obs.Ctx{}, st, txn, committed)
	if g.State() != Degraded {
		t.Fatalf("state = %v after the storm window, want degraded", g.State())
	}
	storm.Store(false)
	g.DetectV(obs.Ctx{}, st, txn, committed) // probe: clean (streak 1)
	g.DetectV(obs.Ctx{}, st, noTxn, noCommitted)
	if g.State() != Degraded {
		t.Fatal("an uninformative probe must not restore on its own")
	}
	g.DetectV(obs.Ctx{}, st, txn, committed) // probe: clean (streak 2) → restore
	if g.State() != Healthy {
		t.Fatalf("state = %v, want healthy: the uninformative probe reset the clean streak", g.State())
	}
}

// TestObserveSignals: the protocol-side sinks must accumulate counts and
// total durations.
func TestObserveSignals(t *testing.T) {
	g := NewGovernor(conflict.NewWriteSet(), nil, Config{})
	g.ObserveCommitWait(3 * time.Millisecond)
	g.ObserveCommitWait(2 * time.Millisecond)
	g.ObserveBackoff(time.Millisecond)
	g.ObserveEscalation()
	s := g.Stats()
	if s.CommitWaits != 2 || s.CommitWaitNs != int64(5*time.Millisecond) {
		t.Errorf("commit waits = %d/%dns, want 2/%dns", s.CommitWaits, s.CommitWaitNs, 5*time.Millisecond)
	}
	if s.BackoffWaits != 1 || s.BackoffNs != int64(time.Millisecond) {
		t.Errorf("backoff = %d/%dns", s.BackoffWaits, s.BackoffNs)
	}
	if s.Escalations != 1 {
		t.Errorf("Escalations = %d, want 1", s.Escalations)
	}
	// A commit observed while not tripped must not transition anything.
	g.ObserveCommit()
	if g.State() != Healthy {
		t.Errorf("state = %v after healthy commit, want healthy", g.State())
	}
}

// TestVarsAndPublish: Vars mirrors Stats, and re-publishing under the same
// expvar name swaps the snapshot source instead of panicking.
func TestVarsAndPublish(t *testing.T) {
	g1 := NewGovernor(conflict.NewWriteSet(), nil, Config{})
	vars := g1.Vars()
	if vars["state"] != "healthy" {
		t.Errorf(`Vars()["state"] = %v, want "healthy"`, vars["state"])
	}
	for _, k := range []string{"demotions", "trips", "probes", "restores", "windows",
		"detections", "fallback_detections", "commit_waits", "backoff_waits", "escalations"} {
		if _, ok := vars[k]; !ok {
			t.Errorf("Vars() missing %q", k)
		}
	}

	const name = "janus.health.test"
	Publish(name, g1)
	g2 := NewGovernor(conflict.NewWriteSet(), nil, Config{})
	g2.state.Store(int32(Tripped)) // white-box: make g2 distinguishable
	Publish(name, g2)              // must swap, not panic
	v := expvar.Get(name)
	if v == nil {
		t.Fatalf("expvar %q not published", name)
	}
	if !strings.Contains(v.String(), "tripped") {
		t.Errorf("expvar after swap = %s, want g2's tripped state", v.String())
	}
}

// TestPublishForeignExpvarName: a name someone else already registered
// with expvar directly (another package, a test, a user's own expvar.Func)
// must not crash the process — expvar.Publish panics on duplicates, and a
// daemon registering per-tenant governors cannot afford that. Publish must
// detect the foreign registration, skip the second expvar.Publish, and
// still record the governor for swap semantics.
func TestPublishForeignExpvarName(t *testing.T) {
	const name = "janus.health.foreign"
	expvar.Publish(name, expvar.Func(func() any { return "foreign" }))
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Publish panicked on foreign expvar name: %v", r)
		}
	}()
	g := NewGovernor(conflict.NewWriteSet(), nil, Config{})
	Publish(name, g)
	Publish(name, g) // second call exercises the recorded-name path too
	// The foreign registration wins the expvar slot; Publish must not
	// have replaced or broken it.
	if v := expvar.Get(name); v == nil || !strings.Contains(v.String(), "foreign") {
		t.Errorf("expvar %q = %v, want the original foreign registration", name, v)
	}
}

// TestProbeGateSerializesProbes: concurrent degraded detections must never
// let two probes race the primary's stats window (the gate makes losers
// fall back); under -race this also proves the probe path is data-race
// free.
func TestProbeGateSerializesProbes(t *testing.T) {
	st := baseState()
	primary := conflict.NewSequence(trainedCache(), nil)
	g := NewGovernor(primary, nil, Config{
		Window: 1 << 20, ProbeEvery: 1, RestoreProbes: 1 << 20, TripAbortRate: 1.1,
	})
	g.state.Store(int32(Degraded)) // white-box: start degraded
	txn, committed := idPair(t, st)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				g.DetectV(obs.Ctx{}, st, txn, committed)
			}
		}()
	}
	wg.Wait()
	s := g.Stats()
	if s.Detections != 800 {
		t.Errorf("Detections = %d, want 800", s.Detections)
	}
	if s.Probes == 0 {
		t.Error("no probes ran")
	}
	if s.Probes+s.FallbackDetections != s.Detections {
		t.Errorf("probes (%d) + fallbacks (%d) != detections (%d)",
			s.Probes, s.FallbackDetections, s.Detections)
	}
}

// TestOnTransitionHook pins the flight-recorder hook contract: every
// state change invokes OnTransition exactly once with the correct
// from/to pair and a non-empty detail, demotions and restores alike.
func TestOnTransitionHook(t *testing.T) {
	st := baseState()
	type hop struct {
		from, to State
		detail   string
	}
	var hops []hop
	g := NewGovernor(conflict.NewWriteSet(), nil, Config{
		Window: 4, TripWindows: 2, ProbeEvery: 1000, RecoverCommits: 3,
		OnTransition: func(from, to State, detail string) {
			hops = append(hops, hop{from, to, detail})
		},
	})
	add1 := record(t, st, 1, adt.NumAddOp{L: "work", Delta: 1})
	add2 := record(t, st, 2, adt.NumAddOp{L: "work", Delta: 1})
	conflicting := func(n int) {
		for i := 0; i < n; i++ {
			g.DetectV(obs.Ctx{}, st, add1, []oplog.Log{add2})
		}
	}
	conflicting(12) // demote, then (two bad windows later) trip
	for i := 0; i < 3; i++ {
		g.ObserveCommit() // drain the serial budget: tripped → degraded
	}
	want := []hop{
		{Healthy, Degraded, ""},
		{Degraded, Tripped, ""},
		{Tripped, Degraded, ""},
	}
	if len(hops) != len(want) {
		t.Fatalf("OnTransition fired %d times (%+v), want %d", len(hops), hops, len(want))
	}
	for i, h := range hops {
		if h.from != want[i].from || h.to != want[i].to {
			t.Errorf("transition %d: %v→%v, want %v→%v", i, h.from, h.to, want[i].from, want[i].to)
		}
		if h.detail == "" {
			t.Errorf("transition %d (%v→%v) carried no detail", i, h.from, h.to)
		}
	}
}
