// Package state models the shared memory JANUS synchronizes: a finite map
// from locations to values. Values are scalars (integers, strings,
// booleans) or relational ADT states (internal/relation). Transactions
// privatize the state at begin (CREATETRANSACTION copies Sh), mutate the
// private copy, and replay their logs onto the global state at commit.
package state

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relation"
)

// Loc identifies a shared location, e.g. "work" or "monitor.itemsWeight".
type Loc string

// Value is a shared-memory value. Implementations must support deep
// cloning (for privatization) and equality (for SAMEREAD/COMMUTE checks).
type Value interface {
	CloneValue() Value
	EqualValue(Value) bool
	fmt.Stringer
}

// Int is a 64-bit integer scalar.
type Int int64

// CloneValue implements Value.
func (v Int) CloneValue() Value { return v }

// EqualValue implements Value.
func (v Int) EqualValue(o Value) bool {
	ov, ok := o.(Int)
	return ok && ov == v
}

// String implements Value.
func (v Int) String() string { return fmt.Sprintf("%d", int64(v)) }

// Str is a string scalar.
type Str string

// CloneValue implements Value.
func (v Str) CloneValue() Value { return v }

// EqualValue implements Value.
func (v Str) EqualValue(o Value) bool {
	ov, ok := o.(Str)
	return ok && ov == v
}

// String implements Value.
func (v Str) String() string { return string(v) }

// Bool is a boolean scalar.
type Bool bool

// CloneValue implements Value.
func (v Bool) CloneValue() Value { return v }

// EqualValue implements Value.
func (v Bool) EqualValue(o Value) bool {
	ov, ok := o.(Bool)
	return ok && ov == v
}

// String implements Value.
func (v Bool) String() string { return fmt.Sprintf("%t", bool(v)) }

// Rel wraps a relational ADT state as a Value.
type Rel struct{ R *relation.Relation }

// CloneValue implements Value.
func (v Rel) CloneValue() Value { return Rel{R: v.R.Clone()} }

// EqualValue implements Value.
func (v Rel) EqualValue(o Value) bool {
	ov, ok := o.(Rel)
	return ok && v.R.Equal(ov.R)
}

// String implements Value.
func (v Rel) String() string { return v.R.String() }

// IntList is an ordered list of integers (the JFileSync monitor stacks).
type IntList []int64

// CloneValue implements Value.
func (v IntList) CloneValue() Value { return append(IntList(nil), v...) }

// EqualValue implements Value.
func (v IntList) EqualValue(o Value) bool {
	ov, ok := o.(IntList)
	if !ok || len(ov) != len(v) {
		return false
	}
	for i := range v {
		if v[i] != ov[i] {
			return false
		}
	}
	return true
}

// String implements Value.
func (v IntList) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// State is the shared store: a map from locations to values. A state may
// be backed by a fault handler (NewFaulting) that lazily materializes
// locations from an immutable snapshot source — the copy-on-access
// privatization mode built on the fully persistent store of
// internal/persist (the paper's §4.1 versioning discussion).
type State struct {
	m     map[Loc]Value
	fault func(Loc) (Value, bool)
}

// New returns an empty state.
func New() *State { return &State{m: make(map[Loc]Value)} }

// NewSized returns an empty state presized for n locations, for callers
// that materialize a known location set (avoids rehash churn on bulk
// builds like copy-mode privatization).
func NewSized(n int) *State { return &State{m: make(map[Loc]Value, n)} }

// NewFaulting returns a state that materializes unbound locations on
// demand from fault, cloning the faulted value so later mutations never
// reach the source. fault must return immutable snapshot values.
func NewFaulting(fault func(Loc) (Value, bool)) *State {
	return &State{m: make(map[Loc]Value), fault: fault}
}

// Get returns the value at loc and whether it is bound.
func (s *State) Get(loc Loc) (Value, bool) {
	v, ok := s.m[loc]
	if !ok && s.fault != nil {
		if fv, found := s.fault(loc); found {
			v = fv.CloneValue()
			s.m[loc] = v
			return v, true
		}
	}
	return v, ok
}

// MustGet returns the value at loc, panicking if unbound — used on paths
// where the training/runtime invariant guarantees the binding.
func (s *State) MustGet(loc Loc) Value {
	v, ok := s.m[loc]
	if !ok {
		panic(fmt.Sprintf("state: unbound location %q", loc))
	}
	return v
}

// Set binds loc to v.
func (s *State) Set(loc Loc, v Value) { s.m[loc] = v }

// Delete unbinds loc.
func (s *State) Delete(loc Loc) { delete(s.m, loc) }

// Len returns the number of bound locations.
func (s *State) Len() int { return len(s.m) }

// Locs returns the bound locations in sorted order.
func (s *State) Locs() []Loc {
	out := make([]Loc, 0, len(s.m))
	for l := range s.m {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep copy (the privatization copy of CREATETRANSACTION).
// A faulting state's clone shares the (immutable) fault source.
func (s *State) Clone() *State {
	c := &State{m: make(map[Loc]Value, len(s.m)), fault: s.fault}
	for l, v := range s.m {
		c.m[l] = v.CloneValue()
	}
	return c
}

// Equal reports deep equality of the two states.
func (s *State) Equal(o *State) bool {
	if len(s.m) != len(o.m) {
		return false
	}
	for l, v := range s.m {
		ov, ok := o.m[l]
		if !ok || !v.EqualValue(ov) {
			return false
		}
	}
	return true
}

// String renders the state canonically for traces and golden tests.
func (s *State) String() string {
	locs := s.Locs()
	parts := make([]string, len(locs))
	for i, l := range locs {
		parts[i] = fmt.Sprintf("%s↦%s", l, s.m[l])
	}
	return "⟨" + strings.Join(parts, ", ") + "⟩"
}
