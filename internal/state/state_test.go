package state

import (
	"reflect"
	"testing"

	"repro/internal/relation"
)

func TestScalarValues(t *testing.T) {
	cases := []struct {
		v, same, diff Value
		str           string
	}{
		{Int(7), Int(7), Int(8), "7"},
		{Str("a"), Str("a"), Str("b"), "a"},
		{Bool(true), Bool(true), Bool(false), "true"},
	}
	for _, c := range cases {
		if !c.v.EqualValue(c.same) || c.v.EqualValue(c.diff) {
			t.Errorf("%v equality wrong", c.v)
		}
		if !c.v.EqualValue(c.v.CloneValue()) {
			t.Errorf("%v clone not equal", c.v)
		}
		if c.v.String() != c.str {
			t.Errorf("String = %q, want %q", c.v.String(), c.str)
		}
		// Cross-type comparisons are never equal.
		if c.v.EqualValue(IntList{1}) {
			t.Errorf("%v equal to IntList", c.v)
		}
	}
}

func TestIntList(t *testing.T) {
	l := IntList{1, 2, 3}
	c := l.CloneValue().(IntList)
	c[0] = 99
	if l[0] != 1 {
		t.Fatalf("clone must not alias")
	}
	if !l.EqualValue(IntList{1, 2, 3}) || l.EqualValue(IntList{1, 2}) || l.EqualValue(IntList{1, 2, 4}) {
		t.Errorf("equality wrong")
	}
	if l.String() != "[1 2 3]" {
		t.Errorf("String = %q", l.String())
	}
}

func TestRelValue(t *testing.T) {
	r := relation.New([]string{"k", "v"}, &relation.FD{Domain: []string{"k"}, Range: []string{"v"}})
	r.Insert(relation.Tuple{"k": "1", "v": "a"})
	rv := Rel{R: r}
	cl := rv.CloneValue().(Rel)
	cl.R.Insert(relation.Tuple{"k": "2", "v": "b"})
	if r.Len() != 1 {
		t.Fatalf("clone must be deep")
	}
	if !rv.EqualValue(Rel{R: r.Clone()}) {
		t.Errorf("equal clones must compare equal")
	}
	if rv.EqualValue(cl) {
		t.Errorf("different relations must not compare equal")
	}
}

func TestStateBasics(t *testing.T) {
	s := New()
	if s.Len() != 0 {
		t.Fatalf("new state not empty")
	}
	s.Set("work", Int(0))
	s.Set("name", Str("x"))
	if v, ok := s.Get("work"); !ok || !v.EqualValue(Int(0)) {
		t.Errorf("Get work = %v %v", v, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Errorf("missing location must be unbound")
	}
	if got := s.Locs(); !reflect.DeepEqual(got, []Loc{"name", "work"}) {
		t.Errorf("Locs = %v", got)
	}
	s.Delete("name")
	if s.Len() != 1 {
		t.Errorf("Len after delete = %d", s.Len())
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustGet on unbound loc must panic")
		}
	}()
	New().MustGet("nope")
}

func TestCloneAndEqual(t *testing.T) {
	s := New()
	s.Set("a", Int(1))
	s.Set("l", IntList{5})
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatalf("clone must be equal")
	}
	c.Set("a", Int(2))
	if s.Equal(c) {
		t.Fatalf("modified clone must differ")
	}
	if v, _ := s.Get("a"); !v.EqualValue(Int(1)) {
		t.Fatalf("original mutated through clone")
	}
	// Deep: mutate list inside clone.
	c2 := s.Clone()
	lst, _ := c2.Get("l")
	lst.(IntList)[0] = 42
	if orig, _ := s.Get("l"); orig.(IntList)[0] != 5 {
		t.Fatalf("list clone not deep")
	}
	// Different domains are unequal.
	d := New()
	d.Set("a", Int(1))
	if s.Equal(d) {
		t.Fatalf("states with different domains must differ")
	}
}

func TestStateString(t *testing.T) {
	s := New()
	s.Set("b", Int(2))
	s.Set("a", Int(1))
	if got := s.String(); got != "⟨a↦1, b↦2⟩" {
		t.Errorf("String = %q", got)
	}
}

func TestFaultingStateMaterializesOnGet(t *testing.T) {
	source := map[Loc]Value{"a": Int(5), "l": IntList{1, 2}}
	calls := 0
	st := NewFaulting(func(l Loc) (Value, bool) {
		calls++
		v, ok := source[l]
		return v, ok
	})
	if st.Len() != 0 {
		t.Fatalf("faulting state starts empty")
	}
	v, ok := st.Get("a")
	if !ok || !v.EqualValue(Int(5)) {
		t.Fatalf("Get a = %v %v", v, ok)
	}
	// Memoized: second Get must not fault again.
	if _, _ = st.Get("a"); calls != 1 {
		t.Fatalf("fault called %d times, want 1", calls)
	}
	if _, ok := st.Get("missing"); ok {
		t.Fatalf("missing loc must stay unbound")
	}
	// Mutations never reach the source (the fault clones).
	lv, _ := st.Get("l")
	lv.(IntList)[0] = 99
	if source["l"].(IntList)[0] != 1 {
		t.Fatalf("mutation leaked into the fault source")
	}
	// Set shadows the source.
	st.Set("a", Int(7))
	if v, _ := st.Get("a"); !v.EqualValue(Int(7)) {
		t.Fatalf("Set did not shadow: %v", v)
	}
}

func TestFaultingCloneSharesSource(t *testing.T) {
	st := NewFaulting(func(l Loc) (Value, bool) {
		if l == "x" {
			return Int(3), true
		}
		return nil, false
	})
	c := st.Clone()
	if v, ok := c.Get("x"); !ok || !v.EqualValue(Int(3)) {
		t.Fatalf("clone lost the fault source: %v %v", v, ok)
	}
}
