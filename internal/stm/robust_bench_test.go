package stm

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/adt"
)

// benchHighContention runs N tasks that all mutate the same counter under
// write-set detection at 8 workers — every pair conflicts, so speculation
// is nearly worthless and the retry loop is the whole story. It reports
// retries/txn and escalations/txn so the contention-management knobs'
// effect is visible in benchmark output.
func benchHighContention(b *testing.B, cfg Config) {
	const n = 64
	var tasks []adt.Task
	for i := 1; i <= n; i++ {
		w := int64(i)
		tasks = append(tasks, func(ex adt.Executor) error {
			c := adt.Counter{L: "work"}
			if err := c.Add(ex, w); err != nil {
				return err
			}
			// Yield between the ops so other workers' commits land inside
			// the transaction window even on a single-CPU host.
			for j := 0; j < 4; j++ {
				runtime.Gosched()
			}
			return c.Add(ex, 1)
		})
	}
	cfg.Threads = 8
	var retries, escalations int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats, err := Run(cfg, initialState(), tasks)
		if err != nil {
			b.Fatal(err)
		}
		retries += stats.Retries
		escalations += stats.Escalations
	}
	b.ReportMetric(float64(retries)/float64(b.N*n), "retries/txn")
	b.ReportMetric(float64(escalations)/float64(b.N*n), "escalations/txn")
}

func BenchmarkHighContentionBaseline(b *testing.B) {
	benchHighContention(b, Config{})
}

func BenchmarkHighContentionSerializeAfter(b *testing.B) {
	benchHighContention(b, Config{
		SerializeAfter: 4,
		Backoff:        Backoff{Base: 20 * time.Microsecond},
	})
}
