package stm

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/adt"
	"repro/internal/conflict"
	"repro/internal/obs"
	"repro/internal/oplog"
	"repro/internal/seqabs"
	"repro/internal/state"
	"repro/internal/train"
)

func initialState() *state.State {
	st := state.New()
	st.Set("work", state.Int(0))
	st.Set("log", state.IntList{})
	st.Set("canvas", adt.NewRelValue())
	return st
}

func addTask(n int64) adt.Task {
	return func(ex adt.Executor) error {
		return adt.Counter{L: "work"}.Add(ex, n)
	}
}

func identityTask(n int64) adt.Task {
	return func(ex adt.Executor) error {
		c := adt.Counter{L: "work"}
		if err := c.Add(ex, n); err != nil {
			return err
		}
		return c.Sub(ex, n)
	}
}

// appendTask pushes its id: non-commutative, order-observable.
func appendTask(id int64) adt.Task {
	return func(ex adt.Executor) error {
		return adt.Stack{L: "log"}.Push(ex, id)
	}
}

func TestRunSequentialBaseline(t *testing.T) {
	st := initialState()
	final, err := RunSequential(st, []adt.Task{addTask(2), addTask(3), addTask(5)})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := final.Get("work"); !v.EqualValue(state.Int(10)) {
		t.Fatalf("work = %v, want 10", v)
	}
	if v, _ := st.Get("work"); !v.EqualValue(state.Int(0)) {
		t.Fatalf("initial state mutated")
	}
}

func TestParallelMatchesSequentialCommutative(t *testing.T) {
	tasks := []adt.Task{addTask(1), addTask(2), addTask(3), addTask(4), addTask(5)}
	want, err := RunSequential(initialState(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{1, 2, 4, 8} {
		for _, priv := range []Privatize{PrivatizeCopy, PrivatizePersistent} {
			got, stats, err := Run(Config{Threads: threads, Privatize: priv}, initialState(), tasks)
			if err != nil {
				t.Fatalf("threads=%d priv=%v: %v", threads, priv, err)
			}
			if !got.Equal(want) {
				t.Fatalf("threads=%d priv=%v: state %s != sequential %s", threads, priv, got, want)
			}
			if stats.Commits != 5 {
				t.Fatalf("commits = %d, want 5", stats.Commits)
			}
		}
	}
}

func TestOrderedMatchesSequentialOrder(t *testing.T) {
	tasks := []adt.Task{appendTask(1), appendTask(2), appendTask(3), appendTask(4)}
	want, err := RunSequential(initialState(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	for _, priv := range []Privatize{PrivatizeCopy, PrivatizePersistent} {
		got, _, err := Run(Config{Threads: 4, Ordered: true, Privatize: priv}, initialState(), tasks)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("priv=%v: ordered run %s != sequential %s", priv, got, want)
		}
	}
}

func TestUnorderedIsSomeSerialOrder(t *testing.T) {
	tasks := []adt.Task{appendTask(1), appendTask(2), appendTask(3)}
	perms := [][]int64{
		{1, 2, 3}, {1, 3, 2}, {2, 1, 3}, {2, 3, 1}, {3, 1, 2}, {3, 2, 1},
	}
	for trial := 0; trial < 10; trial++ {
		got, _, err := Run(Config{Threads: 3}, initialState(), tasks)
		if err != nil {
			t.Fatal(err)
		}
		v, _ := got.Get("log")
		lst := v.(state.IntList)
		matched := false
		for _, p := range perms {
			if len(lst) == 3 && lst[0] == p[0] && lst[1] == p[1] && lst[2] == p[2] {
				matched = true
				break
			}
		}
		if !matched {
			t.Fatalf("final log %v is not a permutation-serial outcome", lst)
		}
	}
}

func TestSingleThreadNoRetries(t *testing.T) {
	tasks := []adt.Task{addTask(1), addTask(2), addTask(3)}
	_, stats, err := Run(Config{Threads: 1}, initialState(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retries != 0 {
		t.Fatalf("single-threaded run retried %d times", stats.Retries)
	}
	if stats.RetryRatio() != 0 {
		t.Fatalf("retry ratio = %v", stats.RetryRatio())
	}
}

func TestTaskErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	bad := func(adt.Executor) error { return boom }
	_, _, err := Run(Config{Threads: 2}, initialState(), []adt.Task{addTask(1), bad})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestOrderedErrorDoesNotDeadlock(t *testing.T) {
	boom := errors.New("boom")
	// Task 1 fails: tasks 2..4 wait for clock==tid and must be released.
	bad := func(adt.Executor) error { return boom }
	_, _, err := Run(Config{Threads: 4, Ordered: true}, initialState(),
		[]adt.Task{bad, addTask(1), addTask(2), addTask(3)})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestSequenceDetectorEnablesIdentityParallelism(t *testing.T) {
	var tasks []adt.Task
	for i := 1; i <= 12; i++ {
		tasks = append(tasks, identityTask(int64(i)))
	}
	c, _, err := train.Train(initialState(), tasks[:3], train.Options{Mode: seqabs.Abstract})
	if err != nil {
		t.Fatal(err)
	}
	det := conflict.NewSequence(c, nil)
	final, stats, err := Run(Config{Threads: 4, Detector: det}, initialState(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := final.Get("work"); !v.EqualValue(state.Int(0)) {
		t.Fatalf("work = %v, want 0", v)
	}
	if stats.Retries != 0 {
		t.Fatalf("identity tasks under sequence detection must not retry, got %d", stats.Retries)
	}
	if s := det.Stats(); s.Detections == 0 {
		t.Fatalf("detector never consulted")
	}
}

func TestWriteSetSerializesConflictingCommits(t *testing.T) {
	// Equal-writes canvas tasks: write-set detection flags them, sequence
	// detection (trained) does not.
	draw := func(color string) adt.Task {
		return func(ex adt.Executor) error {
			return adt.Canvas{L: "canvas"}.DrawPixel(ex, 0, 0, color)
		}
	}
	var tasks []adt.Task
	for i := 0; i < 8; i++ {
		tasks = append(tasks, draw("white"))
	}
	c, _, err := train.Train(initialState(), tasks[:2], train.Options{Mode: seqabs.Abstract})
	if err != nil {
		t.Fatal(err)
	}
	seqFinal, seqStats, err := Run(Config{Threads: 4, Detector: conflict.NewSequence(c, nil)}, initialState(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if seqStats.Retries != 0 {
		t.Fatalf("equal writes must not retry under sequence detection, got %d", seqStats.Retries)
	}
	wsFinal, _, err := Run(Config{Threads: 4, Detector: conflict.NewWriteSet()}, initialState(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if !seqFinal.Equal(wsFinal) {
		t.Fatalf("final states differ: %s vs %s", seqFinal, wsFinal)
	}
}

func TestMaxRetriesGuard(t *testing.T) {
	// A detector that always reports conflicts forces retries; with
	// a concurrent committer the victim aborts until the guard fires.
	always := &alwaysConflict{}
	_, _, err := Run(Config{Threads: 2, Detector: always, MaxRetries: 3}, initialState(),
		[]adt.Task{addTask(1), addTask(2)})
	if err == nil || !strings.Contains(err.Error(), "retries") {
		t.Fatalf("err = %v, want retry-guard failure", err)
	}
}

// alwaysConflict violates the validity requirement of Theorem 4.1 by
// conflicting unconditionally; the MaxRetries guard must catch the
// resulting livelock.
type alwaysConflict struct{}

func (a *alwaysConflict) Detect(_ *state.State, _ oplog.Log, _ []oplog.Log) bool {
	return true
}

func (a *alwaysConflict) DetectV(_ obs.Ctx, _ *state.State, _ oplog.Log, _ []oplog.Log) conflict.Verdict {
	return conflict.Verdict{Conflict: true, Reason: conflict.ReasonWriteSet}
}

func (a *alwaysConflict) DetectPrepared(_ obs.Ctx, _ *state.State, _ *conflict.Prepared, _ []*conflict.Prepared) conflict.Verdict {
	return conflict.Verdict{Conflict: true, Reason: conflict.ReasonWriteSet}
}

func (a *alwaysConflict) Name() string { return "always-conflict" }

func TestReclaimLogs(t *testing.T) {
	var tasks []adt.Task
	for i := 1; i <= 30; i++ {
		tasks = append(tasks, addTask(int64(i)))
	}
	_, noReclaim, err := Run(Config{Threads: 1}, initialState(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	_, reclaim, err := Run(Config{Threads: 1, ReclaimLogs: true}, initialState(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if noReclaim.MaxHist != 30 {
		t.Fatalf("without reclamation MaxHist = %d, want 30", noReclaim.MaxHist)
	}
	if reclaim.MaxHist >= noReclaim.MaxHist {
		t.Fatalf("reclamation did not bound history: %d vs %d", reclaim.MaxHist, noReclaim.MaxHist)
	}
	if reclaim.Reclaimed == 0 {
		t.Fatalf("nothing reclaimed")
	}
}

// TestReclaimReleasesLogReferences checks that reclamation actually frees
// memory: compacting with history[:0] keeps dropped entries alive in the
// backing array unless the tail is zeroed, so the dropped slots must hold
// no oplog.Log references after reclaimLocked runs.
func TestReclaimReleasesLogReferences(t *testing.T) {
	r := New(Config{ReclaimLogs: true}, initialState())
	for ct := int64(2); ct <= 6; ct++ {
		r.history = append(r.history, histEntry{
			commitTime: ct,
			task:       int(ct),
			prep:       conflict.Prepare(oplog.Log{&oplog.Event{Task: int(ct)}}),
		})
	}
	r.clock.Store(7)
	r.published.Store(7) // all six commits fully published
	r.begins[1] = 4      // active transaction began at 4: entries ≤ 4 reclaimable
	backing := r.history
	collected := make(chan struct{}, 1)
	runtime.SetFinalizer(backing[0].prep.Log()[0], func(*oplog.Event) { collected <- struct{}{} })

	r.histMu.Lock()
	r.reclaimLocked()
	r.histMu.Unlock()

	if len(r.history) != 2 {
		t.Fatalf("kept %d entries, want 2 (commit times 5, 6)", len(r.history))
	}
	if got := atomic.LoadInt64(&r.stats.Reclaimed); got != 3 {
		t.Fatalf("Reclaimed = %d, want 3", got)
	}
	for i := len(r.history); i < len(backing); i++ {
		if backing[i].prep != nil {
			t.Errorf("dropped slot %d still references its prepared log", i)
		}
	}
	// With the slot zeroed, the reclaimed entry's log is unreachable and
	// its events become collectable.
	for i := 0; i < 20; i++ {
		runtime.GC()
		select {
		case <-collected:
			return
		default:
		}
	}
	t.Fatalf("reclaimed log entry was never garbage-collected")
}

// TestDrainLockedCapsAtAppendedHistory reproduces the publish/drain race:
// commits ticket the clock before their publication turn comes up, and a
// publishing commit appends its entry before advancing the published
// watermark, so an ordered waiter can drain while the clock (3) is ahead
// of the watermark (2) and an appended entry (commit time 3) is not yet
// published. The drain must cap at the published watermark — advancing to
// the raw clock, or copying the appended-but-unpublished entry, would
// move the begin watermark past history it has not consistently fetched
// (fetches read (seen, now] only).
func TestDrainLockedCapsAtAppendedHistory(t *testing.T) {
	r := New(Config{Ordered: true, MaxHistory: 8}, initialState())
	r.history = append(r.history, histEntry{
		commitTime: 2, task: 1, prep: conflict.Prepare(oplog.Log{&oplog.Event{Task: 1}}),
	})
	// A second commit is mid-publication: its entry is appended but the
	// watermark has not advanced past it; a third holds ticket 3.
	r.history = append(r.history, histEntry{
		commitTime: 3, task: 2, prep: conflict.Prepare(oplog.Log{&oplog.Event{Task: 2}}),
	})
	r.clock.Store(3)
	r.published.Store(2)
	r.begins[7] = 1

	var ops []*conflict.Prepared
	r.histMu.Lock()
	seen := r.drainLocked(7, 1, &ops)
	again := r.drainLocked(7, seen, &ops)
	r.histMu.Unlock()

	if seen != 2 {
		t.Fatalf("watermark = %d, want 2 (published watermark, not clock 3)", seen)
	}
	if again != 2 {
		t.Fatalf("re-drain watermark = %d, want 2", again)
	}
	if len(ops) != 1 || ops[0].Log()[0].Task != 1 {
		t.Fatalf("drained ops = %+v, want exactly the published log", ops)
	}
	if r.begins[7] != 2 {
		t.Fatalf("begins[7] = %d, want 2", r.begins[7])
	}
}

// TestDrainLockedEmptyHistory: with the clock ahead of an entirely empty
// (or fully in-flight) history, a drain must be a no-op rather than
// advancing the waiter past entries it has not copied.
func TestDrainLockedEmptyHistory(t *testing.T) {
	r := New(Config{Ordered: true, MaxHistory: 8}, initialState())
	r.clock.Store(5)
	r.begins[3] = 1

	var ops []*conflict.Prepared
	r.histMu.Lock()
	seen := r.drainLocked(3, 1, &ops)
	r.histMu.Unlock()

	if seen != 1 || len(ops) != 0 || r.begins[3] != 1 {
		t.Fatalf("drain on empty history moved state: seen=%d ops=%d begins[3]=%d",
			seen, len(ops), r.begins[3])
	}
}

func TestPrivatizeString(t *testing.T) {
	if PrivatizeCopy.String() != "copy" || PrivatizePersistent.String() != "persistent" {
		t.Errorf("privatize strings wrong")
	}
}

func TestStatsRetryRatio(t *testing.T) {
	s := Stats{Tasks: 4, Retries: 6}
	if s.RetryRatio() != 1.5 {
		t.Errorf("RetryRatio = %v", s.RetryRatio())
	}
	if (Stats{}).RetryRatio() != 0 {
		t.Errorf("empty ratio must be 0")
	}
}

func TestManyTasksStress(t *testing.T) {
	var tasks []adt.Task
	var wantSum int64
	for i := 1; i <= 200; i++ {
		tasks = append(tasks, addTask(int64(i%7)))
		wantSum += int64(i % 7)
	}
	final, stats, err := Run(Config{Threads: 8}, initialState(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := final.Get("work"); !v.EqualValue(state.Int(wantSum)) {
		t.Fatalf("work = %v, want %d (commits=%d retries=%d)", v, wantSum, stats.Commits, stats.Retries)
	}
	if stats.Commits != 200 {
		t.Fatalf("commits = %d", stats.Commits)
	}
	_ = fmt.Sprintf("%v", stats)
}

// explodingOp succeeds against the private state but fails when replayed
// onto the global state (its Apply errors on the second application).
type explodingOp struct{ fired *int32 }

func (e explodingOp) Apply(st *state.State) (state.Value, error) {
	if atomic.AddInt32(e.fired, 1) > 1 {
		return nil, errors.New("replay exploded")
	}
	st.Set("boom", state.Int(1))
	return nil, nil
}

func (e explodingOp) Accesses(*state.State) []oplog.Access {
	return []oplog.Access{{P: "boom", Write: true}}
}
func (e explodingOp) Sym() oplog.Sym { return oplog.Sym{Kind: "num.store", Arg: "1"} }
func (e explodingOp) IsRead() bool   { return false }
func (e explodingOp) String() string { return "exploding" }

// TestReplayFailureSurfaces injects an op that fails during commit replay;
// the runtime must surface the error instead of wedging.
func TestReplayFailureSurfaces(t *testing.T) {
	st := state.New()
	st.Set("boom", state.Int(0))
	var fired int32
	task := func(ex adt.Executor) error {
		_, err := ex.Exec(explodingOp{fired: &fired})
		return err
	}
	_, _, err := Run(Config{Threads: 1}, st, []adt.Task{task})
	if err == nil || !strings.Contains(err.Error(), "replay exploded") {
		t.Fatalf("err = %v, want replay failure", err)
	}
}

// TestDisabledTracingAddsNoAllocs pins the observability contract from
// the runtime's side: the full instrumentation sequence attempt() wraps
// around Exec/validate/commit costs zero extra allocations when no
// tracer is configured (the zero obs.Ctx, exactly what runTask builds
// for a nil Config.Tracer).
func TestDisabledTracingAddsNoAllocs(t *testing.T) {
	st := state.New()
	st.Set("work", state.Int(0))
	op := adt.NumAddOp{L: "work", Delta: 1}
	newTx := func() *Tx {
		return &Tx{priv: st.Clone(), snap: st.Clone(), log: make(oplog.Log, 0, 4)}
	}

	txBase := newTx()
	base := testing.AllocsPerRun(500, func() {
		txBase.log = txBase.log[:0]
		if _, err := txBase.Exec(op); err != nil {
			t.Fatal(err)
		}
	})

	txObs := newTx()
	var ctx obs.Ctx
	instrumented := testing.AllocsPerRun(500, func() {
		txObs.log = txObs.log[:0]
		start := ctx.Now()
		ctx.Instant(obs.EvTxBegin)
		if _, err := txObs.Exec(op); err != nil {
			t.Fatal(err)
		}
		ctx.End(obs.EvTxRun, start)
		ctx.End(obs.EvTxValidate, start)
		ctx.Abort("write-set", "work", "")
		ctx.End(obs.EvTxCommit, start)
	})

	if instrumented != base {
		t.Fatalf("disabled tracing changed hot-path allocations: base=%.1f, instrumented=%.1f",
			base, instrumented)
	}
}

// TestPreparedSharingMatrix runs a contended mixed workload across the
// full ordered/unordered × copy/persistent matrix. Retries, lost commit
// races, and the incremental re-validation watermark all make concurrent
// validators read the same published projections; under -race this
// checks that sharing is sound and the outcome still matches the
// sequential oracle.
func TestPreparedSharingMatrix(t *testing.T) {
	var tasks []adt.Task
	for i := 1; i <= 12; i++ {
		switch i % 3 {
		case 0:
			tasks = append(tasks, addTask(int64(i)))
		case 1:
			tasks = append(tasks, identityTask(int64(i)))
		default:
			tasks = append(tasks, appendTask(int64(i)))
		}
	}
	want, err := RunSequential(initialState(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	wantWork, _ := want.Get("work")
	wantLog, _ := want.Get("log")
	for _, ordered := range []bool{false, true} {
		for _, priv := range []Privatize{PrivatizeCopy, PrivatizePersistent} {
			cfg := Config{Threads: 4, Ordered: ordered, Privatize: priv, MaxHistory: 6}
			got, _, err := Run(cfg, initialState(), tasks)
			if err != nil {
				t.Fatalf("ordered=%v priv=%v: %v", ordered, priv, err)
			}
			if ordered {
				if !got.Equal(want) {
					t.Fatalf("ordered priv=%v: %s != sequential %s", priv, got, want)
				}
				continue
			}
			// Unordered: the append log is some serialization, but the
			// commutative counter and the log length are invariant.
			if v, _ := got.Get("work"); !v.EqualValue(wantWork) {
				t.Fatalf("unordered priv=%v: work = %v, want %v", priv, v, wantWork)
			}
			if v, _ := got.Get("log"); len(v.(state.IntList)) != len(wantLog.(state.IntList)) {
				t.Fatalf("unordered priv=%v: log length %d, want %d",
					priv, len(v.(state.IntList)), len(wantLog.(state.IntList)))
			}
		}
	}
}

// commitCollector is a CommitSink that snapshots every delivery: task id,
// commit time, and a deep copy of the log (the contract forbids retaining
// the live slice).
type commitCollector struct {
	mu      sync.Mutex
	commits []collectedCommit
}

type collectedCommit struct {
	task  int
	ctime int64
	log   oplog.Log
}

func (c *commitCollector) ObserveCommitted(task int, commitTime int64, log oplog.Log) {
	cp := make(oplog.Log, len(log))
	copy(cp, log)
	c.mu.Lock()
	c.commits = append(c.commits, collectedCommit{task: task, ctime: commitTime, log: cp})
	c.mu.Unlock()
}

// TestCommitSinkReceivesCommits pins the CommitSink contract: one
// delivery per commit, unique commit times, and the delivered logs —
// replayed in commit-time order over the initial state — reconstruct the
// run's final state exactly.
func TestCommitSinkReceivesCommits(t *testing.T) {
	for _, ordered := range []bool{false, true} {
		name := "unordered"
		if ordered {
			name = "ordered"
		}
		t.Run(name, func(t *testing.T) {
			var tasks []adt.Task
			for i := int64(1); i <= 16; i++ {
				tasks = append(tasks, addTask(i), appendTask(i))
			}
			sink := &commitCollector{}
			final, stats, err := Run(Config{
				Threads: 4, Ordered: ordered, Record: sink,
			}, initialState(), tasks)
			if err != nil {
				t.Fatal(err)
			}
			if int64(len(sink.commits)) != stats.Commits {
				t.Fatalf("sink saw %d commits, stats say %d", len(sink.commits), stats.Commits)
			}
			sort.Slice(sink.commits, func(i, j int) bool {
				return sink.commits[i].ctime < sink.commits[j].ctime
			})
			replayed := initialState()
			for i, c := range sink.commits {
				if i > 0 && c.ctime == sink.commits[i-1].ctime {
					t.Fatalf("duplicate commit time %d", c.ctime)
				}
				if c.task < 1 || c.task > len(tasks) {
					t.Fatalf("commit %d carries task id %d (want 1..%d)", i, c.task, len(tasks))
				}
				if ordered && c.task != i+1 {
					t.Fatalf("ordered run: commit %d from task %d", i, c.task)
				}
				if err := c.log.Replay(replayed); err != nil {
					t.Fatal(err)
				}
			}
			if !replayed.Equal(final) {
				t.Fatalf("sink logs replayed in commit order drifted:\n got %s\nwant %s",
					replayed, final)
			}
		})
	}
}

// TestDisabledRecordingAddsNoAllocs pins the record-capture contract from
// the runtime's side, mirroring TestDisabledTracingAddsNoAllocs: the
// nil-sink guard attempt() runs at every commit costs zero extra
// allocations when no CommitSink is configured.
func TestDisabledRecordingAddsNoAllocs(t *testing.T) {
	st := state.New()
	st.Set("work", state.Int(0))
	op := adt.NumAddOp{L: "work", Delta: 1}
	newTx := func() *Tx {
		return &Tx{priv: st.Clone(), snap: st.Clone(), log: make(oplog.Log, 0, 4)}
	}

	txBase := newTx()
	base := testing.AllocsPerRun(500, func() {
		txBase.log = txBase.log[:0]
		if _, err := txBase.Exec(op); err != nil {
			t.Fatal(err)
		}
	})

	var cfg Config // Record is nil — the disabled configuration
	txRec := newTx()
	guarded := testing.AllocsPerRun(500, func() {
		txRec.log = txRec.log[:0]
		if _, err := txRec.Exec(op); err != nil {
			t.Fatal(err)
		}
		if sink := cfg.Record; sink != nil {
			sink.ObserveCommitted(1, 1, txRec.log)
		}
	})

	if guarded != base {
		t.Fatalf("disabled recording changed hot-path allocations: base=%.1f, guarded=%.1f",
			base, guarded)
	}
}
