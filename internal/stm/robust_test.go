package stm

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/state"
)

// checkNoGoroutineLeak runs fn and asserts the goroutine count returns to
// its pre-run level (a manual goleak): failed or canceled runs must drain
// their workers and any context watcher instead of leaking them.
func checkNoGoroutineLeak(t *testing.T, fn func()) {
	t.Helper()
	before := runtime.NumGoroutine()
	fn()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func panicTask(v any) adt.Task {
	return func(adt.Executor) error { panic(v) }
}

func TestTaskPanicIsError(t *testing.T) {
	for _, priv := range []Privatize{PrivatizeCopy, PrivatizePersistent} {
		checkNoGoroutineLeak(t, func() {
			_, _, err := Run(Config{Threads: 2, Privatize: priv}, initialState(),
				[]adt.Task{addTask(1), panicTask("boom"), addTask(2)})
			if err == nil {
				t.Fatalf("priv=%v: panicking task did not fail the run", priv)
			}
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("priv=%v: err = %v, want *PanicError", priv, err)
			}
			if pe.Task != 2 {
				t.Errorf("priv=%v: PanicError.Task = %d, want 2", priv, pe.Task)
			}
			if pe.Value != "boom" {
				t.Errorf("priv=%v: PanicError.Value = %v, want boom", priv, pe.Value)
			}
			if !strings.Contains(string(pe.Stack), "panicTask") {
				t.Errorf("priv=%v: stack does not name the panic site:\n%s", priv, pe.Stack)
			}
		})
	}
}

// TestOrderedPanicWakesWaiters is the regression for the crash-the-world
// failure mode: in ordered mode, tasks 2..N block on commitCond until the
// clock reaches their id. If task 1 panics and the process merely died —
// or the waiters were never woken — this test would crash or hang; it
// must instead return the panic as a run error promptly.
func TestOrderedPanicWakesWaiters(t *testing.T) {
	checkNoGoroutineLeak(t, func() {
		tasks := []adt.Task{panicTask("first dies")}
		for i := 2; i <= 8; i++ {
			tasks = append(tasks, addTask(int64(i)))
		}
		done := make(chan error, 1)
		go func() {
			_, _, err := Run(Config{Threads: 8, Ordered: true}, initialState(), tasks)
			done <- err
		}()
		select {
		case err := <-done:
			var pe *PanicError
			if !errors.As(err, &pe) || pe.Task != 1 {
				t.Fatalf("err = %v, want task 1 PanicError", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("ordered waiters never woken after peer panic")
		}
	})
}

func TestSequentialPanicIsError(t *testing.T) {
	_, err := RunSequential(initialState(), []adt.Task{addTask(1), panicTask(42)})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Task != 2 || pe.Value != 42 {
		t.Fatalf("err = %v, want task 2 PanicError(42)", err)
	}
}

func TestRunCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	checkNoGoroutineLeak(t, func() {
		_, _, err := RunCtx(ctx, Config{Threads: 4}, initialState(),
			[]adt.Task{addTask(1), addTask(2), addTask(3)})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	})
}

// TestRunCtxDeadlineInterruptsBackoff parks every worker in a backoff
// sleep (the detector always conflicts, so no task ever commits) and
// asserts the deadline still drains the run promptly: backoff sleeps must
// select on the run's failure channel, not sleep blindly.
func TestRunCtxDeadlineInterruptsBackoff(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	checkNoGoroutineLeak(t, func() {
		_, _, err := RunCtx(ctx, Config{
			Threads:  2,
			Detector: &alwaysConflict{},
			Backoff:  Backoff{Base: 10 * time.Second, Max: 10 * time.Second},
		}, initialState(), []adt.Task{addTask(1), addTask(2)})
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want context.DeadlineExceeded", err)
		}
	})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; backoff sleep not interruptible", elapsed)
	}
}

func TestRunCtxCompletesWithoutCancel(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	final, stats, err := RunCtx(ctx, Config{Threads: 4}, initialState(),
		[]adt.Task{addTask(1), addTask(2), addTask(3)})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := final.Get("work"); !v.EqualValue(state.Int(6)) {
		t.Fatalf("work = %v, want 6", v)
	}
	if stats.Commits != 3 {
		t.Fatalf("commits = %d, want 3", stats.Commits)
	}
}

// TestMaxRetriesFailurePath covers the liveness-guard error end to end:
// the run fails with the "exceeded N retries" error, the retry/conflict
// accounting is consistent, and no goroutines leak.
func TestMaxRetriesFailurePath(t *testing.T) {
	const maxRetries = 5
	checkNoGoroutineLeak(t, func() {
		_, stats, err := Run(Config{Threads: 2, Detector: &alwaysConflict{}, MaxRetries: maxRetries},
			initialState(), []adt.Task{addTask(1), addTask(2)})
		if err == nil || !strings.Contains(err.Error(), "exceeded 5 retries") {
			t.Fatalf("err = %v, want exceeded-retries failure", err)
		}
		// The failure is typed: callers distinguish retry exhaustion
		// (retryable congestion) from task-body errors via errors.As.
		var rle *RetryLimitError
		if !errors.As(err, &rle) {
			t.Fatalf("err = %v, want *RetryLimitError", err)
		}
		if rle.Retries != maxRetries {
			t.Errorf("RetryLimitError.Retries = %d, want %d", rle.Retries, maxRetries)
		}
		if rle.Task != 1 && rle.Task != 2 {
			t.Errorf("RetryLimitError.Task = %d, want 1 or 2", rle.Task)
		}
		if stats.Retries < maxRetries {
			t.Errorf("Retries = %d, want >= %d", stats.Retries, maxRetries)
		}
		// Every retry was caused by a detected conflict (the always-
		// conflict detector), and re-detections can only add conflicts.
		if stats.Conflicts < stats.Retries {
			t.Errorf("Conflicts = %d < Retries = %d", stats.Conflicts, stats.Retries)
		}
		if stats.AbortReasons["write-set"] != stats.Conflicts {
			t.Errorf("AbortReasons = %v, want write-set = %d", stats.AbortReasons, stats.Conflicts)
		}
	})
}

// TestSerializeAfterBoundsRetries pins the contention-management
// guarantee: against a detector that conflicts unconditionally — the
// adversarial worst case, under which the seed runtime spins until the
// MaxRetries guard kills the run — escalation to irrevocable serial mode
// bounds retries per transaction at SerializeAfter and completes the run
// with the correct final state.
func TestSerializeAfterBoundsRetries(t *testing.T) {
	const n = 12
	var tasks []adt.Task
	var want int64
	for i := 1; i <= n; i++ {
		tasks = append(tasks, addTask(int64(i)))
		want += int64(i)
	}

	// Seed behavior: unbounded spinning, caught only by the guard.
	_, _, err := Run(Config{Threads: 4, Detector: &alwaysConflict{}, MaxRetries: 25},
		initialState(), tasks)
	if err == nil || !strings.Contains(err.Error(), "retries") {
		t.Fatalf("without SerializeAfter: err = %v, want retry-guard livelock", err)
	}

	for _, ordered := range []bool{false, true} {
		for _, priv := range []Privatize{PrivatizeCopy, PrivatizePersistent} {
			const k = 3
			final, stats, err := Run(Config{
				Threads: 4, Ordered: ordered, Privatize: priv,
				Detector: &alwaysConflict{}, SerializeAfter: k,
			}, initialState(), tasks)
			if err != nil {
				t.Fatalf("ordered=%v priv=%v: %v", ordered, priv, err)
			}
			if v, _ := final.Get("work"); !v.EqualValue(state.Int(want)) {
				t.Fatalf("ordered=%v priv=%v: work = %v, want %d", ordered, priv, v, want)
			}
			if stats.Commits != n {
				t.Fatalf("ordered=%v priv=%v: commits = %d, want %d", ordered, priv, stats.Commits, n)
			}
			if stats.Escalations == 0 {
				t.Fatalf("ordered=%v priv=%v: no escalations under always-conflict", ordered, priv)
			}
			if ratio := stats.RetryRatio(); ratio > k {
				t.Fatalf("ordered=%v priv=%v: retries/txn = %.2f, want <= %d", ordered, priv, ratio, k)
			}
		}
	}
}

func TestBackoffWaitDeterministicAndBounded(t *testing.T) {
	b := Backoff{Base: time.Millisecond, Max: 8 * time.Millisecond}
	for task := 1; task <= 5; task++ {
		for attempt := 1; attempt <= 10; attempt++ {
			w1 := b.wait(task, attempt)
			w2 := b.wait(task, attempt)
			if w1 != w2 {
				t.Fatalf("wait(%d,%d) nondeterministic: %v vs %v", task, attempt, w1, w2)
			}
			if w1 < b.Base/2 || w1 >= b.Max {
				t.Fatalf("wait(%d,%d) = %v outside [Base/2, Max)", task, attempt, w1)
			}
		}
	}
	if (Backoff{}).wait(1, 3) != 0 {
		t.Fatal("zero Backoff must disable waiting")
	}
	// The exponential ceiling clamps at Max: deep attempts stay bounded.
	if w := b.wait(2, 1000); w >= b.Max {
		t.Fatalf("deep attempt wait %v not bounded by Max %v", w, b.Max)
	}
	// Default Max is 64×Base.
	d := Backoff{Base: time.Microsecond}
	if w := d.wait(1, 1000); w >= 64*time.Microsecond {
		t.Fatalf("default cap: wait = %v, want < 64×Base", w)
	}
}

func TestBackoffWaitsCountedAndTraced(t *testing.T) {
	_, stats, err := Run(Config{
		Threads:        2,
		Detector:       &alwaysConflict{},
		SerializeAfter: 2,
		Backoff:        Backoff{Base: 100 * time.Microsecond},
	}, initialState(), []adt.Task{addTask(1), addTask(2), addTask(3), addTask(4)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.BackoffWaits == 0 {
		t.Fatal("no backoff waits recorded despite aborts and Backoff.Base > 0")
	}
	if stats.Escalations == 0 {
		t.Fatal("no escalations recorded")
	}
}

// TestForceAbortHook drives the injection point directly: forced aborts
// retry the task (attributed as "injected"), and the run still completes
// with the right state once the injector relents.
func TestForceAbortHook(t *testing.T) {
	var injected atomic.Int64
	hooks := &Hooks{
		ForceAbort: func(task, attempt int) bool {
			if task == 1 && attempt == 1 {
				injected.Add(1)
				return true
			}
			return false
		},
	}
	final, stats, err := Run(Config{Threads: 2, Hooks: hooks}, initialState(),
		[]adt.Task{addTask(5), addTask(7)})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := final.Get("work"); !v.EqualValue(state.Int(12)) {
		t.Fatalf("work = %v, want 12", v)
	}
	if injected.Load() == 0 {
		t.Fatal("hook never consulted")
	}
	if stats.AbortReasons["injected"] == 0 {
		t.Fatalf("AbortReasons = %v, want injected > 0", stats.AbortReasons)
	}
	if stats.Retries == 0 {
		t.Fatal("forced abort did not register a retry")
	}
}

func TestPanicErrorMessage(t *testing.T) {
	e := &PanicError{Task: 7, Value: "kaboom"}
	if got := e.Error(); !strings.Contains(got, "task 7") || !strings.Contains(got, "kaboom") {
		t.Fatalf("Error() = %q", got)
	}
}
