package stm

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/state"
)

// fakeGov is a minimal Governor for runtime-side tests: a settable
// SerialOnly switch plus counters for every Observe signal.
type fakeGov struct {
	serial      atomic.Bool
	commits     atomic.Int64
	escalations atomic.Int64
	backoffs    atomic.Int64
	commitWaits atomic.Int64
}

func (g *fakeGov) SerialOnly() bool                  { return g.serial.Load() }
func (g *fakeGov) ObserveCommit()                    { g.commits.Add(1) }
func (g *fakeGov) ObserveCommitWait(_ time.Duration) { g.commitWaits.Add(1) }
func (g *fakeGov) ObserveBackoff(_ time.Duration)    { g.backoffs.Add(1) }
func (g *fakeGov) ObserveEscalation()                { g.escalations.Add(1) }

// TestGovernorSerialOnlyEscalatesEveryTask: a tripped governor must route
// every transaction through the irrevocable serial path, in both commit
// orders, and still produce the correct final state.
func TestGovernorSerialOnlyEscalatesEveryTask(t *testing.T) {
	for _, ordered := range []bool{false, true} {
		gov := &fakeGov{}
		gov.serial.Store(true)
		tasks := []adt.Task{addTask(1), addTask(2), addTask(3), addTask(4)}
		final, stats, err := Run(Config{Threads: 4, Ordered: ordered, Governor: gov},
			initialState(), tasks)
		if err != nil {
			t.Fatalf("ordered=%v: %v", ordered, err)
		}
		if v, _ := final.Get("work"); !v.EqualValue(state.Int(10)) {
			t.Fatalf("ordered=%v: work = %v, want 10", ordered, v)
		}
		if stats.Escalations != int64(len(tasks)) {
			t.Errorf("ordered=%v: Escalations = %d, want %d", ordered, stats.Escalations, len(tasks))
		}
		if got := gov.commits.Load(); got != int64(len(tasks)) {
			t.Errorf("ordered=%v: ObserveCommit count = %d, want %d", ordered, got, len(tasks))
		}
		if got := gov.escalations.Load(); got != int64(len(tasks)) {
			t.Errorf("ordered=%v: ObserveEscalation count = %d, want %d", ordered, got, len(tasks))
		}
	}
}

// TestGovernorObservesBackoff: aborted attempts that sleep must report
// each backoff to the governor.
func TestGovernorObservesBackoff(t *testing.T) {
	gov := &fakeGov{}
	hooks := &Hooks{ForceAbort: func(task, attempt int) bool { return attempt == 1 }}
	_, stats, err := Run(Config{
		Threads: 2, Governor: gov, Hooks: hooks,
		Backoff: Backoff{Base: time.Microsecond},
	}, initialState(), []adt.Task{addTask(1), addTask(2)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.BackoffWaits == 0 {
		t.Fatal("no backoff waits recorded; hook did not fire")
	}
	if got := gov.backoffs.Load(); got != stats.BackoffWaits {
		t.Errorf("ObserveBackoff count = %d, want %d", got, stats.BackoffWaits)
	}
}

// TestMaxHistoryBoundsHistory is the acceptance criterion for
// Config.MaxHistory: with reclamation otherwise off, the committed
// history must never exceed the bound (Stats.MaxHist ≤ bound), commits
// must stall-and-reclaim instead, and the final state must be unaffected
// — in both commit orders.
func TestMaxHistoryBoundsHistory(t *testing.T) {
	const n, bound = 120, 8
	for _, ordered := range []bool{false, true} {
		var tasks []adt.Task
		var want int64
		for i := 1; i <= n; i++ {
			tasks = append(tasks, addTask(int64(i)))
			want += int64(i)
		}
		final, stats, err := Run(Config{Threads: 4, Ordered: ordered, MaxHistory: bound},
			initialState(), tasks)
		if err != nil {
			t.Fatalf("ordered=%v: %v", ordered, err)
		}
		if v, _ := final.Get("work"); !v.EqualValue(state.Int(want)) {
			t.Fatalf("ordered=%v: work = %v, want %d", ordered, v, want)
		}
		if stats.MaxHist > bound {
			t.Errorf("ordered=%v: MaxHist = %d exceeds bound %d", ordered, stats.MaxHist, bound)
		}
		if stats.Commits != n {
			t.Errorf("ordered=%v: commits = %d, want %d", ordered, stats.Commits, n)
		}
		if stats.Reclaimed == 0 {
			t.Errorf("ordered=%v: bound was hit but nothing reclaimed", ordered)
		}
	}
}

// TestMaxHistoryWithSerialEscalation: the serial path must respect the
// bound too (it publishes to the same history).
func TestMaxHistoryWithSerialEscalation(t *testing.T) {
	const n, bound = 60, 4
	var tasks []adt.Task
	for i := 1; i <= n; i++ {
		tasks = append(tasks, addTask(1))
	}
	hooks := &Hooks{ForceAbort: func(task, attempt int) bool { return attempt == 1 }}
	_, stats, err := Run(Config{
		Threads: 4, MaxHistory: bound, SerializeAfter: 1, Hooks: hooks,
	}, initialState(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MaxHist > bound {
		t.Errorf("MaxHist = %d exceeds bound %d", stats.MaxHist, bound)
	}
	if stats.Escalations == 0 {
		t.Error("no escalations; serial path untested")
	}
}

// TestMaxTxnOpsBudget: an op past the budget is refused with
// *OplogBudgetError, the run fails with it (errors.As), and a task
// within budget is unaffected.
func TestMaxTxnOpsBudget(t *testing.T) {
	hungry := func(ex adt.Executor) error {
		c := adt.Counter{L: "work"}
		for i := 0; i < 10; i++ {
			if err := c.Add(ex, 1); err != nil {
				return err
			}
		}
		return nil
	}
	_, _, err := Run(Config{Threads: 1, MaxTxnOps: 4}, initialState(), []adt.Task{hungry})
	var be *OplogBudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *OplogBudgetError", err)
	}
	if be.Task != 1 || be.Ops != 4 || be.Budget != 4 {
		t.Errorf("OplogBudgetError = %+v, want {Task:1 Ops:4 Budget:4}", *be)
	}

	final, _, err := Run(Config{Threads: 2, MaxTxnOps: 4}, initialState(),
		[]adt.Task{addTask(2), addTask(3)})
	if err != nil {
		t.Fatalf("within-budget run failed: %v", err)
	}
	if v, _ := final.Get("work"); !v.EqualValue(state.Int(5)) {
		t.Fatalf("work = %v, want 5", v)
	}
}

// TestMaxTxnOpsSerialPath: the budget also binds escalated serial
// transactions (their Tx is built separately).
func TestMaxTxnOpsSerialPath(t *testing.T) {
	hungry := func(ex adt.Executor) error {
		c := adt.Counter{L: "work"}
		for i := 0; i < 10; i++ {
			if err := c.Add(ex, 1); err != nil {
				return err
			}
		}
		return nil
	}
	gov := &fakeGov{}
	gov.serial.Store(true)
	_, _, err := Run(Config{Threads: 1, MaxTxnOps: 4, Governor: gov},
		initialState(), []adt.Task{hungry})
	var be *OplogBudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *OplogBudgetError", err)
	}
}

// TestRunCtxCancelDuringSerialLock is the cancellation satellite: the
// context is canceled while a task holds the serial-escalation global
// write lock mid-execution. The lock must be released, the run must
// return the cancellation cause, and no goroutines may leak.
func TestRunCtxCancelDuringSerialLock(t *testing.T) {
	checkNoGoroutineLeak(t, func() {
		var calls atomic.Int64
		entered := make(chan struct{})
		release := make(chan struct{})
		blocker := func(ex adt.Executor) error {
			if calls.Add(1) == 2 {
				// Second attempt = the escalated serial one (SerializeAfter
				// is 1): we are now executing with the global write lock
				// held. Park until the test has canceled the context.
				close(entered)
				<-release
			}
			return adt.Counter{L: "work"}.Add(ex, 1)
		}
		hooks := &Hooks{ForceAbort: func(task, attempt int) bool {
			return task == 1 && attempt == 1
		}}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		// White-box equivalent of RunCtx (same watcher wiring): the test
		// must observe r.failed() before unparking the lock holder, or the
		// run could drain and return nil before the cancellation lands.
		r := New(Config{Threads: 2, SerializeAfter: 1, Hooks: hooks}, initialState())
		stop := context.AfterFunc(ctx, func() {
			r.fail(fmt.Errorf("stm: run canceled: %w", context.Cause(ctx)))
		})
		defer stop()
		done := make(chan error, 1)
		go func() {
			_, _, err := r.run([]adt.Task{blocker, addTask(5), addTask(7)})
			done <- err
		}()
		<-entered // serial attempt holds the write lock now
		cancel()  // cancel while the lock is held
		for !r.failed() {
			time.Sleep(time.Millisecond)
		}
		close(release)
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("run did not drain after cancel during serial lock hold; lock leaked?")
		}
	})
}

// TestMaxHistoryCancelWhileStalled: cancellation must wake a commit
// stalled on the history bound (the stall waits on commitCond, which the
// failure broadcast reaches).
func TestMaxHistoryCancelWhileStalled(t *testing.T) {
	checkNoGoroutineLeak(t, func() {
		// A task parked in its body pins the reclamation floor at its old
		// begin, so other commits fill the 2-entry history and stall.
		parked := make(chan struct{})
		blocker := func(ex adt.Executor) error {
			<-parked
			return adt.Counter{L: "work"}.Add(ex, 1)
		}
		var tasks []adt.Task
		tasks = append(tasks, blocker)
		for i := 0; i < 20; i++ {
			tasks = append(tasks, addTask(1))
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		done := make(chan error, 1)
		go func() {
			_, _, err := RunCtx(ctx, Config{Threads: 4, MaxHistory: 2},
				initialState(), tasks)
			done <- err
		}()
		// Give the run time to fill the history and hit the bound (the
		// parked task pins the floor, so at most 2 commits land before
		// every other worker stalls), then cancel. The failure broadcast
		// must wake the stalled committers; unparking the blocker lets its
		// worker drain (a task body cannot be preempted).
		time.Sleep(50 * time.Millisecond)
		cancel()
		close(parked)
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("run completed despite parked task; expected cancellation")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("stalled commit not woken by cancellation")
		}
	})
}
