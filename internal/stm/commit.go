// Footprint-disjoint parallel commit.
//
// The paper's Figure 7 protocol replays every commit under one global
// write lock, so commit throughput is serial no matter how many cores
// run detection. This file replaces that critical section with a striped
// commit: a committer locks only the stripes covering its footprint
// (read off conflict.Prepared, the PR-5 detection artifact), takes a
// commit-time ticket, replays its log into a private overlay with no
// global lock held, and then publishes — merges its written locations
// into the committed version and appends its history entry — in strict
// ticket order through a commit sequencer. Commits whose footprints are
// disjoint never contend past the ticket increment; only
// overlapping-footprint commits serialize, on exactly the stripes they
// share.
//
// Why this preserves Figure 7's serializability invariant (the full
// argument is DESIGN.md §11): a committer with all its stripes held
// knows every concurrently ticketed commit is stripe-disjoint from it —
// an overlapping one would have blocked on a shared stripe before
// ticketing — and stripe-disjoint implies location-disjoint implies
// commuting. History that published after its validation snapshot but
// before its stripes were held is screened by a footprint-signature
// check (no false negatives: equal locations set equal bits); any
// overlap there aborts the commit back to re-detection. So the log
// replays against exactly the state its detector validated it against,
// up to commuting reorderings — the same guarantee the global lock
// bought, without the convoy.
package stm

import (
	"strconv"
	"sync/atomic"

	"repro/internal/conflict"
	"repro/internal/obs"
	"repro/internal/oplog"
	"repro/internal/state"
)

// DefaultCommitStripes is the commit-stripe table size when
// Config.CommitStripes is zero. 64 stripes keep the false-sharing rate
// (distinct locations hashing to one stripe) negligible for the
// footprint sizes the workloads exhibit while the table stays small
// enough to sit in cache.
const DefaultCommitStripes = 64

// stripeRef is one resolved stripe of a transaction's footprint: the
// table index and the lock mode (write side iff some location on the
// stripe is written).
type stripeRef struct {
	idx   int32
	write bool
}

// planStripes resolves the footprint into the transaction's sorted,
// deduplicated stripe set and its overlap signatures. Sorting makes
// multi-stripe acquisition deadlock-free (every committer locks in
// ascending index order); deduplication merges two locations on one
// stripe into a single acquisition in the stronger mode.
func (t *Tx) planStripes(foot []conflict.FootprintLoc, nStripes int) {
	if t.stripes == nil {
		t.stripes = t.stripesBuf[:0]
	}
	t.stripes = t.stripes[:0]
	t.sigAll, t.sigWrite = 0, 0
	for _, f := range foot {
		bit := uint64(1) << (f.Hash % 64)
		t.sigAll |= bit
		if f.Write {
			t.sigWrite |= bit
		}
		idx := int32(f.Hash % uint64(nStripes))
		pos := len(t.stripes)
		for i := range t.stripes {
			if t.stripes[i].idx >= idx {
				pos = i
				break
			}
		}
		if pos < len(t.stripes) && t.stripes[pos].idx == idx {
			t.stripes[pos].write = t.stripes[pos].write || f.Write
			continue
		}
		t.stripes = append(t.stripes, stripeRef{})
		copy(t.stripes[pos+1:], t.stripes[pos:])
		t.stripes[pos] = stripeRef{idx: idx, write: f.Write}
	}
}

// footprintSigs folds a footprint into its 64-bit overlap signatures:
// one bit per location hash, over all accessed locations and over
// written locations. Two footprints can only share a location if
// (A.sigWrite & B.sigAll) | (A.sigAll & B.sigWrite) is non-zero — equal
// locations hash to equal bits, so the test has no false negatives.
func footprintSigs(foot []conflict.FootprintLoc) (sigAll, sigWrite uint64) {
	for _, f := range foot {
		bit := uint64(1) << (f.Hash % 64)
		sigAll |= bit
		if f.Write {
			sigWrite |= bit
		}
	}
	return sigAll, sigWrite
}

// lockStripes acquires the transaction's planned stripes in ascending
// index order, write side for stripes carrying a written location.
func (r *Runtime) lockStripes(t *Tx) {
	for _, s := range t.stripes {
		if s.write {
			r.stripes[s.idx].Lock()
		} else {
			r.stripes[s.idx].RLock()
		}
	}
}

// unlockStripes releases the planned stripes.
func (r *Runtime) unlockStripes(t *Tx) {
	for i := len(t.stripes) - 1; i >= 0; i-- {
		s := t.stripes[i]
		if s.write {
			r.stripes[s.idx].Unlock()
		} else {
			r.stripes[s.idx].RUnlock()
		}
	}
}

// waitPublished blocks until the sequencer's published watermark reaches
// target or the run fails, reporting whether the watermark got there.
// This is the O(1) order-maintenance query behind both the publication
// turn and the ordered-mode commit turn: tickets are dense and publish
// in order, so the watermark passes through every integer and each
// waiter registers under exactly the value it needs — advancePublished
// wakes it with a map lookup, not a broadcast over all waiters.
func (r *Runtime) waitPublished(target int64) bool {
	if r.published.Load() >= target {
		return true
	}
	r.seqMu.Lock()
	if r.published.Load() >= target {
		r.seqMu.Unlock()
		return true
	}
	ch := make(chan struct{})
	r.seqWaiters[target] = append(r.seqWaiters[target], ch)
	r.seqMu.Unlock()
	select {
	case <-ch:
		return true
	case <-r.done:
		return r.published.Load() >= target
	}
}

// advancePublished publishes watermark c — always exactly published+1,
// because publication runs in dense ticket order — and wakes the waiters
// registered for c.
func (r *Runtime) advancePublished(c int64) {
	r.seqMu.Lock()
	r.published.Store(c)
	chs := r.seqWaiters[c]
	if chs != nil {
		delete(r.seqWaiters, c)
	}
	r.seqMu.Unlock()
	for _, ch := range chs {
		close(ch)
	}
}

// casMax raises *addr to v if v is greater. Commits publish
// concurrently, so the former load-then-store max (safe only under the
// global write lock) would lose updates.
func casMax(addr *int64, v int64) {
	for {
		cur := atomic.LoadInt64(addr)
		if v <= cur || atomic.CompareAndSwapInt64(addr, cur, v) {
			return
		}
	}
}

// overlapsPublished reports whether any history entry in commit-time
// window (after, upto] has a possible footprint overlap with the given
// signatures. Entries in that window published after the caller's last
// validated fetch, so an overlap means its verdicts may be stale; all
// signatures disjoint means every such entry is location-disjoint from
// the caller and needs no re-detection. The window is fully resident:
// the caller's begin watermark equals after, which pins newer entries
// against reclamation.
func (r *Runtime) overlapsPublished(after, upto int64, sigAll, sigWrite uint64) bool {
	r.histMu.Lock()
	defer r.histMu.Unlock()
	lo := searchHist(r.history, after)
	for _, h := range r.history[lo:] {
		if h.commitTime > upto {
			break
		}
		if h.sigWrite&sigAll != 0 || h.sigAll&sigWrite != 0 {
			return true
		}
	}
	return false
}

// reserveHistorySlot claims one committed-history slot against
// Config.MaxHistory before the commit tickets, forcing a reclamation
// pass first if the bound is hit. Reservations (ticketed commits that
// have not appended yet) count toward the bound, so concurrent commits
// cannot overshoot it between check and append — Stats.MaxHist never
// exceeds MaxHistory.
func (r *Runtime) reserveHistorySlot() bool {
	r.histMu.Lock()
	defer r.histMu.Unlock()
	if len(r.history)+r.histReserved >= r.cfg.MaxHistory {
		r.reclaimLocked()
	}
	if len(r.history)+r.histReserved >= r.cfg.MaxHistory {
		return false
	}
	r.histReserved++
	return true
}

// replayCompute replays a validated log onto a private faulting overlay
// of the committed store and returns the overlay; no shared state is
// mutated. The caller must hold its footprint stripes (or the global
// write lock): that guarantees no concurrent publication touches a
// location the replay reads, so the overlay is identical to one
// computed against the publication-turn store.
func (r *Runtime) replayCompute(log oplog.Log) (*state.State, error) {
	tmp := state.NewFaulting(r.storeGet)
	if err := log.Replay(tmp); err != nil {
		return nil, err
	}
	return tmp, nil
}

// mergeVersion publishes a replayed overlay's written locations into the
// committed store — one atomic box store per location. Callers are
// serialized (publication turn or global write lock), so overflow-map
// growth for freshly created locations needs no CAS loop.
func (r *Runtime) mergeVersion(tmp *state.State, foot []conflict.FootprintLoc) {
	for _, f := range foot {
		if !f.Write {
			continue
		}
		if v, ok := tmp.Get(f.Loc); ok {
			r.storeSet(f.Loc, v.CloneValue())
		}
	}
}

// publishEntry appends one committed transaction to the history,
// releasing its MaxHistory reservation, tracking the peak length,
// reclaiming if configured, and demoting the entry that aged out of the
// HistoryCompress window. Publication order (the caller's sequencer
// turn) keeps commit times strictly increasing in history order.
func (r *Runtime) publishEntry(ctx obs.Ctx, tid int, ctime int64, prep *conflict.Prepared, sigAll, sigWrite uint64, reserved bool) {
	r.histMu.Lock()
	r.history = append(r.history, histEntry{
		commitTime: ctime, task: tid, prep: prep, sigAll: sigAll, sigWrite: sigWrite,
	})
	if reserved {
		r.histReserved--
	}
	casMax(&r.stats.MaxHist, int64(len(r.history)))
	if r.cfg.ReclaimLogs {
		r.reclaimLocked()
	}
	if r.cfg.HistoryCompress {
		r.demoteLocked(ctx)
	}
	r.histMu.Unlock()
}

// DefaultCompressAfter is the HistoryCompress recent-window size when
// Config.CompressAfter is zero: enough full entries that the hot
// detection window (the entries most transactions validate against)
// never decodes, while everything older drops to its compact record.
const DefaultCompressAfter = 8

// demoteLocked compresses the newest history entry past the
// CompressAfter window, if any. Caller holds histMu.
//
// One demotion per publication keeps the invariant "every entry older
// than the window is compressed": an append moves exactly one entry
// across the window boundary, and reclamation only drops a prefix, which
// never moves an entry back across it. In-flight detectors may still
// hold the full artifact from an earlier history fetch — both artifacts
// are immutable and valid; the full one becomes collectable once the
// last such window ends, which is where the memory comes back.
func (r *Runtime) demoteLocked(ctx obs.Ctx) {
	keep := r.cfg.CompressAfter
	if keep <= 0 {
		keep = DefaultCompressAfter
	}
	i := len(r.history) - 1 - keep
	if i < 0 || r.history[i].prep.Compressed() {
		return
	}
	h := &r.history[i]
	h.prep = h.prep.Compress()
	n := h.prep.CompressedBytes()
	atomic.AddInt64(&r.stats.Demotions, 1)
	atomic.AddInt64(&r.stats.HistBytes, int64(n))
	if ctx.Enabled() {
		ctx.Mark(obs.EvHistoryDemote, strconv.Itoa(h.task), strconv.Itoa(n)+"B")
	}
}

// commit is COMMIT of Figure 7, striped. The committer locks its
// footprint stripes (sorted; deadlock-free), screens the history that
// published since its last validated fetch with the footprint-signature
// test, takes a dense commit-time ticket, replays with no global lock
// held, and publishes in ticket order through the sequencer. The global
// lock is held on the read side only, so commits overlap each other and
// exclude nothing but serial escalation. On any outcome but commitOK no
// shared state was mutated.
func (r *Runtime) commit(ctx obs.Ctx, tx *Tx, prep *conflict.Prepared, tcheck int64) commitResult {
	tx.planStripes(prep.Footprint(), len(r.stripes))
	r.lock.RLock()
	defer r.lock.RUnlock()
	stripeStart := ctx.Now()
	r.lockStripes(tx)
	defer r.unlockStripes(tx)
	ctx.End(obs.EvCommitStripe, stripeStart)
	// With the stripes held, every ticketed-but-unpublished commit is
	// stripe-disjoint from this one (an overlapping one would still be
	// blocked in lockStripes), so only already-published entries can
	// invalidate the detector's verdicts. Screen the window that
	// published after the last validated fetch; a possible overlap sends
	// the attempt back to re-detection, exactly like the old lost clock
	// race — except disjoint committers no longer pay it.
	if p := r.published.Load(); p != tcheck && r.overlapsPublished(tcheck, p, tx.sigAll, tx.sigWrite) {
		return commitRace
	}
	if h := r.cfg.Hooks; h != nil && h.CommitDelay != nil {
		h.CommitDelay(tx.tid)
	}
	if r.failed() {
		return commitFailed
	}
	reserved := false
	if r.cfg.MaxHistory > 0 {
		if !r.reserveHistorySlot() {
			return commitStall
		}
		reserved = true
	}
	// Replay before ticketing: the ticket is the point of no return (a
	// ticket that never publishes would wedge the sequencer), so every
	// fallible step happens first. A replay error is terminal for the
	// whole run — never a retry.
	rep, err := r.replayCompute(tx.log)
	if err != nil {
		if reserved {
			r.histMu.Lock()
			r.histReserved--
			r.histMu.Unlock()
		}
		r.fail(err)
		return commitFailed
	}
	ctime := r.clock.Add(1)
	pipeStart := ctx.Now()
	if !r.waitPublished(ctime - 1) {
		// Run failed before our turn could come up; nothing was merged
		// and no successor is live to wait on the gap.
		return commitFailed
	}
	ctx.End(obs.EvCommitPipeline, pipeStart)
	r.mergeVersion(rep, prep.Footprint())
	r.publishEntry(ctx, tx.tid, ctime, prep, tx.sigAll, tx.sigWrite, reserved)
	if sink := r.cfg.Record; sink != nil {
		// Inside the publication turn: sinks see commits in strictly
		// increasing commitTime order across all workers.
		sink.ObserveCommitted(tx.tid, ctime, tx.log)
	}
	r.advancePublished(ctime)
	if r.cfg.MaxHistory > 0 {
		// MaxHistory waiters (stalled commits, ordered drainers) park on
		// commitCond; wake them after the watermark moved so their
		// re-checks observe it.
		r.histMu.Lock()
		r.commitCond.Broadcast()
		r.histMu.Unlock()
	}
	return commitOK
}

// searchHist returns the index of the first history entry with
// commitTime > after (history is sorted by commitTime).
func searchHist(h []histEntry, after int64) int {
	lo, hi := 0, len(h)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h[mid].commitTime > after {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
