package stm

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/state"
)

// These tests pin down the drain contract a serving layer depends on:
// when a request deadline expires while the run is parked — in a backoff
// sleep or stalled on the MaxHistory commit bound — every worker must
// wake, drain, and the run must return the context's error with zero
// leaked goroutines. Each scenario runs in both commit modes (RunCtx and
// the ordered configuration behind RunInOrderCtx) at server-shaped
// concurrency.

// TestCtxDeadlineMidBackoffDrains parks a full worker pool in backoff
// sleeps (the detector conflicts every attempt, so no task ever commits)
// and lets the deadline expire mid-sleep. The sleep must select on the
// run's failure channel: all 16 workers and the context watcher drain
// promptly in both commit modes.
func TestCtxDeadlineMidBackoffDrains(t *testing.T) {
	for _, ordered := range []bool{false, true} {
		name := "unordered"
		if ordered {
			name = "ordered"
		}
		t.Run(name, func(t *testing.T) {
			tasks := make([]adt.Task, 64)
			for i := range tasks {
				tasks[i] = addTask(1)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
			defer cancel()
			start := time.Now()
			checkNoGoroutineLeak(t, func() {
				_, stats, err := RunCtx(ctx, Config{
					Threads:  16,
					Ordered:  ordered,
					Detector: &alwaysConflict{},
					Backoff:  Backoff{Base: 30 * time.Second, Max: 30 * time.Second},
				}, initialState(), tasks)
				if !errors.Is(err, context.DeadlineExceeded) {
					t.Fatalf("err = %v, want context.DeadlineExceeded", err)
				}
				if stats.Commits != 0 {
					t.Fatalf("commits = %d, want 0 (detector conflicts always)", stats.Commits)
				}
				if stats.BackoffWaits == 0 {
					t.Fatal("no backoff sleeps recorded; deadline did not interrupt a backoff")
				}
			})
			if elapsed := time.Since(start); elapsed > 5*time.Second {
				t.Fatalf("drain took %v; backoff sleeps not interruptible", elapsed)
			}
		})
	}
}

// TestCtxDeadlineMidCommitStallDrains wedges the run on the MaxHistory
// bound: task 1 validates and then sleeps (WindowDelay) with its begin
// watermark pinned at 0, so no committed entry is ever reclaimable, and
// every commit after the first two parks in stallForHistory. The deadline
// expires while they are parked; fail's commitCond broadcast must wake
// them all and the run must drain without waiting out task 1's sleep
// budget.
func TestCtxDeadlineMidCommitStallDrains(t *testing.T) {
	for _, ordered := range []bool{false, true} {
		name := "unordered"
		if ordered {
			name = "ordered"
		}
		t.Run(name, func(t *testing.T) {
			const n = 32
			// Distinct per-task counters: no conflicts, so every task
			// commits on its first attempt and the history fills as fast
			// as the workers can go.
			st := state.New()
			tasks := make([]adt.Task, n)
			for i := range tasks {
				loc := state.Loc(fmt.Sprintf("c%d", i))
				st.Set(loc, state.Int(0))
				tasks[i] = func(ex adt.Executor) error {
					return adt.Counter{L: loc}.Add(ex, 1)
				}
			}
			var delayed atomic.Int64
			hooks := &Hooks{WindowDelay: func(task int) {
				// Pin the first task between validation and commit long
				// past the deadline; its begin watermark (0) blocks all
				// reclamation while it sleeps.
				if task == 1 && delayed.Add(1) == 1 {
					time.Sleep(500 * time.Millisecond)
				}
			}}
			ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
			defer cancel()
			start := time.Now()
			checkNoGoroutineLeak(t, func() {
				_, stats, err := RunCtx(ctx, Config{
					Threads:    8,
					Ordered:    ordered,
					MaxHistory: 2,
					Hooks:      hooks,
				}, st, tasks)
				if !errors.Is(err, context.DeadlineExceeded) {
					t.Fatalf("err = %v, want context.DeadlineExceeded", err)
				}
				if !ordered && stats.CommitStalls == 0 {
					// In unordered mode the wedge is specifically the
					// history stall; prove the deadline fired while
					// commits were parked there. (Ordered mode parks the
					// same tasks in their commit-turn wait instead.)
					t.Fatal("no commit stalls recorded; deadline did not interrupt a history stall")
				}
			})
			if elapsed := time.Since(start); elapsed > 5*time.Second {
				t.Fatalf("drain took %v; history stall not interruptible", elapsed)
			}
		})
	}
}

// TestCtxCancelStormUnderLoad hammers the racier shape a server produces:
// many concurrent runs, each canceled at a random-ish point while its
// workers are mid-protocol (some committing, some backing off). Every run
// must return either success or the cancellation error — never hang, never
// leak. Run with -race this doubles as a drain-path race test.
func TestCtxCancelStormUnderLoad(t *testing.T) {
	const runs = 8
	checkNoGoroutineLeak(t, func() {
		done := make(chan error, runs)
		for i := 0; i < runs; i++ {
			i := i
			go func() {
				tasks := make([]adt.Task, 24)
				for j := range tasks {
					tasks[j] = addTask(1)
				}
				// Stagger deadlines across runs so cancellation lands at
				// different protocol points: mid-run, mid-backoff,
				// mid-commit.
				d := time.Duration(1+i*2) * time.Millisecond
				ctx, cancel := context.WithTimeout(context.Background(), d)
				defer cancel()
				_, _, err := RunCtx(ctx, Config{
					Threads: 4,
					Ordered: i%2 == 1,
					Backoff: Backoff{Base: time.Millisecond, Max: 4 * time.Millisecond},
				}, initialState(), tasks)
				done <- err
			}()
		}
		for i := 0; i < runs; i++ {
			select {
			case err := <-done:
				if err != nil && !errors.Is(err, context.DeadlineExceeded) {
					t.Errorf("run error = %v, want nil or context.DeadlineExceeded", err)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("a canceled run never returned")
			}
		}
	})
}
