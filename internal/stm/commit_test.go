package stm

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/state"
)

// TestReplayErrorDoesNotRetry pins the doomed-retry fix: a replay
// failure is terminal for the run, so the failing attempt must return
// through commitFailed without ever re-entering the retry loop. Before
// the fix the error was mapped to a lost commit race, so the attempt
// burned a full retry (re-execution, re-validation, backoff) before the
// worker noticed the run was dead.
func TestReplayErrorDoesNotRetry(t *testing.T) {
	st := state.New()
	st.Set("boom", state.Int(0))
	var fired int32
	task := func(ex adt.Executor) error {
		_, err := ex.Exec(explodingOp{fired: &fired})
		return err
	}
	_, stats, err := Run(Config{Threads: 1}, st, []adt.Task{task})
	if err == nil {
		t.Fatal("run succeeded, want replay failure")
	}
	if got := stats.Retries; got != 0 {
		t.Fatalf("Retries = %d after terminal replay error, want 0", got)
	}
	// One Apply in the task body, one in the replay that failed; a
	// doomed retry would have re-executed the body for a third.
	if got := atomic.LoadInt32(&fired); got != 2 {
		t.Fatalf("op applied %d times, want 2 (exec + failed replay)", got)
	}
}

// TestCommitStallCountsOnlyRealWaits pins the stall-accounting fix:
// Stats.CommitStalls counts commits that actually parked on the history
// bound, not ones whose entry reclamation pass freed room immediately.
func TestCommitStallCountsOnlyRealWaits(t *testing.T) {
	t.Run("ImmediateReclaimIsNotAStall", func(t *testing.T) {
		r := New(Config{MaxHistory: 1}, state.New())
		r.clock.Store(5)
		r.published.Store(5)
		// One stale entry, no active transaction pinning it: the entry
		// reclamation pass frees the slot and the commit never waits.
		r.history = []histEntry{{commitTime: 3}}
		done := make(chan struct{})
		go func() { r.stallForHistory(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("stallForHistory blocked with reclaimable history")
		}
		if got := atomic.LoadInt64(&r.stats.CommitStalls); got != 0 {
			t.Fatalf("CommitStalls = %d for a stall that resolved without waiting, want 0", got)
		}
	})
	t.Run("RealWaitCountsOnce", func(t *testing.T) {
		r := New(Config{MaxHistory: 1}, state.New())
		r.clock.Store(5)
		r.published.Store(5)
		r.history = []histEntry{{commitTime: 3}}
		// An active transaction with begin 2 pins the entry; the stalling
		// commit must park until the pin is dropped.
		r.begins[9] = 2
		released := make(chan struct{})
		go func() {
			time.Sleep(20 * time.Millisecond)
			close(released)
			r.dropBegin(9)
		}()
		r.stallForHistory()
		select {
		case <-released:
		default:
			t.Fatal("stallForHistory returned before the pinning transaction departed")
		}
		// Parked (possibly through several spurious wakeups), but one
		// stalled commit is one stall.
		if got := atomic.LoadInt64(&r.stats.CommitStalls); got != 1 {
			t.Fatalf("CommitStalls = %d for one parked commit, want 1", got)
		}
	})
}

// commitGauge observes replay concurrency through the CommitDelay hook,
// which runs with the committer's footprint stripes held: the peak
// number of transactions inside the hook at once is the peak number of
// commits whose replays could overlap.
type commitGauge struct {
	mu      sync.Mutex
	cur     int
	peak    int
	entered chan struct{} // closed once two commits are inside at once
}

func newCommitGauge() *commitGauge {
	return &commitGauge{entered: make(chan struct{})}
}

func (g *commitGauge) hook(int) {
	g.mu.Lock()
	g.cur++
	if g.cur > g.peak {
		g.peak = g.cur
	}
	if g.cur >= 2 {
		select {
		case <-g.entered:
		default:
			close(g.entered)
		}
	}
	g.mu.Unlock()
	time.Sleep(2 * time.Millisecond) // hold the stripes long enough to overlap
	g.mu.Lock()
	g.cur--
	g.mu.Unlock()
}

func (g *commitGauge) max() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.peak
}

// TestOverlappingCommitsNeverConcurrent drives many transactions that
// all write one location and asserts no two of them were ever inside the
// commit critical section together: same location means same stripe,
// and the stripe's write side is exclusive. This is the serializability
// half of the striped-commit contract.
func TestOverlappingCommitsNeverConcurrent(t *testing.T) {
	st := state.New()
	st.Set("hot", state.Int(0))
	g := newCommitGauge()
	tasks := make([]adt.Task, 24)
	for i := range tasks {
		tasks[i] = func(ex adt.Executor) error {
			return adt.Counter{L: "hot"}.Add(ex, 1)
		}
	}
	final, stats, err := Run(Config{
		Threads: 8,
		Hooks:   &Hooks{CommitDelay: g.hook},
	}, st, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.max(); got != 1 {
		t.Fatalf("peak commit concurrency = %d for same-location commits, want 1", got)
	}
	if v, _ := final.Get("hot"); !v.EqualValue(state.Int(24)) {
		t.Fatalf("hot = %v, want 24", v)
	}
	if stats.Commits != 24 {
		t.Fatalf("Commits = %d, want 24", stats.Commits)
	}
}

// TestDisjointCommitsOverlap is the throughput half of the contract:
// transactions with disjoint footprints must be able to occupy the
// commit critical section concurrently. The hook parks each committer
// for 2ms with its stripes held, so with 8 workers over 16 disjoint
// locations two commits overlapping is guaranteed unless the path
// serializes them.
func TestDisjointCommitsOverlap(t *testing.T) {
	st := state.New()
	locs := make([]state.Loc, 16)
	for i := range locs {
		locs[i] = state.Loc(string(rune('a' + i)))
		st.Set(locs[i], state.Int(0))
	}
	g := newCommitGauge()
	tasks := make([]adt.Task, 64)
	for i := range tasks {
		loc := locs[i%len(locs)]
		tasks[i] = func(ex adt.Executor) error {
			return adt.Counter{L: loc}.Add(ex, 1)
		}
	}
	_, stats, err := Run(Config{
		Threads: 8,
		Hooks:   &Hooks{CommitDelay: g.hook},
	}, st, tasks)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-g.entered:
	default:
		t.Fatalf("no two disjoint-footprint commits ever overlapped (peak = %d)", g.max())
	}
	if stats.Commits != 64 {
		t.Fatalf("Commits = %d, want 64", stats.Commits)
	}
}

// TestSerialEscalationExcludesStripedCommits checks the demoted global
// lock still does its one remaining job: a serial escalation (write
// side) must not run while any striped commit holds the read side, so
// the gauge never sees a serial commit overlap an optimistic one.
func TestSerialEscalationExcludesStripedCommits(t *testing.T) {
	st := state.New()
	st.Set("hot", state.Int(0))
	g := newCommitGauge()
	var forced int32
	tasks := make([]adt.Task, 16)
	for i := range tasks {
		tasks[i] = func(ex adt.Executor) error {
			return adt.Counter{L: "hot"}.Add(ex, 1)
		}
	}
	_, _, err := Run(Config{
		Threads:        8,
		SerializeAfter: 2,
		Hooks: &Hooks{
			CommitDelay: g.hook,
			ForceAbort: func(task, attempt int) bool {
				// Starve a few tasks into escalation.
				return task <= 4 && attempt <= 2 && atomic.AddInt32(&forced, 1) > 0
			},
		},
	}, st, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.max(); got != 1 {
		t.Fatalf("peak commit concurrency = %d with serial escalations in flight, want 1", got)
	}
}

// TestCommitStripesOne degenerates the stripe table to the paper's
// single commit lock and checks the protocol still serializes and
// completes — the configuration CI uses as the contention worst case.
func TestCommitStripesOne(t *testing.T) {
	st := state.New()
	for i := 0; i < 8; i++ {
		st.Set(state.Loc(string(rune('a'+i))), state.Int(0))
	}
	tasks := make([]adt.Task, 32)
	for i := range tasks {
		loc := state.Loc(string(rune('a' + i%8)))
		tasks[i] = func(ex adt.Executor) error {
			return adt.Counter{L: loc}.Add(ex, 1)
		}
	}
	final, stats, err := Run(Config{Threads: 4, CommitStripes: 1}, st, tasks)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		loc := state.Loc(string(rune('a' + i)))
		if v, _ := final.Get(loc); !v.EqualValue(state.Int(4)) {
			t.Fatalf("%s = %v, want 4", loc, v)
		}
	}
	if stats.Commits != 32 {
		t.Fatalf("Commits = %d, want 32", stats.Commits)
	}
}

// TestMaxHistNeverExceedsBound pins the reservation accounting: with
// commits publishing concurrently, the recorded peak history length must
// still respect Config.MaxHistory exactly (reserved slots count toward
// the bound between ticket and append).
func TestMaxHistNeverExceedsBound(t *testing.T) {
	st := state.New()
	for i := 0; i < 8; i++ {
		st.Set(state.Loc(string(rune('a'+i))), state.Int(0))
	}
	tasks := make([]adt.Task, 64)
	for i := range tasks {
		loc := state.Loc(string(rune('a' + i%8)))
		tasks[i] = func(ex adt.Executor) error {
			return adt.Counter{L: loc}.Add(ex, 1)
		}
	}
	const bound = 3
	_, stats, err := Run(Config{Threads: 8, MaxHistory: bound}, st, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MaxHist > bound {
		t.Fatalf("MaxHist = %d exceeds MaxHistory = %d", stats.MaxHist, bound)
	}
}

// TestWaitPublishedFailureWakes checks the sequencer's waiters observe a
// run failure instead of parking forever on a watermark that will never
// be reached.
func TestWaitPublishedFailureWakes(t *testing.T) {
	r := New(Config{}, state.New())
	done := make(chan bool, 1)
	go func() { done <- r.waitPublished(99) }()
	time.Sleep(5 * time.Millisecond)
	r.fail(errors.New("boom"))
	select {
	case ok := <-done:
		if ok {
			t.Fatal("waitPublished reported success after run failure")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waitPublished did not wake on run failure")
	}
}
