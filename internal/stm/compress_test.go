package stm

import (
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/adt"
	"repro/internal/conflict"
	"repro/internal/obs"
	"repro/internal/oplog"
	"repro/internal/state"
)

// mixedTasks is the demotion workloads' task mix: commutative counters,
// identity pairs, and order-observable appends, so the history holds
// entries of every shape the compressor must round-trip.
func mixedTasks(n int) []adt.Task {
	var tasks []adt.Task
	for i := 1; i <= n; i++ {
		switch i % 3 {
		case 0:
			tasks = append(tasks, addTask(int64(i)))
		case 1:
			tasks = append(tasks, identityTask(int64(i)))
		default:
			tasks = append(tasks, appendTask(int64(i)))
		}
	}
	return tasks
}

// TestHistoryCompressMatchesOracle runs the contended mixed workload
// across the ordered/unordered × copy/persistent matrix with history
// compression on and a tiny recent window, so most validations screen
// (and on overlap decode) compressed entries. The outcome must still
// match the sequential oracle, and the run must actually have demoted.
func TestHistoryCompressMatchesOracle(t *testing.T) {
	tasks := mixedTasks(24)
	want, err := RunSequential(initialState(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	wantWork, _ := want.Get("work")
	wantLog, _ := want.Get("log")
	for _, ordered := range []bool{false, true} {
		for _, priv := range []Privatize{PrivatizeCopy, PrivatizePersistent} {
			cfg := Config{
				Threads: 4, Ordered: ordered, Privatize: priv,
				HistoryCompress: true, CompressAfter: 2,
			}
			got, stats, err := Run(cfg, initialState(), tasks)
			if err != nil {
				t.Fatalf("ordered=%v priv=%v: %v", ordered, priv, err)
			}
			if stats.Demotions == 0 {
				t.Fatalf("ordered=%v priv=%v: no demotions with CompressAfter=2 over %d commits",
					ordered, priv, stats.Commits)
			}
			if stats.HistBytes <= 0 {
				t.Fatalf("ordered=%v priv=%v: HistBytes = %d with %d live demoted entries",
					ordered, priv, stats.HistBytes, stats.Demotions)
			}
			if ordered {
				if !got.Equal(want) {
					t.Fatalf("ordered priv=%v: %s != sequential %s", priv, got, want)
				}
				continue
			}
			if v, _ := got.Get("work"); !v.EqualValue(wantWork) {
				t.Fatalf("unordered priv=%v: work = %v, want %v", priv, v, wantWork)
			}
			if v, _ := got.Get("log"); len(v.(state.IntList)) != len(wantLog.(state.IntList)) {
				t.Fatalf("unordered priv=%v: log length %d, want %d",
					priv, len(v.(state.IntList)), len(wantLog.(state.IntList)))
			}
		}
	}
}

// TestHistoryCompressWindowInvariant pins demoteLocked's inductive
// invariant: after a run, every history entry older than the
// CompressAfter window is compressed, every entry inside it is still
// full, and the HistBytes gauge equals the live compressed footprint.
func TestHistoryCompressWindowInvariant(t *testing.T) {
	const keep = 3
	r := New(Config{Threads: 4, HistoryCompress: true, CompressAfter: keep}, initialState())
	_, stats, err := r.run(mixedTasks(20))
	if err != nil {
		t.Fatal(err)
	}
	r.histMu.Lock()
	defer r.histMu.Unlock()
	if len(r.history) != 20 {
		t.Fatalf("history length %d, want 20", len(r.history))
	}
	var liveBytes int64
	for i := range r.history {
		compressed := r.history[i].prep.Compressed()
		if want := i < len(r.history)-keep; compressed != want {
			t.Fatalf("entry %d of %d: compressed = %v, want %v (window %d)",
				i, len(r.history), compressed, want, keep)
		}
		liveBytes += int64(r.history[i].prep.CompressedBytes())
	}
	if got := int64(len(r.history) - keep); stats.Demotions != got {
		t.Fatalf("Demotions = %d, want %d", stats.Demotions, got)
	}
	if stats.HistBytes != liveBytes {
		t.Fatalf("HistBytes = %d, live compressed footprint = %d", stats.HistBytes, liveBytes)
	}
}

// TestReclaimSubtractsCompressedBytes pins the gauge's other edge:
// reclaiming a demoted entry returns its bytes. Reclamation drops the
// two stale compressed entries and must subtract exactly their sizes,
// leaving the gauge at the one surviving compressed entry.
func TestReclaimSubtractsCompressedBytes(t *testing.T) {
	r := New(Config{ReclaimLogs: true, HistoryCompress: true}, initialState())
	mk := func(task int) *conflict.Prepared {
		return conflict.Prepare(oplog.Log{&oplog.Event{
			Op: adt.NumAddOp{L: "work", Delta: int64(task)}, Task: task,
			Acc: []oplog.Access{{P: oplog.PLoc("work"), Write: true}},
		}}).Compress()
	}
	var total int64
	for ct := int64(2); ct <= 4; ct++ {
		p := mk(int(ct))
		total += int64(p.CompressedBytes())
		r.history = append(r.history, histEntry{commitTime: ct, task: int(ct), prep: p})
	}
	atomic.StoreInt64(&r.stats.HistBytes, total)
	r.clock.Store(5)
	r.published.Store(5)
	r.begins[1] = 3 // pins entries with commit time > 3: only ct=4 survives

	r.histMu.Lock()
	r.reclaimLocked()
	r.histMu.Unlock()

	if len(r.history) != 1 {
		t.Fatalf("kept %d entries, want 1", len(r.history))
	}
	want := int64(r.history[0].prep.CompressedBytes())
	if got := atomic.LoadInt64(&r.stats.HistBytes); got != want {
		t.Fatalf("HistBytes = %d after reclaiming two compressed entries, want %d", got, want)
	}
}

// TestHistoryDemoteEventEmitted checks the observability contract: one
// history.demote instant per demotion, carrying the entry's task id and
// its retained byte count.
func TestHistoryDemoteEventEmitted(t *testing.T) {
	tr := obs.NewTrace(4096)
	cfg := Config{Threads: 2, HistoryCompress: true, CompressAfter: 1, Tracer: tr}
	_, stats, err := Run(cfg, initialState(), mixedTasks(12))
	if err != nil {
		t.Fatal(err)
	}
	var demotes int64
	for _, e := range tr.Events() {
		if e.Type != obs.EvHistoryDemote {
			continue
		}
		demotes++
		if e.Loc == "" {
			t.Fatalf("history.demote event missing task attribution: %+v", e)
		}
		if !strings.HasSuffix(e.Detail, "B") {
			t.Fatalf("history.demote Detail = %q, want a byte count", e.Detail)
		}
	}
	if demotes != stats.Demotions {
		t.Fatalf("trace holds %d history.demote events, stats report %d demotions",
			demotes, stats.Demotions)
	}
	if demotes == 0 {
		t.Fatal("no demotions recorded")
	}
}

// TestSerialEscalationDemotes drives every commit through the
// irrevocable-serial path (an always-conflicting detector with
// SerializeAfter=1) and checks that attemptSerial's publications demote
// like striped commits do.
func TestSerialEscalationDemotes(t *testing.T) {
	cfg := Config{
		Threads: 2, Detector: &alwaysConflict{}, SerializeAfter: 1,
		HistoryCompress: true, CompressAfter: 1,
	}
	tasks := []adt.Task{addTask(1), addTask(2), addTask(3), addTask(4), addTask(5)}
	got, stats, err := Run(cfg, initialState(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Get("work"); !v.EqualValue(state.Int(15)) {
		t.Fatalf("work = %v, want 15", v)
	}
	if stats.Escalations == 0 {
		t.Fatal("no commit escalated to serial mode; the test exercises nothing")
	}
	if stats.Demotions == 0 {
		t.Fatal("serial-path publications never demoted")
	}
}
