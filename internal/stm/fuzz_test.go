package stm

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/adt"
	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/state"
)

// randomTask builds a deterministic task performing a random mix of
// operations over a few shared locations.
func randomTask(rng *rand.Rand) adt.Task {
	type step struct {
		kind int
		loc  int
		arg  int64
		key  int
	}
	n := 1 + rng.Intn(6)
	steps := make([]step, n)
	for i := range steps {
		steps[i] = step{
			kind: rng.Intn(6),
			loc:  rng.Intn(3),
			arg:  int64(rng.Intn(9) - 4),
			key:  rng.Intn(4),
		}
	}
	return func(ex adt.Executor) error {
		for _, s := range steps {
			var err error
			switch s.kind {
			case 0:
				err = adt.Counter{L: fuzzCounterLoc(s.loc)}.Add(ex, s.arg)
			case 1:
				err = adt.Counter{L: fuzzCounterLoc(s.loc)}.Store(ex, s.arg)
			case 2:
				_, err = adt.Counter{L: fuzzCounterLoc(s.loc)}.Load(ex)
			case 3:
				err = adt.KVMap{L: "m"}.Put(ex, fmt.Sprintf("k%d", s.key), fmt.Sprintf("v%d", s.arg))
			case 4:
				_, _, err = adt.KVMap{L: "m"}.Get(ex, fmt.Sprintf("k%d", s.key))
			default:
				err = adt.BitSet{L: "b"}.Set(ex, s.key)
			}
			if err != nil {
				return err
			}
		}
		return nil
	}
}

func fuzzCounterLoc(i int) state.Loc { return state.Loc(fmt.Sprintf("c%d", i)) }

func fuzzState() *state.State {
	st := state.New()
	for i := 0; i < 3; i++ {
		st.Set(fuzzCounterLoc(i), state.Int(0))
	}
	st.Set("m", adt.NewRelValue())
	st.Set("b", adt.NewRelValue())
	return st
}

// TestFuzzOrderedSerializability: under ordered commits the final state
// must equal the sequential execution exactly, for random task mixes,
// with both detectors (trained and untrained).
func TestFuzzOrderedSerializability(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 25; trial++ {
		nTasks := 3 + rng.Intn(10)
		tasks := make([]adt.Task, nTasks)
		for i := range tasks {
			tasks[i] = randomTask(rng)
		}
		want, err := RunSequential(fuzzState(), tasks)
		if err != nil {
			t.Fatal(err)
		}
		engine := core.NewEngine(core.Options{})
		if err := engine.Train(fuzzState(), tasks); err != nil {
			t.Fatal(err)
		}
		dets := []conflict.Detector{conflict.NewWriteSet(), engine.Detector()}
		for _, det := range dets {
			for _, priv := range []Privatize{PrivatizeCopy, PrivatizePersistent} {
				got, stats, err := Run(Config{
					Threads:   4,
					Ordered:   true,
					Detector:  det,
					Privatize: priv,
				}, fuzzState(), tasks)
				if err != nil {
					t.Fatalf("trial %d %s/%v: %v", trial, det.Name(), priv, err)
				}
				if stats.Commits != int64(nTasks) {
					t.Fatalf("trial %d: commits=%d", trial, stats.Commits)
				}
				if !got.Equal(want) {
					t.Fatalf("trial %d %s/%v: ordered run diverged\ngot:  %s\nwant: %s",
						trial, det.Name(), priv, got, want)
				}
			}
		}
	}
}

// TestFuzzUnorderedCommutativeTasks: when every task is built from
// globally commutative operations (counter adds, same-value puts, bit
// sets), any commit order must equal the sequential state.
func TestFuzzUnorderedCommutativeTasks(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		nTasks := 4 + rng.Intn(12)
		tasks := make([]adt.Task, nTasks)
		for i := range tasks {
			adds := make([]int64, 1+rng.Intn(4))
			for j := range adds {
				adds[j] = int64(rng.Intn(9) - 4)
			}
			bit := rng.Intn(6)
			tasks[i] = func(ex adt.Executor) error {
				for _, a := range adds {
					if err := (adt.Counter{L: "c0"}).Add(ex, a); err != nil {
						return err
					}
				}
				if err := (adt.BitSet{L: "b"}).Set(ex, bit); err != nil {
					return err
				}
				return adt.KVMap{L: "m"}.Put(ex, "shared", "const")
			}
		}
		want, err := RunSequential(fuzzState(), tasks)
		if err != nil {
			t.Fatal(err)
		}
		engine := core.NewEngine(core.Options{})
		if err := engine.Train(fuzzState(), tasks[:2]); err != nil {
			t.Fatal(err)
		}
		got, _, err := Run(Config{Threads: 4, Detector: engine.Detector()}, fuzzState(), tasks)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("trial %d: commutative tasks diverged\ngot:  %s\nwant: %s", trial, got, want)
		}
	}
}

// TestFuzzUnorderedWriteSetIsSomeSerialOrder: under unordered commits with
// the conservative detector, the final state must equal the sequential
// execution of SOME permutation of the tasks. For tractability the trial
// sizes keep n! enumerable.
func TestFuzzUnorderedWriteSetIsSomeSerialOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		nTasks := 2 + rng.Intn(3) // ≤ 4! = 24 permutations
		tasks := make([]adt.Task, nTasks)
		for i := range tasks {
			tasks[i] = randomTask(rng)
		}
		got, _, err := Run(Config{Threads: 4, Detector: conflict.NewWriteSet()}, fuzzState(), tasks)
		if err != nil {
			t.Fatal(err)
		}
		if !matchesSomePermutation(t, tasks, got) {
			t.Fatalf("trial %d: final state matches no serial order: %s", trial, got)
		}
	}
}

func matchesSomePermutation(t *testing.T, tasks []adt.Task, got *state.State) bool {
	t.Helper()
	idx := make([]int, len(tasks))
	for i := range idx {
		idx[i] = i
	}
	var try func(perm []int, rest []int) bool
	try = func(perm, rest []int) bool {
		if len(rest) == 0 {
			ordered := make([]adt.Task, len(perm))
			for i, p := range perm {
				ordered[i] = tasks[p]
			}
			want, err := RunSequential(fuzzState(), ordered)
			if err != nil {
				t.Fatal(err)
			}
			return got.Equal(want)
		}
		for i := range rest {
			next := append(append([]int{}, perm...), rest[i])
			rem := append(append([]int{}, rest[:i]...), rest[i+1:]...)
			if try(next, rem) {
				return true
			}
		}
		return false
	}
	return try(nil, idx)
}
