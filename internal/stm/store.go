// The committed store: one atomic value box per shared location.
//
// Both privatization modes snapshot from — and publication merges into —
// the committed version of the shared state. An earlier revision kept
// that version as one immutable persistent map swapped wholesale per
// commit, which made every merge pay O(log n) HAMT path copies per
// written location and every fault a trie walk; on the allocation-bound
// commit path those path copies were the single largest allocation
// site. The box store flattens the version into a frozen Go map of
// per-location boxes (locations present in the initial state) plus a
// small persistent-map overflow for locations created mid-run: a merge
// is one atomic pointer store per written location and a fault is one
// map hit plus an atomic load, both lock-free.
//
// What the flattening gives up is cross-location snapshot atomicity:
// two faults by one transaction may observe values from different
// published prefixes. The protocol never needed more. Every faulted
// value is some published commit's value for that location; a commit
// whose published write the transaction could have observed necessarily
// overlaps the transaction's footprint, so it is either at or below the
// validated fetch watermark (its entry was detected against) or above
// it (caught by the commit-time signature screen, which sends the
// attempt back to re-detection). Replay recomputes every operation
// against the stripe-protected committed values at publication time, so
// observed execution values never leak into the committed state.
package stm

import (
	"sync/atomic"

	"repro/internal/state"
)

// locBox holds one location's committed value. A nil pointer means the
// location has no committed value yet (an overflow box becomes visible
// before its creating commit's merge stores into it).
type locBox struct {
	v atomic.Pointer[state.Value]
}

// storeGet is the committed store's read: base-table hit or overflow
// lookup, then one atomic load. It is the fault function behind both
// privatization modes and the replay overlay.
func (r *Runtime) storeGet(l state.Loc) (state.Value, bool) {
	b := r.base[l]
	if b == nil {
		if ov := r.over.Load(); ov != nil {
			b, _ = ov.Get(string(l))
		}
		if b == nil {
			return nil, false
		}
	}
	p := b.v.Load()
	if p == nil {
		return nil, false
	}
	return *p, true
}

// storeSet publishes one location's committed value. Callers are
// serialized (publication turn or the global write lock), so growing the
// overflow map is a plain load-set-store; concurrent readers see either
// the old overflow (location absent) or the new one.
func (r *Runtime) storeSet(l state.Loc, v state.Value) {
	b := r.base[l]
	if b == nil {
		ov := r.over.Load()
		b, _ = ov.Get(string(l))
		if b == nil {
			b = new(locBox)
			r.over.Store(ov.Set(string(l), b))
		}
	}
	b.v.Store(&v)
}

// storeRange visits every location with a committed value. It is not an
// atomic snapshot across locations (see the package comment); the
// callers that need one — finalState, copy-mode begin — run when the
// store is quiescent for their purposes (run drained, or any
// mid-materialization publication is screened/validated later).
func (r *Runtime) storeRange(f func(l state.Loc, v state.Value) bool) {
	for l, b := range r.base {
		if p := b.v.Load(); p != nil {
			if !f(l, *p) {
				return
			}
		}
	}
	if ov := r.over.Load(); ov != nil {
		ov.Range(func(k string, b *locBox) bool {
			if p := b.v.Load(); p != nil {
				return f(state.Loc(k), *p)
			}
			return true
		})
	}
}
