// Package stm implements the JANUS parallelization protocol of Figure 7:
// optimistic transactions over privatized shared state, a global version
// clock, conflict detection against the committed history, log replay at
// commit, and ordered or unordered commit modes. Theorem 4.1's
// termination and serializability guarantees hold for any sound and
// valid detector.
//
// Two privatization strategies are provided (§4.1 "Versioning"): naive
// deep copying of the shared state at transaction begin — what the
// paper's prototype did — and copy-on-access over a fully persistent map
// (internal/persist), the improvement the paper proposes. Both snapshot
// from one immutable committed version, so transaction begin never
// blocks on the commit path.
//
// Commits are striped, not globally locked (see commit.go): a committer
// locks only the stripes covering its footprint, replays into a private
// overlay, and publishes in commit-time order through a sequencer.
// Footprint-disjoint transactions commit concurrently; the paper's
// global write lock survives only for serial escalation.
package stm

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adt"
	"repro/internal/conflict"
	"repro/internal/obs"
	"repro/internal/oplog"
	"repro/internal/persist"
	"repro/internal/state"
)

// Privatize selects the state-privatization strategy.
type Privatize int

// Privatization modes.
const (
	// PrivatizeCopy deep-copies the entire shared state at transaction
	// begin (the paper prototype's "naive fashion").
	PrivatizeCopy Privatize = iota
	// PrivatizePersistent snapshots a fully persistent map in O(1) and
	// faults locations in on first access.
	PrivatizePersistent
)

// String renders the mode.
func (p Privatize) String() string {
	if p == PrivatizePersistent {
		return "persistent"
	}
	return "copy"
}

// Backoff configures contention management between retry attempts: after
// an abort the task sleeps before re-executing, with an exponentially
// growing, jittered, bounded wait, instead of immediately re-running
// speculation that is statistically likely to abort again. The jitter is
// a pure function of (task, attempt) — not a shared PRNG — so two runs
// back off identically and tests are reproducible, while distinct tasks
// still decorrelate.
type Backoff struct {
	// Base is the wait ceiling after the first abort; 0 disables backoff
	// (the attempt retries immediately, the pre-contention-management
	// behavior).
	Base time.Duration
	// Max bounds the exponential growth; 0 means 64×Base.
	Max time.Duration
}

// wait returns the jittered sleep before retry number attempt (1-based),
// drawn from [ceil/2, ceil) where ceil = min(Base<<(attempt-1), Max).
func (b Backoff) wait(task, attempt int) time.Duration {
	if b.Base <= 0 || attempt <= 0 {
		return 0
	}
	max := b.Max
	if max <= 0 {
		max = 64 * b.Base
	}
	ceil := b.Base
	for i := 1; i < attempt && ceil < max; i++ {
		ceil *= 2
	}
	if ceil > max {
		ceil = max
	}
	half := ceil / 2
	if span := ceil - half; span > 0 {
		half += time.Duration(mix64(uint64(task)<<32^uint64(attempt)) % uint64(span))
	}
	return half
}

// mix64 is the splitmix64 finalizer: a full-avalanche hash used for
// deterministic backoff jitter.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hooks are optional fault-injection points for robustness testing (see
// internal/chaos). Production runs leave them nil; every call site costs
// one nil check. The runtime's guarantees (serializability, termination)
// must hold under any combination of injected faults — that invariant is
// what the chaos soak tests assert.
type Hooks struct {
	// ForceAbort is consulted once per validation pass with the
	// transaction's (task, attempt); returning true aborts the attempt as
	// if the detector had found a conflict (abort reason "injected").
	ForceAbort func(task, attempt int) bool
	// WindowDelay runs after a successful validation and before the
	// commit attempt, with no locks held — it widens the detect-to-commit
	// race window that the commit-time clock re-check guards.
	WindowDelay func(task int)
	// CommitDelay runs inside the commit critical section (footprint
	// stripes held, race screen passed), before the log replays — it
	// stretches the commit window every overlapping transaction races
	// against, and lets tests observe which commits replay concurrently.
	CommitDelay func(task int)
}

// Governor is the runtime-health feedback hook (see internal/health): the
// runtime consults SerialOnly before each attempt and feeds protocol
// signals (commits, waits, escalations) back through the Observe methods,
// closing the loop that lets a health controller demote detection or
// force serial execution at run scope. Implementations must be safe for
// concurrent use; a nil Governor disables governance.
type Governor interface {
	// SerialOnly reports whether every transaction must escalate straight
	// to irrevocable serial execution (the governor's tripped state).
	SerialOnly() bool
	// ObserveCommit records one committed transaction.
	ObserveCommit()
	// ObserveCommitWait records time spent waiting for a commit turn
	// (ordered mode) or for history backpressure to clear.
	ObserveCommitWait(d time.Duration)
	// ObserveBackoff records one contention-management backoff sleep.
	ObserveBackoff(d time.Duration)
	// ObserveEscalation records one serial escalation.
	ObserveEscalation()
}

// CommitSink receives every committed transaction's operation log — the
// record half of record/replay (see internal/rec). ObserveCommitted runs
// inside the commit's publication turn (serial escalations call it with
// the global write lock held), so calls arrive in strictly increasing
// commitTime order across all workers — the serialization order — and
// the logs replayed in that order over the initial state reconstruct the
// final state. The flip side of the ordering guarantee: a slow sink
// stalls every later commit, so implementations must return promptly.
// The log is the transaction's live slice: implementations must not
// retain it past the call. A nil sink costs one branch per commit.
type CommitSink interface {
	ObserveCommitted(task int, commitTime int64, log oplog.Log)
}

// Config parameterizes a Runtime.
type Config struct {
	// Threads is the worker count; 0 means GOMAXPROCS.
	Threads int
	// Ordered makes commits follow task order (runInOrder vs
	// runOutOfOrder in the prototype's API).
	Ordered bool
	// Detector is the conflict-detection algorithm; nil means write-set.
	Detector conflict.Detector
	// Privatize selects the snapshot strategy.
	Privatize Privatize
	// MaxRetries aborts the run when one task retries this many times
	// (a liveness guard for tests; 0 means unlimited, per Theorem 4.1
	// termination is guaranteed anyway).
	MaxRetries int
	// ReclaimLogs drops committed history entries no running transaction
	// can need (commitTime ≤ min Begin of active transactions). The
	// paper notes its prototype "doesn't reclaim the logs of garbage
	// transactions"; this implements that engineering improvement.
	ReclaimLogs bool
	// Tracer receives protocol events (task/transaction spans, abort
	// reasons, commit waits) when non-nil; see internal/obs. A nil
	// tracer costs a single branch per event site — the hot path does
	// not allocate.
	Tracer obs.Tracer
	// Backoff configures bounded exponential retry backoff with jitter
	// after aborts; the zero value retries immediately.
	Backoff Backoff
	// SerializeAfter escalates a transaction to irrevocable serial mode
	// after this many consecutive aborts: it takes the global write lock,
	// re-executes alone, and commits unconditionally, so progress is
	// guaranteed under pathological contention instead of burning CPU on
	// doomed speculation. 0 never escalates.
	SerializeAfter int
	// Hooks are fault-injection points (tests only); nil in production.
	Hooks *Hooks
	// Governor, when non-nil, receives run-health signals (commits,
	// waits, escalations) and can force serial-only execution; see the
	// Governor interface and internal/health.
	Governor Governor
	// MaxHistory bounds the committed-history length: a commit that would
	// grow the history past the bound first forces a reclamation pass and
	// then stalls until active transactions advance past the old entries
	// (Stats.CommitStalls counts these). The stall is context-aware — a
	// run failure or cancellation wakes it. 0 means unbounded (the
	// pre-existing behavior).
	MaxHistory int
	// MaxTxnOps bounds a single transaction's operation log: an Exec past
	// the budget refuses the op with *OplogBudgetError instead of growing
	// the log without bound. A task that propagates the error (the normal
	// contract) fails the run with it. 0 means unlimited.
	MaxTxnOps int
	// HistoryCompress demotes committed-history entries that age out of
	// the recent window to compact compressed records
	// (conflict.Prepared.Compress): the entry's event log and materialized
	// arenas are dropped and detectors screen the record by footprint
	// signature, decoding a subsequence only on overlap — so a long
	// history retains O(locations) bytes per old entry instead of O(ops).
	// Verdicts are unchanged except under Config-level Online detection,
	// whose concrete check degrades to the sound write-set fallback
	// against compressed entries. Off by default.
	HistoryCompress bool
	// CompressAfter is the number of most-recent committed entries kept in
	// full form under HistoryCompress; entries older than that are demoted
	// as commits publish. 0 means DefaultCompressAfter. Ignored unless
	// HistoryCompress is set.
	CompressAfter int
	// Record receives each committed transaction's op log (see
	// CommitSink); nil disables recording at the cost of one branch.
	Record CommitSink
	// CommitStripes sets the commit-path location lock table size; a
	// commit locks the stripes its footprint hashes into, so only
	// transactions whose footprints collide serialize their replays.
	// More stripes mean fewer false collisions at a few cache lines of
	// cost. 0 means DefaultCommitStripes; 1 degenerates to the paper's
	// single commit lock.
	CommitStripes int
}

// Stats reports a run's behavior. The JSON tags are the RunReport schema
// (internal/bench); every field must carry one so new counters cannot
// silently drop out of `-json` output (asserted by a schema test).
type Stats struct {
	Tasks     int   `json:"tasks"`
	Commits   int64 `json:"commits"`
	Retries   int64 `json:"retries"`   // aborted execution attempts
	Conflicts int64 `json:"conflicts"` // conflict detections that failed
	Reclaimed int64 `json:"reclaimed"` // history entries reclaimed
	MaxHist   int64 `json:"max_hist"`  // peak committed-history length
	// BackoffWaits counts backoff sleeps taken between retry attempts.
	BackoffWaits int64 `json:"backoff_waits"`
	// Escalations counts transactions that ran in irrevocable serial
	// mode after SerializeAfter consecutive aborts.
	Escalations int64 `json:"escalations"`
	// CommitStalls counts commits that hit the MaxHistory bound and
	// waited for reclamation to make room.
	CommitStalls int64 `json:"commit_stalls"`
	// ValidationsSkipped counts committed-history entries the incremental
	// detect/commit loop did NOT re-validate because a previous pass of
	// the same attempt had already cleared them (committed logs are
	// immutable, so per-entry verdicts are final): the rework the
	// pre-watermark loop would have paid after every lost commit race.
	ValidationsSkipped int64 `json:"validations_skipped"`
	// Demotions counts committed-history entries compressed to compact
	// records under Config.HistoryCompress.
	Demotions int64 `json:"demotions"`
	// HistBytes is the retained size of the currently compressed history
	// entries, in bytes — a gauge: demotion adds an entry's record size,
	// reclamation subtracts it. Always 0 without HistoryCompress.
	HistBytes int64 `json:"hist_bytes"`
	// AbortReasons breaks Conflicts down by the detector check that
	// failed (reason name → count); nil when no conflicts occurred.
	AbortReasons map[string]int64 `json:"abort_reasons,omitempty"`
}

// RetryRatio returns the Figure 10 metric: retries per transaction.
func (s Stats) RetryRatio() float64 {
	if s.Tasks == 0 {
		return 0
	}
	return float64(s.Retries) / float64(s.Tasks)
}

// histEntry is one committed transaction's contribution to the history:
// the log's detection artifact, prepared exactly once at commit time
// (conflict.Prepare) and shared read-only by every concurrent detector.
type histEntry struct {
	commitTime int64 // the commit's sequencer ticket
	task       int
	prep       *conflict.Prepared
	// sigAll/sigWrite are the entry's footprint overlap signatures
	// (footprintSigs): later commits use them to screen, without
	// re-detection, whether an entry that published mid-attempt could
	// possibly share a location with them.
	sigAll   uint64
	sigWrite uint64
}

// Runtime executes one task set. It is single-use.
type Runtime struct {
	cfg      Config
	detector conflict.Detector

	// lock is the paper's global read-write lock, demoted by the striped
	// commit path to one job: optimistic commits hold the read side
	// while ticketed — so they overlap each other freely — and serial
	// escalation takes the write side to run truly alone.
	lock  sync.RWMutex
	clock atomic.Int64 // commit-time ticket counter, initialized to 1

	// published is the commit sequencer's watermark: the highest commit
	// time whose publication (version merge + history append) has
	// completed. Begin snapshots, fetch watermarks, ordered commit
	// turns, and the reclamation floor all read published, never clock —
	// tickets run ahead of visible history.
	published atomic.Int64
	seqMu     sync.Mutex
	// seqWaiters parks goroutines per awaited watermark value
	// (waitPublished); published advances by exactly one per
	// publication, so each advance wakes precisely the waiters
	// registered for the new value.
	seqWaiters map[int64][]chan struct{}

	// stripes is the commit-path location lock table (commit.go).
	stripes []sync.RWMutex

	// base and over form the committed shared state (see store.go): a
	// frozen table of per-location atomic value boxes for the initial
	// locations, plus a persistent-map overflow for locations created
	// mid-run. Both privatization modes fault from it without locking;
	// publication merges written locations into it in commit order, one
	// atomic store each.
	base map[state.Loc]*locBox
	over atomic.Pointer[persist.Map[*locBox]]

	histMu  sync.Mutex
	history []histEntry
	// begins tracks active transactions' begin times for reclamation.
	begins map[int]int64
	// histReserved counts MaxHistory slots claimed by ticketed commits
	// that have not appended yet (reserveHistorySlot), so concurrent
	// commits cannot overshoot the bound between check and append.
	histReserved int

	commitCond *sync.Cond // broadcast on publication (MaxHistory waiters)

	tracer obs.Tracer

	stats        Stats
	abortReasons [conflict.NumReasons]int64

	// opsSum/opsCnt maintain a run-scope running average of operations
	// per executed transaction body; createTransaction preallocates
	// Tx.log capacity from it to cut append regrowth in Tx.Exec.
	opsSum atomic.Int64
	opsCnt atomic.Int64

	errOnce sync.Once
	err     error
	done    chan struct{}
}

// New builds a runtime over a deep copy of the initial state.
func New(cfg Config, initial *state.State) *Runtime {
	if cfg.Detector == nil {
		cfg.Detector = conflict.NewWriteSet()
	}
	if cfg.Threads <= 0 {
		cfg.Threads = runtime.GOMAXPROCS(0)
	}
	r := &Runtime{
		cfg:        cfg,
		detector:   cfg.Detector,
		tracer:     cfg.Tracer,
		begins:     make(map[int]int64),
		seqWaiters: make(map[int64][]chan struct{}),
		done:       make(chan struct{}),
	}
	r.clock.Store(1)
	r.published.Store(1)
	r.commitCond = sync.NewCond(&r.histMu)
	n := cfg.CommitStripes
	if n <= 0 {
		n = DefaultCommitStripes
	}
	r.stripes = make([]sync.RWMutex, n)
	locs := initial.Locs()
	r.base = make(map[state.Loc]*locBox, len(locs))
	for _, loc := range locs {
		v, _ := initial.Get(loc)
		b := new(locBox)
		cl := v.CloneValue()
		b.v.Store(&cl)
		r.base[loc] = b
	}
	r.over.Store(persist.NewMap[*locBox]())
	return r
}

// Run executes the tasks to completion and returns the final shared state
// and run statistics. It is DOPARALLEL of Figure 7.
func Run(cfg Config, initial *state.State, tasks []adt.Task) (*state.State, Stats, error) {
	return RunCtx(context.Background(), cfg, initial, tasks)
}

// RunCtx is Run with cancellation: when ctx is canceled or its deadline
// passes, in-flight transactions abort at their next protocol step
// (attempt boundary, validation loop, backoff sleep), ordered-mode
// waiters are woken, the workers drain cleanly, and the context's cause
// is returned (errors.Is against context.Canceled/DeadlineExceeded
// works). A task body that never returns cannot be preempted — Go offers
// no goroutine kill — so cancellation latency is bounded by the longest
// single task execution.
func RunCtx(ctx context.Context, cfg Config, initial *state.State, tasks []adt.Task) (*state.State, Stats, error) {
	r := New(cfg, initial)
	if ctx.Done() != nil {
		// An already-expired context fails synchronously: AfterFunc runs
		// its callback on a fresh goroutine, which a fast run could
		// otherwise race past.
		if ctx.Err() != nil {
			return nil, r.statsSnapshot(), fmt.Errorf("stm: run canceled: %w", context.Cause(ctx))
		}
		stop := context.AfterFunc(ctx, func() {
			r.fail(fmt.Errorf("stm: run canceled: %w", context.Cause(ctx)))
		})
		defer stop()
	}
	return r.run(tasks)
}

// RetryLimitError is what a run fails with when one transaction exhausts
// Config.MaxRetries: the task id and the retry count it hit. It is
// distinct from a task-body error — the task itself never failed, the
// liveness guard cut off its speculation — so callers (status mapping in
// a serving layer, retry policies) can treat it as retryable congestion
// rather than a permanent workload fault. Unwrap it with errors.As.
type RetryLimitError struct {
	Task    int // transaction id
	Retries int // aborted attempts when the guard fired (== Config.MaxRetries)
}

// Error implements error, preserving the historical message shape.
func (e *RetryLimitError) Error() string {
	return fmt.Sprintf("task %d exceeded %d retries", e.Task, e.Retries)
}

// PanicError is what a recovered task panic converts to: the task id, the
// panic value, and the goroutine stack captured at the panic site. One
// panicking task fails the run with this error instead of tearing down
// the whole process.
type PanicError struct {
	Task  int
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("task %d panicked: %v", e.Task, e.Value)
}

// runTaskBody executes one task body, converting a panic into a
// *PanicError. The recover runs on the worker's goroutine at panic time,
// so the captured stack names the panic site inside the task.
func runTaskBody(task adt.Task, ex adt.Executor, tid int) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Task: tid, Value: p, Stack: debug.Stack()}
		}
	}()
	return task(ex)
}

// RunSequential executes the tasks one at a time without synchronization,
// the paper's sequential baseline. The initial state is not mutated. Task
// panics are recovered and returned as *PanicError, matching Run.
func RunSequential(initial *state.State, tasks []adt.Task) (*state.State, error) {
	st := initial.Clone()
	ex := &directExec{st: st}
	for i, t := range tasks {
		if err := runTaskBody(t, ex, i+1); err != nil {
			return nil, fmt.Errorf("stm: sequential task %d: %w", i+1, err)
		}
	}
	return st, nil
}

// directExec applies ops with no logging or synchronization.
type directExec struct{ st *state.State }

// Exec implements adt.Executor.
func (d *directExec) Exec(op oplog.Op) (state.Value, error) { return op.Apply(d.st) }

func (r *Runtime) fail(err error) {
	r.errOnce.Do(func() {
		r.err = err
		close(r.done)
		// Wake ordered waiters so they observe the failure.
		r.histMu.Lock()
		r.commitCond.Broadcast()
		r.histMu.Unlock()
	})
}

func (r *Runtime) failed() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// runErr returns the failure, if any. The read of r.err is ordered by the
// done-channel close (fail writes err, then closes), which matters now
// that fail can be called from a context watcher goroutine the WaitGroup
// never joins.
func (r *Runtime) runErr() error {
	select {
	case <-r.done:
		return r.err
	default:
		return nil
	}
}

func (r *Runtime) run(tasks []adt.Task) (*state.State, Stats, error) {
	r.stats.Tasks = len(tasks)
	next := make(chan int, len(tasks))
	for i := range tasks {
		next <- i
	}
	close(next)
	var wg sync.WaitGroup
	for w := 0; w < r.cfg.Threads; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// Backstop: task-body panics are recovered in runTaskBody
			// with the task's identity; this catches panics in the
			// protocol code itself so a bug here fails the run (waking
			// ordered-mode waiters via fail's broadcast) rather than
			// killing the process with peers blocked on commitCond.
			current := 0
			defer func() {
				if p := recover(); p != nil {
					r.fail(fmt.Errorf("stm: worker %d: %w",
						worker, &PanicError{Task: current, Value: p, Stack: debug.Stack()}))
				}
			}()
			for idx := range next {
				current = idx + 1
				if r.failed() {
					return
				}
				r.runTask(tasks[idx], idx+1, worker)
			}
		}(w)
	}
	wg.Wait()
	if err := r.runErr(); err != nil {
		return nil, r.statsSnapshot(), err
	}
	return r.finalState(), r.statsSnapshot(), nil
}

func (r *Runtime) statsSnapshot() Stats {
	s := Stats{
		Tasks:        r.stats.Tasks,
		Commits:      atomic.LoadInt64(&r.stats.Commits),
		Retries:      atomic.LoadInt64(&r.stats.Retries),
		Conflicts:    atomic.LoadInt64(&r.stats.Conflicts),
		Reclaimed:    atomic.LoadInt64(&r.stats.Reclaimed),
		MaxHist:      atomic.LoadInt64(&r.stats.MaxHist),
		BackoffWaits: atomic.LoadInt64(&r.stats.BackoffWaits),
		Escalations:  atomic.LoadInt64(&r.stats.Escalations),
		CommitStalls: atomic.LoadInt64(&r.stats.CommitStalls),

		ValidationsSkipped: atomic.LoadInt64(&r.stats.ValidationsSkipped),
		Demotions:          atomic.LoadInt64(&r.stats.Demotions),
		HistBytes:          atomic.LoadInt64(&r.stats.HistBytes),
	}
	for reason := conflict.Reason(1); reason < conflict.NumReasons; reason++ {
		if n := atomic.LoadInt64(&r.abortReasons[reason]); n > 0 {
			if s.AbortReasons == nil {
				s.AbortReasons = make(map[string]int64)
			}
			s.AbortReasons[reason.String()] = n
		}
	}
	return s
}

// finalState materializes the committed shared state.
func (r *Runtime) finalState() *state.State {
	out := state.New()
	r.storeRange(func(l state.Loc, v state.Value) bool {
		out.Set(l, v.CloneValue())
		return true
	})
	return out
}

// runTask is RUNTASK of Figure 7: retry until commit. The whole service
// time (all attempts through the successful commit) is traced as one
// EvTask span on the worker's lane. Contention management wraps the
// retry loop: aborted attempts back off with bounded exponential jitter
// (Config.Backoff), and after Config.SerializeAfter consecutive aborts
// the transaction escalates to irrevocable serial mode, which cannot
// abort — so retries per transaction are bounded by SerializeAfter even
// against an adversarial detector.
func (r *Runtime) runTask(task adt.Task, tid, worker int) {
	ctx := obs.Ctx{T: r.tracer, Worker: int32(worker), Task: int32(tid)}
	gov := r.cfg.Governor
	start := ctx.Now()
	retries := 0
	for {
		if r.failed() {
			return
		}
		ctx.Attempt = int32(retries + 1)
		var committed bool
		var err error
		serial := r.cfg.SerializeAfter > 0 && retries >= r.cfg.SerializeAfter
		if gov != nil && gov.SerialOnly() {
			serial = true // governor tripped: run-wide serial escalation
		}
		if serial {
			committed, err = r.attemptSerial(ctx, task, tid)
		} else {
			committed, err = r.attempt(ctx, task, tid)
		}
		if err != nil {
			r.fail(fmt.Errorf("stm: task %d: %w", tid, err))
			return
		}
		if committed {
			atomic.AddInt64(&r.stats.Commits, 1)
			if gov != nil {
				gov.ObserveCommit()
			}
			ctx.End(obs.EvTask, start)
			return
		}
		if r.failed() {
			return
		}
		atomic.AddInt64(&r.stats.Retries, 1)
		retries++
		if r.cfg.MaxRetries > 0 && retries >= r.cfg.MaxRetries {
			r.fail(fmt.Errorf("stm: %w", &RetryLimitError{Task: tid, Retries: retries}))
			return
		}
		if wait := r.cfg.Backoff.wait(tid, retries); wait > 0 {
			atomic.AddInt64(&r.stats.BackoffWaits, 1)
			if gov != nil {
				gov.ObserveBackoff(wait)
			}
			waitStart := ctx.Now()
			if !r.sleep(wait) {
				return // run failed or canceled mid-backoff
			}
			ctx.End(obs.EvTxBackoff, waitStart)
		}
	}
}

// sleep blocks for d or until the run fails/cancels, reporting whether
// the full wait elapsed.
func (r *Runtime) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-r.done:
		return false
	}
}

// OplogBudgetError is what Tx.Exec returns once a transaction's
// operation log reaches Config.MaxTxnOps: the op is refused so a single
// runaway task cannot grow its private log without bound. A task that
// propagates it (the adt.Task contract) fails the run with this error,
// recoverable via errors.As.
type OplogBudgetError struct {
	Task   int // transaction id
	Ops    int // ops already logged
	Budget int // Config.MaxTxnOps
}

// Error implements error.
func (e *OplogBudgetError) Error() string {
	return fmt.Sprintf("task %d oplog budget exceeded: %d ops logged, budget %d", e.Task, e.Ops, e.Budget)
}

// Tx is a running transaction; it implements adt.Executor by applying ops
// to the privatized state and logging them.
type Tx struct {
	tid    int
	begin  int64
	priv   *state.State // SharedPrivatized
	snap   *state.State // SharedSnapshot
	log    oplog.Log
	maxOps int // Config.MaxTxnOps; 0 = unlimited

	// evSlab backs the log's events in batches: Exec appends into the
	// current slab and logs a pointer to the slab element, one allocation
	// per batch instead of one per operation. A full slab is abandoned in
	// place (logged pointers keep it alive) and a doubled one starts.
	evSlab []oplog.Event

	// Commit-path scratch (commit.go): the sorted stripe set and overlap
	// signatures of the attempt's footprint, planned per commit attempt.
	stripes    []stripeRef
	stripesBuf [8]stripeRef
	sigAll     uint64
	sigWrite   uint64
}

// Exec implements adt.Executor.
func (t *Tx) Exec(op oplog.Op) (state.Value, error) {
	if t.maxOps > 0 && len(t.log) >= t.maxOps {
		return nil, &OplogBudgetError{Task: t.tid, Ops: len(t.log), Budget: t.maxOps}
	}
	acc := op.Accesses(t.priv)
	v, err := op.Apply(t.priv)
	if err != nil {
		return nil, err
	}
	if len(t.evSlab) == cap(t.evSlab) {
		n := 2 * cap(t.evSlab)
		if n == 0 {
			n = 8
		}
		t.evSlab = make([]oplog.Event, 0, n)
	}
	t.evSlab = append(t.evSlab, oplog.Event{
		Op: op, Task: t.tid, Seq: len(t.log), Acc: acc, Observed: v,
	})
	t.log = append(t.log, &t.evSlab[len(t.evSlab)-1])
	return v, nil
}

// Log returns the transaction's operation log (for tests and tracing).
func (t *Tx) Log() oplog.Log { return t.log }

// attempt executes one transaction attempt: CREATETRANSACTION,
// RUNSEQUENTIAL, ordered wait, then the detect/commit loop.
func (r *Runtime) attempt(ctx obs.Ctx, task adt.Task, tid int) (committed bool, err error) {
	tx := r.createTransaction(tid)
	defer r.dropBegin(tid)
	ctx.Instant(obs.EvTxBegin)

	runStart := ctx.Now()
	if err := runTaskBody(task, tx, tid); err != nil {
		return false, err
	}
	ctx.End(obs.EvTxRun, runStart)
	r.recordOps(len(tx.log))

	// The transaction's own log is prepared once per attempt — not once
	// per detection call — so every pass of the detect/commit loop below
	// reuses the same decomposition and memoized shapes. If the commit
	// succeeds, the same artifact becomes the history entry, making the
	// commit-time preparation free; otherwise the attempt is the
	// artifact's only owner and its buffers go back to the pool.
	prep := conflict.PreparePooled(tx.log)
	published := false
	defer func() {
		if !published {
			prep.Recycle()
		}
	}()

	// The conflict history grows monotonically while the transaction
	// retries the detect/commit loop (reclamation never touches entries
	// newer than an active transaction's begin), so each iteration fetches
	// only the entries that committed since the previous attempt's
	// snapshot instead of recopying the whole (begin, now] window.
	var opsC []*conflict.Prepared
	seen := tx.begin

	// validated is the incremental watermark: opsC[:validated] passed a
	// clean detection earlier in this attempt. Committed logs are
	// immutable and per-entry verdicts compose (see conflict.Detector),
	// so those verdicts are final — after a lost commit race only the
	// entries that committed since the last clean pass are checked.
	validated := 0

	if r.cfg.Ordered {
		// Wait until all preceding tasks fully published: published ==
		// tid. Under MaxHistory the waiter parks on commitCond and drains
		// the history incrementally on every wakeup, advancing its begin
		// watermark — otherwise its stale begin would pin the whole
		// window and deadlock a predecessor stalled on the history bound.
		// Without MaxHistory it registers on the commit sequencer's
		// waiter table instead and is woken exactly once, by its
		// predecessor's publication — the O(1) "may I commit?" query, no
		// broadcast storm across all waiting tasks.
		waitStart := ctx.Now()
		var govStart time.Time
		if r.cfg.Governor != nil {
			govStart = time.Now()
		}
		if r.cfg.MaxHistory > 0 {
			r.histMu.Lock()
			for r.published.Load() != int64(tid) && !r.failed() {
				seen = r.drainLocked(tid, seen, &opsC)
				r.commitCond.Wait()
			}
			r.histMu.Unlock()
		} else {
			r.waitPublished(int64(tid))
		}
		if gov := r.cfg.Governor; gov != nil {
			gov.ObserveCommitWait(time.Since(govStart))
		}
		ctx.End(obs.EvCommitWait, waitStart)
		if r.failed() {
			return false, nil
		}
	}

	for {
		if r.failed() {
			return false, nil
		}
		now := r.published.Load()
		if now > seen {
			opsC = r.committedHistory(opsC, seen, now)
			seen = now
			if r.cfg.MaxHistory > 0 {
				// Everything up to seen is copied into opsC; advance the
				// begin watermark so reclamation (and the MaxHistory
				// backpressure that depends on it) can move past it.
				r.advanceBegin(tid, seen)
			}
		}
		if h := r.cfg.Hooks; h != nil && h.ForceAbort != nil && h.ForceAbort(tid, int(ctx.Attempt)) {
			atomic.AddInt64(&r.abortReasons[conflict.ReasonInjected], 1)
			ctx.Abort(conflict.ReasonInjected.String(), "", "")
			return false, nil
		}
		valStart := ctx.Now()
		if validated > 0 {
			atomic.AddInt64(&r.stats.ValidationsSkipped, int64(validated))
		}
		verdict := r.detector.DetectPrepared(ctx, tx.snap, prep, opsC[validated:])
		ctx.End(obs.EvTxValidate, valStart)
		if !verdict.Conflict {
			validated = len(opsC)
		}
		if verdict.Conflict {
			atomic.AddInt64(&r.stats.Conflicts, 1)
			atomic.AddInt64(&r.abortReasons[verdict.Reason], 1)
			if ctx.Enabled() {
				detail := ""
				if verdict.ShapeT != "" || verdict.ShapeC != "" {
					detail = "[" + verdict.ShapeT + "] vs [" + verdict.ShapeC + "]"
				}
				ctx.Abort(verdict.Reason.String(), string(verdict.P), detail)
			}
			return false, nil // abort; RUNTASK retries from scratch
		}
		if h := r.cfg.Hooks; h != nil && h.WindowDelay != nil {
			h.WindowDelay(tid)
		}
		commitStart := ctx.Now()
		res := r.commit(ctx, tx, prep, seen)
		switch res {
		case commitOK:
			published = true
			ctx.End(obs.EvTxCommit, commitStart)
			return true, nil
		case commitFailed:
			// The run is dead (replay error or external failure): the
			// attempt is doomed, so return without re-entering the retry
			// loop — a doomed retry would burn a backoff sleep and a
			// validation pass before noticing.
			return false, nil
		case commitStall:
			// The history bound, not a conflict: wait for reclamation to
			// make room, then re-detect (the history may have evolved
			// while stalled).
			var govStart time.Time
			if r.cfg.Governor != nil {
				govStart = time.Now()
			}
			r.stallForHistory()
			if gov := r.cfg.Governor; gov != nil {
				gov.ObserveCommitWait(time.Since(govStart))
			}
			ctx.End(obs.EvCommitWait, commitStart)
		default: // commitRace
			// History evolved between detection and commit: re-detect.
			// The lost race is commit-queue contention, not a conflict.
			ctx.End(obs.EvCommitWait, commitStart)
		}
	}
}

// recordOps feeds one executed transaction body's op count into the
// running ops-per-transaction average behind logCapHint.
func (r *Runtime) recordOps(n int) {
	r.opsSum.Add(int64(n))
	r.opsCnt.Add(1)
}

// maxLogCapHint bounds the preallocation so one outlier transaction
// cannot make every later transaction over-allocate.
const maxLogCapHint = 1 << 14

// logCapHint returns the Tx.log capacity to preallocate: the running
// average of ops per executed transaction body (rounded up), bounded by
// MaxTxnOps and maxLogCapHint. 0 — before any sample — lets append grow
// the log organically.
func (r *Runtime) logCapHint() int {
	cnt := r.opsCnt.Load()
	if cnt == 0 {
		return 0
	}
	hint := int((r.opsSum.Load() + cnt - 1) / cnt)
	if r.cfg.MaxTxnOps > 0 && hint > r.cfg.MaxTxnOps {
		hint = r.cfg.MaxTxnOps
	}
	if hint > maxLogCapHint {
		hint = maxLogCapHint
	}
	return hint
}

// createTransaction is CREATETRANSACTION of Figure 7, without the
// paper's read lock: the committed version is an immutable map, so the
// snapshot is a pointer read (persistent mode) or a lock-free
// materialization (copy mode) — begin never blocks on the commit path.
func (r *Runtime) createTransaction(tid int) *Tx {
	// Read the begin watermark and register it under histMu in one step:
	// once begins[tid] is visible, reclamation cannot drop entries newer
	// than begin, so the fetch loop is guaranteed to see everything the
	// snapshot missed. Reading published before registering would let a
	// concurrent publish-and-reclaim drop an entry this transaction
	// still needs to validate against.
	r.histMu.Lock()
	begin := r.published.Load()
	r.begins[tid] = begin
	r.histMu.Unlock()
	return r.newTx(tid, begin)
}

// newTx builds a transaction whose private and snapshot views privatize
// the committed store. Faults read the store live (per-location, after
// begin was fixed), so every observed value reflects a commit at some
// published time ≥ what begin guarantees; values from commits past the
// validated fetch watermark are screened or re-detected at commit (see
// store.go), never silently trusted.
func (r *Runtime) newTx(tid int, begin int64) *Tx {
	tx := &Tx{tid: tid, begin: begin, maxOps: r.cfg.MaxTxnOps}
	if hint := r.logCapHint(); hint > 0 {
		tx.log = make(oplog.Log, 0, hint)
		tx.evSlab = make([]oplog.Event, 0, hint)
	}
	fault := r.storeGet
	if r.cfg.Privatize == PrivatizePersistent {
		tx.priv = state.NewFaulting(fault)
	} else {
		// The paper prototype's "naive fashion": the private view is an
		// eager deep copy of the whole committed state. The detection
		// snapshot stays a faulting view in both modes — it is protocol
		// infrastructure, not part of the privatization strategy, and
		// copying it eagerly would double the copy-mode begin cost.
		st := state.NewSized(len(r.base) + r.over.Load().Len())
		r.storeRange(func(l state.Loc, v state.Value) bool {
			st.Set(l, v.CloneValue())
			return true
		})
		tx.priv = st
	}
	tx.snap = state.NewFaulting(fault)
	return tx
}

func (r *Runtime) dropBegin(tid int) {
	r.histMu.Lock()
	delete(r.begins, tid)
	if r.cfg.MaxHistory > 0 {
		// A departing transaction can raise the reclamation floor; wake
		// any commit stalled on the history bound.
		r.commitCond.Broadcast()
	}
	r.histMu.Unlock()
}

// advanceBegin raises a transaction's begin watermark to seen: every
// history entry at or before it has been copied into the transaction's
// private window, so reclamation no longer needs to retain those entries
// on its behalf. Stalled commits are woken to re-try reclamation.
func (r *Runtime) advanceBegin(tid int, seen int64) {
	r.histMu.Lock()
	if b, ok := r.begins[tid]; ok && seen > b {
		r.begins[tid] = seen
		r.commitCond.Broadcast()
	}
	r.histMu.Unlock()
}

// drainLocked copies every published history entry newer than seen into
// opsC and advances the transaction's begin watermark — the ordered-wait
// variant of the fetch in the detect loop, run under the already-held
// histMu while the waiter sleeps for its commit turn. Returns the new
// watermark.
//
// The watermark is the sequencer's published value, never the raw
// clock: a ticketed commit may have appended nothing yet, and one that
// appended but has not advanced the watermark is skipped here (entries
// above published) and picked up by a later fetch. Every entry in
// (seen, published] is present, because publication appends before
// advancing the watermark and this waiter's begin pins entries newer
// than seen against reclamation.
func (r *Runtime) drainLocked(tid int, seen int64, opsC *[]*conflict.Prepared) int64 {
	now := r.published.Load()
	if now <= seen {
		return seen
	}
	lo := searchHist(r.history, seen)
	for _, h := range r.history[lo:] {
		if h.commitTime > now {
			break
		}
		*opsC = append(*opsC, h.prep)
	}
	if b, ok := r.begins[tid]; ok && now > b {
		r.begins[tid] = now
		r.commitCond.Broadcast()
	}
	return now
}

// committedHistory appends to dst the prepared artifacts of transactions
// that committed in (begin, now], one per transaction in commit order —
// GETCOMMITTEDHISTORY of Figure 7, appending into the caller's window
// buffer instead of allocating a fresh slice per fetch. now must be a
// published watermark (every entry at or below it has been appended).
// Commit times are strictly increasing in history order (publication
// runs in ticket order, and reclamation only drops a prefix), so the
// window is found by binary search instead of scanning the whole
// history.
func (r *Runtime) committedHistory(dst []*conflict.Prepared, begin, now int64) []*conflict.Prepared {
	r.histMu.Lock()
	defer r.histMu.Unlock()
	lo := searchHist(r.history, begin)
	hi := searchHist(r.history, now)
	for _, h := range r.history[lo:hi] {
		dst = append(dst, h.prep)
	}
	return dst
}

// commitResult is commit's outcome: committed, lost the footprint race
// (an overlapping entry published since detection), stalled on the
// MaxHistory bound, or terminal (the run failed — the attempt must not
// retry).
type commitResult int

const (
	commitOK commitResult = iota
	commitRace
	commitStall
	commitFailed
)

// historyRoomLocked reports whether the committed history can accept one
// more entry under Config.MaxHistory, forcing a reclamation pass first if
// it cannot. Caller holds the global write lock (serial escalation), so
// no commit is ticketed, no slot is reserved, and the history cannot
// grow between this check and the subsequent publish.
func (r *Runtime) historyRoomLocked() bool {
	r.histMu.Lock()
	defer r.histMu.Unlock()
	if len(r.history)+r.histReserved >= r.cfg.MaxHistory {
		r.reclaimLocked()
	}
	return len(r.history)+r.histReserved < r.cfg.MaxHistory
}

// stallForHistory blocks until the history has room for one more entry
// (reserved slots included), forcing a reclamation pass on every wakeup,
// or until the run fails. Progress is guaranteed: every other active
// transaction eventually commits (publication broadcasts under
// MaxHistory), aborts (dropBegin broadcasts), or advances its begin
// watermark as it fetches or drains history (broadcast) — any of which
// raises the reclamation floor. Only a stall that actually parks counts
// toward Stats.CommitStalls: when the entry reclamation pass frees room
// immediately, the commit never waited and nothing is recorded.
func (r *Runtime) stallForHistory() {
	stalled := false
	r.histMu.Lock()
	for !r.failed() {
		r.reclaimLocked()
		if len(r.history)+r.histReserved < r.cfg.MaxHistory {
			break
		}
		if !stalled {
			stalled = true
			atomic.AddInt64(&r.stats.CommitStalls, 1)
		}
		r.commitCond.Wait()
	}
	r.histMu.Unlock()
}

// attemptSerial escalates a starving transaction to irrevocable serial
// mode: it holds the global write lock across execute and commit, so no
// concurrent commit can invalidate it and no validation is needed — the
// transaction literally runs alone at the current clock, which makes its
// commit trivially serializable and guarantees progress under contention
// no detector-based retry could survive (the Theorem 4.1 termination
// argument degenerates to "the lock holder finishes"). In ordered mode it
// first waits for its commit turn, at which point no predecessor can
// still commit, preserving the task-order serialization.
func (r *Runtime) attemptSerial(ctx obs.Ctx, task adt.Task, tid int) (committed bool, err error) {
	atomic.AddInt64(&r.stats.Escalations, 1)
	if gov := r.cfg.Governor; gov != nil {
		gov.ObserveEscalation()
	}
	serialStart := ctx.Now()
	if r.cfg.Ordered {
		waitStart := ctx.Now()
		var govStart time.Time
		if r.cfg.Governor != nil {
			govStart = time.Now()
		}
		if r.cfg.MaxHistory > 0 {
			r.histMu.Lock()
			for r.published.Load() != int64(tid) && !r.failed() {
				r.commitCond.Wait()
			}
			r.histMu.Unlock()
		} else {
			r.waitPublished(int64(tid))
		}
		if gov := r.cfg.Governor; gov != nil {
			gov.ObserveCommitWait(time.Since(govStart))
		}
		ctx.End(obs.EvCommitWait, waitStart)
	}
	if r.failed() {
		return false, nil
	}
	// Serial mode must respect the history bound too, but cannot stall
	// while holding the write lock — fetchers advancing their begin
	// watermarks need the read side. Make room first, then re-check under
	// the lock, looping over the race where concurrent commits refill the
	// history in between.
	r.lock.Lock()
	for r.cfg.MaxHistory > 0 && !r.failed() && !r.historyRoomLocked() {
		r.lock.Unlock()
		var govStart time.Time
		if r.cfg.Governor != nil {
			govStart = time.Now()
		}
		r.stallForHistory()
		if gov := r.cfg.Governor; gov != nil {
			gov.ObserveCommitWait(time.Since(govStart))
		}
		r.lock.Lock()
	}
	defer r.lock.Unlock()
	if r.failed() {
		return false, nil
	}
	// Build the transaction against the live version; the write lock
	// excludes every optimistic commit (they hold the read side while
	// ticketed), so the sequencer is drained — clock == published — and
	// the privatized view cannot go stale.
	tx := r.newTx(tid, r.published.Load())
	if err := runTaskBody(task, tx, tid); err != nil {
		return false, err
	}
	r.recordOps(len(tx.log))
	if h := r.cfg.Hooks; h != nil && h.CommitDelay != nil {
		h.CommitDelay(tid)
	}
	// A serial transaction never validated, so its log has no artifact
	// yet; prepare it here (under the write lock, once) for the detectors
	// of every future transaction that finds it in the history, and for
	// its own footprint (the merge's written-location list).
	prep := conflict.Prepare(tx.log)
	rep, err := r.replayCompute(tx.log)
	if err != nil {
		return false, err
	}
	sigAll, sigWrite := footprintSigs(prep.Footprint())
	ctime := r.clock.Add(1)
	r.mergeVersion(rep, prep.Footprint())
	r.publishEntry(ctx, tid, ctime, prep, sigAll, sigWrite, false)
	if sink := r.cfg.Record; sink != nil {
		sink.ObserveCommitted(tid, ctime, tx.log)
	}
	r.advancePublished(ctime)
	if r.cfg.MaxHistory > 0 {
		r.histMu.Lock()
		r.commitCond.Broadcast()
		r.histMu.Unlock()
	}
	ctx.End(obs.EvTxSerial, serialStart)
	return true, nil
}

// reclaimLocked drops history entries every active transaction has already
// seen (commitTime ≤ min active begin). Caller holds histMu. The floor is
// the published watermark, not the raw clock: an entry appended by a
// commit whose publication turn has not finished must never be dropped
// before any transaction could have fetched it.
func (r *Runtime) reclaimLocked() {
	minBegin := r.published.Load()
	for _, b := range r.begins {
		if b < minBegin {
			minBegin = b
		}
	}
	n := len(r.history)
	kept := r.history[:0]
	for _, h := range r.history {
		if h.commitTime > minBegin {
			kept = append(kept, h)
			continue
		}
		atomic.AddInt64(&r.stats.Reclaimed, 1)
		if h.prep.Compressed() {
			// The HistBytes gauge tracks live compressed records only.
			atomic.AddInt64(&r.stats.HistBytes, -int64(h.prep.CompressedBytes()))
		}
	}
	// Zero the dropped tail of the backing array so reclaimed oplog.Log
	// references become collectable — compaction alone keeps them alive.
	for i := len(kept); i < n; i++ {
		r.history[i] = histEntry{}
	}
	r.history = kept
}
