package stm

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/adt"
	"repro/internal/state"
)

// commitBenchLocs is the number of distinct counters the disjoint-footprint
// commit workload spreads its writes over. With at least as many locations
// as workers, concurrently committing transactions virtually never share a
// location, so every cost the benchmark observes is protocol overhead —
// snapshot, validation, and above all the commit path itself.
const commitBenchLocs = 64

func commitBenchState() *state.State {
	st := state.New()
	for i := 0; i < commitBenchLocs; i++ {
		st.Set(state.Loc(fmt.Sprintf("c%02d", i)), state.Int(0))
	}
	return st
}

// benchCommitParallel drives b.N tiny transactions with pairwise-disjoint
// footprints through the runtime. Task bodies are four counter ops — small
// enough that commit, not execution, dominates — so ns/op tracks commit
// throughput. Before the striped-commit refactor every commit replayed
// under one global write lock (the paper's Figure 7 protocol verbatim)
// and each lost clock race burned an extra validation pass; the recorded
// before/after trajectory lives in BENCH_commit.json.
func benchCommitParallel(b *testing.B, cfg Config) {
	cfg.Threads = runtime.GOMAXPROCS(0)
	tasks := make([]adt.Task, b.N)
	for i := range tasks {
		c := adt.Counter{L: state.Loc(fmt.Sprintf("c%02d", i%commitBenchLocs))}
		tasks[i] = func(ex adt.Executor) error {
			for k := 0; k < 4; k++ {
				if err := c.Add(ex, 1); err != nil {
					return err
				}
			}
			return nil
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	_, stats, err := Run(cfg, commitBenchState(), tasks)
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if stats.Commits != int64(b.N) {
		b.Fatalf("commits = %d, want %d", stats.Commits, b.N)
	}
	b.ReportMetric(float64(stats.Retries)/float64(b.N), "retries/txn")
}

// BenchmarkCommitParallel is the headline disjoint-footprint commit
// benchmark (persistent snapshots, write-set detection, unordered).
func BenchmarkCommitParallel(b *testing.B) {
	benchCommitParallel(b, Config{Privatize: PrivatizePersistent})
}

// BenchmarkCommitParallelCopy is the same workload under deep-copy
// privatization, where transaction begin reads the whole state.
func BenchmarkCommitParallelCopy(b *testing.B) {
	benchCommitParallel(b, Config{Privatize: PrivatizeCopy})
}

// BenchmarkCommitParallelOrdered pins the commit order to task order: the
// protocol's inherently serial mode, reported for contrast (commit-turn
// wakeup costs dominate).
func BenchmarkCommitParallelOrdered(b *testing.B) {
	benchCommitParallel(b, Config{Privatize: PrivatizePersistent, Ordered: true})
}
