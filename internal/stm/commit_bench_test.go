package stm

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/adt"
	"repro/internal/state"
)

// commitBenchLocs is the number of distinct counters the disjoint-footprint
// commit workload spreads its writes over. With at least as many locations
// as workers, concurrently committing transactions virtually never share a
// location, so every cost the benchmark observes is protocol overhead —
// snapshot, validation, and above all the commit path itself.
const commitBenchLocs = 64

func commitBenchState() *state.State {
	st := state.New()
	for i := 0; i < commitBenchLocs; i++ {
		st.Set(state.Loc(fmt.Sprintf("c%02d", i)), state.Int(0))
	}
	return st
}

// benchCommitParallel drives b.N tiny transactions with pairwise-disjoint
// footprints through the runtime. Task bodies are four counter ops — small
// enough that commit, not execution, dominates — so ns/op tracks commit
// throughput. Before the striped-commit refactor every commit replayed
// under one global write lock (the paper's Figure 7 protocol verbatim)
// and each lost clock race burned an extra validation pass; the recorded
// before/after trajectory lives in BENCH_commit.json.
func benchCommitParallel(b *testing.B, cfg Config) {
	cfg.Threads = runtime.GOMAXPROCS(0)
	tasks := make([]adt.Task, b.N)
	for i := range tasks {
		c := adt.Counter{L: state.Loc(fmt.Sprintf("c%02d", i%commitBenchLocs))}
		tasks[i] = func(ex adt.Executor) error {
			for k := 0; k < 4; k++ {
				if err := c.Add(ex, 1); err != nil {
					return err
				}
			}
			return nil
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	_, stats, err := Run(cfg, commitBenchState(), tasks)
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if stats.Commits != int64(b.N) {
		b.Fatalf("commits = %d, want %d", stats.Commits, b.N)
	}
	b.ReportMetric(float64(stats.Retries)/float64(b.N), "retries/txn")
}

// BenchmarkCommitParallel is the headline disjoint-footprint commit
// benchmark (persistent snapshots, write-set detection, unordered).
func BenchmarkCommitParallel(b *testing.B) {
	benchCommitParallel(b, Config{Privatize: PrivatizePersistent})
}

// BenchmarkCommitParallelCopy is the same workload under deep-copy
// privatization, where transaction begin reads the whole state.
func BenchmarkCommitParallelCopy(b *testing.B) {
	benchCommitParallel(b, Config{Privatize: PrivatizeCopy})
}

// BenchmarkCommitParallelOrdered pins the commit order to task order: the
// protocol's inherently serial mode, reported for contrast (commit-turn
// wakeup costs dominate).
func BenchmarkCommitParallelOrdered(b *testing.B) {
	benchCommitParallel(b, Config{Privatize: PrivatizePersistent, Ordered: true})
}

// BenchmarkHistoryCompressed measures what an unbounded committed history
// retains with and without Config.HistoryCompress. Each transaction runs
// 32 counter ops — heavy enough that a full history entry's event log and
// arenas dominate — and the runtime is kept alive across a GC fence so
// hist-live-B is the retained history footprint, not transient garbage.
// ns/op shows what the demotion pass costs the publish path. The 10x-ops
// case pins the flat-memory acceptance bound: ten times the ops/txn over
// an unbounded (≥ any 10× MaxHistory window) history must retain no more
// than 1.5× the small-config full baseline per transaction — compressed
// records are O(locations), so op count stops mattering.
func BenchmarkHistoryCompressed(b *testing.B) {
	const opsPerTxn = 32
	for _, tc := range []struct {
		name     string
		compress bool
		ops      int
	}{
		{"full", false, opsPerTxn},
		{"compressed", true, opsPerTxn},
		{"compressed-10x-ops", true, 10 * opsPerTxn},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := Config{
				Threads:         runtime.GOMAXPROCS(0),
				Privatize:       PrivatizePersistent,
				HistoryCompress: tc.compress,
			}
			tasks := make([]adt.Task, b.N)
			for i := range tasks {
				c := adt.Counter{L: state.Loc(fmt.Sprintf("c%02d", i%commitBenchLocs))}
				ops := tc.ops
				tasks[i] = func(ex adt.Executor) error {
					for k := 0; k < ops; k++ {
						if err := c.Add(ex, 1); err != nil {
							return err
						}
					}
					return nil
				}
			}
			var m0, m1 runtime.MemStats
			runtime.GC()
			runtime.GC()
			runtime.ReadMemStats(&m0)
			b.ReportAllocs()
			b.ResetTimer() // note: also clears ReportMetric values
			r := New(cfg, commitBenchState())
			_, stats, err := r.run(tasks)
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			if stats.Commits != int64(b.N) {
				b.Fatalf("commits = %d, want %d", stats.Commits, b.N)
			}
			runtime.GC()
			runtime.GC()
			runtime.ReadMemStats(&m1)
			if m1.HeapAlloc > m0.HeapAlloc {
				b.ReportMetric(float64(m1.HeapAlloc-m0.HeapAlloc)/float64(b.N), "hist-live-B/txn")
			}
			b.ReportMetric(float64(stats.Demotions), "demotions")
			runtime.KeepAlive(r)
		})
	}
}
