// Package core assembles the paper's primary contribution — sequence-based
// conflict detection via hindsight — into a single engine: offline
// training (internal/train) populates a commutativity cache
// (internal/cache) keyed by Kleene-cross sequence abstractions
// (internal/seqabs), and the engine manufactures conflict detectors
// (internal/conflict) that answer per-location sequence queries from that
// cache, falling back to write-set detection on misses.
//
// The protocol runtime (internal/stm) and the public API (package janus)
// are both clients of this engine; so is the benchmark harness, which uses
// it to reproduce Figures 9–11.
package core

import (
	"fmt"
	"io"

	"repro/internal/adt"
	"repro/internal/cache"
	"repro/internal/conflict"
	"repro/internal/health"
	"repro/internal/seqabs"
	"repro/internal/state"
	"repro/internal/train"
)

// Options configure an Engine.
type Options struct {
	// DisableAbstraction turns off §5.2 sequence abstraction (cache keys
	// require exact shape matches) — the Figure 11 ablation knob.
	DisableAbstraction bool
	// Online answers cache misses with the concrete Figure 8 check at
	// runtime instead of the write-set fallback.
	Online bool
	// LearnOnline proves and caches conditions for missed shape pairs at
	// runtime (online training via memoization, §5.3).
	LearnOnline bool
	// InferWAW ignores write-after-write dependences between transactions
	// (§5.3 automatic inference); sound only for unordered commits.
	InferWAW bool
	// Relax is the §5.3 consistency-relaxation specification; may be nil.
	Relax *conflict.Relaxations
	// SkipVerify disables training-time verification passes.
	SkipVerify bool
	// CacheShards overrides the commutativity cache's shard count
	// (rounded up to a power of two); 0 means cache.DefaultShards.
	CacheShards int
}

// Engine is a trained JANUS detection engine.
type Engine struct {
	opts    Options
	cache   *cache.Cache
	reports []*train.Report
}

// NewEngine builds an untrained engine.
func NewEngine(opts Options) *Engine {
	return &Engine{opts: opts, cache: cache.NewSharded(opts.mode(), opts.CacheShards)}
}

func (o Options) mode() seqabs.Mode {
	if o.DisableAbstraction {
		return seqabs.Concrete
	}
	return seqabs.Abstract
}

// Train profiles one sequential run of the payload from initial and folds
// the learned conditions into the engine's cache.
func (e *Engine) Train(initial *state.State, tasks []adt.Task) error {
	c, rep, err := train.Train(initial, tasks, train.Options{
		Mode:       e.opts.mode(),
		SkipVerify: e.opts.SkipVerify,
	})
	if err != nil {
		return fmt.Errorf("core: training: %w", err)
	}
	e.cache.Merge(c)
	e.reports = append(e.reports, rep)
	return nil
}

// TrainMany profiles several payloads (the paper's five training runs).
func (e *Engine) TrainMany(initial *state.State, payloads [][]adt.Task) error {
	for i, tasks := range payloads {
		if err := e.Train(initial, tasks); err != nil {
			return fmt.Errorf("core: payload %d: %w", i, err)
		}
	}
	return nil
}

// Detector manufactures a sequence-based detector over the trained cache.
// Each run should use a fresh detector so its statistics are per-run.
func (e *Engine) Detector() *conflict.Sequence {
	det := conflict.NewSequence(e.cache, e.opts.Relax)
	det.Online = e.opts.Online
	det.LearnOnline = e.opts.LearnOnline
	det.InferWAW = e.opts.InferWAW
	return det
}

// GovernedDetector wraps a fresh sequence detector (over the trained
// cache) and a write-set fallback in a health governor: detections route
// through the sequence detector while it is profitable, degrade to the
// fallback under miss storms or abort churn, and escalate to serial
// execution when even write-set detection thrashes. The returned governor
// is both the run's conflict.Detector and its stm.Config.Governor.
func (e *Engine) GovernedDetector(gc health.Config) *health.Governor {
	return health.NewGovernor(e.Detector(), conflict.NewWriteSet(), gc)
}

// Freeze switches the trained cache into read-only production mode:
// lookups stop taking shard locks, and further Train/LoadSpec calls fail
// or no-op (see cache.Freeze). It is skipped under LearnOnline, which
// must keep writing entries at detection time.
func (e *Engine) Freeze() {
	if e.opts.LearnOnline {
		return
	}
	e.cache.Freeze()
}

// Cache exposes the trained commutativity specification.
func (e *Engine) Cache() *cache.Cache { return e.cache }

// SaveSpec serializes the trained commutativity specification.
func (e *Engine) SaveSpec(w io.Writer) error { return e.cache.Save(w) }

// LoadSpec merges a previously saved specification (Figure 6's deployment
// flow: train offline, ship the spec, load in production).
func (e *Engine) LoadSpec(r io.Reader) error { return e.cache.Load(r) }

// Reports returns the per-payload training summaries.
func (e *Engine) Reports() []*train.Report { return e.reports }
