package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/adt"
	"repro/internal/conflict"
	"repro/internal/state"
	"repro/internal/stm"
)

func initialState() *state.State {
	st := state.New()
	st.Set("work", state.Int(0))
	return st
}

func identityTask(n int64) adt.Task {
	return func(ex adt.Executor) error {
		c := adt.Counter{L: "work"}
		if err := c.Add(ex, n); err != nil {
			return err
		}
		return c.Sub(ex, n)
	}
}

func TestEngineTrainAndDetect(t *testing.T) {
	e := NewEngine(Options{})
	if err := e.Train(initialState(), []adt.Task{identityTask(1), identityTask(2)}); err != nil {
		t.Fatal(err)
	}
	if e.Cache().Len() == 0 {
		t.Fatalf("training produced no entries")
	}
	if len(e.Reports()) != 1 {
		t.Fatalf("reports = %d", len(e.Reports()))
	}
	det := e.Detector()
	if det.Name() != "sequence" {
		t.Fatalf("detector = %q", det.Name())
	}
	// Detectors are independent per run: their stats do not bleed.
	det2 := e.Detector()
	if det2 == det {
		t.Fatalf("Detector must mint a fresh instance")
	}
}

func TestEngineTrainMany(t *testing.T) {
	e := NewEngine(Options{})
	payloads := [][]adt.Task{
		{identityTask(1), identityTask(2)},
		{identityTask(3), identityTask(4)},
	}
	if err := e.TrainMany(initialState(), payloads); err != nil {
		t.Fatal(err)
	}
	if len(e.Reports()) != 2 {
		t.Fatalf("reports = %d", len(e.Reports()))
	}
}

func TestEngineTrainErrorWrapsPayloadIndex(t *testing.T) {
	e := NewEngine(Options{})
	bad := func(adt.Executor) error { return errBoom }
	err := e.TrainMany(initialState(), [][]adt.Task{
		{identityTask(1)},
		{bad},
	})
	if err == nil || !strings.Contains(err.Error(), "payload 1") {
		t.Fatalf("err = %v", err)
	}
}

type boomErr struct{}

func (boomErr) Error() string { return "boom" }

var errBoom = boomErr{}

func TestEngineOptionsPropagate(t *testing.T) {
	relax := conflict.NewRelaxations([]state.Loc{"x"}, nil)
	e := NewEngine(Options{Online: true, LearnOnline: true, InferWAW: true, Relax: relax})
	det := e.Detector()
	if !det.Online || !det.LearnOnline || !det.InferWAW {
		t.Fatalf("options not propagated: %+v", det)
	}
	if !det.Relax.TolerateRAW("x") {
		t.Fatalf("relaxations not propagated")
	}
}

func TestEngineSpecRoundTrip(t *testing.T) {
	src := NewEngine(Options{})
	if err := src.Train(initialState(), []adt.Task{identityTask(1), identityTask(2)}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.SaveSpec(&buf); err != nil {
		t.Fatal(err)
	}
	dst := NewEngine(Options{})
	if err := dst.LoadSpec(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if dst.Cache().Len() != src.Cache().Len() {
		t.Fatalf("loaded %d entries, want %d", dst.Cache().Len(), src.Cache().Len())
	}
	// Abstraction-mode mismatch is rejected.
	other := NewEngine(Options{DisableAbstraction: true})
	if err := other.LoadSpec(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatalf("mode mismatch must fail")
	}
}

// TestEngineEndToEnd drives the engine through the runtime: trained
// detection admits identity tasks that the baseline aborts.
func TestEngineEndToEnd(t *testing.T) {
	var tasks []adt.Task
	for i := 1; i <= 10; i++ {
		tasks = append(tasks, identityTask(int64(i)))
	}
	e := NewEngine(Options{})
	if err := e.Train(initialState(), tasks[:3]); err != nil {
		t.Fatal(err)
	}
	final, stats, err := stm.Run(stm.Config{Threads: 4, Detector: e.Detector()}, initialState(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retries != 0 {
		t.Fatalf("retries = %d", stats.Retries)
	}
	if v, _ := final.Get("work"); !v.EqualValue(state.Int(0)) {
		t.Fatalf("work = %v", v)
	}
}
