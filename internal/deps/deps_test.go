package deps

import (
	"reflect"
	"testing"

	"repro/internal/adt"
	"repro/internal/oplog"
	"repro/internal/state"
)

// trace builds a training-style log by executing ops sequentially,
// recording footprints against the running state.
func trace(st *state.State, steps []struct {
	task int
	op   oplog.Op
}) oplog.Log {
	var l oplog.Log
	for i, s := range steps {
		acc := s.op.Accesses(st)
		v, err := s.op.Apply(st)
		if err != nil {
			panic(err)
		}
		l = append(l, &oplog.Event{Op: s.op, Task: s.task, Seq: i, Acc: acc, Observed: v})
	}
	return l
}

func baseState() *state.State {
	st := state.New()
	st.Set("work", state.Int(0))
	st.Set("bits", adt.NewRelValue())
	return st
}

type step = struct {
	task int
	op   oplog.Op
}

func TestBuildClassifiesEdges(t *testing.T) {
	st := baseState()
	l := trace(st, []step{
		{1, adt.NumStoreOp{L: "work", V: 5}},   // 0: write
		{1, adt.NumLoadOp{L: "work"}},          // 1: read → Flow from 0
		{2, adt.NumLoadOp{L: "work"}},          // 2: read → Input from 1
		{2, adt.NumAddOp{L: "work", Delta: 1}}, // 3: rmw → Anti from 2
		{3, adt.NumStoreOp{L: "work", V: 9}},   // 4: write → Output from 3
	})
	g := Build(l)
	want := []Edge{
		{From: 0, To: 1, P: "work", Kind: Flow},
		{From: 1, To: 2, P: "work", Kind: Input},
		{From: 2, To: 3, P: "work", Kind: Anti},
		{From: 3, To: 4, P: "work", Kind: Output},
	}
	if !reflect.DeepEqual(g.Edges, want) {
		t.Fatalf("edges = %v\nwant %v", g.Edges, want)
	}
}

func TestMinePartitionsByTask(t *testing.T) {
	st := baseState()
	l := trace(st, []step{
		{1, adt.NumAddOp{L: "work", Delta: 2}},
		{1, adt.NumAddOp{L: "work", Delta: -2}},
		{2, adt.NumAddOp{L: "work", Delta: 3}},
		{2, adt.NumAddOp{L: "work", Delta: -3}},
		{3, adt.NumLoadOp{L: "work"}},
	})
	mined := Mine(l)
	seqs := mined["work"]
	if len(seqs) != 3 {
		t.Fatalf("sequences = %d, want 3 (one per task)", len(seqs))
	}
	if seqs[0].Task != 1 || len(seqs[0].Events) != 2 {
		t.Errorf("task 1 seq: %v", seqs[0])
	}
	if seqs[1].Task != 2 || len(seqs[1].Events) != 2 {
		t.Errorf("task 2 seq: %v", seqs[1])
	}
	if seqs[2].Task != 3 || len(seqs[2].Events) != 1 {
		t.Errorf("task 3 seq: %v", seqs[2])
	}
	if got := seqs[0].Syms(); got[0].Kind != adt.KindNumAdd || got[0].Arg != "2" {
		t.Errorf("syms = %v", got)
	}
}

func TestMineRelationalPerKey(t *testing.T) {
	st := baseState()
	l := trace(st, []step{
		{1, adt.RelPutOp{L: "bits", Key: "1", Val: "1"}},
		{1, adt.RelPutOp{L: "bits", Key: "2", Val: "1"}},
		{2, adt.RelPutOp{L: "bits", Key: "1", Val: "1"}},
	})
	mined := Mine(l)
	if got := len(mined["bits#k=1"]); got != 2 {
		t.Errorf("k=1 sequences = %d, want 2", got)
	}
	if got := len(mined["bits#k=2"]); got != 1 {
		t.Errorf("k=2 sequences = %d, want 1", got)
	}
	shared := SharedPLocs(mined)
	if !reflect.DeepEqual(shared, []oplog.PLoc{"bits#k=1"}) {
		t.Errorf("shared = %v, want [bits#k=1]", shared)
	}
}

func TestClearFoldsIntoKeyChains(t *testing.T) {
	st := baseState()
	l := trace(st, []step{
		{1, adt.RelPutOp{L: "bits", Key: "3", Val: "1"}},
		{2, adt.RelClearOp{L: "bits"}}, // clears key 3: write access to k=3
		{2, adt.RelPutOp{L: "bits", Key: "3", Val: "1"}},
	})
	mined := Mine(l)
	seqs := mined["bits#k=3"]
	if len(seqs) != 2 {
		t.Fatalf("k=3 sequences = %d, want 2: %v", len(seqs), seqs)
	}
	if len(seqs[1].Events) != 2 {
		t.Errorf("task 2 must contribute clear+put on k=3, got %v", seqs[1])
	}
	if seqs[1].Syms()[0].Kind != adt.KindRelClear {
		t.Errorf("first op of task-2 seq = %v, want rel.clear", seqs[1].Syms()[0])
	}
}

func TestDepKindStrings(t *testing.T) {
	want := map[DepKind]string{Flow: "RAW", Anti: "WAR", Output: "WAW", Input: "RR"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("String(%d) = %q, want %q", k, k.String(), s)
		}
	}
}

func TestEdgeAndTaskSeqStrings(t *testing.T) {
	e := Edge{From: 1, To: 2, P: "work", Kind: Flow}
	if e.String() != "2→1 over work [RAW]" {
		t.Errorf("edge String = %q", e.String())
	}
	st := baseState()
	l := trace(st, []step{{4, adt.NumAddOp{L: "work", Delta: 2}}})
	ts := TaskSeq{Task: 4, Events: l}
	if ts.String() != "task 4: num.add(2)" {
		t.Errorf("TaskSeq String = %q", ts.String())
	}
}

func TestEmptyTrace(t *testing.T) {
	g := Build(nil)
	if len(g.Edges) != 0 {
		t.Errorf("empty trace must have no edges")
	}
	if m := Mine(nil); len(m) != 0 {
		t.Errorf("empty trace must mine nothing")
	}
}
