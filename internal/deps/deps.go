// Package deps implements the training-time dependence analysis of JANUS
// §5.1: building the global dependence graph over a sequential trace
// (Equation 1), retrieving each location's maximal dependence path, and
// partitioning it at task boundaries into the per-task operation sequences
// that seed commutativity learning.
package deps

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/oplog"
)

// DepKind classifies a dependence edge.
type DepKind int

// Dependence kinds. Input reports a read-after-read (input) dependency,
// which Equation 1 subsumes; the others involve at least one write.
const (
	Flow   DepKind = iota // read after write
	Anti                  // write after read
	Output                // write after write
	Input                 // read after read
)

// String renders the kind.
func (k DepKind) String() string {
	switch k {
	case Flow:
		return "RAW"
	case Anti:
		return "WAR"
	case Output:
		return "WAW"
	default:
		return "RR"
	}
}

// Edge is a dependence between two trace events over one projection
// location: the event at trace position To depends on the one at From
// (From executes earlier).
type Edge struct {
	From, To int
	P        oplog.PLoc
	Kind     DepKind
}

// String renders the edge.
func (e Edge) String() string {
	return fmt.Sprintf("%d→%d over %s [%s]", e.To, e.From, e.P, e.Kind)
}

// Graph is the global dependence graph of a training trace.
type Graph struct {
	Trace oplog.Log
	Edges []Edge
}

// accessOf returns the event's access to p, if any.
func accessOf(e *oplog.Event, p oplog.PLoc) (oplog.Access, bool) {
	for _, a := range e.Acc {
		if a.P.Overlaps(p) {
			return a, true
		}
	}
	return oplog.Access{}, false
}

// Build constructs the dependence graph: for each projection location, the
// chain of accesses in trace order contributes an edge between each
// consecutive pair, classified by the access modes (Equation 1 instantiated
// at subvalue granularity; read-read pairs are Input dependencies).
func Build(trace oplog.Log) *Graph {
	g := &Graph{Trace: trace}
	chains := chainsByPLoc(trace)
	for _, p := range sortedPLocs(chains) {
		chain := chains[p]
		for i := 1; i < len(chain); i++ {
			prev, cur := chain[i-1], chain[i]
			pa, _ := accessOf(prev, p)
			ca, _ := accessOf(cur, p)
			var kind DepKind
			switch {
			case pa.Write && ca.Write:
				kind = Output
			case pa.Write && ca.Read:
				kind = Flow
			case pa.Read && ca.Write:
				kind = Anti
			default:
				kind = Input
			}
			g.Edges = append(g.Edges, Edge{From: prev.Seq, To: cur.Seq, P: p, Kind: kind})
		}
	}
	return g
}

// chainsByPLoc orders each projection location's accesses by trace
// position. Wildcard accesses are folded into every concrete key chain of
// the same location they overlap, as well as kept on their own chain.
func chainsByPLoc(trace oplog.Log) map[oplog.PLoc]oplog.Log {
	chains := make(map[oplog.PLoc]oplog.Log)
	// First pass: concrete PLocs.
	for _, e := range trace {
		for _, a := range e.Acc {
			chains[a.P] = append(chains[a.P], e)
		}
	}
	// Second pass: fold wildcard accesses into sibling key chains.
	for _, e := range trace {
		for _, a := range e.Acc {
			if !a.P.IsWildcard() {
				continue
			}
			for p := range chains {
				if p != a.P && a.P.Overlaps(p) {
					chains[p] = insertBySeq(chains[p], e)
				}
			}
		}
	}
	return chains
}

func insertBySeq(l oplog.Log, e *oplog.Event) oplog.Log {
	for _, x := range l {
		if x == e {
			return l
		}
	}
	l = append(l, e)
	sort.SliceStable(l, func(i, j int) bool { return l[i].Seq < l[j].Seq })
	return l
}

func sortedPLocs[T any](m map[oplog.PLoc]T) []oplog.PLoc {
	out := make([]oplog.PLoc, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TaskSeq is one task's contiguous run of operations on a single
// projection location — a candidate sequence for commutativity learning.
type TaskSeq struct {
	Task   int
	Events oplog.Log
}

// Syms projects the sequence onto symbolic descriptors.
func (s TaskSeq) Syms() []oplog.Sym { return s.Events.Syms() }

// String renders the sequence.
func (s TaskSeq) String() string {
	syms := s.Syms()
	parts := make([]string, len(syms))
	for i, sym := range syms {
		parts[i] = sym.String()
	}
	return fmt.Sprintf("task %d: %s", s.Task, strings.Join(parts, "; "))
}

// Mine partitions each location's maximal dependence path at task
// boundaries (§5.1 "Mining Sequences"). In a sequential training run each
// task's accesses to a location are contiguous, so the partition groups
// consecutive same-task events.
func Mine(trace oplog.Log) map[oplog.PLoc][]TaskSeq {
	chains := chainsByPLoc(trace)
	out := make(map[oplog.PLoc][]TaskSeq, len(chains))
	for p, chain := range chains {
		var seqs []TaskSeq
		for _, e := range chain {
			if n := len(seqs); n > 0 && seqs[n-1].Task == e.Task {
				seqs[n-1].Events = append(seqs[n-1].Events, e)
			} else {
				seqs = append(seqs, TaskSeq{Task: e.Task, Events: oplog.Log{e}})
			}
		}
		out[p] = seqs
	}
	return out
}

// SharedPLocs returns the projection locations accessed by more than one
// task — the only ones that can ever appear in a conflict query.
func SharedPLocs(mined map[oplog.PLoc][]TaskSeq) []oplog.PLoc {
	var out []oplog.PLoc
	for p, seqs := range mined {
		tasks := make(map[int]struct{})
		for _, s := range seqs {
			tasks[s.Task] = struct{}{}
		}
		if len(tasks) > 1 {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
