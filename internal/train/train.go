// Package train implements the offline training phase of JANUS (§5.1 and
// Figure 6): the application is exercised sequentially on training inputs
// with no synchronization, dependencies are tracked over the trace,
// per-location dependent sequences are mined at task boundaries, symbolic
// commutativity conditions are proved for pairs of sequences, verified —
// concretely against the Figure 8 checks and, for relational pairs, with
// the SAT-backed Table 4 content-formula equivalence — and cached under
// their §5.2 regular abstractions.
package train

import (
	"fmt"

	"repro/internal/adt"
	"repro/internal/cache"
	"repro/internal/commute"
	"repro/internal/deps"
	"repro/internal/logic"
	"repro/internal/oplog"
	"repro/internal/relation"
	"repro/internal/seqabs"
	"repro/internal/state"
	"repro/internal/symrel"
)

// Profiler executes tasks sequentially against a live state, recording the
// training trace with task identities and footprints.
type Profiler struct {
	st    *state.State
	trace oplog.Log
	task  int
}

// NewProfiler profiles against st (mutated in place).
func NewProfiler(st *state.State) *Profiler { return &Profiler{st: st} }

// AddLocalWork implements adt.CostSink: training only needs the trace,
// so the tasks' local computation is skipped.
func (p *Profiler) AddLocalWork(int64) {}

// Exec implements adt.Executor.
func (p *Profiler) Exec(op oplog.Op) (state.Value, error) {
	acc := op.Accesses(p.st)
	v, err := op.Apply(p.st)
	if err != nil {
		return nil, err
	}
	p.trace = append(p.trace, &oplog.Event{
		Op: op, Task: p.task, Seq: len(p.trace), Acc: acc, Observed: v,
	})
	return v, nil
}

// Run executes the tasks one at a time (single-threaded, no
// synchronization), numbering them from 1.
func (p *Profiler) Run(tasks []adt.Task) error {
	for i, t := range tasks {
		p.task = i + 1
		if err := t(p); err != nil {
			return fmt.Errorf("train: task %d: %w", i+1, err)
		}
	}
	return nil
}

// Trace returns the recorded trace.
func (p *Profiler) Trace() oplog.Log { return p.trace }

// Options configure training.
type Options struct {
	// Mode selects the cache key abstraction (Figure 11 knob).
	Mode seqabs.Mode
	// SkipVerify disables the verification passes (concrete Figure 8
	// validation and SAT content-formula checks). Verification is on by
	// default; training is offline, so its cost is acceptable.
	SkipVerify bool
	// MaxPairsPerLoc bounds the quadratic pair enumeration per location;
	// 0 means DefaultMaxPairsPerLoc.
	MaxPairsPerLoc int
}

// DefaultMaxPairsPerLoc bounds pair enumeration per location. Dedup by
// shape key happens first, so the bound only guards pathological traces.
const DefaultMaxPairsPerLoc = 4096

// Report summarizes a training run.
type Report struct {
	TracedOps       int
	PLocs           int
	SharedPLocs     int
	PairsConsidered int
	UniquePairs     int
	Cached          map[commute.ConditionKind]int
	Rejected        int // pairs no theory covers
	VerifyDropped   int // proved pairs dropped by verification
	SATChecks       int
	SATFailures     int
}

// String renders the report.
func (r *Report) String() string {
	return fmt.Sprintf(
		"trace=%d ops, plocs=%d (%d shared), pairs=%d (%d unique), cached={always:%d register:%d stack:%d}, rejected=%d, verify-dropped=%d, sat=%d/%d",
		r.TracedOps, r.PLocs, r.SharedPLocs, r.PairsConsidered, r.UniquePairs,
		r.Cached[commute.CondAlways], r.Cached[commute.CondRegister], r.Cached[commute.CondStackIdentity],
		r.Rejected, r.VerifyDropped, r.SATFailures, r.SATChecks,
	)
}

// Train profiles one sequential run of tasks from the given initial state
// (cloned; the caller's state is not mutated) and builds the
// commutativity cache.
func Train(initial *state.State, tasks []adt.Task, opts Options) (*cache.Cache, *Report, error) {
	st := initial.Clone()
	p := NewProfiler(st)
	if err := p.Run(tasks); err != nil {
		return nil, nil, err
	}
	c := cache.New(opts.Mode)
	rep, err := Learn(c, initial, p.Trace(), opts)
	if err != nil {
		return nil, nil, err
	}
	return c, rep, nil
}

// TrainMany runs Train over several payloads (the paper uses 5 training
// runs) and merges the caches.
func TrainMany(initial *state.State, payloads [][]adt.Task, opts Options) (*cache.Cache, []*Report, error) {
	c := cache.New(opts.Mode)
	var reps []*Report
	for i, tasks := range payloads {
		ci, rep, err := Train(initial, tasks, opts)
		if err != nil {
			return nil, nil, fmt.Errorf("train: payload %d: %w", i, err)
		}
		c.Merge(ci)
		reps = append(reps, rep)
	}
	return c, reps, nil
}

// Learn mines a recorded trace and populates the cache. initial is the
// state the trace started from (used to type synthetic verification
// states).
func Learn(c *cache.Cache, initial *state.State, trace oplog.Log, opts Options) (*Report, error) {
	rep := &Report{
		TracedOps: len(trace),
		Cached:    make(map[commute.ConditionKind]int),
	}
	mined := deps.Mine(trace)
	rep.PLocs = len(mined)
	shared := deps.SharedPLocs(mined)
	rep.SharedPLocs = len(shared)
	maxPairs := opts.MaxPairsPerLoc
	if maxPairs == 0 {
		maxPairs = DefaultMaxPairsPerLoc
	}
	seen := make(map[string]struct{})
	for _, p := range shared {
		seqs := mined[p]
		pairs := 0
		for i := 0; i < len(seqs) && pairs < maxPairs; i++ {
			for j := i + 1; j < len(seqs) && pairs < maxPairs; j++ {
				if seqs[i].Task == seqs[j].Task {
					continue
				}
				pairs++
				rep.PairsConsidered++
				s1, s2 := seqs[i].Syms(), seqs[j].Syms()
				key := c.Key(s1, s2)
				if _, dup := seen[key]; dup {
					continue
				}
				seen[key] = struct{}{}
				rep.UniquePairs++
				kind := commute.Prove(s1, s2)
				if kind == commute.CondNone {
					rep.Rejected++
					continue
				}
				if !opts.SkipVerify {
					ok, err := verifyPair(rep, initial, p, seqs[i].Events, seqs[j].Events, kind)
					if err != nil {
						return nil, err
					}
					if !ok {
						rep.VerifyDropped++
						continue
					}
				}
				c.Put(s1, s2, kind)
				rep.Cached[kind]++
			}
		}
	}
	return rep, nil
}

// verifyPair cross-checks the proved condition kind against the concrete
// Figure 8 judgment on synthetic entry states, and against the SAT-backed
// content-formula equivalence for relational pairs. A proved "no conflict"
// that any verifier contradicts drops the entry (soundness guard); a
// proved "conflict" needs no verification (conservative answers are always
// sound).
func verifyPair(rep *Report, initial *state.State, p oplog.PLoc, e1, e2 oplog.Log, kind commute.ConditionKind) (bool, error) {
	conflict, ok := commute.Evaluate(kind, e1.Syms(), e2.Syms())
	if !ok {
		return false, nil
	}
	if conflict {
		return true, nil
	}
	for _, entry := range syntheticStates(initial, p) {
		concrete, err := commute.ConflictConcrete(entry, p, e1, e2)
		if err != nil {
			// Synthetic state does not support the ops (e.g. pop from an
			// empty stack): skip this sample rather than reject.
			continue
		}
		if concrete {
			return false, nil
		}
	}
	if relationalOnly(e1) && relationalOnly(e2) {
		agree, err := satVerify(rep, initial, p, e1, e2)
		if err != nil || !agree {
			return false, err
		}
	}
	return true, nil
}

// syntheticStates builds small entry states exercising the pair's
// location: the training initial value plus type-derived variants.
func syntheticStates(initial *state.State, p oplog.PLoc) []*state.State {
	loc := p.Loc()
	v, bound := initial.Get(loc)
	if !bound {
		return nil
	}
	var variants []state.Value
	switch tv := v.(type) {
	case state.Int:
		variants = []state.Value{tv, state.Int(0), state.Int(41)}
	case state.Str:
		variants = []state.Value{tv, state.Str(""), state.Str("⟂probe")}
	case state.Bool:
		variants = []state.Value{tv, state.Bool(!bool(tv))}
	case state.IntList:
		variants = []state.Value{tv, state.IntList{}, state.IntList{11, 22}}
	case state.Rel:
		empty := adt.NewRelValue()
		boundKey := adt.NewRelValue()
		if key := p.Key(); key != "" && key != "*" {
			// Key is rendered "k=<raw>"; recover the raw key.
			raw := key
			if len(raw) > 2 && raw[:2] == adt.DomainCol+"=" {
				raw = raw[2:]
			}
			boundKey.R.Insert(relation.Tuple{adt.DomainCol: raw, adt.RangeCol: "⟂probe"})
		}
		variants = []state.Value{tv, empty, boundKey}
	default:
		variants = []state.Value{tv}
	}
	out := make([]*state.State, 0, len(variants))
	for _, variant := range variants {
		st := state.New()
		st.Set(loc, variant.CloneValue())
		out = append(out, st)
	}
	return out
}

func relationalOnly(l oplog.Log) bool {
	for _, e := range l {
		switch e.Op.(type) {
		case adt.RelPutOp, adt.RelRemoveOp, adt.RelGetOp, adt.RelHasOp, adt.RelClearOp:
		default:
			return false
		}
	}
	return len(l) > 0
}

// satVerify checks, with the Table 4 content formulas and the SAT solver,
// that the two execution orders produce equivalent relation contents from
// a synthetic entry relation — the §6.2 equivalence query.
func satVerify(rep *Report, initial *state.State, p oplog.PLoc, e1, e2 oplog.Log) (bool, error) {
	loc := p.Loc()
	v, bound := initial.Get(loc)
	if !bound {
		return true, nil
	}
	rv, isRel := v.(state.Rel)
	if !isRel {
		return true, nil
	}
	rep.SATChecks++
	r := rv.R.Clone()
	f0 := r.ContentFormula()
	fAB := contentAfter(r, contentAfter(r, f0, e1), e2)
	fBA := contentAfter(r, contentAfter(r, f0, e2), e1)
	var checker symrel.Checker
	eq, err := checker.Equivalent(fAB, fBA)
	if err != nil {
		// Budget exhausted: treat as a failed proof, drop the entry.
		rep.SATFailures++
		return false, nil
	}
	if !eq {
		rep.SATFailures++
	}
	return eq, nil
}

// contentAfter folds a relational event sequence over a content formula
// using the Table 4 update rules. Reads leave the formula unchanged.
func contentAfter(r *relation.Relation, f logic.Formula, l oplog.Log) logic.Formula {
	for _, e := range l {
		switch op := e.Op.(type) {
		case adt.RelPutOp:
			f = r.ContentInsert(f, relation.Tuple{adt.DomainCol: op.Key, adt.RangeCol: op.Val})
		case adt.RelRemoveOp:
			f = r.ContentRemoveMatching(f, relation.Tuple{adt.DomainCol: op.Key, adt.RangeCol: ""})
		case adt.RelClearOp:
			f = logic.False
		}
	}
	return f
}
