package train

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/adt"
	"repro/internal/cache"
	"repro/internal/commute"
	"repro/internal/seqabs"
	"repro/internal/state"
)

func initialState() *state.State {
	st := state.New()
	st.Set("work", state.Int(0))
	st.Set("monitor", state.IntList{})
	st.Set("canvas", adt.NewRelValue())
	st.Set("max", state.Int(1))
	return st
}

// identityTask mirrors Figure 1: accumulate into work, then restore.
func identityTask(w int64) adt.Task {
	return func(ex adt.Executor) error {
		c := adt.Counter{L: "work"}
		if err := c.Add(ex, w); err != nil {
			return err
		}
		return c.Sub(ex, w)
	}
}

// stackTask mirrors Figure 2's monitor: balanced push/pop.
func stackTask(w int64) adt.Task {
	return func(ex adt.Executor) error {
		s := adt.Stack{L: "monitor"}
		if err := s.Push(ex, w); err != nil {
			return err
		}
		_, err := s.Pop(ex)
		return err
	}
}

// drawTask mirrors Figure 5: all tasks draw the same color on a shared
// pixel.
func drawTask(color string) adt.Task {
	return func(ex adt.Executor) error {
		return adt.Canvas{L: "canvas"}.DrawPixel(ex, 1, 1, color)
	}
}

func TestProfilerRecordsTasks(t *testing.T) {
	st := initialState()
	p := NewProfiler(st)
	if err := p.Run([]adt.Task{identityTask(2), identityTask(3)}); err != nil {
		t.Fatal(err)
	}
	tr := p.Trace()
	if len(tr) != 4 {
		t.Fatalf("trace = %d ops, want 4", len(tr))
	}
	if tr[0].Task != 1 || tr[2].Task != 2 {
		t.Errorf("task ids wrong: %v %v", tr[0].Task, tr[2].Task)
	}
	if v, _ := st.Get("work"); !v.EqualValue(state.Int(0)) {
		t.Errorf("work after identity tasks = %v, want 0", v)
	}
	if tr[0].Seq != 0 || tr[3].Seq != 3 {
		t.Errorf("sequence numbers wrong")
	}
}

func TestTrainIdentityPattern(t *testing.T) {
	c, rep, err := Train(initialState(), []adt.Task{identityTask(2), identityTask(5)}, Options{Mode: seqabs.Abstract})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cached[commute.CondAlways]+rep.Cached[commute.CondRegister] == 0 {
		t.Fatalf("identity pair must cache a condition; report: %s", rep)
	}
	// A production query with a different repetition count must hit and
	// report no conflict.
	pLong := NewProfiler(initialState())
	if err := pLong.Run([]adt.Task{func(ex adt.Executor) error {
		if err := identityTask(7)(ex); err != nil {
			return err
		}
		return identityTask(9)(ex)
	}}); err != nil {
		t.Fatal(err)
	}
	pShort := NewProfiler(initialState())
	if err := pShort.Run([]adt.Task{identityTask(3)}); err != nil {
		t.Fatal(err)
	}
	conflict, hit := c.Lookup(pLong.Trace().Syms(), pShort.Trace().Syms())
	if !hit || conflict {
		t.Fatalf("Lookup(long identity, short identity) = conflict=%v hit=%v", conflict, hit)
	}
	st := c.Stats()
	if st.Lookups != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTrainStackPattern(t *testing.T) {
	c, rep, err := Train(initialState(), []adt.Task{stackTask(4), stackTask(6)}, Options{Mode: seqabs.Abstract})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cached[commute.CondStackIdentity] == 0 {
		t.Fatalf("stack pair must cache a stack-identity condition; report: %s", rep)
	}
	if c.Len() == 0 {
		t.Fatal("cache empty")
	}
}

func TestTrainEqualWritesVerifiedBySAT(t *testing.T) {
	c, rep, err := Train(initialState(), []adt.Task{drawTask("white"), drawTask("white")}, Options{Mode: seqabs.Abstract})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cached[commute.CondRegister] == 0 {
		t.Fatalf("equal-writes pair must cache; report: %s", rep)
	}
	if rep.SATChecks == 0 {
		t.Fatalf("relational pair must be SAT-verified; report: %s", rep)
	}
	if rep.SATFailures != 0 {
		t.Fatalf("SAT verification failed: %s", rep)
	}
	_ = c
}

func TestTrainDifferentWritesStillCachesRegisterCondition(t *testing.T) {
	// put(white) vs put(black): the register condition is cached (the
	// shape is decidable), and evaluating it on the conflicting instance
	// reports a conflict.
	c, _, err := Train(initialState(), []adt.Task{drawTask("white"), drawTask("black")}, Options{Mode: seqabs.Abstract})
	if err != nil {
		t.Fatal(err)
	}
	stA := initialState()
	pA := NewProfiler(stA)
	if err := drawTask("red")(pA); err != nil {
		t.Fatal(err)
	}
	stB := initialState()
	pB := NewProfiler(stB)
	if err := drawTask("blue")(pB); err != nil {
		t.Fatal(err)
	}
	conflict, hit := c.Lookup(pA.Trace().Syms(), pB.Trace().Syms())
	if !hit {
		t.Fatalf("equal shape must hit")
	}
	if !conflict {
		t.Fatalf("different colors must conflict")
	}
	conflict, hit = c.Lookup(pA.Trace().Syms(), pA.Trace().Syms())
	if !hit || conflict {
		t.Fatalf("same color must not conflict: conflict=%v hit=%v", conflict, hit)
	}
}

func TestConcreteModeMissesOnLengthChange(t *testing.T) {
	c, _, err := Train(initialState(), []adt.Task{identityTask(2), identityTask(5)}, Options{Mode: seqabs.Concrete})
	if err != nil {
		t.Fatal(err)
	}
	// Query with four ops (two identity pairs in one transaction).
	st := initialState()
	p := NewProfiler(st)
	double := func(ex adt.Executor) error {
		if err := identityTask(7)(ex); err != nil {
			return err
		}
		return identityTask(9)(ex)
	}
	if err := double(p); err != nil {
		t.Fatal(err)
	}
	stShort := initialState()
	pShort := NewProfiler(stShort)
	if err := identityTask(3)(pShort); err != nil {
		t.Fatal(err)
	}
	_, hit := c.Lookup(p.Trace().Syms(), pShort.Trace().Syms())
	if hit {
		t.Fatalf("concrete mode must miss on a length change")
	}
	abstract, _, err := Train(initialState(), []adt.Task{identityTask(2), identityTask(5)}, Options{Mode: seqabs.Abstract})
	if err != nil {
		t.Fatal(err)
	}
	conflict, hit := abstract.Lookup(p.Trace().Syms(), pShort.Trace().Syms())
	if !hit || conflict {
		t.Fatalf("abstract mode must hit and report commutativity; conflict=%v hit=%v", conflict, hit)
	}
}

func TestTrainManyMerges(t *testing.T) {
	payloads := [][]adt.Task{
		{identityTask(2), identityTask(3)},
		{stackTask(1), stackTask(2)},
	}
	c, reps, err := TrainMany(initialState(), payloads, Options{Mode: seqabs.Abstract})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("reports = %d", len(reps))
	}
	if c.Len() < 2 {
		t.Fatalf("merged cache must hold both patterns, len=%d\n%s", c.Len(), c.Dump())
	}
}

func TestReportString(t *testing.T) {
	_, rep, err := Train(initialState(), []adt.Task{identityTask(1), identityTask(2)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, want := range []string{"trace=", "plocs=", "cached="} {
		if !strings.Contains(s, want) {
			t.Errorf("report %q missing %q", s, want)
		}
	}
}

func TestLearnRespectsPairBound(t *testing.T) {
	// Many tasks on one location; bound pair enumeration to 1.
	var tasks []adt.Task
	for i := 0; i < 6; i++ {
		tasks = append(tasks, identityTask(int64(i+1)))
	}
	st := initialState()
	p := NewProfiler(st)
	if err := p.Run(tasks); err != nil {
		t.Fatal(err)
	}
	c := cache.New(seqabs.Abstract)
	rep, err := Learn(c, initialState(), p.Trace(), Options{MaxPairsPerLoc: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PairsConsidered != 1 {
		t.Fatalf("PairsConsidered = %d, want 1", rep.PairsConsidered)
	}
}

func TestTrainDoesNotMutateCallerState(t *testing.T) {
	st := initialState()
	if _, _, err := Train(st, []adt.Task{identityTask(2)}, Options{}); err != nil {
		t.Fatal(err)
	}
	if v, _ := st.Get("work"); !v.EqualValue(state.Int(0)) {
		t.Errorf("caller state mutated: work=%v", v)
	}
}

func TestProfilerSkipsLocalWork(t *testing.T) {
	st := initialState()
	p := NewProfiler(st)
	var sink adt.CostSink = p
	sink.AddLocalWork(1 << 40) // must be free: no spinning
	task := func(ex adt.Executor) error {
		adt.LocalWork(ex, 1<<40) // would take hours if actually spun
		return (adt.Counter{L: "work"}).Add(ex, 1)
	}
	if err := p.Run([]adt.Task{task}); err != nil {
		t.Fatal(err)
	}
	if len(p.Trace()) != 1 {
		t.Fatalf("trace = %d ops", len(p.Trace()))
	}
}

func TestSkipVerifyStillCaches(t *testing.T) {
	c, rep, err := Train(initialState(), []adt.Task{identityTask(2), identityTask(5)},
		Options{Mode: seqabs.Abstract, SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() == 0 {
		t.Fatalf("SkipVerify must still cache proved pairs")
	}
	if rep.SATChecks != 0 || rep.VerifyDropped != 0 {
		t.Fatalf("SkipVerify must not run verification: %+v", rep)
	}
}

func TestTrainingIsDeterministic(t *testing.T) {
	tasks := []adt.Task{identityTask(2), stackTask(4), drawTask("white"), drawTask("white")}
	a, _, err := Train(initialState(), tasks, Options{Mode: seqabs.Abstract})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Train(initialState(), tasks, Options{Mode: seqabs.Abstract})
	if err != nil {
		t.Fatal(err)
	}
	if a.Dump() != b.Dump() {
		t.Fatalf("training runs differ:\n%s\nvs\n%s", a.Dump(), b.Dump())
	}
}

func TestTaskErrorSurfacesWithTaskNumber(t *testing.T) {
	bad := func(adt.Executor) error { return errSentinel }
	_, _, err := Train(initialState(), []adt.Task{identityTask(1), bad}, Options{})
	if err == nil || !strings.Contains(err.Error(), "task 2") {
		t.Fatalf("err = %v", err)
	}
}

var errSentinel = errors.New("sentinel")
