package sat

import (
	"math/rand"
	"testing"
)

// random3SAT builds an instance at the given clause/variable ratio.
func random3SAT(numVars, numClauses int, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	clauses := make([][]int, numClauses)
	for i := range clauses {
		cl := make([]int, 3)
		for j := range cl {
			v := 1 + rng.Intn(numVars)
			if rng.Intn(2) == 0 {
				v = -v
			}
			cl[j] = v
		}
		clauses[i] = cl
	}
	return clauses
}

func BenchmarkSolveEasySat(b *testing.B) {
	cls := random3SAT(60, 150, 1) // under-constrained: satisfiable
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Solve(60, cls, Options{})
		if err != nil || res.Status != Sat {
			b.Fatalf("res=%v err=%v", res.Status, err)
		}
	}
}

func BenchmarkSolvePigeonhole(b *testing.B) {
	// PHP(6,5): a hard UNSAT family for resolution-style search.
	v := func(i, h int) int { return i*5 + h + 1 }
	var cls [][]int
	for i := 0; i < 6; i++ {
		var c []int
		for h := 0; h < 5; h++ {
			c = append(c, v(i, h))
		}
		cls = append(cls, c)
	}
	for h := 0; h < 5; h++ {
		for i := 0; i < 6; i++ {
			for j := i + 1; j < 6; j++ {
				cls = append(cls, []int{-v(i, h), -v(j, h)})
			}
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Solve(30, cls, Options{})
		if err != nil || res.Status != Unsat {
			b.Fatalf("res=%v err=%v", res.Status, err)
		}
	}
}

func BenchmarkUnitPropagationChain(b *testing.B) {
	// A long implication chain exercises the watched-literal machinery.
	const n = 2000
	cls := make([][]int, 0, n)
	cls = append(cls, []int{1})
	for v := 1; v < n; v++ {
		cls = append(cls, []int{-v, v + 1})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Solve(n, cls, Options{})
		if err != nil || res.Status != Sat {
			b.Fatalf("res=%v err=%v", res.Status, err)
		}
	}
}
