package sat

import (
	"math/rand"
	"testing"
)

func solve(t *testing.T, numVars int, clauses [][]int) Result {
	t.Helper()
	res, err := Solve(numVars, clauses, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return res
}

func TestEmpty(t *testing.T) {
	res := solve(t, 0, nil)
	if res.Status != Sat {
		t.Fatalf("empty CNF must be SAT, got %v", res.Status)
	}
}

func TestUnitClauses(t *testing.T) {
	res := solve(t, 2, [][]int{{1}, {-2}})
	if res.Status != Sat {
		t.Fatalf("got %v", res.Status)
	}
	if !res.Model[0] || res.Model[1] {
		t.Errorf("model = %v, want [true false]", res.Model)
	}
}

func TestContradiction(t *testing.T) {
	res := solve(t, 1, [][]int{{1}, {-1}})
	if res.Status != Unsat {
		t.Fatalf("x ∧ ¬x must be UNSAT, got %v", res.Status)
	}
}

func TestEmptyClause(t *testing.T) {
	res := solve(t, 1, [][]int{{}})
	if res.Status != Unsat {
		t.Fatalf("empty clause must be UNSAT, got %v", res.Status)
	}
}

func TestTautologicalClauseIgnored(t *testing.T) {
	res := solve(t, 2, [][]int{{1, -1}, {2}})
	if res.Status != Sat || !res.Model[1] {
		t.Fatalf("got %v %v", res.Status, res.Model)
	}
}

func TestSimpleImplicationChain(t *testing.T) {
	// x1 ∧ (¬x1∨x2) ∧ (¬x2∨x3) ∧ (¬x3∨x4) forces all true.
	res := solve(t, 4, [][]int{{1}, {-1, 2}, {-2, 3}, {-3, 4}})
	if res.Status != Sat {
		t.Fatalf("got %v", res.Status)
	}
	for i, v := range res.Model {
		if !v {
			t.Errorf("x%d = false, want true", i+1)
		}
	}
}

func TestPigeonhole32(t *testing.T) {
	// 3 pigeons, 2 holes: UNSAT. Var p_{i,h} = i*2 + h + 1 for i in 0..2, h in 0..1.
	v := func(i, h int) int { return i*2 + h + 1 }
	var cls [][]int
	for i := 0; i < 3; i++ {
		cls = append(cls, []int{v(i, 0), v(i, 1)})
	}
	for h := 0; h < 2; h++ {
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				cls = append(cls, []int{-v(i, h), -v(j, h)})
			}
		}
	}
	res := solve(t, 6, cls)
	if res.Status != Unsat {
		t.Fatalf("PHP(3,2) must be UNSAT, got %v", res.Status)
	}
}

func TestPigeonhole43(t *testing.T) {
	v := func(i, h int) int { return i*3 + h + 1 }
	var cls [][]int
	for i := 0; i < 4; i++ {
		cls = append(cls, []int{v(i, 0), v(i, 1), v(i, 2)})
	}
	for h := 0; h < 3; h++ {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				cls = append(cls, []int{-v(i, h), -v(j, h)})
			}
		}
	}
	res := solve(t, 12, cls)
	if res.Status != Unsat {
		t.Fatalf("PHP(4,3) must be UNSAT, got %v", res.Status)
	}
}

func TestModelVerifies(t *testing.T) {
	cls := [][]int{{1, 2, 3}, {-1, -2}, {-2, -3}, {-1, -3}, {2, 3}}
	res := solve(t, 3, cls)
	if res.Status != Sat {
		t.Fatalf("got %v", res.Status)
	}
	if !Verify(cls, res.Model) {
		t.Fatalf("model %v does not satisfy clauses", res.Model)
	}
}

func TestBudget(t *testing.T) {
	// A hard-ish pigeonhole with budget 1 must give Unknown + ErrBudget.
	v := func(i, h int) int { return i*5 + h + 1 }
	var cls [][]int
	for i := 0; i < 6; i++ {
		var c []int
		for h := 0; h < 5; h++ {
			c = append(c, v(i, h))
		}
		cls = append(cls, c)
	}
	for h := 0; h < 5; h++ {
		for i := 0; i < 6; i++ {
			for j := i + 1; j < 6; j++ {
				cls = append(cls, []int{-v(i, h), -v(j, h)})
			}
		}
	}
	res, err := Solve(30, cls, Options{MaxDecisions: 1})
	if err != ErrBudget || res.Status != Unknown {
		t.Fatalf("got %v, %v; want Unknown, ErrBudget", res.Status, err)
	}
}

// bruteSat enumerates all assignments; reference for the fuzz test.
func bruteSat(numVars int, clauses [][]int) bool {
	for m := 0; m < 1<<uint(numVars); m++ {
		model := make([]bool, numVars)
		for i := range model {
			model[i] = m&(1<<uint(i)) != 0
		}
		if Verify(clauses, model) {
			return true
		}
	}
	return false
}

func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 500; iter++ {
		numVars := 3 + rng.Intn(8)
		numClauses := 1 + rng.Intn(30)
		clauses := make([][]int, numClauses)
		for i := range clauses {
			width := 1 + rng.Intn(3)
			cl := make([]int, width)
			for j := range cl {
				v := 1 + rng.Intn(numVars)
				if rng.Intn(2) == 0 {
					v = -v
				}
				cl[j] = v
			}
			clauses[i] = cl
		}
		res, err := Solve(numVars, clauses, Options{})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		want := bruteSat(numVars, clauses)
		got := res.Status == Sat
		if got != want {
			t.Fatalf("iter %d: solver says %v, brute force says sat=%v\nclauses: %v", iter, res.Status, want, clauses)
		}
		if got && !Verify(clauses, res.Model) {
			t.Fatalf("iter %d: returned model does not verify", iter)
		}
	}
}

func TestSortLits(t *testing.T) {
	cl := []int{-3, 1, 3, -1, 2}
	SortLits(cl)
	want := []int{-1, 1, 2, -3, 3}
	for i := range want {
		if cl[i] != want[i] {
			t.Fatalf("SortLits = %v, want %v", cl, want)
		}
	}
}

func TestStatusString(t *testing.T) {
	if Sat.String() != "SAT" || Unsat.String() != "UNSAT" || Unknown.String() != "UNKNOWN" {
		t.Errorf("status strings wrong")
	}
}

// TestNearThreshold3SAT exercises clause learning on instances near the
// 3-SAT phase transition (ratio ≈ 4.26), where plain DPLL struggles. The
// solver must decide every instance within a modest decision budget, and
// SAT answers must verify.
func TestNearThreshold3SAT(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	const vars = 60
	const clausesN = 256
	for inst := 0; inst < 10; inst++ {
		clauses := make([][]int, clausesN)
		for i := range clauses {
			cl := make([]int, 3)
			for j := range cl {
				v := 1 + rng.Intn(vars)
				if rng.Intn(2) == 0 {
					v = -v
				}
				cl[j] = v
			}
			clauses[i] = cl
		}
		res, err := Solve(vars, clauses, Options{MaxDecisions: 500000})
		if err != nil {
			t.Fatalf("instance %d: budget exhausted: %v", inst, err)
		}
		if res.Status == Unknown {
			t.Fatalf("instance %d: unknown", inst)
		}
		if res.Status == Sat && !Verify(clauses, res.Model) {
			t.Fatalf("instance %d: model does not verify", inst)
		}
	}
}

// TestLearnedUnitFixesVariable checks that a learned unit clause pins its
// variable at level zero: an implication structure where every branch on
// x=false conflicts must end with x assigned true in the model.
func TestLearnedUnitFixesVariable(t *testing.T) {
	// (x ∨ a) (x ∨ ¬a): x must be true.
	res := solve(t, 2, [][]int{{1, 2}, {1, -2}})
	if res.Status != Sat || !res.Model[0] {
		t.Fatalf("x must be forced true: %v %v", res.Status, res.Model)
	}
}
