// Package sat implements a complete propositional satisfiability solver,
// standing in for the Sat4j solver used by the JANUS prototype (§6.2).
//
// JANUS poses equivalence queries between two content formulas f and φ for
// a relation by asking for a satisfying assignment of ¬(f ↔ φ); UNSAT
// confirms equivalence. The instances are small but arrive frequently during
// training, so the solver implements the standard machinery: CDCL search
// with two-watched-literal unit propagation, first-UIP conflict-clause
// learning with non-chronological backjumping, a VSIDS-style dynamic
// activity heuristic, and Luby-sequence restarts.
package sat

import (
	"errors"
	"sort"
)

// Status is the outcome of a Solve call.
type Status int

// Solver outcomes.
const (
	Unknown Status = iota
	Sat
	Unsat
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// ErrBudget is returned when the solver exceeds its decision budget.
var ErrBudget = errors.New("sat: decision budget exhausted")

// Result carries the outcome and, when satisfiable, a model mapping each
// variable (1..NumVars) to its truth value.
type Result struct {
	Status Status
	Model  []bool // 1-indexed via Model[v-1]; valid only when Status == Sat
}

// Options configure a Solve call.
type Options struct {
	// MaxDecisions bounds the search; 0 means no bound. When exceeded,
	// Solve returns Unknown with ErrBudget. JANUS treats Unknown as a
	// failed equivalence proof (a cache miss), never as unsoundness.
	MaxDecisions int64
}

const (
	lUndef int8 = 0
	lTrue  int8 = 1
	lFalse int8 = -1
)

type clause struct {
	lits []int
}

type solver struct {
	numVars   int
	clauses   []*clause
	learned   []*clause
	watches   map[int][]*clause // literal -> clauses watching it
	assign    []int8            // 1-indexed by var
	trail     []int             // assigned literals in order
	trailLim  []int             // decision level boundaries in trail
	reason    []*clause         // per var: clause that implied it (nil for decisions)
	level     []int             // per var: decision level of its assignment
	activity  []float64
	varInc    float64
	decisions int64
	conflicts int64
	opts      Options
}

// Solve decides satisfiability of the CNF given as clauses over variables
// 1..numVars (literal +v / -v). The clause slice is not retained.
func Solve(numVars int, clauses [][]int, opts Options) (Result, error) {
	s := &solver{
		numVars:  numVars,
		watches:  make(map[int][]*clause),
		assign:   make([]int8, numVars+1),
		reason:   make([]*clause, numVars+1),
		level:    make([]int, numVars+1),
		activity: make([]float64, numVars+1),
		varInc:   1.0,
		opts:     opts,
	}
	for _, raw := range clauses {
		cl := simplifyClause(raw)
		switch {
		case cl == nil:
			continue // tautological clause
		case len(cl) == 0:
			return Result{Status: Unsat}, nil
		case len(cl) == 1:
			if !s.enqueue(cl[0], nil) {
				return Result{Status: Unsat}, nil
			}
		default:
			c := &clause{lits: cl}
			s.clauses = append(s.clauses, c)
			s.watch(c, cl[0])
			s.watch(c, cl[1])
		}
	}
	if s.propagate() != nil {
		return Result{Status: Unsat}, nil
	}
	st, err := s.search()
	res := Result{Status: st}
	if st == Sat {
		res.Model = make([]bool, numVars)
		for v := 1; v <= numVars; v++ {
			res.Model[v-1] = s.assign[v] == lTrue
		}
	}
	return res, err
}

// simplifyClause dedups literals and returns nil for tautologies.
func simplifyClause(raw []int) []int {
	seen := make(map[int]struct{}, len(raw))
	out := make([]int, 0, len(raw))
	for _, l := range raw {
		if l == 0 {
			continue
		}
		if _, dup := seen[l]; dup {
			continue
		}
		if _, opp := seen[-l]; opp {
			return nil
		}
		seen[l] = struct{}{}
		out = append(out, l)
	}
	return out
}

func (s *solver) watch(c *clause, lit int) {
	s.watches[-lit] = append(s.watches[-lit], c)
}

func (s *solver) value(lit int) int8 {
	v := lit
	if v < 0 {
		v = -v
	}
	a := s.assign[v]
	if lit < 0 {
		return -a
	}
	return a
}

// enqueue records lit as true; returns false on immediate conflict.
func (s *solver) enqueue(lit int, from *clause) bool {
	switch s.value(lit) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := lit
	val := lTrue
	if v < 0 {
		v = -v
		val = lFalse
	}
	s.assign[v] = val
	s.reason[v] = from
	s.level[v] = s.decisionLevel()
	s.trail = append(s.trail, lit)
	return true
}

// propagate runs two-watched-literal unit propagation over the trail.
// It returns the conflicting clause, or nil.
func (s *solver) propagate() *clause {
	for qhead := 0; qhead < len(s.trail); qhead++ {
		lit := s.trail[qhead]
		// Clauses watching ¬lit may have become unit or false.
		ws := s.watches[lit]
		s.watches[lit] = nil
		kept := ws[:0]
		var conflict *clause
		for i, c := range ws {
			if conflict != nil {
				kept = append(kept, ws[i:]...)
				break
			}
			if !s.updateWatch(c, -lit) {
				// Clause is unit or conflicting under current assignment.
				unit := s.otherWatched(c, -lit)
				kept = append(kept, c)
				if unit == 0 || !s.enqueue(unit, c) {
					conflict = c
				}
			}
		}
		if len(kept) > 0 {
			s.watches[lit] = append(s.watches[lit], kept...)
		}
		if conflict != nil {
			return conflict
		}
	}
	return nil
}

// updateWatch tries to move the watch of c off falseLit to another
// non-false literal. Returns true if moved.
func (s *solver) updateWatch(c *clause, falseLit int) bool {
	lits := c.lits
	// Keep watched literals in lits[0] and lits[1].
	if lits[0] == falseLit {
		lits[0], lits[1] = lits[1], lits[0]
	}
	// lits[1] is the false watch now; if lits[0] is true the clause is
	// satisfied — rewatch lits[1] anyway is unnecessary; keep as is.
	if s.value(lits[0]) == lTrue {
		s.watch(c, falseLit) // keep watching; cheap and sound
		return true
	}
	for i := 2; i < len(lits); i++ {
		if s.value(lits[i]) != lFalse {
			lits[1], lits[i] = lits[i], lits[1]
			s.watch(c, lits[1])
			return true
		}
	}
	return false
}

// otherWatched returns the watched literal of c that is not falseLit, or 0
// if it is already false (conflict).
func (s *solver) otherWatched(c *clause, falseLit int) int {
	other := c.lits[0]
	if other == falseLit {
		other = c.lits[1]
	}
	if s.value(other) == lFalse {
		return 0
	}
	return other
}

func (s *solver) decisionLevel() int { return len(s.trailLim) }

func (s *solver) newDecisionLevel() { s.trailLim = append(s.trailLim, len(s.trail)) }

// cancelUntil undoes assignments above the given decision level.
func (s *solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		lit := s.trail[i]
		v := lit
		if v < 0 {
			v = -v
		}
		s.assign[v] = lUndef
		s.reason[v] = nil
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
}

// bump increases a variable's activity, rescaling on overflow.
func (s *solver) bump(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
}

// pickBranchVar returns the unassigned variable with highest activity,
// breaking ties by index for determinism.
func (s *solver) pickBranchVar() int {
	best, bestAct := 0, -1.0
	for v := 1; v <= s.numVars; v++ {
		if s.assign[v] == lUndef && s.activity[v] > bestAct {
			best, bestAct = v, s.activity[v]
		}
	}
	return best
}

// analyze derives the first-UIP learned clause from a conflict and the
// decision level to backjump to. The learned clause's asserting literal is
// placed first.
func (s *solver) analyze(conflict *clause) (learned []int, backLevel int) {
	seen := make([]bool, s.numVars+1)
	counter := 0 // literals of the current level awaiting resolution
	var out []int
	idx := len(s.trail) - 1
	reason := conflict
	var asserting int
	for {
		for _, l := range reason.lits {
			v := l
			if v < 0 {
				v = -v
			}
			if seen[v] || s.level[v] == 0 {
				continue
			}
			seen[v] = true
			s.bump(v)
			if s.level[v] == s.decisionLevel() {
				counter++
			} else {
				out = append(out, l)
			}
		}
		// Walk the trail backwards to the next marked literal of the
		// current level.
		for {
			v := s.trail[idx]
			if v < 0 {
				v = -v
			}
			if seen[v] {
				break
			}
			idx--
		}
		v := s.trail[idx]
		lit := v
		if v < 0 {
			v = -v
		}
		// seen[v] stays set: the variable is resolved away, and its
		// reason clause mentions it again (as the implied literal).
		counter--
		idx--
		if counter == 0 {
			asserting = -lit
			break
		}
		reason = s.reason[v]
	}
	learned = append([]int{asserting}, out...)
	backLevel = 0
	// Backjump to the second-highest level in the clause, keeping the
	// asserting literal's watch position at index 1.
	best := 1
	for i := 1; i < len(learned); i++ {
		v := learned[i]
		if v < 0 {
			v = -v
		}
		if s.level[v] > backLevel {
			backLevel = s.level[v]
			best = i
		}
	}
	if len(learned) > 1 {
		learned[1], learned[best] = learned[best], learned[1]
	}
	return learned, backLevel
}

// luby computes the Luby restart sequence value for index i (1-based).
func luby(i int64) int64 {
	var k uint = 1
	for ; (int64(1)<<k)-1 < i; k++ {
	}
	for (int64(1)<<k)-1 != i {
		k--
		i -= (int64(1) << k) - 1
	}
	return int64(1) << (k - 1)
}

func (s *solver) search() (Status, error) {
	var restarts int64 = 1
	budget := 64 * luby(restarts)
	var sinceRestart int64
	for {
		conflict := s.propagate()
		if conflict != nil {
			s.conflicts++
			sinceRestart++
			if s.decisionLevel() == 0 {
				return Unsat, nil
			}
			learned, backLevel := s.analyze(conflict)
			s.varInc *= 1.05
			s.cancelUntil(backLevel)
			if len(learned) == 1 {
				if !s.enqueue(learned[0], nil) {
					return Unsat, nil
				}
				continue
			}
			c := &clause{lits: learned}
			s.learned = append(s.learned, c)
			s.watch(c, learned[0])
			s.watch(c, learned[1])
			if !s.enqueue(learned[0], c) {
				return Unsat, nil
			}
			continue
		}
		if sinceRestart >= budget && s.decisionLevel() > 0 {
			// Luby restart: learned clauses persist, assignments reset.
			sinceRestart = 0
			restarts++
			budget = 64 * luby(restarts)
			s.cancelUntil(0)
			continue
		}
		v := s.pickBranchVar()
		if v == 0 {
			return Sat, nil
		}
		s.decisions++
		if s.opts.MaxDecisions > 0 && s.decisions > s.opts.MaxDecisions {
			return Unknown, ErrBudget
		}
		s.newDecisionLevel()
		s.enqueue(-v, nil) // branch false first: content formulas are sparse
	}
}

// Verify checks that model satisfies all clauses; used by tests and as a
// cheap internal sanity check by callers that cannot tolerate a solver bug.
func Verify(clauses [][]int, model []bool) bool {
	for _, cl := range clauses {
		ok := false
		for _, l := range cl {
			v := l
			if v < 0 {
				v = -v
			}
			if v-1 >= len(model) {
				return false
			}
			if (l > 0) == model[v-1] {
				ok = true
				break
			}
		}
		if !ok && len(cl) > 0 {
			// A tautological clause simplifies to nil earlier; raw
			// tautologies still count as satisfied.
			if !tautological(cl) {
				return false
			}
		}
	}
	return true
}

func tautological(cl []int) bool {
	seen := make(map[int]struct{}, len(cl))
	for _, l := range cl {
		if _, ok := seen[-l]; ok {
			return true
		}
		seen[l] = struct{}{}
	}
	return false
}

// SortLits sorts a clause's literals by variable then sign; exported for
// deterministic golden tests of CNF dumps.
func SortLits(cl []int) {
	sort.Slice(cl, func(i, j int) bool {
		ai, aj := cl[i], cl[j]
		vi, vj := ai, aj
		if vi < 0 {
			vi = -vi
		}
		if vj < 0 {
			vj = -vj
		}
		if vi != vj {
			return vi < vj
		}
		return ai < aj
	})
}
