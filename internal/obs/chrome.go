package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// consumed by Perfetto and chrome://tracing). Timestamps and durations
// are microseconds; fractional values keep nanosecond precision.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the top-level JSON object.
type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	DisplayUnit string        `json:"displayTimeUnit"`
}

const chromePid = 1

// WriteChromeJSON exports the retained events as a Chrome trace-event
// file: one lane (thread) per worker, spans as complete ("X") events,
// instants (aborts, cache queries) as instant ("i") events carrying
// their attribution in args. The output opens directly in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing.
func (t *Trace) WriteChromeJSON(w io.Writer) error {
	return writeChromeJSON(w, t.Events())
}

// writeChromeJSON renders an event slice; split out so exports are
// testable against hand-built timelines.
func writeChromeJSON(w io.Writer, events []Event) error {
	var out chromeFile
	out.DisplayUnit = "ns"

	// Thread-name metadata, one per lane actually used.
	workers := map[int32]bool{}
	for _, e := range events {
		workers[e.Worker] = true
	}
	ids := make([]int32, 0, len(workers))
	for id := range workers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		name := "worker " + strconv.Itoa(int(id))
		if id < 0 {
			name = "untracked"
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePid, Tid: laneTid(id),
			Args: map[string]any{"name": name},
		})
	}

	for _, e := range events {
		ce := chromeEvent{
			Name: e.Type.String(),
			Ts:   float64(e.When) / 1e3,
			Pid:  chromePid,
			Tid:  laneTid(e.Worker),
			Args: map[string]any{"task": e.Task},
		}
		if e.Attempt > 0 {
			ce.Args["attempt"] = e.Attempt
		}
		if e.Reason != "" {
			ce.Args["reason"] = e.Reason
		}
		if e.Loc != "" {
			ce.Args["loc"] = e.Loc
		}
		if e.Detail != "" {
			ce.Args["detail"] = e.Detail
		}
		if e.Dur > 0 && !isMarker(e.Type) {
			ce.Ph = "X"
			ce.Dur = float64(e.Dur) / 1e3
			if e.Type == EvTask {
				ce.Name = "task " + strconv.Itoa(int(e.Task))
			}
		} else {
			ce.Ph = "i"
			ce.S = markerScope(e.Type)
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// isMarker reports whether an event type is a point-in-time marker —
// cache queries, governor transitions, spec rejections — that must
// render as a Chrome instant ("i") even if a duration sneaks onto it,
// never as a zero-width span.
func isMarker(t EventType) bool {
	switch t {
	case EvCacheHit, EvCacheMiss, EvCacheFallback,
		EvGovDemote, EvGovProbe, EvGovRestore, EvSpecRejected:
		return true
	default:
		return false
	}
}

// markerScope picks the instant's highlight scope: governor transitions
// and spec rejections are run-scoped incidents ("g" draws them across
// the whole timeline); everything else stays on its thread lane.
func markerScope(t EventType) string {
	switch t {
	case EvGovDemote, EvGovProbe, EvGovRestore, EvSpecRejected:
		return "g"
	default:
		return "t"
	}
}

// laneTid maps a worker id to a Chrome thread id (tids must be ≥ 0 and
// stable; the untracked lane sorts last).
func laneTid(worker int32) int {
	if worker < 0 {
		return 1 << 20
	}
	return int(worker)
}
