package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultLaneCap is the default per-worker ring capacity.
const DefaultLaneCap = 1 << 16

// Trace is the standard Tracer: a set of per-worker ring buffers plus
// per-event-type counters and per-span-type latency histograms. Each
// worker writes to its own lane behind its own mutex, so emission never
// contends across workers; when a lane fills, the oldest events are
// overwritten and counted in Dropped.
type Trace struct {
	epoch   time.Time
	laneCap int

	mu    sync.RWMutex
	lanes []*lane // index = worker+1; lane 0 collects Worker == -1

	dropped atomic.Int64
	counts  [numEventTypes]atomic.Int64
	hists   [numEventTypes]Hist
}

// lane is one worker's ring.
type lane struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	wrapped bool
}

// NewTrace returns a Trace whose per-worker rings hold laneCap events
// each (DefaultLaneCap when laneCap <= 0). The epoch is now.
func NewTrace(laneCap int) *Trace {
	if laneCap <= 0 {
		laneCap = DefaultLaneCap
	}
	return &Trace{epoch: time.Now(), laneCap: laneCap}
}

// Now implements Tracer.
func (t *Trace) Now() int64 { return epochNow(t.epoch) }

// Emit implements Tracer.
func (t *Trace) Emit(e Event) {
	t.counts[e.Type].Add(1)
	if e.Dur > 0 {
		t.hists[e.Type].Record(e.Dur)
	}
	l := t.lane(int(e.Worker) + 1)
	l.mu.Lock()
	if l.wrapped {
		t.dropped.Add(1)
	}
	l.buf[l.next] = e
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
		l.wrapped = true
	}
	l.mu.Unlock()
}

// lane returns the ring at index i, growing the lane table on demand.
func (t *Trace) lane(i int) *lane {
	if i < 0 {
		i = 0
	}
	t.mu.RLock()
	if i < len(t.lanes) {
		l := t.lanes[i]
		t.mu.RUnlock()
		return l
	}
	t.mu.RUnlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.lanes) <= i {
		t.lanes = append(t.lanes, &lane{buf: make([]Event, t.laneCap)})
	}
	return t.lanes[i]
}

// Dropped returns the number of events overwritten by ring wraparound.
func (t *Trace) Dropped() int64 { return t.dropped.Load() }

// Count returns how many events of the given type were emitted
// (including any later dropped).
func (t *Trace) Count(ev EventType) int64 { return t.counts[ev].Load() }

// Hist returns the latency histogram for a span event type (validation
// time for EvTxValidate, task service time for EvTask, and so on).
func (t *Trace) Hist(ev EventType) *Hist { return &t.hists[ev] }

// Workers returns the number of worker lanes seen so far.
func (t *Trace) Workers() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.lanes) == 0 {
		return 0
	}
	return len(t.lanes) - 1
}

// Events returns the retained events of every lane merged into one
// timeline ordered by When (ties keep lane order). The result is a copy;
// the trace may keep recording.
func (t *Trace) Events() []Event {
	t.mu.RLock()
	lanes := make([]*lane, len(t.lanes))
	copy(lanes, t.lanes)
	t.mu.RUnlock()
	var out []Event
	for _, l := range lanes {
		l.mu.Lock()
		if l.wrapped {
			out = append(out, l.buf[l.next:]...)
		}
		out = append(out, l.buf[:l.next]...)
		l.mu.Unlock()
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].When < out[j].When })
	return out
}

// Reset drops all retained events and zeroes counters and histograms,
// keeping the epoch so timestamps stay comparable across runs.
func (t *Trace) Reset() {
	t.mu.Lock()
	t.lanes = nil
	t.mu.Unlock()
	t.dropped.Store(0)
	for i := range t.counts {
		t.counts[i].Store(0)
		t.hists[i].reset()
	}
}
