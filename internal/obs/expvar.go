package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// published guards expvar registration: expvar.Publish panics on
// duplicate names, but callers (one Runner per run, tests) legitimately
// re-publish. The snapshot source is swapped instead.
var published struct {
	sync.Mutex
	traces map[string]*Trace
}

// Publish exports a trace's aggregate counters and histograms under
// expvar name (default "janus.obs"). Re-publishing under the same name
// atomically swaps the underlying trace, so each run's Runner can call
// it without coordination. The exported value is a JSON object with
// per-event-type counts, dropped-event count, and histogram summaries
// for every span type.
func Publish(name string, t *Trace) {
	if name == "" {
		name = "janus.obs"
	}
	published.Lock()
	defer published.Unlock()
	if published.traces == nil {
		published.traces = make(map[string]*Trace)
	}
	if _, ok := published.traces[name]; !ok {
		n := name
		expvar.Publish(n, expvar.Func(func() any {
			published.Lock()
			tr := published.traces[n]
			published.Unlock()
			if tr == nil {
				return nil
			}
			return tr.Vars()
		}))
	}
	published.traces[name] = t
}

// Vars returns the trace's aggregate state as an expvar-friendly value.
func (t *Trace) Vars() map[string]any {
	out := map[string]any{
		"dropped": t.Dropped(),
		"workers": t.Workers(),
	}
	counts := map[string]int64{}
	for ev := EventType(1); ev < numEventTypes; ev++ {
		if n := t.Count(ev); n > 0 {
			counts[ev.String()] = n
		}
	}
	out["counts"] = counts
	hists := map[string]any{}
	for _, ev := range []EventType{EvTask, EvTxRun, EvTxValidate, EvTxCommit, EvCommitWait, EvTxBackoff, EvTxSerial} {
		h := t.Hist(ev)
		if h.Count() == 0 {
			continue
		}
		hists[ev.String()] = map[string]any{
			"count":   h.Count(),
			"mean_ns": int64(h.Mean()),
			"p50_ns":  h.Quantile(0.50),
			"p95_ns":  h.Quantile(0.95),
			"p99_ns":  h.Quantile(0.99),
			"buckets": h.Snapshot(),
		}
	}
	out["hist"] = hists
	return out
}

// Serve starts the debug HTTP endpoint on addr (e.g. ":6060") in a
// background goroutine: /debug/vars (expvar, including published
// traces) and /debug/pprof/*. It returns the bound address, useful when
// addr has port 0. The listener stays open for the process lifetime —
// the endpoint is a diagnostics tap, not a managed server.
func Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() { _ = http.Serve(ln, mux) }()
	return ln.Addr().String(), nil
}
