package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// goldenEvents is a hand-built timeline covering every export shape:
// spans on two worker lanes, an abort with full attribution, cache
// instants, backoff and serial-escalation spans, governor transitions,
// a spec rejection, and an event from an unknown worker.
func goldenEvents() []Event {
	return []Event{
		{Type: EvTask, When: 1000, Dur: 9000, Worker: 0, Task: 1, Attempt: 1},
		{Type: EvTxBegin, When: 1100, Worker: 0, Task: 1, Attempt: 1},
		{Type: EvTxRun, When: 1200, Dur: 3000, Worker: 0, Task: 1, Attempt: 1},
		{Type: EvTxValidate, When: 4300, Dur: 700, Worker: 0, Task: 1, Attempt: 1},
		{Type: EvTxCommit, When: 5100, Dur: 400, Worker: 0, Task: 1, Attempt: 1},
		{Type: EvTask, When: 900, Dur: 12000, Worker: 1, Task: 2, Attempt: 2},
		{Type: EvCacheMiss, When: 2100, Worker: 1, Task: 2, Attempt: 1, Loc: "work"},
		{Type: EvCacheFallback, When: 2200, Worker: 1, Task: 2, Attempt: 1, Loc: "work"},
		{Type: EvTxAbort, When: 2400, Worker: 1, Task: 2, Attempt: 1,
			Reason: "same-read", Loc: "work", Detail: "[num.add(1) num.load] vs [num.add(2)]"},
		{Type: EvTxBackoff, When: 2500, Dur: 800, Worker: 1, Task: 2, Attempt: 1},
		{Type: EvTxSerial, When: 3400, Dur: 2000, Worker: 1, Task: 2, Attempt: 3},
		{Type: EvCacheHit, When: 6000, Worker: -1, Task: 3},
		{Type: EvGovDemote, When: 6500, Worker: -1, Detail: "miss rate 0.62 ≥ 0.50"},
		{Type: EvGovProbe, When: 7000, Worker: -1, Detail: "probe miss rate 0.10"},
		{Type: EvGovRestore, When: 7500, Worker: -1, Detail: "2 clean probes"},
		{Type: EvSpecRejected, When: 8000, Worker: -1, Detail: "spec checksum mismatch"},
	}
}

func TestWriteChromeJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := writeChromeJSON(&buf, goldenEvents()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "chrome.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("export drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestChromeJSONWellFormed checks the structural invariants Perfetto
// relies on: valid JSON, a traceEvents array, metadata naming every
// lane, spans as X events with durations, instants as i events.
func TestChromeJSONWellFormed(t *testing.T) {
	tr := NewTrace(64)
	ctx := Ctx{T: tr, Worker: 0, Task: 1, Attempt: 1}
	start := ctx.Now()
	ctx.Instant(EvTxBegin)
	ctx.Cache(EvCacheMiss, "loc", "")
	ctx.Abort("commute", "loc", "[a] vs [b]")
	ctx.End(EvTask, start)

	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	var spans, instants, meta int
	for _, e := range out.TraceEvents {
		switch e["ph"] {
		case "X":
			spans++
			if e["dur"] == nil {
				t.Fatalf("span without dur: %v", e)
			}
		case "i":
			instants++
		case "M":
			meta++
		default:
			t.Fatalf("unexpected phase %v", e["ph"])
		}
	}
	if spans != 1 || instants != 3 || meta != 1 {
		t.Fatalf("spans=%d instants=%d meta=%d, want 1/3/1", spans, instants, meta)
	}
	for _, e := range out.TraceEvents {
		if e["name"] == "tx.abort" {
			args := e["args"].(map[string]any)
			if args["reason"] != "commute" || args["loc"] != "loc" {
				t.Fatalf("abort args lost attribution: %v", args)
			}
		}
	}
}

// TestChromeMarkerEvents checks marker types always export as instant
// ("i") records — even when a duration sneaks onto the event — and that
// governor/spec incidents get global scope while cache queries stay on
// their thread lane.
func TestChromeMarkerEvents(t *testing.T) {
	events := []Event{
		{Type: EvGovDemote, When: 100, Dur: 50, Worker: -1, Detail: "abort rate 0.80 ≥ 0.75"},
		{Type: EvGovProbe, When: 200, Worker: -1},
		{Type: EvGovRestore, When: 300, Worker: -1},
		{Type: EvSpecRejected, When: 400, Worker: -1, Detail: "bad magic"},
		{Type: EvCacheHit, When: 500, Worker: 0, Task: 1, Loc: "work"},
		{Type: EvCacheMiss, When: 600, Worker: 0, Task: 1, Loc: "work"},
		{Type: EvCacheFallback, When: 700, Worker: 0, Task: 1, Loc: "work"},
	}
	var buf bytes.Buffer
	if err := writeChromeJSON(&buf, events); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	wantScope := map[string]string{
		"governor.demote":  "g",
		"governor.probe":   "g",
		"governor.restore": "g",
		"spec.rejected":    "g",
		"cache.hit":        "t",
		"cache.miss":       "t",
		"cache.fallback":   "t",
	}
	seen := 0
	for _, e := range out.TraceEvents {
		name, _ := e["name"].(string)
		scope, ok := wantScope[name]
		if !ok {
			continue
		}
		seen++
		if e["ph"] != "i" {
			t.Errorf("%s: ph = %v, want \"i\"", name, e["ph"])
		}
		if e["s"] != scope {
			t.Errorf("%s: scope = %v, want %q", name, e["s"], scope)
		}
		if e["dur"] != nil {
			t.Errorf("%s: instant must not carry dur, got %v", name, e["dur"])
		}
	}
	if seen != len(wantScope) {
		t.Fatalf("exported %d marker events, want %d", seen, len(wantScope))
	}
}
