// Package obs is the runtime observability layer: low-overhead event
// tracing and latency metrics for the JANUS protocol. The paper's entire
// evaluation (§7, Figures 10–11) is built on runtime accounting — commits
// versus retries, cache hits versus fallbacks — and this package turns
// those end-of-run aggregates into a timeline: every transaction attempt,
// validation, commit, abort (with the *reason* the detector rejected it:
// which check failed, on which location pair), and commutativity-cache
// query is a typed Event on a per-worker ring buffer.
//
// The design rule is that a disabled tracer costs nothing: all emission
// goes through a value-type Ctx whose methods are no-ops (and allocation
// free) when its Tracer is nil, so the Exec/validate/commit hot paths pay
// a single predictable branch. When enabled, events land in fixed-size
// per-worker rings (one uncontended mutex each) and latency samples feed
// lock-free power-of-two histograms.
//
// Captured traces export to the Chrome trace-event format
// (Trace.WriteChromeJSON) and open directly in Perfetto or
// chrome://tracing with one lane per worker; aggregate counters and
// histograms export via expvar (Publish) and an optional debug HTTP
// endpoint with pprof (Serve).
package obs

import "time"

// EventType identifies what happened.
type EventType uint8

// Event types. Spans (Dur > 0) describe an interval; the rest are
// instants. The Tx* events follow the protocol steps of Figure 7: a
// transaction attempt begins (snapshot/privatization), runs the task
// body, optionally waits for its commit turn (ordered mode), validates
// against the committed history, and either commits or aborts.
const (
	EvNone EventType = iota
	// EvTask spans a task's whole service time on a worker: first
	// attempt through successful commit, retries included.
	EvTask
	// EvTxBegin marks CREATETRANSACTION: snapshot taken, clock read.
	EvTxBegin
	// EvTxRun spans one attempt's task-body execution.
	EvTxRun
	// EvTxValidate spans one conflict-detection pass over the committed
	// history (DETECTCONFLICTS of Figure 8).
	EvTxValidate
	// EvTxCommit spans the commit critical section: write lock, history
	// re-check, log replay, clock advance.
	EvTxCommit
	// EvTxAbort marks a failed validation. Reason carries which check
	// failed (same-read, commute, write-set, relaxation…), Loc the
	// conflicting projection location, Detail the symbolic shape pair.
	EvTxAbort
	// EvCommitWait spans time spent waiting for the commit turn
	// (ordered mode) or re-detecting after a lost commit race.
	EvCommitWait
	// EvTxBackoff spans a contention-management backoff sleep between
	// retry attempts (Config.Backoff in internal/stm).
	EvTxBackoff
	// EvTxSerial spans an escalation to irrevocable serial mode: the
	// starving transaction holds the global write lock for its whole
	// execute+commit (Config.SerializeAfter in internal/stm).
	EvTxSerial
	// EvCacheHit / EvCacheMiss mark commutativity-cache lookups during
	// validation; EvCacheFallback marks a query answered by the
	// write-set fallback instead of a proved condition.
	EvCacheHit
	EvCacheMiss
	EvCacheFallback
	// EvGovDemote marks a health-governor demotion (healthy→degraded or
	// degraded→tripped); Detail carries the transition and the window
	// rates that triggered it.
	EvGovDemote
	// EvGovProbe marks a promotion probe: one degraded-mode detection
	// routed through the demoted primary detector to sample whether the
	// commutativity cache is answering again. Detail reports the probe
	// outcome (clean/dirty).
	EvGovProbe
	// EvGovRestore marks a health-governor promotion (tripped→degraded
	// or degraded→healthy after consecutive clean probes).
	EvGovRestore
	// EvSpecRejected marks a lenient LoadSpec rejecting a corrupt or
	// incompatible trained-spec artifact; the run degrades to write-set
	// detection instead of failing. Detail carries the rejection error.
	EvSpecRejected
	// EvCommitStripe spans a commit's footprint-stripe acquisition: the
	// wait to lock the sorted stripe set covering the transaction's
	// locations. Only overlapping-footprint commits contend here.
	EvCommitStripe
	// EvCommitPipeline spans a ticketed commit's publication-turn wait:
	// replay is done, the commit time is assigned, and the committer
	// waits for every earlier commit time to finish publishing.
	EvCommitPipeline
	// EvHistoryDemote marks one committed-history entry compressed to its
	// compact record (Config.HistoryCompress): Loc carries the entry's
	// task id, Detail the retained byte count.
	EvHistoryDemote

	numEventTypes
)

// String renders the event type as it appears in exported traces.
func (t EventType) String() string {
	switch t {
	case EvTask:
		return "task"
	case EvTxBegin:
		return "tx.begin"
	case EvTxRun:
		return "tx.run"
	case EvTxValidate:
		return "tx.validate"
	case EvTxCommit:
		return "tx.commit"
	case EvTxAbort:
		return "tx.abort"
	case EvCommitWait:
		return "commit.wait"
	case EvTxBackoff:
		return "tx.backoff"
	case EvTxSerial:
		return "tx.serial"
	case EvCacheHit:
		return "cache.hit"
	case EvCacheMiss:
		return "cache.miss"
	case EvCacheFallback:
		return "cache.fallback"
	case EvGovDemote:
		return "governor.demote"
	case EvGovProbe:
		return "governor.probe"
	case EvGovRestore:
		return "governor.restore"
	case EvSpecRejected:
		return "spec.rejected"
	case EvCommitStripe:
		return "commit.stripe"
	case EvCommitPipeline:
		return "commit.pipeline"
	case EvHistoryDemote:
		return "history.demote"
	default:
		return "none"
	}
}

// Event is one timeline entry. The struct is a plain value — emitting one
// never allocates — and all attribution fields are optional.
type Event struct {
	Type EventType
	// When is nanoseconds since the trace epoch (Tracer.Now).
	When int64
	// Dur is the span length in nanoseconds; 0 for instant events.
	Dur int64
	// Worker is the emitting worker's lane (0-based); -1 when unknown.
	Worker int32
	// Task is the transaction/task identifier (1-based).
	Task int32
	// Attempt numbers the task's execution attempts from 1.
	Attempt int32
	// Reason names the failed check for EvTxAbort events.
	Reason string
	// Loc is the conflicting projection location (aborts) or queried
	// location (cache events).
	Loc string
	// Detail carries free-form attribution, e.g. the symbolic shape pair
	// of the sequences whose commutativity check failed.
	Detail string
}

// Tracer receives events. Implementations must be safe for concurrent
// use. A nil Tracer disables tracing; all emission helpers (Ctx) treat
// nil as "off" and compile to cheap branches.
type Tracer interface {
	// Emit records one event. The event's When field must already be
	// stamped (see Now).
	Emit(e Event)
	// Now returns nanoseconds since the tracer's epoch, from a
	// monotonic clock.
	Now() int64
}

// Ctx binds a Tracer to one transaction attempt's identity (worker,
// task, attempt). It is a value type passed down the hot path; the zero
// Ctx is valid and disabled. Callers must guard any work that builds
// attribution strings behind Enabled.
type Ctx struct {
	T       Tracer
	Worker  int32
	Task    int32
	Attempt int32
}

// Enabled reports whether events will be recorded.
func (c Ctx) Enabled() bool { return c.T != nil }

// Now returns the tracer clock, or 0 when disabled. Disabled spans then
// carry start=0 into End, which discards them without reading the clock.
func (c Ctx) Now() int64 {
	if c.T == nil {
		return 0
	}
	return c.T.Now()
}

// Instant emits a zero-duration event.
func (c Ctx) Instant(t EventType) {
	if c.T == nil {
		return
	}
	c.T.Emit(Event{Type: t, When: c.T.Now(), Worker: c.Worker, Task: c.Task, Attempt: c.Attempt})
}

// Abort emits an EvTxAbort instant with reason attribution. reason and
// loc are expected to be constants or re-sliced strings; callers should
// build detail only when Enabled.
func (c Ctx) Abort(reason, loc, detail string) {
	if c.T == nil {
		return
	}
	c.T.Emit(Event{
		Type: EvTxAbort, When: c.T.Now(),
		Worker: c.Worker, Task: c.Task, Attempt: c.Attempt,
		Reason: reason, Loc: loc, Detail: detail,
	})
}

// Cache emits a cache-query instant (EvCacheHit/Miss/Fallback).
func (c Ctx) Cache(t EventType, loc, detail string) {
	if c.T == nil {
		return
	}
	c.T.Emit(Event{
		Type: t, When: c.T.Now(),
		Worker: c.Worker, Task: c.Task, Attempt: c.Attempt,
		Loc: loc, Detail: detail,
	})
}

// Mark emits an attributed instant event — Loc and Detail carry
// free-form attribution — for protocol milestones that are neither spans
// nor aborts (e.g. a history demotion with its retained byte count).
func (c Ctx) Mark(t EventType, loc, detail string) {
	if c.T == nil {
		return
	}
	c.T.Emit(Event{
		Type: t, When: c.T.Now(),
		Worker: c.Worker, Task: c.Task, Attempt: c.Attempt,
		Loc: loc, Detail: detail,
	})
}

// End emits a span event covering [start, now]. start comes from an
// earlier Now; when the Ctx is disabled both calls are no-ops.
func (c Ctx) End(t EventType, start int64) {
	if c.T == nil {
		return
	}
	now := c.T.Now()
	c.T.Emit(Event{
		Type: t, When: start, Dur: now - start,
		Worker: c.Worker, Task: c.Task, Attempt: c.Attempt,
	})
}

// epochNow is the shared monotonic clock helper for Tracer
// implementations.
func epochNow(epoch time.Time) int64 { return int64(time.Since(epoch)) }
