package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestRingConcurrentEmit drives parallel writers — several per lane —
// and checks that no event is lost or torn: every emitted event comes
// back with its fields intact and per-writer order preserved.
func TestRingConcurrentEmit(t *testing.T) {
	const (
		workers = 4
		writers = 2 // goroutines per worker lane (forces lane contention)
		events  = 500
	)
	tr := NewTrace(workers * writers * events) // no wraparound
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		for g := 0; g < writers; g++ {
			wg.Add(1)
			go func(w, g int) {
				defer wg.Done()
				for i := 0; i < events; i++ {
					// Task and Dur carry the same value so a torn
					// write (fields from two events) is detectable.
					tr.Emit(Event{
						Type:    EvTxBegin,
						When:    int64(g*events + i),
						Dur:     int64(i),
						Worker:  int32(w),
						Task:    int32(i),
						Attempt: int32(g),
					})
				}
			}(w, g)
		}
	}
	wg.Wait()

	got := tr.Events()
	if len(got) != workers*writers*events {
		t.Fatalf("retained %d events, want %d", len(got), workers*writers*events)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped %d events, want 0", tr.Dropped())
	}
	// Torn-event check plus per-writer order: for each (worker, writer)
	// stream the Task values must be exactly 0..events-1 in order.
	next := map[[2]int32]int32{}
	for _, e := range got {
		if int64(e.Task) != e.Dur {
			t.Fatalf("torn event: Task=%d Dur=%d", e.Task, e.Dur)
		}
		key := [2]int32{e.Worker, e.Attempt}
		if e.Task != next[key] {
			t.Fatalf("worker %d writer %d: got task %d, want %d (lost or reordered)",
				e.Worker, e.Attempt, e.Task, next[key])
		}
		next[key]++
	}
	for key, n := range next {
		if n != events {
			t.Fatalf("stream %v delivered %d events, want %d", key, n, events)
		}
	}
}

func TestRingWraparound(t *testing.T) {
	tr := NewTrace(8)
	for i := 0; i < 20; i++ {
		tr.Emit(Event{Type: EvTxBegin, When: int64(i), Task: int32(i)})
	}
	got := tr.Events()
	if len(got) != 8 {
		t.Fatalf("retained %d, want 8", len(got))
	}
	if tr.Dropped() != 12 {
		t.Fatalf("dropped %d, want 12", tr.Dropped())
	}
	// The retained suffix must be the newest events, oldest first.
	for i, e := range got {
		if want := int32(12 + i); e.Task != want {
			t.Fatalf("event %d: task %d, want %d", i, e.Task, want)
		}
	}
	if tr.Count(EvTxBegin) != 20 {
		t.Fatalf("count %d, want 20 (dropped events still counted)", tr.Count(EvTxBegin))
	}
}

// TestDisabledCtxZeroAllocs pins the contract the stm hot path relies
// on: with a nil tracer, every emission helper used on the
// Exec/validate/commit path is allocation-free.
func TestDisabledCtxZeroAllocs(t *testing.T) {
	var ctx Ctx
	allocs := testing.AllocsPerRun(1000, func() {
		start := ctx.Now()
		ctx.Instant(EvTxBegin)
		ctx.Cache(EvCacheHit, "loc", "")
		ctx.Abort("same-read", "loc", "")
		ctx.End(EvTxValidate, start)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocated %.1f per run, want 0", allocs)
	}
}

func TestHistQuantiles(t *testing.T) {
	var h Hist
	for i := int64(1); i <= 1000; i++ {
		h.Record(i)
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Sum() != 1000*1001/2 {
		t.Fatalf("sum %d", h.Sum())
	}
	p50, p99 := h.Quantile(0.5), h.Quantile(0.99)
	if p50 < 500-1 || p50 > 1023 {
		t.Fatalf("p50 %d outside bucketed [499, 1023]", p50)
	}
	if p99 < p50 {
		t.Fatalf("p99 %d < p50 %d", p99, p50)
	}
	if !strings.Contains(h.String(), "n=1000") {
		t.Fatalf("summary %q", h.String())
	}
	h.Record(-5) // clamps, must not panic
	if h.Count() != 1001 {
		t.Fatalf("count after clamp %d", h.Count())
	}
}

func TestHistogramsFedBySpans(t *testing.T) {
	tr := NewTrace(16)
	tr.Emit(Event{Type: EvTxValidate, When: 0, Dur: 1500})
	tr.Emit(Event{Type: EvTxValidate, When: 10, Dur: 2500})
	tr.Emit(Event{Type: EvTxAbort, When: 20}) // instant: no histogram
	h := tr.Hist(EvTxValidate)
	if h.Count() != 2 || h.Sum() != 4000 {
		t.Fatalf("validate hist n=%d sum=%d, want 2/4000", h.Count(), h.Sum())
	}
	vars := tr.Vars()
	if vars["counts"].(map[string]int64)["tx.abort"] != 1 {
		t.Fatalf("vars counts = %v", vars["counts"])
	}
	if _, ok := vars["hist"].(map[string]any)["tx.validate"]; !ok {
		t.Fatalf("vars hist missing tx.validate: %v", vars["hist"])
	}
}

func TestPublishRepublish(t *testing.T) {
	t1, t2 := NewTrace(8), NewTrace(8)
	t1.Emit(Event{Type: EvTxBegin})
	Publish("janus.test", t1)
	Publish("janus.test", t2) // must not panic on duplicate name
	t2.Emit(Event{Type: EvTxBegin})
	t2.Emit(Event{Type: EvTxBegin})
	published.Lock()
	cur := published.traces["janus.test"]
	published.Unlock()
	if cur != t2 {
		t.Fatal("republish did not swap the trace")
	}
}

func TestReset(t *testing.T) {
	tr := NewTrace(8)
	tr.Emit(Event{Type: EvTask, Dur: 100, Worker: 0})
	tr.Reset()
	if len(tr.Events()) != 0 || tr.Count(EvTask) != 0 || tr.Hist(EvTask).Count() != 0 {
		t.Fatal("reset left state behind")
	}
}
