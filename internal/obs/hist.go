package obs

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// histBuckets is the bucket count of a power-of-two latency histogram:
// bucket i counts samples with bits.Len64(ns) == i, so bucket boundaries
// double from 1ns up past 4 hours.
const histBuckets = 45

// Hist is a lock-free latency histogram with power-of-two buckets.
// Record is wait-free (two atomic adds); snapshots are approximate under
// concurrent writes, which is fine for monitoring.
type Hist struct {
	count atomic.Int64
	sum   atomic.Int64
	b     [histBuckets]atomic.Int64
}

// Record adds one duration sample in nanoseconds.
func (h *Hist) Record(ns int64) {
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.b[i].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// reset zeroes the histogram in place (atomics are not copyable).
func (h *Hist) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	for i := range h.b {
		h.b[i].Store(0)
	}
}

// Count returns the number of recorded samples.
func (h *Hist) Count() int64 { return h.count.Load() }

// Sum returns the total of all samples in nanoseconds.
func (h *Hist) Sum() int64 { return h.sum.Load() }

// Mean returns the average sample in nanoseconds.
func (h *Hist) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an upper bound on the q-quantile (0 ≤ q ≤ 1) in
// nanoseconds: the upper edge of the bucket containing it.
func (h *Hist) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(q * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.b[i].Load()
		if seen > rank {
			if i == 0 {
				return 0
			}
			return int64(1)<<uint(i) - 1
		}
	}
	return int64(1)<<uint(histBuckets-1) - 1
}

// Snapshot returns the non-empty buckets as upper-bound → count, for
// expvar export.
func (h *Hist) Snapshot() map[string]int64 {
	out := make(map[string]int64)
	for i := 0; i < histBuckets; i++ {
		if n := h.b[i].Load(); n > 0 {
			out[fmtNanos(int64(1)<<uint(i)-1)] = n
		}
	}
	return out
}

// String renders a one-line summary.
func (h *Hist) String() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p95=%s p99=%s",
		h.Count(), fmtNanos(int64(h.Mean())),
		fmtNanos(h.Quantile(0.50)), fmtNanos(h.Quantile(0.95)), fmtNanos(h.Quantile(0.99)))
}

// fmtNanos renders nanoseconds with a human unit.
func fmtNanos(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
