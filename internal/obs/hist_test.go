package obs

import (
	"math/bits"
	"testing"
)

// TestHistBucketAssignment pins the power-of-two bucketing: a sample of
// ns nanoseconds lands in bucket bits.Len64(ns), whose upper edge is
// 2^i - 1.
func TestHistBucketAssignment(t *testing.T) {
	cases := []struct {
		ns     int64
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{1000, 10},    // 2^9 = 512 ≤ 1000 < 1024 = 2^10
		{1 << 20, 21}, // exact powers of two open a new bucket
		{-5, 0},       // negative samples clamp to 0
	}
	for _, c := range cases {
		var h Hist
		h.Record(c.ns)
		for i := 0; i < histBuckets; i++ {
			want := int64(0)
			if i == c.bucket {
				want = 1
			}
			if got := h.b[i].Load(); got != want {
				t.Errorf("Record(%d): bucket %d = %d, want %d", c.ns, i, got, want)
			}
		}
	}
	// The clamp: a sample past the top bucket's range stays in-range.
	var h Hist
	huge := int64(1) << 62
	if bits.Len64(uint64(huge)) < histBuckets {
		t.Fatalf("test sample %d does not exceed the bucket range", huge)
	}
	h.Record(huge)
	if got := h.b[histBuckets-1].Load(); got != 1 {
		t.Errorf("oversized sample must clamp into the top bucket, got count %d", got)
	}
}

// TestHistQuantile checks the bucket → quantile math on hand-computed
// distributions: Quantile returns the upper edge 2^i - 1 of the bucket
// holding the rank-⌊q·n⌋ sample.
func TestHistQuantile(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		var h Hist
		if got := h.Quantile(0.5); got != 0 {
			t.Errorf("empty histogram p50 = %d, want 0", got)
		}
	})

	t.Run("uniform-spread", func(t *testing.T) {
		// 100 samples: 50 in bucket 4 (values 8..15), 45 in bucket 7
		// (64..127), 5 in bucket 11 (1024..2047).
		var h Hist
		for i := 0; i < 50; i++ {
			h.Record(10)
		}
		for i := 0; i < 45; i++ {
			h.Record(100)
		}
		for i := 0; i < 5; i++ {
			h.Record(2000)
		}
		// rank(0.50) = 50 → first bucket with cumulative > 50 is bucket 7.
		if got, want := h.Quantile(0.50), int64(127); got != want {
			t.Errorf("p50 = %d, want %d", got, want)
		}
		// rank(0.49) = 49 → still inside bucket 4's cumulative 50.
		if got, want := h.Quantile(0.49), int64(15); got != want {
			t.Errorf("p49 = %d, want %d", got, want)
		}
		// rank(0.95) = 95 → cumulative 95 not > 95: the 5 tail samples in
		// bucket 11 hold ranks 95..99.
		if got, want := h.Quantile(0.95), int64(2047); got != want {
			t.Errorf("p95 = %d, want %d", got, want)
		}
		if got, want := h.Quantile(0.99), int64(2047); got != want {
			t.Errorf("p99 = %d, want %d", got, want)
		}
		// q=1 caps the rank at n-1 instead of walking off the end.
		if got, want := h.Quantile(1.0), int64(2047); got != want {
			t.Errorf("p100 = %d, want %d", got, want)
		}
	})

	t.Run("all-zero", func(t *testing.T) {
		var h Hist
		for i := 0; i < 10; i++ {
			h.Record(0)
		}
		if got := h.Quantile(0.99); got != 0 {
			t.Errorf("all-zero p99 = %d, want 0 (bucket 0 reports edge 0)", got)
		}
	})

	t.Run("single-sample", func(t *testing.T) {
		var h Hist
		h.Record(1_000_000) // bucket 20, edge 2^20-1
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			if got, want := h.Quantile(q), int64(1<<20-1); got != want {
				t.Errorf("Quantile(%v) = %d, want %d", q, got, want)
			}
		}
	})
}

// TestHistVarsQuantiles checks the expvar export carries the derived
// quantiles next to the raw buckets for every published span type.
func TestHistVarsQuantiles(t *testing.T) {
	tr := NewTrace(16)
	tr.Emit(Event{Type: EvTxRun, When: 0, Dur: 1000, Worker: 0, Task: 1})
	tr.Emit(Event{Type: EvTxBackoff, When: 0, Dur: 500, Worker: 0, Task: 1})
	tr.Emit(Event{Type: EvTxSerial, When: 0, Dur: 2000, Worker: 0, Task: 1})
	vars := tr.Vars()
	hists, ok := vars["hist"].(map[string]any)
	if !ok {
		t.Fatalf("Vars()[hist] missing or mistyped: %T", vars["hist"])
	}
	for _, name := range []string{EvTxRun.String(), EvTxBackoff.String(), EvTxSerial.String()} {
		entry, ok := hists[name].(map[string]any)
		if !ok {
			t.Fatalf("hist[%q] missing: have %v", name, hists)
		}
		for _, key := range []string{"count", "mean_ns", "p50_ns", "p95_ns", "p99_ns", "buckets"} {
			if _, ok := entry[key]; !ok {
				t.Errorf("hist[%q] lacks %q", name, key)
			}
		}
	}
}
