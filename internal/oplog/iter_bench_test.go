package oplog

import (
	"strconv"
	"testing"

	"repro/internal/state"
)

// benchLog builds a large log: total single-access events spread over
// nLocs scalar locations.
func benchLog(nLocs, total int) Log {
	st := state.New()
	l := make(Log, 0, total)
	for i := 0; i < total; i++ {
		loc := state.Loc("l" + strconv.Itoa(i%nLocs))
		l = append(l, mkEvent(1, i, fakeOp{loc: loc, add: 1}, st))
	}
	return l
}

// BenchmarkDecomposeStream compares the materializing decomposition
// against the streaming one on a large transaction (4096 ops over 64
// locations), each iteration on a fresh Decomposer — the per-transaction
// shape. The materialized path allocates an arena proportional to total
// accesses; the streaming path allocates proportional to distinct
// locations only, which is the flat-memory property large-transaction
// detection builds on.
func BenchmarkDecomposeStream(b *testing.B) {
	l := benchLog(64, 4096)
	b.Run("materialized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var d Decomposer
			out := d.Decompose(l)
			n := 0
			for _, ps := range out {
				n += len(ps.Seq)
			}
			if n != len(l) {
				b.Fatal("bad decomposition")
			}
		}
	})
	b.Run("streaming", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var d Decomposer
			locs := d.Stream(l)
			n := 0
			for _, li := range locs {
				it := d.Iter(li.P)
				for {
					if _, ok := it.Next(); !ok {
						break
					}
					n++
				}
			}
			if n != len(l) {
				b.Fatal("bad stream")
			}
		}
	})
}

// BenchmarkDecomposerCrossover measures the first-access-discovery
// crossover between the linear scan and the index map, pinning each path
// in turn at equal input sizes by overriding linearScanAccesses. The
// interesting regime is many distinct locations (the scan's worst case:
// loc count ≈ access count); the fixture keeps locations = accesses/2 so
// half the finds are misses over a growing output slice. Used to tune
// the linearScanAccesses constant; see the comment there for the result.
func BenchmarkDecomposerCrossover(b *testing.B) {
	for _, total := range []int{16, 32, 48, 64, 96, 128, 256} {
		l := benchLog(total/2, total)
		b.Run("scan/"+strconv.Itoa(total), func(b *testing.B) {
			defer func(v int) { linearScanAccesses = v }(linearScanAccesses)
			linearScanAccesses = 1 << 30
			var d Decomposer
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d.Decompose(l)
			}
		})
		b.Run("map/"+strconv.Itoa(total), func(b *testing.B) {
			defer func(v int) { linearScanAccesses = v }(linearScanAccesses)
			linearScanAccesses = 0
			var d Decomposer
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d.Decompose(l)
			}
		})
	}
}
