// Package oplog defines the operation model of JANUS: logged operations
// with read/write footprints, transaction logs, and the DECOMPOSE step of
// the projection-based conflict-detection algorithm (Figure 8).
//
// Every shared-state access a task performs is an Op. Ops are immutable
// descriptors; applying one mutates a given state and returns the observed
// value (for reads). A transaction's log replays at commit time against the
// global state (REPLAYLOGGEDOPERATIONS in Figure 7).
//
// Projection locations (PLoc) refine shared locations to the subvalue
// granularity of §5.1: a scalar location projects to itself, a relational
// (ADT) location projects to one PLoc per tuple key, so that per-location
// sequences (§5.3) are sequences of operations on a single key.
package oplog

import (
	"fmt"
	"strings"

	"repro/internal/state"
)

// PLoc is a projection location: either a scalar location "loc", or a
// relational location refined by tuple key, "loc#key". The distinguished
// key "*" stands for the relation's full extent (see
// relation.WholeRelationKey); an access to it overlaps every key of the
// same location.
type PLoc string

// MakePLoc builds a PLoc from a location and an optional tuple key.
func MakePLoc(loc state.Loc, key string) PLoc {
	if key == "" {
		return PLoc(loc)
	}
	return PLoc(string(loc) + "#" + key)
}

// Loc returns the underlying shared location.
func (p PLoc) Loc() state.Loc {
	if i := strings.IndexByte(string(p), '#'); i >= 0 {
		return state.Loc(p[:i])
	}
	return state.Loc(p)
}

// Key returns the tuple key, or "" for a scalar location.
func (p PLoc) Key() string {
	if i := strings.IndexByte(string(p), '#'); i >= 0 {
		return string(p[i+1:])
	}
	return ""
}

// IsWildcard reports whether the PLoc denotes a relation's full extent.
func (p PLoc) IsWildcard() bool { return p.Key() == "*" }

// Overlaps reports whether accesses to p and q can touch a common
// subvalue: equal PLocs always overlap, and a wildcard PLoc overlaps every
// PLoc of the same location.
func (p PLoc) Overlaps(q PLoc) bool {
	if p == q {
		return true
	}
	if p.Loc() != q.Loc() {
		return false
	}
	return p.IsWildcard() || q.IsWildcard()
}

// Access records that an operation touches a projection location.
type Access struct {
	P     PLoc
	Read  bool
	Write bool
}

// Sym is an operation's symbolic descriptor, the unit of sequence mining
// and commutativity caching. Kind names the operation (e.g. "num.add",
// "rel.insert"); Arg is its generalizable argument rendered as a string
// ("" when the operation takes none).
type Sym struct {
	Kind string
	Arg  string
}

// String renders the descriptor.
func (s Sym) String() string {
	if s.Arg == "" {
		return s.Kind
	}
	return s.Kind + "(" + s.Arg + ")"
}

// Op is a loggable shared-state operation.
type Op interface {
	// Apply executes the operation against st, returning the observed
	// value for reads (nil for pure effects).
	Apply(st *state.State) (state.Value, error)
	// Accesses returns the projection locations the operation touches
	// when executed in pre-state st, with read/write flags. This is the
	// only dynamic context conflict detection needs (§5.3: read and
	// write sets).
	Accesses(st *state.State) []Access
	// Sym returns the symbolic descriptor used for sequence matching.
	Sym() Sym
	// IsRead reports whether the operation observes a value that flows
	// into the task (GETREADSUBSEQUENCES of Figure 8 collects these).
	IsRead() bool
	fmt.Stringer
}

// Event is one executed operation in a trace or transaction log.
type Event struct {
	Op   Op
	Task int // transaction/task identifier
	Seq  int // position in the global trace (training) or log (runtime)
	// Accesses as computed against the pre-state at execution time.
	Acc []Access
	// Observed holds the value returned by a read op at execution time;
	// nil for effects. Training uses it to validate SAMEREAD concretely.
	Observed state.Value
}

// String renders the event for traces.
func (e *Event) String() string {
	return fmt.Sprintf("t%d/%d:%s", e.Task, e.Seq, e.Op)
}

// Log is an ordered sequence of events.
type Log []*Event

// Replay applies every logged op in order to st. Read operations are
// harmless no-ops on the state. This is REPLAYLOGGEDOPERATIONS (Figure 7).
func (l Log) Replay(st *state.State) error {
	for _, e := range l {
		if _, err := e.Op.Apply(st); err != nil {
			return fmt.Errorf("oplog: replaying %s: %w", e, err)
		}
	}
	return nil
}

// Syms projects the log onto symbolic descriptors.
func (l Log) Syms() []Sym {
	out := make([]Sym, len(l))
	for i, e := range l {
		out[i] = e.Op.Sym()
	}
	return out
}

// Decompose partitions a history into per-projection-location
// subsequences, preserving order — the DECOMPOSE operation of Figure 8.
// An event appears in the subsequence of every PLoc it accesses.
func Decompose(l Log) map[PLoc]Log {
	out := make(map[PLoc]Log)
	for _, e := range l {
		for _, a := range e.Acc {
			out[a.P] = append(out[a.P], e)
		}
	}
	return out
}

// PLocSeq is one per-projection-location subsequence produced by
// DecomposeOrdered.
type PLocSeq struct {
	P   PLoc
	Seq Log
}

// Decomposer performs ordered per-location decomposition with reusable
// buffers, so repeated decompositions (one per transaction attempt) only
// allocate when a capacity grows. The zero value is ready to use.
type Decomposer struct {
	out    []PLocSeq
	counts []int
	arena  Log
	idx    map[PLoc]int
	src    Log
	locs   []LocInfo
}

// linearScanAccesses bounds the access count under which first-access
// discovery runs by linear scan over the output slice; logs with at least
// this many accesses build the index map. Measured with
// BenchmarkDecomposerCrossover: on few-location logs (the typical
// transaction) scan and map are within noise of each other at every size,
// but when distinct locations grow with the log the scan goes quadratic —
// the map is ahead by 32 total accesses (1.3×) and 2× ahead by 48 — so
// the bound sits at the worst-case crossover rather than the historical
// 64, which paid up to 2.7× on 64-access many-location logs. A var so the
// crossover benchmark can pin either path at equal input sizes.
var linearScanAccesses = 32

// discover runs the first pass of decomposition: locations in
// first-access order into d.out (Seq left nil) with subsequence lengths
// in d.counts. Returns the total access count.
func (d *Decomposer) discover(l Log) int {
	total := 0
	for _, e := range l {
		total += len(e.Acc)
	}
	d.out = d.out[:0]
	d.counts = d.counts[:0]
	if total == 0 {
		return 0
	}
	useMap := total >= linearScanAccesses
	if useMap {
		if d.idx == nil {
			d.idx = make(map[PLoc]int, 16)
		} else {
			clear(d.idx)
		}
	}
	for _, e := range l {
		for _, a := range e.Acc {
			if i := d.find(a.P, useMap); i >= 0 {
				d.counts[i]++
				continue
			}
			if useMap {
				d.idx[a.P] = len(d.out)
			}
			d.out = append(d.out, PLocSeq{P: a.P})
			d.counts = append(d.counts, 1)
		}
	}
	return total
}

// find locates p in the discovered set, by index map or linear scan.
// useMap must match the value discover chose for this log.
func (d *Decomposer) find(p PLoc, useMap bool) int {
	if useMap {
		if i, ok := d.idx[p]; ok {
			return i
		}
		return -1
	}
	for i := range d.out {
		if d.out[i].P == p {
			return i
		}
	}
	return -1
}

// Decompose splits l into per-location subsequences in first-access
// order, program order within each (the DECOMPOSE step of Figure 8). The
// returned slice and the Logs it references are owned by the Decomposer
// and remain valid until its next Decompose or Release call; callers that
// retain the result must not reuse the Decomposer.
func (d *Decomposer) Decompose(l Log) []PLocSeq {
	total := d.discover(l)
	if total == 0 {
		return d.out
	}
	useMap := total >= linearScanAccesses
	// Second pass: carve per-location windows out of one arena and fill.
	if cap(d.arena) < total {
		d.arena = make(Log, total)
	} else {
		d.arena = d.arena[:total]
	}
	off := 0
	for i := range d.out {
		d.out[i].Seq = d.arena[off : off : off+d.counts[i]]
		off += d.counts[i]
	}
	for _, e := range l {
		for _, a := range e.Acc {
			i := d.find(a.P, useMap)
			d.out[i].Seq = append(d.out[i].Seq, e)
		}
	}
	return d.out
}

// Release drops the event references held by the Decomposer's buffers
// (keeping their capacity), so pooled decomposers do not pin old logs.
func (d *Decomposer) Release() {
	clear(d.arena)
	for i := range d.out {
		d.out[i] = PLocSeq{}
	}
	d.out = d.out[:0]
	d.counts = d.counts[:0]
	d.src = nil
	for i := range d.locs {
		d.locs[i] = LocInfo{}
	}
	d.locs = d.locs[:0]
}

// DecomposeOrdered is Decompose returning the subsequences as a slice in
// first-access order instead of a map: iteration is deterministic and the
// subsequences share a single backing array, so a decomposition that is
// computed once and then read by many concurrent detectors (see
// conflict.Prepared) stays cheap regardless of how many locations the log
// touches. The result is independently owned by the caller.
func DecomposeOrdered(l Log) []PLocSeq {
	return new(Decomposer).Decompose(l)
}

// Writes reports whether any event in the log writes p.
func (l Log) Writes(p PLoc) bool {
	for _, e := range l {
		for _, a := range e.Acc {
			if a.Write && a.P.Overlaps(p) {
				return true
			}
		}
	}
	return false
}

// Reads reports whether any event in the log reads p.
func (l Log) Reads(p PLoc) bool {
	for _, e := range l {
		for _, a := range e.Acc {
			if a.Read && a.P.Overlaps(p) {
				return true
			}
		}
	}
	return false
}

// String renders the log compactly.
func (l Log) String() string {
	parts := make([]string, len(l))
	for i, e := range l {
		parts[i] = e.String()
	}
	return "[" + strings.Join(parts, " ") + "]"
}
