// Streaming decomposition: iterators over per-location subsequences that
// never materialize event arenas. The materializing Decompose path remains
// as the compatibility shim for callers that need a stable []PLocSeq; the
// iterator path exists so detection over very large transactions runs at
// memory proportional to the number of distinct locations, not the number
// of operations (ROADMAP item 2, after janus-datalog's iterator
// architecture).
//
// Contract shared by every iterator here: Next returns (item, true) until
// the sequence is exhausted, then (zero, false) forever; iterators are
// single-goroutine values and are invalidated by mutating their source log
// or Decomposer. SubseqIter yields exactly the multiset of events the
// materialized Decompose would place in that location's subsequence, in
// the same order (an event accessing the location twice is yielded twice).

package oplog

// Iter is a streaming iterator over log events.
type Iter interface {
	// Next returns the next event, or (nil, false) when exhausted.
	Next() (*Event, bool)
}

// SubseqIter streams one projection location's subsequence of a log in
// program order, without materializing an arena: it scans the source log
// and yields each event once per access to the location, exactly matching
// the materialized Decompose subsequence. The zero value is an exhausted
// iterator.
type SubseqIter struct {
	log Log
	p   PLoc
	pos int
	acc int
}

// Subseq returns a streaming iterator over l's subsequence at p.
func (l Log) Subseq(p PLoc) SubseqIter { return SubseqIter{log: l, p: p} }

// Next yields the subsequence's next event.
func (it *SubseqIter) Next() (*Event, bool) {
	for it.pos < len(it.log) {
		e := it.log[it.pos]
		for it.acc < len(e.Acc) {
			a := e.Acc[it.acc]
			it.acc++
			if a.P == it.p {
				return e, true
			}
		}
		it.pos++
		it.acc = 0
	}
	return nil, false
}

// Reset rewinds the iterator to the start of the subsequence.
func (it *SubseqIter) Reset() { it.pos, it.acc = 0, 0 }

// LocInfo is one projection location discovered by Stream: the PLoc and
// its subsequence length, with no materialized events.
type LocInfo struct {
	P PLoc
	N int
}

// Stream runs the discovery pass of Decompose only: it returns the log's
// projection locations in first-access order with their subsequence
// lengths, building no event arena. Subsequences are rendered on demand
// with Iter. The returned slice is owned by the Decomposer and remains
// valid until its next Decompose, Stream, or Release call.
func (d *Decomposer) Stream(l Log) []LocInfo {
	d.src = l
	d.discover(l)
	if cap(d.locs) < len(d.out) {
		d.locs = make([]LocInfo, len(d.out))
	} else {
		d.locs = d.locs[:len(d.out)]
	}
	for i := range d.out {
		d.locs[i] = LocInfo{P: d.out[i].P, N: d.counts[i]}
	}
	return d.locs
}

// Iter returns a streaming iterator over the streamed log's subsequence
// at p. Stream must have been called; a location the log never accesses
// yields an empty iteration.
func (d *Decomposer) Iter(p PLoc) SubseqIter { return d.src.Subseq(p) }

// FilterIter yields the events of an inner iterator that satisfy a
// predicate.
type FilterIter struct {
	src  Iter
	keep func(*Event) bool
}

// Filter wraps src, keeping only events for which keep returns true.
func Filter(src Iter, keep func(*Event) bool) *FilterIter {
	return &FilterIter{src: src, keep: keep}
}

// Next yields the next kept event.
func (f *FilterIter) Next() (*Event, bool) {
	for {
		e, ok := f.src.Next()
		if !ok {
			return nil, false
		}
		if f.keep(e) {
			return e, true
		}
	}
}

// SymsIter projects an event iterator onto symbolic descriptors — the
// streaming equivalent of Log.Syms for a subsequence.
type SymsIter struct {
	src Iter
}

// ProjectSyms wraps src, yielding each event's Sym.
func ProjectSyms(src Iter) *SymsIter { return &SymsIter{src: src} }

// Next yields the next descriptor.
func (s *SymsIter) Next() (Sym, bool) {
	e, ok := s.src.Next()
	if !ok {
		return Sym{}, false
	}
	return e.Op.Sym(), true
}

// JoinPair is one overlapping location pair produced by JoinByLoc, with
// streaming iterators over the two subsequences.
type JoinPair struct {
	P, Q        PLoc
	Left, Right SubseqIter
}

// LocJoin enumerates the overlapping projection-location pairs of two
// streamed logs — the pair structure sequence detection walks — without
// materializing either side's subsequences.
type LocJoin struct {
	a, b *Decomposer
	i, j int
}

// JoinByLoc joins two streamed decompositions by location overlap. Both
// decomposers must have Streamed their logs. Pairs are yielded in
// left-major first-access order.
func JoinByLoc(a, b *Decomposer) *LocJoin { return &LocJoin{a: a, b: b} }

// Next yields the next overlapping pair.
func (jn *LocJoin) Next() (JoinPair, bool) {
	for jn.i < len(jn.a.locs) {
		p := jn.a.locs[jn.i].P
		for jn.j < len(jn.b.locs) {
			q := jn.b.locs[jn.j].P
			jn.j++
			if p.Overlaps(q) {
				return JoinPair{P: p, Q: q, Left: jn.a.Iter(p), Right: jn.b.Iter(q)}, true
			}
		}
		jn.i++
		jn.j = 0
	}
	return JoinPair{}, false
}

// BufferedIterator records the events an inner iterator yields so the
// sequence can be re-traversed without re-scanning the source — the
// re-iteration case detection hits when one subsequence is compared
// against several counterparts. The buffer fills lazily: only what has
// been pulled is retained, and Rewind replays it from the start.
type BufferedIterator struct {
	src Iter
	buf Log
	pos int
}

// Buffer wraps src with lazy re-iteration support.
func Buffer(src Iter) *BufferedIterator { return &BufferedIterator{src: src} }

// Next yields the next event, from the buffer when rewound past filled
// ground, pulling (and recording) from the source otherwise.
func (b *BufferedIterator) Next() (*Event, bool) {
	if b.pos < len(b.buf) {
		e := b.buf[b.pos]
		b.pos++
		return e, true
	}
	e, ok := b.src.Next()
	if !ok {
		return nil, false
	}
	b.buf = append(b.buf, e)
	b.pos++
	return e, true
}

// Rewind restarts iteration from the first event. Events not yet pulled
// from the source remain unbuffered until reached again.
func (b *BufferedIterator) Rewind() { b.pos = 0 }

// Release drops the buffered event references (keeping capacity), so a
// retained BufferedIterator does not pin its source log's events.
func (b *BufferedIterator) Release() {
	clear(b.buf)
	b.buf = b.buf[:0]
	b.pos = 0
}
