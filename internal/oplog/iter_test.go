package oplog

import (
	"reflect"
	"testing"

	"repro/internal/state"
)

// multiOp is a fake op touching several projection locations at once
// (possibly the same one twice), exercising the per-access yield contract.
type multiOp struct {
	acc []Access
}

func (m multiOp) Apply(*state.State) (state.Value, error) { return nil, nil }
func (m multiOp) Accesses(*state.State) []Access          { return m.acc }
func (m multiOp) Sym() Sym                                { return Sym{Kind: "multi"} }
func (m multiOp) IsRead() bool                            { return false }
func (m multiOp) String() string                          { return "multi" }

// collect drains a SubseqIter.
func collect(it SubseqIter) Log {
	var out Log
	for {
		e, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

// TestSubseqIterMatchesDecompose: for randomized logs on both sides of the
// linearScanAccesses boundary, streaming each discovered location must
// yield exactly the materialized Decompose subsequence.
func TestSubseqIterMatchesDecompose(t *testing.T) {
	st := state.New()
	for n := 0; n < 8; n++ {
		st.Set(state.Loc(string(rune('a'+n))), state.Int(0))
	}
	var d Decomposer
	for _, total := range []int{0, 1, 5, 20, linearScanAccesses - 1, linearScanAccesses, linearScanAccesses + 10, 4 * linearScanAccesses} {
		l := randDecomposeLog(st, 6, total, total)
		want := DecomposeOrdered(l)
		locs := d.Stream(l)
		if len(locs) != len(want) {
			t.Fatalf("total=%d: Stream found %d locations, want %d", total, len(locs), len(want))
		}
		for i, li := range locs {
			if li.P != want[i].P {
				t.Fatalf("total=%d: loc %d = %q, want %q (first-access order)", total, i, li.P, want[i].P)
			}
			if li.N != len(want[i].Seq) {
				t.Fatalf("total=%d: loc %q count = %d, want %d", total, li.P, li.N, len(want[i].Seq))
			}
			got := collect(d.Iter(li.P))
			if !reflect.DeepEqual(got, want[i].Seq) {
				t.Fatalf("total=%d: streamed subsequence for %q differs from Decompose", total, li.P)
			}
		}
	}
}

// TestSubseqIterMultiAccess: an event accessing a location twice appears
// twice in that location's subsequence — on the streaming path exactly as
// on the materialized one — and Reset rewinds.
func TestSubseqIterMultiAccess(t *testing.T) {
	e1 := &Event{Op: multiOp{}, Acc: []Access{{P: "x", Write: true}, {P: "y", Read: true}}}
	e2 := &Event{Op: multiOp{}, Acc: []Access{{P: "x", Read: true}, {P: "x", Write: true}}}
	l := Log{e1, e2}
	want := Decompose(l)
	for _, p := range []PLoc{"x", "y", "absent"} {
		got := collect(l.Subseq(p))
		if !reflect.DeepEqual(got, want[p]) {
			t.Fatalf("subsequence at %q = %v, want %v", p, got, want[p])
		}
	}
	it := l.Subseq("x")
	first := collect(it)
	it.Reset()
	if again := collect(it); !reflect.DeepEqual(again, first) {
		t.Fatal("Reset did not rewind the iterator")
	}
}

// TestStreamReuseAndRelease: a Decomposer must stream correctly across
// reuse (alternating with materializing calls) and drop its source log
// and location buffer on Release.
func TestStreamReuseAndRelease(t *testing.T) {
	st := state.New()
	for n := 0; n < 8; n++ {
		st.Set(state.Loc(string(rune('a'+n))), state.Int(0))
	}
	var d Decomposer
	for _, total := range []int{30, 3, 0, linearScanAccesses + 5, 7} {
		l := randDecomposeLog(st, 6, total, total)
		want := DecomposeOrdered(l)
		// Interleave a materializing call to ensure the shared discovery
		// buffers do not corrupt a later stream.
		d.Decompose(randDecomposeLog(st, 3, 9, total+1))
		locs := d.Stream(l)
		if len(locs) != len(want) {
			t.Fatalf("total=%d: %d locations after reuse, want %d", total, len(locs), len(want))
		}
		for i := range locs {
			got := collect(d.Iter(locs[i].P))
			if !reflect.DeepEqual(got, want[i].Seq) {
				t.Fatalf("total=%d: streamed subsequence for %q differs after reuse", total, locs[i].P)
			}
		}
	}
	d.Release()
	if d.src != nil {
		t.Fatal("Release kept the source log")
	}
	if len(d.locs) != 0 {
		t.Fatal("Release left location infos behind")
	}
	if got := collect(d.Iter("a")); got != nil {
		t.Fatal("Iter after Release must yield nothing")
	}
}

// TestFilterProjectSyms: composition — filtering a subsequence and
// projecting it onto descriptors.
func TestFilterProjectSyms(t *testing.T) {
	st := state.New()
	st.Set("x", state.Int(0))
	l := Log{
		mkEvent(1, 0, fakeOp{loc: "x", add: 1}, st),
		mkEvent(1, 1, fakeOp{loc: "x", read: true}, st),
		mkEvent(1, 2, fakeOp{loc: "x", add: 1}, st),
	}
	it := l.Subseq("x")
	writes := Filter(&it, func(e *Event) bool { return !e.Op.IsRead() })
	syms := ProjectSyms(writes)
	var got []Sym
	for {
		s, ok := syms.Next()
		if !ok {
			break
		}
		got = append(got, s)
	}
	want := []Sym{{Kind: "num.add", Arg: "1"}, {Kind: "num.add", Arg: "1"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("filtered projection = %v, want %v", got, want)
	}
}

// TestJoinByLoc: the overlap join must enumerate exactly the pairs the
// detection double loop visits, including wildcard overlap, with working
// subsequence iterators on both sides.
func TestJoinByLoc(t *testing.T) {
	mk := func(ps ...PLoc) Log {
		var l Log
		for i, p := range ps {
			l = append(l, &Event{Op: multiOp{}, Seq: i, Acc: []Access{{P: p, Write: true}}})
		}
		return l
	}
	left := mk("bits#k=1", "work", "bits#k=1")
	right := mk("bits#*", "other", "work")
	var da, db Decomposer
	da.Stream(left)
	db.Stream(right)
	jn := JoinByLoc(&da, &db)
	type pair struct{ p, q PLoc }
	var got []pair
	for {
		jp, ok := jn.Next()
		if !ok {
			break
		}
		got = append(got, pair{jp.P, jp.Q})
		if len(collect(jp.Left)) == 0 || len(collect(jp.Right)) == 0 {
			t.Fatalf("pair (%q,%q) yielded empty side iterators", jp.P, jp.Q)
		}
	}
	want := []pair{{"bits#k=1", "bits#*"}, {"work", "work"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("joined pairs = %v, want %v", got, want)
	}
}

// TestBufferedIterator: lazy fill, mid-stream rewind replaying only the
// pulled prefix then continuing from the source, and Release dropping
// references.
func TestBufferedIterator(t *testing.T) {
	st := state.New()
	st.Set("x", state.Int(0))
	l := randDecomposeLog(st, 1, 5, 1)
	it := l.Subseq("a")
	b := Buffer(&it)
	e0, _ := b.Next()
	e1, _ := b.Next()
	b.Rewind()
	r0, _ := b.Next()
	r1, _ := b.Next()
	if r0 != e0 || r1 != e1 {
		t.Fatal("rewound prefix differs from first traversal")
	}
	rest := 0
	for {
		if _, ok := b.Next(); !ok {
			break
		}
		rest++
	}
	if rest != 3 {
		t.Fatalf("post-rewind continuation yielded %d events, want 3", rest)
	}
	b.Rewind()
	var all Log
	for {
		e, ok := b.Next()
		if !ok {
			break
		}
		all = append(all, e)
	}
	if !reflect.DeepEqual(all, l) {
		t.Fatal("full rewound traversal differs from the log")
	}
	b.Release()
	if len(b.buf) != 0 {
		t.Fatal("Release left buffered events")
	}
	if _, ok := b.Next(); ok {
		t.Fatal("released buffer over an exhausted source must be empty")
	}
}
