package oplog

import (
	"reflect"
	"testing"

	"repro/internal/state"
)

// fakeOp is a minimal op for log-level tests.
type fakeOp struct {
	loc  state.Loc
	add  int64
	read bool
}

func (f fakeOp) Apply(st *state.State) (state.Value, error) {
	v, _ := st.Get(f.loc)
	iv, _ := v.(state.Int)
	if f.read {
		return iv, nil
	}
	st.Set(f.loc, state.Int(int64(iv)+f.add))
	return nil, nil
}

func (f fakeOp) Accesses(*state.State) []Access {
	if f.read {
		return []Access{{P: PLoc(f.loc), Read: true}}
	}
	return []Access{{P: PLoc(f.loc), Read: true, Write: true}}
}

func (f fakeOp) Sym() Sym {
	if f.read {
		return Sym{Kind: "num.load"}
	}
	return Sym{Kind: "num.add", Arg: "1"}
}
func (f fakeOp) IsRead() bool   { return f.read }
func (f fakeOp) String() string { return "fake:" + string(f.loc) }

func TestPLocRoundTrip(t *testing.T) {
	cases := []struct {
		loc  state.Loc
		key  string
		want PLoc
	}{
		{"work", "", "work"},
		{"bits", "k=3", "bits#k=3"},
		{"bits", "*", "bits#*"},
	}
	for _, c := range cases {
		p := MakePLoc(c.loc, c.key)
		if p != c.want {
			t.Errorf("MakePLoc(%q,%q) = %q, want %q", c.loc, c.key, p, c.want)
		}
		if p.Loc() != c.loc || p.Key() != c.key {
			t.Errorf("round trip failed for %q: loc=%q key=%q", p, p.Loc(), p.Key())
		}
	}
	if !PLoc("bits#*").IsWildcard() || PLoc("bits#k=1").IsWildcard() || PLoc("work").IsWildcard() {
		t.Errorf("IsWildcard wrong")
	}
}

func TestPLocOverlaps(t *testing.T) {
	cases := []struct {
		a, b PLoc
		want bool
	}{
		{"work", "work", true},
		{"work", "other", false},
		{"bits#k=1", "bits#k=1", true},
		{"bits#k=1", "bits#k=2", false},
		{"bits#*", "bits#k=2", true},
		{"bits#k=2", "bits#*", true},
		{"bits#*", "other#k=2", false},
		{"work", "bits#k=1", false},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("Overlaps(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func mkEvent(task, seq int, op Op, st *state.State) *Event {
	return &Event{Op: op, Task: task, Seq: seq, Acc: op.Accesses(st)}
}

func TestReplay(t *testing.T) {
	st := state.New()
	st.Set("x", state.Int(0))
	add := fakeOp{loc: "x", add: 1}
	load := fakeOp{loc: "x", read: true}
	l := Log{mkEvent(1, 0, add, st), mkEvent(1, 1, load, st), mkEvent(1, 2, add, st)}
	if err := l.Replay(st); err != nil {
		t.Fatal(err)
	}
	if v, _ := st.Get("x"); !v.EqualValue(state.Int(2)) {
		t.Fatalf("x = %v, want 2 (loads are no-ops)", v)
	}
}

func TestDecompose(t *testing.T) {
	st := state.New()
	st.Set("x", state.Int(0))
	st.Set("y", state.Int(0))
	ax := mkEvent(1, 0, fakeOp{loc: "x", add: 1}, st)
	ay := mkEvent(1, 1, fakeOp{loc: "y", add: 1}, st)
	ax2 := mkEvent(1, 2, fakeOp{loc: "x", add: 1}, st)
	m := Decompose(Log{ax, ay, ax2})
	if len(m) != 2 {
		t.Fatalf("domains = %d, want 2", len(m))
	}
	if got := m["x"]; len(got) != 2 || got[0] != ax || got[1] != ax2 {
		t.Errorf("x subsequence wrong: %v", got)
	}
	if got := m["y"]; len(got) != 1 || got[0] != ay {
		t.Errorf("y subsequence wrong: %v", got)
	}
}

func TestWritesReads(t *testing.T) {
	st := state.New()
	st.Set("x", state.Int(0))
	l := Log{mkEvent(1, 0, fakeOp{loc: "x", add: 1}, st), mkEvent(1, 1, fakeOp{loc: "x", read: true}, st)}
	if !l.Writes("x") || !l.Reads("x") {
		t.Errorf("Writes/Reads on x must both hold")
	}
	if l.Writes("y") || l.Reads("y") {
		t.Errorf("no accesses to y")
	}
	readOnly := Log{mkEvent(1, 0, fakeOp{loc: "x", read: true}, st)}
	if readOnly.Writes("x") {
		t.Errorf("read-only log must not report writes")
	}
}

func TestSymsAndStrings(t *testing.T) {
	st := state.New()
	st.Set("x", state.Int(0))
	l := Log{mkEvent(3, 7, fakeOp{loc: "x", add: 1}, st)}
	syms := l.Syms()
	want := []Sym{{Kind: "num.add", Arg: "1"}}
	if !reflect.DeepEqual(syms, want) {
		t.Errorf("Syms = %v, want %v", syms, want)
	}
	if (Sym{Kind: "num.load"}).String() != "num.load" {
		t.Errorf("argless Sym string wrong")
	}
	if (Sym{Kind: "num.add", Arg: "2"}).String() != "num.add(2)" {
		t.Errorf("Sym string wrong")
	}
	if got := l[0].String(); got != "t3/7:fake:x" {
		t.Errorf("event String = %q", got)
	}
	if got := l.String(); got != "[t3/7:fake:x]" {
		t.Errorf("log String = %q", got)
	}
}
