package oplog

import (
	"reflect"
	"testing"

	"repro/internal/state"
)

// fakeOp is a minimal op for log-level tests.
type fakeOp struct {
	loc  state.Loc
	add  int64
	read bool
}

func (f fakeOp) Apply(st *state.State) (state.Value, error) {
	v, _ := st.Get(f.loc)
	iv, _ := v.(state.Int)
	if f.read {
		return iv, nil
	}
	st.Set(f.loc, state.Int(int64(iv)+f.add))
	return nil, nil
}

func (f fakeOp) Accesses(*state.State) []Access {
	if f.read {
		return []Access{{P: PLoc(f.loc), Read: true}}
	}
	return []Access{{P: PLoc(f.loc), Read: true, Write: true}}
}

func (f fakeOp) Sym() Sym {
	if f.read {
		return Sym{Kind: "num.load"}
	}
	return Sym{Kind: "num.add", Arg: "1"}
}
func (f fakeOp) IsRead() bool   { return f.read }
func (f fakeOp) String() string { return "fake:" + string(f.loc) }

func TestPLocRoundTrip(t *testing.T) {
	cases := []struct {
		loc  state.Loc
		key  string
		want PLoc
	}{
		{"work", "", "work"},
		{"bits", "k=3", "bits#k=3"},
		{"bits", "*", "bits#*"},
	}
	for _, c := range cases {
		p := MakePLoc(c.loc, c.key)
		if p != c.want {
			t.Errorf("MakePLoc(%q,%q) = %q, want %q", c.loc, c.key, p, c.want)
		}
		if p.Loc() != c.loc || p.Key() != c.key {
			t.Errorf("round trip failed for %q: loc=%q key=%q", p, p.Loc(), p.Key())
		}
	}
	if !PLoc("bits#*").IsWildcard() || PLoc("bits#k=1").IsWildcard() || PLoc("work").IsWildcard() {
		t.Errorf("IsWildcard wrong")
	}
}

func TestPLocOverlaps(t *testing.T) {
	cases := []struct {
		a, b PLoc
		want bool
	}{
		{"work", "work", true},
		{"work", "other", false},
		{"bits#k=1", "bits#k=1", true},
		{"bits#k=1", "bits#k=2", false},
		{"bits#*", "bits#k=2", true},
		{"bits#k=2", "bits#*", true},
		{"bits#*", "other#k=2", false},
		{"work", "bits#k=1", false},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("Overlaps(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func mkEvent(task, seq int, op Op, st *state.State) *Event {
	return &Event{Op: op, Task: task, Seq: seq, Acc: op.Accesses(st)}
}

func TestReplay(t *testing.T) {
	st := state.New()
	st.Set("x", state.Int(0))
	add := fakeOp{loc: "x", add: 1}
	load := fakeOp{loc: "x", read: true}
	l := Log{mkEvent(1, 0, add, st), mkEvent(1, 1, load, st), mkEvent(1, 2, add, st)}
	if err := l.Replay(st); err != nil {
		t.Fatal(err)
	}
	if v, _ := st.Get("x"); !v.EqualValue(state.Int(2)) {
		t.Fatalf("x = %v, want 2 (loads are no-ops)", v)
	}
}

func TestDecompose(t *testing.T) {
	st := state.New()
	st.Set("x", state.Int(0))
	st.Set("y", state.Int(0))
	ax := mkEvent(1, 0, fakeOp{loc: "x", add: 1}, st)
	ay := mkEvent(1, 1, fakeOp{loc: "y", add: 1}, st)
	ax2 := mkEvent(1, 2, fakeOp{loc: "x", add: 1}, st)
	m := Decompose(Log{ax, ay, ax2})
	if len(m) != 2 {
		t.Fatalf("domains = %d, want 2", len(m))
	}
	if got := m["x"]; len(got) != 2 || got[0] != ax || got[1] != ax2 {
		t.Errorf("x subsequence wrong: %v", got)
	}
	if got := m["y"]; len(got) != 1 || got[0] != ay {
		t.Errorf("y subsequence wrong: %v", got)
	}
}

func TestWritesReads(t *testing.T) {
	st := state.New()
	st.Set("x", state.Int(0))
	l := Log{mkEvent(1, 0, fakeOp{loc: "x", add: 1}, st), mkEvent(1, 1, fakeOp{loc: "x", read: true}, st)}
	if !l.Writes("x") || !l.Reads("x") {
		t.Errorf("Writes/Reads on x must both hold")
	}
	if l.Writes("y") || l.Reads("y") {
		t.Errorf("no accesses to y")
	}
	readOnly := Log{mkEvent(1, 0, fakeOp{loc: "x", read: true}, st)}
	if readOnly.Writes("x") {
		t.Errorf("read-only log must not report writes")
	}
}

func TestSymsAndStrings(t *testing.T) {
	st := state.New()
	st.Set("x", state.Int(0))
	l := Log{mkEvent(3, 7, fakeOp{loc: "x", add: 1}, st)}
	syms := l.Syms()
	want := []Sym{{Kind: "num.add", Arg: "1"}}
	if !reflect.DeepEqual(syms, want) {
		t.Errorf("Syms = %v, want %v", syms, want)
	}
	if (Sym{Kind: "num.load"}).String() != "num.load" {
		t.Errorf("argless Sym string wrong")
	}
	if (Sym{Kind: "num.add", Arg: "2"}).String() != "num.add(2)" {
		t.Errorf("Sym string wrong")
	}
	if got := l[0].String(); got != "t3/7:fake:x" {
		t.Errorf("event String = %q", got)
	}
	if got := l.String(); got != "[t3/7:fake:x]" {
		t.Errorf("log String = %q", got)
	}
}

// randDecomposeLog builds a log over nLocs scalar locations with total
// accesses, deterministic per seed.
func randDecomposeLog(st *state.State, nLocs, total, seed int) Log {
	var l Log
	for i := 0; i < total; i++ {
		loc := state.Loc(string(rune('a' + (i*7+seed*3)%nLocs)))
		l = append(l, mkEvent(1, i, fakeOp{loc: loc, add: 1}, st))
	}
	return l
}

func TestDecomposeOrderedMatchesDecompose(t *testing.T) {
	st := state.New()
	for n := 0; n < 8; n++ {
		st.Set(state.Loc(string(rune('a'+n))), state.Int(0))
	}
	// Cover both the linear-scan path and the map path (more than
	// linearScanAccesses accesses).
	for _, total := range []int{0, 1, 5, 20, linearScanAccesses + 10} {
		l := randDecomposeLog(st, 5, total, total)
		want := Decompose(l)
		got := DecomposeOrdered(l)
		if len(got) != len(want) {
			t.Fatalf("total=%d: %d locations, want %d", total, len(got), len(want))
		}
		for _, ps := range got {
			if !reflect.DeepEqual(ps.Seq, want[ps.P]) {
				t.Fatalf("total=%d: subsequence for %q differs from Decompose", total, ps.P)
			}
		}
	}
}

func TestDecomposeOrderedFirstAccessOrder(t *testing.T) {
	st := state.New()
	st.Set("x", state.Int(0))
	st.Set("y", state.Int(0))
	st.Set("z", state.Int(0))
	l := Log{
		mkEvent(1, 0, fakeOp{loc: "y", add: 1}, st),
		mkEvent(1, 1, fakeOp{loc: "x", add: 1}, st),
		mkEvent(1, 2, fakeOp{loc: "y", add: 1}, st),
		mkEvent(1, 3, fakeOp{loc: "z", add: 1}, st),
	}
	got := DecomposeOrdered(l)
	wantOrder := []PLoc{"y", "x", "z"}
	if len(got) != len(wantOrder) {
		t.Fatalf("locations = %d, want %d", len(got), len(wantOrder))
	}
	for i, p := range wantOrder {
		if got[i].P != p {
			t.Fatalf("slot %d = %q, want %q (first-access order)", i, got[i].P, p)
		}
	}
	if len(got[0].Seq) != 2 || got[0].Seq[0] != l[0] || got[0].Seq[1] != l[2] {
		t.Fatalf("y subsequence not in program order")
	}
}

// TestDecomposerReuse: a Decomposer must produce correct results across
// reuse (shrinking and growing logs) and drop event references on
// Release.
func TestDecomposerReuse(t *testing.T) {
	st := state.New()
	for n := 0; n < 8; n++ {
		st.Set(state.Loc(string(rune('a'+n))), state.Int(0))
	}
	var d Decomposer
	for _, total := range []int{30, 3, 0, linearScanAccesses + 5, 7} {
		l := randDecomposeLog(st, 6, total, total)
		want := Decompose(l)
		got := d.Decompose(l)
		if len(got) != len(want) {
			t.Fatalf("total=%d: %d locations, want %d", total, len(got), len(want))
		}
		for _, ps := range got {
			if !reflect.DeepEqual(ps.Seq, want[ps.P]) {
				t.Fatalf("total=%d: subsequence for %q differs after reuse", total, ps.P)
			}
		}
	}
	d.Release()
	for _, e := range d.arena {
		if e != nil {
			t.Fatal("Release left event references in the arena")
		}
	}
	if len(d.out) != 0 {
		t.Fatal("Release left subsequences behind")
	}
}
