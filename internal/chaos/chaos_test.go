package chaos

import (
	"errors"
	"flag"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/conflict"
	"repro/internal/seqabs"
	"repro/internal/state"
	"repro/internal/stm"
	"repro/internal/train"
)

// seedCount is the soak matrix width. The default (20 seeds × ordered/
// unordered × copy/persistent = 80 runs) is the CI short job; `make soak`
// raises it for the long-running version.
var seedCount = flag.Int("chaos.seeds", 20, "seeds per chaos soak matrix cell")

// soakState binds the shared locations the soak tasks touch.
func soakState() *state.State {
	st := state.New()
	for k := 0; k < 4; k++ {
		st.Set(state.Loc(fmt.Sprintf("c%d", k)), state.Int(0))
	}
	st.Set("log", state.IntList{})
	return st
}

// soakTasks generates a deterministic task set from the seed: counter
// arithmetic (commutative — every serial order produces the same final
// state, so the sequential oracle is exact even for unordered commits)
// plus, in ordered mode, an order-observable push of the task id. Each
// task yields mid-transaction so concurrent commits land inside its
// window even on a single-CPU host.
func soakTasks(seed int64, n int, ordered bool) []adt.Task {
	tasks := make([]adt.Task, n)
	for j := 0; j < n; j++ {
		h := mix64(uint64(seed)<<20 ^ uint64(j+1))
		ctr := adt.Counter{L: state.Loc(fmt.Sprintf("c%d", h%4))}
		delta := int64(h>>8%17) + 1
		identity := h>>32%3 == 0
		id := int64(j + 1)
		tasks[j] = func(ex adt.Executor) error {
			if err := ctr.Add(ex, delta); err != nil {
				return err
			}
			runtime.Gosched()
			if identity {
				if err := ctr.Sub(ex, delta); err != nil {
					return err
				}
			}
			if ordered {
				return adt.Stack{L: "log"}.Push(ex, id)
			}
			return nil
		}
	}
	return tasks
}

// TestChaosSoakSerializability is the core soak: for every seed ×
// {ordered, unordered} × {copy, persistent} cell, a run under forced
// aborts and stretched commit windows — alternating between the plain
// retry loop and the backoff+escalation contention manager — must
// produce exactly the sequential oracle's final state.
func TestChaosSoakSerializability(t *testing.T) {
	const nTasks = 30
	var total Stats
	for seed := int64(1); seed <= int64(*seedCount); seed++ {
		for _, ordered := range []bool{false, true} {
			for _, priv := range []stm.Privatize{stm.PrivatizeCopy, stm.PrivatizePersistent} {
				tasks := soakTasks(seed, nTasks, ordered)
				want, err := stm.RunSequential(soakState(), tasks)
				if err != nil {
					t.Fatal(err)
				}
				inj := New(Config{
					Seed:      seed,
					AbortProb: 0.35, AbortMaxPerTask: 3,
					DelayProb: 0.25, MaxDelay: 200 * time.Microsecond,
				})
				cfg := stm.Config{
					Threads: 4, Ordered: ordered, Privatize: priv,
					Hooks: inj.Hooks(), MaxRetries: 500,
				}
				if seed%2 == 0 {
					// Half the matrix runs the contention manager too.
					cfg.Backoff = stm.Backoff{Base: 20 * time.Microsecond}
					cfg.SerializeAfter = 4
				}
				got, stats, err := stm.Run(cfg, soakState(), tasks)
				if err != nil {
					t.Fatalf("seed=%d ordered=%v priv=%v: %v", seed, ordered, priv, err)
				}
				if !got.Equal(want) {
					t.Fatalf("seed=%d ordered=%v priv=%v: chaos state %s != sequential %s (stats %+v)",
						seed, ordered, priv, got, want, stats)
				}
				if stats.Commits != nTasks {
					t.Fatalf("seed=%d ordered=%v priv=%v: commits = %d, want %d",
						seed, ordered, priv, stats.Commits, nTasks)
				}
				s := inj.Stats()
				total.ForcedAborts += s.ForcedAborts
				total.WindowDelays += s.WindowDelays
				total.CommitDelays += s.CommitDelays
			}
		}
	}
	// The harness must actually have injected faults, or the soak proved
	// nothing.
	if total.ForcedAborts == 0 || total.WindowDelays == 0 || total.CommitDelays == 0 {
		t.Fatalf("injection never fired across the matrix: %+v", total)
	}
}

// TestChaosSoakForcedCacheMisses drives the trained sequence detector's
// fallback paths: identity tasks that only parallelize because the
// commutativity cache proves them independent keep producing the oracle
// state when lookups are randomly forced to miss (the write-set fallback
// then serializes them — slower, never wrong).
func TestChaosSoakForcedCacheMisses(t *testing.T) {
	const nTasks = 24
	identity := func(n int64) adt.Task {
		return func(ex adt.Executor) error {
			c := adt.Counter{L: "c0"}
			if err := c.Add(ex, n); err != nil {
				return err
			}
			runtime.Gosched()
			return c.Sub(ex, n)
		}
	}
	var tasks []adt.Task
	for i := 1; i <= nTasks; i++ {
		tasks = append(tasks, identity(int64(i)))
	}
	want, err := stm.RunSequential(soakState(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	cache, _, err := train.Train(soakState(), tasks[:3], train.Options{Mode: seqabs.Abstract})
	if err != nil {
		t.Fatal(err)
	}
	var misses int64
	for seed := int64(1); seed <= int64(*seedCount); seed++ {
		inj := New(Config{Seed: seed, MissProb: 0.5})
		det := conflict.NewSequence(cache, nil)
		det.ForceMiss = inj.ForceMiss
		got, _, err := stm.Run(stm.Config{
			Threads: 4, Detector: det, Hooks: inj.Hooks(), MaxRetries: 500,
		}, soakState(), tasks)
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if !got.Equal(want) {
			t.Fatalf("seed=%d: forced-miss state %s != sequential %s", seed, got, want)
		}
		misses += inj.Stats().ForcedMisses
	}
	if misses == 0 {
		t.Fatal("no cache misses were forced")
	}
}

// TestChaosPanicInjection arms random tasks to panic and asserts the run
// fails with a *stm.PanicError — never a process crash — in both commit
// modes (ordered peers blocked on their commit turn must be woken).
func TestChaosPanicInjection(t *testing.T) {
	for _, ordered := range []bool{false, true} {
		armedTotal := 0
		for seed := int64(1); seed <= int64(*seedCount); seed++ {
			inj := New(Config{Seed: seed, PanicProb: 0.2})
			tasks, armed := inj.WrapPanics(soakTasks(seed, 20, ordered))
			armedTotal += armed
			_, _, err := stm.Run(stm.Config{Threads: 4, Ordered: ordered}, soakState(), tasks)
			if armed == 0 {
				if err != nil {
					t.Fatalf("seed=%d ordered=%v: unarmed run failed: %v", seed, ordered, err)
				}
				continue
			}
			var pe *stm.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("seed=%d ordered=%v: err = %v, want *stm.PanicError", seed, ordered, err)
			}
		}
		if armedTotal == 0 {
			t.Fatalf("ordered=%v: no panics armed across %d seeds", ordered, *seedCount)
		}
	}
}

// TestChaosTerminationUnderMaxAbortPressure turns forced aborts to
// certainty (probability 1): the per-task injection bound must keep
// Theorem 4.1's termination intact, with every injected abort visible in
// the run's attribution.
func TestChaosTerminationUnderMaxAbortPressure(t *testing.T) {
	const nTasks = 16
	tasks := soakTasks(99, nTasks, false)
	want, err := stm.RunSequential(soakState(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	inj := New(Config{Seed: 99, AbortProb: 1, AbortMaxPerTask: 3})
	got, stats, err := stm.Run(stm.Config{Threads: 4, Hooks: inj.Hooks()}, soakState(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("state %s != sequential %s", got, want)
	}
	if injected := stats.AbortReasons["injected"]; injected < nTasks*3 {
		t.Fatalf("injected aborts = %d, want >= %d (3 per task)", injected, nTasks*3)
	}
	if stats.Retries < nTasks*3 {
		t.Fatalf("Retries = %d, want >= %d", stats.Retries, nTasks*3)
	}
}

// TestChaosEscalationUnderMaxAbortPressure combines certain aborts with a
// SerializeAfter below the injection bound: every task escalates to
// irrevocable serial mode (which has no validation pass, so the injector
// cannot touch it) and the run completes with bounded retries.
func TestChaosEscalationUnderMaxAbortPressure(t *testing.T) {
	const nTasks = 16
	tasks := soakTasks(7, nTasks, false)
	want, err := stm.RunSequential(soakState(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	inj := New(Config{Seed: 7, AbortProb: 1, AbortMaxPerTask: 1 << 20})
	got, stats, err := stm.Run(stm.Config{
		Threads: 4, Hooks: inj.Hooks(), SerializeAfter: 2,
		Backoff: stm.Backoff{Base: 10 * time.Microsecond},
	}, soakState(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("state %s != sequential %s", got, want)
	}
	if stats.Escalations != nTasks {
		t.Fatalf("Escalations = %d, want %d (every task starves)", stats.Escalations, nTasks)
	}
	if ratio := stats.RetryRatio(); ratio > 2 {
		t.Fatalf("retries/txn = %.2f, want <= SerializeAfter = 2", ratio)
	}
}

// TestChaosDecisionsDeterministic pins the reproducibility contract:
// equal seeds decide identically at every (site, task, attempt), and
// different seeds eventually diverge.
func TestChaosDecisionsDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, AbortProb: 0.5, MissProb: 0.5, PanicProb: 0.5}
	a, b := New(cfg), New(cfg)
	diverged := false
	other := New(Config{Seed: 43, AbortProb: 0.5, MissProb: 0.5})
	for task := 1; task <= 50; task++ {
		for attempt := 1; attempt <= 3; attempt++ {
			if a.ForceAbort(task, attempt) != b.ForceAbort(task, attempt) {
				t.Fatalf("ForceAbort(%d,%d) nondeterministic", task, attempt)
			}
			if a.ForceMiss(task, attempt) != b.ForceMiss(task, attempt) {
				t.Fatalf("ForceMiss(%d,%d) nondeterministic", task, attempt)
			}
			if a.ForceAbort(task, attempt) != other.ForceAbort(task, attempt) {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Fatal("seeds 42 and 43 made identical abort decisions everywhere")
	}
	// The same holds for the panic arming pattern.
	tasks := make([]adt.Task, 64)
	for i := range tasks {
		tasks[i] = func(adt.Executor) error { return nil }
	}
	_, armedA := a.WrapPanics(tasks)
	_, armedB := b.WrapPanics(tasks)
	if armedA != armedB {
		t.Fatalf("WrapPanics armed %d vs %d under equal seeds", armedA, armedB)
	}
}

// TestChaosAbortBoundRespected verifies the injector never forces an
// abort past AbortMaxPerTask, the invariant termination rests on.
func TestChaosAbortBoundRespected(t *testing.T) {
	inj := New(Config{Seed: 1, AbortProb: 1, AbortMaxPerTask: 2})
	for task := 1; task <= 20; task++ {
		if !inj.ForceAbort(task, 1) || !inj.ForceAbort(task, 2) {
			t.Fatalf("task %d: certain abort not injected within bound", task)
		}
		if inj.ForceAbort(task, 3) {
			t.Fatalf("task %d: abort injected past AbortMaxPerTask", task)
		}
	}
}

// TestChaosCompressSweepSerializability re-runs the serializability soak
// with committed-history compression on: every cell of the seed ×
// {ordered, unordered} × {copy, persistent} matrix runs with a tiny
// CompressAfter window, so in-flight validations routinely screen — and
// on footprint overlap decode — compressed entries while the injector
// forces aborts and stretches commit windows. The final state must still
// be exactly the sequential oracle's, and the matrix must actually have
// demoted, or compression was never on the detection path.
func TestChaosCompressSweepSerializability(t *testing.T) {
	const nTasks = 30
	var demotions int64
	for _, keep := range []int{1, 4} {
		for seed := int64(1); seed <= int64(*seedCount); seed++ {
			for _, ordered := range []bool{false, true} {
				for _, priv := range []stm.Privatize{stm.PrivatizeCopy, stm.PrivatizePersistent} {
					tasks := soakTasks(seed, nTasks, ordered)
					want, err := stm.RunSequential(soakState(), tasks)
					if err != nil {
						t.Fatal(err)
					}
					inj := New(Config{
						Seed:      seed,
						AbortProb: 0.35, AbortMaxPerTask: 3,
						DelayProb: 0.25, MaxDelay: 200 * time.Microsecond,
					})
					cfg := stm.Config{
						Threads: 4, Ordered: ordered, Privatize: priv,
						Hooks: inj.Hooks(), MaxRetries: 500,
						HistoryCompress: true, CompressAfter: keep,
					}
					if seed%2 == 0 {
						cfg.Backoff = stm.Backoff{Base: 20 * time.Microsecond}
						cfg.SerializeAfter = 4
					}
					got, stats, err := stm.Run(cfg, soakState(), tasks)
					if err != nil {
						t.Fatalf("keep=%d seed=%d ordered=%v priv=%v: %v", keep, seed, ordered, priv, err)
					}
					if !got.Equal(want) {
						t.Fatalf("keep=%d seed=%d ordered=%v priv=%v: chaos state %s != sequential %s (stats %+v)",
							keep, seed, ordered, priv, got, want, stats)
					}
					if stats.Commits != nTasks {
						t.Fatalf("keep=%d seed=%d ordered=%v priv=%v: commits = %d, want %d",
							keep, seed, ordered, priv, stats.Commits, nTasks)
					}
					demotions += stats.Demotions
				}
			}
		}
	}
	if demotions == 0 {
		t.Fatal("no history entries were demoted across the matrix")
	}
}

// TestChaosStripeSweepSerializability re-runs the serializability soak
// across commit-stripe table sizes: 1 degenerates the striped commit to
// the paper's single lock, 3 forces heavy stripe sharing (five locations
// over three stripes guarantees false collisions), and the default table
// gives disjoint counters genuinely concurrent replays. Every cell must
// still produce exactly the sequential oracle's final state under forced
// aborts and stretched commit windows — stripe count is a throughput
// knob, never a correctness one.
func TestChaosStripeSweepSerializability(t *testing.T) {
	const nTasks = 30
	for _, stripes := range []int{1, 3, stm.DefaultCommitStripes} {
		for seed := int64(1); seed <= int64(*seedCount); seed++ {
			for _, ordered := range []bool{false, true} {
				for _, priv := range []stm.Privatize{stm.PrivatizeCopy, stm.PrivatizePersistent} {
					tasks := soakTasks(seed, nTasks, ordered)
					want, err := stm.RunSequential(soakState(), tasks)
					if err != nil {
						t.Fatal(err)
					}
					inj := New(Config{
						Seed:      seed,
						AbortProb: 0.35, AbortMaxPerTask: 3,
						DelayProb: 0.25, MaxDelay: 200 * time.Microsecond,
					})
					cfg := stm.Config{
						Threads: 4, Ordered: ordered, Privatize: priv,
						Hooks: inj.Hooks(), MaxRetries: 500,
						CommitStripes: stripes,
					}
					if seed%2 == 0 {
						cfg.Backoff = stm.Backoff{Base: 20 * time.Microsecond}
						cfg.SerializeAfter = 4
					}
					got, stats, err := stm.Run(cfg, soakState(), tasks)
					if err != nil {
						t.Fatalf("stripes=%d seed=%d ordered=%v priv=%v: %v", stripes, seed, ordered, priv, err)
					}
					if !got.Equal(want) {
						t.Fatalf("stripes=%d seed=%d ordered=%v priv=%v: chaos state %s != sequential %s (stats %+v)",
							stripes, seed, ordered, priv, got, want, stats)
					}
					if stats.Commits != nTasks {
						t.Fatalf("stripes=%d seed=%d ordered=%v priv=%v: commits = %d, want %d",
							stripes, seed, ordered, priv, stats.Commits, nTasks)
					}
				}
			}
		}
	}
}
