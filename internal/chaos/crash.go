package chaos

import (
	"sync/atomic"

	"repro/internal/wal"
)

// CrashPlan schedules one simulated process death for the durability
// layer: at the Visit-th time the journal reaches Point, the plan's
// hook reports die=true and wal poisons the log — every subsequent
// journal operation fails with wal.ErrCrashed and performs no I/O,
// exactly the observable behavior of `kill -9` at that instant (bytes
// written before the point survive in the page cache; nothing after
// exists). Like every injector in this package the decision is
// deterministic: same plan, same traffic order, same death.
//
// The recovery soak iterates plans over CrashPoints × visit counts,
// restarting a server on the same data dir after each death and
// asserting convergence (journal == oracle digest, no acked-but-lost,
// no double-applied).
type CrashPlan struct {
	// Point is the wal crash point to die at (see CrashPoints).
	Point string
	// Visit is the 1-based count of Point visits to survive before
	// dying; 1 dies at the first visit.
	Visit int64

	visits atomic.Int64
	fired  atomic.Bool
}

// Hook adapts the plan to wal.Options.Hook.
func (p *CrashPlan) Hook() wal.Hook {
	return func(point string) bool {
		if point != p.Point {
			return false
		}
		if p.visits.Add(1) == p.Visit {
			p.fired.Store(true)
			return true
		}
		return false
	}
}

// Fired reports whether the death was reached (a plan aimed past the
// run's traffic never fires — the soak uses this to stop escalating).
func (p *CrashPlan) Fired() bool { return p.fired.Load() }

// Visits reports how many times the planned point was reached.
func (p *CrashPlan) Visits() int64 { return p.visits.Load() }

// CrashPoints enumerates every wal crash point, in protocol order — the
// axis the recovery soak's crash matrix iterates.
func CrashPoints() []string {
	return []string{
		wal.PointAppendBefore,
		wal.PointAppendAfter,
		wal.PointSnapshotMid,
		wal.PointSnapshotRenameBefore,
		wal.PointSnapshotRenameAfter,
		wal.PointTruncateBefore,
	}
}
