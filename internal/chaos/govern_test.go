package chaos

import (
	"bytes"
	"errors"
	"runtime"
	"testing"

	"repro/internal/adt"
	"repro/internal/cache"
	"repro/internal/conflict"
	"repro/internal/health"
	"repro/internal/seqabs"
	"repro/internal/stm"
	"repro/internal/train"
)

// identityTasks builds n add/undo identity tasks over one counter: they
// only parallelize because the trained cache proves the pairs commute, so
// forced misses directly control the governor's miss-rate signal.
func identityTasks(n int) []adt.Task {
	var tasks []adt.Task
	for i := 1; i <= n; i++ {
		d := int64(i)
		tasks = append(tasks, func(ex adt.Executor) error {
			c := adt.Counter{L: "c0"}
			if err := c.Add(ex, d); err != nil {
				return err
			}
			runtime.Gosched()
			return c.Sub(ex, d)
		})
	}
	return tasks
}

// trainOn returns a cache trained on a prefix of the tasks.
func trainOn(t *testing.T, tasks []adt.Task) *cache.Cache {
	t.Helper()
	c, _, err := train.Train(soakState(), tasks[:3], train.Options{Mode: seqabs.Abstract})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestGovernorMissStormEqualsOracle is the governed soak for the demote →
// probe → restore cycle: a contiguous burst of forced cache misses must
// push the governor into degraded write-set detection, a probe past the
// storm must restore it, and — the property that actually matters — every
// governed run must still produce exactly the sequential oracle's state.
// Demotions/restores depend on how much concurrency the scheduler
// produces, so they are asserted in aggregate across the seed matrix;
// correctness is asserted per run.
func TestGovernorMissStormEqualsOracle(t *testing.T) {
	const nTasks = 48
	tasks := identityTasks(nTasks)
	want, err := stm.RunSequential(soakState(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	trained := trainOn(t, tasks)
	var demotions, restores, stormMisses int64
	for seed := int64(1); seed <= int64(*seedCount); seed++ {
		inj := New(Config{Seed: seed, StormStart: 1, StormLen: 12})
		det := conflict.NewSequence(trained, nil)
		det.ForceMiss = inj.ForceMiss
		gov := health.NewGovernor(det, nil, health.Config{
			Window: 2, DemoteAbortRate: 1.1, TripAbortRate: 1.1,
			ProbeEvery: 2, RestoreProbes: 1,
		})
		got, stats, err := stm.Run(stm.Config{
			Threads: 4, Detector: gov, Governor: gov,
			Hooks: inj.Hooks(), MaxRetries: 500,
		}, soakState(), tasks)
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if !got.Equal(want) {
			t.Fatalf("seed=%d: governed state %s != sequential %s (health %+v)",
				seed, got, want, gov.Stats())
		}
		if stats.Commits != nTasks {
			t.Fatalf("seed=%d: commits = %d, want %d", seed, stats.Commits, nTasks)
		}
		hs := gov.Stats()
		if hs.Demotions > 0 && hs.Restores == 0 && hs.State != "degraded" {
			t.Fatalf("seed=%d: inconsistent governor stats %+v", seed, hs)
		}
		demotions += hs.Demotions
		restores += hs.Restores
		stormMisses += inj.Stats().StormMisses
	}
	if stormMisses == 0 {
		t.Fatal("the miss storm never fired; the soak proved nothing")
	}
	if demotions == 0 {
		t.Fatalf("no seed demoted under a %d-consultation miss storm", 12)
	}
	if restores == 0 {
		t.Fatal("no seed restored after its storm ended")
	}
}

// TestGovernorTripEqualsOracle drives the full ladder under chaos:
// permanent forced misses plus genuinely conflicting tasks make degraded
// windows abort-heavy enough to trip into serial execution, the serial
// budget recovers back to degraded, and the run must still match the
// oracle. A MaxHistory bound rides along to prove commit-side
// backpressure composes with governed serial escalation.
func TestGovernorTripEqualsOracle(t *testing.T) {
	const nTasks, bound = 40, 8
	tasks := soakTasks(11, nTasks, false)
	want, err := stm.RunSequential(soakState(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	trained := trainOn(t, identityTasks(4))
	var trips, escalations int64
	for seed := int64(1); seed <= int64(*seedCount); seed++ {
		inj := New(Config{Seed: seed, MissProb: 1})
		det := conflict.NewSequence(trained, nil)
		det.ForceMiss = inj.ForceMiss
		gov := health.NewGovernor(det, nil, health.Config{
			Window: 2, TripWindows: 1, RecoverCommits: 4, ProbeEvery: 1 << 20,
		})
		got, stats, err := stm.Run(stm.Config{
			Threads: 4, Detector: gov, Governor: gov,
			MaxHistory: bound, MaxRetries: 500,
		}, soakState(), tasks)
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if !got.Equal(want) {
			t.Fatalf("seed=%d: governed state %s != sequential %s (health %+v)",
				seed, got, want, gov.Stats())
		}
		if stats.MaxHist > bound {
			t.Fatalf("seed=%d: MaxHist = %d exceeds bound %d under governed chaos",
				seed, stats.MaxHist, bound)
		}
		trips += gov.Stats().Trips
		escalations += stats.Escalations
	}
	if trips == 0 {
		t.Fatal("no seed tripped under permanent misses + conflicting tasks")
	}
	if escalations == 0 {
		t.Fatal("tripped runs never escalated serially")
	}
}

// TestCorruptSpecAlwaysRejected: every seeded corruption of a saved spec
// artifact must be caught by the envelope (typed *cache.SpecError), and
// the target cache must stay unchanged — the flips land inside the
// checksummed payload by construction, so this is the CRC's job, not
// lucky JSON breakage.
func TestCorruptSpecAlwaysRejected(t *testing.T) {
	trained := trainOn(t, identityTasks(4))
	var buf bytes.Buffer
	if err := trained.Save(&buf); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()

	// The artifact itself round-trips.
	clean := cache.New(seqabs.Abstract)
	if err := clean.Load(bytes.NewReader(pristine)); err != nil {
		t.Fatalf("pristine spec rejected: %v", err)
	}
	if clean.Len() == 0 {
		t.Fatal("pristine spec loaded no entries")
	}

	for seed := int64(1); seed <= int64(*seedCount); seed++ {
		for _, flips := range []int{1, 2, 8} {
			corrupted := CorruptSpec(pristine, seed, flips)
			if bytes.Equal(corrupted, pristine) {
				t.Fatalf("seed=%d flips=%d: corruption was a no-op", seed, flips)
			}
			target := cache.New(seqabs.Abstract)
			err := target.Load(bytes.NewReader(corrupted))
			var se *cache.SpecError
			if !errors.As(err, &se) {
				t.Fatalf("seed=%d flips=%d: err = %v, want *cache.SpecError", seed, flips, err)
			}
			if target.Len() != 0 {
				t.Fatalf("seed=%d flips=%d: rejected load still added %d entries",
					seed, flips, target.Len())
			}
		}
	}
}
