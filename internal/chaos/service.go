// Service-layer fault injection: the client-side misbehavior a serving
// front end must survive — disconnects mid-request, unmeetable
// deadlines, and slow-tenant storms — generated with the same
// deterministic seeded-hash discipline as the runtime-level injector.
// Decisions are pure functions of (seed, site, tenant, sequence), so a
// soak run's fault schedule is reproducible from its seed alone.

package chaos

import (
	"hash/fnv"
	"sync/atomic"
	"time"
)

// Service-layer decision sites (continuing the chaos.go salt space).
const (
	siteDisconnect uint64 = iota + 16
	siteDeadline
	siteSlow
)

// ServiceConfig parameterizes a ServiceInjector. Probabilities are in
// [0, 1]; zero disables the class.
type ServiceConfig struct {
	// Seed selects the deterministic fault pattern.
	Seed int64
	// DisconnectProb is the per-request probability the client hangs up
	// mid-request (the request context is canceled while the batch may
	// already be admitted or running).
	DisconnectProb float64
	// DeadlineProb is the per-request probability of a deadline-storm
	// request: the batch carries TinyDeadline instead of a sane one,
	// all but guaranteeing a 504. TinyDeadline 0 means 1ms.
	DeadlineProb float64
	TinyDeadline time.Duration
	// SlowProb is the per-request probability of a slow-tenant batch:
	// each task is padded with SlowWork spin units so one tenant's
	// traffic hogs its runner while other tenants must stay unaffected.
	// SlowWork 0 means 200k units per task.
	SlowProb float64
	SlowWork int64
}

// ServiceStats counts service-layer faults actually injected.
type ServiceStats struct {
	Disconnects int64
	Deadlines   int64
	SlowBatches int64
}

// ServiceInjector makes seeded per-request fault decisions for a
// serving-layer soak. All methods are safe for concurrent use.
type ServiceInjector struct {
	cfg         ServiceConfig
	disconnects atomic.Int64
	deadlines   atomic.Int64
	slows       atomic.Int64
}

// NewService builds a service-layer injector.
func NewService(cfg ServiceConfig) *ServiceInjector {
	if cfg.TinyDeadline <= 0 {
		cfg.TinyDeadline = time.Millisecond
	}
	if cfg.SlowWork <= 0 {
		cfg.SlowWork = 200_000
	}
	return &ServiceInjector{cfg: cfg}
}

// Stats snapshots the injected-fault counters.
func (i *ServiceInjector) Stats() ServiceStats {
	return ServiceStats{
		Disconnects: i.disconnects.Load(),
		Deadlines:   i.deadlines.Load(),
		SlowBatches: i.slows.Load(),
	}
}

// roll maps (seed, site, tenant, seq) to [0, 1). The tenant name is
// folded through FNV so distinct tenants draw independent streams.
func (i *ServiceInjector) roll(site uint64, tenant string, seq int) float64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(tenant))
	x := mix64(mix64(uint64(i.cfg.Seed)^site<<56) ^ h.Sum64() ^ uint64(seq)<<20)
	return float64(x>>11) / float64(uint64(1)<<53)
}

// Disconnect reports whether the client should hang up mid-request for
// this (tenant, seq) request.
func (i *ServiceInjector) Disconnect(tenant string, seq int) bool {
	if i.cfg.DisconnectProb <= 0 || i.roll(siteDisconnect, tenant, seq) >= i.cfg.DisconnectProb {
		return false
	}
	i.disconnects.Add(1)
	return true
}

// Deadline returns the deadline this request should carry: the storm's
// tiny deadline (true) or the caller's default (false).
func (i *ServiceInjector) Deadline(tenant string, seq int) (time.Duration, bool) {
	if i.cfg.DeadlineProb <= 0 || i.roll(siteDeadline, tenant, seq) >= i.cfg.DeadlineProb {
		return 0, false
	}
	i.deadlines.Add(1)
	return i.cfg.TinyDeadline, true
}

// SlowBatch reports whether this request should carry slow-tenant spin
// padding, and how many work units per task.
func (i *ServiceInjector) SlowBatch(tenant string, seq int) (int64, bool) {
	if i.cfg.SlowProb <= 0 || i.roll(siteSlow, tenant, seq) >= i.cfg.SlowProb {
		return 0, false
	}
	i.slows.Add(1)
	return i.cfg.SlowWork, true
}
