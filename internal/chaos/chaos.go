// Package chaos is the fault-injection harness for the JANUS runtime: it
// manufactures the adversarial schedules and degraded conditions that
// ordinary test workloads almost never produce — forced aborts, stretched
// commit windows, commutativity-cache misses, task panics — and threads
// them through the runtime's hook points (stm.Config.Hooks,
// conflict.Sequence.ForceMiss) so the protocol's guarantees can be
// asserted *under* fault, not just in the sunny case. The serializability
// oracle is stm.RunSequential: whatever the injector does, a run that
// completes must produce a final state some serial execution could have
// produced (exactly the sequential state for order-insensitive workloads
// and for ordered mode).
//
// Every injection decision is a pure function of (seed, site, task,
// attempt) — a splitmix64 hash, not a shared PRNG — so a given seed
// injects the same faults at the same protocol points regardless of how
// the scheduler interleaves workers, runs are reproducible for debugging,
// and no injector state ever synchronizes two goroutines that the real
// runtime would not have synchronized (the injector cannot mask races
// from the race detector).
package chaos

import (
	"bytes"
	"sync/atomic"
	"time"

	"repro/internal/adt"
	"repro/internal/stm"
)

// Config parameterizes an Injector. Probabilities are in [0, 1]; a zero
// field disables that fault class.
type Config struct {
	// Seed selects the deterministic fault pattern; two injectors with
	// equal configs make identical decisions.
	Seed int64
	// AbortProb is the per-validation-pass probability of a forced abort.
	AbortProb float64
	// AbortMaxPerTask bounds forced aborts per task so injected
	// contention cannot defeat Theorem 4.1's termination guarantee
	// (0 means 3). Attempts beyond the bound are never forced to abort.
	AbortMaxPerTask int
	// DelayProb is the probability a commit picks up an injected delay;
	// MaxDelay bounds the delay drawn (0 disables delays).
	DelayProb float64
	MaxDelay  time.Duration
	// MissProb is the probability a commutativity-cache lookup is forced
	// to miss, driving detection onto its fallback paths.
	MissProb float64
	// StormStart/StormLen configure a miss storm: ForceMiss consultations
	// numbered [StormStart, StormStart+StormLen) — counted 1-based across
	// the whole run — all miss, modelling a contiguous burst of untrained
	// inputs (the condition the health governor demotes on). StormLen 0
	// disables the storm. Unlike the other fault classes the storm is
	// temporal by construction (it targets a phase of the run, not a
	// (task, attempt) pair), so it is driven by a shared counter rather
	// than a pure hash; the counter is an atomic increment and introduces
	// no synchronization the runtime's cache-lookup path does not already
	// have.
	StormStart int64
	StormLen   int64
	// PanicProb is the per-task probability WrapPanics replaces the task
	// body with a panic.
	PanicProb float64
}

// Stats counts the faults actually injected (all fields are totals since
// New).
type Stats struct {
	ForcedAborts int64
	WindowDelays int64
	CommitDelays int64
	ForcedMisses int64
	// StormMisses is the subset of ForcedMisses injected by the
	// StormStart/StormLen window.
	StormMisses int64
	Panics      int64
}

// Injector makes seeded, deterministic fault decisions. All methods are
// safe for concurrent use; the only mutable state is the fault counters.
type Injector struct {
	cfg     Config
	aborts  atomic.Int64
	windows atomic.Int64
	commits atomic.Int64
	misses  atomic.Int64
	storm   atomic.Int64
	panics  atomic.Int64
	// lookups numbers ForceMiss consultations for the miss-storm window.
	lookups atomic.Int64
}

// New builds an injector; zero-probability fault classes stay silent.
func New(cfg Config) *Injector {
	if cfg.AbortMaxPerTask <= 0 {
		cfg.AbortMaxPerTask = 3
	}
	return &Injector{cfg: cfg}
}

// Stats snapshots the injected-fault counters.
func (i *Injector) Stats() Stats {
	return Stats{
		ForcedAborts: i.aborts.Load(),
		WindowDelays: i.windows.Load(),
		CommitDelays: i.commits.Load(),
		ForcedMisses: i.misses.Load(),
		StormMisses:  i.storm.Load(),
		Panics:       i.panics.Load(),
	}
}

// Decision-site salts: distinct streams per fault class, so enabling one
// class never perturbs another's decisions under the same seed.
const (
	siteAbort uint64 = iota + 1
	siteWindowDelay
	siteCommitDelay
	siteMiss
	sitePanic
	siteCorrupt
)

// mix64 is the splitmix64 finalizer (full avalanche).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash collapses (seed, site, task, attempt) into one uniform word.
func (i *Injector) hash(site uint64, task, attempt int) uint64 {
	return mix64(mix64(uint64(i.cfg.Seed)^site<<56) ^ uint64(task)<<20 ^ uint64(attempt))
}

// roll maps the hash to [0, 1).
func (i *Injector) roll(site uint64, task, attempt int) float64 {
	return float64(i.hash(site, task, attempt)>>11) / float64(uint64(1)<<53)
}

// ForceAbort implements stm.Hooks.ForceAbort: a seeded coin per
// (task, attempt), silenced beyond AbortMaxPerTask attempts.
func (i *Injector) ForceAbort(task, attempt int) bool {
	if i.cfg.AbortProb <= 0 || attempt > i.cfg.AbortMaxPerTask {
		return false
	}
	if i.roll(siteAbort, task, attempt) >= i.cfg.AbortProb {
		return false
	}
	i.aborts.Add(1)
	return true
}

// delay draws a deterministic duration in (0, MaxDelay] for a site that
// passed its probability roll.
func (i *Injector) delay(site uint64, task int) time.Duration {
	return 1 + time.Duration(i.hash(site, task, 1)%uint64(i.cfg.MaxDelay))
}

// WindowDelay implements stm.Hooks.WindowDelay: sleep between a
// successful validation and the commit attempt, widening the race window
// the commit-time clock re-check guards.
func (i *Injector) WindowDelay(task int) {
	if i.cfg.MaxDelay <= 0 || i.roll(siteWindowDelay, task, 0) >= i.cfg.DelayProb {
		return
	}
	i.windows.Add(1)
	time.Sleep(i.delay(siteWindowDelay, task))
}

// CommitDelay implements stm.Hooks.CommitDelay: sleep inside the commit
// critical section, stretching the serial window every other transaction
// races against.
func (i *Injector) CommitDelay(task int) {
	if i.cfg.MaxDelay <= 0 || i.roll(siteCommitDelay, task, 0) >= i.cfg.DelayProb {
		return
	}
	i.commits.Add(1)
	time.Sleep(i.delay(siteCommitDelay, task))
}

// ForceMiss implements conflict.Sequence.ForceMiss: a seeded coin per
// (task, attempt) that pretends the commutativity cache has no entry,
// driving the detector onto its write-set/online fallback paths. A
// configured miss storm (StormStart/StormLen) overrides the coin for a
// contiguous burst of consultations.
func (i *Injector) ForceMiss(task, attempt int) bool {
	if i.cfg.StormLen > 0 {
		n := i.lookups.Add(1)
		if n >= i.cfg.StormStart && n < i.cfg.StormStart+i.cfg.StormLen {
			i.misses.Add(1)
			i.storm.Add(1)
			return true
		}
	}
	if i.cfg.MissProb <= 0 || i.roll(siteMiss, task, attempt) >= i.cfg.MissProb {
		return false
	}
	i.misses.Add(1)
	return true
}

// Hooks bundles the stm-side injection points for stm.Config.Hooks.
func (i *Injector) Hooks() *stm.Hooks {
	return &stm.Hooks{
		ForceAbort:  i.ForceAbort,
		WindowDelay: i.WindowDelay,
		CommitDelay: i.CommitDelay,
	}
}

// CorruptSpec returns a copy of a serialized spec artifact with `flips`
// deterministic single-bit flips (seeded site-hash positions). Flips land
// only on alphanumeric bytes inside the checksummed payload region and
// toggle a low bit, so the corruption never just breaks the outer JSON
// framing or mutates unvalidated envelope metadata by luck — it produces
// the hard case: a file that still *looks* like a spec but whose
// checksummed content changed, which only the envelope CRC can catch.
func CorruptSpec(spec []byte, seed int64, flips int) []byte {
	out := append([]byte(nil), spec...)
	from := 0
	if at := bytes.Index(out, []byte(`"payload"`)); at >= 0 {
		from = at + len(`"payload"`)
	}
	var sites []int
	for idx, b := range out[from:] {
		if b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' {
			sites = append(sites, from+idx)
		}
	}
	if len(sites) == 0 {
		return out
	}
	for n := 0; n < flips; n++ {
		at := sites[mix64(uint64(seed)^siteCorrupt<<56^uint64(n)<<20)%uint64(len(sites))]
		out[at] ^= 1 << (mix64(uint64(seed)^siteCorrupt<<56^uint64(n)<<20^1)%4 + 1)
	}
	return out
}

// WrapPanics returns a task list where each task selected by the seeded
// PanicProb coin panics when executed (every attempt — one injected panic
// is expected to fail the whole run with a *stm.PanicError). The returned
// count is how many tasks were armed.
func (i *Injector) WrapPanics(tasks []adt.Task) ([]adt.Task, int) {
	out := make([]adt.Task, len(tasks))
	armed := 0
	for idx, t := range tasks {
		if i.cfg.PanicProb > 0 && i.roll(sitePanic, idx+1, 0) < i.cfg.PanicProb {
			armed++
			out[idx] = func(adt.Executor) error {
				i.panics.Add(1)
				panic("chaos: injected task panic")
			}
		} else {
			out[idx] = t
		}
	}
	return out, armed
}
