// Package wal is the durability layer under the serving tier: a
// per-tenant write-ahead journal of applied batches plus point-in-time
// snapshots, built from the same framing discipline as internal/rec's
// trace format (magic + version prefix, varint fields, a CRC32 over
// every frame, typed never-panic rejection of anything malformed).
//
// The contract the serving layer builds on:
//
//   - Append happens BEFORE the batch is acknowledged. Under
//     FsyncAlways an acknowledged batch is therefore durable against
//     machine crashes; under every policy it is durable against process
//     death (`kill -9`), because written bytes survive the process in
//     the page cache.
//   - Records carry the journal sequence number, the batch ID, an
//     opaque payload (the serving layer stores the wire-format batch,
//     which its sequential oracle replays), and the digest of the state
//     the apply produced — so recovery verifies every replayed record
//     against the digest recorded at commit time.
//   - Segments are append-only and rotate at a size bound; a snapshot
//     at sequence S makes every segment whose records are all ≤ S
//     garbage, which Truncate collects. Recovery therefore reads one
//     snapshot plus a bounded journal suffix.
//   - A torn tail (crash mid-append) or a CRC-corrupt record is
//     detected, reported with a typed *Error, physically truncated at
//     the last valid record, and counted — never panicked on, never
//     silently replayed.
//
// Crash points: Options.Hook is consulted at the protocol's
// durability-critical instants (before/after an append reaches the
// file, mid-snapshot, before/after the snapshot rename, before
// truncation). A hook that returns die=true poisons the log — every
// subsequent operation fails with ErrCrashed and performs no I/O —
// which models the process dying at exactly that instant: bytes written
// before the point survive on disk, nothing after does. The chaos
// harness drives recovery soaks through it; cmd/janus-serve can arm it
// to call os.Exit for true kill-matrix testing.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/fsio"
)

// Policy selects when appends reach stable storage.
type Policy uint8

// Fsync policies.
const (
	// FsyncAlways fsyncs every append before it returns: an acknowledged
	// batch survives machine power loss. The safest and slowest.
	FsyncAlways Policy = iota
	// FsyncGroup writes appends immediately but fsyncs on a background
	// interval (group commit): bounded data loss on machine crash, none
	// on process crash.
	FsyncGroup
	// FsyncNever leaves syncing entirely to the OS.
	FsyncNever
)

// String renders the policy as the -fsync flag spells it.
func (p Policy) String() string {
	switch p {
	case FsyncGroup:
		return "group"
	case FsyncNever:
		return "never"
	default:
		return "always"
	}
}

// ParsePolicy parses the -fsync flag value.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always", "":
		return FsyncAlways, nil
	case "group":
		return FsyncGroup, nil
	case "never":
		return FsyncNever, nil
	}
	return FsyncAlways, fmt.Errorf("wal: unknown fsync policy %q (want always, group, or never)", s)
}

// Crash points a Hook observes, in protocol order.
const (
	// PointAppendBefore fires before a record's bytes reach the segment:
	// dying here loses the batch, which is safe — it was never
	// acknowledged.
	PointAppendBefore = "wal.append.before"
	// PointAppendAfter fires after the record is written (and synced,
	// under FsyncAlways) but before Append returns: the batch is durable
	// but the client never saw the ack — the recovery path must replay
	// it and answer the client's retry with the original verdict.
	PointAppendAfter = "wal.append.after"
	// PointSnapshotMid fires with half the snapshot bytes written to the
	// temp file: recovery must ignore the partial temp and fall back to
	// the previous snapshot + journal.
	PointSnapshotMid = "wal.snapshot.mid"
	// PointSnapshotRenameBefore fires with the temp complete and synced
	// but not yet renamed into place.
	PointSnapshotRenameBefore = "wal.snapshot.rename.before"
	// PointSnapshotRenameAfter fires with the snapshot published but old
	// segments not yet truncated: recovery must tolerate journal records
	// older than the snapshot.
	PointSnapshotRenameAfter = "wal.snapshot.rename.after"
	// PointTruncateBefore fires before covered segments are removed.
	PointTruncateBefore = "wal.truncate.before"
)

// Hook observes crash points. Returning die=true poisons the log (every
// later call fails with ErrCrashed, modelling process death at that
// instant); a hook may equally os.Exit for a real kill. nil hooks and
// false returns are free of side effects.
type Hook func(point string) (die bool)

// Options tunes a journal.
type Options struct {
	// Policy is the fsync policy (default FsyncAlways).
	Policy Policy
	// GroupInterval is the background fsync cadence under FsyncGroup;
	// 0 means 25ms.
	GroupInterval time.Duration
	// SegmentBytes rotates the active segment once it crosses this size;
	// 0 means 4 MiB.
	SegmentBytes int64
	// Hook observes crash points; nil disables.
	Hook Hook
}

func (o Options) withDefaults() Options {
	if o.GroupInterval <= 0 {
		o.GroupInterval = 25 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

// Record is one journal entry: a monotonically increasing sequence
// number (1-based, no gaps), the batch's idempotency ID, the opaque
// batch payload recovery replays, and the digest of the state the apply
// produced.
type Record struct {
	Seq     uint64
	ID      string
	Payload []byte
	Digest  uint64
}

// Reason classifies a journal or snapshot rejection, mirroring
// internal/rec's TraceReason discipline.
type Reason int

// Rejection reasons.
const (
	// BadMagic: the file does not start with the expected magic.
	BadMagic Reason = iota
	// BadFormat: the format version is newer than this build knows.
	BadFormat
	// BadChecksum: a frame's CRC32 does not match its payload.
	BadChecksum
	// Torn: the file ends mid-frame (crash during append).
	Torn
	// BadRecord: a frame payload is structurally malformed.
	BadRecord
	// SeqGap: the journal is missing records it should hold — damage
	// beyond a recoverable torn tail.
	SeqGap
)

// String renders the reason.
func (r Reason) String() string {
	switch r {
	case BadMagic:
		return "bad magic"
	case BadFormat:
		return "unsupported format"
	case BadChecksum:
		return "checksum mismatch"
	case Torn:
		return "torn record"
	case BadRecord:
		return "malformed record"
	case SeqGap:
		return "sequence gap"
	default:
		return fmt.Sprintf("reason(%d)", int(r))
	}
}

// Error is the typed rejection error for journal artifacts.
type Error struct {
	Reason Reason
	Detail string
	Err    error
}

// Error renders the failure.
func (e *Error) Error() string {
	msg := "wal: " + e.Reason.String()
	if e.Detail != "" {
		msg += ": " + e.Detail
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap exposes the underlying cause.
func (e *Error) Unwrap() error { return e.Err }

func walErr(reason Reason, format string, args ...any) *Error {
	return &Error{Reason: reason, Detail: fmt.Sprintf(format, args...)}
}

// ErrCrashed reports an operation on a log poisoned by a crash-point
// hook: the simulated process is dead, nothing further happens.
var ErrCrashed = fmt.Errorf("wal: crash point tripped; log poisoned")

// ErrPoisoned reports an operation on a log poisoned by an earlier I/O
// failure whose effect on the segment tail could not be undone. Nothing
// further is written: an append after an untrusted tail could bury an
// acked record behind garbage (silently discarded at recovery as a torn
// tail) or duplicate a sequence number (recovery fails with SeqGap).
// The only way forward is a restart through Recover, which truncates
// the tail back to the last valid record.
var ErrPoisoned = fmt.Errorf("wal: journal poisoned by earlier I/O failure; restart via Recover")

// Segment file layout:
//
//	segment := magic format record*
//	magic   := "JANUSWAL" (8 raw bytes)
//	record  := 'R' uvarint(len(payload)) payload crc32(payload, 4B LE)
//	payload := uvarint(seq) uvarint(len(id)) id
//	           uvarint(len(data)) data u64le(digest)
//
// Append-only: no footer (a footer would need rewriting per append).
// Integrity is per-record; completeness is the seq contiguity check at
// recovery.
const (
	segMagic   = "JANUSWAL"
	segFormat  = byte(1)
	recMarker  = byte('R')
	segHdrSize = len(segMagic) + 1
)

func segName(startSeq uint64) string { return fmt.Sprintf("wal-%016x.seg", startSeq) }
func snapName(seq uint64) string     { return fmt.Sprintf("snap-%016x.jsnap", seq) }
func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	if len(name) != len(prefix)+16+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return 0, false
	}
	var seq uint64
	if _, err := fmt.Sscanf(name[len(prefix):len(prefix)+16], "%016x", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// appendRecordFrame renders one record's on-disk frame.
func appendRecordFrame(dst []byte, r Record) []byte {
	var payload []byte
	payload = binary.AppendUvarint(payload, r.Seq)
	payload = binary.AppendUvarint(payload, uint64(len(r.ID)))
	payload = append(payload, r.ID...)
	payload = binary.AppendUvarint(payload, uint64(len(r.Payload)))
	payload = append(payload, r.Payload...)
	payload = binary.LittleEndian.AppendUint64(payload, r.Digest)

	dst = append(dst, recMarker)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
}

// Log is one tenant's open journal. All methods are safe for concurrent
// use; appends themselves are expected to be serialized by the caller's
// commit path (the serving layer's per-tenant gate) and are verified to
// carry contiguous sequence numbers.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File
	segStart uint64 // first seq of the active segment
	segBytes int64
	nextSeq  uint64
	dead     bool
	deadErr  error // why the log is dead; nil for crash hooks (ErrCrashed)
	appends  int64
	syncs    int64

	// fsMu serializes snapshot publication and truncation against each
	// other; the append path never takes it.
	fsMu sync.Mutex

	flushStop chan struct{}
	flushDone chan struct{}
}

// Dir returns the journal directory.
func (l *Log) Dir() string { return l.dir }

// NextSeq returns the sequence number the next Append must carry.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// Stats is a point-in-time view of journal activity.
type Stats struct {
	NextSeq  uint64 `json:"next_seq"`
	Appends  int64  `json:"appends"`
	Syncs    int64  `json:"syncs"`
	SegStart uint64 `json:"segment_start"`
	SegBytes int64  `json:"segment_bytes"`
}

// Stats snapshots the counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{NextSeq: l.nextSeq, Appends: l.appends, Syncs: l.syncs, SegStart: l.segStart, SegBytes: l.segBytes}
}

// trip consults the crash hook at a point; true means the log is now
// poisoned (the "process" died here). Caller holds whatever lock guards
// the fields it was touching; trip only flips dead under mu.
func (l *Log) trip(point string) bool {
	if l.opts.Hook == nil {
		return false
	}
	if !l.opts.Hook(point) {
		return false
	}
	l.mu.Lock()
	l.dead = true
	l.mu.Unlock()
	return true
}

// poisonLocked marks the log permanently dead with a cause: the
// segment tail can no longer be trusted, so every later operation
// fails with ErrPoisoned instead of writing after the damage. Caller
// holds mu.
func (l *Log) poisonLocked(cause error) {
	l.dead = true
	if l.deadErr == nil {
		l.deadErr = fmt.Errorf("%w: %w", ErrPoisoned, cause)
	}
}

// deadErrLocked reports why the log refuses to operate. Caller holds mu.
func (l *Log) deadErrLocked() error {
	if l.deadErr != nil {
		return l.deadErr
	}
	return ErrCrashed
}

// Append writes one record, durably per the policy, before returning.
// rec.Seq must be exactly NextSeq — the serving layer derives it from
// the applied-batch count its gate serializes.
//
// A failed append never leaves the journal in a state that could
// corrupt later acked records: a partial write is physically truncated
// back to the last good offset (the log stays usable), and if the
// truncate fails — or an fsync fails, after which the kernel may have
// silently dropped the dirty pages — the log is poisoned so nothing is
// ever written after an untrusted tail.
func (l *Log) Append(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dead {
		return l.deadErrLocked()
	}
	if rec.Seq != l.nextSeq {
		return walErr(SeqGap, "append seq %d, journal expects %d", rec.Seq, l.nextSeq)
	}
	if l.opts.Hook != nil && l.opts.Hook(PointAppendBefore) {
		l.dead = true
		return ErrCrashed
	}
	if l.segBytes >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	frame := appendRecordFrame(nil, rec)
	if _, err := l.f.Write(frame); err != nil {
		// A short write left garbage mid-segment. Cut the file back to
		// the known-good offset so the next append lands after valid
		// bytes; if even that fails the tail is untrusted — poison.
		werr := fmt.Errorf("wal: appending record %d: %w", rec.Seq, err)
		if terr := l.f.Truncate(l.segBytes); terr != nil {
			l.poisonLocked(fmt.Errorf("appending record %d: %v; truncating damaged tail: %w", rec.Seq, err, terr))
		}
		return werr
	}
	if l.opts.Policy == FsyncAlways {
		if err := l.f.Sync(); err != nil {
			// After a failed fsync the page cache is untrustworthy (the
			// kernel may have dropped the dirty pages and a later fsync
			// can falsely succeed), and the frame for this seq may or may
			// not be on disk. Poison: allowing another append could write
			// a duplicate seq (recovery fails SeqGap) or bury this frame.
			// The batch was never acked, so recovery deciding either way
			// is honest; a retry after restart gets a 409 iff it survived.
			l.poisonLocked(fmt.Errorf("syncing record %d: %w", rec.Seq, err))
			return fmt.Errorf("wal: syncing record %d: %w", rec.Seq, err)
		}
		l.syncs++
	}
	if l.opts.Hook != nil && l.opts.Hook(PointAppendAfter) {
		// The bytes are on disk; the caller never learns. Recovery must
		// surface this record and the client's retry must get the
		// original verdict.
		l.dead = true
		return ErrCrashed
	}
	l.nextSeq++
	l.segBytes += int64(len(frame))
	l.appends++
	return nil
}

// Sync flushes the active segment (the group-commit flusher's body;
// also useful before a planned handoff). A failed fsync poisons the
// log — the kernel may have dropped the dirty pages, so records
// written since the last good sync can no longer be promised durable
// and further appends would extend an untrusted tail.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dead {
		return l.deadErrLocked()
	}
	if l.f == nil {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		l.poisonLocked(fmt.Errorf("syncing segment: %w", err))
		return err
	}
	l.syncs++
	return nil
}

// rotateLocked seals the active segment and starts a new one at nextSeq.
// l.f may be nil when a previous rotation sealed the old segment but
// failed to open its successor; the retry goes straight to opening.
func (l *Log) rotateLocked() error {
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			l.poisonLocked(fmt.Errorf("syncing sealed segment: %w", err))
			return fmt.Errorf("wal: syncing sealed segment: %w", err)
		}
		if err := l.f.Close(); err != nil {
			l.f = nil
			l.poisonLocked(fmt.Errorf("closing sealed segment: %w", err))
			return fmt.Errorf("wal: closing sealed segment: %w", err)
		}
		l.f = nil
	}
	return l.openSegmentLocked(l.nextSeq)
}

// openSegmentLocked creates the segment starting at startSeq and writes
// its header. The journal directory is fsynced so the new segment's
// directory entry survives a machine crash — without it, record fsyncs
// reach a file no directory mentions, and recovery would silently
// resume before every batch the segment holds.
func (l *Log) openSegmentLocked(startSeq uint64) error {
	path := filepath.Join(l.dir, segName(startSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	hdr := append([]byte(segMagic), segFormat)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	if l.opts.Policy != FsyncNever {
		fsio.SyncDir(l.dir)
	}
	l.f = f
	l.segStart = startSeq
	l.segBytes = int64(segHdrSize)
	return nil
}

// Close stops the group flusher and closes the active segment. A final
// sync makes a planned shutdown durable under every policy.
func (l *Log) Close() error {
	if l.flushStop != nil {
		close(l.flushStop)
		<-l.flushDone
		l.flushStop = nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	var err error
	if !l.dead {
		err = l.f.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// startFlusher runs the group-commit fsync loop.
func (l *Log) startFlusher() {
	l.flushStop = make(chan struct{})
	l.flushDone = make(chan struct{})
	go func() {
		defer close(l.flushDone)
		t := time.NewTicker(l.opts.GroupInterval)
		defer t.Stop()
		for {
			select {
			case <-l.flushStop:
				return
			case <-t.C:
				l.Sync() //nolint:errcheck // best-effort cadence; Close does a final sync
			}
		}
	}()
}
