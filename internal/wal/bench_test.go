package wal

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkJournalAppend measures the per-batch durability tax the
// serving layer pays before acknowledging, across the three fsync
// policies. The payload approximates a small wire batch.
func BenchmarkJournalAppend(b *testing.B) {
	payload := []byte(`{"id":"bench","tasks":[{"op":"set","loc":"x","val":1},{"op":"set","loc":"y","val":2}]}`)
	for _, pol := range []Policy{FsyncNever, FsyncGroup, FsyncAlways} {
		b.Run(pol.String(), func(b *testing.B) {
			l, _, err := Recover(b.TempDir(), Options{Policy: pol, GroupInterval: 5 * time.Millisecond})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := Record{Seq: uint64(i + 1), ID: fmt.Sprintf("b-%d", i), Payload: payload, Digest: uint64(i)}
				if err := l.Append(rec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
