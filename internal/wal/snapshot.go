package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/fsio"
)

// Snapshot is a point-in-time image of a tenant at journal sequence Seq:
// the encoded shared state (internal/rec's inline state codec), its
// digest, and the exactly-once seen index — the batch IDs inside the
// serving layer's dedup retention window with the sequence and digest
// each produced, so a restart can answer duplicate submissions with the
// original verdict even for batches whose journal records have been
// truncated away.
type Snapshot struct {
	// Seq is the journal sequence the snapshot covers: the state image
	// reflects records 1..Seq.
	Seq uint64
	// Digest is rec.Digest of the snapshotted state.
	Digest uint64
	// State is the rec.EncodeState rendering of the shared state.
	State []byte
	// Seen is the exactly-once index, sorted by Seq ascending.
	Seen []SeenEntry
}

// SeenEntry records one applied batch for duplicate detection.
type SeenEntry struct {
	ID     string
	Seq    uint64
	Digest uint64
}

// Snapshot file layout:
//
//	file    := magic format frame
//	magic   := "JANUSSNP" (8 raw bytes)
//	frame   := uvarint(len(payload)) payload crc32(payload, 4B LE)
//	payload := uvarint(seq) u64le(digest)
//	           uvarint(len(state)) state
//	           uvarint(len(seen)) seen*
//	seen    := uvarint(len(id)) id uvarint(seq) u64le(digest)
//
// One frame, one CRC: a snapshot is valid whole or rejected whole.
const (
	snapMagic  = "JANUSSNP"
	snapFormat = byte(1)
)

func encodeSnapshot(s Snapshot) []byte {
	var payload []byte
	payload = binary.AppendUvarint(payload, s.Seq)
	payload = binary.LittleEndian.AppendUint64(payload, s.Digest)
	payload = binary.AppendUvarint(payload, uint64(len(s.State)))
	payload = append(payload, s.State...)
	payload = binary.AppendUvarint(payload, uint64(len(s.Seen)))
	for _, e := range s.Seen {
		payload = binary.AppendUvarint(payload, uint64(len(e.ID)))
		payload = append(payload, e.ID...)
		payload = binary.AppendUvarint(payload, e.Seq)
		payload = binary.LittleEndian.AppendUint64(payload, e.Digest)
	}

	out := append([]byte(snapMagic), snapFormat)
	out = binary.AppendUvarint(out, uint64(len(payload)))
	out = append(out, payload...)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
}

// snapDec is a bounds-checked cursor over a snapshot payload; any
// overrun latches a typed error, mirroring internal/rec's decoder.
type snapDec struct {
	buf []byte
	pos int
	err error
}

func (d *snapDec) fail(reason Reason, format string, args ...any) {
	if d.err == nil {
		d.err = walErr(reason, format, args...)
	}
}

func (d *snapDec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		d.fail(BadRecord, "truncated uvarint at offset %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *snapDec) bytes(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)-d.pos) {
		d.fail(BadRecord, "field of %d bytes exceeds payload at offset %d", n, d.pos)
		return nil
	}
	b := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return b
}

func (d *snapDec) u64le() uint64 {
	b := d.bytes(8)
	if d.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// DecodeSnapshot parses a snapshot file's bytes, verifying magic,
// format, and CRC. Malformed input yields a typed *Error, never a
// panic.
func DecodeSnapshot(buf []byte) (Snapshot, error) {
	var s Snapshot
	if len(buf) < len(snapMagic)+1 {
		return s, walErr(Torn, "snapshot of %d bytes is shorter than its header", len(buf))
	}
	if string(buf[:len(snapMagic)]) != snapMagic {
		return s, walErr(BadMagic, "not a snapshot file")
	}
	if buf[len(snapMagic)] != snapFormat {
		return s, walErr(BadFormat, "snapshot format %d, this build reads %d", buf[len(snapMagic)], snapFormat)
	}
	rest := buf[len(snapMagic)+1:]
	plen, n := binary.Uvarint(rest)
	if n <= 0 {
		return s, walErr(Torn, "snapshot truncated in frame length")
	}
	rest = rest[n:]
	if plen > uint64(len(rest)) || uint64(len(rest))-plen < 4 {
		return s, walErr(Torn, "snapshot frame of %d bytes exceeds file", plen)
	}
	payload := rest[:plen]
	sum := binary.LittleEndian.Uint32(rest[plen : plen+4])
	if crc32.ChecksumIEEE(payload) != sum {
		return s, walErr(BadChecksum, "snapshot frame CRC mismatch")
	}
	if uint64(len(rest)) != plen+4 {
		return s, walErr(BadRecord, "%d trailing bytes after snapshot frame", uint64(len(rest))-plen-4)
	}

	d := &snapDec{buf: payload}
	s.Seq = d.uvarint()
	s.Digest = d.u64le()
	s.State = append([]byte(nil), d.bytes(d.uvarint())...)
	nSeen := d.uvarint()
	if d.err == nil && nSeen > uint64(len(payload)) {
		// Each entry costs at least a few bytes; a count beyond the
		// payload length is structurally impossible.
		d.fail(BadRecord, "seen-index count %d exceeds payload", nSeen)
	}
	for i := uint64(0); i < nSeen && d.err == nil; i++ {
		var e SeenEntry
		e.ID = string(d.bytes(d.uvarint()))
		e.Seq = d.uvarint()
		e.Digest = d.u64le()
		s.Seen = append(s.Seen, e)
	}
	if d.err != nil {
		return Snapshot{}, d.err
	}
	if d.pos != len(payload) {
		return Snapshot{}, walErr(BadRecord, "%d trailing bytes inside snapshot payload", len(payload)-d.pos)
	}
	return s, nil
}

// WriteSnapshot publishes a snapshot atomically and then truncates every
// journal segment the snapshot fully covers, plus older snapshots. The
// append path keeps running concurrently: snapshot publication only
// touches sealed segments (a segment is removed only if the NEXT
// segment's start seq is ≤ snap.Seq+1, so the active segment and any
// segment holding uncovered records survive).
func (l *Log) WriteSnapshot(snap Snapshot) error {
	l.fsMu.Lock()
	defer l.fsMu.Unlock()
	l.mu.Lock()
	var dead error
	if l.dead {
		dead = l.deadErrLocked()
	}
	l.mu.Unlock()
	if dead != nil {
		return dead
	}

	buf := encodeSnapshot(snap)
	path := filepath.Join(l.dir, snapName(snap.Seq))
	a, err := fsio.NewAtomic(path)
	if err != nil {
		return err
	}
	defer a.Abort()
	half := len(buf) / 2
	if _, err := a.Write(buf[:half]); err != nil {
		return fmt.Errorf("wal: writing snapshot: %w", err)
	}
	if l.trip(PointSnapshotMid) {
		return ErrCrashed
	}
	if _, err := a.Write(buf[half:]); err != nil {
		return fmt.Errorf("wal: writing snapshot: %w", err)
	}
	if l.trip(PointSnapshotRenameBefore) {
		return ErrCrashed
	}
	if err := a.Publish(); err != nil {
		return err
	}
	if l.trip(PointSnapshotRenameAfter) {
		return ErrCrashed
	}
	return l.truncateCoveredLocked(snap.Seq)
}

// truncateCoveredLocked removes snapshots older than snapSeq and journal
// segments whose every record is ≤ snapSeq. Caller holds fsMu.
func (l *Log) truncateCoveredLocked(snapSeq uint64) error {
	if l.trip(PointTruncateBefore) {
		return ErrCrashed
	}
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: scanning for truncation: %w", err)
	}
	var segs []uint64
	for _, ent := range entries {
		if seq, ok := parseSeqName(ent.Name(), "snap-", ".jsnap"); ok && seq < snapSeq {
			os.Remove(filepath.Join(l.dir, snapName(seq)))
			continue
		}
		if seq, ok := parseSeqName(ent.Name(), "wal-", ".seg"); ok {
			segs = append(segs, seq)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	l.mu.Lock()
	active := l.segStart
	l.mu.Unlock()
	for i, start := range segs {
		// A segment's records run [start, nextStart); it is fully covered
		// only if the following segment begins at or before snapSeq+1.
		// The active segment is never removed.
		if start == active || i+1 >= len(segs) || segs[i+1] > snapSeq+1 {
			continue
		}
		os.Remove(filepath.Join(l.dir, segName(start)))
	}
	return nil
}
