package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testOpts() Options {
	return Options{Policy: FsyncNever, SegmentBytes: 1 << 20}
}

func mustRecover(t *testing.T, dir string, opts Options) (*Log, *Recovered) {
	t.Helper()
	l, rcv, err := Recover(dir, opts)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l, rcv
}

func appendN(t *testing.T, l *Log, from, to uint64) {
	t.Helper()
	for seq := from; seq <= to; seq++ {
		rec := Record{Seq: seq, ID: fmt.Sprintf("batch-%d", seq),
			Payload: []byte(fmt.Sprintf(`{"id":"batch-%d"}`, seq)), Digest: seq * 0x9e3779b9}
		if err := l.Append(rec); err != nil {
			t.Fatalf("Append seq %d: %v", seq, err)
		}
	}
}

func checkRecords(t *testing.T, recs []Record, from, to uint64) {
	t.Helper()
	if want := int(to - from + 1); len(recs) != want {
		t.Fatalf("got %d records, want %d (%d..%d)", len(recs), want, from, to)
	}
	for i, r := range recs {
		seq := from + uint64(i)
		if r.Seq != seq || r.ID != fmt.Sprintf("batch-%d", seq) || r.Digest != seq*0x9e3779b9 {
			t.Fatalf("record %d = %+v, want seq %d", i, r, seq)
		}
		if want := fmt.Sprintf(`{"id":"batch-%d"}`, seq); string(r.Payload) != want {
			t.Fatalf("record %d payload %q, want %q", i, r.Payload, want)
		}
	}
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	for _, pol := range []Policy{FsyncNever, FsyncGroup, FsyncAlways} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			opts := Options{Policy: pol, GroupInterval: time.Millisecond}
			l, rcv := mustRecover(t, dir, opts)
			if rcv.Snapshot != nil || len(rcv.Records) != 0 || rcv.Truncations != 0 {
				t.Fatalf("fresh dir recovered %+v", rcv)
			}
			appendN(t, l, 1, 25)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			l2, rcv2 := mustRecover(t, dir, opts)
			checkRecords(t, rcv2.Records, 1, 25)
			if rcv2.Truncations != 0 {
				t.Fatalf("clean journal reported %d truncations", rcv2.Truncations)
			}
			if got := l2.NextSeq(); got != 26 {
				t.Fatalf("NextSeq %d after recovery, want 26", got)
			}
			// Appends resume in the reopened segment.
			appendN(t, l2, 26, 30)
			l2.Close()
			_, rcv3 := mustRecover(t, dir, opts)
			checkRecords(t, rcv3.Records, 1, 30)
		})
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustRecover(t, dir, Options{Policy: FsyncNever, SegmentBytes: 256})
	appendN(t, l, 1, 60)
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 3 {
		t.Fatalf("expected rotation into >=3 segments, got %d", len(segs))
	}
	_, rcv := mustRecover(t, dir, testOpts())
	checkRecords(t, rcv.Records, 1, 60)
}

func TestAppendSeqMismatch(t *testing.T) {
	l, _ := mustRecover(t, t.TempDir(), testOpts())
	appendN(t, l, 1, 3)
	err := l.Append(Record{Seq: 7, ID: "x"})
	var we *Error
	if !errors.As(err, &we) || we.Reason != SeqGap {
		t.Fatalf("out-of-order append: %v", err)
	}
	// The journal is still usable at the correct seq.
	appendN(t, l, 4, 4)
}

func TestSnapshotCoversAndTruncates(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustRecover(t, dir, Options{Policy: FsyncNever, SegmentBytes: 256})
	appendN(t, l, 1, 60)
	before, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	snap := Snapshot{Seq: 40, Digest: 0xfeed, State: []byte("state-bytes"),
		Seen: []SeenEntry{{ID: "batch-1", Seq: 1, Digest: 0x9e3779b9}}}
	if err := l.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	// Fully covered segments are gone; segments holding any record past
	// seq 40 (and the active one) survive — the earliest survivor must
	// still contain record 41.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) == 0 {
		t.Fatal("all segments truncated, active segment must survive")
	}
	if len(segs) >= len(before) {
		t.Fatalf("no covered segments truncated: %d before, %d after", len(before), len(segs))
	}
	var firstStart, secondStart uint64
	fmt.Sscanf(filepath.Base(segs[0]), "wal-%016x.seg", &firstStart)
	if firstStart > 41 {
		t.Fatalf("earliest surviving segment starts at %d, record 41 lost", firstStart)
	}
	if len(segs) > 1 {
		fmt.Sscanf(filepath.Base(segs[1]), "wal-%016x.seg", &secondStart)
		if secondStart <= 41 {
			t.Fatalf("segment %s is fully covered but survived", segs[0])
		}
	}
	appendN(t, l, 61, 70)
	l.Close()

	_, rcv := mustRecover(t, dir, testOpts())
	if rcv.Snapshot == nil || rcv.Snapshot.Seq != 40 || rcv.Snapshot.Digest != 0xfeed {
		t.Fatalf("snapshot not recovered: %+v", rcv.Snapshot)
	}
	if string(rcv.Snapshot.State) != "state-bytes" {
		t.Fatalf("snapshot state %q", rcv.Snapshot.State)
	}
	if len(rcv.Snapshot.Seen) != 1 || rcv.Snapshot.Seen[0].ID != "batch-1" {
		t.Fatalf("seen index %+v", rcv.Snapshot.Seen)
	}
	checkRecords(t, rcv.Records, 41, 70)

	// A second snapshot removes the first.
	l2, _ := mustRecover(t, dir, testOpts())
	if err := l2.WriteSnapshot(Snapshot{Seq: 70, Digest: 1}); err != nil {
		t.Fatal(err)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.jsnap"))
	if len(snaps) != 1 || !strings.Contains(snaps[0], snapName(70)) {
		t.Fatalf("old snapshot not truncated: %v", snaps)
	}
}

func TestSnapshotOnlyRecovery(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustRecover(t, dir, testOpts())
	appendN(t, l, 1, 5)
	if err := l.WriteSnapshot(Snapshot{Seq: 5, Digest: 0xabc}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Remove every segment: snapshot alone must carry recovery.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	for _, s := range segs {
		os.Remove(s)
	}
	l2, rcv := mustRecover(t, dir, testOpts())
	if rcv.Snapshot == nil || rcv.Snapshot.Seq != 5 || len(rcv.Records) != 0 {
		t.Fatalf("snapshot-only recovery: %+v", rcv)
	}
	if l2.NextSeq() != 6 {
		t.Fatalf("NextSeq %d, want 6", l2.NextSeq())
	}
	appendN(t, l2, 6, 8)
	l2.Close()
	_, rcv2 := mustRecover(t, dir, testOpts())
	checkRecords(t, rcv2.Records, 6, 8)
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustRecover(t, dir, testOpts())
	appendN(t, l, 1, 10)
	l.Close()
	seg := filepath.Join(dir, segName(1))
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Tear off the last few bytes: the final record is now incomplete.
	if err := os.Truncate(seg, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	l2, rcv := mustRecover(t, dir, testOpts())
	checkRecords(t, rcv.Records, 1, 9)
	if rcv.Truncations != 1 {
		t.Fatalf("Truncations = %d, want 1 (%v)", rcv.Truncations, rcv.TruncateDetail)
	}
	// The cut is physical: a re-recovery is clean, and the next append
	// reuses seq 10.
	if l2.NextSeq() != 10 {
		t.Fatalf("NextSeq %d, want 10", l2.NextSeq())
	}
	appendN(t, l2, 10, 10)
	l2.Close()
	_, rcv2 := mustRecover(t, dir, testOpts())
	if rcv2.Truncations != 0 {
		t.Fatalf("repair was not physical: %+v", rcv2.TruncateDetail)
	}
	checkRecords(t, rcv2.Records, 1, 10)
}

func TestCorruptRecordMidSegmentDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustRecover(t, dir, Options{Policy: FsyncNever, SegmentBytes: 256})
	appendN(t, l, 1, 40)
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 3 {
		t.Fatalf("need >=3 segments, got %d", len(segs))
	}
	// Flip a byte inside the second segment's records.
	buf, err := os.ReadFile(segs[1])
	if err != nil {
		t.Fatal(err)
	}
	buf[segHdrSize+4] ^= 0xff
	if err := os.WriteFile(segs[1], buf, 0o644); err != nil {
		t.Fatal(err)
	}
	var firstBad uint64
	fmt.Sscanf(filepath.Base(segs[1]), "wal-%016x.seg", &firstBad)

	_, rcv := mustRecover(t, dir, testOpts())
	// Everything before the corrupt record survives; everything after —
	// including whole later segments — is cut, and every cut is counted.
	if len(rcv.Records) == 0 || rcv.Records[len(rcv.Records)-1].Seq >= firstBad {
		t.Fatalf("records not cut at corruption: last=%d firstBad=%d",
			rcv.Records[len(rcv.Records)-1].Seq, firstBad)
	}
	checkRecords(t, rcv.Records, 1, rcv.Records[len(rcv.Records)-1].Seq)
	if rcv.Truncations < 2 { // the damaged segment + at least one stranded one
		t.Fatalf("Truncations = %d, want >=2 (%v)", rcv.Truncations, rcv.TruncateDetail)
	}
	if left, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg")); len(left) >= len(segs) {
		t.Fatalf("stranded segments not removed: %v", left)
	}
}

func TestBadSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustRecover(t, dir, testOpts())
	appendN(t, l, 1, 10)
	if err := l.WriteSnapshot(Snapshot{Seq: 4, Digest: 0x11, State: []byte("old")}); err != nil {
		t.Fatal(err)
	}
	// Hand-plant a newer snapshot and corrupt it.
	good := encodeSnapshot(Snapshot{Seq: 8, Digest: 0x22, State: []byte("new")})
	good[len(good)-1] ^= 0xff
	if err := os.WriteFile(filepath.Join(dir, snapName(8)), good, 0o644); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, rcv := mustRecover(t, dir, testOpts())
	if rcv.Snapshot == nil || rcv.Snapshot.Seq != 4 {
		t.Fatalf("did not fall back to older snapshot: %+v", rcv.Snapshot)
	}
	if rcv.BadSnapshots != 1 {
		t.Fatalf("BadSnapshots = %d, want 1", rcv.BadSnapshots)
	}
	checkRecords(t, rcv.Records, 5, 10)
}

func TestSeqGapIsFatal(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustRecover(t, dir, Options{Policy: FsyncNever, SegmentBytes: 256})
	appendN(t, l, 1, 40)
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 3 {
		t.Fatalf("need >=3 segments, got %d", len(segs))
	}
	// Delete a middle segment: the journal now has a hole no truncation
	// can repair honestly.
	os.Remove(segs[1])
	_, _, err := Recover(dir, testOpts())
	var we *Error
	if !errors.As(err, &we) || we.Reason != SeqGap {
		t.Fatalf("gap recovery: %v", err)
	}
}

func TestSnapshotAheadOfJournalGapIsFatal(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustRecover(t, dir, testOpts())
	appendN(t, l, 1, 3)
	l.Close()
	// A snapshot claiming seq 10 with a journal ending at 3 means records
	// 4..10 are gone — refuse.
	buf := encodeSnapshot(Snapshot{Seq: 10, Digest: 1})
	if err := os.WriteFile(filepath.Join(dir, snapName(10)), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	// Journal records 1..3 are all covered by the snapshot, so this is
	// actually consistent (records empty, resume at 11) — the fatal case
	// is a snapshot BEHIND a journal that starts later. Build that:
	dir2 := t.TempDir()
	l2, _ := mustRecover(t, dir2, testOpts())
	appendN(t, l2, 1, 3)
	l2.Close()
	// Rename the segment so it claims to start at seq 5.
	if err := os.Rename(filepath.Join(dir2, segName(1)), filepath.Join(dir2, segName(5))); err != nil {
		t.Fatal(err)
	}
	_, _, err := Recover(dir2, testOpts())
	var we *Error
	if !errors.As(err, &we) || we.Reason != SeqGap {
		t.Fatalf("mismatched segment name: %v", err)
	}
}

func TestStrayFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustRecover(t, dir, testOpts())
	appendN(t, l, 1, 5)
	l.Close()
	// Crash-mid-snapshot leftovers and unrelated files must not confuse
	// recovery.
	os.WriteFile(filepath.Join(dir, ".snap-0000000000000005.jsnap.tmp123"), []byte("partial"), 0o600)
	os.WriteFile(filepath.Join(dir, "README"), []byte("hi"), 0o644)
	_, rcv := mustRecover(t, dir, testOpts())
	checkRecords(t, rcv.Records, 1, 5)
	if rcv.BadSnapshots != 0 || rcv.Truncations != 0 {
		t.Fatalf("stray files counted as damage: %+v", rcv)
	}
	// Crash leftovers are deleted (they would otherwise accumulate
	// across crash/restart cycles); unrelated files are left alone.
	if _, err := os.Stat(filepath.Join(dir, ".snap-0000000000000005.jsnap.tmp123")); !os.IsNotExist(err) {
		t.Fatalf("stray fsio temp survived recovery: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "README")); err != nil {
		t.Fatalf("unrelated file removed by recovery: %v", err)
	}
}

// TestAppendIOFailurePoisons forces the append path's I/O to fail (the
// segment file handle is closed out from under the log, so the write
// and the repair truncate both error) and asserts the log poisons
// itself instead of writing after an untrusted tail — and that a
// restart through Recover serves the intact prefix.
func TestAppendIOFailurePoisons(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustRecover(t, dir, testOpts())
	appendN(t, l, 1, 3)
	l.mu.Lock()
	l.f.Close() // simulate the fd going bad mid-life
	l.mu.Unlock()

	err := l.Append(Record{Seq: 4, ID: "doomed", Payload: []byte("{}")})
	if err == nil {
		t.Fatal("append on closed segment succeeded")
	}
	if errors.Is(err, ErrPoisoned) {
		t.Fatalf("first failure already reported as poison, want the I/O error: %v", err)
	}
	// Every later operation fails with the poisoned verdict: no second
	// frame can land after garbage or duplicate seq 4.
	if err := l.Append(Record{Seq: 4, ID: "retry", Payload: []byte("{}")}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append on poisoned log: %v, want ErrPoisoned", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("sync on poisoned log: %v, want ErrPoisoned", err)
	}
	if err := l.WriteSnapshot(Snapshot{Seq: 3}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("snapshot on poisoned log: %v, want ErrPoisoned", err)
	}
	if got := l.NextSeq(); got != 4 {
		t.Fatalf("NextSeq %d after failed append, want 4 (nothing acked)", got)
	}

	// The restart path: the durable prefix is intact and appendable.
	l2, rcv := mustRecover(t, dir, testOpts())
	checkRecords(t, rcv.Records, 1, 3)
	appendN(t, l2, 4, 6)
}

// TestSyncFailurePoisons drives the group-commit Sync path into a
// failure and asserts the poison carries through (a failed fsync means
// durability can no longer be promised for anything unsynced).
func TestSyncFailurePoisons(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustRecover(t, dir, testOpts())
	appendN(t, l, 1, 2)
	l.mu.Lock()
	l.f.Close()
	l.mu.Unlock()
	if err := l.Sync(); err == nil {
		t.Fatal("sync on closed segment succeeded")
	}
	if err := l.Append(Record{Seq: 3, ID: "after", Payload: []byte("{}")}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after failed sync: %v, want ErrPoisoned", err)
	}
}

func TestCrashHookPoisonsLog(t *testing.T) {
	t.Run("append.before", func(t *testing.T) {
		dir := t.TempDir()
		die := false
		opts := Options{Policy: FsyncAlways, Hook: func(p string) bool { return die && p == PointAppendBefore }}
		l, _ := mustRecover(t, dir, opts)
		appendN(t, l, 1, 3)
		die = true
		if err := l.Append(Record{Seq: 4, ID: "doomed"}); !errors.Is(err, ErrCrashed) {
			t.Fatalf("append at crash point: %v", err)
		}
		// Poisoned: nothing works anymore, no I/O happens.
		if err := l.Append(Record{Seq: 4, ID: "after"}); !errors.Is(err, ErrCrashed) {
			t.Fatalf("append after death: %v", err)
		}
		if err := l.Sync(); !errors.Is(err, ErrCrashed) {
			t.Fatalf("sync after death: %v", err)
		}
		if err := l.WriteSnapshot(Snapshot{Seq: 3}); !errors.Is(err, ErrCrashed) {
			t.Fatalf("snapshot after death: %v", err)
		}
		l.Close()
		// Dying before the write means seq 4 was never persisted.
		_, rcv := mustRecover(t, dir, Options{Policy: FsyncNever})
		checkRecords(t, rcv.Records, 1, 3)
	})
	t.Run("append.after", func(t *testing.T) {
		dir := t.TempDir()
		die := false
		opts := Options{Policy: FsyncAlways, Hook: func(p string) bool { return die && p == PointAppendAfter }}
		l, _ := mustRecover(t, dir, opts)
		appendN(t, l, 1, 3)
		die = true
		err := l.Append(Record{Seq: 4, ID: "batch-4",
			Payload: []byte(`{"id":"batch-4"}`), Digest: 4 * 0x9e3779b9})
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("append at crash point: %v", err)
		}
		l.Close()
		// Dying after the write: the record IS durable even though the
		// caller saw a crash — recovery must surface it.
		_, rcv := mustRecover(t, dir, Options{Policy: FsyncNever})
		checkRecords(t, rcv.Records, 1, 4)
	})
	t.Run("snapshot.mid", func(t *testing.T) {
		dir := t.TempDir()
		die := false
		opts := Options{Policy: FsyncNever, Hook: func(p string) bool { return die && p == PointSnapshotMid }}
		l, _ := mustRecover(t, dir, opts)
		appendN(t, l, 1, 5)
		die = true
		if err := l.WriteSnapshot(Snapshot{Seq: 5, Digest: 9, State: []byte("s")}); !errors.Is(err, ErrCrashed) {
			t.Fatalf("snapshot at crash point: %v", err)
		}
		l.Close()
		// The half-written temp never renamed: no snapshot, journal whole.
		_, rcv := mustRecover(t, dir, Options{Policy: FsyncNever})
		if rcv.Snapshot != nil {
			t.Fatalf("partial snapshot visible: %+v", rcv.Snapshot)
		}
		checkRecords(t, rcv.Records, 1, 5)
	})
	t.Run("rename.after", func(t *testing.T) {
		dir := t.TempDir()
		die := false
		opts := Options{Policy: FsyncNever, Hook: func(p string) bool { return die && p == PointSnapshotRenameAfter }}
		l, _ := mustRecover(t, dir, opts)
		appendN(t, l, 1, 5)
		die = true
		if err := l.WriteSnapshot(Snapshot{Seq: 5, Digest: 9}); !errors.Is(err, ErrCrashed) {
			t.Fatalf("snapshot at crash point: %v", err)
		}
		l.Close()
		// Published but not truncated: snapshot wins, stale journal
		// records are tolerated.
		_, rcv := mustRecover(t, dir, Options{Policy: FsyncNever})
		if rcv.Snapshot == nil || rcv.Snapshot.Seq != 5 {
			t.Fatalf("published snapshot lost: %+v", rcv.Snapshot)
		}
		if len(rcv.Records) != 0 {
			t.Fatalf("covered records resurfaced: %d", len(rcv.Records))
		}
	})
}

// TestSnapshotDecodeRejectsCorruption: every truncation and every
// single-byte flip of a valid snapshot must yield a typed *Error or a
// valid decode — never a panic.
func TestSnapshotDecodeRejectsCorruption(t *testing.T) {
	buf := encodeSnapshot(Snapshot{Seq: 12, Digest: 0xdead, State: []byte("some state bytes"),
		Seen: []SeenEntry{{ID: "a", Seq: 1, Digest: 2}, {ID: "bb", Seq: 2, Digest: 3}}})
	check := func(mutated []byte) {
		t.Helper()
		_, err := DecodeSnapshot(mutated)
		if err == nil {
			return
		}
		var we *Error
		if !errors.As(err, &we) {
			t.Fatalf("untyped decode error: %v", err)
		}
	}
	for cut := 0; cut < len(buf); cut++ {
		check(buf[:cut])
	}
	for i := 0; i < len(buf); i++ {
		mutated := append([]byte(nil), buf...)
		mutated[i] ^= 0xff
		check(mutated)
	}
	if _, err := DecodeSnapshot(append(append([]byte(nil), buf...), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
	}{{"always", FsyncAlways}, {"", FsyncAlways}, {"group", FsyncGroup}, {"never", FsyncNever}} {
		got, err := ParsePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestGroupFlusherSyncs(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustRecover(t, dir, Options{Policy: FsyncGroup, GroupInterval: time.Millisecond})
	appendN(t, l, 1, 3)
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Syncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("group flusher never synced")
		}
		time.Sleep(time.Millisecond)
	}
	l.Close()
}
