package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/fsio"
)

// Recovered reports what Recover found and did. The serving layer
// rebuilds tenant state from it: decode Snapshot.State (when present),
// replay Records through the sequential oracle verifying each digest,
// and rebuild the exactly-once seen index from Snapshot.Seen + Records.
type Recovered struct {
	// Snapshot is the newest valid snapshot, nil when none exists.
	Snapshot *Snapshot
	// Records are the journal records after the snapshot (seq >
	// Snapshot.Seq, or all records with no snapshot), contiguous and
	// ascending.
	Records []Record
	// Truncations counts repair actions taken: torn tails and corrupt
	// records cut at the last valid prefix, dangling later segments
	// removed. Zero on a clean boot; nonzero is operator-visible (the
	// journal lost something or a crash interrupted an append).
	Truncations int
	// TruncateDetail describes each repair, for logs.
	TruncateDetail []string
	// BadSnapshots counts snapshot files that failed validation and were
	// skipped in favor of an older one.
	BadSnapshots int
}

// scanSegment reads one segment file. It returns the records of the
// valid prefix, the byte length of that prefix, and a non-nil *Error
// describing the first invalid frame (nil when the whole file is
// valid). It never panics on crafted input.
func scanSegment(path string) (recs []Record, validLen int64, serr *Error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, &Error{Reason: BadRecord, Detail: "reading segment", Err: err}
	}
	if len(buf) < segHdrSize {
		return nil, 0, walErr(Torn, "segment of %d bytes is shorter than its header", len(buf))
	}
	if string(buf[:len(segMagic)]) != segMagic {
		return nil, 0, walErr(BadMagic, "not a journal segment")
	}
	if buf[len(segMagic)] != segFormat {
		return nil, 0, walErr(BadFormat, "segment format %d, this build reads %d", buf[len(segMagic)], segFormat)
	}
	pos := segHdrSize
	for pos < len(buf) {
		rec, next, rerr := decodeRecordFrame(buf, pos)
		if rerr != nil {
			return recs, int64(pos), rerr
		}
		recs = append(recs, rec)
		pos = next
	}
	return recs, int64(pos), nil
}

// decodeRecordFrame parses one record frame at off, returning the
// record and the offset past it.
func decodeRecordFrame(buf []byte, off int) (Record, int, *Error) {
	var rec Record
	if buf[off] != recMarker {
		return rec, 0, walErr(BadRecord, "unknown frame marker 0x%02x at offset %d", buf[off], off)
	}
	plen, n := binary.Uvarint(buf[off+1:])
	if n <= 0 {
		return rec, 0, walErr(Torn, "record truncated in frame length at offset %d", off)
	}
	body := off + 1 + n
	if plen > uint64(len(buf)-body) || uint64(len(buf)-body)-plen < 4 {
		return rec, 0, walErr(Torn, "record of %d bytes runs past end of segment at offset %d", plen, off)
	}
	payload := buf[body : body+int(plen)]
	sum := binary.LittleEndian.Uint32(buf[body+int(plen):])
	if crc32.ChecksumIEEE(payload) != sum {
		return rec, 0, walErr(BadChecksum, "record CRC mismatch at offset %d", off)
	}

	d := &snapDec{buf: payload}
	rec.Seq = d.uvarint()
	rec.ID = string(d.bytes(d.uvarint()))
	rec.Payload = append([]byte(nil), d.bytes(d.uvarint())...)
	rec.Digest = d.u64le()
	if d.err == nil && d.pos != len(payload) {
		d.fail(BadRecord, "%d trailing bytes inside record payload", len(payload)-d.pos)
	}
	if d.err != nil {
		var te *Error
		if e, ok := d.err.(*Error); ok {
			te = e
		} else {
			te = &Error{Reason: BadRecord, Err: d.err}
		}
		return rec, 0, te
	}
	return rec, body + int(plen) + 4, nil
}

// Recover scans dir (creating it if absent), selects the newest valid
// snapshot, reads the journal suffix it does not cover, repairs torn or
// corrupt tails by truncating at the last valid record (removing any
// segments stranded after the cut), verifies the surviving records form
// a contiguous sequence, and reopens the journal for appending.
//
// Unrepairable damage — a missing span of records (SeqGap), an
// unreadable directory — fails with a typed error and no open log:
// recovery refuses to silently serve a tenant whose history has holes.
func Recover(dir string, opts Options) (*Log, *Recovered, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: creating journal dir: %w", err)
	}
	if opts.Policy != FsyncNever {
		// Make the journal directory itself durable: record fsyncs are
		// useless if a machine crash forgets the directory ever existed.
		fsio.SyncDir(filepath.Dir(dir))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: scanning journal dir: %w", err)
	}
	var snapSeqs, segStarts []uint64
	for _, ent := range entries {
		// Stray fsio temps (crash mid-snapshot, before the rename) are
		// never valid artifacts — they are invisible until renamed — so
		// recovery deletes them rather than letting them accumulate
		// across crash/restart cycles. Other unknown names are ignored.
		if name := ent.Name(); len(name) > 0 && name[0] == '.' && strings.Contains(name, ".tmp") {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if seq, ok := parseSeqName(ent.Name(), "snap-", ".jsnap"); ok {
			snapSeqs = append(snapSeqs, seq)
		} else if seq, ok := parseSeqName(ent.Name(), "wal-", ".seg"); ok {
			segStarts = append(segStarts, seq)
		}
	}
	sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] > snapSeqs[j] })
	sort.Slice(segStarts, func(i, j int) bool { return segStarts[i] < segStarts[j] })

	rcv := &Recovered{}
	for _, seq := range snapSeqs {
		buf, rerr := os.ReadFile(filepath.Join(dir, snapName(seq)))
		if rerr == nil {
			if snap, derr := DecodeSnapshot(buf); derr == nil {
				rcv.Snapshot = &snap
				break
			}
		}
		rcv.BadSnapshots++
	}
	var snapSeq uint64
	if rcv.Snapshot != nil {
		snapSeq = rcv.Snapshot.Seq
	}

	// Scan segments oldest-first. Segments every record of which the
	// snapshot covers are skipped without validation (they are garbage
	// awaiting truncation); the rest must parse. The first invalid frame
	// ends the journal: the segment is cut back to its valid prefix and
	// later segments (unreachable without the cut records) are removed.
	var recs []Record
	damaged := false
	for i, start := range segStarts {
		path := filepath.Join(dir, segName(start))
		if damaged {
			rcv.Truncations++
			rcv.TruncateDetail = append(rcv.TruncateDetail,
				fmt.Sprintf("removed segment %s stranded after damage", segName(start)))
			os.Remove(path)
			continue
		}
		if i+1 < len(segStarts) && segStarts[i+1] <= snapSeq+1 {
			continue // fully covered by the snapshot
		}
		segRecs, validLen, serr := scanSegment(path)
		if serr != nil {
			switch serr.Reason {
			case BadMagic, BadFormat:
				// Not our file or from a future build: refuse to guess.
				return nil, nil, fmt.Errorf("wal: segment %s: %w", segName(start), serr)
			}
			damaged = true
			rcv.Truncations++
			if validLen < int64(segHdrSize) {
				rcv.TruncateDetail = append(rcv.TruncateDetail,
					fmt.Sprintf("removed segment %s (%v)", segName(start), serr))
				os.Remove(path)
			} else {
				rcv.TruncateDetail = append(rcv.TruncateDetail,
					fmt.Sprintf("truncated segment %s to %d bytes (%v)", segName(start), validLen, serr))
				if terr := os.Truncate(path, validLen); terr != nil {
					return nil, nil, fmt.Errorf("wal: truncating damaged segment: %w", terr)
				}
			}
		}
		if len(segRecs) > 0 && segRecs[0].Seq != start {
			return nil, nil, walErr(SeqGap, "segment %s starts at seq %d, not %d",
				segName(start), segRecs[0].Seq, start)
		}
		recs = append(recs, segRecs...)
	}

	// Contiguity across everything that survived, then filter to the
	// suffix the snapshot does not cover.
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq != recs[i-1].Seq+1 {
			return nil, nil, walErr(SeqGap, "journal jumps from seq %d to %d", recs[i-1].Seq, recs[i].Seq)
		}
	}
	keep := recs[:0]
	for _, r := range recs {
		if r.Seq > snapSeq {
			keep = append(keep, r)
		}
	}
	rcv.Records = append([]Record(nil), keep...)
	if len(rcv.Records) > 0 && rcv.Records[0].Seq != snapSeq+1 {
		return nil, nil, walErr(SeqGap, "journal resumes at seq %d but snapshot covers through %d",
			rcv.Records[0].Seq, snapSeq)
	}

	nextSeq := snapSeq + 1
	if snapSeq == 0 {
		nextSeq = 1
	}
	if n := len(rcv.Records); n > 0 {
		nextSeq = rcv.Records[n-1].Seq + 1
	}

	l := &Log{dir: dir, opts: opts.withDefaults(), nextSeq: nextSeq}
	if err := l.reopen(segStarts); err != nil {
		return nil, nil, err
	}
	if l.opts.Policy == FsyncGroup {
		l.startFlusher()
	}
	return l, rcv, nil
}

// reopen resumes appending into the newest surviving segment, or starts
// a fresh one when none exists.
func (l *Log) reopen(segStarts []uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := len(segStarts) - 1; i >= 0; i-- {
		path := filepath.Join(l.dir, segName(segStarts[i]))
		info, err := os.Stat(path)
		if err != nil {
			continue // removed during damage repair
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("wal: reopening segment: %w", err)
		}
		l.f = f
		l.segStart = segStarts[i]
		l.segBytes = info.Size()
		return nil
	}
	return l.openSegmentLocked(l.nextSeq)
}
