package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	janus "repro"
	"repro/internal/chaos"
	"repro/internal/health"
	"repro/internal/rec"
)

// TestChaosServiceSoak is the service-layer soak the tentpole demands:
// three tenants, concurrent clients per tenant, and a seeded service
// injector mixing client disconnects mid-request, deadline storms, and
// slow-tenant batches into honest traffic, against a deliberately tight
// admission window. The invariants:
//
//   - shed-don't-stall: overload produces typed retryable 429/503
//     replies, never unbounded queueing or a wedged server;
//   - exactly-once: no accepted batch is lost or applied twice — every
//     batch a client saw accepted (200 or 409-on-retry) appears in the
//     tenant journal exactly once, and the committed state digest equals
//     the sequential oracle's replay of the journal;
//   - clean drain: after the storm, Drain completes and no goroutines
//     leak.
//
// The fault schedule is a pure function of the seed: a failure
// reproduces by rerunning the test.
func TestChaosServiceSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: skipping under -short")
	}
	leakCheck(t, func() {
		srv := NewServer(Config{
			Runner:          testRunner(),
			MaxInflight:     2,
			DefaultDeadline: 5 * time.Second,
		})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		client := ts.Client()

		inj := chaos.NewService(chaos.ServiceConfig{
			Seed:           20260808,
			DisconnectProb: 0.08,
			DeadlineProb:   0.12,
			TinyDeadline:   time.Millisecond,
			SlowProb:       0.10,
			SlowWork:       150_000,
		})

		tenants := []string{"alpha", "beta", "gamma"}
		const clientsPerTenant = 6
		const batchesPerClient = 10

		// batchByID holds every batch any client sent, for oracle replay.
		var batchMu sync.Mutex
		batchByID := make(map[string]map[string]*Batch) // tenant -> id -> batch
		for _, tn := range tenants {
			batchByID[tn] = make(map[string]*Batch)
		}
		// accepted[tenant] is the set of IDs clients saw accepted.
		accepted := make(map[string]map[string]bool)
		for _, tn := range tenants {
			accepted[tn] = make(map[string]bool)
		}

		// mkBatch builds a deterministic mixed batch; slowWork > 0 pads
		// every task with spin (the slow-tenant storm).
		mkBatch := func(tenant string, cl, seq int, slowWork int64) *Batch {
			id := fmt.Sprintf("%s-c%d-b%d", tenant, cl, seq)
			b := &Batch{ID: id}
			for task := 0; task < 4; task++ {
				ops := []OpSpec{}
				if slowWork > 0 {
					ops = append(ops, OpSpec{Op: "work", Delta: slowWork})
				}
				switch task % 4 {
				case 0:
					ops = append(ops,
						OpSpec{Op: "add", Loc: "c0", Delta: int64(cl*100 + seq)},
						OpSpec{Op: "push", Loc: "stk", Delta: int64(seq)})
				case 1:
					ops = append(ops,
						OpSpec{Op: "put", Loc: "kv", Key: fmt.Sprintf("k-%d-%d", cl, seq), Val: id},
						OpSpec{Op: "add", Loc: "c1", Delta: 1})
				case 2:
					ops = append(ops,
						OpSpec{Op: "load", Loc: "c0"},
						OpSpec{Op: "sub", Loc: "c2", Delta: int64(seq)})
				default:
					ops = append(ops,
						OpSpec{Op: "get", Loc: "kv", Key: fmt.Sprintf("k-%d-%d", cl, seq)},
						OpSpec{Op: "add", Loc: "c3", Delta: 2})
				}
				b.Tasks = append(b.Tasks, TaskSpec{Ops: ops})
			}
			return b
		}

		var wg sync.WaitGroup
		var statMu sync.Mutex
		var sheds, deadlineMisses, disconnects, gaveUp int
		for _, tn := range tenants {
			for cl := 0; cl < clientsPerTenant; cl++ {
				wg.Add(1)
				go func(tenant string, cl int) {
					defer wg.Done()
					for seq := 0; seq < batchesPerClient; seq++ {
						slowWork, _ := inj.SlowBatch(tenant, cl*batchesPerClient+seq)
						b := mkBatch(tenant, cl, seq, slowWork)
						if d, storm := inj.Deadline(tenant, cl*batchesPerClient+seq); storm {
							b.DeadlineMS = d.Milliseconds()
							if b.DeadlineMS <= 0 {
								b.DeadlineMS = 1
							}
						}
						batchMu.Lock()
						batchByID[tenant][b.ID] = b
						batchMu.Unlock()

						ok := false
						for attempt := 0; attempt < 60 && !ok; attempt++ {
							body, _ := json.Marshal(b)
							req, _ := http.NewRequest(http.MethodPost,
								ts.URL+"/submit?tenant="+tenant, bytes.NewReader(body))
							ctx := context.Background()
							var cancel context.CancelFunc
							if attempt == 0 && inj.Disconnect(tenant, cl*batchesPerClient+seq) {
								// Client hangs up ~1ms into the request.
								ctx, cancel = context.WithTimeout(ctx, time.Millisecond)
								statMu.Lock()
								disconnects++
								statMu.Unlock()
							}
							req = req.WithContext(ctx)
							resp, err := client.Do(req)
							if cancel != nil {
								cancel()
							}
							if err != nil {
								// Disconnect fired (or transport hiccup): outcome
								// unknown; retry resolves it (409 = applied).
								time.Sleep(2 * time.Millisecond)
								continue
							}
							var er ErrorReply
							code := resp.StatusCode
							if code != http.StatusOK {
								_ = json.NewDecoder(resp.Body).Decode(&er)
							}
							resp.Body.Close()
							switch code {
							case http.StatusOK, http.StatusConflict:
								// 200 applied now; 409 applied by an earlier
								// attempt whose reply was lost. Both accepted.
								ok = true
							case http.StatusTooManyRequests, http.StatusServiceUnavailable:
								if er.Code == "" || er.RetryAfterMS < 0 {
									t.Errorf("untyped shed reply: %+v", er)
								}
								statMu.Lock()
								sheds++
								statMu.Unlock()
								wait := time.Duration(er.RetryAfterMS) * time.Millisecond
								if wait > 10*time.Millisecond {
									wait = 10 * time.Millisecond
								}
								time.Sleep(wait)
							case http.StatusGatewayTimeout:
								statMu.Lock()
								deadlineMisses++
								statMu.Unlock()
								// Deadline-storm batch: drop the storm deadline
								// and retry sanely.
								b.DeadlineMS = 0
							case StatusCanceled:
								time.Sleep(2 * time.Millisecond)
							default:
								t.Errorf("unexpected status %d (%+v) for %s", code, er, b.ID)
								return
							}
						}
						statMu.Lock()
						if ok {
							// accepted is shared with the verification pass
							// below; guarded by statMu.
							accepted[tenant][b.ID] = true
						} else {
							gaveUp++
						}
						statMu.Unlock()
					}
				}(tn, cl)
			}
		}
		wg.Wait()

		// Drain must complete promptly now that clients are done.
		dctx, dcancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer dcancel()
		if err := srv.Drain(dctx); err != nil {
			t.Fatalf("drain after soak: %v", err)
		}

		// Exactly-once + oracle digest, per tenant.
		for _, tn := range tenants {
			var j JournalReply
			getJSON(t, client, ts.URL+"/journalz?tenant="+tn, &j)
			var st StateReply
			getJSON(t, client, ts.URL+"/statez?tenant="+tn, &st)

			seen := make(map[string]bool, len(j.IDs))
			for _, id := range j.IDs {
				if seen[id] {
					t.Fatalf("tenant %s: batch %s applied twice", tn, id)
				}
				seen[id] = true
				if batchByID[tn][id] == nil {
					t.Fatalf("tenant %s: journal has unknown batch %s", tn, id)
				}
			}
			if int64(len(j.IDs)) != j.Applied || j.Applied != st.Applied {
				t.Fatalf("tenant %s: journal %d applied %d statez %d", tn, len(j.IDs), j.Applied, st.Applied)
			}
			for id := range accepted[tn] {
				if !seen[id] {
					t.Fatalf("tenant %s: accepted batch %s lost from journal", tn, id)
				}
			}
			// Sequential-oracle digest over the journal order.
			oracle := InitialState(srv.Schema())
			for _, id := range j.IDs {
				var err error
				oracle, err = ApplySequential(oracle, srv.Schema(), batchByID[tn][id])
				if err != nil {
					t.Fatalf("tenant %s: oracle replay of %s: %v", tn, id, err)
				}
			}
			if want := rec.FormatDigest(rec.Digest(oracle)); st.Digest != want {
				t.Fatalf("tenant %s: state digest %s != oracle %s (%d applied)", tn, st.Digest, want, st.Applied)
			}
		}

		// The storm must actually have exercised the shed and fault paths.
		if sheds == 0 {
			t.Error("soak produced no sheds; admission window never saturated")
		}
		if s := inj.Stats(); s.Deadlines == 0 || s.Disconnects == 0 || s.SlowBatches == 0 {
			t.Errorf("injector idle: %+v", s)
		}
		if gaveUp > 0 {
			t.Logf("note: %d batches gave up after retries (allowed; not lost — never accepted)", gaveUp)
		}
		t.Logf("soak: sheds=%d deadlineMisses=%d disconnects=%d gaveUp=%d injector=%+v",
			sheds, deadlineMisses, disconnects, gaveUp, inj.Stats())
		ts.Close()
		client.CloseIdleConnections()
	})
}

// TestChaosGovernorTripFlipsAdmission drives one tenant's governor
// through its full cycle with real contention and asserts the admission
// mode visibly flips at each stage:
//
//   - storm batches of stack pushes behind long spins conflict under
//     speculation AND are unprovable for the commutativity cache, so
//     windows demote, probes stay dirty, and the governor trips;
//   - while tripped the admission window is one and the excess sheds
//     with typed retryable 503s;
//   - recovery traffic of counter adds (provably commutative, so probes
//     come back clean) restores the governor to healthy.
//
// The spin per task is sized well past the Go scheduler's preemption
// quantum so speculative windows genuinely overlap even on GOMAXPROCS=1
// — short tasks on a single P run to completion unpreempted and never
// conflict at all.
func TestChaosGovernorTripFlipsAdmission(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: skipping under -short")
	}
	const spin = 6_000_000 // ~15ms here; must exceed the ~10ms preemption quantum

	rcfg := testRunner()
	rcfg.Detection = janus.DetectSequence
	rcfg.LearnOnline = true // probes can turn clean once shapes are proven
	var trips, restores atomic.Int64
	rcfg.Governor = janus.GovernorConfig{
		Window:          20,
		DemoteMissRate:  1.1, // only abort rates demote in this test
		DemoteAbortRate: 0.10,
		TripAbortRate:   0.25,
		TripWindows:     1,
		ProbeEvery:      4,
		RestoreProbes:   2,
		RecoverCommits:  48,
		OnTransition: func(from, to health.State, detail string) {
			if to == health.Tripped {
				trips.Add(1)
			}
			if to < from {
				restores.Add(1)
			}
		},
	}
	sch := Schema{
		Counters: []string{"c1", "r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7"},
		Stacks:   []string{"stk"},
	}
	srv := NewServer(Config{Runner: rcfg, Schema: sch, MaxInflight: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := ts.Client()

	// Storm batch: every task pushes a distinct value behind a long spin.
	// Overlapping pushes conflict under the write-set fallback, and their
	// unbalanced stack shapes are unprovable (CondNone), so degraded-mode
	// probes stay fallback-heavy (dirty) instead of restoring healthy.
	storm := func(id string, salt, tasks int, work int64) *Batch {
		b := &Batch{ID: id}
		for i := 0; i < tasks; i++ {
			b.Tasks = append(b.Tasks, TaskSpec{Ops: []OpSpec{
				{Op: "work", Delta: work},
				{Op: "push", Loc: "stk", Delta: int64(salt*64 + i)},
			}})
		}
		return b
	}

	// Phase 1: hammer until the governor trips (bounded budget).
	tripped := false
	deadline := time.Now().Add(60 * time.Second)
	for i := 0; !tripped && time.Now().Before(deadline); i++ {
		postBatch(t, c, ts.URL, "stormy", storm(fmt.Sprintf("storm-%d", i), i, 8, spin), nil)
		tn := srv.lookup("stormy")
		if tn == nil {
			t.Fatal("tenant missing")
		}
		if tn.govState() == health.Tripped {
			tripped = true
		}
	}
	if !tripped {
		g := srv.lookup("stormy").runner.Governor()
		t.Fatalf("governor never tripped under the conflict storm: %+v", g.Stats())
	}

	// Phase 2: while tripped the admission window is one; submits racing
	// a slow in-flight batch shed with the typed tripped 503. The racers
	// are tiny so any that land while the slot is free stay cheap.
	var shedErr ErrorReply
	var shedCode int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postBatch(t, c, ts.URL, "stormy", storm("occupy", 999, 8, 20_000_000), nil)
	}()
	time.Sleep(10 * time.Millisecond) // let the occupier take the slot
	for i := 0; i < 50; i++ {
		racer := &Batch{ID: fmt.Sprintf("race-%d", i), Tasks: []TaskSpec{
			{Ops: []OpSpec{{Op: "add", Loc: "r0", Delta: 1}}},
		}}
		var e ErrorReply
		code, _ := postBatch(t, c, ts.URL, "stormy", racer, &e)
		if code == http.StatusServiceUnavailable && e.Code == CodeTripped {
			shedCode, shedErr = code, e
			break
		}
	}
	wg.Wait()
	if shedCode != http.StatusServiceUnavailable {
		t.Fatalf("tripped tenant never shed with 503/tripped")
	}
	if shedErr.RetryAfterMS <= 0 {
		t.Errorf("tripped shed carries no retry hint: %+v", shedErr)
	}

	// Phase 3: recovery traffic — mostly disjoint counter adds plus a
	// pair of overlapping c1 adds. Tripped batches run serially and drain
	// the recovery budget; back in degraded, the overlapping adds give
	// probes informative pair queries that the now-proven CondAlways add
	// shapes answer cleanly, restoring healthy. The overlap fraction is
	// kept small so degraded windows stay under the trip threshold.
	recovered := false
	deadline = time.Now().Add(60 * time.Second)
	for i := 0; !recovered && time.Now().Before(deadline); i++ {
		clean := &Batch{ID: fmt.Sprintf("clean-%d", i)}
		for task := 0; task < 2; task++ {
			clean.Tasks = append(clean.Tasks, TaskSpec{Ops: []OpSpec{
				{Op: "work", Delta: spin},
				{Op: "add", Loc: "c1", Delta: 1},
			}})
		}
		for task := 0; task < 8; task++ {
			clean.Tasks = append(clean.Tasks, TaskSpec{Ops: []OpSpec{
				{Op: "work", Delta: spin},
				{Op: "add", Loc: fmt.Sprintf("r%d", task), Delta: 1},
			}})
		}
		code, _ := postBatch(t, c, ts.URL, "stormy", clean, nil)
		if code != http.StatusOK && code != http.StatusServiceUnavailable && code != http.StatusTooManyRequests {
			t.Fatalf("clean batch status %d", code)
		}
		if srv.lookup("stormy").govState() == health.Healthy {
			recovered = true
		}
	}
	if !recovered {
		g := srv.lookup("stormy").runner.Governor()
		t.Fatalf("governor never recovered to healthy on clean traffic: %+v", g.Stats())
	}

	// The cycle is visible in the transition history and /healthz.
	if trips.Load() == 0 {
		t.Error("no trip transition observed")
	}
	if restores.Load() == 0 {
		t.Error("no restore transition observed")
	}
	var h HealthReply
	getJSON(t, c, ts.URL+"/healthz", &h)
	if h.Tenants["stormy"].Health != "healthy" {
		t.Errorf("healthz after recovery = %+v", h.Tenants["stormy"])
	}
	if h.Tenants["stormy"].Shed == 0 {
		t.Errorf("no sheds recorded across the trip cycle")
	}
	g := srv.lookup("stormy").runner.Governor()
	t.Logf("trip cycle: trips=%d restores=%d stats=%+v", trips.Load(), restores.Load(), g.Stats())
}
